// Slowly-evolving channel: a per-link AR(1) shadowing offset layered onto
// a static PropagationModel. The base model fixes "the building" (paper
// §5.1: deterministic per-pair shadowing); DynamicShadowing adds a
// time-varying component that models furniture, doors and people changing
// the multipath environment between measurement epochs — the drift CMAP's
// defer-entry TTLs exist to absorb (§3.1/§3.4).
//
// The offset is a pure function of (seed, unordered pair, epoch): epoch 0
// draws from the stationary distribution and each later epoch applies
//   o_k = rho * o_{k-1} + sigma * sqrt(1 - rho^2) * z_k
// with z_k from a splitmix64 substream of (seed, pair, k). Two instances
// with the same config agree exactly regardless of query order — the
// property that lets the incremental and full-rebuild cache paths stay
// byte-identical. A per-pair memo makes steady advance O(1) per link per
// epoch; instances are per-run and NOT thread-safe (each World wraps the
// shared read-only base model in its own DynamicShadowing).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "phy/propagation.h"
#include "phy/types.h"
#include "sim/time.h"

namespace cmap::dynamics {

struct ChannelConfig {
  double sigma_db = 3.0;      // stationary std-dev of the offset
  double correlation = 0.9;   // rho: offset correlation across one epoch
  sim::Time epoch = sim::milliseconds(500);  // how often the channel steps
  std::uint64_t seed = 1;     // offset realization (mixed with the run seed)

  bool operator==(const ChannelConfig&) const = default;
};

class DynamicShadowing final : public phy::PropagationModel {
 public:
  DynamicShadowing(std::shared_ptr<const phy::PropagationModel> base,
                   ChannelConfig config);

  /// Base-model power plus the current epoch's offset for the unordered
  /// {from, to} pair. Mutates the per-pair memo; single-threaded use only.
  double rx_power_dbm(double tx_power_dbm, phy::NodeId from, phy::NodeId to,
                      const phy::Position& from_pos,
                      const phy::Position& to_pos) const override;

  /// The base model's bound plus `guard_sigmas` standard deviations of the
  /// AR(1) offset (stationary N(0, sigma_db^2) at every epoch).
  double rx_power_bound_dbm(double tx_power_dbm, double distance_m,
                            double guard_sigmas) const override;

  /// Per-epoch step bound: |o_k - o_{k-1}| <= (1-rho)|o_{k-1}| +
  /// sigma*sqrt(1-rho^2)*|z_k|, with both |o| and |z| capped at
  /// `guard_sigmas` of their own deviations. The sparse Medium trusts this
  /// to defer re-checking below-floor links.
  double epoch_delta_bound_db(double guard_sigmas) const override;

  /// Advance the channel one epoch. Cached link gains derived from this
  /// model are stale afterwards; the caller refreshes them (see
  /// phy::Medium::refresh_all).
  void advance_epoch() { ++epoch_; }

  std::int64_t epoch() const { return epoch_; }
  const ChannelConfig& config() const { return config_; }

  /// The offset itself (dB), for tests.
  double offset_db(phy::NodeId from, phy::NodeId to) const;

 private:
  struct PairState {
    std::int64_t epoch = 0;
    double offset = 0.0;
  };

  std::shared_ptr<const phy::PropagationModel> base_;
  ChannelConfig config_;
  std::int64_t epoch_ = 0;
  double innovation_scale_;  // sigma * sqrt(1 - rho^2)
  mutable std::unordered_map<std::uint64_t, PairState> states_;
};

}  // namespace cmap::dynamics
