#include "dynamics/dynamics.h"

#include "sim/assert.h"

namespace cmap::dynamics {

Dynamics::Dynamics(sim::Simulator& simulator, phy::Medium& medium,
                   std::shared_ptr<DynamicShadowing> channel_model,
                   DynamicsConfig config, sim::Rng rng)
    : sim_(simulator),
      medium_(medium),
      channel_(std::move(channel_model)),
      config_(config) {
  CMAP_ASSERT(config_.channel.has_value() == (channel_ != nullptr),
              "channel config and DynamicShadowing model must come together");
  trace_.bind(medium_.tracer());
  metrics_.bind(medium_.metrics(), metrics::Domain::kDynamics);
  if (config_.mobility) {
    mobility_ = std::make_unique<MobilityModel>(
        sim_, medium_, *config_.mobility,
        rng.substream(0x30b11e, config_.mobility->seed));
  }
}

void Dynamics::start() {
  if (mobility_) mobility_->start();
  // Global rank: dynamics events mutate shared medium state, so the PDES
  // engine runs them alone at a barrier — and the serial queue sorts them
  // first at their tick to match.
  if (channel_) {
    sim_.in_ranked(config_.channel->epoch, sim::kGlobalRank,
                   [this] { channel_step(); });
  }
}

void Dynamics::channel_step() {
  channel_->advance_epoch();
  ++epoch_;
  metrics_.inc(metrics::Counter::kDynChannelEpochs);
  if (trace_.wants(trace::Category::kChannelEpoch)) {
    trace_.tracer->channel_epoch(sim_.now(), epoch_);
  }
  // Every cached link gain is stale after an epoch step; this is the one
  // event where a full refresh is the *correct* cost, unlike a single
  // node's move (see MediumConfig::incremental_invalidation).
  medium_.refresh_all();
  sim_.in_ranked(config_.channel->epoch, sim::kGlobalRank,
                 [this] { channel_step(); });
}

}  // namespace cmap::dynamics
