// The time-varying-environment subsystem: bundles node mobility (mobility.h)
// and channel evolution (channel.h) behind one config that rides in
// testbed::RunConfig, so any scenario can declare "this floor moves".
// A Dynamics instance belongs to one live World: it owns the MobilityModel,
// schedules the channel's epoch steps, and keeps the Medium's gain cache
// coherent (each epoch step advances the AR(1) offsets and refreshes every
// cached link; each node move invalidates through Radio::set_position).
#pragma once

#include <memory>
#include <optional>

#include "dynamics/channel.h"
#include "dynamics/mobility.h"
#include "metrics/metrics.h"
#include "phy/medium.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace cmap::dynamics {

struct DynamicsConfig {
  std::optional<MobilityConfig> mobility;
  std::optional<ChannelConfig> channel;

  bool operator==(const DynamicsConfig&) const = default;
};

class Dynamics {
 public:
  /// `channel_model` is the DynamicShadowing instance the medium was built
  /// over when config.channel is set (nullptr otherwise); Dynamics advances
  /// its epochs. `rng` seeds the trajectories (derive it from the run seed).
  Dynamics(sim::Simulator& simulator, phy::Medium& medium,
           std::shared_ptr<DynamicShadowing> channel_model,
           DynamicsConfig config, sim::Rng rng);

  /// Schedule the mobility tick chain and the channel epoch chain.
  void start();

  const MobilityModel* mobility() const { return mobility_.get(); }
  const DynamicShadowing* channel() const { return channel_.get(); }

 private:
  void channel_step();

  sim::Simulator& sim_;
  phy::Medium& medium_;
  std::shared_ptr<DynamicShadowing> channel_;
  DynamicsConfig config_;
  std::unique_ptr<MobilityModel> mobility_;
  trace::TraceHook trace_;
  metrics::MetricsHook metrics_;
  std::uint64_t epoch_ = 0;
};

}  // namespace cmap::dynamics
