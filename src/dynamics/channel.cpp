#include "dynamics/channel.h"

#include <algorithm>
#include <cmath>

#include "sim/assert.h"
#include "sim/random.h"

namespace cmap::dynamics {
namespace {

std::uint64_t pair_key(phy::NodeId from, phy::NodeId to) {
  const phy::NodeId lo = std::min(from, to);
  const phy::NodeId hi = std::max(from, to);
  return static_cast<std::uint64_t>(lo) << 32 | hi;
}

}  // namespace

DynamicShadowing::DynamicShadowing(
    std::shared_ptr<const phy::PropagationModel> base, ChannelConfig config)
    : base_(std::move(base)), config_(config) {
  CMAP_ASSERT(base_ != nullptr, "DynamicShadowing needs a base model");
  CMAP_ASSERT(config_.correlation >= 0.0 && config_.correlation < 1.0,
              "channel correlation must be in [0, 1)");
  innovation_scale_ =
      config_.sigma_db *
      std::sqrt(1.0 - config_.correlation * config_.correlation);
}

double DynamicShadowing::offset_db(phy::NodeId from, phy::NodeId to) const {
  if (config_.sigma_db <= 0.0) return 0.0;
  const std::uint64_t key = pair_key(from, to);
  const std::uint64_t stream = sim::mix64(config_.seed ^ sim::mix64(key));
  const auto [it, inserted] = states_.try_emplace(key);
  PairState& st = it->second;
  if (inserted) {
    // First sight of this pair: draw the stationary epoch-0 offset.
    st.offset = config_.sigma_db * sim::hash_normal(stream);
  }
  // Replay the AR(1) recursion up to the current epoch. Steady operation
  // advances one epoch at a time, so this loop is O(1) per link per epoch;
  // a pair first queried late replays its whole history once, landing on
  // exactly the value an early query would have reached.
  while (st.epoch < epoch_) {
    ++st.epoch;
    st.offset =
        config_.correlation * st.offset +
        innovation_scale_ *
            sim::hash_normal(stream ^ sim::mix64(static_cast<std::uint64_t>(
                                          st.epoch)));
  }
  return st.offset;
}

double DynamicShadowing::rx_power_dbm(double tx_power_dbm, phy::NodeId from,
                                      phy::NodeId to,
                                      const phy::Position& from_pos,
                                      const phy::Position& to_pos) const {
  return base_->rx_power_dbm(tx_power_dbm, from, to, from_pos, to_pos) +
         offset_db(from, to);
}

double DynamicShadowing::rx_power_bound_dbm(double tx_power_dbm,
                                            double distance_m,
                                            double guard_sigmas) const {
  return base_->rx_power_bound_dbm(tx_power_dbm, distance_m, guard_sigmas) +
         guard_sigmas * std::max(0.0, config_.sigma_db);
}

double DynamicShadowing::epoch_delta_bound_db(double guard_sigmas) const {
  const double sigma = std::max(0.0, config_.sigma_db);
  const double rho = config_.correlation;
  const double step =
      guard_sigmas * sigma * ((1.0 - rho) + std::sqrt(1.0 - rho * rho));
  return step + base_->epoch_delta_bound_db(guard_sigmas);
}

}  // namespace cmap::dynamics
