#include "dynamics/mobility.h"

#include <algorithm>
#include <cmath>

#include "phy/radio.h"
#include "sim/assert.h"

namespace cmap::dynamics {

MobilityModel::MobilityModel(sim::Simulator& simulator, phy::Medium& medium,
                             MobilityConfig config, sim::Rng rng)
    : sim_(simulator), medium_(medium), config_(config), rng_(rng) {
  trace_.bind(medium_.tracer());
  CMAP_ASSERT(config_.tick > 0, "mobility tick must be positive");
  CMAP_ASSERT(config_.width_m > 0.0 && config_.height_m > 0.0,
              "mobility needs floor bounds");
  CMAP_ASSERT(config_.speed_min_mps >= 0.0 &&
                  config_.speed_max_mps >= config_.speed_min_mps,
              "bad mobility speed range");
}

void MobilityModel::start() {
  // Global rank: moves mutate the medium's shared link caches (see
  // Dynamics::start for the barrier contract).
  sim_.in_ranked(config_.tick, sim::kGlobalRank, [this] { tick(); });
}

phy::Position MobilityModel::draw_position(sim::Rng& rng) const {
  return {rng.uniform(0.0, config_.width_m),
          rng.uniform(0.0, config_.height_m)};
}

void MobilityModel::init_states() {
  initialized_ = true;
  // Mobile subset: seeded partial shuffle over the sorted id list, so the
  // chosen set depends only on (ids, fraction, seed) — not attach order.
  std::vector<phy::NodeId> ids;
  ids.reserve(medium_.radios().size());
  for (const phy::Radio* r : medium_.radios()) ids.push_back(r->id());
  std::sort(ids.begin(), ids.end());
  const auto want = static_cast<std::size_t>(std::ceil(
      std::clamp(config_.mobile_fraction, 0.0, 1.0) *
      static_cast<double>(ids.size())));
  sim::Rng pick = rng_.substream(0x5e1ec7, 0);
  for (std::size_t i = 0; i < want && i < ids.size(); ++i) {
    const auto j = static_cast<std::size_t>(
        pick.uniform_int(static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(ids.size()) - 1));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(std::min(want, ids.size()));
  std::sort(ids.begin(), ids.end());  // tick order independent of the draw
  mobile_ = ids;

  states_.reserve(mobile_.size());
  for (const phy::NodeId id : mobile_) {
    NodeState st;
    st.id = id;
    st.rng = rng_.substream(0x0b17e, id);
    st.target = draw_position(st.rng);
    st.speed = st.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
    const double angle = st.rng.uniform(0.0, 2.0 * M_PI);
    const double drift_speed =
        st.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
    st.vx = drift_speed * std::cos(angle);
    st.vy = drift_speed * std::sin(angle);
    st.next_jump =
        sim_.now() +
        sim::seconds(st.rng.exponential(
            sim::to_seconds(config_.churn_dwell_mean)));
    states_.push_back(std::move(st));
  }
}

void MobilityModel::step_node(NodeState& st, phy::Radio& radio, double dt_s,
                              sim::Time now) {
  phy::Position p = radio.position();
  switch (config_.pattern) {
    case MobilityPattern::kWaypoint: {
      if (now < st.pause_until) return;
      const double dx = st.target.x - p.x;
      const double dy = st.target.y - p.y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double step = st.speed * dt_s;
      if (dist <= step) {
        p = st.target;
        st.pause_until =
            now + static_cast<sim::Time>(
                      st.rng.uniform(0.0, static_cast<double>(
                                              config_.pause_max)));
        st.target = draw_position(st.rng);
        st.speed =
            st.rng.uniform(config_.speed_min_mps, config_.speed_max_mps);
      } else {
        p.x += dx / dist * step;
        p.y += dy / dist * step;
      }
      break;
    }
    case MobilityPattern::kDrift: {
      p.x += st.vx * dt_s;
      p.y += st.vy * dt_s;
      // Reflect off the walls (at pedestrian speeds one reflection per
      // tick; loop for robustness against large tick * speed products).
      for (int guard = 0; guard < 8; ++guard) {
        bool reflected = false;
        if (p.x < 0.0) { p.x = -p.x; st.vx = -st.vx; reflected = true; }
        if (p.x > config_.width_m) {
          p.x = 2.0 * config_.width_m - p.x;
          st.vx = -st.vx;
          reflected = true;
        }
        if (p.y < 0.0) { p.y = -p.y; st.vy = -st.vy; reflected = true; }
        if (p.y > config_.height_m) {
          p.y = 2.0 * config_.height_m - p.y;
          st.vy = -st.vy;
          reflected = true;
        }
        if (!reflected) break;
      }
      p.x = std::clamp(p.x, 0.0, config_.width_m);
      p.y = std::clamp(p.y, 0.0, config_.height_m);
      break;
    }
    case MobilityPattern::kChurn: {
      if (now < st.next_jump) return;
      p = draw_position(st.rng);
      st.next_jump =
          now + sim::seconds(st.rng.exponential(
                    sim::to_seconds(config_.churn_dwell_mean)));
      break;
    }
  }
  radio.set_position(p);
  ++moves_;
  if (trace_.wants(trace::Category::kMove)) {
    trace_.tracer->move(now, st.id, p.x, p.y);
  }
}

void MobilityModel::tick() {
  if (!initialized_) init_states();
  const double dt_s = sim::to_seconds(config_.tick);
  const sim::Time now = sim_.now();
  // cmap-lint: allow(unordered-iter) -- MobilityModel::states_ is a
  // std::vector (the lint matches the name against DynamicShadowing's
  // unordered states_); vector order is insertion order, deterministic.
  for (NodeState& st : states_) {
    phy::Radio* radio = medium_.radio(st.id);
    CMAP_ASSERT(radio != nullptr, "mobile node has no radio");
    step_node(st, *radio, dt_s, now);
  }
  sim_.in_ranked(config_.tick, sim::kGlobalRank, [this] { tick(); });
}

}  // namespace cmap::dynamics
