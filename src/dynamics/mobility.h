// Node mobility driven by scheduled simulator events. A MobilityModel owns
// the trajectories of a (deterministically chosen) subset of a Medium's
// radios and moves them through Radio::set_position on a fixed tick, which
// is what makes the phy gain cache's invalidation policy (incremental
// row/column splice vs full rebuild, MediumConfig::incremental_invalidation)
// a live concern rather than a construction-time detail.
//
// Patterns:
//   kWaypoint — random waypoint: pick a uniform target and a speed, walk
//       there, pause, repeat. The classic slowly-shifting-geometry model.
//   kDrift    — constant velocity drawn once per node, reflecting off the
//       floor's walls. Smooth, monotone geometry change.
//   kChurn    — nodes dwell in place for an exponential holding time, then
//       teleport to a fresh uniform position — modelling a device leaving
//       and another joining (on/off churn collapsed into one radio). The
//       abrupt changes are what ages conflict-map entries out via TTL.
//
// Trajectories are a pure function of (seed, node, tick): every node draws
// from its own substream, so two runs with the same config see identical
// motion regardless of what else the simulation does.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/medium.h"
#include "phy/types.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace cmap::dynamics {

enum class MobilityPattern { kWaypoint, kDrift, kChurn };

struct MobilityConfig {
  MobilityPattern pattern = MobilityPattern::kWaypoint;
  /// Fraction of the medium's radios that move (chosen by a seeded shuffle
  /// over the sorted id list, so the subset is deterministic).
  double mobile_fraction = 1.0;
  sim::Time tick = sim::milliseconds(200);  // position-update interval
  double speed_min_mps = 0.5;  // waypoint/drift speeds (pedestrian range)
  double speed_max_mps = 2.0;
  sim::Time pause_max = sim::seconds(2);      // waypoint dwell at a target
  sim::Time churn_dwell_mean = sim::seconds(4);  // mean time between jumps
  /// Floor bounds; 0 means the caller fills them in (testbed::World uses
  /// the testbed's floor).
  double width_m = 0.0;
  double height_m = 0.0;
  std::uint64_t seed = 1;  // trajectory realization (mixed with run seed)

  bool operator==(const MobilityConfig&) const = default;
};

class MobilityModel {
 public:
  /// The model moves radios attached to `medium`. Construction is cheap;
  /// the mobile set is resolved lazily at the first tick so radios added
  /// after construction (the World builds its nodes after its Medium) are
  /// candidates too.
  MobilityModel(sim::Simulator& simulator, phy::Medium& medium,
                MobilityConfig config, sim::Rng rng);

  /// Schedule the tick chain (first tick one interval from now).
  void start();

  /// Total Radio::set_position calls issued so far.
  std::uint64_t moves() const { return moves_; }
  /// Ids of the radios this model moves (empty before the first tick).
  const std::vector<phy::NodeId>& mobile_nodes() const { return mobile_; }

 private:
  struct NodeState {
    phy::NodeId id = 0;
    sim::Rng rng;          // per-node substream
    phy::Position target;  // waypoint
    double speed = 0.0;    // waypoint m/s
    sim::Time pause_until = 0;
    double vx = 0.0, vy = 0.0;  // drift m/s
    sim::Time next_jump = 0;    // churn
  };

  void init_states();
  void tick();
  void step_node(NodeState& state, phy::Radio& radio, double dt_s,
                 sim::Time now);
  phy::Position draw_position(sim::Rng& rng) const;

  sim::Simulator& sim_;
  phy::Medium& medium_;
  MobilityConfig config_;
  sim::Rng rng_;
  trace::TraceHook trace_;
  bool initialized_ = false;
  std::vector<phy::NodeId> mobile_;
  std::vector<NodeState> states_;
  std::uint64_t moves_ = 0;
};

}  // namespace cmap::dynamics
