// Always-on invariant checks. Simulation correctness depends on internal
// invariants (event ordering, radio state machines); violating them must
// abort loudly even in optimized builds rather than corrupt results.
#pragma once

#include <cstdio>
#include <cstdlib>

#define CMAP_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CMAP_ASSERT failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
