#include "sim/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cmap::sim {

int default_thread_count() {
  // Called from the main thread before any pool exists, and nothing in
  // this process ever calls setenv, so the non-reentrant read is safe.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* v = std::getenv("CMAP_BENCH_THREADS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<int>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(int threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads <= 0) threads = default_thread_count();
  const int workers =
      static_cast<std::size_t>(threads) < count ? threads
                                                : static_cast<int>(count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cmap::sim
