#include "sim/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cmap::sim {

int default_thread_count() {
  // Called from the main thread before any pool exists, and nothing in
  // this process ever calls setenv, so the non-reentrant read is safe.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* v = std::getenv("CMAP_BENCH_THREADS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<int>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(int threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads <= 0) threads = default_thread_count();
  const int workers =
      static_cast<std::size_t>(threads) < count ? threads
                                                : static_cast<int>(count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

WorkerCrew::WorkerCrew(int threads) {
  if (threads <= 1) return;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerCrew::~WorkerCrew() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerCrew::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Inline mode: index order on the calling thread, fully deterministic.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  count_ = count;
  next_index_ = 0;
  finished_ = 0;
  ++generation_;
  wake_.notify_all();
  done_.wait(lock, [this] { return finished_ == count_; });
  // All indices claimed and completed; quiesce so a spuriously woken
  // worker finds no work.
  fn_ = nullptr;
  count_ = 0;
  next_index_ = 0;
}

void WorkerCrew::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    while (next_index_ < count_) {
      const std::size_t i = next_index_++;
      const auto* fn = fn_;
      lock.unlock();
      (*fn)(i);
      lock.lock();
      ++finished_;
      if (finished_ == count_) done_.notify_one();
    }
  }
}

}  // namespace cmap::sim
