// Simulated time: a signed 64-bit count of nanoseconds since the start of
// the simulation. Nanosecond resolution comfortably resolves one bit time
// at the highest 802.11a rate (54 Mbit/s => ~18.5 ns/bit) while an int64_t
// still spans ~292 years of simulated time.
#pragma once

#include <cstdint>

namespace cmap::sim {

using Time = std::int64_t;  // nanoseconds

inline constexpr Time kNsPerUs = 1'000;
inline constexpr Time kNsPerMs = 1'000'000;
inline constexpr Time kNsPerSec = 1'000'000'000;

/// Largest representable time; used as "never" for timeouts.
inline constexpr Time kTimeForever = INT64_MAX;

constexpr Time nanoseconds(std::int64_t ns) { return ns; }
constexpr Time microseconds(double us) {
  return static_cast<Time>(us * static_cast<double>(kNsPerUs));
}
constexpr Time milliseconds(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kNsPerMs));
}
constexpr Time seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kNsPerSec));
}

constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}
constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerMs);
}
constexpr double to_microseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerUs);
}

/// Duration of `bits` transmitted at `bits_per_second`, rounded up so a
/// transmission never ends earlier than the last bit.
constexpr Time transmission_time(std::int64_t bits, double bits_per_second) {
  const double exact = static_cast<double>(bits) / bits_per_second *
                       static_cast<double>(kNsPerSec);
  Time t = static_cast<Time>(exact);
  if (static_cast<double>(t) < exact) ++t;
  return t;
}

}  // namespace cmap::sim
