#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "sim/assert.h"

namespace cmap::sim {
namespace {
// Below this size a compaction scan costs more than the dead entries it
// could reclaim are worth.
constexpr std::size_t kCompactFloor = 64;
}  // namespace

EventId EventQueue::schedule_ranked(Time at, EventRank rank,
                                    std::function<void()> fn) {
  CMAP_ASSERT(at >= current_time_, "event scheduled into the past");
  maybe_compact();
  Entry e;
  e.at = at;
  e.rank = rank;
  e.seq = seq_source_ != nullptr
              ? seq_source_->fetch_add(1, std::memory_order_relaxed)
              : next_seq_++;
  e.fn = std::move(fn);
  e.cancelled = std::make_shared<bool>(false);
  EventId id(e.cancelled);
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > depth_high_water_) depth_high_water_ = heap_.size();
  return id;
}

void EventQueue::maybe_compact() {
  // Amortized-O(1) trigger: only scan once the heap has doubled past its
  // size at the previous scan, and only rebuild when at least half the
  // entries are dead (so a rebuild at least halves the heap). Rebuilding
  // re-heapifies, which is safe because the comparator is a total order:
  // the pop sequence never depends on the heap's internal layout.
  if (heap_.size() < std::max(compact_watermark_ * 2, kCompactFloor)) return;
  const auto dead = static_cast<std::size_t>(
      std::count_if(heap_.begin(), heap_.end(),
                    [](const Entry& e) { return *e.cancelled; }));
  if (dead * 2 >= heap_.size()) {
    std::erase_if(heap_, [](const Entry& e) { return *e.cancelled; });
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    ++compactions_;
  }
  compact_watermark_ = heap_.size();
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && *heap_.front().cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::run_one() {
  drop_cancelled_head();
  if (heap_.empty()) return false;
  // pop_heap moves the root to the back, and moving out of back() is a
  // real move — the std::function and control block are not deep-copied
  // per dispatch (priority_queue::top() only hands out a const ref, which
  // forced a copy here before).
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  current_time_ = e.at;
  *e.cancelled = true;  // mark as executed so EventId::pending() flips
  ++executed_;
  e.fn();
  return true;
}

Time EventQueue::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? kTimeForever : heap_.front().at;
}

EventKey EventQueue::next_key() {
  drop_cancelled_head();
  if (heap_.empty()) return EventKey{kTimeForever, EventRank{}, 0};
  return EventKey{heap_.front().at, heap_.front().rank, heap_.front().seq};
}

bool EventQueue::empty() {
  drop_cancelled_head();
  return heap_.empty();
}

}  // namespace cmap::sim
