#include "sim/event_queue.h"

#include <utility>

#include "sim/assert.h"

namespace cmap::sim {

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  CMAP_ASSERT(at >= current_time_, "event scheduled into the past");
  Entry e;
  e.at = at;
  e.seq = next_seq_++;
  e.fn = std::move(fn);
  e.cancelled = std::make_shared<bool>(false);
  EventId id(e.cancelled);
  heap_.push(std::move(e));
  return id;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::run_one() {
  drop_cancelled_head();
  if (heap_.empty()) return false;
  // Move the entry out before running: the callback may schedule new events
  // and reshape the heap.
  Entry e = heap_.top();
  heap_.pop();
  current_time_ = e.at;
  *e.cancelled = true;  // mark as executed so EventId::pending() flips
  ++executed_;
  e.fn();
  return true;
}

Time EventQueue::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? kTimeForever : heap_.top().at;
}

bool EventQueue::empty() {
  drop_cancelled_head();
  return heap_.empty();
}

}  // namespace cmap::sim
