// A binary-heap event queue with O(log n) insertion and lazily cancelled
// events. Same-instant ordering is defined by an explicit EventRank rather
// than raw insertion order, so the serial executive and the partitioned
// (PDES) executive sort identical keys and produce identical execution
// orders — the root of the byte-identity contract (docs/pdes.md). Within
// one rank, events still execute in insertion order (FIFO), which keeps
// protocol state machines deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"

namespace cmap::sim {

/// Deterministic same-tick ordering key. At one instant, events execute by
/// ascending (cls, a, b), then FIFO. The three classes:
///   0 (global)   — dynamics/sequencer events (mobility ticks, channel
///                  epochs). Under PDES these run alone at a barrier, so
///                  the serial queue must also sort them first.
///   2 (local)    — MAC timers, signal ends, rx completions. Scheduled
///                  and executed within one node's partition, where FIFO
///                  insertion order is itself deterministic.
///   3 (delivery) — a frame arriving at a receiver; keyed (frame id,
///                  receiver id), both intrinsic to the delivery, so the
///                  order is identical whether the event was scheduled
///                  locally or drained from a cross-partition mailbox.
/// Deliveries sort AFTER local events at the same tick on purpose: a
/// signal-end (or finish_rx) at T must run before a new signal starting
/// at exactly T, or back-to-back frame trains would overlap for zero
/// nanoseconds and the receiver — still nominally in Rx — would never
/// evaluate the new preamble. The legacy insertion-order queue got this
/// right by accident (end events are inserted a frame-duration earlier);
/// the rank encodes it explicitly.
struct EventRank {
  std::uint8_t cls = 2;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

inline constexpr EventRank kGlobalRank{0, 0, 0};
constexpr EventRank delivery_rank(std::uint64_t frame_id,
                                  std::uint64_t receiver) {
  return EventRank{3, frame_id, receiver};
}

/// The comparable head-of-queue key: what the PDES group scheduler compares
/// across member queues when a scheduling group interleaves them. Includes
/// the seq tie-breaker; queues sharing a seq source (set_seq_source) are
/// therefore merged in exactly the order one serial queue would have popped
/// the same events.
struct EventKey {
  Time at = 0;
  EventRank rank;
  std::uint64_t seq = 0;

  friend bool operator<(const EventKey& x, const EventKey& y) {
    if (x.at != y.at) return x.at < y.at;
    if (x.rank.cls != y.rank.cls) return x.rank.cls < y.rank.cls;
    if (x.rank.a != y.rank.a) return x.rank.a < y.rank.a;
    if (x.rank.b != y.rank.b) return x.rank.b < y.rank.b;
    return x.seq < y.seq;
  }
};

/// Handle to a scheduled event. Copyable; cancelling any copy cancels the
/// event. A default-constructed EventId refers to no event.
class EventId {
 public:
  EventId() = default;

  /// True if the event is still pending (scheduled, not cancelled, not run).
  bool pending() const { return state_ && !*state_; }

  /// Cancel the event if still pending. Safe to call repeatedly, on
  /// already-run events, and on default-constructed ids.
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class EventQueue;
  explicit EventId(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // true => cancelled or executed
};

/// Time-ordered queue of callbacks. Not thread-safe: each queue is driven
/// by one executive at a time (the whole simulation for the serial path,
/// one partition window for PDES).
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at` with the default local rank.
  /// `at` must not precede the time of the event currently being executed
  /// (no scheduling into the past).
  EventId schedule(Time at, std::function<void()> fn) {
    return schedule_ranked(at, EventRank{}, std::move(fn));
  }

  /// Schedule with an explicit same-tick ordering rank (see EventRank).
  EventId schedule_ranked(Time at, EventRank rank, std::function<void()> fn);

  /// Pop and run the earliest pending event; returns false if none remain.
  bool run_one();

  /// Time of the earliest pending event, or kTimeForever when empty.
  Time next_time();

  /// Full ordering key of the earliest pending event; at == kTimeForever
  /// when empty. The PDES group scheduler merges member queues on this.
  EventKey next_key();

  bool empty();

  /// Number of events executed so far (for micro-benchmarks and tests).
  std::uint64_t executed() const { return executed_; }

  /// Largest heap size observed (live + not-yet-compacted cancelled
  /// entries), for the metrics execution section.
  std::size_t depth_high_water() const { return depth_high_water_; }

  /// Number of cancelled-entry compaction rebuilds performed.
  std::uint64_t compactions() const { return compactions_; }

  /// Entries currently held, including not-yet-compacted cancelled ones
  /// (observability for the compaction regression test).
  std::size_t heap_size() const { return heap_.size(); }

  /// Time of the event currently executing (or last executed).
  Time current_time() const { return current_time_; }

  /// Advance the clock without running events, as Simulator::run_until
  /// does when the next event lies beyond its horizon. Never moves
  /// backwards.
  void advance_to(Time t) {
    if (t > current_time_) current_time_ = t;
  }

  /// Draw seq tie-breakers from a shared counter instead of this queue's
  /// own. The PDES engine points every partition queue at one counter so
  /// that when zero lookahead collapses the partitions into a single
  /// interleaved scheduling group, same-(time, rank) events still execute
  /// in global insertion order — exactly the serial queue's FIFO. The
  /// counter is atomic only because independent groups insert concurrently;
  /// seqs from different groups are never compared (their events commute),
  /// so the racy numbering is unobservable.
  void set_seq_source(std::atomic<std::uint64_t>* source) {
    seq_source_ = source;
  }

 private:
  struct Entry {
    Time at = 0;
    EventRank rank;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among same-(time, rank)
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  // Max-heap comparator for "later", so the heap root is the earliest
  // entry. (at, cls, a, b, seq) is a total order — seq is unique — so the
  // pop *sequence* is independent of heap layout, which is what makes
  // compaction (a re-heapify) determinism-safe.
  struct Later {
    bool operator()(const Entry& x, const Entry& y) const {
      if (x.at != y.at) return x.at > y.at;
      if (x.rank.cls != y.rank.cls) return x.rank.cls > y.rank.cls;
      if (x.rank.a != y.rank.a) return x.rank.a > y.rank.a;
      if (x.rank.b != y.rank.b) return x.rank.b > y.rank.b;
      return x.seq > y.seq;
    }
  };

  void drop_cancelled_head();
  void maybe_compact();

  std::vector<Entry> heap_;  // std::push_heap/pop_heap managed
  std::uint64_t next_seq_ = 0;
  std::atomic<std::uint64_t>* seq_source_ = nullptr;
  std::uint64_t executed_ = 0;
  std::size_t depth_high_water_ = 0;
  std::uint64_t compactions_ = 0;
  Time current_time_ = 0;
  // Cancelled-entry compaction (see maybe_compact): scan when the heap has
  // doubled past the size it had after the last scan, so the amortized
  // cost per schedule() is O(1) and a cancellation-heavy workload
  // (defer-TTL churn) cannot retain dead entries unboundedly.
  std::size_t compact_watermark_ = 0;
};

}  // namespace cmap::sim
