// A binary-heap event queue with O(log n) insertion and lazily cancelled
// events. Events scheduled for the same instant execute in insertion order
// (FIFO), which keeps protocol state machines deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace cmap::sim {

/// Handle to a scheduled event. Copyable; cancelling any copy cancels the
/// event. A default-constructed EventId refers to no event.
class EventId {
 public:
  EventId() = default;

  /// True if the event is still pending (scheduled, not cancelled, not run).
  bool pending() const { return state_ && !*state_; }

  /// Cancel the event if still pending. Safe to call repeatedly, on
  /// already-run events, and on default-constructed ids.
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class EventQueue;
  explicit EventId(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // true => cancelled or executed
};

/// Time-ordered queue of callbacks. Not thread-safe: the simulation is
/// single-threaded by design (determinism).
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`. `at` must not precede the time of
  /// the event currently being executed (no scheduling into the past).
  EventId schedule(Time at, std::function<void()> fn);

  /// Pop and run the earliest pending event; returns false if none remain.
  bool run_one();

  /// Time of the earliest pending event, or kTimeForever when empty.
  Time next_time();

  bool empty();

  /// Number of events executed so far (for micro-benchmarks and tests).
  std::uint64_t executed() const { return executed_; }

  /// Time of the event currently executing (or last executed).
  Time current_time() const { return current_time_; }

  /// Advance the clock without running events (run_until with an empty
  /// window). Never moves backwards.
  void advance_to(Time t) {
    if (t > current_time_) current_time_ = t;
  }

 private:
  struct Entry {
    Time at = 0;
    std::uint64_t seq = 0;  // tie-breaker: FIFO among same-time events
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  Time current_time_ = 0;
};

}  // namespace cmap::sim
