// Conservative parallel discrete-event execution inside one run (the
// ROADMAP "intra-run PDES" item; protocol derivation in docs/pdes.md).
//
// The floor is partitioned spatially (phy/partition.h); every partition
// owns a Simulator whose queue holds that partition's node events, and one
// extra *global sequencer* Simulator holds the dynamics events (mobility
// ticks, channel epochs) that mutate shared medium state. Execution
// proceeds in rounds:
//
//   1. S = earliest pending time across all queues. If the global
//      sequencer is due at S, its events run alone (a barrier: they touch
//      shared state), then min-delays are refreshed (positions may have
//      moved).
//   2. Otherwise every scheduling group g gets a conservative window
//      W_g = min(next_global, min_h(next_h + sp(h -> g)))
//      and executes its events with t < W_g, in parallel across groups.
//      sp is the SHORTEST-PATH closure of the pairwise minimum propagation
//      delays — not the direct edge. The closure matters: a group with no
//      pending events imposes no next_h term of its own, but it can still
//      relay influence (a message posted to it this round wakes a node
//      whose response arrives elsewhere), and a group's own output can
//      reflect back at it (g -> h -> g). Multi-hop paths and self-cycles
//      in the closure bound both: any chain of deliveries rooted at some
//      pending event in h reaches g no earlier than next_h + sp(h, g),
//      which is >= W_g by construction. Per-edge lookahead is the minimum
//      propagation delay alone — a signal's influence at a receiver starts
//      at its arrival tick (CCA is event-driven), so frame airtime adds
//      nothing sound; see docs/pdes.md.
//   3. Cross-group deliveries were posted as timestamped mailbox
//      messages; a barrier drains them into the target queues. Their
//      arrival times are provably >= the target's window end, so no
//      message is ever late (the conservative invariant).
//
// Partition pairs with zero lookahead are merged into one scheduling
// *group*: the group's member queues are interleaved by full event key
// ((time, rank, seq) — every partition queue draws seq from one
// engine-owned counter) on one worker, which reproduces the serial queue's
// pop order exactly. Because phy::propagation_delay_ns floors every
// distinct-pair delay at 1 ns, zero lookahead arises only when propagation
// delay is disabled outright — in which case the whole matrix is zero and
// all partitions form one group for the entire run. With propagation on,
// every group is a single partition. Either way group structure is static;
// mobility only rescales the (positive) delays between rounds.
//
// Determinism: same-tick ordering is the (rank, seq) total order the
// serial queue also sorts by, and same-tick events in *different* groups
// commute (their mutual lookahead is >= 1 ns, so neither's effects can
// reach the other at the same instant; between barriers they touch
// disjoint node state and only read shared medium state). Sweep reports
// are therefore byte-identical to the serial oracle at any partition and
// thread count — gated by tests/scenario/test_pdes_golden.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/parallel.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace cmap::sim {

/// The RunConfig knob (testbed::RunConfig::pdes). partitions <= 1 selects
/// the single-queue serial path — the reference oracle.
struct PdesOptions {
  int partitions = 1;
  /// Worker threads for partition windows. 1 executes windows inline on
  /// the driving thread (deterministic without any thread machinery; what
  /// golden tests use). Results are identical at any value.
  int threads = 1;

  bool operator==(const PdesOptions&) const = default;
};

/// The engine's execution profile, feeding the metrics snapshot's
/// *execution* section (metrics/metrics.h) — all of it is a property of
/// how the run was scheduled, never of the simulation, so nothing here is
/// covered by the byte-identity contract. Structural counters (barriers,
/// windows, histogram) accumulate unconditionally; the wall-clock fields
/// (busy_ns, parallel_ns) stay zero unless enable_profiling() was called,
/// so the default path never reads a clock.
struct PdesExecStats {
  std::uint64_t global_barriers = 0;  // rounds spent running global events
  std::uint64_t merged_windows = 0;   // windows run by a merged group
  /// Histogram of conservative window spans (window_end - group.next):
  /// bin i counts spans with floor(log2(ns)) == i (bin 0 takes span 1 ns).
  std::array<std::uint64_t, 64> window_log2{};
  /// Wall time each partition's events were executing. A merged group's
  /// interleave is charged to its lead (lowest-index) member — the other
  /// members did not occupy a worker of their own.
  std::vector<std::uint64_t> busy_ns;
  /// Total wall time partition windows were live (the parallel phase).
  /// A partition's barrier wait is parallel_ns minus its busy_ns.
  std::uint64_t parallel_ns = 0;
};

class PdesEngine {
 public:
  /// `global` is the sequencer Simulator shared state mutators (dynamics)
  /// schedule into; it must outlive the engine.
  PdesEngine(Simulator& global, int partitions, int threads);

  int partitions() const { return static_cast<int>(parts_.size()); }
  Simulator& partition_sim(int p) { return *parts_[static_cast<size_t>(p)]; }
  Simulator& global_sim() { return global_; }

  /// Install the full partition-to-partition minimum-delay matrix
  /// (row-major, partitions^2 entries, ns; entry [from][to] bounds every
  /// signal from a node of `from` to a node of `to` from below).
  /// Scheduling groups are recomputed: pairs with 0 lookahead merge.
  void set_min_delays(std::vector<Time> matrix);

  /// Called after each global-event barrier so the owner can refresh the
  /// delay matrix when node positions changed.
  void set_topology_refresh(std::function<void()> fn) {
    topology_refresh_ = std::move(fn);
  }

  /// Optional execution scope: called with the partition index (or -1 for
  /// the global sequencer) before a contiguous run of its events on the
  /// executing thread; the returned token is held for that run's duration.
  /// The World uses this to make the partition's Tracer thread-active so
  /// log records land in the right per-partition stream.
  using ScopeFn = std::function<std::shared_ptr<void>(int partition)>;
  void set_partition_scope(ScopeFn fn) { scope_ = std::move(fn); }

  /// Route one delivery event (the only cross-partition interaction).
  /// Within the source's scheduling group the event is scheduled directly
  /// (same worker); across groups it is posted as a timestamped mailbox
  /// message drained at the next barrier. Rank (frame_id, receiver) makes
  /// the final ordering independent of the route taken.
  void schedule_delivery(int src_partition, int dst_partition, Time at,
                         std::uint64_t frame_id, std::uint64_t receiver,
                         std::function<void()> fn);

  /// Drive every queue to `until` (events at exactly `until` included,
  /// matching Simulator::run_until), leaving all clocks at `until`.
  void run_until(Time until);

  /// Observability for tests and bench_pdes.
  int group_of(int partition) const {
    return group_id_[static_cast<size_t>(partition)];
  }
  int groups() const { return static_cast<int>(groups_.size()); }
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages() const;

  /// Switch on wall-clock stall attribution (per-partition busy time and
  /// the parallel-phase span). Off by default: the conservative loop then
  /// never touches a clock.
  void enable_profiling() { profiling_ = true; }
  const PdesExecStats& exec_stats() const { return stats_; }
  /// Lifetime cross-group messages addressed to `partition`.
  std::uint64_t mailbox_posted(int partition) const;

 private:
  struct Group {
    std::vector<int> members;  // ascending partition indices
    Time next = 0;             // scratch: earliest pending member event
  };
  struct Message {
    Time at = 0;
    std::uint64_t frame_id = 0;
    std::uint64_t receiver = 0;
    std::function<void()> fn;
  };
  struct Mailbox {
    mutable std::mutex mutex;
    std::vector<Message> msgs;
    std::uint64_t posted = 0;  // lifetime total, for observability
  };

  Time min_delay(int from, int to) const {
    return dmin_[static_cast<size_t>(from) * parts_.size() +
                 static_cast<size_t>(to)];
  }
  void rebuild_groups();
  void rebuild_closure();
  void run_group(const Group& g, Time window_end);
  void run_group_events(const Group& g, Time window_end);
  void drain_mailboxes();

  Simulator& global_;
  std::vector<std::unique_ptr<Simulator>> parts_;
  // One seq counter for every partition queue, so a merged group's
  // interleave ties off exactly like one serial queue (see
  // EventQueue::set_seq_source for why relaxed atomicity suffices).
  std::atomic<std::uint64_t> shared_seq_{0};
  std::vector<Time> dmin_;    // row-major partitions^2, ns
  std::vector<int> group_id_; // partition -> group index
  std::vector<Group> groups_;
  // Shortest-path closure of the GROUP-level delay graph (row-major
  // groups^2). closure_[h][g] = earliest any causal chain rooted in h can
  // influence g, over any number of intermediate groups; the diagonal is
  // the minimum cycle through the group (self-influence via reflection),
  // kTimeForever when unreachable.
  std::vector<Time> closure_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::function<void()> topology_refresh_;
  ScopeFn scope_;
  WorkerCrew crew_;
  std::uint64_t rounds_ = 0;
  bool profiling_ = false;
  PdesExecStats stats_;
};

}  // namespace cmap::sim
