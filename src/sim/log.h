// Minimal leveled logging tied to simulated time. Off by default so that
// benchmark runs pay nothing; tests and examples can raise the level.
// When the calling thread has an active trace::Tracer with the kLog
// category enabled, every line is also recorded in the trace (regardless
// of the stderr level), making the trace the single observability path.
#pragma once

#include <cstdio>
#include <string>

#include "sim/time.h"

namespace cmap::sim {

enum class LogLevel { kNone = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log level. Simulations are single-threaded; no locking needed.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit one log line prefixed with the simulated timestamp.
void log_line(LogLevel level, Time now, const std::string& component,
              const std::string& message);

}  // namespace cmap::sim
