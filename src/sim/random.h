// Deterministic random number generation with independent substreams.
//
// Every stochastic component (each radio's error draws, each MAC's backoff,
// topology shadowing, workload choice) pulls from its own substream derived
// from (root seed, component tag, instance id). Two consequences:
//   * a whole experiment is reproducible from one 64-bit seed, and
//   * changing how often one component draws does not perturb the others,
//     so A/B comparisons between MACs see identical channels.
//
// Core generator: xoshiro256++ (public-domain construction by Blackman &
// Vigna); seeding and substream derivation use SplitMix64.
#pragma once

#include <cstdint>

namespace cmap::sim {

/// SplitMix64 finalizer (Steele, Lea & Flood): a bijective 64-bit mixer.
/// THE way to fold structured coordinates (pair ids, sweep axes) into a
/// substream id or seed — arithmetic packings like `a * 1000 + b` collide
/// as soon as a coordinate outgrows the multiplier.
std::uint64_t mix64(std::uint64_t x);

/// Standard normal as a pure function of a 64-bit hash value (two mix64
/// uniforms, Box-Muller). For deterministic stateless draws keyed on
/// structured coordinates — per-pair shadowing, per-epoch channel
/// innovations — where the same key must always yield the same variate.
double hash_normal(std::uint64_t h);

/// xoshiro256++ PRNG plus the distributions the simulator needs.
class Rng {
 public:
  /// Seeds the state via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent generator for component `tag`, instance `id`.
  /// Derivation mixes the parent's *seed material*, not its current state,
  /// so substreams are stable regardless of how much the parent has drawn.
  Rng substream(std::uint64_t tag, std::uint64_t id = 0) const;

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean.
  double exponential(double mean);

 private:
  Rng(std::uint64_t a, std::uint64_t b);  // internal: direct seed material
  std::uint64_t s_[4];
  std::uint64_t seed_lo_ = 0, seed_hi_ = 0;  // kept for substream derivation
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cmap::sim
