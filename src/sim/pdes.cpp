#include "sim/pdes.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "sim/assert.h"

namespace cmap::sim {
namespace {

/// Monotonic nanoseconds for stall attribution. Values land only in the
/// metrics snapshot's execution section — simulation logic can never
/// observe them, so determinism is untouched.
std::int64_t profile_clock_ns() {
  // cmap-lint: allow(banned-wallclock) -- PDES stall-attribution timing; feeds only the non-deterministic execution section
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

constexpr std::size_t log2_bin(std::uint64_t span) {
  return span <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(span)) - 1;
}

}  // namespace

PdesEngine::PdesEngine(Simulator& global, int partitions, int threads)
    : global_(global), crew_(threads) {
  CMAP_ASSERT(partitions >= 1, "need at least one partition");
  parts_.reserve(static_cast<std::size_t>(partitions));
  mailboxes_.reserve(static_cast<std::size_t>(partitions));
  for (int p = 0; p < partitions; ++p) {
    parts_.push_back(std::make_unique<Simulator>());
    parts_.back()->queue().set_seq_source(&shared_seq_);
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  // Until the owner installs real minimum delays, assume zero lookahead
  // everywhere: one scheduling group, which is conservative (serial) and
  // therefore always sound.
  dmin_.assign(parts_.size() * parts_.size(), 0);
  stats_.busy_ns.assign(parts_.size(), 0);
  rebuild_groups();
}

void PdesEngine::set_min_delays(std::vector<Time> matrix) {
  CMAP_ASSERT(matrix.size() == parts_.size() * parts_.size(),
              "delay matrix must be partitions^2");
  for (const Time d : matrix) CMAP_ASSERT(d >= 0, "negative lookahead");
  dmin_ = std::move(matrix);
  rebuild_groups();
}

void PdesEngine::rebuild_groups() {
  // Scheduling groups = connected components over "zero lookahead in
  // either direction". Derived from the current matrix each time, so a
  // pair that drifts apart under mobility splits back into two groups.
  const int n = partitions();
  std::vector<int> root(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) root[static_cast<std::size_t>(p)] = p;
  const std::function<int(int)> find = [&](int p) {
    while (root[static_cast<std::size_t>(p)] != p) {
      root[static_cast<std::size_t>(p)] =
          root[static_cast<std::size_t>(root[static_cast<std::size_t>(p)])];
      p = root[static_cast<std::size_t>(p)];
    }
    return p;
  };
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (min_delay(a, b) > 0 && min_delay(b, a) > 0) continue;
      root[static_cast<std::size_t>(find(a))] = find(b);
    }
  }
  groups_.clear();
  group_id_.assign(static_cast<std::size_t>(n), -1);
  for (int p = 0; p < n; ++p) {
    const int r = find(p);
    if (group_id_[static_cast<std::size_t>(r)] < 0) {
      group_id_[static_cast<std::size_t>(r)] =
          static_cast<int>(groups_.size());
      groups_.emplace_back();
    }
    const int g = group_id_[static_cast<std::size_t>(r)];
    group_id_[static_cast<std::size_t>(p)] = g;
    groups_[static_cast<std::size_t>(g)].members.push_back(p);
  }
  rebuild_closure();
}

void PdesEngine::rebuild_closure() {
  // Group-level edges first: the fastest signal between any member pair.
  const auto n = groups_.size();
  closure_.assign(n * n, kTimeForever);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;  // self-influence only via a real cycle
      Time& e = closure_[a * n + b];
      for (const int p : groups_[a].members) {
        for (const int q : groups_[b].members) {
          e = std::min(e, min_delay(p, q));
        }
      }
    }
  }
  // Floyd–Warshall over those edges. The diagonal starts at kTimeForever
  // (not 0) so it relaxes to the minimum cycle through the group — the
  // earliest a group's own output can reflect back at it.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t a = 0; a < n; ++a) {
      const Time ak = closure_[a * n + k];
      if (ak == kTimeForever) continue;
      for (std::size_t b = 0; b < n; ++b) {
        const Time kb = closure_[k * n + b];
        if (kb == kTimeForever) continue;
        closure_[a * n + b] = std::min(closure_[a * n + b], ak + kb);
      }
    }
  }
}

void PdesEngine::schedule_delivery(int src_partition, int dst_partition,
                                   Time at, std::uint64_t frame_id,
                                   std::uint64_t receiver,
                                   std::function<void()> fn) {
  const auto sp = static_cast<std::size_t>(src_partition);
  const auto dp = static_cast<std::size_t>(dst_partition);
  if (group_id_[sp] == group_id_[dp]) {
    // Same scheduling group: this thread is the one executing the group's
    // window, so the target queue is exclusively ours right now.
    parts_[dp]->queue().schedule_ranked(at, delivery_rank(frame_id, receiver),
                                        std::move(fn));
    return;
  }
  Mailbox& mb = *mailboxes_[dp];
  const std::lock_guard<std::mutex> lock(mb.mutex);
  mb.msgs.push_back(Message{at, frame_id, receiver, std::move(fn)});
  ++mb.posted;
}

std::uint64_t PdesEngine::messages() const {
  std::uint64_t total = 0;
  for (const auto& mb : mailboxes_) {
    const std::lock_guard<std::mutex> lock(mb->mutex);
    total += mb->posted;
  }
  return total;
}

std::uint64_t PdesEngine::mailbox_posted(int partition) const {
  const Mailbox& mb = *mailboxes_[static_cast<std::size_t>(partition)];
  const std::lock_guard<std::mutex> lock(mb.mutex);
  return mb.posted;
}

void PdesEngine::drain_mailboxes() {
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    Mailbox& mb = *mailboxes_[p];
    std::vector<Message> batch;
    {
      const std::lock_guard<std::mutex> lock(mb.mutex);
      batch.swap(mb.msgs);
    }
    // Insertion order is whatever the mutex handed out, but the ranked
    // comparator totally orders deliveries by (time, frame, receiver) —
    // a key pair no two deliveries share — so execution order is
    // insertion-independent.
    for (Message& m : batch) {
      parts_[p]->queue().schedule_ranked(
          m.at, delivery_rank(m.frame_id, m.receiver), std::move(m.fn));
    }
  }
}

void PdesEngine::run_group(const Group& g, Time window_end) {
  if (!profiling_) {
    run_group_events(g, window_end);
    return;
  }
  const std::int64_t t0 = profile_clock_ns();
  run_group_events(g, window_end);
  const std::int64_t dt = profile_clock_ns() - t0;
  // One worker executes the whole group; a merged group's interleave is
  // charged to its lead member. Distinct groups touch distinct slots, so
  // concurrent workers never write the same entry.
  stats_.busy_ns[static_cast<std::size_t>(g.members.front())] +=
      static_cast<std::uint64_t>(dt > 0 ? dt : 0);
}

void PdesEngine::run_group_events(const Group& g, Time window_end) {
  if (g.members.size() == 1) {
    const int p = g.members.front();
    const std::shared_ptr<void> token = scope_ ? scope_(p) : nullptr;
    EventQueue& q = parts_[static_cast<std::size_t>(p)]->queue();
    while (q.next_time() < window_end) q.run_one();
    return;
  }
  // Merged group (zero lookahead, i.e. propagation delay disabled):
  // interleave the member queues by full event key. The shared seq counter
  // makes (time, rank, seq) a total order across member queues matching
  // the serial queue's pop order exactly.
  int scoped = -1;
  std::shared_ptr<void> token;
  for (;;) {
    int best = -1;
    EventKey best_key{};
    for (const int p : g.members) {
      const EventKey k = parts_[static_cast<std::size_t>(p)]->queue().next_key();
      if (k.at >= window_end) continue;
      if (best < 0 || k < best_key) {
        best = p;
        best_key = k;
      }
    }
    if (best < 0) return;
    if (scope_ && scoped != best) {
      token = scope_(best);
      scoped = best;
    }
    parts_[static_cast<std::size_t>(best)]->queue().run_one();
  }
}

void PdesEngine::run_until(Time until) {
  CMAP_ASSERT(until < kTimeForever, "PDES run_until needs a finite horizon");
  std::vector<Time> window(groups_.size());
  std::vector<std::size_t> batch;  // indices into groups_ with work
  for (;;) {
    const Time next_global = global_.queue().next_time();
    Time s = next_global;
    for (Group& g : groups_) {
      g.next = kTimeForever;
      for (const int p : g.members) {
        g.next = std::min(g.next,
                          parts_[static_cast<std::size_t>(p)]->queue()
                              .next_time());
      }
      s = std::min(s, g.next);
    }
    if (s > until) break;
    ++rounds_;

    if (next_global <= s) {
      // Global events mutate shared medium state (moves, channel epochs):
      // run everything due at exactly s alone, then let the owner refresh
      // lookaheads for any motion. Rank-0 ordering in the serial queue
      // sorts the same events first at the same instant.
      ++stats_.global_barriers;
      const std::shared_ptr<void> token = scope_ ? scope_(-1) : nullptr;
      while (global_.queue().next_time() == s) global_.queue().run_one();
      if (topology_refresh_) topology_refresh_();
      // Group membership may have changed; resize the scratch.
      window.resize(groups_.size());
      continue;
    }

    // Conservative windows: group g may execute strictly before the
    // earliest instant any causal chain rooted at a pending event — in any
    // group, itself included — could still influence it. The shortest-path
    // closure covers chains relayed through groups that are idle right now
    // and a group's own output reflecting back at it (see rebuild_closure).
    batch.clear();
    window.resize(groups_.size());
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
      Time w = std::min(next_global, until + 1);
      for (std::size_t hi = 0; hi < groups_.size(); ++hi) {
        const Time sp = closure_[hi * groups_.size() + gi];
        if (groups_[hi].next == kTimeForever || sp == kTimeForever) continue;
        w = std::min(w, groups_[hi].next + sp);
      }
      window[gi] = w;
      if (groups_[gi].next < w) {
        batch.push_back(gi);
        stats_.window_log2[log2_bin(
            static_cast<std::uint64_t>(w - groups_[gi].next))]++;
        if (groups_[gi].members.size() > 1) ++stats_.merged_windows;
      }
    }
    // Merged groups guarantee every cross-group lookahead is >= 1 ns, so
    // the group holding the minimum event always has a non-empty window.
    CMAP_ASSERT(!batch.empty(), "conservative round made no progress");
    const std::int64_t t0 = profiling_ ? profile_clock_ns() : 0;
    crew_.run(batch.size(), [this, &batch, &window](std::size_t i) {
      run_group(groups_[batch[i]], window[batch[i]]);
    });
    if (profiling_) {
      const std::int64_t dt = profile_clock_ns() - t0;
      stats_.parallel_ns += static_cast<std::uint64_t>(dt > 0 ? dt : 0);
    }
    drain_mailboxes();
  }

  global_.queue().advance_to(until);
  for (const auto& part : parts_) part->queue().advance_to(until);
}

}  // namespace cmap::sim
