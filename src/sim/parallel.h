// Shared-index parallel loop, factored out of scenario::SweepRunner so the
// sweep executor and the testbed measurement pass shard work the same way.
// Work items must be independent: each index is claimed exactly once via an
// atomic counter, so the mapping of index -> thread is nondeterministic but
// the set of executed indices is not. Callers that need deterministic
// results must make each item's output depend only on its index (disjoint
// output slots, substream-derived randomness), which is the repo-wide
// convention.
//
// WorkerCrew adds the persistent variant the PDES engine needs: the engine
// dispatches one small batch of partition windows per synchronization
// round, thousands of rounds per run, so spawning threads per batch (what
// parallel_for does) would dominate. A crew parks its workers on a
// condition variable between batches instead. This file (with sim/log.*)
// is the blessed home for raw threads — tools/cmap_lint's raw-thread rule
// allows them nowhere else.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cmap::sim {

/// Worker count from the environment: CMAP_BENCH_THREADS if set, else the
/// hardware concurrency (at least 1).
int default_thread_count();

/// Run `fn(i)` for every i in [0, count). `threads` <= 0 resolves via
/// default_thread_count(); the effective worker count is also capped at
/// `count`. With one worker the loop runs inline on the calling thread.
/// If any invocation throws, remaining unclaimed indices are abandoned and
/// the first exception is rethrown on the calling thread.
void parallel_for(int threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// A persistent pool of parked workers for many small batches. run()
/// publishes a batch, wakes the crew, and returns once every index has
/// been claimed and finished — a full barrier, which doubles as the
/// happens-before edge PDES rounds rely on: everything workers wrote
/// during a batch is visible to the caller after run(), and everything the
/// caller wrote before run() is visible to the workers.
///
/// With `threads` <= 1 no thread is ever created and run() executes the
/// batch inline in index order — the deterministic mode golden tests use.
/// Indices are claimed via an atomic counter either way, so items must be
/// independent (the parallel_for contract above).
class WorkerCrew {
 public:
  explicit WorkerCrew(int threads);
  ~WorkerCrew();
  WorkerCrew(const WorkerCrew&) = delete;
  WorkerCrew& operator=(const WorkerCrew&) = delete;

  /// Worker threads actually running (0 in inline mode).
  int threads() const { return static_cast<int>(workers_.size()); }

  /// Run `fn(i)` for every i in [0, count); blocks until all complete.
  /// `fn` must not throw (simulation events abort on error by contract).
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::uint64_t generation_ = 0;  // bumped per batch to wake the crew
  std::size_t next_index_ = 0;
  std::size_t count_ = 0;
  std::size_t finished_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cmap::sim
