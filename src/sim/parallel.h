// Shared-index parallel loop, factored out of scenario::SweepRunner so the
// sweep executor and the testbed measurement pass shard work the same way.
// Work items must be independent: each index is claimed exactly once via an
// atomic counter, so the mapping of index -> thread is nondeterministic but
// the set of executed indices is not. Callers that need deterministic
// results must make each item's output depend only on its index (disjoint
// output slots, substream-derived randomness), which is the repo-wide
// convention.
#pragma once

#include <cstddef>
#include <functional>

namespace cmap::sim {

/// Worker count from the environment: CMAP_BENCH_THREADS if set, else the
/// hardware concurrency (at least 1).
int default_thread_count();

/// Run `fn(i)` for every i in [0, count). `threads` <= 0 resolves via
/// default_thread_count(); the effective worker count is also capped at
/// `count`. With one worker the loop runs inline on the calling thread.
/// If any invocation throws, remaining unclaimed indices are abandoned and
/// the first exception is rethrown on the calling thread.
void parallel_for(int threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace cmap::sim
