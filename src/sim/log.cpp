#include "sim/log.h"

#include <atomic>

#include "trace/trace.h"

namespace cmap::sim {
namespace {
// Atomic because sweep worker threads read the level on every log_line
// while the main thread may (re)set it around a run; a plain global
// here is a data race under TSan even though torn reads of an enum are
// benign in practice.
std::atomic<LogLevel> g_level{LogLevel::kNone};
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, Time now, const std::string& component,
              const std::string& message) {
  // Trace first: a bound tracer with kLog enabled captures log lines even
  // when the stderr level filters them out, so one observability path
  // (the trace) holds everything about a run.
  if (trace::Tracer* t = trace::Tracer::thread_active()) {
    t->log(now, static_cast<std::uint32_t>(level), component, message);
  }
  if (level > g_level.load(std::memory_order_relaxed)) return;
  const char* tag = level == LogLevel::kError  ? "E"
                    : level == LogLevel::kInfo ? "I"
                                               : "D";
  std::fprintf(stderr, "[%12.6f] %s %-12s %s\n", to_seconds(now), tag,
               component.c_str(), message.c_str());
}

}  // namespace cmap::sim
