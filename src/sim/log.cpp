#include "sim/log.h"

#include "trace/trace.h"

namespace cmap::sim {
namespace {
LogLevel g_level = LogLevel::kNone;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_line(LogLevel level, Time now, const std::string& component,
              const std::string& message) {
  // Trace first: a bound tracer with kLog enabled captures log lines even
  // when the stderr level filters them out, so one observability path
  // (the trace) holds everything about a run.
  if (trace::Tracer* t = trace::Tracer::thread_active()) {
    t->log(now, static_cast<std::uint32_t>(level), component, message);
  }
  if (level > g_level) return;
  const char* tag = level == LogLevel::kError  ? "E"
                    : level == LogLevel::kInfo ? "I"
                                               : "D";
  std::fprintf(stderr, "[%12.6f] %s %-12s %s\n", to_seconds(now), tag,
               component.c_str(), message.c_str());
}

}  // namespace cmap::sim
