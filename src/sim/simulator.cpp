#include "sim/simulator.h"

namespace cmap::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && queue_.run_one()) {
  }
}

void Simulator::run_until(Time until) {
  stopped_ = false;
  while (!stopped_) {
    const Time next = queue_.next_time();
    if (next > until) {
      queue_.advance_to(until);
      return;
    }
    queue_.run_one();
  }
}

}  // namespace cmap::sim
