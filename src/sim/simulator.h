// The simulation executive: owns the clock and the event queue. Components
// hold a reference to the Simulator and schedule callbacks; run() drains
// events in time order until a stop condition. Under PDES (pdes.h) each
// partition owns one Simulator and the engine drives the queues directly;
// components are none the wiser.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace cmap::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (valid inside executing events).
  Time now() const { return queue_.current_time(); }

  /// Schedule `fn` to run at absolute time `at` (>= now()).
  EventId at(Time when, std::function<void()> fn) {
    return queue_.schedule(when, std::move(fn));
  }

  /// Schedule `fn` to run `delay` nanoseconds from now (delay >= 0).
  EventId in(Time delay, std::function<void()> fn) {
    return queue_.schedule(now() + delay, std::move(fn));
  }

  /// Ranked variants: explicit same-tick ordering (see EventRank). The
  /// medium schedules deliveries and the dynamics subsystem its global
  /// steps through these so the serial queue sorts same-instant events
  /// exactly as the partitioned engine executes them.
  EventId at_ranked(Time when, EventRank rank, std::function<void()> fn) {
    return queue_.schedule_ranked(when, rank, std::move(fn));
  }
  EventId in_ranked(Time delay, EventRank rank, std::function<void()> fn) {
    return queue_.schedule_ranked(now() + delay, rank, std::move(fn));
  }

  /// Run until the queue drains or stop() is called.
  void run();

  /// Run until simulated time reaches `until` (events at exactly `until`
  /// are executed), the queue drains, or stop() is called.
  void run_until(Time until);

  /// Request that run()/run_until() return after the current event. Not
  /// honored by the PDES engine (no caller needs it mid-partitioned-run;
  /// see docs/pdes.md).
  void stop() { stopped_ = true; }

  std::uint64_t events_executed() const { return queue_.executed(); }

  /// Direct queue access for the PDES engine, which merges and windows
  /// several queues itself. Components should schedule via at()/in().
  EventQueue& queue() { return queue_; }

 private:
  EventQueue queue_;
  bool stopped_ = false;
};

}  // namespace cmap::sim
