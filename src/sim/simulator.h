// The simulation executive: owns the clock and the event queue. Components
// hold a reference to the Simulator and schedule callbacks; run() drains
// events in time order until a stop condition.
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace cmap::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time (valid inside executing events).
  Time now() const { return queue_.current_time(); }

  /// Schedule `fn` to run at absolute time `at` (>= now()).
  EventId at(Time when, std::function<void()> fn) {
    return queue_.schedule(when, std::move(fn));
  }

  /// Schedule `fn` to run `delay` nanoseconds from now (delay >= 0).
  EventId in(Time delay, std::function<void()> fn) {
    return queue_.schedule(now() + delay, std::move(fn));
  }

  /// Run until the queue drains or stop() is called.
  void run();

  /// Run until simulated time reaches `until` (events at exactly `until`
  /// are executed), the queue drains, or stop() is called.
  void run_until(Time until);

  /// Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  std::uint64_t events_executed() const { return queue_.executed(); }

 private:
  EventQueue queue_;
  bool stopped_ = false;
};

}  // namespace cmap::sim
