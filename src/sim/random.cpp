#include "sim/random.h"

#include <cmath>

#include "sim/assert.h"

namespace cmap::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double hash_normal(std::uint64_t h) {
  const double u1 = (static_cast<double>(mix64(h) >> 11) + 0.5) * 0x1.0p-53;
  const double u2 =
      static_cast<double>(mix64(h ^ 0xabcdef12345ull) >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng::Rng(std::uint64_t seed) : Rng(seed, 0x6a09e667f3bcc909ull) {}

Rng::Rng(std::uint64_t a, std::uint64_t b) : seed_lo_(a), seed_hi_(b) {
  std::uint64_t x = a ^ rotl(b, 17);
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::substream(std::uint64_t tag, std::uint64_t id) const {
  std::uint64_t x = seed_lo_ ^ (tag * 0x9e3779b97f4a7c15ull);
  const std::uint64_t lo = splitmix64(x);
  x = seed_hi_ ^ (id * 0xd1b54a32d192ed03ull);
  const std::uint64_t hi = splitmix64(x);
  return Rng(lo, hi);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CMAP_ASSERT(lo <= hi, "uniform_int bounds inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

}  // namespace cmap::sim
