#include "net/traffic.h"

#include "sim/assert.h"

namespace cmap::net {

namespace {
constexpr std::size_t kBacklogTarget = 64;  // packets kept queued

// Packet ids are unique per (source node, flow tag) within a simulation —
// the harness allows one source per node — and deterministic regardless of
// how many worlds ran before or on which thread. A process-global counter
// here would both race under the parallel sweep runner and make results
// depend on execution order. `batch` keeps a BatchSource's ids disjoint
// from a SaturatedSource's on the same node across experiment phases.
std::uint64_t packet_id_base(phy::NodeId src, std::uint32_t flow, bool batch) {
  // Non-overlapping fields: [63] batch | [62:52] flow | [51:32] src |
  // [31:0] per-source counter. The asserts keep the uniqueness guarantee
  // honest instead of silently bleeding fields together.
  CMAP_ASSERT(src < (1u << 20), "NodeId too large for packet-id packing");
  CMAP_ASSERT(flow < (1u << 11), "flow tag too large for packet-id packing");
  return (batch ? 1ull << 63 : 0ull) |
         (static_cast<std::uint64_t>(flow) << 52) |
         (static_cast<std::uint64_t>(src) << 32);
}

}  // namespace

SaturatedSource::SaturatedSource(mac::Mac& mac, phy::NodeId src,
                                 phy::NodeId dst, std::size_t bytes,
                                 std::uint32_t flow)
    : mac_(mac),
      src_(src),
      dst_(dst),
      bytes_(bytes),
      flow_(flow),
      next_packet_id_(packet_id_base(src, flow, /*batch=*/false)) {
  mac_.set_drain_handler([this] { fill(); });
  fill();
}

void SaturatedSource::fill() {
  while (mac_.queue_depth() < kBacklogTarget) {
    mac::Packet p;
    p.src = src_;
    p.dst = dst_;
    p.id = ++next_packet_id_;
    p.flow = flow_;
    p.bytes = bytes_;
    if (!mac_.send(p)) break;
    ++offered_;
  }
}

BatchSource::BatchSource(mac::Mac& mac, phy::NodeId src, phy::NodeId dst,
                         std::uint64_t count, std::size_t bytes,
                         std::uint32_t flow)
    : mac_(mac),
      src_(src),
      dst_(dst),
      bytes_(bytes),
      flow_(flow),
      remaining_(count),
      next_packet_id_(packet_id_base(src, flow, /*batch=*/true)) {
  mac_.set_drain_handler([this] { fill(); });
  fill();
}

void BatchSource::fill() {
  while (remaining_ > 0 && mac_.queue_depth() < kBacklogTarget) {
    mac::Packet p;
    p.src = src_;
    p.dst = dst_;
    p.id = ++next_packet_id_;
    p.flow = flow_;
    p.bytes = bytes_;
    if (!mac_.send(p)) break;
    --remaining_;
  }
}

PacketSink::PacketSink(mac::Mac& mac, sim::Simulator& simulator)
    : sim_(simulator) {
  mac.set_rx_handler([this](const mac::Packet& p,
                            const mac::Mac::RxInfo& info) {
    if (info.duplicate) {
      ++duplicates_;
      return;
    }
    ++unique_;
    meter_.on_packet(p.bytes, sim_.now());
    if (forward_) forward_(p);
  });
}

}  // namespace cmap::net
