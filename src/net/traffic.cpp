#include "net/traffic.h"

namespace cmap::net {

std::uint64_t SaturatedSource::next_packet_id_ = 0;
std::uint64_t BatchSource::next_packet_id_ = 1'000'000'000ull;

namespace {
constexpr std::size_t kBacklogTarget = 64;  // packets kept queued
}

SaturatedSource::SaturatedSource(mac::Mac& mac, phy::NodeId src,
                                 phy::NodeId dst, std::size_t bytes,
                                 std::uint32_t flow)
    : mac_(mac), src_(src), dst_(dst), bytes_(bytes), flow_(flow) {
  mac_.set_drain_handler([this] { fill(); });
  fill();
}

void SaturatedSource::fill() {
  while (mac_.queue_depth() < kBacklogTarget) {
    mac::Packet p;
    p.src = src_;
    p.dst = dst_;
    p.id = ++next_packet_id_;
    p.flow = flow_;
    p.bytes = bytes_;
    if (!mac_.send(p)) break;
    ++offered_;
  }
}

BatchSource::BatchSource(mac::Mac& mac, phy::NodeId src, phy::NodeId dst,
                         std::uint64_t count, std::size_t bytes,
                         std::uint32_t flow)
    : mac_(mac),
      src_(src),
      dst_(dst),
      bytes_(bytes),
      flow_(flow),
      remaining_(count) {
  mac_.set_drain_handler([this] { fill(); });
  fill();
}

void BatchSource::fill() {
  while (remaining_ > 0 && mac_.queue_depth() < kBacklogTarget) {
    mac::Packet p;
    p.src = src_;
    p.dst = dst_;
    p.id = ++next_packet_id_;
    p.flow = flow_;
    p.bytes = bytes_;
    if (!mac_.send(p)) break;
    --remaining_;
  }
}

PacketSink::PacketSink(mac::Mac& mac, sim::Simulator& simulator)
    : sim_(simulator) {
  mac.set_rx_handler([this](const mac::Packet& p,
                            const mac::Mac::RxInfo& info) {
    if (info.duplicate) {
      ++duplicates_;
      return;
    }
    ++unique_;
    meter_.on_packet(p.bytes, sim_.now());
    if (forward_) forward_(p);
  });
}

}  // namespace cmap::net
