// Traffic generators and sinks. The paper's workloads are saturated
// unicast flows ("senders transmit 1400-byte packets as fast as they can",
// §5.1) and a fixed-batch broadcast for the mesh dissemination experiment
// (§5.7).
#pragma once

#include <cstdint>
#include <functional>

#include "mac/mac.h"
#include "sim/simulator.h"
#include "stats/throughput.h"

namespace cmap::net {

/// Keeps a MAC's queue backlogged with fixed-size packets to one
/// destination for the lifetime of the run.
class SaturatedSource {
 public:
  SaturatedSource(mac::Mac& mac, phy::NodeId src, phy::NodeId dst,
                  std::size_t bytes = 1400, std::uint32_t flow = 0);

  std::uint64_t offered() const { return offered_; }

 private:
  void fill();

  mac::Mac& mac_;
  phy::NodeId src_;
  phy::NodeId dst_;
  std::size_t bytes_;
  std::uint32_t flow_;
  std::uint64_t offered_ = 0;
  std::uint64_t next_packet_id_;  // per-instance; see packet_id_base()
};

/// Enqueues a fixed batch of packets (the mesh source's dissemination
/// batch), refilling the MAC queue until the batch is exhausted.
class BatchSource {
 public:
  BatchSource(mac::Mac& mac, phy::NodeId src, phy::NodeId dst,
              std::uint64_t count, std::size_t bytes = 1400,
              std::uint32_t flow = 0);

  std::uint64_t remaining() const { return remaining_; }

 private:
  void fill();

  mac::Mac& mac_;
  phy::NodeId src_;
  phy::NodeId dst_;
  std::size_t bytes_;
  std::uint32_t flow_;
  std::uint64_t remaining_;
  std::uint64_t next_packet_id_;  // per-instance; see packet_id_base()
};

/// Counts unique delivered packets (duplicates are already flagged by the
/// MAC) into a windowed throughput meter, and optionally forwards them.
class PacketSink {
 public:
  using ForwardHandler = std::function<void(const mac::Packet&)>;

  explicit PacketSink(mac::Mac& mac, sim::Simulator& simulator);

  void set_window(sim::Time begin, sim::Time end) {
    meter_.set_window(begin, end);
  }
  void set_forward(ForwardHandler handler) { forward_ = handler; }

  const stats::ThroughputMeter& meter() const { return meter_; }
  std::uint64_t unique_packets() const { return unique_; }
  std::uint64_t duplicate_packets() const { return duplicates_; }

 private:
  sim::Simulator& sim_;
  stats::ThroughputMeter meter_;
  ForwardHandler forward_;
  std::uint64_t unique_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace cmap::net
