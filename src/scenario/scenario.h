// Declarative experiment scenarios. A Scenario says WHAT to measure — how
// to draw topologies on a testbed, how to execute one drawn instance, and
// what the default run parameters are — while the Sweep/SweepRunner layer
// (sweep.h) says over WHICH axes (schemes x variants x topologies x seeds)
// and executes the cartesian product in parallel. Scenarios are looked up
// by name in a ScenarioRegistry (registry.h); registering a new workload
// is ~20 lines. testbed::World remains the low-level escape hatch for
// drivers with needs the declarative layer cannot express.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/random.h"
#include "testbed/experiment.h"
#include "testbed/testbed.h"

namespace cmap::scenario {

/// One concrete draw of a scenario's topology: the flows to run, plus any
/// extra participants the scenario's executor needs (e.g. the mesh source,
/// an alternative destination, an interferer).
struct TopologyInstance {
  std::vector<testbed::Flow> flows;
  std::vector<phy::NodeId> extras;
  std::string label;
};

/// Everything one run needs: the (shared, read-only) testbed, the drawn
/// topology, and a fully resolved RunConfig (scheme, duration, and the
/// per-run mixed seed already applied).
struct RunContext {
  const testbed::Testbed& tb;
  const TopologyInstance& topology;
  testbed::RunConfig config;
};

/// What one run produced. `metrics` carries scenario-specific scalars in a
/// stable order; `valid == false` drops the row from the report (e.g. a
/// control run below the measurement floor). `profile` is the run's
/// metrics snapshot when RunConfig::metrics was set (run_saturated_flows
/// forwards it; bespoke executors may fill it from
/// World::metrics_snapshot()).
struct RunOutcome {
  double aggregate_mbps = 0.0;
  std::vector<testbed::FlowResult> flows;
  std::vector<std::pair<std::string, double>> metrics;
  std::shared_ptr<const metrics::MetricsSnapshot> profile;
  bool valid = true;
};

/// Draw up to `count` topology instances. Must be deterministic given the
/// rng state and must not retain references to it.
using TopologyFn = std::function<std::vector<TopologyInstance>(
    const testbed::Testbed& tb, int count, sim::Rng& rng)>;

/// Execute one drawn instance. Runs concurrently with other runs on worker
/// threads: it must touch only its RunContext (the testbed is const and
/// safe to share) and locally created state.
using RunFn = std::function<RunOutcome(const RunContext& ctx)>;

struct Scenario {
  std::string name;
  std::string description;
  TopologyFn topology;
  /// Executor; empty means run_saturated_flows().
  RunFn run;
  /// Per-scenario defaults (duration, warmup, packet size). The sweep's
  /// scheme/seed/overrides are applied on top.
  testbed::RunConfig defaults;
  /// Canonical testbed for scenarios that prescribe their own building
  /// (e.g. the testbed_100/200/400 scaling family). Unset means the driver
  /// supplies one. SweepRunner's run(sweep) overload resolves it through
  /// the global TestbedCache, so repeated sweeps share one measurement
  /// pass.
  std::optional<testbed::TestbedConfig> testbed;
};

/// The default executor: saturate every flow of the instance and report
/// per-flow and aggregate goodput over the measurement window.
RunOutcome run_saturated_flows(const RunContext& ctx);

/// Short "s1->r1 s2->r2 ..." label for a flow set.
std::string describe_flows(const std::vector<testbed::Flow>& flows);

}  // namespace cmap::scenario
