#include "scenario/registry.h"

#include "sim/assert.h"

namespace cmap::scenario {

void ScenarioRegistry::add(Scenario scenario) {
  CMAP_ASSERT(!scenario.name.empty(), "scenario must be named");
  CMAP_ASSERT(static_cast<bool>(scenario.topology),
              "scenario must define a topology generator");
  scenarios_[scenario.name] = std::move(scenario);
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const Scenario& ScenarioRegistry::at(const std::string& name) const {
  const Scenario* s = find(name);
  CMAP_ASSERT(s != nullptr, "unknown scenario");
  return *s;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, s] : scenarios_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

ScenarioRegistry& ScenarioRegistry::global() {
  // cmap-lint: allow(mutable-static) -- process-wide registry, fully
  // populated once under the magic-static guard; runtime use is
  // read-only lookups, so it cannot race or couple runs.
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    register_builtin_scenarios(*r);
    return r;
  }();
  return *registry;
}

}  // namespace cmap::scenario
