#include "scenario/scenario.h"

#include <cstdio>

namespace cmap::scenario {

RunOutcome run_saturated_flows(const RunContext& ctx) {
  const testbed::RunResult result =
      testbed::run_flows(ctx.tb, ctx.topology.flows, ctx.config);
  RunOutcome out;
  out.aggregate_mbps = result.aggregate_mbps;
  out.flows = result.flows;
  out.profile = result.profile;
  return out;
}

std::string describe_flows(const std::vector<testbed::Flow>& flows) {
  std::string label;
  char buf[32];
  for (const auto& f : flows) {
    if (!label.empty()) label += ' ';
    if (f.dst == phy::kBroadcastId) {
      std::snprintf(buf, sizeof(buf), "%u->*", f.src);
    } else {
      std::snprintf(buf, sizeof(buf), "%u->%u", f.src, f.dst);
    }
    label += buf;
  }
  return label;
}

}  // namespace cmap::scenario
