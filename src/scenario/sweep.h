// Sweep specification and parallel execution. A Sweep names a registered
// Scenario and the comparison axes — MAC schemes, optional config variants
// (knob settings), topology draws, and seed replicates — and SweepRunner
// executes the cartesian product on a thread pool. Every run is an
// independent simulation (own Simulator, World, and Rng), so execution is
// embarrassingly parallel and the report is byte-identical regardless of
// thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "stats/report.h"
#include "trace/trace.h"

namespace cmap::scenario {

/// One setting of a secondary knob axis (e.g. a send-window size or data
/// rate), applied to the RunConfig after the scheme.
struct ConfigVariant {
  std::string label;
  std::function<void(testbed::RunConfig&)> apply;
};

struct Sweep {
  std::string scenario;
  std::vector<testbed::Scheme> schemes = {testbed::Scheme::kCsma,
                                          testbed::Scheme::kCmap};
  /// Secondary axis; empty means a single unlabeled identity variant.
  std::vector<ConfigVariant> variants;
  int topologies = 16;   // topology draws (shared across schemes/variants)
  int replicates = 1;    // independent seeds per (scheme, variant, topology)
  std::uint64_t base_seed = 1;
  /// Override the scenario's default run length / measurement warmup.
  std::optional<sim::Time> duration;
  std::optional<sim::Time> warmup;
  /// When set, every run emits a binary event trace. `trace->path` names a
  /// DIRECTORY; each run writes `trace_run_path(path, scenario, spec)`
  /// inside it (deterministic per cell, so reruns overwrite in place).
  /// Categories / sampling apply to every run. Tracing never perturbs
  /// results — the report is identical with or without it.
  std::optional<trace::TraceConfig> trace;
  /// When set, every run accumulates metrics and its snapshot rides in the
  /// report row (stats::RunRow::profile). `metrics->path`, when non-empty,
  /// names a DIRECTORY; each run writes its snapshot JSON to
  /// `metrics_run_path(path, scenario, spec)`. Metrics never perturb
  /// results, and the counter sections are byte-identical across
  /// SweepRunner thread counts and PDES partition counts.
  std::optional<metrics::MetricsConfig> metrics;
};

/// One expanded cell of a sweep's cartesian product.
struct RunSpec {
  int scheme_index = 0;
  int variant_index = 0;
  int topology_index = 0;
  int replicate = 0;
  std::uint64_t seed = 0;  // fully mixed; see mix_seed()
};

/// Collision-resistant combination of run coordinates into one 64-bit
/// seed, built on sim::mix64. Replaces the old `seed * 7919 + scheme`
/// bench derivation, whose low-entropy arithmetic collided across schemes
/// and configs.
std::uint64_t mix_seed(std::initializer_list<std::uint64_t> parts);

/// FNV-1a, used to fold scenario names into the seed mix.
std::uint64_t hash_name(const std::string& name);

/// Deterministic per-run trace filename for a sweep cell:
/// `<dir>/<scenario>_s<scheme>_v<variant>_t<topology>_r<replicate>.cmtrace`.
std::string trace_run_path(const std::string& dir, const std::string& scenario,
                           const RunSpec& spec);

/// Deterministic per-run metrics filename for a sweep cell:
/// `<dir>/<scenario>_s<scheme>_v<variant>_t<topology>_r<replicate>.metrics.json`.
std::string metrics_run_path(const std::string& dir,
                             const std::string& scenario, const RunSpec& spec);

class SweepRunner {
 public:
  /// `threads` <= 0 resolves via sim::default_thread_count().
  explicit SweepRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Expand the sweep's axes against the number of topologies actually
  /// drawn, with per-run mixed seeds. Execution order never affects
  /// results; this defines the row order of the report.
  static std::vector<RunSpec> expand(const Sweep& sweep, int drawn_topologies);

  /// The exact topology draws run() will use for this sweep (same seeded
  /// rng), for drivers that want to display or post-process them.
  static std::vector<TopologyInstance> draw_topologies(
      const Sweep& sweep, const testbed::Testbed& tb,
      const ScenarioRegistry& registry = ScenarioRegistry::global());

  /// Draw topologies, execute every cell on the thread pool, and collect
  /// rows in deterministic (expansion) order.
  stats::SweepReport run(
      const Sweep& sweep, const testbed::Testbed& tb,
      const ScenarioRegistry& registry = ScenarioRegistry::global()) const;

  /// Same, but resolve the testbed from the scenario's canonical
  /// TestbedConfig (Scenario::testbed, asserted set) through the global
  /// TestbedCache — repeated sweeps over the same building reuse one
  /// measurement pass.
  stats::SweepReport run(
      const Sweep& sweep,
      const ScenarioRegistry& registry = ScenarioRegistry::global()) const;

 private:
  int threads_ = 1;
};

}  // namespace cmap::scenario
