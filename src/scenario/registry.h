// Named scenario lookup. The global registry comes pre-loaded with every
// builtin scenario (the paper's figures plus non-paper workloads); drivers
// and libraries register additional scenarios at startup.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace cmap::scenario {

class ScenarioRegistry {
 public:
  /// Register (or replace) a scenario under its own name.
  void add(Scenario scenario);

  /// nullptr when no scenario has that name.
  const Scenario* find(const std::string& name) const;

  /// Asserts that the scenario exists.
  const Scenario& at(const std::string& name) const;

  bool contains(const std::string& name) const {
    return find(name) != nullptr;
  }
  std::size_t size() const { return scenarios_.size(); }

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// The process-wide registry, pre-loaded with the builtins.
  static ScenarioRegistry& global();

 private:
  std::map<std::string, Scenario> scenarios_;
};

/// Install the builtin scenarios into `registry`:
///   fig12_exposed, fig13_inrange, fig15_hidden  — the Fig. 11 two-pair
///       constraint classes (§5.2/5.3/5.5);
///   single_link          — §4.2 calibration links;
///   ap_wlan, ap_wlan_3..ap_wlan_6 — §5.6 access-point cells;
///   mesh_dissemination   — §5.7 two-hop dissemination (custom two-phase
///       executor);
///   interferer_triple    — §5.4 (S, R, I) triples (custom executor
///       measuring normalized throughput under interference);
///   disjoint_flows_2..disjoint_flows_7 — k concurrent disjoint flows
///       (Fig. 19's sender-scaling workload);
///   dest_queue_ablation  — §3.2 per-destination-queue ablation (custom
///       executor with a two-destination sender);
///   chain                — NEW: alternating hops of a random multi-hop
///       chain transmit concurrently;
///   mixed_floor          — NEW: one exposed and one hidden pair share the
///       floor, testing per-pair discrimination;
///   dense_grid_10/25/50  — NEW: that percentage of all nodes transmit
///       concurrently to their best-PRR neighbors (the PHY fast-path
///       stress workload; pair with a large TestbedConfig::num_nodes);
///   testbed_100/200/400  — NEW: the dense-grid workload bound to a
///       canonical building of that size (Scenario::testbed +
///       TestbedCache; the measurement fast path's scaling family);
///   mobile_floor_25/50   — NEW: the dense-grid workload while half the
///       nodes random-waypoint under an evolving channel (src/dynamics/;
///       shortened defer TTL so conflict maps re-learn mid-run);
///   mobile_chain         — NEW: the chain workload with every node
///       drifting across the floor;
///   churn_25             — NEW: 25% of nodes teleport after exponential
///       dwell times (arrival/departure churn).
void register_builtin_scenarios(ScenarioRegistry& registry);

}  // namespace cmap::scenario
