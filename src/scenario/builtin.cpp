// The builtin scenario catalog: every workload of the paper's evaluation
// (§5) plus non-paper workloads that widen the scenario space. Each entry
// is a ~20-line registration — a topology generator, optionally a custom
// executor, and defaults — which is the template for adding new ones.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "dynamics/dynamics.h"
#include "scenario/registry.h"
#include "sim/assert.h"
#include "testbed/topology_picker.h"

namespace cmap::scenario {
namespace {

std::string pair_label(const testbed::LinkPair& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u->%u %u->%u", p.s1, p.r1, p.s2, p.r2);
  return buf;
}

std::vector<TopologyInstance> instances_from_pairs(
    const std::vector<testbed::LinkPair>& pairs) {
  std::vector<TopologyInstance> out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) {
    TopologyInstance inst;
    inst.flows = {{p.s1, p.r1}, {p.s2, p.r2}};
    inst.label = pair_label(p);
    out.push_back(std::move(inst));
  }
  return out;
}

// ---- Fig. 11 two-pair constraint classes (§5.2, §5.3, §5.5) ----

Scenario make_pair_scenario(std::string name, std::string description,
                            std::vector<testbed::LinkPair> (
                                testbed::TopologyPicker::*pick)(int, sim::Rng&)
                                const) {
  Scenario s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.topology = [pick](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    return instances_from_pairs((picker.*pick)(count, rng));
  };
  return s;
}

// ---- §4.2 calibration: single clean links ----

Scenario make_single_link() {
  Scenario s;
  s.name = "single_link";
  s.description = "one saturated flow over a random potential link (§4.2 "
                  "calibration)";
  s.topology = [](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    const auto& links = picker.potential_links();
    std::vector<TopologyInstance> out;
    for (int i = 0; i < count && !links.empty(); ++i) {
      const auto& [src, dst] = links[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(links.size()) - 1))];
      TopologyInstance inst;
      inst.flows = {{src, dst}};
      inst.label = describe_flows(inst.flows);
      out.push_back(std::move(inst));
    }
    return out;
  };
  return s;
}

// ---- §5.6 access-point cells ----

Scenario make_ap_wlan(std::string name, int n_aps) {
  Scenario s;
  s.name = std::move(name);
  char desc[96];
  std::snprintf(desc, sizeof(desc),
                "%d APs in distinct regions, one random-direction flow per "
                "cell (§5.6)",
                n_aps);
  s.description = desc;
  s.topology = [n_aps](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    std::vector<TopologyInstance> out;
    for (int i = 0; i < count; ++i) {
      const auto sc = picker.ap_scenario(n_aps, rng);
      if (!sc) continue;
      TopologyInstance inst;
      for (const auto& cell : sc->cells) {
        inst.flows.push_back({cell.sender(), cell.receiver()});
      }
      inst.label = describe_flows(inst.flows);
      out.push_back(std::move(inst));
    }
    return out;
  };
  return s;
}

// ---- §5.7 two-hop dissemination mesh (custom two-phase executor) ----

Scenario make_mesh_dissemination() {
  Scenario s;
  s.name = "mesh_dissemination";
  s.description = "S broadcasts to forwarders A1..A3, then the A's push to "
                  "their B's concurrently; per-path goodput is the min of "
                  "the two hops (§5.7)";
  s.topology = [](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    std::vector<TopologyInstance> out;
    for (int i = 0; i < count; ++i) {
      const auto sc = picker.mesh_scenario(3, rng);
      if (!sc) continue;
      TopologyInstance inst;
      for (std::size_t j = 0; j < sc->a.size(); ++j) {
        inst.flows.push_back({sc->a[j], sc->b[j]});
      }
      inst.extras = {sc->s};
      char buf[96];
      std::snprintf(buf, sizeof(buf), "S=%u A/B=%s", sc->s,
                    describe_flows(inst.flows).c_str());
      inst.label = buf;
      out.push_back(std::move(inst));
    }
    return out;
  };
  s.run = [](const RunContext& ctx) {
    CMAP_ASSERT(!ctx.topology.extras.empty(), "mesh instance needs a source");
    const phy::NodeId source = ctx.topology.extras[0];
    const sim::Time phase = ctx.config.duration / 2;
    const sim::Time measure_from = phase / 5;

    // Phase 1: the source broadcasts to its forwarders.
    testbed::World w1(ctx.tb, ctx.config);
    w1.add_node(source);
    for (const auto& f : ctx.topology.flows) w1.add_node(f.src);
    w1.add_saturated_flow(source, phy::kBroadcastId);
    w1.set_measurement_window(measure_from, phase);
    w1.run(phase);

    // Phase 2: the forwarders push onward concurrently.
    testbed::World w2(ctx.tb, ctx.config);
    for (const auto& f : ctx.topology.flows) {
      w2.add_saturated_flow(f.src, f.dst);
    }
    w2.set_measurement_window(measure_from, phase);
    w2.run(phase);

    RunOutcome out;
    for (const auto& f : ctx.topology.flows) {
      const double hop1 = w1.sink(f.src).meter().mbps();
      const double hop2 = w2.sink(f.dst).meter().mbps();
      testbed::FlowResult fr;
      fr.flow = f;
      fr.mbps = std::min(hop1, hop2);
      fr.unique_packets = w2.sink(f.dst).unique_packets();
      fr.duplicates = w2.sink(f.dst).duplicate_packets();
      out.flows.push_back(fr);
      out.aggregate_mbps += fr.mbps;
    }
    return out;
  };
  return s;
}

// ---- §5.4 sender/receiver/interferer triples (custom executor) ----

Scenario make_interferer_triple() {
  Scenario s;
  s.name = "interferer_triple";
  s.description = "S->R alone, then with I broadcasting continuously; "
                  "reports normalized throughput vs min PRR from I (§5.4)";
  s.topology = [](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    std::vector<TopologyInstance> out;
    for (const auto& t : picker.interferer_triples(count, rng)) {
      TopologyInstance inst;
      inst.flows = {{t.s, t.r}};
      inst.extras = {t.i};
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%u->%u I=%u", t.s, t.r, t.i);
      inst.label = buf;
      out.push_back(std::move(inst));
    }
    return out;
  };
  s.run = [](const RunContext& ctx) {
    CMAP_ASSERT(ctx.topology.extras.size() == 1, "triple needs an interferer");
    const testbed::Flow flow = ctx.topology.flows[0];
    const phy::NodeId interferer = ctx.topology.extras[0];

    const double alone =
        testbed::run_flows(ctx.tb, {flow}, ctx.config).flows[0].mbps;
    RunOutcome out;
    if (alone <= 0.01) {
      out.valid = false;  // control run below the measurement floor
      return out;
    }
    testbed::World world(ctx.tb, ctx.config);
    world.add_saturated_flow(flow.src, flow.dst);
    world.add_saturated_flow(interferer, phy::kBroadcastId);
    world.run(ctx.config.duration);
    const double with_i = world.sink(flow.dst).meter().mbps();
    const double norm = std::min(1.0, with_i / alone);
    const double prr_r = ctx.tb.prr(interferer, flow.dst);
    const double prr_s = ctx.tb.prr(interferer, flow.src);
    out.aggregate_mbps = with_i;
    out.metrics = {{"alone_mbps", alone},
                   {"norm_throughput", norm},
                   {"min_prr", std::min(prr_r, prr_s)},
                   {"prr_to_receiver", prr_r},
                   {"prr_to_sender", prr_s}};
    return out;
  };
  return s;
}

// ---- Fig. 19 workload: k concurrent flows over disjoint node sets ----

Scenario make_disjoint_flows(std::string name, int k) {
  Scenario s;
  s.name = std::move(name);
  char desc[80];
  std::snprintf(desc, sizeof(desc),
                "%d concurrent potential-link flows over disjoint nodes", k);
  s.description = desc;
  s.topology = [k](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    const auto& links = picker.potential_links();
    std::vector<TopologyInstance> out;
    if (links.empty()) return out;
    for (int i = 0; i < count; ++i) {
      TopologyInstance inst;
      std::vector<phy::NodeId> used;
      int guard = 0;
      while (static_cast<int>(inst.flows.size()) < k && guard++ < 4000) {
        const auto& [a, b] =
            links[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(links.size()) - 1))];
        bool clash = false;
        for (phy::NodeId u : used) clash = clash || u == a || u == b;
        if (clash) continue;
        inst.flows.push_back({a, b});
        used.push_back(a);
        used.push_back(b);
      }
      if (static_cast<int>(inst.flows.size()) < k) continue;
      inst.label = describe_flows(inst.flows);
      out.push_back(std::move(inst));
    }
    return out;
  };
  return s;
}

// ---- §3.2 per-destination-queue ablation (custom executor) ----

Scenario make_dest_queue_ablation() {
  Scenario s;
  s.name = "dest_queue_ablation";
  s.description = "conflicting in-range pair where sender 1 also has "
                  "traffic to a clean alternative destination (§3.2 "
                  "optimization); toggle config.per_dest_queues";
  s.topology = [](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    const auto pairs = picker.in_range_pairs(count, rng);
    const auto& links = picker.potential_links();
    std::vector<TopologyInstance> out;
    for (const auto& p : pairs) {
      // Alternative destination for s1: a potential link to someone who is
      // not in range of the competing sender s2.
      phy::NodeId alt = phy::kBroadcastId;
      for (const auto& [a, b] : links) {
        if (a != p.s1) continue;
        if (b == p.r1 || b == p.r2 || b == p.s2) continue;
        if (tb.in_range(p.s2, b)) continue;
        alt = b;
        break;
      }
      if (alt == phy::kBroadcastId) continue;
      TopologyInstance inst;
      inst.flows = {{p.s1, p.r1}, {p.s2, p.r2}};
      inst.extras = {alt};
      char buf[80];
      std::snprintf(buf, sizeof(buf), "%s alt=%u", pair_label(p).c_str(), alt);
      inst.label = buf;
      out.push_back(std::move(inst));
    }
    return out;
  };
  s.run = [](const RunContext& ctx) {
    CMAP_ASSERT(ctx.topology.extras.size() == 1, "needs an alternative dest");
    const testbed::Flow f1 = ctx.topology.flows[0];
    const testbed::Flow f2 = ctx.topology.flows[1];
    const phy::NodeId alt = ctx.topology.extras[0];

    testbed::World world(ctx.tb, ctx.config);
    world.add_node(f1.src);
    world.add_node(f1.dst);
    world.add_node(alt);
    world.add_saturated_flow(f2.src, f2.dst);
    // Sender 1 alternates between the conflicted and the clean
    // destination; per-dest queues let it serve the clean one while the
    // conflicted head-of-line packet defers.
    auto& m = world.mac(f1.src);
    std::uint64_t id = static_cast<std::uint64_t>(f1.src) << 32;
    const auto fill = [&m, &id, f1, alt, bytes = ctx.config.packet_bytes] {
      while (m.queue_depth() < 64) {
        mac::Packet pkt;
        pkt.src = f1.src;
        pkt.dst = (id % 2 == 0) ? f1.dst : alt;
        pkt.id = ++id;
        pkt.bytes = bytes;
        if (!m.send(pkt)) break;
      }
    };
    m.set_drain_handler(fill);
    fill();
    world.run(ctx.config.duration);

    const double to_r1 = world.sink(f1.dst).meter().mbps();
    const double to_alt = world.sink(alt).meter().mbps();
    RunOutcome out;
    out.aggregate_mbps = to_r1 + to_alt;
    out.metrics = {{"to_conflicted_mbps", to_r1}, {"to_clean_mbps", to_alt}};
    return out;
  };
  return s;
}

// ---- NEW (non-paper): concurrent hops of a random multi-hop chain ----

Scenario make_chain() {
  Scenario s;
  s.name = "chain";
  s.description = "random 6-node chain of potential links; the three "
                  "alternating hops transmit concurrently — adjacent hops "
                  "range from exposed to conflicting";
  s.topology = [](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    std::map<phy::NodeId, std::vector<phy::NodeId>> adj;
    for (const auto& [a, b] : picker.potential_links()) adj[a].push_back(b);
    std::vector<phy::NodeId> heads;
    for (const auto& [a, nbrs] : adj) heads.push_back(a);
    std::vector<TopologyInstance> out;
    if (heads.empty()) return out;
    int guard = 0;
    while (static_cast<int>(out.size()) < count && guard++ < count * 400) {
      // Random walk over potential links, never revisiting a node.
      std::vector<phy::NodeId> path = {heads[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(heads.size()) - 1))]};
      while (path.size() < 6) {
        const auto it = adj.find(path.back());
        if (it == adj.end()) break;
        std::vector<phy::NodeId> fresh;
        for (phy::NodeId c : it->second) {
          if (std::find(path.begin(), path.end(), c) == path.end()) {
            fresh.push_back(c);
          }
        }
        if (fresh.empty()) break;
        path.push_back(fresh[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(fresh.size()) - 1))]);
      }
      if (path.size() < 6) continue;
      TopologyInstance inst;
      inst.flows = {{path[0], path[1]}, {path[2], path[3]}, {path[4], path[5]}};
      inst.label = describe_flows(inst.flows);
      out.push_back(std::move(inst));
    }
    return out;
  };
  return s;
}

// ---- NEW (non-paper): mixed exposed + hidden floor ----

Scenario make_mixed_floor() {
  Scenario s;
  s.name = "mixed_floor";
  s.description = "one exposed pair and one hidden pair share the floor "
                  "(four concurrent flows); a scheme must exploit the "
                  "exposed pair without melting down on the hidden one";
  s.topology = [](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    const auto exposed = picker.exposed_pairs(count * 2, rng);
    const auto hidden = picker.hidden_pairs(count * 2, rng);
    std::vector<TopologyInstance> out;
    std::set<std::size_t> used_hidden;
    for (const auto& e : exposed) {
      if (static_cast<int>(out.size()) >= count) break;
      const std::set<phy::NodeId> e_nodes = {e.s1, e.r1, e.s2, e.r2};
      // First unused hidden pair sharing no node with this exposed one. A
      // clash only disqualifies the hidden pair for THIS exposed pair, so
      // the scan restarts from the front each time.
      for (std::size_t h = 0; h < hidden.size(); ++h) {
        if (used_hidden.count(h)) continue;
        const auto& hp = hidden[h];
        if (e_nodes.count(hp.s1) || e_nodes.count(hp.r1) ||
            e_nodes.count(hp.s2) || e_nodes.count(hp.r2)) {
          continue;
        }
        TopologyInstance inst;
        inst.flows = {{e.s1, e.r1}, {e.s2, e.r2},
                      {hp.s1, hp.r1}, {hp.s2, hp.r2}};
        char buf[128];
        std::snprintf(buf, sizeof(buf), "exposed %s | hidden %s",
                      pair_label(e).c_str(), pair_label(hp).c_str());
        inst.label = buf;
        out.push_back(std::move(inst));
        used_hidden.insert(h);
        break;
      }
    }
    return out;
  };
  return s;
}

// ---- NEW (non-paper): dense grid — saturating fan-out at scale ----
//
// The PHY fast path's stress workload: a configurable fraction of the
// testbed's nodes transmit concurrently, each to its best-PRR neighbor.
// On a large testbed (hundreds of nodes) this keeps most radios busy most
// of the time, which is exactly the regime where per-transmit propagation
// recomputation and O(S^2) interference rescans used to dominate.

Scenario make_dense_grid(std::string name, int sender_pct) {
  Scenario s;
  s.name = std::move(name);
  char desc[112];
  std::snprintf(desc, sizeof(desc),
                "%d%% of all nodes transmit concurrently, each saturating a "
                "flow to its best-PRR neighbor (PHY fast-path stress)",
                sender_pct);
  s.description = desc;
  s.topology = [sender_pct](const testbed::Testbed& tb, int count,
                            sim::Rng& rng) {
    const int n = tb.size();
    const int k = std::max(1, n * sender_pct / 100);
    std::vector<TopologyInstance> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int draw = 0; draw < count; ++draw) {
      // k distinct senders via a partial Fisher-Yates shuffle.
      std::vector<phy::NodeId> ids(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
      for (int i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(i, static_cast<std::int64_t>(n) - 1));
        std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
      }
      TopologyInstance inst;
      for (int i = 0; i < k; ++i) {
        const phy::NodeId src = ids[static_cast<std::size_t>(i)];
        // Best-PRR receiver; receivers may themselves be senders
        // (half-duplex contention is part of the workload).
        phy::NodeId best = src;
        double best_prr = -1.0;
        for (phy::NodeId dst = 0; dst < static_cast<phy::NodeId>(n); ++dst) {
          if (dst == src) continue;
          const double p = tb.prr(src, dst);
          if (p > best_prr) {
            best_prr = p;
            best = dst;
          }
        }
        if (best == src) continue;
        inst.flows.push_back({src, best});
      }
      if (inst.flows.empty()) continue;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%zu flows / %d nodes",
                    inst.flows.size(), n);
      inst.label = buf;
      out.push_back(std::move(inst));
    }
    return out;
  };
  // Dense runs are expensive per simulated second; default to a short
  // window (sweeps override as usual).
  s.defaults.duration = sim::seconds(10);
  s.defaults.warmup = sim::seconds(4);
  return s;
}

// ---- NEW: testbed_100/200/400 — large-building scaling family ----
//
// The dense-grid workload bound to a canonical large testbed: each member
// prescribes its own building via Scenario::testbed, so SweepRunner's
// run(sweep) overload instantiates it through the global TestbedCache
// (one measurement pass per size, however many sweeps run). This is the
// scenario family the tabulated measurement pass exists for — the
// exposed-terminal concurrency gains the paper reports need large-n
// evidence, and cheap testbed instantiation is what unlocks it.

Scenario make_testbed_family(int nodes) {
  Scenario s = make_dense_grid("testbed_" + std::to_string(nodes), 25);
  char desc[112];
  std::snprintf(desc, sizeof(desc),
                "dense-grid workload on a canonical %d-node building "
                "(resolved via TestbedCache; scaling family)",
                nodes);
  s.description = desc;
  testbed::TestbedConfig cfg;
  cfg.num_nodes = nodes;
  // Same floor density as the paper's 50-node / 70x40 m office.
  const double scale = std::sqrt(nodes / 50.0);
  cfg.width_m = 70.0 * scale;
  cfg.height_m = 40.0 * scale;
  s.testbed = cfg;
  return s;
}

// ---- NEW: flows_50/100/200 — MAC-decision high-concurrency family ----
//
// Exactly N concurrent flows on a canonical 2N-node building: half the
// floor transmits at once, each sender saturating a flow to its best-PRR
// neighbor. This is the regime where the CMAP send decision — conflict-map
// consultation on every transmit attempt — dominates the simulation loop;
// the decision-fastpath golden test and bench_mac_decide run on it. Like
// the testbed_* family, the building is prescribed via Scenario::testbed
// and resolved through the global TestbedCache.

Scenario make_flows_family(int flows) {
  // make_dense_grid with 50% senders on a 2N-node floor draws exactly N
  // distinct senders per topology instance.
  Scenario s = make_dense_grid("flows_" + std::to_string(flows), 50);
  char desc[128];
  std::snprintf(desc, sizeof(desc),
                "%d concurrent best-PRR flows on a canonical %d-node "
                "building (MAC decision stress; TestbedCache-resolved)",
                flows, 2 * flows);
  s.description = desc;
  testbed::TestbedConfig cfg;
  cfg.num_nodes = 2 * flows;
  const double scale = std::sqrt(2.0 * flows / 50.0);
  cfg.width_m = 70.0 * scale;
  cfg.height_m = 40.0 * scale;
  s.testbed = cfg;
  return s;
}

// ---- NEW: metro_10k — sparse link-state at metropolitan scale ----
//
// Ten thousand nodes at the paper's floor density: 10^8 directed pairs,
// a world the dense O(n^2) stores cannot hold and the sparse
// Medium/Testbed representations (LinkStateMode::kSparse,
// MeasurementStore::kSparse) exist for. The building raises the delivery
// floor and narrows the guard band so candidate neighborhoods stay
// metropolitan-sparse (~a thousand candidates, a few dozen connected
// neighbors per node); with a static channel the sparse medium then holds
// active links only. Flow picking walks stored CSR rows
// (connected_neighbors), so a topology draw never touches the pair space
// either.

Scenario make_metro(int nodes, int sender_pct) {
  Scenario s;
  s.name = "metro_" + std::to_string(nodes / 1000) + "k";
  char desc[128];
  std::snprintf(desc, sizeof(desc),
                "%d%% of %d nodes saturate best-PRR neighbor flows over "
                "sparse link state (10k-scale memory workload)",
                sender_pct, nodes);
  s.description = desc;
  s.topology = [sender_pct](const testbed::Testbed& tb, int count,
                            sim::Rng& rng) {
    const int n = tb.size();
    const int k = std::max(1, n * sender_pct / 100);
    std::vector<TopologyInstance> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int draw = 0; draw < count; ++draw) {
      std::vector<phy::NodeId> ids(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
      for (int i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(i, static_cast<std::int64_t>(n) - 1));
        std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
      }
      TopologyInstance inst;
      for (int i = 0; i < k; ++i) {
        const phy::NodeId src = ids[static_cast<std::size_t>(i)];
        // Best-PRR receiver among the stored connected row — ascending
        // dst with strict >, the same tie rule as the dense-grid scan.
        phy::NodeId best = src;
        double best_prr = -1.0;
        for (const phy::NodeId dst : tb.connected_neighbors(src)) {
          const double p = tb.prr(src, dst);
          if (p > best_prr) {
            best_prr = p;
            best = dst;
          }
        }
        if (best == src) continue;  // isolated sender: no outbound links
        inst.flows.push_back({src, best});
      }
      if (inst.flows.empty()) continue;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%zu flows / %d nodes",
                    inst.flows.size(), n);
      inst.label = buf;
      out.push_back(std::move(inst));
    }
    return out;
  };
  testbed::TestbedConfig cfg;
  cfg.num_nodes = nodes;
  const double scale = std::sqrt(nodes / 50.0);
  cfg.width_m = 70.0 * scale;
  cfg.height_m = 40.0 * scale;
  // Metro floor: hear dozens of peers, not thousands. The paper's broad
  // -110 dBm connectivity floor is an office-scale choice; at 10k nodes it
  // would make every delivery fan out to a whole district.
  cfg.medium.delivery_floor_dbm = -94.0;
  cfg.medium.link_state = phy::LinkStateMode::kSparse;
  // A 3-sigma guard keeps the candidate radius (and with it the
  // measurement pass and the spatial index's cell occupancy) metropolitan
  // -sparse. There is no dense reference at this scale to stay
  // byte-identical to; the golden-gated scenarios keep the default 6.
  cfg.medium.cull_guard_sigmas = 3.0;
  cfg.measurement.store = testbed::MeasurementStore::kSparse;
  cfg.measurement.sparse_guard_sigmas = 3.0;
  s.testbed = cfg;
  // Event-dense at hundreds of concurrent flows: default to a short
  // window (sweeps override as usual).
  s.defaults.with_duration(sim::seconds(2)).with_warmup(
      sim::milliseconds(500));
  return s;
}

// ---- NEW: mobile_* / churn_* — time-varying-environment family ----
//
// The adaptation workload the paper's TTL machinery (§3.1/§3.4) exists
// for: nodes move and the channel re-shadows mid-run, so conflicts learned
// early go stale and must age out of the DeferTable while interferer-list
// broadcasts teach the new geometry. Every member shortens the defer TTL
// so expiry actually happens within a run, prescribes the canonical
// 50-node building (Scenario::testbed), and layers a slowly-evolving AR(1)
// channel on top of the motion.

dynamics::DynamicsConfig make_dynamics(dynamics::MobilityPattern pattern,
                                       double mobile_fraction) {
  dynamics::DynamicsConfig dc;
  dynamics::MobilityConfig m;
  m.pattern = pattern;
  m.mobile_fraction = mobile_fraction;
  dc.mobility = m;
  dynamics::ChannelConfig ch;
  ch.sigma_db = 2.0;
  ch.correlation = 0.9;
  ch.epoch = sim::milliseconds(500);
  dc.channel = ch;
  return dc;
}

void apply_mobile_defaults(Scenario& s, dynamics::MobilityPattern pattern,
                           double mobile_fraction) {
  s.defaults.dynamics = make_dynamics(pattern, mobile_fraction);
  // Short enough that conflicts learned before the geometry shifted
  // expire within the default run; long enough to be useful while fresh.
  // Interferer lists re-broadcast at twice the default cadence so the new
  // geometry is re-taught promptly after old entries age out.
  s.defaults.with_defer_ttl(sim::seconds(5))
      .with_ilist_period(sim::milliseconds(500));
  s.defaults.duration = sim::seconds(20);
  s.defaults.warmup = sim::seconds(5);
  s.testbed = testbed::TestbedConfig{};  // canonical 50-node building
}

Scenario make_mobile_floor(int sender_pct) {
  Scenario s =
      make_dense_grid("mobile_floor_" + std::to_string(sender_pct), sender_pct);
  char desc[128];
  std::snprintf(desc, sizeof(desc),
                "%d%%-sender dense floor where half the participating nodes "
                "random-waypoint at pedestrian speed under an evolving "
                "channel (defer TTL 5 s)",
                sender_pct);
  s.description = desc;
  apply_mobile_defaults(s, dynamics::MobilityPattern::kWaypoint, 0.5);
  return s;
}

Scenario make_mobile_chain() {
  Scenario s = make_chain();
  s.name = "mobile_chain";
  s.description =
      "the chain workload while every node drifts across the floor under an "
      "evolving channel — adjacent hops slide between exposed and conflicting";
  apply_mobile_defaults(s, dynamics::MobilityPattern::kDrift, 1.0);
  return s;
}

Scenario make_churn(int churn_pct) {
  Scenario s = make_dense_grid("churn_" + std::to_string(churn_pct), 25);
  char desc[128];
  std::snprintf(desc, sizeof(desc),
                "25%%-sender dense floor where %d%% of participating nodes "
                "teleport after exponential dwell times (arrival/departure "
                "churn; defer TTL 5 s)",
                churn_pct);
  s.description = desc;
  apply_mobile_defaults(s, dynamics::MobilityPattern::kChurn,
                        churn_pct / 100.0);
  return s;
}

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& registry) {
  registry.add(make_pair_scenario(
      "fig12_exposed",
      "exposed-terminal link pairs per Fig. 11(a) (§5.2)",
      &testbed::TopologyPicker::exposed_pairs));
  registry.add(make_pair_scenario(
      "fig13_inrange",
      "in-range, otherwise unconstrained link pairs per Fig. 11(b) (§5.3)",
      &testbed::TopologyPicker::in_range_pairs));
  registry.add(make_pair_scenario(
      "fig15_hidden",
      "hidden-terminal link pairs per Fig. 11(c) (§5.5)",
      &testbed::TopologyPicker::hidden_pairs));
  registry.add(make_single_link());
  registry.add(make_ap_wlan("ap_wlan", 4));
  for (int n = 3; n <= 6; ++n) {
    registry.add(make_ap_wlan("ap_wlan_" + std::to_string(n), n));
  }
  registry.add(make_mesh_dissemination());
  registry.add(make_interferer_triple());
  for (int k = 2; k <= 7; ++k) {
    registry.add(make_disjoint_flows("disjoint_flows_" + std::to_string(k), k));
  }
  registry.add(make_dest_queue_ablation());
  registry.add(make_chain());
  registry.add(make_mixed_floor());
  for (int pct : {10, 25, 50}) {
    registry.add(make_dense_grid("dense_grid_" + std::to_string(pct), pct));
  }
  for (int nodes : {100, 200, 400}) {
    registry.add(make_testbed_family(nodes));
  }
  for (int flows : {50, 100, 200}) {
    registry.add(make_flows_family(flows));
  }
  registry.add(make_metro(10000, 1));
  for (int pct : {25, 50}) {
    registry.add(make_mobile_floor(pct));
  }
  registry.add(make_mobile_chain());
  registry.add(make_churn(25));
}

}  // namespace cmap::scenario
