#include "scenario/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/assert.h"

namespace cmap::scenario {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t mix_seed(std::initializer_list<std::uint64_t> parts) {
  std::uint64_t h = 0x6a09e667f3bcc908ull;  // sqrt(2) fractional bits
  for (std::uint64_t p : parts) h = splitmix64(h ^ splitmix64(p));
  return h;
}

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

int default_thread_count() {
  if (const char* v = std::getenv("CMAP_BENCH_THREADS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<int>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(int threads)
    : threads_(threads > 0 ? threads : default_thread_count()) {}

std::vector<RunSpec> SweepRunner::expand(const Sweep& sweep,
                                         int drawn_topologies) {
  const int n_variants =
      sweep.variants.empty() ? 1 : static_cast<int>(sweep.variants.size());
  const std::uint64_t scenario_hash = hash_name(sweep.scenario);
  std::vector<RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(sweep.schemes.size()) *
                static_cast<std::size_t>(n_variants) *
                static_cast<std::size_t>(drawn_topologies) *
                static_cast<std::size_t>(sweep.replicates));
  for (int sch = 0; sch < static_cast<int>(sweep.schemes.size()); ++sch) {
    for (int var = 0; var < n_variants; ++var) {
      for (int topo = 0; topo < drawn_topologies; ++topo) {
        for (int rep = 0; rep < sweep.replicates; ++rep) {
          RunSpec spec;
          spec.scheme_index = sch;
          spec.variant_index = var;
          spec.topology_index = topo;
          spec.replicate = rep;
          spec.seed = mix_seed({sweep.base_seed, scenario_hash,
                                static_cast<std::uint64_t>(sch),
                                static_cast<std::uint64_t>(var),
                                static_cast<std::uint64_t>(topo),
                                static_cast<std::uint64_t>(rep)});
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

std::vector<TopologyInstance> SweepRunner::draw_topologies(
    const Sweep& sweep, const testbed::Testbed& tb,
    const ScenarioRegistry& registry) {
  const Scenario& scenario = registry.at(sweep.scenario);
  sim::Rng topo_rng(
      mix_seed({sweep.base_seed, hash_name(scenario.name), 0x109011ull}));
  return scenario.topology(tb, sweep.topologies, topo_rng);
}

stats::SweepReport SweepRunner::run(const Sweep& sweep,
                                    const testbed::Testbed& tb,
                                    const ScenarioRegistry& registry) const {
  const Scenario& scenario = registry.at(sweep.scenario);
  CMAP_ASSERT(!sweep.schemes.empty(), "sweep needs at least one scheme");

  // Topology draws happen once, on the calling thread, and are shared
  // (read-only) by every cell so schemes compare over identical draws.
  const std::vector<TopologyInstance> topologies =
      draw_topologies(sweep, tb, registry);

  const std::vector<RunSpec> specs =
      expand(sweep, static_cast<int>(topologies.size()));

  struct Slot {
    bool valid = false;
    stats::RunRow row;
  };
  std::vector<Slot> slots(specs.size());

  const RunFn executor = scenario.run ? scenario.run : run_saturated_flows;
  auto execute = [&](const RunSpec& spec, Slot& slot) {
    testbed::RunConfig config = scenario.defaults;
    config.scheme = sweep.schemes[static_cast<std::size_t>(spec.scheme_index)];
    if (sweep.duration) config.duration = *sweep.duration;
    if (sweep.warmup) config.warmup = *sweep.warmup;
    const ConfigVariant* variant =
        sweep.variants.empty()
            ? nullptr
            : &sweep.variants[static_cast<std::size_t>(spec.variant_index)];
    if (variant && variant->apply) variant->apply(config);
    config.seed = spec.seed;

    const TopologyInstance& topo =
        topologies[static_cast<std::size_t>(spec.topology_index)];
    const RunOutcome outcome = executor(RunContext{tb, topo, config});
    if (!outcome.valid) return;

    stats::RunRow& row = slot.row;
    row.scenario = scenario.name;
    row.scheme = testbed::scheme_name(config.scheme);
    row.variant = variant ? variant->label : "";
    row.scheme_index = spec.scheme_index;
    row.variant_index = spec.variant_index;
    row.topology_index = spec.topology_index;
    row.replicate = spec.replicate;
    row.topology = topo.label;
    row.seed = spec.seed;
    row.aggregate_mbps = outcome.aggregate_mbps;
    row.metrics = outcome.metrics;
    row.flows.reserve(outcome.flows.size());
    for (const auto& f : outcome.flows) {
      stats::FlowRow fr;
      fr.src = f.flow.src;
      fr.dst = f.flow.dst;
      fr.mbps = f.mbps;
      fr.unique_packets = f.unique_packets;
      fr.duplicates = f.duplicates;
      fr.vps_sent = f.vps_sent;
      fr.rx_vps_delim = f.rx_vps_delim;
      fr.rx_vps_header = f.rx_vps_header;
      fr.defer_events = f.defer_events;
      fr.retx_timeouts = f.retx_timeouts;
      row.flows.push_back(fr);
    }
    slot.valid = true;
  };

  const int workers =
      std::min(threads_, static_cast<int>(specs.empty() ? 1 : specs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) execute(specs[i], slots[i]);
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size() || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          execute(specs[i], slots[i]);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  stats::SweepReport report;
  for (auto& slot : slots) {
    if (slot.valid) report.add_row(std::move(slot.row));
  }
  return report;
}

}  // namespace cmap::scenario
