#include "scenario/sweep.h"

#include <algorithm>

#include "sim/assert.h"
#include "sim/parallel.h"
#include "testbed/testbed.h"

namespace cmap::scenario {

std::uint64_t mix_seed(std::initializer_list<std::uint64_t> parts) {
  std::uint64_t h = 0x6a09e667f3bcc908ull;  // sqrt(2) fractional bits
  for (std::uint64_t p : parts) h = sim::mix64(h ^ sim::mix64(p));
  return h;
}

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::string run_path(const std::string& dir, const std::string& scenario,
                     const RunSpec& spec, const char* extension) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += scenario;
  path += "_s" + std::to_string(spec.scheme_index);
  path += "_v" + std::to_string(spec.variant_index);
  path += "_t" + std::to_string(spec.topology_index);
  path += "_r" + std::to_string(spec.replicate);
  path += extension;
  return path;
}

}  // namespace

std::string trace_run_path(const std::string& dir, const std::string& scenario,
                           const RunSpec& spec) {
  return run_path(dir, scenario, spec, ".cmtrace");
}

std::string metrics_run_path(const std::string& dir,
                             const std::string& scenario,
                             const RunSpec& spec) {
  return run_path(dir, scenario, spec, ".metrics.json");
}

SweepRunner::SweepRunner(int threads)
    : threads_(threads > 0 ? threads : sim::default_thread_count()) {}

std::vector<RunSpec> SweepRunner::expand(const Sweep& sweep,
                                         int drawn_topologies) {
  const int n_variants =
      sweep.variants.empty() ? 1 : static_cast<int>(sweep.variants.size());
  const std::uint64_t scenario_hash = hash_name(sweep.scenario);
  std::vector<RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(sweep.schemes.size()) *
                static_cast<std::size_t>(n_variants) *
                static_cast<std::size_t>(drawn_topologies) *
                static_cast<std::size_t>(sweep.replicates));
  for (int sch = 0; sch < static_cast<int>(sweep.schemes.size()); ++sch) {
    for (int var = 0; var < n_variants; ++var) {
      for (int topo = 0; topo < drawn_topologies; ++topo) {
        for (int rep = 0; rep < sweep.replicates; ++rep) {
          RunSpec spec;
          spec.scheme_index = sch;
          spec.variant_index = var;
          spec.topology_index = topo;
          spec.replicate = rep;
          spec.seed = mix_seed({sweep.base_seed, scenario_hash,
                                static_cast<std::uint64_t>(sch),
                                static_cast<std::uint64_t>(var),
                                static_cast<std::uint64_t>(topo),
                                static_cast<std::uint64_t>(rep)});
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

std::vector<TopologyInstance> SweepRunner::draw_topologies(
    const Sweep& sweep, const testbed::Testbed& tb,
    const ScenarioRegistry& registry) {
  const Scenario& scenario = registry.at(sweep.scenario);
  sim::Rng topo_rng(
      mix_seed({sweep.base_seed, hash_name(scenario.name), 0x109011ull}));
  return scenario.topology(tb, sweep.topologies, topo_rng);
}

stats::SweepReport SweepRunner::run(const Sweep& sweep,
                                    const testbed::Testbed& tb,
                                    const ScenarioRegistry& registry) const {
  const Scenario& scenario = registry.at(sweep.scenario);
  CMAP_ASSERT(!sweep.schemes.empty(), "sweep needs at least one scheme");

  // Topology draws happen once, on the calling thread, and are shared
  // (read-only) by every cell so schemes compare over identical draws.
  const std::vector<TopologyInstance> topologies =
      draw_topologies(sweep, tb, registry);

  const std::vector<RunSpec> specs =
      expand(sweep, static_cast<int>(topologies.size()));

  struct Slot {
    bool valid = false;
    stats::RunRow row;
  };
  std::vector<Slot> slots(specs.size());

  const RunFn executor = scenario.run ? scenario.run : run_saturated_flows;
  auto execute = [&](const RunSpec& spec, Slot& slot) {
    testbed::RunConfig config = scenario.defaults;
    config.scheme = sweep.schemes[static_cast<std::size_t>(spec.scheme_index)];
    if (sweep.duration) config.duration = *sweep.duration;
    if (sweep.warmup) config.warmup = *sweep.warmup;
    const ConfigVariant* variant =
        sweep.variants.empty()
            ? nullptr
            : &sweep.variants[static_cast<std::size_t>(spec.variant_index)];
    if (variant && variant->apply) variant->apply(config);
    config.seed = spec.seed;
    if (sweep.trace && !sweep.trace->path.empty()) {
      trace::TraceConfig tc = *sweep.trace;
      tc.path = trace_run_path(sweep.trace->path, scenario.name, spec);
      config.trace = tc;
    }
    if (sweep.metrics) {
      metrics::MetricsConfig mc = *sweep.metrics;
      if (!mc.path.empty()) {
        mc.path = metrics_run_path(sweep.metrics->path, scenario.name, spec);
      }
      config.metrics = mc;
    }

    const TopologyInstance& topo =
        topologies[static_cast<std::size_t>(spec.topology_index)];
    const RunOutcome outcome = executor(RunContext{tb, topo, config});
    if (!outcome.valid) return;

    stats::RunRow& row = slot.row;
    row.scenario = scenario.name;
    row.scheme = testbed::scheme_name(config.scheme);
    row.variant = variant ? variant->label : "";
    row.scheme_index = spec.scheme_index;
    row.variant_index = spec.variant_index;
    row.topology_index = spec.topology_index;
    row.replicate = spec.replicate;
    row.topology = topo.label;
    row.seed = spec.seed;
    row.aggregate_mbps = outcome.aggregate_mbps;
    row.metrics = outcome.metrics;
    row.profile = outcome.profile;
    row.flows.reserve(outcome.flows.size());
    for (const auto& f : outcome.flows) {
      stats::FlowRow fr;
      fr.src = f.flow.src;
      fr.dst = f.flow.dst;
      fr.mbps = f.mbps;
      fr.unique_packets = f.unique_packets;
      fr.duplicates = f.duplicates;
      fr.vps_sent = f.vps_sent;
      fr.rx_vps_delim = f.rx_vps_delim;
      fr.rx_vps_header = f.rx_vps_header;
      fr.defer_events = f.defer_events;
      fr.retx_timeouts = f.retx_timeouts;
      row.flows.push_back(fr);
    }
    slot.valid = true;
  };

  sim::parallel_for(threads_, specs.size(),
                    [&](std::size_t i) { execute(specs[i], slots[i]); });

  stats::SweepReport report;
  for (auto& slot : slots) {
    if (slot.valid) report.add_row(std::move(slot.row));
  }
  return report;
}

stats::SweepReport SweepRunner::run(const Sweep& sweep,
                                    const ScenarioRegistry& registry) const {
  const Scenario& scenario = registry.at(sweep.scenario);
  CMAP_ASSERT(scenario.testbed.has_value(),
              "scenario has no canonical testbed; pass one explicitly");
  const std::shared_ptr<const testbed::Testbed> tb =
      testbed::TestbedCache::global().get(*scenario.testbed);
  return run(sweep, *tb, registry);
}

}  // namespace cmap::scenario
