#include "mac80211/dcf.h"

#include <algorithm>
#include <memory>

#include "sim/assert.h"

namespace cmap::mac80211 {

DcfMac::DcfMac(sim::Simulator& simulator, phy::Radio& radio, DcfConfig config,
               sim::Rng rng)
    : sim_(simulator),
      radio_(radio),
      config_(config),
      rng_(rng),
      cw_(config.cw_min) {
  radio_.set_listener(this);
}

bool DcfMac::send(mac::Packet packet) {
  if (queue_.size() >= config_.queue_limit) {
    ++stats_.dropped_queue_full;
    return false;
  }
  ++stats_.enqueued;
  queue_.push_back(packet);
  if (state_ == State::kIdle) {
    begin_service();
  }
  return true;
}

void DcfMac::begin_service() {
  CMAP_ASSERT(!queue_.empty(), "begin_service with empty queue");
  head_seq_ = ++next_seq_;
  head_is_retry_ = false;
  state_ = State::kContend;
  backoff_slots_ = static_cast<int>(rng_.uniform_int(0, cw_));
  resume_contention();
}

void DcfMac::resume_contention() {
  if (state_ != State::kContend) return;
  cancel_contention_timers();
  if (medium_busy()) return;  // on_cca(false) will re-arm
  difs_event_ = sim_.in(config_.difs(), [this] { on_difs_elapsed(); });
}

void DcfMac::on_difs_elapsed() {
  if (state_ != State::kContend) return;
  schedule_slot();
}

void DcfMac::schedule_slot() {
  if (backoff_slots_ <= 0) {
    attempt_tx();
    return;
  }
  slot_event_ = sim_.in(config_.slot, [this] {
    if (state_ != State::kContend) return;
    --backoff_slots_;
    schedule_slot();
  });
}

void DcfMac::cancel_contention_timers() {
  difs_event_.cancel();
  slot_event_.cancel();
}

void DcfMac::attempt_tx() {
  CMAP_ASSERT(state_ == State::kContend, "attempt_tx outside contention");
  // An ACK we owe (or are sending) outranks our data: postpone the attempt
  // until the ACK is off the air.
  if (ack_tx_event_.pending() || sending_ack_ || radio_.transmitting()) {
    slot_event_ = sim_.in(
        config_.sifs + phy::frame_airtime(config_.control_rate,
                                          mac::kAckBytes),
        [this] {
          if (state_ == State::kContend) resume_contention();
        });
    return;
  }
  const mac::Packet& head = queue_.front();
  auto data = std::make_shared<mac::DataFrame>();
  data->src = radio_.id();
  data->dst = head.dst;
  data->seq = head_seq_;
  data->retry = head_is_retry_;
  data->packet = head;

  phy::Frame frame;
  frame.rate = config_.data_rate;
  frame.segments = {{phy::SegmentKind::kWhole, data->wire_bytes()}};
  frame.payload = data;

  cancel_contention_timers();
  state_ = State::kTx;
  ++stats_.data_frames_sent;
  if (head_is_retry_) ++stats_.retransmissions;
  radio_.transmit(std::move(frame));
}

void DcfMac::on_tx_end(const phy::Frame& frame) {
  if (sending_ack_) {
    sending_ack_ = false;
    // If a data packet was mid-contention, resume it.
    if (state_ == State::kContend) resume_contention();
    return;
  }
  if (state_ != State::kTx) return;
  const auto* data = dynamic_cast<const mac::DataFrame*>(frame.payload.get());
  CMAP_ASSERT(data != nullptr, "DCF transmitted a non-data frame");
  const bool wants_ack =
      config_.acks && data->dst != phy::kBroadcastId;
  if (!wants_ack) {
    tx_success();
    return;
  }
  state_ = State::kWaitAck;
  ack_timeout_event_ =
      sim_.in(config_.ack_timeout(), [this] { on_ack_timeout(); });
}

void DcfMac::on_ack_timeout() {
  if (state_ != State::kWaitAck) return;
  ++stats_.ack_timeouts;
  ++retries_;
  if (retries_ > config_.retry_limit) {
    drop_head();
    return;
  }
  cw_ = std::min(2 * (cw_ + 1) - 1, config_.cw_max);
  head_is_retry_ = true;
  state_ = State::kContend;
  backoff_slots_ = static_cast<int>(rng_.uniform_int(0, cw_));
  resume_contention();
}

void DcfMac::tx_success() {
  queue_.pop_front();
  retries_ = 0;
  cw_ = config_.cw_min;
  serve_next();
}

void DcfMac::drop_head() {
  ++stats_.dropped_retry_limit;
  queue_.pop_front();
  retries_ = 0;
  cw_ = config_.cw_min;
  serve_next();
}

void DcfMac::serve_next() {
  // Let the source refill before deciding whether to go idle; state is
  // still kTx/kWaitAck here so a reentrant send() cannot double-start.
  if (drain_handler_) drain_handler_();
  if (!queue_.empty()) {
    begin_service();
  } else {
    state_ = State::kIdle;
  }
}

void DcfMac::on_cca(bool busy) {
  if (!config_.carrier_sense || state_ != State::kContend) return;
  if (busy) {
    cancel_contention_timers();  // freeze the backoff counter
  } else {
    resume_contention();
  }
}

void DcfMac::on_rx_end(const phy::Frame& frame, const phy::RxResult& result) {
  if (!result.all_ok()) {
    ++stats_.corrupt_frames;
    return;
  }
  if (const auto* data =
          dynamic_cast<const mac::DataFrame*>(frame.payload.get())) {
    if (data->dst != radio_.id() && data->dst != phy::kBroadcastId) return;
    const bool dup = dup_filter_.seen_before(data->src, data->seq);
    if (dup) {
      ++stats_.duplicates;
    } else {
      ++stats_.delivered;
    }
    if (rx_handler_) {
      rx_handler_(data->packet, RxInfo{result.rssi_dbm, dup});
    }
    if (config_.acks && data->dst == radio_.id()) {
      const phy::NodeId to = data->src;
      const std::uint32_t seq = data->seq;
      ack_tx_event_ = sim_.in(config_.sifs, [this, to, seq] {
        send_ack(to, seq);
      });
    }
    return;
  }
  if (const auto* ack =
          dynamic_cast<const mac::AckFrame*>(frame.payload.get())) {
    if (ack->dst != radio_.id()) return;
    if (state_ != State::kWaitAck || ack->seq != head_seq_) return;
    ack_timeout_event_.cancel();
    ++stats_.acks_received;
    tx_success();
  }
}

void DcfMac::send_ack(phy::NodeId to, std::uint32_t seq) {
  // The SIFS gap is shorter than any DIFS, so nobody legitimate talks over
  // an ACK; but if this node itself started transmitting, drop the ACK.
  if (radio_.transmitting()) return;
  auto ack = std::make_shared<mac::AckFrame>();
  ack->src = radio_.id();
  ack->dst = to;
  ack->seq = seq;
  phy::Frame frame;
  frame.rate = config_.control_rate;
  frame.segments = {{phy::SegmentKind::kWhole, ack->wire_bytes()}};
  frame.payload = ack;
  ++stats_.acks_sent;
  sending_ack_ = true;
  // Sending the ACK invalidates any frozen contention timer state; it is
  // re-armed when the ACK finishes (on_tx_end).
  cancel_contention_timers();
  radio_.transmit(std::move(frame));
}

}  // namespace cmap::mac80211
