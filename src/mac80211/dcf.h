// 802.11 DCF (CSMA/CA) — the paper's baseline. Three variants, selected by
// config, correspond exactly to the curves in Figures 12/13/15/17:
//   * carrier_sense=true,  acks=true   — "CS, acks" (the status quo)
//   * carrier_sense=false, acks=true   — "CS off, acks"
//   * carrier_sense=false, acks=false  — "CS off, no acks"
// Implements DIFS + slotted contention-window backoff with freezing,
// stop-and-wait ACK with retry limit and exponential CW growth.
#pragma once

#include <deque>

#include "mac/dup_filter.h"
#include "mac/mac.h"
#include "mac/wire.h"
#include "phy/radio.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace cmap::mac80211 {

struct DcfConfig {
  bool carrier_sense = true;
  bool acks = true;
  int cw_min = 15;    // initial contention window (slots)
  int cw_max = 1023;  // cap after exponential growth
  int retry_limit = 7;
  std::size_t queue_limit = 64;
  phy::WifiRate data_rate = phy::WifiRate::k6Mbps;
  phy::WifiRate control_rate = phy::WifiRate::k6Mbps;
  sim::Time slot = 9 * sim::kNsPerUs;
  sim::Time sifs = 16 * sim::kNsPerUs;

  sim::Time difs() const { return sifs + 2 * slot; }
  sim::Time ack_timeout() const {
    return sifs + slot + phy::frame_airtime(control_rate, mac::kAckBytes) +
           10 * sim::kNsPerUs;
  }
};

class DcfMac final : public mac::Mac, public phy::RadioListener {
 public:
  DcfMac(sim::Simulator& simulator, phy::Radio& radio, DcfConfig config,
         sim::Rng rng);

  // mac::Mac
  bool send(mac::Packet packet) override;
  void set_rx_handler(RxHandler handler) override { rx_handler_ = handler; }
  void set_drain_handler(DrainHandler handler) override {
    drain_handler_ = handler;
  }
  std::size_t queue_depth() const override { return queue_.size(); }
  const mac::MacStats& stats() const override { return stats_; }

  const DcfConfig& config() const { return config_; }
  int current_cw() const { return cw_; }

  // phy::RadioListener
  void on_rx_end(const phy::Frame& frame, const phy::RxResult& result) override;
  void on_cca(bool busy) override;
  void on_tx_end(const phy::Frame& frame) override;

 private:
  enum class State { kIdle, kContend, kTx, kWaitAck };

  void begin_service();          // draw backoff for the head packet
  void resume_contention();      // (re)arm DIFS wait
  void on_difs_elapsed();
  void schedule_slot();
  void attempt_tx();
  void cancel_contention_timers();
  void on_ack_timeout();
  void tx_success();
  void drop_head();
  void serve_next();
  void send_ack(phy::NodeId to, std::uint32_t seq);

  bool medium_busy() const {
    return config_.carrier_sense && radio_.carrier_busy();
  }

  sim::Simulator& sim_;
  phy::Radio& radio_;
  DcfConfig config_;
  sim::Rng rng_;

  RxHandler rx_handler_;
  DrainHandler drain_handler_;
  mac::MacStats stats_;
  mac::DupFilter dup_filter_;

  std::deque<mac::Packet> queue_;
  State state_ = State::kIdle;
  int cw_ = 15;
  int retries_ = 0;
  int backoff_slots_ = 0;
  std::uint32_t next_seq_ = 0;
  std::uint32_t head_seq_ = 0;
  bool head_is_retry_ = false;

  sim::EventId difs_event_;
  sim::EventId slot_event_;
  sim::EventId ack_timeout_event_;
  sim::EventId ack_tx_event_;  // pending SIFS-delayed ACK transmission
  bool sending_ack_ = false;
};

}  // namespace cmap::mac80211
