#include "metrics/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace cmap::metrics {

namespace {

struct CounterInfo {
  const char* name;
  Kind kind;
  Domain domain;
};

// Indexed by Counter; order must match the enum (static_assert below).
constexpr CounterInfo kCatalog[] = {
    {"phy.transmits", Kind::kSum, Domain::kPhy},
    {"phy.gain_cache_hits", Kind::kSum, Domain::kPhy},
    {"phy.gain_cache_misses", Kind::kSum, Domain::kPhy},
    {"phy.culled_receivers", Kind::kSum, Domain::kPhy},
    {"phy.deliveries", Kind::kSum, Domain::kPhy},
    {"phy.floor_drops", Kind::kSum, Domain::kPhy},
    {"phy.watch_rechecks", Kind::kSum, Domain::kPhy},
    {"phy.rx_ok", Kind::kSum, Domain::kPhy},
    {"phy.rx_corrupt", Kind::kSum, Domain::kPhy},
    {"phy.collision_preamble_sinr", Kind::kSum, Domain::kPhy},
    {"phy.collision_captured", Kind::kSum, Domain::kPhy},
    {"phy.collision_local_tx", Kind::kSum, Domain::kPhy},
    {"mac.send_decisions", Kind::kSum, Domain::kMac},
    {"mac.defer_dst_busy", Kind::kSum, Domain::kMac},
    {"mac.defer_conflict_map", Kind::kSum, Domain::kMac},
    {"mac.defer_probes", Kind::kSum, Domain::kMac},
    {"mac.defer_inserts", Kind::kSum, Domain::kMac},
    {"mac.defer_refreshes", Kind::kSum, Domain::kMac},
    {"mac.defer_ttl_expiries", Kind::kSum, Domain::kMac},
    {"mac.defer_occupancy_hw", Kind::kMax, Domain::kMac},
    {"mac.ongoing_active_hw", Kind::kMax, Domain::kMac},
    {"dyn.moves", Kind::kSum, Domain::kDynamics},
    {"dyn.incremental_invalidations", Kind::kSum, Domain::kDynamics},
    {"dyn.full_refreshes", Kind::kSum, Domain::kDynamics},
    {"dyn.channel_epochs", Kind::kSum, Domain::kDynamics},
};

static_assert(sizeof(kCatalog) / sizeof(kCatalog[0]) == kCounterCount,
              "counter catalog out of sync with the Counter enum");

void append_u64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void append_ms(std::string* out, double ms) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  *out += buf;
}

}  // namespace

const char* counter_name(Counter c) {
  return kCatalog[static_cast<std::size_t>(c)].name;
}

Kind counter_kind(Counter c) {
  return kCatalog[static_cast<std::size_t>(c)].kind;
}

Domain counter_domain(Counter c) {
  return kCatalog[static_cast<std::size_t>(c)].domain;
}

std::string MetricsSnapshot::counters_json() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if ((domains & bit(kCatalog[i].domain)) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += kCatalog[i].name;
    out += "\":";
    append_u64(&out, counters[i]);
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":";
  out += counters_json();
  out += ",\"execution\":{\"partitions\":";
  append_u64(&out, static_cast<std::uint64_t>(partitions));
  out += ",\"threads\":";
  append_u64(&out, static_cast<std::uint64_t>(threads));
  out += ",\"queue_depth_high_water\":";
  append_u64(&out, queue_depth_high_water);
  out += ",\"queue_compactions\":";
  append_u64(&out, queue_compactions);
  out += ",\"rounds\":";
  append_u64(&out, rounds);
  out += ",\"global_barriers\":";
  append_u64(&out, global_barriers);
  out += ",\"merged_windows\":";
  append_u64(&out, merged_windows);
  out += ",\"parallel_wall_ms\":";
  append_ms(&out, parallel_wall_ms);
  // The histogram serializes sparsely: only occupied bins, as
  // "log2_bin": count — windows span ns to seconds, so most bins are 0.
  out += ",\"window_log2\":{";
  bool first = true;
  for (std::size_t i = 0; i < window_log2.size(); ++i) {
    if (window_log2[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_u64(&out, static_cast<std::uint64_t>(i));
    out += "\":";
    append_u64(&out, window_log2[i]);
  }
  out += "},\"partitions_detail\":[";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const PartitionExec& p = parts[i];
    if (i != 0) out += ",";
    out += "{\"partition\":";
    append_u64(&out, static_cast<std::uint64_t>(p.partition));
    out += ",\"executed\":";
    append_u64(&out, p.executed);
    out += ",\"mailbox_posted\":";
    append_u64(&out, p.mailbox_posted);
    out += ",\"busy_ms\":";
    append_ms(&out, p.busy_ms);
    out += ",\"barrier_wait_ms\":";
    append_ms(&out, p.barrier_wait_ms);
    out += "}";
  }
  out += "]}}";
  return out;
}

void MetricsSnapshot::print_counters(std::FILE* out) const {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if ((domains & bit(kCatalog[i].domain)) == 0) continue;
    std::fprintf(out, "  %-32s %12" PRIu64 "\n", kCatalog[i].name,
                 counters[i]);
  }
}

MetricsSnapshot aggregate_counters(
    const std::vector<const MetricsSnapshot*>& runs) {
  MetricsSnapshot total;
  for (const MetricsSnapshot* run : runs) {
    if (run == nullptr) continue;
    total.domains |= run->domains;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      if (kCatalog[i].kind == Kind::kMax) {
        if (run->counters[i] > total.counters[i]) {
          total.counters[i] = run->counters[i];
        }
      } else {
        total.counters[i] += run->counters[i];
      }
    }
  }
  return total;
}

}  // namespace cmap::metrics
