// Run-level metrics: a deterministic, zero-overhead-when-off counter
// registry plus the execution profile of one run (ROADMAP "measure
// itself"; catalog and contract in docs/metrics.md).
//
// Cost model mirrors the trace subsystem (trace/trace.h): every
// instrumented component holds a MetricsHook whose enablement is cached at
// bind time, so a disabled site pays exactly one branch on a cached word —
// no virtual call, no pointer chase, no atomic. With metrics off entirely
// (RunConfig::metrics unset, the default) the hook mask is zero.
// bench_metrics measures the disabled-mode ratio and CI gates it at 1.02.
//
// Determinism contract: the counter section is a pure function of
// (config, seed) — byte-identical across SweepRunner thread counts AND
// across PDES partition counts (tests/metrics/test_metrics_golden.cpp).
// Counters are relaxed std::atomic sums and maxes: both are commutative,
// so the value is independent of the order partition workers interleave
// their increments, and concurrent increments are race-free under TSan.
// Everything that genuinely depends on the execution strategy — event
// queue depths, PDES rounds, windows, mailbox traffic, barrier waits,
// wall-clock timings — lives in the separate *execution* section of the
// snapshot, which is explicitly exempt from the byte-identity contract.
//
// Registry state is run-local (owned by the World, like the Tracer), never
// static: runs stay independent and cmap_lint's mutable-static rule stays
// green.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.h"

namespace cmap::metrics {

/// Instrumentation domains, mirroring the subsystem split. A hook binds
/// with its component's domain; domains outside MetricsConfig::domains
/// cost one branch at the site and nothing else.
enum class Domain : std::uint8_t {
  kPhy = 0,       // Medium + Radio: fan-out, caches, collisions
  kMac = 1,       // CmapMac: defer decisions, DeferTable, OngoingList
  kSim = 2,       // event queues + PDES execution profile
  kDynamics = 3,  // mobility moves, cache invalidations, channel epochs
  kCount
};

inline constexpr std::size_t kDomainCount =
    static_cast<std::size_t>(Domain::kCount);

constexpr std::uint32_t bit(Domain d) {
  return 1u << static_cast<std::uint32_t>(d);
}

inline constexpr std::uint32_t kAllDomains = (1u << kDomainCount) - 1;

/// The deterministic counter catalog. Every entry is either a sum or a
/// high-water max of per-event quantities the simulation itself fully
/// determines, so totals are invariant to how the run was executed.
enum class Counter : std::uint16_t {
  // -- Domain::kPhy --
  kPhyTransmits = 0,        // frames put on the air (Medium::transmit)
  kPhyGainCacheHits,        // link-gain lookups served from cache
  kPhyGainCacheMisses,      // link-gain lookups that recomputed the model
  kPhyCulledReceivers,      // receivers skipped by the reachability cull
  kPhyDeliveries,           // per-receiver delivery events scheduled
  kPhyFloorDrops,           // deliveries dropped below the noise floor
  kPhyWatchRechecks,        // sparse watch-list links rechecked on refresh
  kPhyRxOk,                 // locked frames decoded clean
  kPhyRxCorrupt,            // locked frames that failed the SINR sweep
  kPhyCollisionPreambleSinr,  // receptions lost: preamble under lock SINR
  kPhyCollisionCaptured,      // receptions lost: captured by stronger frame
  kPhyCollisionLocalTx,       // receptions lost: own transmission started
  // -- Domain::kMac --
  kMacSendDecisions,     // CMAP send/defer decisions taken
  kMacDeferDstBusy,      // deferred: destination party to an ongoing tx
  kMacDeferConflictMap,  // deferred: a conflict-map pattern matched
  kMacDeferProbes,       // DeferTable hash-chain probes
  kMacDeferInserts,      // DeferTable entries newly linked
  kMacDeferRefreshes,    // DeferTable TTLs refreshed in place
  kMacDeferTtlExpiries,  // DeferTable entries reclaimed past their TTL
  kMacDeferOccupancyHw,  // max live DeferTable entries on any one node
  kMacOngoingActiveHw,   // max active OngoingList entries on any one node
  // -- Domain::kDynamics --
  kDynMoves,              // node position updates applied
  kDynIncrementalInvalidations,  // moves absorbed by row/col invalidation
  kDynFullRefreshes,      // moves or epochs that forced a full gain rebuild
  kDynChannelEpochs,      // AR(1) channel-dynamics epochs advanced
  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// How a counter accumulates: kSum adds, kMax keeps the high water.
enum class Kind : std::uint8_t { kSum, kMax };

/// Stable short name ("phy.gain_cache_hits", ...), the JSON key and the
/// table label.
const char* counter_name(Counter c);
Kind counter_kind(Counter c);
Domain counter_domain(Counter c);

/// The RunConfig / Sweep knob.
struct MetricsConfig {
  /// Per-run snapshot JSON file. For Sweep-level metrics this names a
  /// directory instead (see scenario::metrics_run_path()); empty writes no
  /// file — the snapshot still rides in the run result.
  std::string path;
  /// Enabled-domain bitmask (bit(Domain)).
  std::uint32_t domains = kAllDomains;

  bool operator==(const MetricsConfig&) const = default;
};

/// The run-local accumulator. Thread-safe by construction: every slot is a
/// relaxed atomic and every operation is commutative, so PDES partition
/// workers may increment concurrently without perturbing the totals.
class Registry {
 public:
  explicit Registry(std::uint32_t domains = kAllDomains)
      : domains_(domains) {
    for (auto& v : values_) v.store(0, std::memory_order_relaxed);
  }
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  std::uint32_t domains() const { return domains_; }

  void add(Counter c, std::uint64_t n) {
    values_[static_cast<std::size_t>(c)].fetch_add(n,
                                                   std::memory_order_relaxed);
  }
  /// Raise the slot to at least v (relaxed CAS max — commutative).
  void raise(Counter c, std::uint64_t v) {
    auto& slot = values_[static_cast<std::size_t>(c)];
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < v &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value(Counter c) const {
    return values_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }

 private:
  std::uint32_t domains_;
  std::array<std::atomic<std::uint64_t>, kCounterCount> values_;
};

/// The per-component handle instrumentation sites check, mirroring
/// trace::TraceHook: `mask` caches "registry present AND my domain
/// enabled" at bind time, so a disabled site costs exactly one branch.
struct MetricsHook {
  Registry* registry = nullptr;
  std::uint32_t mask = 0;

  void bind(Registry* r, Domain d) {
    registry = r;
    mask = (r != nullptr && (r->domains() & bit(d)) != 0) ? 1u : 0u;
  }
  bool on() const { return mask != 0; }
  void inc(Counter c) const {
    if (mask != 0) registry->add(c, 1);
  }
  void add(Counter c, std::uint64_t n) const {
    if (mask != 0) registry->add(c, n);
  }
  void raise(Counter c, std::uint64_t v) const {
    if (mask != 0) registry->raise(c, v);
  }
};

/// One partition's share of the run, for the PDES stall attribution rows.
/// barrier_wait_ms is the partition's idle share of the parallel phase:
/// the total time windows were executing anywhere minus the time this
/// partition's own events were executing.
struct PartitionExec {
  int partition = 0;
  std::uint64_t executed = 0;        // events dispatched by this queue
  std::uint64_t mailbox_posted = 0;  // cross-group messages addressed to it
  double busy_ms = 0.0;
  double barrier_wait_ms = 0.0;
};

/// Everything one run measured, split into the deterministic counter
/// section (counters_json(), byte-identical across thread and partition
/// counts) and the execution section (everything else — explicitly a
/// property of how the run was executed, not of the simulation).
struct MetricsSnapshot {
  std::uint32_t domains = 0;

  // ---- deterministic counter section ----
  std::array<std::uint64_t, kCounterCount> counters{};

  // ---- execution section (not covered by the byte-identity contract) ----
  int partitions = 1;
  int threads = 1;
  std::uint64_t queue_depth_high_water = 0;  // max heap depth, any queue
  std::uint64_t queue_compactions = 0;       // cancelled-entry compactions
  std::uint64_t rounds = 0;                  // conservative PDES rounds
  std::uint64_t global_barriers = 0;         // global-sequencer barriers
  std::uint64_t merged_windows = 0;          // zero-lookahead merged groups
  /// Histogram of conservative window sizes: bin i counts windows with
  /// floor(log2(size_ns)) == i (bin 0 also takes size 1 ns).
  std::array<std::uint64_t, 64> window_log2{};
  std::vector<PartitionExec> parts;
  double parallel_wall_ms = 0.0;  // total time partition windows were live

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }

  /// Deterministic section only: {"phy.transmits":N,...}, fixed catalog
  /// order, enabled domains only. The byte-identity tests compare exactly
  /// this string.
  std::string counters_json() const;
  /// Full snapshot: {"counters":{...},"execution":{...}}.
  std::string to_json() const;
  /// Aligned two-column table of the counter section (debugging aid).
  void print_counters(std::FILE* out = stdout) const;
};

/// Sum/max-merge the counter sections of many runs (the per-sweep
/// aggregated table). Execution sections are intentionally not merged —
/// they describe individual runs. Null entries are skipped.
MetricsSnapshot aggregate_counters(
    const std::vector<const MetricsSnapshot*>& runs);

}  // namespace cmap::metrics
