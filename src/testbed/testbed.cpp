#include "testbed/testbed.h"

#include <algorithm>
#include <cmath>

#include "phy/units.h"
#include "sim/assert.h"

namespace cmap::testbed {

Testbed::Testbed(TestbedConfig config) : config_(config) {
  config_.prop.seed = config_.seed;
  propagation_ = std::make_shared<phy::LogDistanceShadowing>(config_.prop);
  error_model_ = std::make_shared<phy::NistErrorModel>();

  // Scatter nodes uniformly over the floor, with a minimum separation so
  // no two "machines sit in the same rack". The separation check is
  // grid-hashed (cells of min_sep; a conflict can only sit in the 3x3
  // neighborhood), replacing an O(n) scan per candidate — same candidate
  // stream, same accept/reject decisions, byte-identical placements.
  sim::Rng rng(config_.seed);
  sim::Rng place = rng.substream(0x91ace, 0);
  const double min_sep = 2.0;
  const int grid_w = std::max(
      1, static_cast<int>(std::ceil(config_.width_m / min_sep)));
  const int grid_h = std::max(
      1, static_cast<int>(std::ceil(config_.height_m / min_sep)));
  std::vector<std::vector<std::uint32_t>> cells(
      static_cast<std::size_t>(grid_w) * static_cast<std::size_t>(grid_h));
  const auto cell_of = [&](const phy::Position& p) {
    const int cx = std::min(grid_w - 1, static_cast<int>(p.x / min_sep));
    const int cy = std::min(grid_h - 1, static_cast<int>(p.y / min_sep));
    return std::pair<int, int>{cx, cy};
  };
  // Over-dense floors used to spin forever here; bound the consecutive
  // rejections and fail with a clear error instead. The bound is generous:
  // a feasible configuration rejecting this many times in a row has
  // probability ~0.
  const long max_consecutive_rejects = 1000L * config_.num_nodes + 100000L;
  long rejects = 0;
  positions_.reserve(config_.num_nodes);
  while (positions_.size() < static_cast<std::size_t>(config_.num_nodes)) {
    phy::Position p{place.uniform(0.0, config_.width_m),
                    place.uniform(0.0, config_.height_m)};
    const auto [cx, cy] = cell_of(p);
    bool ok = true;
    for (int dy = -1; dy <= 1 && ok; ++dy) {
      for (int dx = -1; dx <= 1 && ok; ++dx) {
        const int nx = cx + dx, ny = cy + dy;
        if (nx < 0 || nx >= grid_w || ny < 0 || ny >= grid_h) continue;
        for (const std::uint32_t i :
             cells[static_cast<std::size_t>(ny) * grid_w + nx]) {
          if (phy::distance(p, positions_[i]) < min_sep) {
            ok = false;
            break;
          }
        }
      }
    }
    if (ok) {
      cells[static_cast<std::size_t>(cy) * grid_w + cx].push_back(
          static_cast<std::uint32_t>(positions_.size()));
      positions_.push_back(p);
      rejects = 0;
    } else if (++rejects > max_consecutive_rejects) {
      std::fprintf(stderr,
                   "Testbed: cannot place %d nodes with min separation "
                   "%.1f m on a %.1f x %.1f m floor (placed %zu; floor too "
                   "dense)\n",
                   config_.num_nodes, min_sep, config_.width_m,
                   config_.height_m, positions_.size());
      CMAP_ASSERT(false, "testbed floor too dense for num_nodes / min_sep");
    }
  }

  // Measurement pass: PRR and signal strength per directed pair, delegated
  // to the LinkMeasurement subsystem (fast tabulated path or the retained
  // per-pair Monte-Carlo reference, per config_.measurement).
  LinkMeasurementSpec spec;
  spec.radio = config_.radio;
  spec.fading_sigma_db = config_.medium.fading_sigma_db;
  spec.delivery_floor_dbm = config_.medium.delivery_floor_dbm;
  spec.probe_rate = config_.probe_rate;
  spec.probe_bytes = config_.probe_bytes;
  spec.fading_samples = config_.prr_fading_samples;
  spec.seed = config_.seed;
  spec.config = config_.measurement;
  auto measurement =
      std::make_unique<LinkMeasurement>(spec, propagation_, error_model_);
  LinkMeasurementResult result = measurement->measure(positions_);
  connected_signals_ = std::move(result.connected_signals);
  p10_ = result.p10;
  p90_ = result.p90;
  if (config_.measurement.store == MeasurementStore::kSparse) {
    row_begin_ = std::move(result.row_begin);
    link_dst_ = std::move(result.dst);
    link_prr_ = std::move(result.sparse_prr);
    link_signal_ = std::move(result.sparse_signal);
    lazy_ = std::move(measurement);  // answers off-CSR pair queries
  } else {
    prr_ = std::move(result.prr);
    signal_ = std::move(result.signal);
  }

  // Precompute the potential-link list the topology pickers iterate; the
  // predicate inputs above are final from here on. The sparse store walks
  // only connected rows — a pair needs PRR > 0.9 both ways, so any
  // potential link is stored in both directions.
  const auto n = static_cast<phy::NodeId>(config_.num_nodes);
  if (sparse()) {
    for (phy::NodeId a = 0; a < n; ++a) {
      for (const phy::NodeId b : connected_neighbors(a)) {
        if (potential_link(a, b)) potential_links_.emplace_back(a, b);
      }
    }
  } else {
    for (phy::NodeId a = 0; a < n; ++a) {
      for (phy::NodeId b = 0; b < n; ++b) {
        if (a != b && potential_link(a, b)) potential_links_.emplace_back(a, b);
      }
    }
  }
  build_neighbor_csrs();
}

void Testbed::build_neighbor_csrs() {
  const auto n = static_cast<std::size_t>(config_.num_nodes);
  // potential_links_ is (from, to)-lexicographic, so the CSR is a direct
  // transcription.
  pot_begin_.assign(n + 1, 0);
  pot_dst_.reserve(potential_links_.size());
  for (const auto& [a, b] : potential_links_) {
    ++pot_begin_[a + 1];
    pot_dst_.push_back(b);
  }
  for (std::size_t i = 0; i < n; ++i) pot_begin_[i + 1] += pot_begin_[i];
  if (sparse()) return;  // connected rows are the stored CSR itself
  conn_begin_.assign(n + 1, 0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b && signal_[a * n + b] >= config_.medium.delivery_floor_dbm) {
        conn_dst_.push_back(static_cast<phy::NodeId>(b));
      }
    }
    conn_begin_[a + 1] = static_cast<std::uint32_t>(conn_dst_.size());
  }
}

std::ptrdiff_t Testbed::stored_index(phy::NodeId from, phy::NodeId to) const {
  const auto* lo = link_dst_.data() + row_begin_[from];
  const auto* hi = link_dst_.data() + row_begin_[from + 1];
  const auto* it = std::lower_bound(lo, hi, to);
  if (it == hi || *it != to) return -1;
  return it - link_dst_.data();
}

std::pair<double, double> Testbed::link_values(phy::NodeId from,
                                               phy::NodeId to) const {
  const std::ptrdiff_t idx = stored_index(from, to);
  if (idx >= 0) {
    return {link_prr_[static_cast<std::size_t>(idx)],
            link_signal_[static_cast<std::size_t>(idx)]};
  }
  // Off-CSR pair: compute the exact dense-store values once and memoize.
  // The testbed is shared const across sweep threads, hence the lock; the
  // computation itself is read-only and cheap (one propagation query plus
  // a table interpolation), so holding the lock across it is fine.
  const std::uint64_t key =
      static_cast<std::uint64_t>(from) << 32 | static_cast<std::uint64_t>(to);
  std::lock_guard<std::mutex> lock(memo_mutex_);
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  const auto values =
      lazy_->measure_one(from, to, positions_[from], positions_[to]);
  memo_.emplace(key, values);
  return values;
}

double Testbed::prr(phy::NodeId from, phy::NodeId to) const {
  CMAP_ASSERT(from != to, "self link");
  if (sparse()) return link_values(from, to).first;
  return prr_[from * config_.num_nodes + to];
}

double Testbed::signal_dbm(phy::NodeId from, phy::NodeId to) const {
  CMAP_ASSERT(from != to, "self link");
  if (sparse()) return link_values(from, to).second;
  return signal_[from * config_.num_nodes + to];
}

double Testbed::signal_percentile(double p) const {
  CMAP_ASSERT(!connected_signals_.empty(), "no connected links");
  return percentile_of(connected_signals_, p);
}

bool Testbed::in_range(phy::NodeId a, phy::NodeId b) const {
  return prr(a, b) > 0.2 && prr(b, a) > 0.2 && signal_dbm(a, b) >= p10_ &&
         signal_dbm(b, a) >= p10_;
}

bool Testbed::potential_link(phy::NodeId a, phy::NodeId b) const {
  return prr(a, b) > 0.9 && prr(b, a) > 0.9 && signal_dbm(a, b) >= p10_ &&
         signal_dbm(b, a) >= p10_;
}

bool Testbed::strong_signal(phy::NodeId from, phy::NodeId to) const {
  return signal_dbm(from, to) >= p90_;
}

Testbed::LinkClasses Testbed::link_classes() const {
  LinkClasses out;
  int dead = 0, mid = 0, perfect = 0;
  const auto classify = [&](double p) {
    ++out.connected_pairs;
    if (p < 0.1) {
      ++dead;
    } else if (p < 0.95) {
      ++mid;
    } else {
      ++perfect;
    }
  };
  if (sparse()) {
    // The CSR holds exactly the connected directed pairs.
    for (const double p : link_prr_) classify(p);
  } else {
    const int n = config_.num_nodes;
    for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
      for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(n); ++j) {
        if (i == j) continue;
        if (signal_[i * n + j] < config_.medium.delivery_floor_dbm) continue;
        classify(prr_[i * n + j]);
      }
    }
  }
  if (out.connected_pairs > 0) {
    const double total = out.connected_pairs;
    out.frac_dead = dead / total;
    out.frac_mid = mid / total;
    out.frac_perfect = perfect / total;
  }
  return out;
}

double Testbed::mean_degree() const {
  const int n = config_.num_nodes;
  double total = 0;
  if (sparse()) {
    // A PRR > 0.1 link needs signal well above the delivery floor (the
    // preamble gate), so every counting pair sits in the CSR. A node sees
    // a neighbor through its own row when either direction is stored
    // there; when the reverse row is entirely missing (signal below the
    // floor one way), the stored side credits the other node directly.
    std::vector<int> deg(static_cast<std::size_t>(n), 0);
    for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
      for (std::uint32_t k = row_begin_[i]; k < row_begin_[i + 1]; ++k) {
        const phy::NodeId j = link_dst_[k];
        const bool fwd = link_prr_[k] > 0.1;
        const std::ptrdiff_t r = stored_index(j, i);
        const bool rev = r >= 0 && link_prr_[static_cast<std::size_t>(r)] > 0.1;
        if (fwd || rev) ++deg[i];
        if (fwd && r < 0) ++deg[j];
      }
    }
    for (const int d : deg) total += d;
    return total / n;
  }
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
    int deg = 0;
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(n); ++j) {
      if (i == j) continue;
      if (prr_[i * n + j] > 0.1 || prr_[j * n + i] > 0.1) ++deg;
    }
    total += deg;
  }
  return total / n;
}

std::shared_ptr<const Testbed> TestbedCache::get(const TestbedConfig& config) {
  // The thread knob is result-invariant (measurement.h guarantees it), so
  // it must not fragment the cache; everything else changes the built
  // testbed and stays in the key.
  TestbedConfig key = config;
  key.measurement.threads = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, tb] : entries_) {
      if (k == key) return tb;
    }
  }
  // Build outside the lock so hits and other configs are never serialized
  // behind a measurement pass. Concurrent misses on one config may build
  // twice; the first insert wins and every caller gets that instance.
  auto built = std::make_shared<const Testbed>(config);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [k, tb] : entries_) {
    if (k == key) return tb;
  }
  entries_.emplace_back(std::move(key), built);
  return built;
}

std::size_t TestbedCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TestbedCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

TestbedCache& TestbedCache::global() {
  // cmap-lint: allow(mutable-static) -- memo keyed by the full testbed
  // config; every access goes through its internal mutex, and a cache
  // hit returns the same immutable Testbed a miss would build.
  static TestbedCache cache;
  return cache;
}

}  // namespace cmap::testbed
