#include "testbed/testbed.h"

#include <algorithm>
#include <cmath>

#include "phy/units.h"
#include "phy/wifi_rate.h"
#include "sim/assert.h"

namespace cmap::testbed {

Testbed::Testbed(TestbedConfig config) : config_(config) {
  config_.prop.seed = config_.seed;
  propagation_ = std::make_shared<phy::LogDistanceShadowing>(config_.prop);
  error_model_ = std::make_shared<phy::NistErrorModel>();

  // Scatter nodes uniformly over the floor, with a minimum separation so
  // no two "machines sit in the same rack".
  sim::Rng rng(config_.seed);
  sim::Rng place = rng.substream(0x91ace, 0);
  const double min_sep = 2.0;
  positions_.reserve(config_.num_nodes);
  while (positions_.size() < static_cast<std::size_t>(config_.num_nodes)) {
    phy::Position p{place.uniform(0.0, config_.width_m),
                    place.uniform(0.0, config_.height_m)};
    bool ok = true;
    for (const auto& q : positions_) {
      if (phy::distance(p, q) < min_sep) {
        ok = false;
        break;
      }
    }
    if (ok) positions_.push_back(p);
  }

  // Measurement pass: PRR and signal strength per directed pair.
  const int n = config_.num_nodes;
  prr_.assign(static_cast<std::size_t>(n) * n, 0.0);
  signal_.assign(static_cast<std::size_t>(n) * n, -300.0);
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(n); ++j) {
      if (i == j) continue;
      const double s = propagation_->rx_power_dbm(
          config_.radio.tx_power_dbm, i, j, positions_[i], positions_[j]);
      signal_[i * n + j] = s;
      prr_[i * n + j] = compute_prr(i, j);
      if (s >= config_.medium.delivery_floor_dbm) {
        connected_signals_.push_back(s);
      }
    }
  }
  std::sort(connected_signals_.begin(), connected_signals_.end());
}

double Testbed::compute_prr(phy::NodeId from, phy::NodeId to) const {
  const double mean_dbm = propagation_->rx_power_dbm(
      config_.radio.tx_power_dbm, from, to, positions_[from], positions_[to]);
  const double noise_mw = phy::dbm_to_mw(config_.radio.noise_floor_dbm);
  const double impl = phy::db_to_linear(config_.radio.implementation_loss_db);
  const double bits =
      8.0 * static_cast<double>(config_.probe_bytes + 28);  // + MAC overhead
  // Average packet success probability over the fading distribution,
  // gating on the preamble lock conditions the live radio applies.
  sim::Rng rng = sim::Rng(config_.seed).substream(0xfade, from * 1000 + to);
  double sum = 0.0;
  const int samples = std::max(1, config_.prr_fading_samples);
  for (int s = 0; s < samples; ++s) {
    const double fade =
        config_.medium.fading_sigma_db > 0
            ? rng.normal(0.0, config_.medium.fading_sigma_db)
            : 0.0;
    const double p_dbm = mean_dbm + fade;
    if (p_dbm < config_.radio.sensitivity_dbm) continue;  // no lock
    const double sinr =
        phy::dbm_to_mw(p_dbm) / noise_mw;
    if (phy::linear_to_db(sinr) < config_.radio.preamble_min_sinr_db) {
      continue;
    }
    sum += error_model_->chunk_success(sinr / impl, bits, config_.probe_rate);
  }
  return sum / samples;
}

double Testbed::prr(phy::NodeId from, phy::NodeId to) const {
  CMAP_ASSERT(from != to, "self link");
  return prr_[from * config_.num_nodes + to];
}

double Testbed::signal_dbm(phy::NodeId from, phy::NodeId to) const {
  CMAP_ASSERT(from != to, "self link");
  return signal_[from * config_.num_nodes + to];
}

double Testbed::signal_percentile(double p) const {
  CMAP_ASSERT(!connected_signals_.empty(), "no connected links");
  const double rank =
      p / 100.0 * static_cast<double>(connected_signals_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= connected_signals_.size()) return connected_signals_.back();
  return connected_signals_[lo] * (1 - frac) +
         connected_signals_[lo + 1] * frac;
}

bool Testbed::in_range(phy::NodeId a, phy::NodeId b) const {
  const double p10 = signal_percentile(10.0);
  return prr(a, b) > 0.2 && prr(b, a) > 0.2 && signal_dbm(a, b) >= p10 &&
         signal_dbm(b, a) >= p10;
}

bool Testbed::potential_link(phy::NodeId a, phy::NodeId b) const {
  const double p10 = signal_percentile(10.0);
  return prr(a, b) > 0.9 && prr(b, a) > 0.9 && signal_dbm(a, b) >= p10 &&
         signal_dbm(b, a) >= p10;
}

bool Testbed::strong_signal(phy::NodeId from, phy::NodeId to) const {
  return signal_dbm(from, to) >= signal_percentile(90.0);
}

Testbed::LinkClasses Testbed::link_classes() const {
  LinkClasses out;
  const int n = config_.num_nodes;
  int dead = 0, mid = 0, perfect = 0;
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(n); ++j) {
      if (i == j) continue;
      if (signal_[i * n + j] < config_.medium.delivery_floor_dbm) continue;
      ++out.connected_pairs;
      const double p = prr_[i * n + j];
      if (p < 0.1) {
        ++dead;
      } else if (p < 0.95) {
        ++mid;
      } else {
        ++perfect;
      }
    }
  }
  if (out.connected_pairs > 0) {
    const double total = out.connected_pairs;
    out.frac_dead = dead / total;
    out.frac_mid = mid / total;
    out.frac_perfect = perfect / total;
  }
  return out;
}

double Testbed::mean_degree() const {
  const int n = config_.num_nodes;
  double total = 0;
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
    int deg = 0;
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(n); ++j) {
      if (i == j) continue;
      if (prr_[i * n + j] > 0.1 || prr_[j * n + i] > 0.1) ++deg;
    }
    total += deg;
  }
  return total / n;
}

}  // namespace cmap::testbed
