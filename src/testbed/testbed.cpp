#include "testbed/testbed.h"

#include <algorithm>
#include <cmath>

#include "phy/units.h"
#include "sim/assert.h"

namespace cmap::testbed {

Testbed::Testbed(TestbedConfig config) : config_(config) {
  config_.prop.seed = config_.seed;
  propagation_ = std::make_shared<phy::LogDistanceShadowing>(config_.prop);
  error_model_ = std::make_shared<phy::NistErrorModel>();

  // Scatter nodes uniformly over the floor, with a minimum separation so
  // no two "machines sit in the same rack".
  sim::Rng rng(config_.seed);
  sim::Rng place = rng.substream(0x91ace, 0);
  const double min_sep = 2.0;
  positions_.reserve(config_.num_nodes);
  while (positions_.size() < static_cast<std::size_t>(config_.num_nodes)) {
    phy::Position p{place.uniform(0.0, config_.width_m),
                    place.uniform(0.0, config_.height_m)};
    bool ok = true;
    for (const auto& q : positions_) {
      if (phy::distance(p, q) < min_sep) {
        ok = false;
        break;
      }
    }
    if (ok) positions_.push_back(p);
  }

  // Measurement pass: PRR and signal strength per directed pair, delegated
  // to the LinkMeasurement subsystem (fast tabulated path or the retained
  // per-pair Monte-Carlo reference, per config_.measurement).
  LinkMeasurementSpec spec;
  spec.radio = config_.radio;
  spec.fading_sigma_db = config_.medium.fading_sigma_db;
  spec.delivery_floor_dbm = config_.medium.delivery_floor_dbm;
  spec.probe_rate = config_.probe_rate;
  spec.probe_bytes = config_.probe_bytes;
  spec.fading_samples = config_.prr_fading_samples;
  spec.seed = config_.seed;
  spec.config = config_.measurement;
  LinkMeasurement measurement(spec, propagation_, error_model_);
  LinkMeasurementResult result = measurement.measure(positions_);
  prr_ = std::move(result.prr);
  signal_ = std::move(result.signal);
  connected_signals_ = std::move(result.connected_signals);
  p10_ = result.p10;
  p90_ = result.p90;
}

double Testbed::prr(phy::NodeId from, phy::NodeId to) const {
  CMAP_ASSERT(from != to, "self link");
  return prr_[from * config_.num_nodes + to];
}

double Testbed::signal_dbm(phy::NodeId from, phy::NodeId to) const {
  CMAP_ASSERT(from != to, "self link");
  return signal_[from * config_.num_nodes + to];
}

double Testbed::signal_percentile(double p) const {
  CMAP_ASSERT(!connected_signals_.empty(), "no connected links");
  return percentile_of(connected_signals_, p);
}

bool Testbed::in_range(phy::NodeId a, phy::NodeId b) const {
  return prr(a, b) > 0.2 && prr(b, a) > 0.2 && signal_dbm(a, b) >= p10_ &&
         signal_dbm(b, a) >= p10_;
}

bool Testbed::potential_link(phy::NodeId a, phy::NodeId b) const {
  return prr(a, b) > 0.9 && prr(b, a) > 0.9 && signal_dbm(a, b) >= p10_ &&
         signal_dbm(b, a) >= p10_;
}

bool Testbed::strong_signal(phy::NodeId from, phy::NodeId to) const {
  return signal_dbm(from, to) >= p90_;
}

Testbed::LinkClasses Testbed::link_classes() const {
  LinkClasses out;
  const int n = config_.num_nodes;
  int dead = 0, mid = 0, perfect = 0;
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(n); ++j) {
      if (i == j) continue;
      if (signal_[i * n + j] < config_.medium.delivery_floor_dbm) continue;
      ++out.connected_pairs;
      const double p = prr_[i * n + j];
      if (p < 0.1) {
        ++dead;
      } else if (p < 0.95) {
        ++mid;
      } else {
        ++perfect;
      }
    }
  }
  if (out.connected_pairs > 0) {
    const double total = out.connected_pairs;
    out.frac_dead = dead / total;
    out.frac_mid = mid / total;
    out.frac_perfect = perfect / total;
  }
  return out;
}

double Testbed::mean_degree() const {
  const int n = config_.num_nodes;
  double total = 0;
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
    int deg = 0;
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(n); ++j) {
      if (i == j) continue;
      if (prr_[i * n + j] > 0.1 || prr_[j * n + i] > 0.1) ++deg;
    }
    total += deg;
  }
  return total / n;
}

std::shared_ptr<const Testbed> TestbedCache::get(const TestbedConfig& config) {
  // The thread knob is result-invariant (measurement.h guarantees it), so
  // it must not fragment the cache; everything else changes the built
  // testbed and stays in the key.
  TestbedConfig key = config;
  key.measurement.threads = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, tb] : entries_) {
      if (k == key) return tb;
    }
  }
  // Build outside the lock so hits and other configs are never serialized
  // behind a measurement pass. Concurrent misses on one config may build
  // twice; the first insert wins and every caller gets that instance.
  auto built = std::make_shared<const Testbed>(config);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [k, tb] : entries_) {
    if (k == key) return tb;
  }
  entries_.emplace_back(std::move(key), built);
  return built;
}

std::size_t TestbedCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void TestbedCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

TestbedCache& TestbedCache::global() {
  static TestbedCache cache;
  return cache;
}

}  // namespace cmap::testbed
