#include "testbed/measurement.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "phy/spatial_index.h"
#include "phy/units.h"
#include "sim/assert.h"
#include "sim/parallel.h"

namespace cmap::testbed {
namespace {

// Resolution of the no-fading success table. Decode probability transitions
// over a few dB (coded OFDM is sharp, but not 0.02-dB sharp), so linear
// interpolation at this step is far below the fast-path tolerance.
constexpr double kSuccessStepDb = 0.02;

// Fading tail coverage: quadrature strata reach |z| <= ~3.3 sigma at the
// default 512 strata; 8 sigma bounds the mass any grid can ignore (~6e-16).
constexpr double kTailSigmas = 8.0;

/// Inverse standard normal CDF, Acklam's rational approximation
/// (|relative error| < 1.2e-9 — far below the quadrature resolution).
double inverse_normal_cdf(double p) {
  p = std::clamp(p, 1e-300, 1.0 - 1e-16);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double lerp_table(const std::vector<double>& table, double lo, double step,
                  double x) {
  if (x <= lo) return table.front();
  const double rank = (x - lo) / step;
  const auto idx = static_cast<std::size_t>(rank);
  if (idx + 1 >= table.size()) return table.back();
  const double frac = rank - static_cast<double>(idx);
  return table[idx] * (1.0 - frac) + table[idx + 1] * frac;
}

}  // namespace

std::uint64_t pair_stream_id(phy::NodeId from, phy::NodeId to) {
  return sim::mix64((static_cast<std::uint64_t>(from) << 32) |
                    static_cast<std::uint64_t>(to));
}

double percentile_of(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

LinkMeasurement::LinkMeasurement(
    const LinkMeasurementSpec& spec,
    std::shared_ptr<const phy::PropagationModel> propagation,
    std::shared_ptr<const phy::ErrorModel> error_model)
    : spec_(spec),
      propagation_(std::move(propagation)),
      error_model_(std::move(error_model)) {
  CMAP_ASSERT(propagation_ != nullptr, "measurement needs a propagation model");
  CMAP_ASSERT(error_model_ != nullptr, "measurement needs an error model");
  noise_mw_ = phy::dbm_to_mw(spec_.radio.noise_floor_dbm);
  impl_loss_linear_ = phy::db_to_linear(spec_.radio.implementation_loss_db);
  // + MAC overhead, matching the live probe framing.
  probe_bits_ = 8.0 * static_cast<double>(spec_.probe_bytes + 28);
  gate_dbm_ = std::max(spec_.radio.sensitivity_dbm,
                       spec_.radio.noise_floor_dbm +
                           spec_.radio.preamble_min_sinr_db);
  // Reference-mode instances never consult the tables, and without fading
  // fast_prr() short-circuits to probe_success(); only build when needed
  // (table cost would otherwise inflate every reference-mode build).
  if (spec_.config.mode == MeasurementMode::kFast &&
      spec_.fading_sigma_db > 0.0) {
    build_tables();
  }
}

double LinkMeasurement::probe_success(double rx_dbm) const {
  if (rx_dbm < spec_.radio.sensitivity_dbm) return 0.0;  // no lock
  const double sinr = phy::dbm_to_mw(rx_dbm) / noise_mw_;
  if (phy::linear_to_db(sinr) < spec_.radio.preamble_min_sinr_db) return 0.0;
  return error_model_->chunk_success(sinr / impl_loss_linear_, probe_bits_,
                                     spec_.probe_rate);
}

void LinkMeasurement::build_tables() {
  const double sigma = std::max(0.0, spec_.fading_sigma_db);
  // PRR grid: from "a +8-sigma fade still misses the lock gate" up to
  // "a -8-sigma fade still saturates the error model" (coded success hits
  // exactly 1 well before gate + 85 dB for every supported rate).
  prr_lo_dbm_ = gate_dbm_ - kTailSigmas * sigma;
  const double prr_hi_dbm = gate_dbm_ + 85.0;
  // Success grid: wide enough for every faded lookup the PRR grid makes.
  success_lo_dbm_ = prr_lo_dbm_ - kTailSigmas * sigma;
  const double success_hi_dbm = prr_hi_dbm + kTailSigmas * sigma;

  const auto success_entries = static_cast<std::size_t>(
      (success_hi_dbm - success_lo_dbm_) / kSuccessStepDb) + 2;
  success_table_.resize(success_entries);
  for (std::size_t i = 0; i < success_entries; ++i) {
    success_table_[i] =
        probe_success(success_lo_dbm_ + static_cast<double>(i) * kSuccessStepDb);
  }

  const double step = spec_.config.table_step_db;
  CMAP_ASSERT(step > 0.0, "table_step_db must be positive");
  const auto prr_entries =
      static_cast<std::size_t>((prr_hi_dbm - prr_lo_dbm_) / step) + 2;
  prr_table_.resize(prr_entries);
  // Midpoint-stratified quadrature over the fading Gaussian: fade offsets
  // at the quantile midpoints, equal weights.
  const int strata = std::max(1, spec_.config.table_strata);
  std::vector<double> offsets(static_cast<std::size_t>(strata));
  for (int k = 0; k < strata; ++k) {
    offsets[static_cast<std::size_t>(k)] =
        sigma * inverse_normal_cdf((static_cast<double>(k) + 0.5) /
                                   static_cast<double>(strata));
  }
  for (std::size_t i = 0; i < prr_entries; ++i) {
    const double mean = prr_lo_dbm_ + static_cast<double>(i) * step;
    double sum = 0.0;
    for (const double off : offsets) sum += success_from_table(mean + off);
    prr_table_[i] = sum / static_cast<double>(strata);
  }
}

double LinkMeasurement::success_from_table(double rx_dbm) const {
  return lerp_table(success_table_, success_lo_dbm_, kSuccessStepDb, rx_dbm);
}

double LinkMeasurement::fast_prr(double mean_dbm) const {
  if (spec_.fading_sigma_db <= 0.0) return probe_success(mean_dbm);
  CMAP_ASSERT(!prr_table_.empty(), "fast_prr needs MeasurementMode::kFast");
  if (mean_dbm < prr_lo_dbm_) return 0.0;  // beyond any +8-sigma fade
  return lerp_table(prr_table_, prr_lo_dbm_, spec_.config.table_step_db,
                    mean_dbm);
}

double LinkMeasurement::reference_prr(double mean_dbm,
                                      sim::Rng stream) const {
  const int samples = std::max(1, spec_.fading_samples);
  const double sigma = spec_.fading_sigma_db;
  if (sigma <= 0.0) return probe_success(mean_dbm);
  double sum = 0.0;
  for (int k = 0; k < samples; ++k) {
    // One uniform draw per stratum: u_k in [k/N, (k+1)/N).
    const double u = (static_cast<double>(k) + stream.uniform()) /
                     static_cast<double>(samples);
    sum += probe_success(mean_dbm + sigma * inverse_normal_cdf(u));
  }
  return sum / static_cast<double>(samples);
}

std::pair<double, double> LinkMeasurement::measure_one(
    phy::NodeId from, phy::NodeId to, const phy::Position& from_pos,
    const phy::Position& to_pos) const {
  const double s = propagation_->rx_power_dbm(spec_.radio.tx_power_dbm, from,
                                              to, from_pos, to_pos);
  const double p =
      spec_.config.mode == MeasurementMode::kFast
          ? fast_prr(s)
          : reference_prr(s, sim::Rng(spec_.seed)
                                 .substream(0xfade, pair_stream_id(from, to)));
  return {p, s};
}

LinkMeasurementResult LinkMeasurement::measure(
    const std::vector<phy::Position>& positions) const {
  if (spec_.config.store == MeasurementStore::kSparse) {
    return measure_sparse(positions);
  }
  const auto n = positions.size();
  LinkMeasurementResult result;
  result.prr.assign(n * n, 0.0);
  result.signal.assign(n * n, -300.0);

  sim::parallel_for(spec_.config.threads, n, [&](std::size_t row) {
    const auto i = static_cast<phy::NodeId>(row);
    for (std::size_t col = 0; col < n; ++col) {
      if (col == row) continue;
      const auto j = static_cast<phy::NodeId>(col);
      const auto [p, s] = measure_one(i, j, positions[row], positions[col]);
      result.signal[row * n + col] = s;
      result.prr[row * n + col] = p;
    }
  });

  for (std::size_t k = 0; k < n * n; ++k) {
    if (result.signal[k] >= spec_.delivery_floor_dbm) {
      result.connected_signals.push_back(result.signal[k]);
    }
  }
  std::sort(result.connected_signals.begin(), result.connected_signals.end());
  result.p10 = percentile_of(result.connected_signals, 10.0);
  result.p90 = percentile_of(result.connected_signals, 90.0);
  return result;
}

LinkMeasurementResult LinkMeasurement::measure_sparse(
    const std::vector<phy::Position>& positions) const {
  const auto n = positions.size();
  // Candidate radius: beyond it no pair can clear the delivery floor
  // within the guard band (infinite when the model cannot bound itself —
  // the grid then degenerates to all pairs, sparse only in storage).
  const double radius = phy::max_candidate_range_m(
      *propagation_, spec_.radio.tx_power_dbm, spec_.delivery_floor_dbm,
      spec_.config.sparse_guard_sigmas);
  const double pitch =
      std::isfinite(radius) ? std::clamp(radius, 1.0, 1.0e5) : 64.0;
  phy::SpatialGrid grid(pitch);
  for (std::size_t i = 0; i < n; ++i) {
    grid.insert(static_cast<std::uint32_t>(i), positions[i]);
  }

  // Per-row buffers keep the pass shard-parallel and deterministic: each
  // row's output depends only on (seed, pair), and CSR assembly below is
  // a fixed-order concatenation.
  struct Row {
    std::vector<phy::NodeId> dst;
    std::vector<double> prr, signal;
  };
  std::vector<Row> rows(n);
  sim::parallel_for(spec_.config.threads, n, [&](std::size_t row) {
    const auto i = static_cast<phy::NodeId>(row);
    std::vector<std::uint32_t> cand;
    grid.query(positions[row], radius, &cand);
    Row& out = rows[row];
    for (const std::uint32_t c : cand) {  // ascending — rows come out sorted
      if (c == row) continue;
      const auto j = static_cast<phy::NodeId>(c);
      const auto [p, s] = measure_one(i, j, positions[row], positions[c]);
      if (s < spec_.delivery_floor_dbm) continue;  // candidate, not connected
      out.dst.push_back(j);
      out.prr.push_back(p);
      out.signal.push_back(s);
    }
  });

  LinkMeasurementResult result;
  result.row_begin.reserve(n + 1);
  result.row_begin.push_back(0);
  std::size_t total = 0;
  for (const Row& r : rows) {
    total += r.dst.size();
    CMAP_ASSERT(total <= 0xffffffffu, "sparse link count overflows CSR index");
    result.row_begin.push_back(static_cast<std::uint32_t>(total));
  }
  result.dst.reserve(total);
  result.sparse_prr.reserve(total);
  result.sparse_signal.reserve(total);
  for (Row& r : rows) {
    result.dst.insert(result.dst.end(), r.dst.begin(), r.dst.end());
    result.sparse_prr.insert(result.sparse_prr.end(), r.prr.begin(),
                             r.prr.end());
    result.sparse_signal.insert(result.sparse_signal.end(), r.signal.begin(),
                                r.signal.end());
  }
  // Every stored signal cleared the floor, so the connected population is
  // exactly the stored one — same multiset the dense pass collects.
  result.connected_signals = result.sparse_signal;
  std::sort(result.connected_signals.begin(), result.connected_signals.end());
  result.p10 = percentile_of(result.connected_signals, 10.0);
  result.p90 = percentile_of(result.connected_signals, 90.0);
  return result;
}

}  // namespace cmap::testbed
