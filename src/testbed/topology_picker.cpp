#include "testbed/topology_picker.h"

#include <algorithm>
#include <climits>

namespace cmap::testbed {
namespace {

/// Sample up to `count` elements uniformly without replacement. A
/// non-positive count yields an empty sample (casting a negative count to
/// size_t used to silently select the whole pool).
template <typename T>
std::vector<T> sample(std::vector<T> pool, int count, sim::Rng& rng) {
  if (count <= 0) return {};
  // Partial Fisher-Yates.
  const std::size_t want =
      std::min<std::size_t>(pool.size(), static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < want; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(want);
  return pool;
}

bool distinct4(phy::NodeId a, phy::NodeId b, phy::NodeId c, phy::NodeId d) {
  return a != b && a != c && a != d && b != c && b != d && c != d;
}

}  // namespace

std::vector<LinkPair> TopologyPicker::exposed_pairs(int count,
                                                    sim::Rng& rng) const {
  const auto& links = potential_links();
  std::vector<LinkPair> pool;
  for (const auto& [s1, r1] : links) {
    if (!tb_.strong_signal(s1, r1)) continue;
    for (const auto& [s2, r2] : links) {
      if (!distinct4(s1, r1, s2, r2)) continue;
      if (s2 < s1) continue;  // unordered pair of links: avoid mirrors
      if (!tb_.strong_signal(s2, r2)) continue;
      if (!tb_.in_range(s1, s2)) continue;
      // "Signal strength between all other pairs of nodes is somewhat
      // weak": both directions of every non-flow pair below the 90th
      // percentile.
      const phy::NodeId quad[4] = {s1, r1, s2, r2};
      bool weak = true;
      for (int i = 0; i < 4 && weak; ++i) {
        for (int j = 0; j < 4 && weak; ++j) {
          if (i == j) continue;
          const bool is_flow = (quad[i] == s1 && quad[j] == r1) ||
                               (quad[i] == s2 && quad[j] == r2);
          if (is_flow) continue;
          if (tb_.strong_signal(quad[i], quad[j])) weak = false;
        }
      }
      if (!weak) continue;
      pool.push_back(LinkPair{s1, r1, s2, r2});
    }
  }
  return sample(std::move(pool), count, rng);
}

std::vector<LinkPair> TopologyPicker::in_range_pairs(int count,
                                                     sim::Rng& rng) const {
  const auto& links = potential_links();
  std::vector<LinkPair> pool;
  for (const auto& [s1, r1] : links) {
    for (const auto& [s2, r2] : links) {
      if (!distinct4(s1, r1, s2, r2)) continue;
      if (s2 < s1) continue;
      if (!tb_.in_range(s1, s2)) continue;
      pool.push_back(LinkPair{s1, r1, s2, r2});
    }
  }
  return sample(std::move(pool), count, rng);
}

std::vector<LinkPair> TopologyPicker::hidden_pairs(int count,
                                                   sim::Rng& rng) const {
  const auto& links = potential_links();
  std::vector<LinkPair> pool;
  for (const auto& [s1, r1] : links) {
    for (const auto& [s2, r2] : links) {
      if (!distinct4(s1, r1, s2, r2)) continue;
      if (s2 < s1) continue;
      if (tb_.in_range(s1, s2)) continue;  // senders must NOT hear each other
      // Each receiver decodes both senders cleanly in isolation, so the
      // two transmissions almost always collide at the receivers.
      if (!tb_.potential_link(s2, r1) || !tb_.potential_link(s1, r2)) continue;
      pool.push_back(LinkPair{s1, r1, s2, r2});
    }
  }
  return sample(std::move(pool), count, rng);
}

std::optional<ApScenario> TopologyPicker::ap_scenario(int n_aps,
                                                      sim::Rng& rng) const {
  // Partition the floor into a 3x2 grid of regions (paper: six regions,
  // one AP each, APs mutually out of communication range).
  const double w = tb_.config().width_m / 3.0;
  const double h = tb_.config().height_m / 2.0;
  std::vector<std::vector<phy::NodeId>> regions(6);
  for (phy::NodeId id = 0; id < static_cast<phy::NodeId>(tb_.size()); ++id) {
    const auto& p = tb_.position(id);
    const int cx = std::min(2, static_cast<int>(p.x / w));
    const int cy = std::min(1, static_cast<int>(p.y / h));
    regions[cy * 3 + cx].push_back(id);
  }
  // Use adjacent regions when fewer than six APs (paper §5.6).
  static const int kAdjacentOrder[6] = {0, 1, 2, 3, 4, 5};
  std::vector<int> chosen_regions;
  for (int k = 0; k < n_aps && k < 6; ++k) {
    chosen_regions.push_back(kAdjacentOrder[k]);
  }

  // Randomized search for APs (pairwise out of range) with clients.
  for (int attempt = 0; attempt < 200; ++attempt) {
    ApScenario sc;
    bool ok = true;
    for (int region : chosen_regions) {
      const auto& nodes = regions[region];
      if (nodes.empty()) {
        ok = false;
        break;
      }
      // Try a few AP candidates in this region.
      phy::NodeId ap = 0;
      std::vector<phy::NodeId> clients;
      bool found = false;
      for (int t = 0; t < 10 && !found; ++t) {
        ap = nodes[rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) -
                                          1)];
        bool clear = true;
        for (const auto& cell : sc.cells) {
          if (tb_.in_range(ap, cell.ap)) {
            clear = false;
            break;
          }
        }
        if (!clear) continue;
        clients.clear();
        for (phy::NodeId c : nodes) {
          if (c != ap && tb_.potential_link(ap, c)) clients.push_back(c);
        }
        if (!clients.empty()) found = true;
      }
      if (!found) {
        ok = false;
        break;
      }
      ApScenario::Cell cell;
      cell.ap = ap;
      cell.client = clients[rng.uniform_int(
          0, static_cast<std::int64_t>(clients.size()) - 1)];
      cell.downlink = rng.bernoulli(0.5);
      sc.cells.push_back(cell);
    }
    if (ok && static_cast<int>(sc.cells.size()) == n_aps) return sc;
  }
  return std::nullopt;
}

std::optional<MeshScenario> TopologyPicker::mesh_scenario(
    int width, sim::Rng& rng) const {
  const auto n = static_cast<phy::NodeId>(tb_.size());
  for (int attempt = 0; attempt < 400; ++attempt) {
    MeshScenario sc;
    sc.s = static_cast<phy::NodeId>(rng.uniform_int(0, n - 1));
    // First-hop forwarders: potential links from S. The CSR row is exactly
    // the ids the old 0..n scan accepted, in the same ascending order, so
    // the sample() draws below see an identical stream.
    const auto s_neighbors = tb_.potential_neighbors(sc.s);
    std::vector<phy::NodeId> as(s_neighbors.begin(), s_neighbors.end());
    if (static_cast<int>(as.size()) < width) continue;
    as = sample(std::move(as), width, rng);
    bool ok = true;
    std::vector<phy::NodeId> used = {sc.s};
    used.insert(used.end(), as.begin(), as.end());
    for (phy::NodeId a : as) {
      // Dissemination pushes content *outward*: pick the forwarding target
      // whose SINR margin over the other participants is largest. On the
      // paper's floor this happened naturally ("frequently, one or more of
      // the Ais were exposed terminals", §5.7); our denser neighbourhoods
      // need the explicit preference.
      phy::NodeId best = n;  // invalid
      double best_margin = -1e9;
      // Ascending potential-neighbor walk == the old filtered 0..n scan:
      // the jitter draw happens for exactly the same candidates in the
      // same order, keeping scenario draws byte-identical.
      for (const phy::NodeId b : tb_.potential_neighbors(a)) {
        if (std::find(used.begin(), used.end(), b) != used.end()) continue;
        double worst_foreign = -200.0;
        for (phy::NodeId u : used) {
          if (u == a) continue;
          worst_foreign = std::max(worst_foreign, tb_.signal_dbm(u, b));
        }
        const double margin = tb_.signal_dbm(a, b) - worst_foreign;
        // Small deterministic jitter keeps scenarios diverse across draws.
        const double jitter = rng.uniform(0.0, 3.0);
        if (margin + jitter > best_margin) {
          best_margin = margin + jitter;
          best = b;
        }
      }
      if (best == n) {
        ok = false;
        break;
      }
      sc.a.push_back(a);
      sc.b.push_back(best);
      used.push_back(best);
    }
    if (ok) return sc;
  }
  return std::nullopt;
}

std::vector<Triple> TopologyPicker::interferer_triples(int count,
                                                       sim::Rng& rng) const {
  const auto& links = potential_links();
  if (links.empty() || count <= 0) return {};
  std::vector<Triple> out;
  const auto n = static_cast<phy::NodeId>(tb_.size());
  // Bounded rejection sampling: on a degenerate testbed (e.g. two nodes,
  // where every candidate interferer equals s or r) the unbounded loop
  // never terminated. Return what was found within the attempt budget.
  const int max_attempts = count * 100;
  for (int attempt = 0;
       attempt < max_attempts && static_cast<int>(out.size()) < count;
       ++attempt) {
    const auto& [s, r] =
        links[rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1)];
    const auto i = static_cast<phy::NodeId>(rng.uniform_int(0, n - 1));
    if (i == s || i == r) continue;
    out.push_back(Triple{s, r, i});
  }
  return out;
}

}  // namespace cmap::testbed
