// Topology selection for every experiment in §5, implementing the
// constraints of Fig. 11(a)-(d) plus the access-point regions of §5.6 and
// the sender/receiver/interferer triples of §5.4 over a measured Testbed.
#pragma once

#include <optional>
#include <vector>

#include "phy/types.h"
#include "sim/random.h"
#include "testbed/testbed.h"

namespace cmap::testbed {

/// Two sender->receiver links evaluated concurrently.
struct LinkPair {
  phy::NodeId s1 = 0, r1 = 0;
  phy::NodeId s2 = 0, r2 = 0;
};

/// One §5.6 WLAN scenario: per cell, an AP-client flow (direction chosen
/// at random, per the paper).
struct ApScenario {
  struct Cell {
    phy::NodeId ap = 0;
    phy::NodeId client = 0;
    bool downlink = false;  // AP -> client if true
    phy::NodeId sender() const { return downlink ? ap : client; }
    phy::NodeId receiver() const { return downlink ? client : ap; }
  };
  std::vector<Cell> cells;
};

/// One §5.7 two-hop dissemination mesh: S broadcasts to the As, each Ai
/// forwards to Bi.
struct MeshScenario {
  phy::NodeId s = 0;
  std::vector<phy::NodeId> a;
  std::vector<phy::NodeId> b;
};

/// One §5.4 sender/receiver/interferer triple.
struct Triple {
  phy::NodeId s = 0, r = 0, i = 0;
};

class TopologyPicker {
 public:
  explicit TopologyPicker(const Testbed& tb) : tb_(tb) {}

  /// Fig. 11(a): senders in range, strong sender->receiver signals, all
  /// cross-pair signals weak — the exposed-terminal configuration.
  std::vector<LinkPair> exposed_pairs(int count, sim::Rng& rng) const;

  /// Fig. 11(b): senders in range, links potential, no other constraint.
  std::vector<LinkPair> in_range_pairs(int count, sim::Rng& rng) const;

  /// Fig. 11(c): each receiver has a potential link to BOTH senders;
  /// senders out of range — the hidden-terminal configuration.
  std::vector<LinkPair> hidden_pairs(int count, sim::Rng& rng) const;

  /// §5.6: n_aps access points in distinct regions, pairwise out of range,
  /// each with a random client and flow direction.
  std::optional<ApScenario> ap_scenario(int n_aps, sim::Rng& rng) const;

  /// §5.7: S with >= width potential-link neighbours Ai, each Ai with a
  /// forwarding target Bi distinct from the other participants.
  std::optional<MeshScenario> mesh_scenario(int width, sim::Rng& rng) const;

  /// §5.4: potential S->R links with a uniformly random interferer.
  std::vector<Triple> interferer_triples(int count, sim::Rng& rng) const;

  /// All directed links satisfying the potential-transmission predicate.
  /// Precomputed once per Testbed (Testbed::potential_links), not per draw.
  const std::vector<std::pair<phy::NodeId, phy::NodeId>>& potential_links()
      const {
    return tb_.potential_links();
  }

 private:
  const Testbed& tb_;
};

}  // namespace cmap::testbed
