// The testbed "measurement pass": PRR and mean signal strength for every
// directed pair, extracted from Testbed's constructor into a reusable
// subsystem (this was the O(n^2 * fading-samples) startup cost that
// dominated large-testbed instantiation).
//
// Key insight behind the fast path: with one shared RadioConfig, probe
// rate and probe size, the fading-averaged packet reception rate is a pure
// 1-D function of the pair's mean received power. So PRR is tabulated ONCE
// over a fine dBm grid (stratified Gaussian quadrature over the fading
// distribution, near-exact) and each pair costs a single table
// interpolation — O(n^2) lookups instead of O(n^2 * samples) error-model
// evaluations. The per-pair Monte-Carlo estimator is retained as
// MeasurementMode::kReference behind a config knob; it draws per-pair
// substreams, so it is what defines "the measured building" when bitwise
// reproducibility of the sampling path matters.
//
// The remaining per-pair loop (propagation + lookup, or the reference MC)
// shards across sim::parallel_for; results are identical for any thread
// count because every pair's output depends only on (seed, pair).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "phy/error_model.h"
#include "phy/propagation.h"
#include "phy/radio.h"
#include "phy/types.h"
#include "phy/wifi_rate.h"
#include "sim/random.h"

namespace cmap::testbed {

enum class MeasurementMode {
  kFast,       // tabulated fading-averaged PRR, one interpolation per pair
  kReference,  // per-pair stratified Monte-Carlo over the fading Gaussian
};

enum class MeasurementStore {
  kDense,   // full n^2 PRR/signal matrices — the reference layout
  kSparse,  // CSR over pairs whose mean signal clears the delivery floor
};

struct MeasurementConfig {
  MeasurementMode mode = MeasurementMode::kFast;
  /// Threads sharding the per-pair loop; 0 = sim::default_thread_count().
  /// Results are identical for any value.
  int threads = 1;
  /// Fast-mode PRR table resolution in dB of mean received power.
  double table_step_db = 0.05;
  /// Fading strata per fast-mode table entry (quadrature accuracy ~1/strata
  /// worst-case, far better in practice).
  int table_strata = 512;
  /// Pair-state layout measure() produces. kSparse never touches the n^2
  /// pair space: a spatial grid limits evaluation to pairs within the
  /// propagation model's guard-banded candidate radius
  /// (phy::max_candidate_range_m over the delivery floor), and only pairs
  /// whose mean signal actually clears the floor are stored. Off-CSR pairs
  /// are answered lazily (see Testbed) with values identical to kDense.
  MeasurementStore store = MeasurementStore::kDense;
  /// Confidence (in model sigmas) of the kSparse candidate radius: a pair
  /// outside it would need a shadowing realization beyond this many sigmas
  /// to clear the delivery floor. At the default 6 the per-pair miss
  /// probability is ~1e-9.
  double sparse_guard_sigmas = 6.0;
  bool operator==(const MeasurementConfig&) const = default;
};

/// Substream id for the directed pair's fading draws. SplitMix64-mixes the
/// packed pair so distinct pairs always get distinct streams — the old
/// `from * 1000 + to` packing collided once testbeds passed 1000 nodes
/// (e.g. (0,1005) and (1,5)).
std::uint64_t pair_stream_id(phy::NodeId from, phy::NodeId to);

/// Linear-interpolated percentile (0-100) over an ascending-sorted sample.
/// THE percentile definition for signal strengths: Testbed's predicates
/// compare against values cached at measurement time, so every computation
/// must share this one implementation. NaN when `sorted` is empty.
double percentile_of(const std::vector<double>& sorted, double p);

/// Everything the measurement pass needs, decoupled from TestbedConfig
/// (testbed.h composes one of these from its own fields).
struct LinkMeasurementSpec {
  phy::RadioConfig radio;  // shared by all nodes
  // Defaults mirror phy::MediumConfig's; note Testbed overrides the floor
  // to -110 via TestbedConfig::default_medium(), so standalone users who
  // want Testbed-identical connected_signals/p10/p90 must copy the floor
  // from the same MediumConfig.
  double fading_sigma_db = 2.0;        // per-probe lognormal fading
  double delivery_floor_dbm = -104.0;  // "any connectivity" threshold
  phy::WifiRate probe_rate = phy::WifiRate::k6Mbps;
  std::size_t probe_bytes = 1400;
  int fading_samples = 100;  // reference-mode draws per directed link
  std::uint64_t seed = 1;    // root of the per-pair fading substreams
  MeasurementConfig config;
};

struct LinkMeasurementResult {
  // kDense layout (empty under kSparse):
  std::vector<double> prr;     // [from * n + to]; 0 on the diagonal
  std::vector<double> signal;  // [from * n + to] dBm; -300 on the diagonal
  // Both layouts:
  std::vector<double> connected_signals;  // sorted ascending
  double p10 = 0.0;  // 10th / 90th percentile of connected_signals,
  double p90 = 0.0;  // NaN when no pair clears the delivery floor
  // kSparse layout: CSR over directed pairs whose mean signal clears the
  // delivery floor; row r covers dst/sparse_prr/sparse_signal indices
  // [row_begin[r], row_begin[r + 1]), dst ascending within a row.
  std::vector<std::uint32_t> row_begin;  // size n + 1 (empty under kDense)
  std::vector<phy::NodeId> dst;
  std::vector<double> sparse_prr;
  std::vector<double> sparse_signal;
};

class LinkMeasurement {
 public:
  LinkMeasurement(const LinkMeasurementSpec& spec,
                  std::shared_ptr<const phy::PropagationModel> propagation,
                  std::shared_ptr<const phy::ErrorModel> error_model);

  /// Run the full pass over every directed pair of `positions` (kDense),
  /// or over grid candidates only (kSparse; see MeasurementConfig::store).
  LinkMeasurementResult measure(
      const std::vector<phy::Position>& positions) const;

  /// One directed pair, computed exactly as measure() would — the lazy
  /// path for pairs outside a kSparse CSR. Returns {prr, signal_dbm}.
  std::pair<double, double> measure_one(phy::NodeId from, phy::NodeId to,
                                        const phy::Position& from_pos,
                                        const phy::Position& to_pos) const;

  const LinkMeasurementSpec& spec() const { return spec_; }

  // ---- The two PRR estimators (exposed for tolerance tests) ----

  /// Fast path: interpolate the tabulated fading-averaged PRR at the
  /// pair's mean received power.
  double fast_prr(double mean_dbm) const;

  /// Reference path: `fading_samples` stratified Monte-Carlo fading draws
  /// from `stream` (the pair's substream), each invoking the error model.
  /// Stratification keeps the estimate within 1/samples of the exact
  /// fading average (the integrand is monotone), while remaining a genuine
  /// per-pair sampling path.
  double reference_prr(double mean_dbm, sim::Rng stream) const;

  /// Probability a probe decodes at received power `rx_dbm` with no
  /// fading: the preamble-lock gates, then the error model over the probe
  /// bits. Both estimators average this function over the fading Gaussian.
  double probe_success(double rx_dbm) const;

 private:
  void build_tables();
  double success_from_table(double rx_dbm) const;
  LinkMeasurementResult measure_sparse(
      const std::vector<phy::Position>& positions) const;

  LinkMeasurementSpec spec_;
  std::shared_ptr<const phy::PropagationModel> propagation_;
  std::shared_ptr<const phy::ErrorModel> error_model_;

  // Derived constants.
  double noise_mw_ = 0.0;
  double impl_loss_linear_ = 1.0;
  double probe_bits_ = 0.0;
  double gate_dbm_ = 0.0;  // below this received power, decode prob is 0

  // Fast-path tables (built only for kFast with fading; ~ms to build).
  double success_lo_dbm_ = 0.0;
  std::vector<double> success_table_;  // probe_success on a fine grid
  double prr_lo_dbm_ = 0.0;
  std::vector<double> prr_table_;  // fading-averaged PRR on the config grid
};

}  // namespace cmap::testbed
