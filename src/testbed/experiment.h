// Experiment harness: builds a live world (radios + MACs + traffic) over a
// measured Testbed and runs one configuration, reporting the paper's
// metrics (windowed goodput of non-duplicate packets, §5.1). The Scheme
// enum spans every MAC variant that appears in the evaluation's figures.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/cmap_mac.h"
#include "dynamics/dynamics.h"
#include "mac80211/dcf.h"
#include "metrics/metrics.h"
#include "net/traffic.h"
#include "phy/medium.h"
#include "phy/partition.h"
#include "phy/radio.h"
#include "sim/pdes.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "trace/trace.h"

namespace cmap::testbed {

enum class Scheme {
  kCsma,            // 802.11: carrier sense on, link-layer ACKs on
  kCsmaOffAcks,     // carrier sense off, ACKs on
  kCsmaOffNoAcks,   // carrier sense off, ACKs off
  kCmap,            // CMAP, prototype (shim) configuration
  kCmapWin1,        // CMAP with a send window of one virtual packet
  kCmapIntegrated,  // CMAP over the integrated/PPR PHY realization
};

const char* scheme_name(Scheme scheme);
bool scheme_is_cmap(Scheme scheme);

struct Flow {
  phy::NodeId src = 0;
  phy::NodeId dst = 0;
};

/// CMAP-specific run overrides, grouped (ignored by the DCF schemes).
struct CmapOverrides {
  // Send-decision implementation: the indexed fast path, or the retained
  // reference scan it is golden-tested against.
  core::DecisionMode decision_mode = core::DecisionMode::kFast;
  std::optional<int> nvpkt;    // override Nvpkt
  std::optional<int> nwindow;  // override Nwindow (in VPs)
  // Override the CMAP defer-entry TTL (§3.4) and the interferer-list
  // broadcast period (§3.1). Mobile scenarios shorten both so stale
  // conflicts age out and fresh ones are re-broadcast within the run —
  // the periodic re-learning loop the paper's TTLs exist for.
  std::optional<sim::Time> defer_ttl;
  std::optional<sim::Time> ilist_period;
};

struct RunConfig {
  Scheme scheme = Scheme::kCmap;
  sim::Time duration = sim::seconds(100);
  sim::Time warmup = sim::seconds(40);  // measure over the last 60 s
  std::uint64_t seed = 1;
  phy::WifiRate data_rate = phy::WifiRate::k6Mbps;
  std::size_t packet_bytes = 1400;
  bool per_dest_queues = false;  // §3.2 optimization (CMAP only)
  bool annotate_rates = false;   // §3.5 extension (CMAP only)
  CmapOverrides cmap;            // CMAP-only knobs, grouped
  // Time-varying environment (mobility and/or channel evolution); the
  // World instantiates the dynamics subsystem when set. Mobility bounds
  // default to the testbed's floor; the channel model wraps the testbed's
  // propagation per run, seeded from (its own seed, the run seed).
  std::optional<dynamics::DynamicsConfig> dynamics;
  // Event tracing: when set (and the path non-empty), the World opens a
  // Tracer over the configured categories and every subsystem streams into
  // it. Tracing never draws randomness or schedules events, so a traced
  // run's results are identical to an untraced one's. Under PDES each
  // partition additionally gets its own stream at `path + ".p<N>"`
  // (trace::merge_streams reassembles one time-ordered file).
  std::optional<trace::TraceConfig> trace;
  // Run-level metrics (metrics/metrics.h): when set, the World owns a
  // counter Registry every subsystem hooks into, and — under PDES — the
  // engine records stall attribution. Like tracing, metrics never draw
  // randomness or schedule events, so a metered run's results are
  // identical to an unmetered one's; the counter section is additionally
  // byte-identical across partition and thread counts.
  std::optional<metrics::MetricsConfig> metrics;
  // Intra-run parallel execution (sim/pdes.h, docs/pdes.md). partitions <=
  // 1 keeps the single-queue serial path — the reference oracle PDES runs
  // are golden-tested byte-identical against. Results never depend on
  // partitions or threads.
  sim::PdesOptions pdes;

  // ---- Fluent builders ----
  // Each returns *this, so configurations read as one expression:
  //   RunConfig{}.with_scheme(Scheme::kCsma).with_seed(7)
  // They work on temporaries and named objects alike (the temporary case
  // copies on assignment, which these little structs don't mind).
  RunConfig& with_scheme(Scheme v) { scheme = v; return *this; }
  RunConfig& with_duration(sim::Time v) { duration = v; return *this; }
  RunConfig& with_warmup(sim::Time v) { warmup = v; return *this; }
  RunConfig& with_seed(std::uint64_t v) { seed = v; return *this; }
  RunConfig& with_data_rate(phy::WifiRate v) { data_rate = v; return *this; }
  RunConfig& with_packet_bytes(std::size_t v) {
    packet_bytes = v;
    return *this;
  }
  RunConfig& with_per_dest_queues(bool v) { per_dest_queues = v; return *this; }
  RunConfig& with_annotate_rates(bool v) { annotate_rates = v; return *this; }
  RunConfig& with_cmap(CmapOverrides v) { cmap = v; return *this; }
  RunConfig& with_decision_mode(core::DecisionMode v) {
    cmap.decision_mode = v;
    return *this;
  }
  RunConfig& with_nvpkt(int v) { cmap.nvpkt = v; return *this; }
  RunConfig& with_nwindow(int v) { cmap.nwindow = v; return *this; }
  RunConfig& with_defer_ttl(sim::Time v) { cmap.defer_ttl = v; return *this; }
  RunConfig& with_ilist_period(sim::Time v) {
    cmap.ilist_period = v;
    return *this;
  }
  RunConfig& with_dynamics(dynamics::DynamicsConfig v) {
    dynamics = std::move(v);
    return *this;
  }
  RunConfig& with_trace(trace::TraceConfig v) {
    trace = std::move(v);
    return *this;
  }
  RunConfig& with_metrics(metrics::MetricsConfig v) {
    metrics = std::move(v);
    return *this;
  }
  RunConfig& with_pdes(sim::PdesOptions v) { pdes = v; return *this; }
  RunConfig& with_partitions(int v) { pdes.partitions = v; return *this; }
  RunConfig& with_pdes_threads(int v) { pdes.threads = v; return *this; }
};

/// A live simulation world. Benches with bespoke needs (mesh phases,
/// mid-run inspection) use this directly; run_flows() covers the common
/// saturated-flows case.
class World {
 public:
  World(const Testbed& tb, const RunConfig& config);

  /// Instantiate radio + MAC + sink for a testbed node (idempotent).
  void add_node(phy::NodeId id);

  /// Saturate `src` toward `dst` (kBroadcastId allowed for CMAP §3.6).
  void add_saturated_flow(phy::NodeId src, phy::NodeId dst);

  /// Enqueue a fixed batch instead (mesh dissemination phases).
  void add_batch_flow(phy::NodeId src, phy::NodeId dst, std::uint64_t count);

  /// Set every sink's measurement window.
  void set_measurement_window(sim::Time begin, sim::Time end);

  /// Drive the world to `until`: the PDES engine when
  /// config().pdes.partitions > 1, else the serial simulator.
  void run(sim::Time until);

  /// The run (global-sequencer) simulator. Under PDES, per-node events
  /// live on partition simulators instead — drive partial runs through
  /// run(), not this.
  sim::Simulator& simulator() { return sim_; }
  /// The engine, when this run is partitioned (else nullptr).
  sim::PdesEngine* pdes() { return engine_.get(); }
  mac::Mac& mac(phy::NodeId id);
  net::PacketSink& sink(phy::NodeId id);
  core::CmapMac* cmap(phy::NodeId id);          // nullptr for DCF schemes
  mac80211::DcfMac* dcf(phy::NodeId id);        // nullptr for CMAP schemes
  phy::Radio& radio(phy::NodeId id);
  const RunConfig& config() const { return config_; }
  /// The dynamics subsystem, when config().dynamics is set (else nullptr).
  const dynamics::Dynamics* dynamics() const { return dynamics_.get(); }
  /// The run's tracer, when config().trace is set (else nullptr). Tests
  /// use it to mark stream positions (records_written) mid-run.
  trace::Tracer* tracer() const { return tracer_.get(); }
  /// The run's metrics registry, when config().metrics is set (else
  /// nullptr).
  metrics::Registry* metrics() const { return registry_.get(); }
  /// Assemble the full snapshot: the registry's counter section plus the
  /// execution profile (queue depths, PDES stall attribution). Meaningful
  /// any time, but normally taken after run().
  metrics::MetricsSnapshot metrics_snapshot();

 private:
  struct NodeState {
    std::unique_ptr<phy::Radio> radio;
    std::unique_ptr<mac::Mac> mac;
    std::unique_ptr<net::PacketSink> sink;
    std::unique_ptr<net::SaturatedSource> source;
    std::unique_ptr<net::BatchSource> batch;
  };

  /// The simulator `id`'s components schedule on: its partition's under
  /// PDES, the run simulator otherwise.
  sim::Simulator& node_simulator(phy::NodeId id);
  /// Recompute the engine's lookahead matrix from the attached radios'
  /// current positions (no-op when nothing moved since the last call).
  void refresh_pdes_delays();

  const Testbed& tb_;
  RunConfig config_;
  sim::Simulator sim_;
  sim::Rng rng_;
  // Owns the trace stream; bound into medium_ before any node or dynamics
  // instrumentation binds its hook (they cache the tracer pointer).
  std::unique_ptr<trace::Tracer> tracer_;
  // Owns the run's counter registry; bound into medium_ alongside the
  // tracer, before any hook caches it.
  std::unique_ptr<metrics::Registry> registry_;
  // PDES state (empty/null on the serial path). Declared before medium_
  // (which routes deliveries through the engine) and nodes_ (whose radios
  // live on the engine's partition simulators).
  phy::PartitionPlan plan_;
  std::unique_ptr<sim::PdesEngine> engine_;
  std::vector<std::unique_ptr<trace::Tracer>> part_tracers_;
  // Constructing the partition tracers leaves the last one thread-active;
  // this restores the run tracer for code running outside a partition
  // scope (setup, barriers). Declared after part_tracers_ so it unwinds
  // first.
  std::optional<trace::ScopedActive> active_restore_;
  std::uint64_t pdes_epoch_ = 0;
  bool pdes_delays_valid_ = false;
  // Per-run channel wrapper (nullptr without channel dynamics); must
  // outlive and precede medium_, which holds it as its propagation model.
  std::shared_ptr<dynamics::DynamicShadowing> channel_;
  phy::Medium medium_;
  std::unique_ptr<dynamics::Dynamics> dynamics_;
  std::map<phy::NodeId, NodeState> nodes_;
};

struct FlowResult {
  Flow flow;
  double mbps = 0.0;
  std::uint64_t unique_packets = 0;
  std::uint64_t duplicates = 0;
  mac::MacStats sender_stats;
  // CMAP-only observability (zero under DCF schemes).
  std::uint64_t vps_sent = 0;
  std::uint64_t rx_vps_delim = 0;    // receiver saw header or trailer
  std::uint64_t rx_vps_header = 0;   // receiver saw the header
  std::uint64_t defer_events = 0;
  std::uint64_t retx_timeouts = 0;
};

struct RunResult {
  std::vector<FlowResult> flows;
  double aggregate_mbps = 0.0;
  /// Set when config.metrics was: the run's full metrics snapshot.
  /// shared_ptr so results stay cheap to copy around report assembly.
  std::shared_ptr<const metrics::MetricsSnapshot> profile;
};

/// Run saturated unicast flows under one scheme and report per-flow and
/// aggregate goodput over the measurement window.
RunResult run_flows(const Testbed& tb, const std::vector<Flow>& flows,
                    const RunConfig& config);

}  // namespace cmap::testbed
