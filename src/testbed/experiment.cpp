#include "testbed/experiment.h"

#include <cstdio>
#include <string>

#include "sim/assert.h"

namespace cmap::testbed {
namespace {

// Per-run channel wrapper over the testbed's (shared, static) propagation.
// Seeded from both the channel config's seed and the run seed so
// replicates see independent channel realizations.
std::shared_ptr<dynamics::DynamicShadowing> make_channel(
    const Testbed& tb, const RunConfig& config) {
  if (!config.dynamics || !config.dynamics->channel) return nullptr;
  dynamics::ChannelConfig cc = *config.dynamics->channel;
  cc.seed = sim::mix64(cc.seed ^ sim::mix64(config.seed));
  return std::make_shared<dynamics::DynamicShadowing>(tb.propagation(), cc);
}

}  // namespace

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kCsma:
      return "CS,acks";
    case Scheme::kCsmaOffAcks:
      return "CSoff,acks";
    case Scheme::kCsmaOffNoAcks:
      return "CSoff,noacks";
    case Scheme::kCmap:
      return "CMAP";
    case Scheme::kCmapWin1:
      return "CMAP,win=1";
    case Scheme::kCmapIntegrated:
      return "CMAP,integrated";
  }
  return "?";
}

bool scheme_is_cmap(Scheme scheme) {
  return scheme == Scheme::kCmap || scheme == Scheme::kCmapWin1 ||
         scheme == Scheme::kCmapIntegrated;
}

World::World(const Testbed& tb, const RunConfig& config)
    : tb_(tb),
      config_(config),
      rng_(config.seed),
      channel_(make_channel(tb, config)),
      medium_(sim_, channel_ ? std::shared_ptr<const phy::PropagationModel>(
                                   channel_)
                             : tb.propagation(),
              tb.config().medium, sim::Rng(config.seed).substream(0xbead, 0)) {
  // The tracer must be bound into the medium before any radio, MAC, or
  // dynamics hook binds (each caches the tracer pointer at construction).
  if (config_.trace && !config_.trace->path.empty()) {
    tracer_ = std::make_unique<trace::Tracer>(*config_.trace);
    medium_.set_tracer(tracer_.get());
  }
  // Same discipline for the metrics registry: bound before any hook
  // caches it.
  if (config_.metrics) {
    registry_ = std::make_unique<metrics::Registry>(config_.metrics->domains);
    medium_.set_metrics(registry_.get());
  }
  if (config_.pdes.partitions > 1) {
    std::vector<phy::Position> positions;
    positions.reserve(static_cast<std::size_t>(tb_.size()));
    for (int i = 0; i < tb_.size(); ++i) {
      positions.push_back(tb_.position(static_cast<phy::NodeId>(i)));
    }
    plan_ = phy::make_partition_plan(positions, config_.pdes.partitions);
    engine_ = std::make_unique<sim::PdesEngine>(sim_, plan_.count,
                                                config_.pdes.threads);
    medium_.set_pdes(engine_.get(), &plan_);
    if (tracer_ != nullptr) {
      std::vector<trace::Tracer*> tracers;
      for (int p = 0; p < plan_.count; ++p) {
        trace::TraceConfig tc = *config_.trace;
        tc.path += ".p" + std::to_string(p);
        part_tracers_.push_back(std::make_unique<trace::Tracer>(tc));
        tracers.push_back(part_tracers_.back().get());
      }
      medium_.set_partition_tracers(std::move(tracers));
      // Each Tracer constructor made itself thread-active; put the run
      // tracer back for everything outside a partition scope.
      active_restore_.emplace(tracer_.get());
    }
    engine_->set_partition_scope([this](int p) -> std::shared_ptr<void> {
      trace::Tracer* t =
          p < 0 || part_tracers_.empty()
              ? tracer_.get()
              : part_tracers_[static_cast<std::size_t>(p)].get();
      return std::make_shared<trace::ScopedActive>(t);
    });
    engine_->set_topology_refresh([this] { refresh_pdes_delays(); });
    // Stall attribution reads a wall clock; only pay for it when metrics
    // were asked for.
    if (registry_ != nullptr) engine_->enable_profiling();
  }
  if (config_.dynamics &&
      (config_.dynamics->mobility || config_.dynamics->channel)) {
    // Resolve defaults in place so config() reports the effective values.
    dynamics::DynamicsConfig& dc = *config_.dynamics;
    if (dc.mobility) {
      // Default the mobility bounds to the testbed's floor.
      if (dc.mobility->width_m <= 0.0) {
        dc.mobility->width_m = tb_.config().width_m;
      }
      if (dc.mobility->height_m <= 0.0) {
        dc.mobility->height_m = tb_.config().height_m;
      }
    }
    dynamics_ = std::make_unique<dynamics::Dynamics>(
        sim_, medium_, channel_, dc, rng_.substream(0xd14a, 0));
    dynamics_->start();
  }
}

sim::Simulator& World::node_simulator(phy::NodeId id) {
  if (engine_ == nullptr) return sim_;
  return engine_->partition_sim(plan_.partition_of(id));
}

void World::refresh_pdes_delays() {
  if (engine_ == nullptr) return;
  if (!medium_.config().enable_propagation_delay) {
    // Deliveries are instantaneous: zero lookahead everywhere, so all
    // partitions form one merged (serially interleaved) scheduling group.
    // Install once; positions cannot change that.
    if (!pdes_delays_valid_) {
      pdes_delays_valid_ = true;
      engine_->set_min_delays(std::vector<sim::Time>(
          static_cast<std::size_t>(plan_.count) *
              static_cast<std::size_t>(plan_.count),
          0));
    }
    return;
  }
  if (pdes_delays_valid_ && medium_.position_epoch() == pdes_epoch_) return;
  pdes_delays_valid_ = true;
  pdes_epoch_ = medium_.position_epoch();
  std::vector<int> parts;
  std::vector<phy::Position> positions;
  parts.reserve(medium_.radios().size());
  positions.reserve(medium_.radios().size());
  for (const phy::Radio* r : medium_.radios()) {
    parts.push_back(plan_.partition_of(r->id()));
    positions.push_back(r->position());
  }
  engine_->set_min_delays(
      phy::min_cross_delays(parts, positions, plan_.count));
}

void World::run(sim::Time until) {
  if (engine_ == nullptr) {
    sim_.run_until(until);
    return;
  }
  refresh_pdes_delays();
  engine_->run_until(until);
}

void World::add_node(phy::NodeId id) {
  if (nodes_.count(id)) return;
  NodeState st;
  phy::RadioConfig rc = tb_.config().radio;
  // Integrated salvage (PPR) is a radio capability of that scheme.
  rc.salvage_enabled = config_.scheme == Scheme::kCmapIntegrated;
  sim::Simulator& nsim = node_simulator(id);
  st.radio = std::make_unique<phy::Radio>(nsim, medium_, id, tb_.position(id),
                                          rc, tb_.error_model(),
                                          rng_.substream(0x4ad10, id));

  if (scheme_is_cmap(config_.scheme)) {
    core::CmapConfig cc;
    if (config_.scheme == Scheme::kCmapIntegrated) {
      cc = core::CmapConfig::integrated_defaults();
    }
    if (config_.scheme == Scheme::kCmapWin1) cc.nwindow_vps = 1;
    if (config_.cmap.nvpkt) cc.nvpkt = *config_.cmap.nvpkt;
    if (config_.cmap.nwindow) cc.nwindow_vps = *config_.cmap.nwindow;
    if (config_.cmap.defer_ttl) cc.defer_entry_ttl = *config_.cmap.defer_ttl;
    if (config_.cmap.ilist_period) cc.ilist_period = *config_.cmap.ilist_period;
    cc.data_rate = config_.data_rate;
    cc.per_dest_queues = config_.per_dest_queues;
    cc.annotate_rates = config_.annotate_rates;
    cc.decision_mode = config_.cmap.decision_mode;
    st.mac = std::make_unique<core::CmapMac>(nsim, *st.radio, cc,
                                             rng_.substream(0x3ac, id));
  } else {
    mac80211::DcfConfig dc;
    dc.carrier_sense = config_.scheme == Scheme::kCsma;
    dc.acks = config_.scheme != Scheme::kCsmaOffNoAcks;
    dc.data_rate = config_.data_rate;
    st.mac = std::make_unique<mac80211::DcfMac>(nsim, *st.radio, dc,
                                                rng_.substream(0x3ac, id));
  }
  st.sink = std::make_unique<net::PacketSink>(*st.mac, nsim);
  st.sink->set_window(config_.warmup, config_.duration);
  nodes_[id] = std::move(st);
}

void World::add_saturated_flow(phy::NodeId src, phy::NodeId dst) {
  add_node(src);
  if (dst != phy::kBroadcastId) add_node(dst);
  NodeState& st = nodes_.at(src);
  CMAP_ASSERT(!st.source && !st.batch, "node already has a source");
  st.source = std::make_unique<net::SaturatedSource>(
      *st.mac, src, dst, config_.packet_bytes);
}

void World::add_batch_flow(phy::NodeId src, phy::NodeId dst,
                           std::uint64_t count) {
  add_node(src);
  if (dst != phy::kBroadcastId) add_node(dst);
  NodeState& st = nodes_.at(src);
  CMAP_ASSERT(!st.source && !st.batch, "node already has a source");
  st.batch = std::make_unique<net::BatchSource>(*st.mac, src, dst, count,
                                                config_.packet_bytes);
}

void World::set_measurement_window(sim::Time begin, sim::Time end) {
  for (auto& [id, st] : nodes_) st.sink->set_window(begin, end);
}

metrics::MetricsSnapshot World::metrics_snapshot() {
  metrics::MetricsSnapshot snap;
  if (registry_ == nullptr) return snap;
  snap.domains = registry_->domains();
  for (std::size_t i = 0; i < metrics::kCounterCount; ++i) {
    snap.counters[i] =
        registry_->value(static_cast<metrics::Counter>(i));
  }
  snap.threads = config_.pdes.threads;
  if (engine_ == nullptr) {
    snap.partitions = 1;
    snap.queue_depth_high_water = sim_.queue().depth_high_water();
    snap.queue_compactions = sim_.queue().compactions();
    metrics::PartitionExec pe;
    pe.partition = 0;
    pe.executed = sim_.queue().executed();
    snap.parts.push_back(pe);
    return snap;
  }
  snap.partitions = engine_->partitions();
  snap.queue_depth_high_water = sim_.queue().depth_high_water();
  snap.queue_compactions = sim_.queue().compactions();
  const sim::PdesExecStats& es = engine_->exec_stats();
  snap.rounds = engine_->rounds();
  snap.global_barriers = es.global_barriers;
  snap.merged_windows = es.merged_windows;
  snap.window_log2 = es.window_log2;
  snap.parallel_wall_ms = static_cast<double>(es.parallel_ns) / 1e6;
  for (int p = 0; p < engine_->partitions(); ++p) {
    sim::EventQueue& q = engine_->partition_sim(p).queue();
    if (q.depth_high_water() > snap.queue_depth_high_water) {
      snap.queue_depth_high_water = q.depth_high_water();
    }
    snap.queue_compactions += q.compactions();
    metrics::PartitionExec pe;
    pe.partition = p;
    pe.executed = q.executed();
    pe.mailbox_posted = engine_->mailbox_posted(p);
    pe.busy_ms =
        static_cast<double>(es.busy_ns[static_cast<std::size_t>(p)]) / 1e6;
    pe.barrier_wait_ms = snap.parallel_wall_ms > pe.busy_ms
                             ? snap.parallel_wall_ms - pe.busy_ms
                             : 0.0;
    snap.parts.push_back(pe);
  }
  return snap;
}

mac::Mac& World::mac(phy::NodeId id) { return *nodes_.at(id).mac; }
net::PacketSink& World::sink(phy::NodeId id) { return *nodes_.at(id).sink; }
phy::Radio& World::radio(phy::NodeId id) { return *nodes_.at(id).radio; }

core::CmapMac* World::cmap(phy::NodeId id) {
  return dynamic_cast<core::CmapMac*>(nodes_.at(id).mac.get());
}

mac80211::DcfMac* World::dcf(phy::NodeId id) {
  return dynamic_cast<mac80211::DcfMac*>(nodes_.at(id).mac.get());
}

RunResult run_flows(const Testbed& tb, const std::vector<Flow>& flows,
                    const RunConfig& config) {
  World world(tb, config);
  for (const auto& f : flows) {
    world.add_saturated_flow(f.src, f.dst);
  }
  world.run(config.duration);

  RunResult result;
  for (const auto& f : flows) {
    FlowResult fr;
    fr.flow = f;
    fr.mbps = world.sink(f.dst).meter().mbps();
    fr.unique_packets = world.sink(f.dst).unique_packets();
    fr.duplicates = world.sink(f.dst).duplicate_packets();
    fr.sender_stats = world.mac(f.src).stats();
    if (auto* sender = world.cmap(f.src)) {
      fr.vps_sent = sender->counters().vps_sent;
      fr.defer_events = sender->counters().defer_events;
      fr.retx_timeouts = sender->counters().retx_timeouts;
    }
    if (auto* receiver = world.cmap(f.dst)) {
      fr.rx_vps_delim = receiver->counters().vps_delim_received;
      fr.rx_vps_header = receiver->counters().vps_header_received;
    }
    result.flows.push_back(fr);
    result.aggregate_mbps += fr.mbps;
  }
  if (config.metrics) {
    auto snap = std::make_shared<metrics::MetricsSnapshot>(
        world.metrics_snapshot());
    if (!config.metrics->path.empty()) {
      if (std::FILE* f = std::fopen(config.metrics->path.c_str(), "w")) {
        const std::string json = snap->to_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      }
    }
    result.profile = std::move(snap);
  }
  return result;
}

}  // namespace cmap::testbed
