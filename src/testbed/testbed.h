// The simulated stand-in for the paper's 50-node indoor 802.11a testbed
// (§5.1, Fig. 10): nodes scattered over an office floor, log-distance path
// loss with per-pair shadowing, and a "measurement pass" that computes each
// directed link's packet reception rate (PRR) and signal strength — the
// inputs the paper's topology constraints (Fig. 11) are phrased in.
//
// Default constants are calibrated so the resulting link population matches
// the paper's reported statistics: of pairs with any connectivity, ~68%
// have PRR < 0.1, ~12% are intermediate, ~20% have PRR ~= 1; mean degree
// (PRR > 0.1 neighbours) ~= 15.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "phy/error_model.h"
#include "phy/medium.h"
#include "phy/propagation.h"
#include "phy/radio.h"
#include "phy/types.h"
#include "sim/random.h"
#include "testbed/measurement.h"

namespace cmap::testbed {

struct TestbedConfig {
  int num_nodes = 50;
  double width_m = 70.0;
  double height_m = 40.0;
  std::uint64_t seed = 1;  // drives placement AND shadowing

  phy::LogDistanceConfig prop = default_prop();
  phy::RadioConfig radio = default_radio();    // shared by all nodes
  phy::MediumConfig medium = default_medium(); // fading during live runs
  phy::WifiRate probe_rate = phy::WifiRate::k6Mbps;
  std::size_t probe_bytes = 1400;
  int prr_fading_samples = 100;  // reference-mode fading draws per link
  /// How the measurement pass runs (fast/reference, threads, table
  /// resolution) — see measurement.h. Does not affect placement or
  /// signal strengths, only how link PRRs are estimated.
  MeasurementConfig measurement = {};

  /// Full structural equality — the TestbedCache key.
  bool operator==(const TestbedConfig&) const = default;

  static phy::LogDistanceConfig default_prop() {
    phy::LogDistanceConfig p;
    p.exponent = 4.0;
    p.shadow_sigma_db = 8.0;
    p.asym_sigma_db = 2.0;
    return p;
  }

  static phy::RadioConfig default_radio() {
    phy::RadioConfig r;
    // Calibrated against §5.1: a low transmit power shrinks the decode
    // range until the mean degree lands near the paper's 15.2, WITHOUT
    // inflating the SINR needed to decode through interference — packet
    // capture (ACKs punching through a weaker interferer) is what makes
    // exposed-terminal concurrency workable, so it must stay realistic.
    r.tx_power_dbm = 2.0;
    return r;
  }

  static phy::MediumConfig default_medium() {
    phy::MediumConfig m;
    // Keep energy connectivity broad (the paper's testbed has 88% of
    // pairs with "any connectivity") despite the low transmit power.
    m.delivery_floor_dbm = -110.0;
    return m;
  }
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  int size() const { return config_.num_nodes; }
  const TestbedConfig& config() const { return config_; }
  const phy::Position& position(phy::NodeId id) const {
    return positions_[id];
  }
  std::shared_ptr<const phy::PropagationModel> propagation() const {
    return propagation_;
  }
  std::shared_ptr<const phy::ErrorModel> error_model() const {
    return error_model_;
  }

  /// Measured PRR of the directed link from -> to (1400 B probes at the
  /// probe rate, fading-averaged), in the absence of interference.
  double prr(phy::NodeId from, phy::NodeId to) const;

  /// Mean received signal strength (dBm) of the directed link.
  double signal_dbm(phy::NodeId from, phy::NodeId to) const;

  /// Percentile (0-100) of signal strength across all connected directed
  /// links network-wide — the paper's "10th/90th percentile" thresholds.
  /// The 10th/90th values the link predicates use are precomputed at
  /// measurement time (they used to be recomputed inside every predicate
  /// call of the pickers' O(L^2) loops).
  double signal_percentile(double p) const;

  // ---- The paper's §5.1 link predicates ----
  /// Both directions have PRR > 0.2 and signal above the 10th percentile.
  bool in_range(phy::NodeId a, phy::NodeId b) const;
  /// Both directions have PRR > 0.9 and signal above the 10th percentile.
  bool potential_link(phy::NodeId a, phy::NodeId b) const;
  /// Directed signal at or above the 90th percentile.
  bool strong_signal(phy::NodeId from, phy::NodeId to) const;

  /// All directed links satisfying potential_link(), in (from, to)
  /// lexicographic order. Computed once at construction — the pickers'
  /// O(n^2) predicate sweep used to rerun on every scenario draw.
  const std::vector<std::pair<phy::NodeId, phy::NodeId>>& potential_links()
      const {
    return potential_links_;
  }

  /// Destinations b with potential_link(a, b), ascending — the CSR row
  /// view of potential_links() that lets pickers and flow selection walk a
  /// node's neighborhood without scanning all n ids.
  std::span<const phy::NodeId> potential_neighbors(phy::NodeId a) const {
    return {pot_dst_.data() + pot_begin_[a],
            pot_dst_.data() + pot_begin_[a + 1]};
  }

  /// Destinations b with signal_dbm(a, b) at or above the delivery floor
  /// ("any connectivity" outbound), ascending. Under the sparse store this
  /// is the stored CSR row itself; the dense store derives an equivalent
  /// CSR once at construction.
  std::span<const phy::NodeId> connected_neighbors(phy::NodeId a) const {
    if (sparse()) {
      return {link_dst_.data() + row_begin_[a],
              link_dst_.data() + row_begin_[a + 1]};
    }
    return {conn_dst_.data() + conn_begin_[a],
            conn_dst_.data() + conn_begin_[a + 1]};
  }

  /// Whether this testbed runs the sparse pair-state store
  /// (config().measurement.store == MeasurementStore::kSparse).
  bool sparse() const { return !row_begin_.empty(); }

  /// Directed pairs held in the sparse CSR (0 under the dense store) —
  /// observability for memory accounting and tests.
  std::size_t stored_links() const { return link_dst_.size(); }

  // ---- Calibration statistics (validated against §5.1) ----
  struct LinkClasses {
    int connected_pairs = 0;  // directed pairs with any connectivity
    double frac_dead = 0;     // PRR < 0.1
    double frac_mid = 0;      // 0.1 <= PRR < 0.95
    double frac_perfect = 0;  // PRR >= 0.95
  };
  LinkClasses link_classes() const;
  /// Mean number of neighbours with PRR > 0.1 (either direction counts).
  double mean_degree() const;

 private:
  /// Index of (from, to) in the sparse CSR arrays, or -1 when not stored
  /// (meaning its mean signal is below the delivery floor).
  std::ptrdiff_t stored_index(phy::NodeId from, phy::NodeId to) const;
  /// {prr, signal} for any directed pair: CSR hit, else the lazy memo.
  std::pair<double, double> link_values(phy::NodeId from, phy::NodeId to) const;
  void build_neighbor_csrs();

  TestbedConfig config_;
  std::vector<phy::Position> positions_;
  std::shared_ptr<phy::LogDistanceShadowing> propagation_;
  std::shared_ptr<phy::NistErrorModel> error_model_;
  // Dense store: full matrices.
  std::vector<double> prr_;         // [from * n + to]
  std::vector<double> signal_;      // [from * n + to]
  // Sparse store: CSR over connected directed pairs (dst ascending per
  // row), plus a mutex-protected memo lazily answering off-CSR queries
  // with exactly the values the dense store would hold.
  std::vector<std::uint32_t> row_begin_;  // size n + 1; empty when dense
  std::vector<phy::NodeId> link_dst_;
  std::vector<double> link_prr_;
  std::vector<double> link_signal_;
  std::unique_ptr<LinkMeasurement> lazy_;  // retained only by sparse mode
  mutable std::mutex memo_mutex_;
  mutable std::unordered_map<std::uint64_t, std::pair<double, double>> memo_;
  // Neighbor CSRs (both stores): potential_link rows, and (dense only —
  // sparse reads its own CSR) any-connectivity rows.
  std::vector<std::uint32_t> pot_begin_;
  std::vector<phy::NodeId> pot_dst_;
  std::vector<std::uint32_t> conn_begin_;
  std::vector<phy::NodeId> conn_dst_;
  std::vector<double> connected_signals_;  // sorted, for percentiles
  std::vector<std::pair<phy::NodeId, phy::NodeId>> potential_links_;
  double p10_ = 0.0;  // cached signal_percentile(10/90); NaN when no pair
  double p90_ = 0.0;  // clears the delivery floor (predicates then false)
};

/// Memoizes built testbeds by config (including seed; the result-invariant
/// measurement thread knob is normalized out of the key), so sweeps and
/// benches instantiating the same building repeatedly stop re-running the
/// measurement pass. Entries are shared_ptr<const Testbed>: hits return
/// the identical instance. Thread-safe; misses build outside the lock, so
/// hits and unrelated configs never wait on a measurement pass (concurrent
/// misses on one config may build twice — the first insert wins and every
/// caller gets that one instance).
class TestbedCache {
 public:
  std::shared_ptr<const Testbed> get(const TestbedConfig& config);

  std::size_t size() const;
  void clear();

  /// Process-wide cache (used by SweepRunner's scenario-resolved overload).
  static TestbedCache& global();

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<TestbedConfig, std::shared_ptr<const Testbed>>>
      entries_;
};

}  // namespace cmap::testbed
