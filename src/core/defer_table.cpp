#include "core/defer_table.h"

#include <algorithm>

namespace cmap::core {

bool DeferTable::rate_matches(phy::WifiRate entry_rate, phy::WifiRate rate) {
  return entry_rate == kAnyRate || rate == kAnyRate || entry_rate == rate;
}

void DeferTable::upsert(DeferEntry e) {
  for (auto& existing : entries_) {
    if (existing.dst == e.dst && existing.src == e.src &&
        existing.via == e.via && existing.my_rate == e.my_rate &&
        existing.their_rate == e.their_rate) {
      existing.expires = e.expires;  // refresh
      return;
    }
  }
  entries_.push_back(e);
}

void DeferTable::apply_interferer_list(
    phy::NodeId self, phy::NodeId reporter,
    const std::vector<InterfererEntry>& entries, sim::Time now) {
  for (const auto& il : entries) {
    DeferEntry e;
    e.expires = now + ttl_;
    if (annotate_rates_) {
      e.my_rate = il.source_rate;
      e.their_rate = il.interferer_rate;
    }
    if (il.source == self) {
      // Rule 1: my transmissions to the reporter lose to il.interferer.
      e.dst = reporter;
      e.src = il.interferer;
      e.via = phy::kBroadcastId;
      upsert(e);
    }
    if (il.interferer == self) {
      // Rule 2: my transmissions to anyone trample il.source -> reporter.
      e.dst = phy::kBroadcastId;
      e.src = il.source;
      e.via = reporter;
      // The roles flip: when deferring, *my* rate is the interferer rate.
      if (annotate_rates_) {
        e.my_rate = il.interferer_rate;
        e.their_rate = il.source_rate;
      }
      upsert(e);
    }
  }
}

bool DeferTable::should_defer(phy::NodeId my_dst, phy::NodeId p,
                              phy::NodeId q, sim::Time now,
                              phy::WifiRate my_rate,
                              phy::WifiRate their_rate) const {
  for (const auto& e : entries_) {
    if (e.expires <= now) continue;
    if (!rate_matches(e.my_rate, my_rate) ||
        !rate_matches(e.their_rate, their_rate)) {
      continue;
    }
    // Defer pattern 1: (* : p -> q).
    if (e.dst == phy::kBroadcastId && e.src == p && e.via == q) return true;
    // Defer pattern 2: (v : p -> *).
    if (e.dst == my_dst && e.src == p && e.via == phy::kBroadcastId) {
      return true;
    }
  }
  return false;
}

void DeferTable::expire(sim::Time now) {
  std::erase_if(entries_,
                [now](const DeferEntry& e) { return e.expires <= now; });
}

}  // namespace cmap::core
