#include "core/defer_table.h"

#include <algorithm>
#include <tuple>

namespace cmap::core {
namespace {

void remove_from_bucket(std::vector<std::uint32_t>& bucket,
                        std::uint32_t idx) {
  const auto it = std::find(bucket.begin(), bucket.end(), idx);
  if (it == bucket.end()) return;
  *it = bucket.back();  // order within a bucket carries no meaning
  bucket.pop_back();
}

}  // namespace

bool DeferTable::rate_matches(phy::WifiRate entry_rate, phy::WifiRate rate) {
  return entry_rate == kAnyRate || rate == kAnyRate || entry_rate == rate;
}

DeferTable::Bucket* DeferTable::primary_bucket(const DeferEntry& e) {
  // Every entry the update rules produce has at least one wildcard; the
  // primary bucket is where exact duplicates of it are guaranteed to live.
  if (e.dst == phy::kBroadcastId) return &by_src_via_[pair_key(e.src, e.via)];
  if (e.via == phy::kBroadcastId) return &by_dst_src_[pair_key(e.dst, e.src)];
  return &unmatched_;
}

void DeferTable::link(std::uint32_t idx) const {
  const DeferEntry& e = slots_[idx].e;
  if (e.dst == phy::kBroadcastId) {
    by_src_via_[pair_key(e.src, e.via)].push_back(idx);
  }
  if (e.via == phy::kBroadcastId) {
    by_dst_src_[pair_key(e.dst, e.src)].push_back(idx);
  }
  if (e.dst != phy::kBroadcastId && e.via != phy::kBroadcastId) {
    unmatched_.push_back(idx);
  }
}

void DeferTable::unlink(std::uint32_t idx, sim::Time now) const {
  Slot& s = slots_[idx];
  metrics_.inc(metrics::Counter::kMacDeferTtlExpiries);
  if (trace_.wants(trace::Category::kDeferTable)) {
    trace_.tracer->defer_table(
        now, trace_.self, trace::DeferTableOp::kExpire, s.e.dst, s.e.src,
        s.e.via, static_cast<std::uint32_t>(s.e.my_rate),
        static_cast<std::uint32_t>(s.e.their_rate), s.e.expires);
  }
  if (s.e.dst == phy::kBroadcastId) {
    const auto it = by_src_via_.find(pair_key(s.e.src, s.e.via));
    if (it != by_src_via_.end()) remove_from_bucket(it->second, idx);
  }
  if (s.e.via == phy::kBroadcastId) {
    const auto it = by_dst_src_.find(pair_key(s.e.dst, s.e.src));
    if (it != by_dst_src_.end()) remove_from_bucket(it->second, idx);
  }
  if (s.e.dst != phy::kBroadcastId && s.e.via != phy::kBroadcastId) {
    remove_from_bucket(unmatched_, idx);
  }
  s.live = false;
  free_.push_back(idx);
  --live_count_;
}

void DeferTable::upsert(DeferEntry e, sim::Time now) {
  const bool traced = trace_.wants(trace::Category::kDeferTable);
  // An exact duplicate (same key fields including rates) refreshes the
  // existing entry's TTL in place — whether or not it has lapsed — so
  // re-reported conflicts never grow the table.
  Bucket* primary = primary_bucket(e);
  for (std::uint32_t idx : *primary) {
    DeferEntry& existing = slots_[idx].e;
    if (existing.dst == e.dst && existing.src == e.src &&
        existing.via == e.via && existing.my_rate == e.my_rate &&
        existing.their_rate == e.their_rate) {
      existing.expires = e.expires;
      metrics_.inc(metrics::Counter::kMacDeferRefreshes);
      if (traced) {
        trace_.tracer->defer_table(
            now, trace_.self, trace::DeferTableOp::kRefresh, e.dst, e.src,
            e.via, static_cast<std::uint32_t>(e.my_rate),
            static_cast<std::uint32_t>(e.their_rate), e.expires);
      }
      return;
    }
  }
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[idx].e = e;
  slots_[idx].live = true;
  ++live_count_;
  link(idx);
  if (metrics_.on()) {
    metrics_.inc(metrics::Counter::kMacDeferInserts);
    metrics_.raise(metrics::Counter::kMacDeferOccupancyHw, live_count_);
  }
  if (traced) {
    trace_.tracer->defer_table(
        now, trace_.self, trace::DeferTableOp::kInsert, e.dst, e.src, e.via,
        static_cast<std::uint32_t>(e.my_rate),
        static_cast<std::uint32_t>(e.their_rate), e.expires);
  }
}

void DeferTable::apply_interferer_list(
    phy::NodeId self, phy::NodeId reporter,
    const std::vector<InterfererEntry>& entries, sim::Time now) {
  for (const auto& il : entries) {
    DeferEntry e;
    e.expires = now + ttl_;
    if (annotate_rates_) {
      e.my_rate = il.source_rate;
      e.their_rate = il.interferer_rate;
    }
    if (il.source == self) {
      // Rule 1: my transmissions to the reporter lose to il.interferer.
      e.dst = reporter;
      e.src = il.interferer;
      e.via = phy::kBroadcastId;
      upsert(e, now);
    }
    if (il.interferer == self) {
      // Rule 2: my transmissions to anyone trample il.source -> reporter.
      e.dst = phy::kBroadcastId;
      e.src = il.source;
      e.via = reporter;
      // The roles flip: when deferring, *my* rate is the interferer rate.
      if (annotate_rates_) {
        e.my_rate = il.interferer_rate;
        e.their_rate = il.source_rate;
      }
      upsert(e, now);
    }
  }
}

bool DeferTable::probe(Index& index, std::uint64_t key, sim::Time now,
                       phy::WifiRate my_rate,
                       phy::WifiRate their_rate) const {
  metrics_.inc(metrics::Counter::kMacDeferProbes);
  const auto it = index.find(key);
  if (it == index.end()) return false;
  Bucket& bucket = it->second;
  std::size_t i = 0;
  while (i < bucket.size()) {
    const std::uint32_t idx = bucket[i];
    const DeferEntry& e = slots_[idx].e;
    if (e.expires <= now) {
      // Lazy TTL reclamation: unlink swap-pops idx out of this bucket (and
      // its sibling, for dual-wildcard entries), so i now names the entry
      // that was at the back — do not advance.
      unlink(idx, now);
      continue;
    }
    if (rate_matches(e.my_rate, my_rate) &&
        rate_matches(e.their_rate, their_rate)) {
      return true;
    }
    ++i;
  }
  return false;
}

bool DeferTable::should_defer(phy::NodeId my_dst, phy::NodeId p,
                              phy::NodeId q, sim::Time now,
                              phy::WifiRate my_rate,
                              phy::WifiRate their_rate) const {
  // Defer pattern 1: (* : p -> q).
  if (probe(by_src_via_, pair_key(p, q), now, my_rate, their_rate)) {
    return true;
  }
  // Defer pattern 2: (v : p -> *).
  return probe(by_dst_src_, pair_key(my_dst, p), now, my_rate, their_rate);
}

bool DeferTable::should_defer_reference(phy::NodeId my_dst, phy::NodeId p,
                                        phy::NodeId q, sim::Time now,
                                        phy::WifiRate my_rate,
                                        phy::WifiRate their_rate) const {
  for (const Slot& s : slots_) {
    if (!s.live) continue;
    const DeferEntry& e = s.e;
    if (e.expires <= now) continue;
    if (!rate_matches(e.my_rate, my_rate) ||
        !rate_matches(e.their_rate, their_rate)) {
      continue;
    }
    // Defer pattern 1: (* : p -> q).
    if (e.dst == phy::kBroadcastId && e.src == p && e.via == q) return true;
    // Defer pattern 2: (v : p -> *).
    if (e.dst == my_dst && e.src == p && e.via == phy::kBroadcastId) {
      return true;
    }
  }
  return false;
}

void DeferTable::expire(sim::Time now) {
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (slots_[idx].live && slots_[idx].e.expires <= now) unlink(idx, now);
  }
}

std::vector<DeferEntry> DeferTable::entries() const {
  std::vector<DeferEntry> out;
  out.reserve(live_count_);
  for (const Slot& s : slots_) {
    if (s.live) out.push_back(s.e);
  }
  return out;
}

std::vector<DeferEntry> DeferTable::snapshot(sim::Time now) const {
  std::vector<DeferEntry> out;
  out.reserve(live_count_);
  for (const Slot& s : slots_) {
    // entries() reports linked slots even past their TTL (lazy reclamation
    // keeps them around until a probe touches them); the snapshot applies
    // the TTL rule itself so it matches what any reader would reconstruct.
    if (s.live && s.e.expires > now) out.push_back(s.e);
  }
  std::sort(out.begin(), out.end(), [](const DeferEntry& a,
                                       const DeferEntry& b) {
    return std::tie(a.dst, a.src, a.via, a.my_rate, a.their_rate) <
           std::tie(b.dst, b.src, b.via, b.my_rate, b.their_rate);
  });
  return out;
}

}  // namespace cmap::core
