#include "core/rate_adaptation.h"

#include <algorithm>

#include "sim/assert.h"

namespace cmap::core {
namespace {

double goodput(std::size_t payload_bytes, phy::WifiRate rate,
               sim::Time wait) {
  const double bits = 8.0 * static_cast<double>(payload_bytes);
  const sim::Time air = phy::frame_airtime(rate, payload_bytes);
  const double secs = sim::to_seconds(wait + air);
  return secs > 0 ? bits / secs : 0.0;
}

}  // namespace

ConflictAwareRateChooser::ConflictAwareRateChooser(
    std::vector<phy::WifiRate> candidates)
    : candidates_(std::move(candidates)) {
  CMAP_ASSERT(!candidates_.empty(), "no candidate rates");
}

RateChoice ConflictAwareRateChooser::choose_idle(
    std::size_t payload_bytes) const {
  RateChoice best;
  for (phy::WifiRate r : candidates_) {
    const double bps = goodput(payload_bytes, r, 0);
    if (bps > best.expected_bps) {
      best = RateChoice{r, false, bps};
    }
  }
  return best;
}

RateChoice ConflictAwareRateChooser::choose(const DeferTable& table,
                                            phy::NodeId dst,
                                            const OngoingTx& ongoing,
                                            sim::Time now,
                                            std::size_t payload_bytes) const {
  const sim::Time wait = std::max<sim::Time>(0, ongoing.end_time - now);
  RateChoice best;
  for (phy::WifiRate r : candidates_) {
    // Option A: transmit concurrently at r — admissible only when the
    // conflict map has no entry against (r, ongoing rate).
    if (!table.should_defer(dst, ongoing.src, ongoing.dst, now, r,
                            ongoing.data_rate)) {
      const double bps = goodput(payload_bytes, r, 0);
      if (bps > best.expected_bps) best = RateChoice{r, false, bps};
    }
    // Option B: defer until the ongoing transmission ends, then send at r.
    const double bps = goodput(payload_bytes, r, wait);
    if (bps > best.expected_bps) best = RateChoice{r, true, bps};
  }
  return best;
}

}  // namespace cmap::core
