#include "core/loss_backoff.h"

#include <algorithm>

namespace cmap::core {

void LossBackoff::on_ack_loss_rate(double loss_rate) {
  if (loss_rate <= l_backoff_) {
    cw_ = 0;
    return;
  }
  if (cw_ == 0) {
    cw_ = cw_start_;
  } else if (cw_ < cw_max_) {
    cw_ = std::min(2 * cw_, cw_max_);
  }
}

sim::Time LossBackoff::draw(sim::Rng& rng) const {
  if (cw_ <= 0) return 0;
  return rng.uniform_int(0, cw_);
}

}  // namespace cmap::core
