// Receiver-side conflict inference (§3.1): for each (sender u, interferer
// x) pair, track how packets from u fare when x is concurrently on the air.
// When the conditional loss rate crosses l_interf with enough evidence,
// (u, x) enters this receiver's interferer list, which is periodically
// broadcast. Counters decay exponentially so stale conflicts age out as
// channel conditions change.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/wire.h"
#include "phy/types.h"
#include "sim/time.h"

namespace cmap::core {

class InterfererTracker {
 public:
  InterfererTracker(double l_interf, int min_samples, sim::Time halflife)
      : l_interf_(l_interf),
        min_samples_(min_samples),
        halflife_(halflife) {}

  /// Record the fate of one expected data packet from `sender` whose
  /// airtime overlapped transmissions from each node in `concurrent`
  /// (rates parallel to `concurrent`). A packet with no concurrent foreign
  /// transmission contributes to the baseline only.
  void observe(phy::NodeId sender, phy::WifiRate sender_rate,
               const std::vector<phy::NodeId>& concurrent,
               const std::vector<phy::WifiRate>& rates, bool received,
               sim::Time now);

  /// Pairs currently over the interference threshold — the interferer list
  /// I_v this receiver broadcasts.
  std::vector<InterfererEntry> snapshot(sim::Time now) const;

  /// Conditional loss rate for (sender, interferer), or -1 if unseen.
  double loss_rate(phy::NodeId sender, phy::NodeId interferer) const;

  /// Unconditional (no known interferer) loss rate for `sender`, -1 if
  /// unseen.
  double baseline_loss_rate(phy::NodeId sender) const;

 private:
  struct Stat {
    double expected = 0.0;
    double lost = 0.0;
    sim::Time last_decay = 0;
    phy::WifiRate sender_rate = kAnyRate;
    phy::WifiRate interferer_rate = kAnyRate;
  };
  using Key = std::uint64_t;  // (sender << 32) | interferer
  static Key key(phy::NodeId sender, phy::NodeId interferer) {
    return (static_cast<Key>(sender) << 32) | interferer;
  }

  void decay(Stat& s, sim::Time now) const;

  double l_interf_;
  int min_samples_;
  sim::Time halflife_;
  std::unordered_map<Key, Stat> pair_stats_;
  std::unordered_map<phy::NodeId, Stat> baseline_;
};

}  // namespace cmap::core
