#include "core/ongoing_list.h"

#include <algorithm>

namespace cmap::core {

void OngoingList::note(const VpDescriptor& d, sim::Time end_time) {
  for (auto& e : entries_) {
    if (e.src == d.src && e.dst == d.dst) {
      e.end_time = end_time;
      e.data_rate = d.data_rate;
      return;
    }
  }
  entries_.push_back(OngoingTx{d.src, d.dst, end_time, d.data_rate});
}

bool OngoingList::node_busy(phy::NodeId node, sim::Time now) const {
  for (const auto& e : entries_) {
    if (e.end_time > now && (e.src == node || e.dst == node)) return true;
  }
  return false;
}

std::vector<OngoingTx> OngoingList::active(sim::Time now) const {
  std::vector<OngoingTx> out;
  for (const auto& e : entries_) {
    if (e.end_time > now) out.push_back(e);
  }
  return out;
}

sim::Time OngoingList::end_of(phy::NodeId src, phy::NodeId dst,
                              sim::Time now) const {
  for (const auto& e : entries_) {
    if (e.src == src && e.dst == dst && e.end_time > now) return e.end_time;
  }
  return 0;
}

void OngoingList::expire(sim::Time now) {
  std::erase_if(entries_,
                [now](const OngoingTx& e) { return e.end_time <= now; });
}

}  // namespace cmap::core
