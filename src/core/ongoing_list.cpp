#include "core/ongoing_list.h"

namespace cmap::core {

void OngoingList::note(const VpDescriptor& d, sim::Time end_time,
                       sim::Time now) {
  CMAP_ASSERT(!walking_, "note() during an OngoingList walk");
  // A pair already on the ring — expired or not — is updated in place,
  // exactly as the flat-vector representation did.
  for (std::uint32_t idx = head_; idx != kNil; idx = slots_[idx].next) {
    OngoingTx& tx = slots_[idx].tx;
    if (tx.src == d.src && tx.dst == d.dst) {
      tx.end_time = end_time;
      tx.data_rate = d.data_rate;
      if (trace_.wants(trace::Category::kOngoing)) {
        trace_.tracer->ongoing(now, trace_.self, trace::OngoingOp::kUpdate,
                               d.src, d.dst, end_time);
      }
      return;
    }
  }
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = slots_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Node& n = slots_[idx];
  n.tx = OngoingTx{d.src, d.dst, end_time, d.data_rate};
  n.prev = tail_;
  n.next = kNil;
  if (tail_ != kNil) {
    slots_[tail_].next = idx;
  } else {
    head_ = idx;
  }
  tail_ = idx;
  ++live_count_;
  metrics_.raise(metrics::Counter::kMacOngoingActiveHw, live_count_);
  if (trace_.wants(trace::Category::kOngoing)) {
    trace_.tracer->ongoing(now, trace_.self, trace::OngoingOp::kNote, d.src,
                           d.dst, end_time);
  }
}

void OngoingList::release(std::uint32_t idx, sim::Time now) const {
  Node& n = slots_[idx];
  if (trace_.wants(trace::Category::kOngoing)) {
    trace_.tracer->ongoing(now, trace_.self, trace::OngoingOp::kExpire,
                           n.tx.src, n.tx.dst, n.tx.end_time);
  }
  if (n.prev != kNil) {
    slots_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    slots_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
  n.prev = kNil;
  n.next = free_head_;
  free_head_ = idx;
  --live_count_;
}

bool OngoingList::node_busy(phy::NodeId node, sim::Time now) const {
  const WalkGuard guard(walking_);
  bool busy = false;
  std::uint32_t idx = head_;
  while (idx != kNil) {
    Node& n = slots_[idx];
    const std::uint32_t next = n.next;
    if (n.tx.end_time <= now) {
      release(idx, now);
    } else if (n.tx.src == node || n.tx.dst == node) {
      busy = true;
      break;
    }
    idx = next;
  }
  return busy;
}

std::vector<OngoingTx> OngoingList::active(sim::Time now) const {
  std::vector<OngoingTx> out;
  for (std::uint32_t idx = head_; idx != kNil; idx = slots_[idx].next) {
    if (slots_[idx].tx.end_time > now) out.push_back(slots_[idx].tx);
  }
  return out;
}

sim::Time OngoingList::end_of(phy::NodeId src, phy::NodeId dst,
                              sim::Time now) const {
  const WalkGuard guard(walking_);
  sim::Time end = 0;
  std::uint32_t idx = head_;
  while (idx != kNil) {
    Node& n = slots_[idx];
    const std::uint32_t next = n.next;
    if (n.tx.end_time <= now) {
      release(idx, now);
    } else if (n.tx.src == src && n.tx.dst == dst) {
      end = n.tx.end_time;
      break;
    }
    idx = next;
  }
  return end;
}

void OngoingList::expire(sim::Time now) {
  const WalkGuard guard(walking_);
  std::uint32_t idx = head_;
  while (idx != kNil) {
    const std::uint32_t next = slots_[idx].next;
    if (slots_[idx].tx.end_time <= now) release(idx, now);
    idx = next;
  }
}

}  // namespace cmap::core
