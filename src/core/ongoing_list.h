// The ongoing list (§3.2): every CMAP node's view of transmissions
// currently in the air, built from overheard virtual-packet headers and
// trailers. Entries carry the announced end time and expire on their own.
#pragma once

#include <vector>

#include "core/wire.h"
#include "phy/types.h"
#include "sim/time.h"

namespace cmap::core {

struct OngoingTx {
  phy::NodeId src = 0;
  phy::NodeId dst = 0;
  sim::Time end_time = 0;
  phy::WifiRate data_rate = phy::WifiRate::k6Mbps;
};

class OngoingList {
 public:
  /// Record an overheard/salvaged header or trailer announcing that the
  /// transmission d.src -> d.dst lasts until `end_time` (trailers pass the
  /// current time, which closes the entry).
  void note(const VpDescriptor& d, sim::Time end_time);

  /// True if `node` appears as source or destination of a live entry —
  /// the "v is neither sending nor receiving" check.
  bool node_busy(phy::NodeId node, sim::Time now) const;

  /// Live transmissions at `now`.
  std::vector<OngoingTx> active(sim::Time now) const;

  /// End time of the live entry (src -> dst), or 0 if none.
  sim::Time end_of(phy::NodeId src, phy::NodeId dst, sim::Time now) const;

  /// Drop expired entries (called opportunistically).
  void expire(sim::Time now);

  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<OngoingTx> entries_;
};

}  // namespace cmap::core
