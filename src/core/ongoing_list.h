// The ongoing list (§3.2): every CMAP node's view of transmissions
// currently in the air, built from overheard virtual-packet headers and
// trailers. Entries carry the announced end time and expire on their own.
//
// Consulted on every transmit attempt, so live entries form an intrusive
// doubly-linked ring threaded through a recycled slot pool: the decision
// path iterates via for_each_active() with zero allocations, and entries
// whose end time has passed are unlinked back onto the free list as reads
// walk over them (lazy expiry — node_busy/end_of never scan dead entries
// more than once). The original allocating snapshot is retained as
// active(), the oracle the iteration API is tested equivalent against.
#pragma once

#include <cstdint>
#include <vector>

#include "core/wire.h"
#include "metrics/metrics.h"
#include "phy/types.h"
#include "sim/assert.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace cmap::core {

struct OngoingTx {
  phy::NodeId src = 0;
  phy::NodeId dst = 0;
  sim::Time end_time = 0;
  phy::WifiRate data_rate = phy::WifiRate::k6Mbps;
};

class OngoingList {
 public:
  /// Stream entry transitions (note / in-place update / expiry) as
  /// kOngoing records. `self` is the owning node's id.
  void set_tracer(trace::Tracer* tracer, phy::NodeId self) {
    trace_.bind(tracer, self);
  }

  /// Track the active-entry high-water mark into `registry` (kMac domain).
  void set_metrics(metrics::Registry* registry) {
    metrics_.bind(registry, metrics::Domain::kMac);
  }

  /// Record an overheard/salvaged header or trailer announcing that the
  /// transmission d.src -> d.dst lasts until `end_time` (trailers pass the
  /// current time, which closes the entry). Re-noting a known pair updates
  /// it in place; new pairs reuse a free slot before growing the pool.
  /// `now` is only consumed by tracing (the transition's timestamp).
  void note(const VpDescriptor& d, sim::Time end_time, sim::Time now);

  /// Untraced convenience (tests): stamps the transition at end_time,
  /// which is only observable when a tracer is bound.
  void note(const VpDescriptor& d, sim::Time end_time) {
    note(d, end_time, end_time);
  }

  /// True if `node` appears as source or destination of a live entry —
  /// the "v is neither sending nor receiving" check. An entry is live
  /// strictly before its end time: at now == end_time it no longer counts
  /// (and is reclaimed by this read).
  bool node_busy(phy::NodeId node, sim::Time now) const;

  /// End time of the live entry (src -> dst), or 0 if none. Same exclusive
  /// end-time boundary and lazy reclamation as node_busy.
  sim::Time end_of(phy::NodeId src, phy::NodeId dst, sim::Time now) const;

  /// Visit every transmission live at `now` (allocation-free; entries in
  /// note order). Expired entries encountered on the walk are reclaimed.
  /// `fn` takes a const OngoingTx&. `fn` must NOT read or mutate this
  /// list (the walk caches its next link before reclaiming, so a nested
  /// read that reclaims the cached node would double-release it, and a
  /// nested note() could reallocate the slot pool under the walk) — both
  /// are asserted, here and in note()/node_busy()/end_of()/expire().
  template <typename Fn>
  void for_each_active(sim::Time now, Fn&& fn) const {
    const WalkGuard guard(walking_);
    std::uint32_t idx = head_;
    while (idx != kNil) {
      Node& n = slots_[idx];
      const std::uint32_t next = n.next;
      if (n.tx.end_time <= now) {
        release(idx, now);
      } else {
        const OngoingTx& tx = n.tx;
        fn(tx);
      }
      idx = next;
    }
  }

  /// Live transmissions at `now`, as an allocated snapshot. Retained as
  /// the reference oracle for for_each_active (and for introspection);
  /// never reclaims.
  std::vector<OngoingTx> active(sim::Time now) const;

  /// Eagerly drop every expired entry (optional given lazy reclamation).
  void expire(sim::Time now);

  /// Entries currently linked, including expired ones no read has touched
  /// yet (matching the pre-ring representation's accounting).
  std::size_t size() const { return live_count_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    OngoingTx tx;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;  // doubles as the free-list link
  };

  /// Reclaiming walks (for_each_active, node_busy, end_of, expire) cache
  /// link fields, so they must not nest; this flags the violation loudly
  /// instead of corrupting the ring.
  struct WalkGuard {
    explicit WalkGuard(bool& walking) : walking_(walking) {
      CMAP_ASSERT(!walking_, "reentrant OngoingList walk (see for_each_active)");
      walking_ = true;
    }
    ~WalkGuard() { walking_ = false; }
    bool& walking_;
  };

  void release(std::uint32_t idx, sim::Time now) const;

  trace::TraceHook trace_;
  metrics::MetricsHook metrics_;
  // Mutable: reads are logically const but reclaim expired entries they
  // walk over. One CmapMac owns the list on one simulation thread.
  mutable std::vector<Node> slots_;
  mutable std::uint32_t head_ = kNil;
  mutable std::uint32_t tail_ = kNil;
  mutable std::uint32_t free_head_ = kNil;
  mutable std::size_t live_count_ = 0;
  mutable bool walking_ = false;
};

}  // namespace cmap::core
