// CMAP wire formats (paper Fig. 3): virtual-packet headers and trailers
// carrying source, destination, sequence number and transmission time, the
// cumulative windowed ACK (§3.3), and the interferer-list broadcast (§3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "mac/packet.h"
#include "phy/frame.h"
#include "phy/types.h"
#include "phy/wifi_rate.h"
#include "sim/time.h"

namespace cmap::core {

/// Sentinel for "any rate" in rate-annotated conflict state (§3.5).
inline constexpr phy::WifiRate kAnyRate = static_cast<phy::WifiRate>(0xff);

/// Fields shared by a virtual packet's header and trailer (Fig. 3: 24 bytes
/// on the wire — src 6, dst 6, transmission time 4, seq 4, CRC 4).
struct VpDescriptor {
  phy::NodeId src = 0;
  phy::NodeId dst = 0;
  std::uint32_t vp_seq = 0;
  std::uint16_t npackets = 0;
  // "Transmission time" (Fig. 3), split in two so overhearers can place the
  // whole virtual packet in time from either the header or the trailer:
  // time remaining after this frame ends, and time elapsed from VP start
  // to this frame's end.
  sim::Time remaining_after = 0;
  sim::Time elapsed_through = 0;
  phy::WifiRate data_rate = phy::WifiRate::k6Mbps;
};

inline constexpr std::size_t kVpHeaderBytes = 24;

/// Standalone header/trailer packet (shim mode).
struct VpDelimFrame : phy::Payload {
  VpDescriptor d;
  bool is_trailer = false;
  std::size_t wire_bytes() const { return kVpHeaderBytes; }
};

/// One data packet inside a virtual packet.
struct CmapDataFrame : phy::Payload {
  phy::NodeId src = 0;
  phy::NodeId dst = 0;
  std::uint32_t seq = 0;     // link-layer sequence number (per sender)
  std::uint32_t vp_seq = 0;  // virtual packet this copy travels in
  std::uint16_t index = 0;   // position within the virtual packet
  bool retry = false;
  mac::Packet packet;
  std::size_t wire_bytes() const { return packet.bytes + 28; }
};

/// Integrated-PHY data frame: header and trailer ride inside the frame as
/// separately-decodable segments (kHeader / kBody / kTrailer).
struct IntegratedDataFrame : phy::Payload {
  VpDescriptor d;  // npackets == 1
  CmapDataFrame data;
  std::size_t body_bytes() const { return data.wire_bytes(); }
};

/// Cumulative windowed ACK (§3.3): per-VP bitmaps over the last Nwindow
/// virtual packets plus the receiver-observed loss rate over that window.
struct CmapAckFrame : phy::Payload {
  phy::NodeId src = 0;  // receiver sending the ACK
  phy::NodeId dst = 0;  // data sender
  struct VpAck {
    std::uint32_t vp_seq = 0;
    std::uint16_t npackets = 0;
    std::uint64_t bitmap = 0;  // bit i => packet index i received
  };
  std::vector<VpAck> vps;  // most recent last
  double loss_rate = 0.0;  // over the previous window of packets
  std::size_t wire_bytes() const { return 24 + 10 * vps.size(); }
};

/// One interferer-list entry: transmissions from `interferer` (to anyone)
/// conflict with `source`'s transmissions to the broadcasting receiver.
struct InterfererEntry {
  phy::NodeId source = 0;
  phy::NodeId interferer = 0;
  // §3.5 annotations: the rates at which the conflict was observed.
  phy::WifiRate source_rate = kAnyRate;
  phy::WifiRate interferer_rate = kAnyRate;
};

/// Periodic one-hop broadcast of a receiver's interferer list (§3.1).
struct InterfererListFrame : phy::Payload {
  phy::NodeId src = 0;
  std::vector<InterfererEntry> entries;
  std::size_t wire_bytes() const { return 16 + 10 * entries.size(); }
};

}  // namespace cmap::core
