// The CMAP link layer (the paper's core contribution), tying together:
//   * the transmission decision process over the ongoing list and the
//     defer table (§3.2),
//   * the windowed ACK/retransmission protocol with cumulative bitmap ACKs
//     and the window-full timeout (§3.3),
//   * the loss-rate-driven backoff (§3.4),
//   * receiver-side conflict inference feeding periodically broadcast
//     interferer lists (§3.1),
// over either PHY realization of §2.1: the prototype's shim (separate
// header/trailer packets around a burst of Nvpkt data packets — a "virtual
// packet", §4.1) or the integrated/PPR mode (per-frame header/trailer
// segments, salvageable from collisions).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/defer_table.h"
#include "core/interferer_tracker.h"
#include "core/loss_backoff.h"
#include "core/ongoing_list.h"
#include "core/send_window.h"
#include "core/wire.h"
#include "mac/dup_filter.h"
#include "mac/mac.h"
#include "metrics/metrics.h"
#include "phy/radio.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace cmap::core {

/// Outcome of one "may I send to v at rate r now?" consultation (§3.2).
struct DeferDecision {
  bool defer = false;
  /// Earliest end time among the transmissions that forced the deferral
  /// (the moment the decision is worth re-asking). Valid only when defer.
  sim::Time until = 0;
};

/// Why a deferral happened, for tracing: the first blocking ongoing
/// transmission (in note order) and which rule it tripped. Filled by
/// DeferDecider::decide_explain; meaningless when the decision was "send".
struct DeferDebug {
  trace::DeferReason reason = trace::DeferReason::kNone;
  phy::NodeId blocker_src = 0;
  phy::NodeId blocker_dst = 0;
};

/// The CMAP send decision as one pass: for every live ongoing transmission
/// p -> q, defer if the destination is a party to it or if this node's
/// slice of the conflict map holds a matching defer pattern. The fast path
/// (decide) iterates the ongoing ring allocation-free and answers each
/// conflict-map question with two indexed bucket probes — O(active
/// conflicts) per transmit attempt. decide_reference replays the original
/// snapshot-and-scan (OngoingList::active + DeferTable::
/// should_defer_reference), retained as the oracle the fast path is tested
/// byte-identical against; CmapConfig::decision_mode selects between them.
class DeferDecider {
 public:
  DeferDecider(const OngoingList& ongoing, const DeferTable& table,
               phy::NodeId self, bool annotate_rates)
      : ongoing_(ongoing),
        table_(table),
        self_(self),
        annotate_rates_(annotate_rates) {}

  DeferDecision decide(phy::NodeId dst, phy::WifiRate my_rate,
                       sim::Time now) const;
  DeferDecision decide_reference(phy::NodeId dst, phy::WifiRate my_rate,
                                 sim::Time now) const;
  /// decide(), but also reports which transmission blocked and why. Used
  /// off the hot path (only when kMacDefer tracing is enabled), so it
  /// re-walks the ongoing ring; lazy reclamation makes the second walk
  /// observationally identical to the first.
  DeferDecision decide_explain(phy::NodeId dst, phy::WifiRate my_rate,
                               sim::Time now, DeferDebug* debug) const;

 private:
  const OngoingList& ongoing_;
  const DeferTable& table_;
  phy::NodeId self_;
  bool annotate_rates_;
};

class CmapMac final : public mac::Mac, public phy::RadioListener {
 public:
  CmapMac(sim::Simulator& simulator, phy::Radio& radio, CmapConfig config,
          sim::Rng rng);

  // --- mac::Mac ---
  bool send(mac::Packet packet) override;
  void set_rx_handler(RxHandler handler) override { rx_handler_ = handler; }
  void set_drain_handler(DrainHandler handler) override {
    drain_handler_ = handler;
  }
  std::size_t queue_depth() const override { return fresh_queue_.size(); }
  const mac::MacStats& stats() const override { return stats_; }

  /// CMAP-specific counters, for experiments and tests.
  struct Counters {
    std::uint64_t vps_sent = 0;
    std::uint64_t vp_acks_sent = 0;
    std::uint64_t vp_acks_received = 0;
    std::uint64_t retx_timeouts = 0;
    std::uint64_t headers_heard = 0;    // any source
    std::uint64_t trailers_heard = 0;   // any source
    std::uint64_t vps_delim_received = 0;  // unique addressed VPs, any delim
    std::uint64_t vps_header_received = 0;  // unique addressed VPs, header ok
    std::uint64_t ilists_sent = 0;
    std::uint64_t ilists_received = 0;
    std::uint64_t defer_events = 0;
    std::uint64_t dropped_retx_limit = 0;
  };
  const Counters& counters() const { return counters_; }

  // Introspection (examples dump these as the conflict map converges).
  const DeferTable& defer_table() const { return defer_table_; }
  const OngoingList& ongoing_list() const { return ongoing_; }
  /// The decision engine over this MAC's live conflict-map state.
  DeferDecider decider() const {
    return DeferDecider(ongoing_, defer_table_, radio_.id(),
                        config_.annotate_rates);
  }
  const InterfererTracker& interferer_tracker() const { return tracker_; }
  const LossBackoff& loss_backoff() const { return backoff_; }
  const CmapConfig& config() const { return config_; }
  phy::NodeId id() const { return radio_.id(); }

  // --- phy::RadioListener ---
  void on_rx_end(const phy::Frame& frame, const phy::RxResult& result) override;
  void on_header_decoded(const phy::Frame& frame, bool ok) override;
  void on_salvage(const phy::Frame& frame, const phy::RxResult& result) override;
  void on_tx_end(const phy::Frame& frame) override;

 private:
  enum class State {
    kIdle,       // nothing in flight; try_send decides what's next
    kDeferWait,  // conflict map said defer; timer armed
    kSendingVp,  // header/data/trailer chain on the air
    kAckWait,    // trailer sent; waiting up to t_ackwait
    kBackoff,    // post-VP random wait in [0, CW]
    kRetxWait,   // window full; retransmission timeout armed
  };

  struct Outstanding {
    mac::Packet packet;
    int transmissions = 0;
  };

  /// Receiver-side reassembly of one incoming virtual packet.
  struct VpRxContext {
    phy::NodeId src = 0;
    std::uint32_t vp_seq = 0;
    std::uint16_t npackets = 0;
    sim::Time vp_start = 0;
    sim::Time vp_end = 0;
    phy::WifiRate data_rate = phy::WifiRate::k6Mbps;
    bool have_bounds = false;  // saw header or trailer (timing known)
    bool have_header = false;
    std::map<std::uint16_t, bool> received;  // index -> got it
    bool finalized = false;
    sim::EventId finalize_event;
  };

  /// A foreign transmission placed in time (for loss attribution, §3.1).
  struct ForeignTx {
    phy::NodeId src = 0;
    phy::NodeId dst = 0;
    sim::Time start = 0;
    sim::Time end = 0;
    phy::WifiRate rate = phy::WifiRate::k6Mbps;
  };

  struct PerSenderRx {
    std::deque<CmapAckFrame::VpAck> recent_vps;  // last nwindow_vps
    double window_loss_rate() const;
  };

  // Sender path.
  void try_send();
  bool check_defer(phy::NodeId dst, sim::Time* recheck_at);
  void start_vp(phy::NodeId dst);
  void start_broadcast_vp();  // §3.6: unacknowledged, outside the window
  void transmit_next_vp_frame();
  void on_vp_fully_sent();
  void on_ack_wait_expired();
  void enter_backoff();
  void arm_retx_timer();
  void on_retx_timeout();
  void handle_ack(const CmapAckFrame& ack);
  phy::Frame build_delim_frame(const VpDescriptor& d, bool trailer) const;
  phy::Frame build_data_frame(const CmapDataFrame& data) const;
  phy::Frame build_integrated_frame(const VpDescriptor& d,
                                    const CmapDataFrame& data) const;

  // Receiver path. `vp_start`/`vp_end` place the whole virtual packet in
  // time (reconstructed from the delimiter's transmission-time fields).
  void handle_delimiter(const VpDescriptor& d, bool is_trailer,
                        sim::Time vp_start, sim::Time vp_end);
  VpRxContext& context_for(phy::NodeId src, std::uint32_t vp_seq);
  void handle_data(const CmapDataFrame& data, double rssi_dbm);
  void finalize_vp(std::uint64_t key, bool send_ack);
  void attribute_losses(const VpRxContext& ctx);
  void send_vp_ack(phy::NodeId to);
  void handle_ilist(const InterfererListFrame& il);

  // Control plane.
  void schedule_ilist();
  void broadcast_ilist();

  static std::uint64_t ctx_key(phy::NodeId src, std::uint32_t vp_seq) {
    return (static_cast<std::uint64_t>(src) << 32) | vp_seq;
  }

  sim::Simulator& sim_;
  phy::Radio& radio_;
  CmapConfig config_;
  sim::Rng rng_;
  trace::TraceHook trace_;
  metrics::MetricsHook metrics_;

  RxHandler rx_handler_;
  DrainHandler drain_handler_;
  mac::MacStats stats_;
  Counters counters_;
  mac::DupFilter dup_filter_;

  // Sender state.
  State state_ = State::kIdle;
  std::deque<mac::Packet> fresh_queue_;
  std::deque<std::uint32_t> retx_queue_;
  std::unordered_map<std::uint32_t, Outstanding> unacked_;
  SendWindow window_;
  LossBackoff backoff_;
  std::uint32_t next_seq_ = 0;
  std::uint32_t next_vp_seq_ = 0;
  std::vector<phy::Frame> vp_frames_;  // current VP, in transmit order
  std::size_t vp_frame_index_ = 0;
  phy::NodeId vp_dst_ = 0;
  bool vp_is_broadcast_ = false;
  sim::EventId defer_event_;
  sim::EventId ack_wait_event_;
  sim::EventId backoff_event_;
  sim::EventId retx_event_;
  sim::EventId ack_tx_event_;
  std::size_t last_skip_offset_ = 0;  // per-destination queue rotation

  // Shared conflict-map state.
  OngoingList ongoing_;
  DeferTable defer_table_;
  InterfererTracker tracker_;
  std::deque<ForeignTx> foreign_;

  // Receiver state.
  std::unordered_map<std::uint64_t, VpRxContext> rx_contexts_;
  std::unordered_map<phy::NodeId, PerSenderRx> per_sender_;
};

}  // namespace cmap::core
