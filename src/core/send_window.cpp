#include "core/send_window.h"

#include <algorithm>

namespace cmap::core {
namespace {
// Retain composition of this many recent VPs; ACKs referencing older VPs
// are stale beyond the protocol's own window.
constexpr std::size_t kVpHistory = 64;
}  // namespace

void SendWindow::on_vp_sent(std::uint32_t vp_seq,
                            const std::vector<std::uint32_t>& seqs) {
  for (auto s : seqs) outstanding_.insert(s);
  vp_contents_[vp_seq] = seqs;
  vp_order_.push_back(vp_seq);
  while (vp_order_.size() > kVpHistory) {
    vp_contents_.erase(vp_order_.front());
    vp_order_.pop_front();
  }
}

std::vector<std::uint32_t> SendWindow::on_ack(const CmapAckFrame& ack) {
  std::vector<std::uint32_t> newly_acked;
  for (const auto& vp : ack.vps) {
    auto it = vp_contents_.find(vp.vp_seq);
    if (it == vp_contents_.end()) continue;
    const auto& seqs = it->second;
    for (std::size_t i = 0; i < seqs.size() && i < 64; ++i) {
      if ((vp.bitmap >> i) & 1ull) {
        if (outstanding_.erase(seqs[i]) > 0) {
          newly_acked.push_back(seqs[i]);
        }
      }
    }
  }
  return newly_acked;
}

std::vector<std::uint32_t> SendWindow::unacked_in_sequence() const {
  // cmap-lint: allow(unordered-iter) -- copied out of the set and sorted
  // on the next line; hash order never escapes this function.
  std::vector<std::uint32_t> out(outstanding_.begin(), outstanding_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cmap::core
