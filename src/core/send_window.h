// Sender-side state of the windowed ACK/retransmission protocol (§3.3).
// Tracks which sequence numbers are outstanding, which virtual packet each
// copy travelled in (so cumulative per-VP bitmap ACKs can be mapped back to
// sequence numbers), and when the window-full retransmission timeout
// applies.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/wire.h"
#include "sim/time.h"

namespace cmap::core {

class SendWindow {
 public:
  explicit SendWindow(std::size_t max_outstanding_packets)
      : max_outstanding_(max_outstanding_packets) {}

  /// Can a NEW (never-sent) packet enter the window?
  bool can_admit() const { return outstanding_.size() < max_outstanding_; }
  bool window_full() const { return !can_admit(); }
  std::size_t outstanding() const { return outstanding_.size(); }

  /// Record that `seqs` were just (re)transmitted in virtual packet
  /// `vp_seq`. New seqs enter the outstanding set.
  void on_vp_sent(std::uint32_t vp_seq, const std::vector<std::uint32_t>& seqs);

  /// Process one ACK; returns the seqs newly acknowledged by it.
  std::vector<std::uint32_t> on_ack(const CmapAckFrame& ack);

  /// Outstanding seqs in increasing order — the §3.3 retransmission set.
  std::vector<std::uint32_t> unacked_in_sequence() const;

  bool is_outstanding(std::uint32_t seq) const {
    return outstanding_.count(seq) != 0;
  }

  /// Give up on a packet (retransmission limit): frees its window slot.
  void drop(std::uint32_t seq) { outstanding_.erase(seq); }

 private:
  std::size_t max_outstanding_;
  std::unordered_set<std::uint32_t> outstanding_;
  // vp_seq -> seqs carried (in VP order), kept until acked or superseded.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> vp_contents_;
  std::deque<std::uint32_t> vp_order_;  // for bounded cleanup
};

}  // namespace cmap::core
