// The defer table — this node's slice of the network-wide conflict map
// (§3.1). Populated from neighbours' interferer lists via two local rules,
// consulted before every transmission via two defer patterns:
//
//   Update rule 1: for (me, q) in I_r  ->  add (r : q -> *)
//     "don't send to r while q is transmitting to anyone"
//   Update rule 2: for (q, me) in I_r  ->  add (* : q -> r)
//     "don't send to anyone while q is transmitting to r"
//
//   Defer pattern 1: (* : p -> q)   matches ongoing p -> q
//   Defer pattern 2: (v : p -> *)   matches destination v, ongoing sender p
//
// Entries age out (defer_entry_ttl) so the map tracks changing channels.
// With rate annotation enabled (§3.5) entries only match transmissions at
// the rates under which the conflict was observed.
//
// Lookup is the MAC's per-transmit-attempt hot path, so entries live in a
// slot pool indexed by two hash buckets that mirror the defer patterns:
// wildcard-destination entries (* : p -> q) under key (src, via) and
// wildcard-via entries (v : p -> *) under key (dst, src). should_defer is
// then two bucket probes instead of a scan of the whole table, and expired
// entries are reclaimed lazily as probes touch them. The original linear
// scan is retained as should_defer_reference — the oracle the fast path is
// tested equivalent against (same pattern as phy::evaluate_reference).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/wire.h"
#include "metrics/metrics.h"
#include "phy/types.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace cmap::core {

struct DeferEntry {
  phy::NodeId dst;     // v, or kBroadcastId for "*"
  phy::NodeId src;     // q/p: the transmitting node to defer to
  phy::NodeId via;     // its destination, or kBroadcastId for "*"
  phy::WifiRate my_rate = kAnyRate;       // §3.5 annotation
  phy::WifiRate their_rate = kAnyRate;    // §3.5 annotation
  sim::Time expires = 0;
};

class DeferTable {
 public:
  explicit DeferTable(sim::Time ttl, bool annotate_rates = false)
      : ttl_(ttl), annotate_rates_(annotate_rates) {}

  /// Stream every mutation (insert / TTL refresh / expiry reclamation) as
  /// kDeferTable records. `self` is the owning node's id — the table does
  /// not otherwise know it. Trace emission never changes table behaviour.
  void set_tracer(trace::Tracer* tracer, phy::NodeId self) {
    trace_.bind(tracer, self);
  }

  /// Count probes, inserts/refreshes, TTL reclamations and the occupancy
  /// high-water mark into `registry` (kMac domain). Like tracing, metrics
  /// never change table behaviour.
  void set_metrics(metrics::Registry* registry) {
    metrics_.bind(registry, metrics::Domain::kMac);
  }

  /// Apply both update rules for an interferer list received from
  /// `reporter`. `self` is this node's id. Re-reported conflicts refresh
  /// the existing entry's TTL; the table never grows on duplicates.
  void apply_interferer_list(phy::NodeId self, phy::NodeId reporter,
                             const std::vector<InterfererEntry>& entries,
                             sim::Time now);

  /// Should a transmission to `my_dst` at `my_rate` defer to the ongoing
  /// transmission p -> q at `their_rate`? Checks both defer patterns via
  /// the bucket indexes; expired entries touched by the probe are
  /// reclaimed in passing (lazy TTL expiry).
  bool should_defer(phy::NodeId my_dst, phy::NodeId p, phy::NodeId q,
                    sim::Time now, phy::WifiRate my_rate = kAnyRate,
                    phy::WifiRate their_rate = kAnyRate) const;

  /// The original O(size) scan over every live entry, kept as the oracle
  /// for the indexed fast path. Never mutates (no lazy reclamation).
  bool should_defer_reference(phy::NodeId my_dst, phy::NodeId p,
                              phy::NodeId q, sim::Time now,
                              phy::WifiRate my_rate = kAnyRate,
                              phy::WifiRate their_rate = kAnyRate) const;

  /// Eagerly drop every expired entry (lazy reclamation makes this
  /// optional; it is kept for callers that want memory bounded at a known
  /// point, e.g. once per interferer-list application).
  void expire(sim::Time now);

  /// Live entries (expired entries linger until a probe or expire() call
  /// reclaims them, exactly like the pre-index representation).
  std::size_t size() const { return live_count_; }

  /// Snapshot of the live entries, for introspection and tests. Order is
  /// unspecified (slot order, which recycling perturbs).
  std::vector<DeferEntry> entries() const;

  /// TTL-live entries at `now` (expires > now), sorted by (dst, src, via,
  /// my_rate, their_rate) — the canonical order trace::DeferTableReplay
  /// reports in, so a live table and a trace reconstruction compare
  /// directly. Pure read: unlike the probes, never reclaims.
  std::vector<DeferEntry> snapshot(sim::Time now) const;

 private:
  using Bucket = std::vector<std::uint32_t>;  // slot indices
  using Index = std::unordered_map<std::uint64_t, Bucket>;

  struct Slot {
    DeferEntry e;
    bool live = false;
  };

  /// NodeIds are 32-bit, so a pair packs losslessly into the map key.
  static std::uint64_t pair_key(phy::NodeId a, phy::NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  static bool rate_matches(phy::WifiRate entry_rate, phy::WifiRate rate);

  void upsert(DeferEntry e, sim::Time now);
  void link(std::uint32_t idx) const;
  void unlink(std::uint32_t idx, sim::Time now) const;
  Bucket* primary_bucket(const DeferEntry& e);
  bool probe(Index& index, std::uint64_t key, sim::Time now,
             phy::WifiRate my_rate, phy::WifiRate their_rate) const;

  sim::Time ttl_;
  bool annotate_rates_;
  trace::TraceHook trace_;
  metrics::MetricsHook metrics_;
  // Mutable: should_defer is logically const but reclaims expired entries
  // it touches. The table is owned by one CmapMac on one simulation
  // thread, so this is not a concurrency hazard.
  mutable std::vector<Slot> slots_;
  mutable std::vector<std::uint32_t> free_;
  mutable Index by_src_via_;  // entries with dst == *  (defer pattern 1)
  mutable Index by_dst_src_;  // entries with via == *  (defer pattern 2)
  mutable Bucket unmatched_;  // neither wildcard: can never match a pattern
  mutable std::size_t live_count_ = 0;
};

}  // namespace cmap::core
