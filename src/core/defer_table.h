// The defer table — this node's slice of the network-wide conflict map
// (§3.1). Populated from neighbours' interferer lists via two local rules,
// consulted before every transmission via two defer patterns:
//
//   Update rule 1: for (me, q) in I_r  ->  add (r : q -> *)
//     "don't send to r while q is transmitting to anyone"
//   Update rule 2: for (q, me) in I_r  ->  add (* : q -> r)
//     "don't send to anyone while q is transmitting to r"
//
//   Defer pattern 1: (* : p -> q)   matches ongoing p -> q
//   Defer pattern 2: (v : p -> *)   matches destination v, ongoing sender p
//
// Entries age out (defer_entry_ttl) so the map tracks changing channels.
// With rate annotation enabled (§3.5) entries only match transmissions at
// the rates under which the conflict was observed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/wire.h"
#include "phy/types.h"
#include "sim/time.h"

namespace cmap::core {

struct DeferEntry {
  phy::NodeId dst;     // v, or kBroadcastId for "*"
  phy::NodeId src;     // q/p: the transmitting node to defer to
  phy::NodeId via;     // its destination, or kBroadcastId for "*"
  phy::WifiRate my_rate = kAnyRate;       // §3.5 annotation
  phy::WifiRate their_rate = kAnyRate;    // §3.5 annotation
  sim::Time expires = 0;
};

class DeferTable {
 public:
  explicit DeferTable(sim::Time ttl, bool annotate_rates = false)
      : ttl_(ttl), annotate_rates_(annotate_rates) {}

  /// Apply both update rules for an interferer list received from
  /// `reporter`. `self` is this node's id.
  void apply_interferer_list(phy::NodeId self, phy::NodeId reporter,
                             const std::vector<InterfererEntry>& entries,
                             sim::Time now);

  /// Should a transmission to `my_dst` at `my_rate` defer to the ongoing
  /// transmission p -> q at `their_rate`? Checks both defer patterns.
  bool should_defer(phy::NodeId my_dst, phy::NodeId p, phy::NodeId q,
                    sim::Time now, phy::WifiRate my_rate = kAnyRate,
                    phy::WifiRate their_rate = kAnyRate) const;

  void expire(sim::Time now);
  std::size_t size() const { return entries_.size(); }
  const std::vector<DeferEntry>& entries() const { return entries_; }

 private:
  void upsert(DeferEntry e);
  static bool rate_matches(phy::WifiRate entry_rate, phy::WifiRate rate);

  sim::Time ttl_;
  bool annotate_rates_;
  std::vector<DeferEntry> entries_;
};

}  // namespace cmap::core
