#include "core/cmap_mac.h"

#include <algorithm>
#include <bit>
#include <iterator>

#include "phy/medium.h"
#include "sim/assert.h"

namespace cmap::core {
namespace {

constexpr sim::Time kSifs = 16 * sim::kNsPerUs;
// How far back foreign-transmission records are kept for loss attribution.
constexpr sim::Time kForeignHorizon = 2 * sim::kNsPerSec;
constexpr std::size_t kMaxForeignRecords = 512;
constexpr std::size_t kMaxRxContexts = 128;
// Retry cadence when the radio happens to be busy with a control frame.
constexpr sim::Time kBusyRetry = 250 * sim::kNsPerUs;

}  // namespace

DeferDecision DeferDecider::decide(phy::NodeId dst, phy::WifiRate my_rate,
                                   sim::Time now) const {
  DeferDecision d;
  sim::Time until = sim::kTimeForever;
  ongoing_.for_each_active(now, [&](const OngoingTx& tx) {
    if (tx.src == self_) return;  // never defer to ourselves
    const bool dst_busy = tx.src == dst || tx.dst == dst;
    const phy::WifiRate their_rate =
        annotate_rates_ ? tx.data_rate : kAnyRate;
    if (dst_busy ||
        table_.should_defer(dst, tx.src, tx.dst, now, my_rate, their_rate)) {
      d.defer = true;
      until = std::min(until, tx.end_time);
    }
  });
  if (d.defer) d.until = until;
  return d;
}

DeferDecision DeferDecider::decide_explain(phy::NodeId dst,
                                           phy::WifiRate my_rate,
                                           sim::Time now,
                                           DeferDebug* debug) const {
  DeferDecision d;
  sim::Time until = sim::kTimeForever;
  *debug = DeferDebug{};
  ongoing_.for_each_active(now, [&](const OngoingTx& tx) {
    if (tx.src == self_) return;
    const bool dst_busy = tx.src == dst || tx.dst == dst;
    const phy::WifiRate their_rate =
        annotate_rates_ ? tx.data_rate : kAnyRate;
    const bool map_hit =
        !dst_busy &&
        table_.should_defer(dst, tx.src, tx.dst, now, my_rate, their_rate);
    if (dst_busy || map_hit) {
      if (!d.defer) {
        debug->reason = dst_busy ? trace::DeferReason::kDstBusy
                                 : trace::DeferReason::kConflictMap;
        debug->blocker_src = tx.src;
        debug->blocker_dst = tx.dst;
      }
      d.defer = true;
      until = std::min(until, tx.end_time);
    }
  });
  if (d.defer) d.until = until;
  return d;
}

DeferDecision DeferDecider::decide_reference(phy::NodeId dst,
                                             phy::WifiRate my_rate,
                                             sim::Time now) const {
  DeferDecision d;
  sim::Time until = sim::kTimeForever;
  for (const OngoingTx& tx : ongoing_.active(now)) {
    if (tx.src == self_) continue;  // never defer to ourselves
    const phy::WifiRate their_rate =
        annotate_rates_ ? tx.data_rate : kAnyRate;
    if (tx.src == dst || tx.dst == dst ||
        table_.should_defer_reference(dst, tx.src, tx.dst, now, my_rate,
                                      their_rate)) {
      d.defer = true;
      until = std::min(until, tx.end_time);
    }
  }
  if (d.defer) d.until = until;
  return d;
}

double CmapMac::PerSenderRx::window_loss_rate() const {
  double expected = 0, got = 0;
  for (const auto& vp : recent_vps) {
    expected += vp.npackets;
    const std::uint64_t mask =
        vp.npackets >= 64 ? ~0ull : ((1ull << vp.npackets) - 1);
    got += std::popcount(vp.bitmap & mask);
  }
  if (expected <= 0) return 0.0;
  return 1.0 - got / expected;
}

CmapMac::CmapMac(sim::Simulator& simulator, phy::Radio& radio,
                 CmapConfig config, sim::Rng rng)
    : sim_(simulator),
      radio_(radio),
      config_(config),
      rng_(rng),
      window_(config.window_packets()),
      backoff_(config.cw_start, config.cw_max, config.l_backoff),
      ongoing_(),
      defer_table_(config.defer_entry_ttl, config.annotate_rates),
      tracker_(config.l_interf, config.min_interf_samples,
               config.interferer_halflife) {
  CMAP_ASSERT(config_.mode != PhyMode::kIntegrated || config_.nvpkt == 1,
              "integrated mode carries one packet per frame");
  trace_.bind(radio_.medium().tracer_for(radio_.id()), radio_.id());
  defer_table_.set_tracer(trace_.tracer, radio_.id());
  ongoing_.set_tracer(trace_.tracer, radio_.id());
  metrics_.bind(radio_.medium().metrics(), metrics::Domain::kMac);
  defer_table_.set_metrics(radio_.medium().metrics());
  ongoing_.set_metrics(radio_.medium().metrics());
  radio_.set_listener(this);
  schedule_ilist();
}

bool CmapMac::send(mac::Packet packet) {
  if (fresh_queue_.size() >= config_.queue_limit) {
    ++stats_.dropped_queue_full;
    return false;
  }
  ++stats_.enqueued;
  fresh_queue_.push_back(packet);
  if (state_ == State::kIdle) try_send();
  return true;
}

// ---------------------------------------------------------------- sender --

void CmapMac::try_send() {
  if (state_ != State::kIdle) return;
  if (radio_.transmitting()) {
    // A control frame (ACK / interferer list) is on the air; come back.
    sim_.in(kBusyRetry, [this] {
      if (state_ == State::kIdle) try_send();
    });
    return;
  }
  const sim::Time now = sim_.now();
  // The fast decision path reclaims expired ongoing entries lazily as it
  // walks; the reference path's snapshot never reclaims, so give it the
  // pre-index eager sweep to keep its memory behavior faithful too.
  if (config_.decision_mode == DecisionMode::kReference) {
    ongoing_.expire(now);
  }

  // Pick the destination we would serve next.
  phy::NodeId dst = 0;
  bool have_work = false;
  while (!retx_queue_.empty()) {
    auto it = unacked_.find(retx_queue_.front());
    if (it == unacked_.end()) {
      retx_queue_.pop_front();  // acked in the meantime
      continue;
    }
    dst = it->second.packet.dst;
    have_work = true;
    break;
  }
  if (!have_work && !fresh_queue_.empty()) {
    dst = fresh_queue_.front().dst;
    // Broadcasts are unacknowledged and live outside the send window.
    if (dst != phy::kBroadcastId && !window_.can_admit()) {
      arm_retx_timer();
      return;
    }
    have_work = true;
  }
  if (!have_work) return;

  sim::Time recheck = 0;
  if (check_defer(dst, &recheck)) {
    // §3.2 optimization: while dst is blocked, another destination's
    // packet may be sendable.
    if (config_.per_dest_queues) {
      for (std::size_t off = 0; off < fresh_queue_.size(); ++off) {
        const std::size_t i =
            (off + last_skip_offset_) % fresh_queue_.size();
        const phy::NodeId alt = fresh_queue_[i].dst;
        if (alt == dst) continue;
        sim::Time unused = 0;
        if (!check_defer(alt, &unused) && window_.can_admit()) {
          last_skip_offset_ = i + 1;  // rotate: no destination starves
          start_vp(alt);
          return;
        }
      }
    }
    ++counters_.defer_events;
    ++stats_.deferrals;
    state_ = State::kDeferWait;
    const sim::Time when = std::max(recheck, now + 1);
    defer_event_ = sim_.at(when, [this] {
      state_ = State::kIdle;
      try_send();
    });
    return;
  }
  start_vp(dst);
}

bool CmapMac::check_defer(phy::NodeId dst, sim::Time* recheck_at) {
  const sim::Time now = sim_.now();
  const phy::WifiRate my_rate =
      config_.annotate_rates ? config_.data_rate : kAnyRate;
  const DeferDecider d = decider();
  const DeferDecision decision = config_.decision_mode == DecisionMode::kFast
                                     ? d.decide(dst, my_rate, now)
                                     : d.decide_reference(dst, my_rate, now);
  if (decision.defer) *recheck_at = decision.until + config_.t_deferwait;
  if (metrics_.on()) {
    metrics_.inc(metrics::Counter::kMacSendDecisions);
    if (decision.defer) {
      // Off the hot path (metrics enabled, and only deferrals): re-derive
      // which rule blocked, same re-walk the kMacDefer trace path does.
      DeferDebug dbg;
      d.decide_explain(dst, my_rate, now, &dbg);
      metrics_.inc(dbg.reason == trace::DeferReason::kDstBusy
                       ? metrics::Counter::kMacDeferDstBusy
                       : metrics::Counter::kMacDeferConflictMap);
    }
  }
  if (trace_.wants(trace::Category::kMacDefer)) {
    // Off the hot path: re-derive the blocking transmission and rule only
    // when this category is enabled (and only deferrals need the re-walk).
    DeferDebug dbg;
    if (decision.defer) d.decide_explain(dst, my_rate, now, &dbg);
    trace_.tracer->mac_defer(now, trace_.self, dst, decision.defer,
                             dbg.reason, dbg.blocker_src, dbg.blocker_dst,
                             decision.defer ? decision.until : 0);
  }
  return decision.defer;
}

void CmapMac::start_vp(phy::NodeId dst) {
  if (dst == phy::kBroadcastId) {
    start_broadcast_vp();
    return;
  }
  const std::size_t nvpkt = static_cast<std::size_t>(config_.nvpkt);
  std::vector<std::uint32_t> seqs;
  std::vector<const mac::Packet*> packets;
  std::vector<bool> is_retx;

  // Retransmissions first (§3.3: unacked packets resent in sequence).
  while (seqs.size() < nvpkt && !retx_queue_.empty()) {
    const std::uint32_t seq = retx_queue_.front();
    auto it = unacked_.find(seq);
    if (it == unacked_.end()) {
      retx_queue_.pop_front();
      continue;
    }
    if (it->second.packet.dst != dst) break;
    if (it->second.transmissions >= config_.retx_limit) {
      retx_queue_.pop_front();
      window_.drop(seq);
      unacked_.erase(it);
      ++counters_.dropped_retx_limit;
      ++stats_.dropped_retry_limit;
      continue;
    }
    seqs.push_back(seq);
    packets.push_back(&it->second.packet);
    is_retx.push_back(true);
    retx_queue_.pop_front();
  }
  // Then fresh packets, as window space admits. Without per-destination
  // queues, service is strict FIFO (a mismatched head blocks — that is the
  // head-of-line behaviour §3.2's optimization removes); with them, scan
  // past other destinations' packets.
  bool moved_fresh = false;
  for (auto it = fresh_queue_.begin();
       it != fresh_queue_.end() && seqs.size() < nvpkt &&
       window_.outstanding() + seqs.size() < config_.window_packets();) {
    if (it->dst != dst) {
      if (!config_.per_dest_queues) break;
      ++it;
      continue;
    }
    const std::uint32_t seq = ++next_seq_;
    Outstanding o;
    o.packet = *it;
    it = fresh_queue_.erase(it);
    auto [slot, inserted] = unacked_.emplace(seq, std::move(o));
    CMAP_ASSERT(inserted, "sequence number reused");
    seqs.push_back(seq);
    packets.push_back(&slot->second.packet);
    is_retx.push_back(false);
    moved_fresh = true;
  }
  if (seqs.empty()) {
    // Nothing sendable to this destination after all; re-evaluate after a
    // real interval (never busy-loop the event queue).
    if (!retx_queue_.empty() || !fresh_queue_.empty()) {
      sim_.in(sim::milliseconds(1), [this] {
        if (state_ == State::kIdle) try_send();
      });
    }
    return;
  }

  const std::uint32_t vp_seq = ++next_vp_seq_;
  VpDescriptor d;
  d.src = radio_.id();
  d.dst = dst;
  d.vp_seq = vp_seq;
  d.npackets = static_cast<std::uint16_t>(seqs.size());
  d.data_rate = config_.data_rate;

  vp_frames_.clear();
  if (config_.mode == PhyMode::kShim) {
    // Timing: header airs first; data and trailer follow with no gap.
    const sim::Time hdr_air =
        phy::frame_airtime(config_.control_rate, kVpHeaderBytes);
    sim::Time data_air = 0;
    std::vector<CmapDataFrame> data_frames(seqs.size());
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      auto& df = data_frames[i];
      df.src = d.src;
      df.dst = dst;
      df.seq = seqs[i];
      df.vp_seq = vp_seq;
      df.index = static_cast<std::uint16_t>(i);
      df.retry = is_retx[i];
      df.packet = *packets[i];
      data_air += phy::frame_airtime(config_.data_rate, df.wire_bytes());
    }
    const sim::Time trl_air =
        phy::frame_airtime(config_.control_rate, kVpHeaderBytes);

    VpDescriptor hd = d;
    hd.elapsed_through = hdr_air;
    hd.remaining_after = data_air + trl_air;
    vp_frames_.push_back(build_delim_frame(hd, /*trailer=*/false));
    for (auto& df : data_frames) {
      vp_frames_.push_back(build_data_frame(df));
    }
    VpDescriptor td = d;
    td.elapsed_through = hdr_air + data_air + trl_air;
    td.remaining_after = 0;
    vp_frames_.push_back(build_delim_frame(td, /*trailer=*/true));
  } else {
    CmapDataFrame df;
    df.src = d.src;
    df.dst = dst;
    df.seq = seqs[0];
    df.vp_seq = vp_seq;
    df.index = 0;
    df.retry = is_retx[0];
    df.packet = *packets[0];
    vp_frames_.push_back(build_integrated_frame(d, df));
  }

  window_.on_vp_sent(vp_seq, seqs);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    auto it = unacked_.find(seqs[i]);
    ++it->second.transmissions;
    ++stats_.data_frames_sent;
    if (is_retx[i]) ++stats_.retransmissions;
  }
  ++counters_.vps_sent;
  vp_dst_ = dst;
  vp_is_broadcast_ = false;
  vp_frame_index_ = 0;
  state_ = State::kSendingVp;
  if (moved_fresh && drain_handler_) drain_handler_();
  transmit_next_vp_frame();
}

void CmapMac::start_broadcast_vp() {
  // §3.6: a broadcast is checked against the conflict map like a unicast
  // (check_defer already ran) but is fire-and-forget: no window slot, no
  // ACK, no retransmission.
  const std::size_t nvpkt = static_cast<std::size_t>(config_.nvpkt);
  std::vector<mac::Packet> pkts;
  while (pkts.size() < nvpkt && !fresh_queue_.empty() &&
         fresh_queue_.front().dst == phy::kBroadcastId) {
    pkts.push_back(fresh_queue_.front());
    fresh_queue_.pop_front();
  }
  if (pkts.empty()) return;

  const std::uint32_t vp_seq = ++next_vp_seq_;
  VpDescriptor d;
  d.src = radio_.id();
  d.dst = phy::kBroadcastId;
  d.vp_seq = vp_seq;
  d.npackets = static_cast<std::uint16_t>(pkts.size());
  d.data_rate = config_.data_rate;

  vp_frames_.clear();
  std::vector<CmapDataFrame> data_frames(pkts.size());
  sim::Time data_air = 0;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    auto& df = data_frames[i];
    df.src = d.src;
    df.dst = phy::kBroadcastId;
    df.seq = ++next_seq_;
    df.vp_seq = vp_seq;
    df.index = static_cast<std::uint16_t>(i);
    df.packet = pkts[i];
    data_air += phy::frame_airtime(config_.data_rate, df.wire_bytes());
  }
  if (config_.mode == PhyMode::kShim) {
    const sim::Time hdr_air =
        phy::frame_airtime(config_.control_rate, kVpHeaderBytes);
    const sim::Time trl_air = hdr_air;
    VpDescriptor hd = d;
    hd.elapsed_through = hdr_air;
    hd.remaining_after = data_air + trl_air;
    vp_frames_.push_back(build_delim_frame(hd, false));
    for (auto& df : data_frames) vp_frames_.push_back(build_data_frame(df));
    VpDescriptor td = d;
    td.elapsed_through = hdr_air + data_air + trl_air;
    td.remaining_after = 0;
    vp_frames_.push_back(build_delim_frame(td, true));
  } else {
    vp_frames_.push_back(build_integrated_frame(d, data_frames[0]));
  }
  stats_.data_frames_sent += pkts.size();
  ++counters_.vps_sent;
  vp_dst_ = phy::kBroadcastId;
  vp_is_broadcast_ = true;
  vp_frame_index_ = 0;
  state_ = State::kSendingVp;
  if (drain_handler_) drain_handler_();
  transmit_next_vp_frame();
}

phy::Frame CmapMac::build_delim_frame(const VpDescriptor& d,
                                      bool trailer) const {
  auto delim = std::make_shared<VpDelimFrame>();
  delim->d = d;
  delim->is_trailer = trailer;
  phy::Frame f;
  f.rate = config_.control_rate;
  f.segments = {{phy::SegmentKind::kWhole, delim->wire_bytes()}};
  f.payload = delim;
  return f;
}

phy::Frame CmapMac::build_data_frame(const CmapDataFrame& data) const {
  auto payload = std::make_shared<CmapDataFrame>(data);
  phy::Frame f;
  f.rate = config_.data_rate;
  f.segments = {{phy::SegmentKind::kWhole, payload->wire_bytes()}};
  f.payload = payload;
  return f;
}

phy::Frame CmapMac::build_integrated_frame(const VpDescriptor& d,
                                           const CmapDataFrame& data) const {
  auto payload = std::make_shared<IntegratedDataFrame>();
  payload->d = d;
  payload->data = data;
  phy::Frame f;
  f.rate = config_.data_rate;
  f.segments = {{phy::SegmentKind::kHeader, kVpHeaderBytes},
                {phy::SegmentKind::kBody, payload->body_bytes()},
                {phy::SegmentKind::kTrailer, kVpHeaderBytes}};
  f.payload = payload;
  return f;
}

void CmapMac::transmit_next_vp_frame() {
  CMAP_ASSERT(state_ == State::kSendingVp, "vp tx outside kSendingVp");
  CMAP_ASSERT(vp_frame_index_ < vp_frames_.size(), "vp frame overrun");
  radio_.transmit(vp_frames_[vp_frame_index_]);
}

void CmapMac::on_tx_end(const phy::Frame& frame) {
  (void)frame;
  if (state_ != State::kSendingVp) return;  // control frame; nothing to do
  ++vp_frame_index_;
  if (vp_frame_index_ < vp_frames_.size()) {
    transmit_next_vp_frame();
  } else {
    on_vp_fully_sent();
  }
}

void CmapMac::on_vp_fully_sent() {
  vp_frames_.clear();
  if (vp_is_broadcast_) {
    vp_is_broadcast_ = false;
    enter_backoff();
    return;
  }
  state_ = State::kAckWait;
  ack_wait_event_ =
      sim_.in(config_.t_ackwait, [this] { on_ack_wait_expired(); });
}

void CmapMac::on_ack_wait_expired() {
  if (state_ != State::kAckWait) return;
  ++stats_.ack_timeouts;
  // §3.4: CW is NOT updated on a missing ACK — only on reported loss.
  enter_backoff();
}

void CmapMac::enter_backoff() {
  state_ = State::kBackoff;
  const sim::Time wait = backoff_.draw(rng_);
  if (wait <= 0) {
    state_ = State::kIdle;
    try_send();
    return;
  }
  backoff_event_ = sim_.in(wait, [this] {
    state_ = State::kIdle;
    try_send();
  });
}

void CmapMac::arm_retx_timer() {
  if (state_ == State::kRetxWait && retx_event_.pending()) return;
  state_ = State::kRetxWait;
  const sim::Time tau =
      rng_.uniform_int(config_.tau_min(), config_.tau_max());
  retx_event_ = sim_.in(tau, [this] { on_retx_timeout(); });
}

void CmapMac::on_retx_timeout() {
  if (state_ != State::kRetxWait) return;
  ++counters_.retx_timeouts;
  const auto unacked = window_.unacked_in_sequence();
  retx_queue_.assign(unacked.begin(), unacked.end());
  state_ = State::kIdle;
  try_send();
}

void CmapMac::handle_ack(const CmapAckFrame& ack) {
  ++counters_.vp_acks_received;
  ++stats_.acks_received;
  for (std::uint32_t seq : window_.on_ack(ack)) {
    unacked_.erase(seq);
  }
  backoff_.on_ack_loss_rate(ack.loss_rate);
  if (state_ == State::kAckWait) {
    ack_wait_event_.cancel();
    enter_backoff();
  } else if (state_ == State::kRetxWait &&
             (window_.can_admit() || !retx_queue_.empty())) {
    retx_event_.cancel();
    state_ = State::kIdle;
    try_send();
  }
}

// -------------------------------------------------------------- receiver --

CmapMac::VpRxContext& CmapMac::context_for(phy::NodeId src,
                                           std::uint32_t vp_seq) {
  const std::uint64_t key = ctx_key(src, vp_seq);
  auto it = rx_contexts_.find(key);
  if (it == rx_contexts_.end()) {
    if (rx_contexts_.size() >= kMaxRxContexts) {
      // Evict the smallest-key finalized context (or, failing that, the
      // smallest-key context outright).  Taking the min over the whole
      // table instead of *.begin() keeps the victim independent of hash
      // order, so eviction behaviour is identical across standard
      // libraries, not just across runs.
      // cmap-lint: allow(unordered-iter) -- min-key scan; the result is
      // invariant under traversal order.
      auto victim = rx_contexts_.begin();
      bool victim_finalized = victim->second.finalized;
      for (auto v = std::next(victim); v != rx_contexts_.end(); ++v) {
        const bool fin = v->second.finalized;
        if (fin != victim_finalized ? fin : v->first < victim->first) {
          victim = v;
          victim_finalized = fin;
        }
      }
      victim->second.finalize_event.cancel();
      rx_contexts_.erase(victim);
    }
    it = rx_contexts_.emplace(key, VpRxContext{}).first;
    it->second.src = src;
    it->second.vp_seq = vp_seq;
  }
  return it->second;
}

void CmapMac::handle_delimiter(const VpDescriptor& d, bool is_trailer,
                               sim::Time vp_start, sim::Time vp_end) {
  if (is_trailer) {
    ++counters_.trailers_heard;
  } else {
    ++counters_.headers_heard;
  }
  ongoing_.note(d, is_trailer ? sim_.now() : vp_end, sim_.now());

  // Record the transmission for loss attribution regardless of audience.
  if (d.src != radio_.id()) {
    foreign_.push_back(ForeignTx{d.src, d.dst, vp_start, vp_end, d.data_rate});
    while (!foreign_.empty() &&
           (foreign_.front().end < sim_.now() - kForeignHorizon ||
            foreign_.size() > kMaxForeignRecords)) {
      foreign_.pop_front();
    }
  }

  if (d.dst != radio_.id()) return;
  VpRxContext& ctx = context_for(d.src, d.vp_seq);
  if (ctx.finalized) return;
  if (!ctx.have_bounds) ++counters_.vps_delim_received;
  if (!is_trailer && !ctx.have_header) {
    ctx.have_header = true;
    ++counters_.vps_header_received;
  }
  ctx.npackets = d.npackets;
  ctx.vp_start = vp_start;
  ctx.vp_end = vp_end;
  ctx.data_rate = d.data_rate;
  ctx.have_bounds = true;
  const std::uint64_t key = ctx_key(d.src, d.vp_seq);
  if (is_trailer) {
    ctx.finalize_event.cancel();
    finalize_vp(key, /*send_ack=*/true);
  } else if (!ctx.finalize_event.pending()) {
    // If the trailer never arrives, still close the book (no ACK: §3.3 —
    // the receiver ACKs on trailer reception).
    ctx.finalize_event =
        sim_.at(vp_end + config_.vp_finalize_grace,
                [this, key] { finalize_vp(key, /*send_ack=*/false); });
  }
}

void CmapMac::handle_data(const CmapDataFrame& data, double rssi_dbm) {
  if (data.dst != radio_.id() && data.dst != phy::kBroadcastId) return;
  const bool dup = dup_filter_.seen_before(data.src, data.seq);
  if (dup) {
    ++stats_.duplicates;
  } else {
    ++stats_.delivered;
  }
  if (rx_handler_) rx_handler_(data.packet, RxInfo{rssi_dbm, dup});
  if (data.dst != radio_.id()) return;  // broadcast: no ARQ bookkeeping
  VpRxContext& ctx = context_for(data.src, data.vp_seq);
  if (!ctx.finalized) ctx.received[data.index] = true;
}

void CmapMac::finalize_vp(std::uint64_t key, bool send_ack) {
  auto it = rx_contexts_.find(key);
  if (it == rx_contexts_.end() || it->second.finalized) return;
  VpRxContext& ctx = it->second;
  ctx.finalized = true;
  ctx.finalize_event.cancel();
  if (!ctx.have_bounds) return;  // nothing to account against

  CmapAckFrame::VpAck vp;
  vp.vp_seq = ctx.vp_seq;
  vp.npackets = ctx.npackets;
  for (const auto& [index, got] : ctx.received) {
    if (got && index < 64) vp.bitmap |= 1ull << index;
  }
  PerSenderRx& ps = per_sender_[ctx.src];
  ps.recent_vps.push_back(vp);
  while (ps.recent_vps.size() >
         static_cast<std::size_t>(config_.nwindow_vps)) {
    ps.recent_vps.pop_front();
  }

  attribute_losses(ctx);
  const phy::NodeId sender = ctx.src;
  rx_contexts_.erase(it);

  if (send_ack) {
    ack_tx_event_ = sim_.in(kSifs, [this, sender] { send_vp_ack(sender); });
  }
}

void CmapMac::attribute_losses(const VpRxContext& ctx) {
  if (ctx.npackets == 0) return;
  // Reconstruct each data packet's airtime window: evenly spaced across the
  // VP's data region (uniform packet sizes — our workloads' case).
  sim::Time region_begin = ctx.vp_start;
  sim::Time region_end = ctx.vp_end;
  if (config_.mode == PhyMode::kShim) {
    region_begin += phy::frame_airtime(config_.control_rate, kVpHeaderBytes);
    region_end -= phy::frame_airtime(config_.control_rate, kVpHeaderBytes);
  }
  if (region_end <= region_begin) return;
  const double slot = static_cast<double>(region_end - region_begin) /
                      static_cast<double>(ctx.npackets);

  std::vector<phy::NodeId> concurrent;
  std::vector<phy::WifiRate> rates;
  for (std::uint16_t i = 0; i < ctx.npackets; ++i) {
    const auto w0 =
        region_begin + static_cast<sim::Time>(slot * static_cast<double>(i));
    const auto w1 =
        region_begin +
        static_cast<sim::Time>(slot * static_cast<double>(i + 1));
    concurrent.clear();
    rates.clear();
    for (const auto& f : foreign_) {
      if (f.src == ctx.src || f.src == radio_.id()) continue;
      if (f.start < w1 && f.end > w0 &&
          std::find(concurrent.begin(), concurrent.end(), f.src) ==
              concurrent.end()) {
        concurrent.push_back(f.src);
        rates.push_back(f.rate);
      }
    }
    auto got = ctx.received.find(i);
    const bool received = got != ctx.received.end() && got->second;
    tracker_.observe(ctx.src, ctx.data_rate, concurrent, rates, received,
                     sim_.now());
  }
}

void CmapMac::send_vp_ack(phy::NodeId to) {
  if (radio_.transmitting()) return;  // half-duplex: ack lost to our own tx
  auto ack = std::make_shared<CmapAckFrame>();
  ack->src = radio_.id();
  ack->dst = to;
  PerSenderRx& ps = per_sender_[to];
  ack->vps.assign(ps.recent_vps.begin(), ps.recent_vps.end());
  ack->loss_rate = ps.window_loss_rate();
  phy::Frame f;
  f.rate = config_.control_rate;
  f.segments = {{phy::SegmentKind::kWhole, ack->wire_bytes()}};
  f.payload = ack;
  ++counters_.vp_acks_sent;
  ++stats_.acks_sent;
  radio_.transmit(std::move(f));
}

void CmapMac::handle_ilist(const InterfererListFrame& il) {
  ++counters_.ilists_received;
  defer_table_.expire(sim_.now());
  defer_table_.apply_interferer_list(radio_.id(), il.src, il.entries,
                                     sim_.now());
}

// ---------------------------------------------------------- control plane --

void CmapMac::schedule_ilist() {
  // Jitter desynchronizes neighbours' broadcasts.
  const sim::Time period = config_.ilist_period;
  const sim::Time jitter = rng_.uniform_int(-period / 10, period / 10);
  sim_.in(period + jitter, [this] {
    broadcast_ilist();
    schedule_ilist();
  });
}

void CmapMac::broadcast_ilist() {
  if (state_ == State::kSendingVp || state_ == State::kAckWait) return;
  if (radio_.transmitting()) return;
  const auto entries = tracker_.snapshot(sim_.now());
  if (entries.empty()) return;
  auto il = std::make_shared<InterfererListFrame>();
  il->src = radio_.id();
  il->entries = entries;
  phy::Frame f;
  f.rate = config_.control_rate;
  f.segments = {{phy::SegmentKind::kWhole, il->wire_bytes()}};
  f.payload = il;
  ++counters_.ilists_sent;
  radio_.transmit(std::move(f));
}

// ----------------------------------------------------------- phy callbacks --

void CmapMac::on_header_decoded(const phy::Frame& frame, bool ok) {
  // Integrated mode streaming: the header verdict arrives mid-frame, which
  // is what lets nodes defer to conflicting transmissions in time (§2.1).
  if (!ok || config_.mode != PhyMode::kIntegrated) return;
  const auto* idf =
      dynamic_cast<const IntegratedDataFrame*>(frame.payload.get());
  if (idf == nullptr) return;
  const sim::Time now = sim_.now();
  const std::size_t total =
      2 * kVpHeaderBytes + idf->body_bytes();
  const double hdr_frac =
      static_cast<double>(kVpHeaderBytes) / static_cast<double>(total);
  const sim::Time payload_air = frame.duration - phy::kPlcpDuration;
  const sim::Time hdr_end_offset =
      phy::kPlcpDuration +
      static_cast<sim::Time>(hdr_frac * static_cast<double>(payload_air));
  const sim::Time vp_start = now - hdr_end_offset;
  handle_delimiter(idf->d, /*is_trailer=*/false, vp_start,
                   vp_start + frame.duration);
}

void CmapMac::on_rx_end(const phy::Frame& frame, const phy::RxResult& result) {
  const sim::Time now = sim_.now();
  if (const auto* delim =
          dynamic_cast<const VpDelimFrame*>(frame.payload.get())) {
    if (!result.all_ok()) {
      ++stats_.corrupt_frames;
      return;
    }
    const sim::Time vp_start = now - delim->d.elapsed_through;
    const sim::Time vp_end = now + delim->d.remaining_after;
    handle_delimiter(delim->d, delim->is_trailer, vp_start, vp_end);
    return;
  }
  if (const auto* data =
          dynamic_cast<const CmapDataFrame*>(frame.payload.get())) {
    if (!result.all_ok()) {
      ++stats_.corrupt_frames;
      return;
    }
    handle_data(*data, result.rssi_dbm);
    return;
  }
  if (const auto* idf =
          dynamic_cast<const IntegratedDataFrame*>(frame.payload.get())) {
    const sim::Time vp_start = now - frame.duration;
    // Header was already handled mid-frame (on_header_decoded) if it
    // decoded; the trailer closes the entry and triggers the ACK.
    if (result.segment_ok.size() == 3) {
      if (result.segment_ok[1]) {
        handle_data(idf->data, result.rssi_dbm);
      } else if (idf->data.dst == radio_.id()) {
        ++stats_.corrupt_frames;
      }
      if (result.segment_ok[2]) {
        handle_delimiter(idf->d, /*is_trailer=*/true, vp_start, now);
      }
    }
    return;
  }
  if (const auto* ack =
          dynamic_cast<const CmapAckFrame*>(frame.payload.get())) {
    if (!result.all_ok() || ack->dst != radio_.id()) return;
    handle_ack(*ack);
    return;
  }
  if (const auto* il =
          dynamic_cast<const InterfererListFrame*>(frame.payload.get())) {
    if (!result.all_ok()) return;
    handle_ilist(*il);
    return;
  }
}

void CmapMac::on_salvage(const phy::Frame& frame,
                         const phy::RxResult& result) {
  // Integrated-PHY partial packet recovery: header/trailer segments of a
  // frame we never locked onto (paper Fig. 5).
  const auto* idf =
      dynamic_cast<const IntegratedDataFrame*>(frame.payload.get());
  if (idf == nullptr || result.segment_ok.size() != 3) return;
  const sim::Time now = sim_.now();
  const sim::Time vp_start = now - frame.duration;
  if (result.segment_ok[0]) {
    handle_delimiter(idf->d, /*is_trailer=*/false, vp_start, now);
  }
  if (result.segment_ok[2]) {
    handle_delimiter(idf->d, /*is_trailer=*/true, vp_start, now);
  }
}

}  // namespace cmap::core
