// CMAP's loss-rate-driven backoff (§3.4, Fig. 7): the contention window is
// a duration drawn per virtual packet. It grows only when receivers REPORT
// loss above l_backoff in an ACK — never merely because an ACK failed to
// arrive — which is what makes CMAP resilient to the ACK losses exposed
// terminals inevitably suffer.
#pragma once

#include "sim/random.h"
#include "sim/time.h"

namespace cmap::core {

class LossBackoff {
 public:
  LossBackoff(sim::Time cw_start, sim::Time cw_max, double l_backoff)
      : cw_start_(cw_start), cw_max_(cw_max), l_backoff_(l_backoff) {}

  /// Apply Fig. 7: reset CW on a healthy loss report, grow it (start, then
  /// double, capped) on an unhealthy one.
  void on_ack_loss_rate(double loss_rate);

  /// Draw the wait before the next virtual packet: uniform in [0, CW].
  sim::Time draw(sim::Rng& rng) const;

  sim::Time cw() const { return cw_; }

 private:
  sim::Time cw_start_;
  sim::Time cw_max_;
  double l_backoff_;
  sim::Time cw_ = 0;
};

}  // namespace cmap::core
