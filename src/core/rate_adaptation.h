// The §3.5 extension the paper sketches: "a node may choose to transmit at
// a lower rate that can tolerate interference from an ongoing transmission
// or defer to the ongoing transmission and transmit at a higher rate later
// on, picking the choice that yields a higher throughput."
//
// Given a rate-annotated defer table and one ongoing transmission, this
// chooser evaluates every candidate rate both ways — concurrent (only if
// the conflict map has no entry against that rate pairing) and
// defer-then-send — and returns the highest expected goodput option.
#pragma once

#include <vector>

#include "core/defer_table.h"
#include "core/ongoing_list.h"
#include "phy/wifi_rate.h"
#include "sim/time.h"

namespace cmap::core {

struct RateChoice {
  phy::WifiRate rate = phy::WifiRate::k6Mbps;
  bool defer = false;          // wait for the ongoing transmission first
  double expected_bps = 0.0;   // payload bits / (wait + airtime)
};

class ConflictAwareRateChooser {
 public:
  /// `candidates` must be non-empty; order does not matter.
  explicit ConflictAwareRateChooser(std::vector<phy::WifiRate> candidates);

  /// Best option for sending `payload_bytes` to `dst` while `ongoing`
  /// (p -> q at its rate) occupies the air until `ongoing.end_time`.
  RateChoice choose(const DeferTable& table, phy::NodeId dst,
                    const OngoingTx& ongoing, sim::Time now,
                    std::size_t payload_bytes) const;

  /// With a clear channel there is nothing to trade off: the fastest
  /// candidate wins.
  RateChoice choose_idle(std::size_t payload_bytes) const;

 private:
  std::vector<phy::WifiRate> candidates_;
};

}  // namespace cmap::core
