#include "core/interferer_tracker.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace cmap::core {

void InterfererTracker::decay(Stat& s, sim::Time now) const {
  if (s.last_decay == 0) {
    s.last_decay = now;
    return;
  }
  const double dt = sim::to_seconds(now - s.last_decay);
  if (dt <= 0) return;
  const double factor =
      std::exp2(-dt / sim::to_seconds(halflife_));
  s.expected *= factor;
  s.lost *= factor;
  s.last_decay = now;
}

void InterfererTracker::observe(phy::NodeId sender, phy::WifiRate sender_rate,
                                const std::vector<phy::NodeId>& concurrent,
                                const std::vector<phy::WifiRate>& rates,
                                bool received, sim::Time now) {
  if (concurrent.empty()) {
    Stat& b = baseline_[sender];
    decay(b, now);
    b.expected += 1.0;
    if (!received) b.lost += 1.0;
    return;
  }
  for (std::size_t i = 0; i < concurrent.size(); ++i) {
    Stat& s = pair_stats_[key(sender, concurrent[i])];
    decay(s, now);
    s.expected += 1.0;
    if (!received) s.lost += 1.0;
    s.sender_rate = sender_rate;
    s.interferer_rate = i < rates.size() ? rates[i] : kAnyRate;
  }
}

std::vector<InterfererEntry> InterfererTracker::snapshot(sim::Time now) const {
  std::vector<InterfererEntry> out;
  // cmap-lint: allow(unordered-iter) -- entries are sorted by
  // (source, interferer) below before any caller sees them, so hash
  // order never reaches the wire (snapshot feeds broadcast_ilist).
  for (const auto& [k, s] : pair_stats_) {
    // Peek with decay applied but without mutating (const snapshot).
    double expected = s.expected;
    double lost = s.lost;
    if (s.last_decay != 0 && now > s.last_decay) {
      const double factor = std::exp2(
          -sim::to_seconds(now - s.last_decay) / sim::to_seconds(halflife_));
      expected *= factor;
      lost *= factor;
    }
    if (expected < static_cast<double>(min_samples_)) continue;
    if (lost / expected <= l_interf_) continue;
    InterfererEntry e;
    e.source = static_cast<phy::NodeId>(k >> 32);
    e.interferer = static_cast<phy::NodeId>(k & 0xffffffffull);
    e.source_rate = s.sender_rate;
    e.interferer_rate = s.interferer_rate;
    out.push_back(e);
  }
  // The snapshot goes onto the wire (InterfererListFrame) and into
  // receivers' defer tables; emit it in a stable order so behaviour is
  // identical across standard libraries, not just across runs.
  std::sort(out.begin(), out.end(),
            [](const InterfererEntry& a, const InterfererEntry& b) {
              return std::tie(a.source, a.interferer) <
                     std::tie(b.source, b.interferer);
            });
  return out;
}

double InterfererTracker::loss_rate(phy::NodeId sender,
                                    phy::NodeId interferer) const {
  auto it = pair_stats_.find(key(sender, interferer));
  if (it == pair_stats_.end() || it->second.expected <= 0.0) return -1.0;
  return it->second.lost / it->second.expected;
}

double InterfererTracker::baseline_loss_rate(phy::NodeId sender) const {
  auto it = baseline_.find(sender);
  if (it == baseline_.end() || it->second.expected <= 0.0) return -1.0;
  return it->second.lost / it->second.expected;
}

}  // namespace cmap::core
