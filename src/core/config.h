// CMAP protocol parameters. Defaults are the prototype's values from §4.2
// of the paper; integrated_defaults() models the PPR-hardware realization
// of the PHY abstraction (§2.1) where the shim's latency workarounds are
// unnecessary.
#pragma once

#include <cstddef>

#include "phy/wifi_rate.h"
#include "sim/time.h"

namespace cmap::core {

/// How the §2.1 PHY abstraction is realized.
enum class PhyMode {
  kShim,        // separate header/trailer packets around Nvpkt data packets
  kIntegrated,  // header/trailer segments inside each data frame (PPR)
};

/// Which implementation answers the §3.2 send decision. kFast walks the
/// ongoing ring once and probes the defer table's bucket indexes; kReference
/// replays the original snapshot-and-scan — retained as the oracle the fast
/// path is tested byte-identical against (see DeferDecider in cmap_mac.h).
enum class DecisionMode {
  kFast,
  kReference,
};

struct CmapConfig {
  PhyMode mode = PhyMode::kShim;

  // Virtual packet / window geometry (§4.2).
  int nvpkt = 32;       // data packets per virtual packet
  int nwindow_vps = 8;  // send window in virtual packets

  // Timing (§4.2): 5 ms accommodates the software-MAC latency the
  // prototype measured between the Click MAC and the hardware PHY.
  sim::Time t_ackwait = sim::milliseconds(5);
  sim::Time t_deferwait = sim::milliseconds(5);

  // Backoff policy (§3.4): contention window is a *duration* here because
  // decisions happen once per virtual packet; values are the 802.11
  // constants scaled by Nvpkt (§4.2).
  sim::Time cw_start = sim::milliseconds(5);
  sim::Time cw_max = sim::milliseconds(320);
  double l_backoff = 0.5;

  // Conflict inference (§3.1).
  double l_interf = 0.5;        // loss threshold for interference
  int min_interf_samples = 16;  // packets observed before judging a pair
  sim::Time interferer_halflife = sim::seconds(2);   // stat aging
  sim::Time ilist_period = sim::seconds(1);          // broadcast interval
  sim::Time defer_entry_ttl = sim::seconds(20);      // defer table aging

  // Receiver bookkeeping.
  sim::Time vp_finalize_grace = sim::milliseconds(2);

  // Rates: data vs control (headers, trailers, ACKs, interferer lists are
  // always sent at the base rate, as in §5.8).
  phy::WifiRate data_rate = phy::WifiRate::k6Mbps;
  phy::WifiRate control_rate = phy::WifiRate::k6Mbps;

  // Extension toggles.
  bool per_dest_queues = false;  // §3.2 optimization
  bool annotate_rates = false;   // §3.5 multi-bitrate conflict maps
  DecisionMode decision_mode = DecisionMode::kFast;  // send-decision path

  std::size_t queue_limit = 512;
  std::size_t nominal_packet_bytes = 1400;  // for timeout arithmetic
  int retx_limit = 16;  // transmissions per packet before giving up

  /// Send window measured in data packets.
  std::size_t window_packets() const {
    return static_cast<std::size_t>(nvpkt) *
           static_cast<std::size_t>(nwindow_vps);
  }

  /// Retransmission timeout bounds (§3.3): tau_max is the airtime of a full
  /// window of packets; tau_min is half that.
  sim::Time tau_max() const {
    const double bits = static_cast<double>(window_packets()) * 8.0 *
                        static_cast<double>(nominal_packet_bytes);
    return sim::transmission_time(static_cast<std::int64_t>(bits),
                                  phy::rate_info(data_rate).bits_per_second);
  }
  sim::Time tau_min() const { return tau_max() / 2; }

  /// The PPR-hardware realization: per-packet virtual packets, tight ACK
  /// turnaround, in-frame header/trailer segments.
  static CmapConfig integrated_defaults() {
    CmapConfig c;
    c.mode = PhyMode::kIntegrated;
    c.nvpkt = 1;
    // Window of 8 single-packet VPs; the cumulative ACK then carries 8
    // per-VP bitmaps (~104 B, ~164 us at 6 Mbit/s), fitting comfortably
    // inside the ACK wait so the sender is still listening when it lands.
    c.nwindow_vps = 8;
    c.t_ackwait = sim::microseconds(400);
    c.t_deferwait = sim::microseconds(400);
    c.cw_start = sim::microseconds(156);  // 802.11-like CWstart in time
    c.cw_max = sim::milliseconds(10);
    return c;
  }
};

}  // namespace cmap::core
