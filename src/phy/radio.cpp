#include "phy/radio.h"

#include <algorithm>

#include "phy/medium.h"
#include "phy/units.h"
#include "sim/assert.h"

namespace cmap::phy {
namespace {
// Signals older than this can no longer overlap any evaluation window
// (longest frame is ~2 ms; generous margin).
constexpr sim::Time kPruneHorizon = 50 * sim::kNsPerMs;
}  // namespace

Radio::Radio(sim::Simulator& simulator, Medium& medium, NodeId id,
             Position pos, RadioConfig config,
             std::shared_ptr<const ErrorModel> error_model, sim::Rng rng)
    : sim_(simulator),
      medium_(medium),
      id_(id),
      position_(pos),
      config_(config),
      error_model_(std::move(error_model)),
      rng_(rng),
      tracker_(dbm_to_mw(config.noise_floor_dbm)),
      sinr_scale_(db_to_linear(config.implementation_loss_db)),
      cs_signal_mw_(dbm_to_mw(config.cs_signal_dbm)),
      energy_detect_mw_(dbm_to_mw(config.energy_detect_dbm)),
      sensitivity_mw_(dbm_to_mw(config.sensitivity_dbm)),
      capture_ratio_(db_to_linear(config.capture_margin_db)),
      preamble_min_sinr_(db_to_linear(config.preamble_min_sinr_db)) {
  medium_.attach(this);
  trace_.bind(medium_.tracer_for(id_), id_);
  metrics_.bind(medium_.metrics(), metrics::Domain::kPhy);
}

const Signal* Radio::find_signal(std::uint64_t frame_id) const {
  for (const auto& s : tracker_.signals()) {
    if (s.frame && s.frame->id == frame_id) return &s;
  }
  return nullptr;
}

void Radio::set_position(Position pos) {
  position_ = pos;
  medium_.on_position_changed(*this);
}

void Radio::transmit(Frame frame) {
  CMAP_ASSERT(state_ != State::kTx, "transmit while already transmitting");
  if (state_ == State::kRx) {
    ++counters_.aborted_by_tx;
    metrics_.inc(metrics::Counter::kPhyCollisionLocalTx);
    if (trace_.wants(trace::Category::kPhyCollision)) {
      trace_.tracer->phy_collision(sim_.now(), id_, lock_frame_id_,
                                   trace::CollisionReason::kLocalTx);
    }
    abort_rx();
  }
  // Sender-derived id (see make_frame_id): identical between the serial
  // and PDES executives, where a medium-global counter would not be.
  frame.id = make_frame_id(id_, ++tx_seq_);
  frame.tx_node = id_;
  frame.duration = frame_airtime(frame.rate, frame.size_bytes());
  auto shared = std::make_shared<const Frame>(std::move(frame));
  state_ = State::kTx;
  tx_frame_ = shared;
  tx_start_ = sim_.now();
  tx_end_ = sim_.now() + shared->duration;
  ++counters_.frames_sent;
  medium_.transmit(*this, shared);
  sim_.in(shared->duration, [this] { finish_tx(); });
  update_cca();
}

void Radio::finish_tx() {
  CMAP_ASSERT(state_ == State::kTx, "finish_tx in wrong state");
  state_ = State::kIdle;
  auto frame = tx_frame_;
  tx_frame_.reset();
  update_cca();
  if (listener_) listener_->on_tx_end(*frame);
}

void Radio::deliver(Signal signal) {
  // Frameless (raw-energy) signals may live in an InterferenceTracker, but
  // radio reception is keyed on frame ids throughout.
  CMAP_ASSERT(signal.frame != nullptr, "radio delivery requires a frame");
  const std::uint64_t fid = signal.frame->id;
  tracker_.prune(sim_.now() - kPruneHorizon);
  tracker_.add(signal);
  sim_.at(signal.end, [this, fid] { on_signal_end(fid); });

  if (signal.power_mw >= sensitivity_mw_) {
    const bool idle_lock_candidate = state_ == State::kIdle;
    const bool capture_candidate =
        state_ == State::kRx && config_.capture_enabled &&
        signal.power_mw >= lock_power_mw_ * capture_ratio_;
    if (idle_lock_candidate || capture_candidate) {
      sim_.at(signal.start + kPlcpDuration,
              [this, fid] { evaluate_preamble(fid); });
    }
  }
  update_cca();
}

void Radio::evaluate_preamble(std::uint64_t frame_id) {
  if (state_ == State::kTx) return;
  const Signal* sig = find_signal(frame_id);
  if (sig == nullptr) return;  // pruned (shouldn't happen within horizon)

  if (state_ == State::kRx) {
    if (!config_.capture_enabled || frame_id == lock_frame_id_) return;
    if (sig->power_mw < lock_power_mw_ * capture_ratio_) return;
  }

  const double sinr =
      tracker_.min_sinr(frame_id, sig->start, sig->start + kPlcpDuration);
  if (sinr < preamble_min_sinr_) {
    ++counters_.preamble_failures;
    metrics_.inc(metrics::Counter::kPhyCollisionPreambleSinr);
    if (trace_.wants(trace::Category::kPhyCollision)) {
      trace_.tracer->phy_collision(sim_.now(), id_, frame_id,
                                   trace::CollisionReason::kPreambleSinr);
    }
    return;
  }

  if (state_ == State::kRx) {
    ++counters_.aborted_by_capture;
    metrics_.inc(metrics::Counter::kPhyCollisionCaptured);
    if (trace_.wants(trace::Category::kPhyCollision)) {
      trace_.tracer->phy_collision(sim_.now(), id_, lock_frame_id_,
                                   trace::CollisionReason::kCaptured);
    }
    abort_rx();
  }
  lock(*sig);
}

void Radio::lock(const Signal& sig) {
  CMAP_ASSERT(state_ == State::kIdle, "lock in wrong state");
  state_ = State::kRx;
  lock_frame_id_ = sig.frame->id;
  lock_power_mw_ = sig.power_mw;
  lock_min_sinr_db_ = 1e9;
  segment_results_.assign(sig.frame->segments.size(), std::nullopt);
  ++counters_.locks;

  // Integrated mode: deliver the header verdict as soon as its last bit is
  // on the air ("streaming" property of the PHY abstraction, §2.1).
  const auto& segments = sig.frame->segments;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].kind == SegmentKind::kHeader) {
      const auto [begin, end] = segment_window(sig, i);
      const std::uint64_t fid = sig.frame->id;
      header_event_ = sim_.at(end, [this, fid, i] {
        if (state_ != State::kRx || lock_frame_id_ != fid) return;
        const Signal* s = find_signal(fid);
        if (s == nullptr) return;
        double sinr_db = 0.0;
        const bool ok = evaluate_segment(*s, i, &sinr_db);
        segment_results_[i] = ok;
        if (listener_) listener_->on_header_decoded(*s->frame, ok);
      });
      break;
    }
  }

  rx_finish_event_ = sim_.at(sig.end, [this] { finish_rx(); });
  update_cca();
  if (listener_) listener_->on_rx_start(*sig.frame, sig.end);
}

std::pair<sim::Time, sim::Time> Radio::segment_window(
    const Signal& sig, std::size_t index) const {
  const auto& segments = sig.frame->segments;
  std::size_t total = 0, before = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i < index) before += segments[i].bytes;
    total += segments[i].bytes;
  }
  CMAP_ASSERT(total > 0, "frame with no payload bytes");
  const sim::Time payload_begin = sig.start + kPlcpDuration;
  const double span = static_cast<double>(sig.end - payload_begin);
  const auto begin =
      payload_begin +
      static_cast<sim::Time>(span * static_cast<double>(before) /
                             static_cast<double>(total));
  const auto end =
      payload_begin +
      static_cast<sim::Time>(
          span * static_cast<double>(before + segments[index].bytes) /
          static_cast<double>(total));
  return {begin, end};
}

bool Radio::evaluate_segment(const Signal& sig, std::size_t index,
                             double* min_sinr_db) {
  const auto [begin, end] = segment_window(sig, index);
  const double bits = 8.0 * static_cast<double>(sig.frame->segments[index].bytes);
  const ChunkOutcome outcome =
      tracker_.evaluate(sig.frame->id, begin, end, bits, sig.frame->rate,
                        *error_model_, sinr_scale_);
  if (min_sinr_db != nullptr) *min_sinr_db = linear_to_db(outcome.min_sinr);
  return rng_.bernoulli(outcome.success_prob);
}

void Radio::finish_rx() {
  CMAP_ASSERT(state_ == State::kRx, "finish_rx in wrong state");
  const Signal* sig = find_signal(lock_frame_id_);
  CMAP_ASSERT(sig != nullptr, "locked signal missing at finish");

  RxResult result;
  result.rssi_dbm = mw_to_dbm(sig->power_mw);
  result.segment_ok.resize(sig->frame->segments.size());
  double worst_db = 1e9;
  for (std::size_t i = 0; i < result.segment_ok.size(); ++i) {
    if (segment_results_[i].has_value()) {
      result.segment_ok[i] = *segment_results_[i];
      continue;
    }
    double sinr_db = 0.0;
    result.segment_ok[i] = evaluate_segment(*sig, i, &sinr_db);
    worst_db = std::min(worst_db, sinr_db);
  }
  result.min_sinr_db = worst_db;

  if (result.all_ok()) {
    ++counters_.rx_ok;
    metrics_.inc(metrics::Counter::kPhyRxOk);
  } else {
    ++counters_.rx_corrupt;
    metrics_.inc(metrics::Counter::kPhyRxCorrupt);
  }
  if (trace_.wants(trace::Category::kPhyRx)) {
    // Centi-dB, clamped: worst_db is a +-1e9 sentinel when every segment
    // verdict was precomputed (integrated header path).
    const double cdb = std::clamp(result.min_sinr_db * 100.0, -20000.0,
                                  20000.0);
    trace_.tracer->phy_rx(sim_.now(), id_, sig->frame->id,
                          sig->frame->tx_node, result.all_ok(),
                          static_cast<std::int32_t>(cdb));
  }

  auto frame = sig->frame;  // keep alive across listener call
  state_ = State::kIdle;
  header_event_.cancel();
  update_cca();
  if (listener_) listener_->on_rx_end(*frame, result);
}

void Radio::abort_rx() {
  CMAP_ASSERT(state_ == State::kRx, "abort_rx in wrong state");
  rx_finish_event_.cancel();
  header_event_.cancel();
  state_ = State::kIdle;
  // No listener notification: a receiver that loses lock never learns what
  // the frame would have contained.
  update_cca();
}

void Radio::on_signal_end(std::uint64_t frame_id) {
  const Signal* sig = find_signal(frame_id);
  if (sig != nullptr && config_.salvage_enabled &&
      (state_ != State::kRx || lock_frame_id_ != frame_id)) {
    maybe_salvage(*sig);
  }
  update_cca();
}

void Radio::maybe_salvage(const Signal& sig) {
  if (sig.power_mw < sensitivity_mw_) return;
  // A half-duplex radio hears nothing of a frame it talked over.
  const bool tx_overlap =
      tx_start_ >= 0 && tx_start_ < sig.end && tx_end_ > sig.start;
  if (tx_overlap) return;

  RxResult result;
  result.rssi_dbm = mw_to_dbm(sig.power_mw);
  result.segment_ok.assign(sig.frame->segments.size(), false);
  bool any = false;
  double worst_db = 1e9;
  for (std::size_t i = 0; i < sig.frame->segments.size(); ++i) {
    const SegmentKind kind = sig.frame->segments[i].kind;
    if (kind != SegmentKind::kHeader && kind != SegmentKind::kTrailer)
      continue;
    double sinr_db = 0.0;
    result.segment_ok[i] = evaluate_segment(sig, i, &sinr_db);
    worst_db = std::min(worst_db, sinr_db);
    any = any || result.segment_ok[i];
  }
  result.min_sinr_db = worst_db;
  if (!any) return;
  ++counters_.salvages;
  if (listener_) listener_->on_salvage(*sig.frame, result);
}

bool Radio::carrier_busy() const {
  if (state_ != State::kIdle) return true;
  const sim::Time now = sim_.now();
  if (tracker_.max_power_mw(now) >= cs_signal_mw_) return true;
  if (tracker_.total_power_mw(now) >= energy_detect_mw_) return true;
  return false;
}

void Radio::update_cca() {
  const bool busy = carrier_busy();
  if (busy == last_cca_busy_) return;
  last_cca_busy_ = busy;
  if (listener_) listener_->on_cca(busy);
}

}  // namespace cmap::phy
