// The 802.11a rate table and OFDM frame timing. The paper's experiments use
// the 6, 12 and 18 Mbit/s rates; the full table is provided so the rate
// adaptation extension (§3.5) has room to move.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace cmap::phy {

enum class WifiRate : std::uint8_t {
  k6Mbps = 0,
  k9Mbps,
  k12Mbps,
  k18Mbps,
  k24Mbps,
  k36Mbps,
  k48Mbps,
  k54Mbps,
};

inline constexpr int kNumWifiRates = 8;

enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

struct RateInfo {
  WifiRate rate;
  double bits_per_second;
  Modulation modulation;
  double code_rate;          // convolutional code rate (1/2, 2/3, 3/4)
  int data_bits_per_symbol;  // data bits per 4 us OFDM symbol
};

/// Static description of an 802.11a rate.
const RateInfo& rate_info(WifiRate rate);

/// Human-readable name, e.g. "6Mbps".
const char* rate_name(WifiRate rate);

/// 802.11a PLCP preamble + SIGNAL field duration (16 us + 4 us).
inline constexpr sim::Time kPlcpDuration = 20 * sim::kNsPerUs;

/// OFDM symbol duration.
inline constexpr sim::Time kSymbolDuration = 4 * sim::kNsPerUs;

/// SERVICE (16) + tail (6) bits prepended/appended by the PHY.
inline constexpr int kServiceAndTailBits = 22;

/// Total airtime of a PPDU carrying `bytes` of MAC payload: PLCP preamble
/// plus the payload rounded up to whole OFDM symbols.
sim::Time frame_airtime(WifiRate rate, std::size_t bytes);

/// Airtime of the payload portion alone (frame_airtime minus the preamble).
sim::Time payload_airtime(WifiRate rate, std::size_t bytes);

}  // namespace cmap::phy
