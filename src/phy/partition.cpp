#include "phy/partition.h"

#include <algorithm>
#include <numeric>

#include "sim/assert.h"

namespace cmap::phy {
namespace {
constexpr double kSpeedOfLight = 2.99792458e8;
}  // namespace

sim::Time propagation_delay_ns(double meters) {
  // Floored at 1 ns: two distinct radios are never truly co-located, and a
  // strictly positive flight time between every pair keeps the PDES
  // cross-partition lookahead positive no matter how close mobility drives
  // two nodes — the engine then never has to merge partitions whose nodes
  // drift under 0.3 m of each other.
  return std::max<sim::Time>(
      1, static_cast<sim::Time>(meters / kSpeedOfLight * 1e9));
}

PartitionPlan make_partition_plan(const std::vector<Position>& positions,
                                  int partitions) {
  const auto n = positions.size();
  PartitionPlan plan;
  plan.count = std::clamp(partitions, 1, static_cast<int>(std::max<std::size_t>(n, 1)));
  plan.part_of_node.assign(n, 0);
  if (plan.count <= 1) return plan;

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const Position& pa = positions[a];
    const Position& pb = positions[b];
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;
  });
  // i-th of n sorted nodes goes to strip floor(i * count / n): sizes
  // differ by at most one, and the mapping is a pure function of (node
  // set, count).
  for (std::size_t i = 0; i < n; ++i) {
    plan.part_of_node[order[i]] =
        static_cast<int>(i * static_cast<std::size_t>(plan.count) / n);
  }
  return plan;
}

std::vector<sim::Time> min_cross_delays(const std::vector<int>& parts,
                                        const std::vector<Position>& positions,
                                        int count) {
  CMAP_ASSERT(parts.size() == positions.size(),
              "parallel arrays of live nodes");
  const auto c = static_cast<std::size_t>(count);
  std::vector<double> min_dist(c * c, -1.0);  // -1 = no pair yet
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      const int a = parts[i];
      const int b = parts[j];
      if (a == b) continue;
      const double d = distance(positions[i], positions[j]);
      double& ab = min_dist[static_cast<std::size_t>(a) * c +
                            static_cast<std::size_t>(b)];
      if (ab < 0.0 || d < ab) ab = d;
      double& ba = min_dist[static_cast<std::size_t>(b) * c +
                            static_cast<std::size_t>(a)];
      if (ba < 0.0 || d < ba) ba = d;
    }
  }
  std::vector<sim::Time> delays(c * c, 0);
  for (std::size_t k = 0; k < c * c; ++k) {
    if (k / c == k % c) continue;  // diagonal: unused by the engine
    delays[k] =
        min_dist[k] < 0.0 ? sim::kTimeForever : propagation_delay_ns(min_dist[k]);
  }
  return delays;
}

}  // namespace cmap::phy
