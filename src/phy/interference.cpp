#include "phy/interference.h"

#include <algorithm>

#include "sim/assert.h"

namespace cmap::phy {

void InterferenceTracker::add(Signal signal) {
  signals_.push_back(std::move(signal));
}

void InterferenceTracker::prune(sim::Time horizon) {
  std::erase_if(signals_, [horizon](const Signal& s) { return s.end < horizon; });
}

const Signal* InterferenceTracker::find(std::uint64_t frame_id) const {
  for (const auto& s : signals_) {
    if (s.frame && s.frame->id == frame_id) return &s;
  }
  return nullptr;
}

ChunkOutcome InterferenceTracker::evaluate(std::uint64_t target_frame_id,
                                           sim::Time begin, sim::Time end,
                                           double bits, WifiRate rate,
                                           const ErrorModel& model,
                                           double sinr_scale) const {
  ChunkOutcome out;
  const Signal* target = find(target_frame_id);
  CMAP_ASSERT(target != nullptr, "evaluating unknown frame");
  if (end <= begin) return out;

  // Collect change points: window edges plus starts/ends of overlapping
  // foreign signals.
  std::vector<sim::Time> points;
  points.push_back(begin);
  points.push_back(end);
  for (const auto& s : signals_) {
    if (s.frame->id == target_frame_id) continue;
    if (s.start > begin && s.start < end) points.push_back(s.start);
    if (s.end > begin && s.end < end) points.push_back(s.end);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  const double window = static_cast<double>(end - begin);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const sim::Time t0 = points[i];
    const sim::Time t1 = points[i + 1];
    double interference = 0.0;
    for (const auto& s : signals_) {
      if (s.frame->id == target_frame_id) continue;
      if (s.start < t1 && s.end > t0) interference += s.power_mw;
    }
    const double sinr = target->power_mw / (noise_mw_ + interference);
    out.min_sinr = std::min(out.min_sinr, sinr);
    const double chunk_bits = bits * static_cast<double>(t1 - t0) / window;
    out.success_prob *=
        model.chunk_success(sinr / sinr_scale, chunk_bits, rate);
  }
  return out;
}

double InterferenceTracker::min_sinr(std::uint64_t target_frame_id,
                                     sim::Time begin, sim::Time end) const {
  // A threshold model with zero bits leaves success at 1; reuse evaluate's
  // chunking for the SINR bookkeeping only.
  static const ThresholdErrorModel dummy(0.0);
  return evaluate(target_frame_id, begin, end, 0.0, WifiRate::k6Mbps, dummy,
                  1.0)
      .min_sinr;
}

double InterferenceTracker::total_power_mw(sim::Time t) const {
  double total = 0.0;
  for (const auto& s : signals_) {
    if (s.start <= t && s.end > t) total += s.power_mw;
  }
  return total;
}

double InterferenceTracker::max_power_mw(sim::Time t) const {
  double best = 0.0;
  for (const auto& s : signals_) {
    if (s.start <= t && s.end > t) best = std::max(best, s.power_mw);
  }
  return best;
}

}  // namespace cmap::phy
