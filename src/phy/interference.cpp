#include "phy/interference.h"

#include <algorithm>

#include "sim/assert.h"

namespace cmap::phy {
namespace {
// Below this size the compaction scan is cheaper than the bookkeeping to
// avoid it; prune() never compacts a smaller vector.
constexpr std::size_t kMinCompactSize = 16;
}  // namespace

void InterferenceTracker::add(Signal signal) {
  signals_.push_back(std::move(signal));
}

void InterferenceTracker::prune(sim::Time horizon) {
  prune_horizon_ = std::max(prune_horizon_, horizon);
  if (signals_.size() < std::max(compact_at_, kMinCompactSize)) return;
  std::erase_if(signals_, [this](const Signal& s) {
    return s.end < prune_horizon_;
  });
  // Require at least one live signal's worth of growth (and at least the
  // minimum) before scanning again: amortized O(1) per add().
  compact_at_ = 2 * signals_.size();
}

const Signal* InterferenceTracker::find(std::uint64_t frame_id) const {
  for (const auto& s : signals_) {
    if (s.frame && s.frame->id == frame_id) return &s;
  }
  return nullptr;
}

ChunkOutcome InterferenceTracker::evaluate(std::uint64_t target_frame_id,
                                           sim::Time begin, sim::Time end,
                                           double bits, WifiRate rate,
                                           const ErrorModel& model,
                                           double sinr_scale) const {
  ChunkOutcome out;
  const Signal* target = find(target_frame_id);
  CMAP_ASSERT(target != nullptr, "evaluating unknown frame");
  if (end <= begin) return out;

  // One +power/-power edge per overlapping foreign signal boundary, clipped
  // to the window; signals already active at `begin` fold into the base
  // sum. Frameless signals (raw energy) count as interference.
  edges_.clear();
  double interference = 0.0;
  for (const auto& s : signals_) {
    if (s.frame && s.frame->id == target_frame_id) continue;
    if (s.end <= begin || s.start >= end) continue;
    if (s.start <= begin) {
      interference += s.power_mw;
    } else {
      edges_.push_back({s.start, s.power_mw});
    }
    if (s.end < end) edges_.push_back({s.end, -s.power_mw});
  }
  // The delta tie-break pins the accumulation order at shared change
  // points, keeping results independent of the sort implementation.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.t != b.t ? a.t < b.t : a.delta < b.delta;
  });

  const double window = static_cast<double>(end - begin);
  sim::Time t0 = begin;
  std::size_t i = 0;
  for (;;) {
    const sim::Time t1 = i < edges_.size() ? edges_[i].t : end;
    if (t1 > t0) {
      // The +p/-p accumulation can leave a negative rounding residual the
      // per-interval rescan never produces; clamp before the division.
      const double sinr =
          target->power_mw / (noise_mw_ + std::max(interference, 0.0));
      out.min_sinr = std::min(out.min_sinr, sinr);
      const double chunk_bits = bits * static_cast<double>(t1 - t0) / window;
      out.success_prob *=
          model.chunk_success(sinr / sinr_scale, chunk_bits, rate);
      t0 = t1;
    }
    if (i >= edges_.size()) break;
    interference += edges_[i].delta;
    ++i;
  }
  return out;
}

double InterferenceTracker::min_sinr(std::uint64_t target_frame_id,
                                     sim::Time begin, sim::Time end) const {
  // A threshold model with zero bits leaves success at 1; reuse evaluate's
  // chunking for the SINR bookkeeping only.
  static const ThresholdErrorModel dummy(0.0);
  return evaluate(target_frame_id, begin, end, 0.0, WifiRate::k6Mbps, dummy,
                  1.0)
      .min_sinr;
}

double InterferenceTracker::total_power_mw(sim::Time t) const {
  double total = 0.0;
  for (const auto& s : signals_) {
    if (s.start <= t && s.end > t) total += s.power_mw;
  }
  return total;
}

double InterferenceTracker::max_power_mw(sim::Time t) const {
  double best = 0.0;
  for (const auto& s : signals_) {
    if (s.start <= t && s.end > t) best = std::max(best, s.power_mw);
  }
  return best;
}

ChunkOutcome evaluate_reference(const InterferenceTracker& tracker,
                                std::uint64_t target_frame_id, sim::Time begin,
                                sim::Time end, double bits, WifiRate rate,
                                const ErrorModel& model, double sinr_scale) {
  ChunkOutcome out;
  const std::vector<Signal>& signals = tracker.signals();
  const Signal* target = nullptr;
  for (const auto& s : signals) {
    if (s.frame && s.frame->id == target_frame_id) {
      target = &s;
      break;
    }
  }
  CMAP_ASSERT(target != nullptr, "evaluating unknown frame");
  if (end <= begin) return out;

  std::vector<sim::Time> points;
  points.push_back(begin);
  points.push_back(end);
  for (const auto& s : signals) {
    if (s.frame && s.frame->id == target_frame_id) continue;
    if (s.start > begin && s.start < end) points.push_back(s.start);
    if (s.end > begin && s.end < end) points.push_back(s.end);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  const double window = static_cast<double>(end - begin);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const sim::Time t0 = points[i];
    const sim::Time t1 = points[i + 1];
    double interference = 0.0;
    for (const auto& s : signals) {
      if (s.frame && s.frame->id == target_frame_id) continue;
      if (s.start < t1 && s.end > t0) interference += s.power_mw;
    }
    const double sinr = target->power_mw / (tracker.noise_mw() + interference);
    out.min_sinr = std::min(out.min_sinr, sinr);
    const double chunk_bits = bits * static_cast<double>(t1 - t0) / window;
    out.success_prob *=
        model.chunk_success(sinr / sinr_scale, chunk_bits, rate);
  }
  return out;
}

}  // namespace cmap::phy
