#include "phy/medium.h"

#include <algorithm>

#include "phy/radio.h"
#include "phy/units.h"
#include "sim/assert.h"

namespace cmap::phy {
namespace {
constexpr double kSpeedOfLight = 2.99792458e8;
// Sentinel gain for the (i, i) self pair; never clears any floor.
constexpr double kSelfGainDbm = -1e30;
// The NodeId -> index map is a flat vector sized to the largest attached
// id (O(1) lookup); cap it so a stray sparse id fails loudly instead of
// allocating gigabytes. Matches the net layer's packet-id packing bound
// (traffic.cpp packs src ids into 20 bits). 1M ids = 4 MB worst case.
constexpr phy::NodeId kMaxRadioId = 1u << 20;
}  // namespace

Medium::Medium(sim::Simulator& simulator,
               std::shared_ptr<const PropagationModel> propagation,
               MediumConfig config, sim::Rng rng)
    : sim_(simulator),
      propagation_(std::move(propagation)),
      config_(config),
      rng_(rng) {}

double Medium::cull_floor_dbm() const {
  const double guard = config_.fading_sigma_db > 0.0
                           ? config_.cull_guard_sigmas * config_.fading_sigma_db
                           : 0.0;
  return config_.delivery_floor_dbm - guard;
}

Medium::Link Medium::compute_link(const Radio& src, const Radio& dst) const {
  Link link;
  link.gain_dbm =
      propagation_->rx_power_dbm(src.config().tx_power_dbm, src.id(), dst.id(),
                                 src.position(), dst.position());
  const double d = distance(src.position(), dst.position());
  link.delay = static_cast<sim::Time>(d / kSpeedOfLight * 1e9);
  return link;
}

std::uint32_t Medium::index_of(NodeId id) const {
  if (static_cast<std::size_t>(id) >= index_by_id_.size()) return kNoIndex;
  return index_by_id_[id];
}

void Medium::attach(Radio* radio) {
  CMAP_ASSERT(radio != nullptr, "attach null radio");
  CMAP_ASSERT(radio->id() != kBroadcastId, "radio with broadcast id");
  CMAP_ASSERT(radio->id() < kMaxRadioId,
              "radio ids must be small/dense (id index is a flat vector)");
  if (static_cast<std::size_t>(radio->id()) >= index_by_id_.size()) {
    index_by_id_.resize(radio->id() + 1, kNoIndex);
  }
  CMAP_ASSERT(index_by_id_[radio->id()] == kNoIndex, "duplicate radio id");
  const auto idx = static_cast<std::uint32_t>(radios_.size());
  index_by_id_[radio->id()] = idx;
  radios_.push_back(radio);

  if (!config_.enable_gain_cache) return;
  // Extend every existing source's row (and reachability) with the new
  // radio, then build the new radio's own row against everyone.
  const double floor = cull_floor_dbm();
  for (std::uint32_t i = 0; i < idx; ++i) {
    const Link link = compute_link(*radios_[i], *radio);
    links_[i].push_back(link);
    if (link.gain_dbm >= floor) reachable_[i].push_back(idx);
  }
  std::vector<Link> row;
  row.reserve(radios_.size());
  for (std::uint32_t j = 0; j < idx; ++j) {
    row.push_back(compute_link(*radio, *radios_[j]));
  }
  row.push_back(Link{kSelfGainDbm, 0});
  links_.push_back(std::move(row));
  reachable_.emplace_back();
  rebuild_reachable(idx);
}

void Medium::rebuild_reachable(std::uint32_t src_idx) {
  const double floor = cull_floor_dbm();
  auto& set = reachable_[src_idx];
  set.clear();
  const auto& row = links_[src_idx];
  for (std::uint32_t j = 0; j < row.size(); ++j) {
    if (j != src_idx && row[j].gain_dbm >= floor) set.push_back(j);
  }
}

void Medium::refresh_all() {
  if (!config_.enable_gain_cache) return;
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    for (std::uint32_t j = 0; j < radios_.size(); ++j) {
      if (i == j) continue;
      links_[i][j] = compute_link(*radios_[i], *radios_[j]);
    }
  }
  for (std::uint32_t i = 0; i < radios_.size(); ++i) rebuild_reachable(i);
}

void Medium::on_position_changed(Radio& radio) {
  if (!config_.enable_gain_cache) return;
  const std::uint32_t idx = index_of(radio.id());
  CMAP_ASSERT(idx != kNoIndex, "position change for unattached radio");
  if (!config_.incremental_invalidation) {
    refresh_all();
    return;
  }
  const double floor = cull_floor_dbm();
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    if (i == idx) continue;
    links_[idx][i] = compute_link(radio, *radios_[i]);
    const Link inbound = compute_link(*radios_[i], radio);
    links_[i][idx] = inbound;
    // Splice `idx` in or out of source i's sorted reachability set.
    auto& set = reachable_[i];
    const auto it = std::lower_bound(set.begin(), set.end(), idx);
    const bool present = it != set.end() && *it == idx;
    const bool should = inbound.gain_dbm >= floor;
    if (should && !present) {
      set.insert(it, idx);
    } else if (!should && present) {
      set.erase(it);
    }
  }
  rebuild_reachable(idx);
}

Radio* Medium::radio(NodeId id) const {
  const std::uint32_t idx = index_of(id);
  return idx == kNoIndex ? nullptr : radios_[idx];
}

std::size_t Medium::fanout_candidates(NodeId source) const {
  const std::uint32_t idx = index_of(source);
  CMAP_ASSERT(idx != kNoIndex, "unknown radio id");
  if (config_.enable_gain_cache && config_.enable_culling) {
    return reachable_[idx].size();
  }
  return radios_.size() - 1;
}

double Medium::mean_rx_power_dbm(NodeId from, NodeId to) const {
  const Radio* src = radio(from);
  const Radio* dst = radio(to);
  CMAP_ASSERT(src != nullptr && dst != nullptr, "unknown radio id");
  if (config_.enable_gain_cache && from != to) {
    return links_[index_of(from)][index_of(to)].gain_dbm;
  }
  return propagation_->rx_power_dbm(src->config().tx_power_dbm, from, to,
                                    src->position(), dst->position());
}

void Medium::deliver_one(Radio& target, const Link& link,
                         const std::shared_ptr<const Frame>& frame,
                         sim::Time now) {
  double power_dbm = link.gain_dbm;
  if (config_.fading_sigma_db > 0.0) {
    // Keyed on (frame, receiver) so the draw is independent of how many
    // other receivers were considered — the property that lets culling
    // leave every surviving delivery bit-identical.
    power_dbm +=
        rng_.substream(frame->id, target.id()).normal(0.0,
                                                      config_.fading_sigma_db);
  }
  if (power_dbm < config_.delivery_floor_dbm) return;

  Signal sig;
  sig.frame = frame;
  sig.power_mw = dbm_to_mw(power_dbm);
  sig.start = now + (config_.enable_propagation_delay ? link.delay : 0);
  sig.end = sig.start + frame->duration;
  Radio* r = &target;
  sim_.at(sig.start, [r, sig] { r->deliver(sig); });
}

void Medium::transmit(Radio& source, std::shared_ptr<const Frame> frame) {
  const sim::Time now = sim_.now();
  if (trace_.wants(trace::Category::kPhyTx)) {
    trace_.tracer->phy_tx(now, source.id(), frame->id,
                          static_cast<std::uint32_t>(frame->rate),
                          static_cast<std::uint32_t>(frame->size_bytes()),
                          frame->duration);
  }
  if (config_.enable_gain_cache) {
    const std::uint32_t si = index_of(source.id());
    CMAP_ASSERT(si != kNoIndex, "transmit from unattached radio");
    const auto& row = links_[si];
    if (config_.enable_culling) {
      for (const std::uint32_t di : reachable_[si]) {
        deliver_one(*radios_[di], row[di], frame, now);
      }
    } else {
      for (std::uint32_t di = 0; di < row.size(); ++di) {
        if (di == si) continue;
        deliver_one(*radios_[di], row[di], frame, now);
      }
    }
    return;
  }
  // Reference path: re-derive propagation per receiver on every frame.
  for (Radio* r : radios_) {
    if (r == &source) continue;
    deliver_one(*r, compute_link(source, *r), frame, now);
  }
}

}  // namespace cmap::phy
