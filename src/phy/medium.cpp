#include "phy/medium.h"

#include "phy/radio.h"
#include "phy/units.h"
#include "sim/assert.h"

namespace cmap::phy {
namespace {
constexpr double kSpeedOfLight = 2.99792458e8;
}

Medium::Medium(sim::Simulator& simulator,
               std::shared_ptr<const PropagationModel> propagation,
               MediumConfig config, sim::Rng rng)
    : sim_(simulator),
      propagation_(std::move(propagation)),
      config_(config),
      rng_(rng) {}

void Medium::attach(Radio* radio) {
  CMAP_ASSERT(radio != nullptr, "attach null radio");
  radios_.push_back(radio);
}

Radio* Medium::radio(NodeId id) const {
  for (Radio* r : radios_) {
    if (r->id() == id) return r;
  }
  return nullptr;
}

double Medium::mean_rx_power_dbm(NodeId from, NodeId to) const {
  const Radio* src = radio(from);
  const Radio* dst = radio(to);
  CMAP_ASSERT(src != nullptr && dst != nullptr, "unknown radio id");
  return propagation_->rx_power_dbm(src->config().tx_power_dbm, from, to,
                                    src->position(), dst->position());
}

void Medium::transmit(Radio& source, std::shared_ptr<const Frame> frame) {
  const sim::Time now = sim_.now();
  for (Radio* r : radios_) {
    if (r == &source) continue;
    double power_dbm = propagation_->rx_power_dbm(
        source.config().tx_power_dbm, source.id(), r->id(), source.position(),
        r->position());
    if (config_.fading_sigma_db > 0.0) {
      power_dbm += rng_.normal(0.0, config_.fading_sigma_db);
    }
    if (power_dbm < config_.delivery_floor_dbm) continue;

    sim::Time delay = 0;
    if (config_.enable_propagation_delay) {
      const double d = distance(source.position(), r->position());
      delay = static_cast<sim::Time>(d / kSpeedOfLight * 1e9);
    }
    Signal sig;
    sig.frame = frame;
    sig.power_mw = dbm_to_mw(power_dbm);
    sig.start = now + delay;
    sig.end = sig.start + frame->duration;
    sim_.at(sig.start, [r, sig] { r->deliver(sig); });
  }
}

}  // namespace cmap::phy
