#include "phy/medium.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "phy/radio.h"
#include "phy/units.h"
#include "sim/assert.h"
#include "sim/pdes.h"

namespace cmap::phy {
namespace {
// Sentinel gain for the (i, i) self pair; never clears any floor.
constexpr double kSelfGainDbm = -1e30;
// The NodeId -> index map is a flat vector sized to the largest attached
// id (O(1) lookup); cap it so a stray sparse id fails loudly instead of
// allocating gigabytes. Matches the net layer's packet-id packing bound
// (traffic.cpp packs src ids into 20 bits). 1M ids = 4 MB worst case.
constexpr phy::NodeId kMaxRadioId = 1u << 20;

// Sorted-vector helpers for the sparse rows (both row kinds are kept
// ascending by destination index).
template <typename Entry>
typename std::vector<Entry>::iterator find_dst(std::vector<Entry>& row,
                                               std::uint32_t dst) {
  return std::lower_bound(
      row.begin(), row.end(), dst,
      [](const Entry& e, std::uint32_t d) { return e.dst < d; });
}
}  // namespace

Medium::Medium(sim::Simulator& simulator,
               std::shared_ptr<const PropagationModel> propagation,
               MediumConfig config, sim::Rng rng)
    : sim_(simulator),
      propagation_(std::move(propagation)),
      config_(config),
      mode_(config.effective_mode()),
      rng_(rng) {
  if (mode_ == LinkStateMode::kSparse) {
    dyn_delta_db_ =
        propagation_->epoch_delta_bound_db(config_.cull_guard_sigmas);
    track_watch_ = dyn_delta_db_ > 0.0;
  }
}

double Medium::cull_floor_dbm() const {
  const double guard = config_.fading_sigma_db > 0.0
                           ? config_.cull_guard_sigmas * config_.fading_sigma_db
                           : 0.0;
  return config_.delivery_floor_dbm - guard;
}

Medium::Link Medium::compute_link(const Radio& src, const Radio& dst) const {
  // Every propagation-model query is a cache miss by definition: the three
  // link-state modes differ exactly in how rarely they land here.
  metrics_.inc(metrics::Counter::kPhyGainCacheMisses);
  Link link;
  link.gain_dbm =
      propagation_->rx_power_dbm(src.config().tx_power_dbm, src.id(), dst.id(),
                                 src.position(), dst.position());
  // Shared with the PDES lookahead derivation (phy/partition.h) so the
  // lookahead provably lower-bounds every link delay.
  link.delay = propagation_delay_ns(distance(src.position(), dst.position()));
  return link;
}

void Medium::set_partition_tracers(std::vector<trace::Tracer*> tracers) {
  part_tracers_ = std::move(tracers);
  part_hooks_.assign(part_tracers_.size(), trace::TraceHook{});
  for (std::size_t p = 0; p < part_tracers_.size(); ++p) {
    part_hooks_[p].bind(part_tracers_[p]);
  }
}

std::uint32_t Medium::index_of(NodeId id) const {
  if (static_cast<std::size_t>(id) >= index_by_id_.size()) return kNoIndex;
  return index_by_id_[id];
}

void Medium::attach(Radio* radio) {
  CMAP_ASSERT(radio != nullptr, "attach null radio");
  CMAP_ASSERT(radio->id() != kBroadcastId, "radio with broadcast id");
  if (radio->id() >= kMaxRadioId) {
    std::fprintf(stderr,
                 "Medium: radio id %u exceeds the %u id cap (ids index a "
                 "flat vector; renumber nodes densely)\n",
                 radio->id(), kMaxRadioId);
    CMAP_ASSERT(false, "radio ids must be small/dense (see stderr for id)");
  }
  if (static_cast<std::size_t>(radio->id()) >= index_by_id_.size()) {
    // Ids need not be contiguous — gaps just cost kNoIndex slots here.
    index_by_id_.resize(radio->id() + 1, kNoIndex);
  }
  if (index_by_id_[radio->id()] != kNoIndex) {
    std::fprintf(stderr, "Medium: duplicate radio id %u\n", radio->id());
    CMAP_ASSERT(false, "duplicate radio id (see stderr for id)");
  }
  const auto idx = static_cast<std::uint32_t>(radios_.size());
  index_by_id_[radio->id()] = idx;
  radios_.push_back(radio);

  if (mode_ == LinkStateMode::kDenseReference) return;
  if (mode_ == LinkStateMode::kSparse) {
    sparse_attach(radio, idx);
    return;
  }
  // Dense-cached: extend every existing source's row (and reachability)
  // with the new radio, then build the new radio's own row against everyone.
  const double floor = cull_floor_dbm();
  for (std::uint32_t i = 0; i < idx; ++i) {
    const Link link = compute_link(*radios_[i], *radio);
    links_[i].push_back(link);
    if (link.gain_dbm >= floor) reachable_[i].push_back(idx);
  }
  std::vector<Link> row;
  row.reserve(radios_.size());
  for (std::uint32_t j = 0; j < idx; ++j) {
    row.push_back(compute_link(*radio, *radios_[j]));
  }
  row.push_back(Link{kSelfGainDbm, 0});
  links_.push_back(std::move(row));
  reachable_.emplace_back();
  rebuild_reachable(idx);
}

void Medium::ensure_candidate_radius(double tx_power_dbm) {
  if (grid_ != nullptr && tx_power_dbm <= max_tx_power_dbm_) return;
  max_tx_power_dbm_ = tx_power_dbm;
  // One shared radius at the strongest attached transmit power: a
  // per-source radius would be tighter, but a superset of candidates only
  // costs gain computations, never correctness.
  candidate_radius_m_ = max_candidate_range_m(
      *propagation_, max_tx_power_dbm_, cull_floor_dbm(),
      config_.cull_guard_sigmas);
}

void Medium::sparse_attach(Radio* radio, std::uint32_t idx) {
  const bool first = radios_.size() == 1;
  ensure_candidate_radius(radio->config().tx_power_dbm);
  if (!grid_) {
    // Pitch ~= the candidate radius keeps queries at a 3x3 cell scan; an
    // unbounded radius (model without a range bound) degenerates to
    // full scans where pitch is irrelevant.
    const double pitch = std::isfinite(candidate_radius_m_)
                             ? std::clamp(candidate_radius_m_, 1.0, 1.0e5)
                             : 64.0;
    grid_ = std::make_unique<SpatialGrid>(pitch);
  }
  grid_->insert(idx, radio->position());
  sparse_rows_.emplace_back();
  if (track_watch_) watch_rows_.emplace_back();
  if (first) return;
  grid_->query(radio->position(), candidate_radius_m_, &scratch_);
  for (const std::uint32_t j : scratch_) {
    if (j == idx) continue;
    sparse_classify(idx, j, compute_link(*radio, *radios_[j]));
    sparse_classify(j, idx, compute_link(*radios_[j], *radio));
  }
}

void Medium::sparse_classify(std::uint32_t src, std::uint32_t dst,
                             const Link& link) {
  if (link.gain_dbm >= cull_floor_dbm()) {
    auto& row = sparse_rows_[src];
    const auto it = find_dst(row, dst);
    CMAP_ASSERT(it == row.end() || it->dst != dst, "duplicate sparse link");
    row.insert(it, SparseLink{dst, link});
  } else if (track_watch_) {
    auto& row = watch_rows_[src];
    const auto it = find_dst(row, dst);
    CMAP_ASSERT(it == row.end() || it->dst != dst, "duplicate watch entry");
    row.insert(it, WatchEntry{dst, link.gain_dbm, channel_epoch_});
  }
}

void Medium::sparse_erase(std::uint32_t src, std::uint32_t dst) {
  auto& row = sparse_rows_[src];
  const auto it = find_dst(row, dst);
  if (it != row.end() && it->dst == dst) {
    row.erase(it);
    return;
  }
  if (!track_watch_) return;
  auto& watch = watch_rows_[src];
  const auto wit = find_dst(watch, dst);
  if (wit != watch.end() && wit->dst == dst) watch.erase(wit);
}

void Medium::sparse_move(Radio& radio, std::uint32_t idx) {
  // Every source holding a link (or watch entry) for the mover computed it
  // while both endpoints sat at their current positions, so it lies within
  // the candidate radius of the mover's OLD position — which the grid
  // remembers. Strip those, re-bucket, then rebuild both directions around
  // the new position.
  const Position old_pos = grid_->position(idx);
  grid_->query(old_pos, candidate_radius_m_, &scratch_);
  for (const std::uint32_t j : scratch_) {
    if (j != idx) sparse_erase(j, idx);
  }
  grid_->move(idx, radio.position());
  sparse_rows_[idx].clear();
  if (track_watch_) watch_rows_[idx].clear();
  grid_->query(radio.position(), candidate_radius_m_, &scratch_);
  for (const std::uint32_t j : scratch_) {
    if (j == idx) continue;
    sparse_classify(idx, j, compute_link(radio, *radios_[j]));
    sparse_classify(j, idx, compute_link(*radios_[j], radio));
  }
}

void Medium::sparse_refresh() {
  ++channel_epoch_;
  const double floor = cull_floor_dbm();
  std::vector<SparseLink> new_active;
  std::vector<WatchEntry> new_watch;
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    auto& active = sparse_rows_[i];
    if (!track_watch_) {
      // Static model: gains cannot have moved, but honor refresh_all's
      // "reconcile with current answers" contract on what is materialized.
      for (auto& e : active) {
        e.link = compute_link(*radios_[i], *radios_[e.dst]);
      }
      continue;
    }
    auto& watch = watch_rows_[i];
    new_active.clear();
    new_watch.clear();
    new_active.reserve(active.size());
    new_watch.reserve(watch.size());
    const auto classify = [&](std::uint32_t dst) {
      const Link link = compute_link(*radios_[i], *radios_[dst]);
      if (link.gain_dbm >= floor) {
        new_active.push_back(SparseLink{dst, link});
      } else {
        new_watch.push_back(WatchEntry{dst, link.gain_dbm, channel_epoch_});
      }
    };
    // Merge the two dst-sorted rows: active links are always recomputed
    // (their gains back every delivery), watched links only when the
    // accumulated per-epoch delta bound says the floor is reachable.
    std::size_t a = 0, w = 0;
    while (a < active.size() || w < watch.size()) {
      const bool take_active =
          w >= watch.size() ||
          (a < active.size() && active[a].dst < watch[w].dst);
      if (take_active) {
        classify(active[a++].dst);
      } else {
        const WatchEntry& entry = watch[w++];
        const double budget =
            dyn_delta_db_ *
            static_cast<double>(channel_epoch_ - entry.checked_epoch);
        if (floor - entry.gain_dbm <= budget) {
          metrics_.inc(metrics::Counter::kPhyWatchRechecks);
          classify(entry.dst);
        } else {
          new_watch.push_back(entry);
        }
      }
    }
    active.swap(new_active);
    watch.swap(new_watch);
  }
}

void Medium::rebuild_reachable(std::uint32_t src_idx) {
  const double floor = cull_floor_dbm();
  auto& set = reachable_[src_idx];
  set.clear();
  const auto& row = links_[src_idx];
  for (std::uint32_t j = 0; j < row.size(); ++j) {
    if (j != src_idx && row[j].gain_dbm >= floor) set.push_back(j);
  }
}

void Medium::refresh_all() {
  if (mode_ == LinkStateMode::kDenseReference) return;
  metrics_dyn_.inc(metrics::Counter::kDynFullRefreshes);
  if (mode_ == LinkStateMode::kSparse) {
    sparse_refresh();
    return;
  }
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    for (std::uint32_t j = 0; j < radios_.size(); ++j) {
      if (i == j) continue;
      links_[i][j] = compute_link(*radios_[i], *radios_[j]);
    }
  }
  for (std::uint32_t i = 0; i < radios_.size(); ++i) rebuild_reachable(i);
}

void Medium::on_position_changed(Radio& radio) {
  ++position_epoch_;
  metrics_dyn_.inc(metrics::Counter::kDynMoves);
  if (mode_ == LinkStateMode::kDenseReference) return;
  const std::uint32_t idx = index_of(radio.id());
  CMAP_ASSERT(idx != kNoIndex, "position change for unattached radio");
  if (mode_ == LinkStateMode::kSparse) {
    metrics_dyn_.inc(metrics::Counter::kDynIncrementalInvalidations);
    sparse_move(radio, idx);
    return;
  }
  if (!config_.incremental_invalidation) {
    refresh_all();
    return;
  }
  metrics_dyn_.inc(metrics::Counter::kDynIncrementalInvalidations);
  const double floor = cull_floor_dbm();
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    if (i == idx) continue;
    links_[idx][i] = compute_link(radio, *radios_[i]);
    const Link inbound = compute_link(*radios_[i], radio);
    links_[i][idx] = inbound;
    // Splice `idx` in or out of source i's sorted reachability set.
    auto& set = reachable_[i];
    const auto it = std::lower_bound(set.begin(), set.end(), idx);
    const bool present = it != set.end() && *it == idx;
    const bool should = inbound.gain_dbm >= floor;
    if (should && !present) {
      set.insert(it, idx);
    } else if (!should && present) {
      set.erase(it);
    }
  }
  rebuild_reachable(idx);
}

Radio* Medium::radio(NodeId id) const {
  const std::uint32_t idx = index_of(id);
  return idx == kNoIndex ? nullptr : radios_[idx];
}

std::size_t Medium::fanout_candidates(NodeId source) const {
  const std::uint32_t idx = index_of(source);
  CMAP_ASSERT(idx != kNoIndex, "unknown radio id");
  if (mode_ == LinkStateMode::kSparse) return sparse_rows_[idx].size();
  if (mode_ == LinkStateMode::kDenseCached && config_.enable_culling) {
    return reachable_[idx].size();
  }
  return radios_.size() - 1;
}

std::size_t Medium::watch_entries() const {
  std::size_t total = 0;
  for (const auto& row : watch_rows_) total += row.size();
  return total;
}

double Medium::mean_rx_power_dbm(NodeId from, NodeId to) const {
  const Radio* src = radio(from);
  const Radio* dst = radio(to);
  CMAP_ASSERT(src != nullptr && dst != nullptr, "unknown radio id");
  if (mode_ == LinkStateMode::kDenseCached && from != to) {
    return links_[index_of(from)][index_of(to)].gain_dbm;
  }
  if (mode_ == LinkStateMode::kSparse && from != to) {
    const auto& row = sparse_rows_[index_of(from)];
    const std::uint32_t di = index_of(to);
    const auto it = std::lower_bound(
        row.begin(), row.end(), di,
        [](const SparseLink& e, std::uint32_t d) { return e.dst < d; });
    if (it != row.end() && it->dst == di) return it->link.gain_dbm;
    // Not materialized (below the cull floor): the model's current answer
    // is exactly what the dense cache would hold.
  }
  return propagation_->rx_power_dbm(src->config().tx_power_dbm, from, to,
                                    src->position(), dst->position());
}

void Medium::deliver_one(Radio& target, const Link& link,
                         const std::shared_ptr<const Frame>& frame,
                         sim::Time now) {
  double power_dbm = link.gain_dbm;
  if (config_.fading_sigma_db > 0.0) {
    // Keyed on (frame, receiver) so the draw is independent of how many
    // other receivers were considered — the property that lets culling
    // leave every surviving delivery bit-identical.
    power_dbm +=
        rng_.substream(frame->id, target.id()).normal(0.0,
                                                      config_.fading_sigma_db);
  }
  if (power_dbm < config_.delivery_floor_dbm) {
    metrics_.inc(metrics::Counter::kPhyFloorDrops);
    return;
  }
  metrics_.inc(metrics::Counter::kPhyDeliveries);

  Signal sig;
  sig.frame = frame;
  sig.power_mw = dbm_to_mw(power_dbm);
  sig.start = now + (config_.enable_propagation_delay ? link.delay : 0);
  sig.end = sig.start + frame->duration;
  Radio* r = &target;
  // Ranked on (frame id, receiver id) — both intrinsic to the delivery —
  // so same-tick arrivals order identically whether this run is serial or
  // partitioned, and whichever route (direct or mailbox) a PDES delivery
  // takes.
  if (engine_ == nullptr) {
    sim_.at_ranked(sig.start, sim::delivery_rank(frame->id, target.id()),
                   [r, sig] { r->deliver(sig); });
    return;
  }
  engine_->schedule_delivery(partition_of(frame->tx_node),
                             partition_of(target.id()), sig.start, frame->id,
                             target.id(), [r, sig] { r->deliver(sig); });
}

void Medium::transmit(Radio& source, std::shared_ptr<const Frame> frame) {
  // The transmit instant is the *source's* clock: under PDES each radio
  // lives on its partition's simulator, and the medium's own handle is the
  // global sequencer whose clock lags inside a parallel window.
  const sim::Time now = source.simulator().now();
  const trace::TraceHook& hook =
      engine_ != nullptr && !part_hooks_.empty()
          ? part_hooks_[static_cast<std::size_t>(partition_of(source.id()))]
          : trace_;
  if (hook.wants(trace::Category::kPhyTx)) {
    hook.tracer->phy_tx(now, source.id(), frame->id,
                        static_cast<std::uint32_t>(frame->rate),
                        static_cast<std::uint32_t>(frame->size_bytes()),
                        frame->duration);
  }
  if (metrics_.on()) {
    metrics_.inc(metrics::Counter::kPhyTransmits);
    if (mode_ != LinkStateMode::kDenseReference) {
      // Cached modes serve the whole fan-out from stored rows; everyone
      // outside the row was culled. The reference mode's per-receiver
      // recomputes land in kPhyGainCacheMisses via compute_link.
      const std::size_t candidates = fanout_candidates(source.id());
      metrics_.add(metrics::Counter::kPhyGainCacheHits, candidates);
      metrics_.add(metrics::Counter::kPhyCulledReceivers,
                   radios_.size() - 1 - candidates);
    }
  }
  if (mode_ == LinkStateMode::kSparse) {
    const std::uint32_t si = index_of(source.id());
    CMAP_ASSERT(si != kNoIndex, "transmit from unattached radio");
    // Sparse rows are dst-index-sorted: deliveries land in the same order
    // the dense reachability sets produce.
    for (const SparseLink& e : sparse_rows_[si]) {
      deliver_one(*radios_[e.dst], e.link, frame, now);
    }
    return;
  }
  if (mode_ == LinkStateMode::kDenseCached) {
    const std::uint32_t si = index_of(source.id());
    CMAP_ASSERT(si != kNoIndex, "transmit from unattached radio");
    const auto& row = links_[si];
    if (config_.enable_culling) {
      for (const std::uint32_t di : reachable_[si]) {
        deliver_one(*radios_[di], row[di], frame, now);
      }
    } else {
      for (std::uint32_t di = 0; di < row.size(); ++di) {
        if (di == si) continue;
        deliver_one(*radios_[di], row[di], frame, now);
      }
    }
    return;
  }
  // Reference path: re-derive propagation per receiver on every frame.
  for (Radio* r : radios_) {
    if (r == &source) continue;
    deliver_one(*r, compute_link(source, *r), frame, now);
  }
}

}  // namespace cmap::phy
