// The shared wireless medium: fans a transmission out to every attached
// radio whose received power clears the delivery floor, applying
// propagation loss, per-delivery fading and propagation delay.
//
// Fast path (on by default): mean link gains and propagation delays are
// cached per ordered radio pair at attach time (invalidated through
// Radio::set_position), and each source keeps a *reachability set* of the
// radios whose mean gain could plausibly clear the delivery floor, so
// transmit() iterates only those instead of all N radios. Per-delivery
// fading is drawn from a substream keyed on (frame id, receiver id) rather
// than a shared sequential stream, so culling a hopeless receiver cannot
// perturb any other delivery's randomness — with fading disabled the fast
// path is exactly the brute-force path; with fading enabled it may differ
// only when a fade exceeds the guard band (cull_guard_sigmas sigmas,
// probability ~1e-9 at the default 6).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/frame.h"
#include "phy/propagation.h"
#include "phy/types.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace cmap::phy {

class Radio;

struct MediumConfig {
  // Deliveries below this mean power are dropped: they would change any
  // SINR by < ~0.5 dB but cost events. 10 dB under the default noise floor.
  double delivery_floor_dbm = -104.0;
  // Per-delivery lognormal fading (temporal channel variation); this is
  // what widens the PRR transition band into the testbed's "12% of links
  // in (0.1, 1)" middle class.
  double fading_sigma_db = 2.0;
  bool enable_propagation_delay = true;
  // ---- Fast-path knobs ----
  // Precompute mean gain + propagation delay per ordered attached pair.
  // Off: every transmit re-queries the PropagationModel (the reference
  // path the golden tests compare against).
  bool enable_gain_cache = true;
  // Skip receivers whose cached mean gain is below delivery_floor_dbm
  // minus the fading guard band. Requires the gain cache; ignored (full
  // fan-out) when enable_gain_cache is off.
  bool enable_culling = true;
  // Guard band in units of fading_sigma_db: a culled receiver would need a
  // fade this many sigmas above the mean to have cleared the floor. With
  // fading_sigma_db == 0 culling is exact.
  double cull_guard_sigmas = 6.0;
  // On a position change, recompute only the mover's gain-cache row and
  // column and splice it in or out of the other sources' reachability sets
  // — O(n) per move. Off: every move rebuilds the whole cache (O(n^2), the
  // reference oracle the golden test pins the incremental path against).
  // Irrelevant when enable_gain_cache is off.
  bool incremental_invalidation = true;

  bool operator==(const MediumConfig&) const = default;
};

class Medium {
 public:
  Medium(sim::Simulator& simulator,
         std::shared_ptr<const PropagationModel> propagation,
         MediumConfig config, sim::Rng rng);

  /// Register a radio (called by the Radio constructor). Ids must be
  /// unique per medium and small/dense (< 2^20, the same bound the net
  /// layer's packet-id packing imposes): the id index is a flat vector
  /// sized to the largest attached id.
  void attach(Radio* radio);

  /// Re-cache `radio`'s link gains and reachability after a position
  /// change (called by Radio::set_position). Incremental (row/column
  /// splice) or full rebuild per config().incremental_invalidation.
  void on_position_changed(Radio& radio);

  /// Recompute every cached link gain and reachability set against the
  /// propagation model's *current* answers. This is the full O(n^2)
  /// rebuild: the right tool when the whole channel moved (a dynamics
  /// epoch step re-shadowing every link at once), and the reference oracle
  /// a single node's incremental invalidation is golden-tested against.
  void refresh_all();

  /// Fan `frame` out from `source` to all other attached radios.
  void transmit(Radio& source, std::shared_ptr<const Frame> frame);

  /// Mean (unfaded) received power from `from` to `to`, for link
  /// measurement and topology classification.
  double mean_rx_power_dbm(NodeId from, NodeId to) const;

  std::uint64_t next_frame_id() { return ++frame_id_; }

  /// Attach (or detach, with nullptr) the run's Tracer. The medium is the
  /// natural anchor: every instrumented component already reaches it
  /// (radios attach to it, MACs own a radio, dynamics hold a reference),
  /// so each binds its own cached-mask TraceHook from here. Call before
  /// radios are attached — Radio binds in its constructor.
  void set_tracer(trace::Tracer* tracer) { trace_.bind(tracer); }
  trace::Tracer* tracer() const { return trace_.tracer; }

  sim::Simulator& simulator() { return sim_; }
  const MediumConfig& config() const { return config_; }
  const PropagationModel& propagation() const { return *propagation_; }
  const std::vector<Radio*>& radios() const { return radios_; }
  Radio* radio(NodeId id) const;

  /// Number of receivers transmit() would consider for `source` — the
  /// reachability-set size under culling, else every other radio.
  /// Observability for tests and benchmarks.
  std::size_t fanout_candidates(NodeId source) const;

 private:
  struct Link {
    double gain_dbm = 0.0;
    sim::Time delay = 0;  // propagation delay, ns
  };
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  Link compute_link(const Radio& src, const Radio& dst) const;
  void deliver_one(Radio& target, const Link& link,
                   const std::shared_ptr<const Frame>& frame, sim::Time now);
  void rebuild_reachable(std::uint32_t src_idx);
  std::uint32_t index_of(NodeId id) const;
  double cull_floor_dbm() const;

  sim::Simulator& sim_;
  std::shared_ptr<const PropagationModel> propagation_;
  MediumConfig config_;
  trace::TraceHook trace_;
  sim::Rng rng_;  // seed material for per-(frame, receiver) fading draws
  std::vector<Radio*> radios_;
  std::vector<std::uint32_t> index_by_id_;       // NodeId -> attach index
  std::vector<std::vector<Link>> links_;         // [src idx][dst idx]
  std::vector<std::vector<std::uint32_t>> reachable_;  // sorted dst indices
  std::uint64_t frame_id_ = 0;
};

}  // namespace cmap::phy
