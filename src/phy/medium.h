// The shared wireless medium: fans a transmission out to every attached
// radio whose received power clears the delivery floor, applying
// propagation loss, per-delivery fading and propagation delay.
//
// Link state comes in three representations (MediumConfig::link_state):
//
//  - kDenseReference: no caching; every transmit re-queries the
//    PropagationModel per receiver. The oracle everything else is
//    golden-tested against.
//  - kDenseCached (default): mean link gains and propagation delays cached
//    per ordered radio pair (O(n^2) memory), and each source keeps a
//    *reachability set* of radios whose mean gain could plausibly clear
//    the delivery floor, so transmit() iterates only those.
//  - kSparse: nothing O(n^2) ever materializes. A uniform-grid spatial
//    index over radio positions supplies candidate neighbors within the
//    propagation model's guard-banded range bound
//    (PropagationModel::rx_power_bound_dbm); each source stores only the
//    sorted sparse list of links whose mean gain clears the cull floor
//    (delivery floor minus the fading guard band) — the same membership
//    rule as the dense reachability sets, so deliveries are identical.
//    Below-floor candidates go on a per-source *watch list* only when the
//    model is time-varying (epoch_delta_bound_db > 0); refresh_all() then
//    re-checks a watched link only once the accumulated per-epoch AR(1)
//    delta bound says it could have crossed the floor.
//
// Per-delivery fading is drawn from a substream keyed on (frame id,
// receiver id) rather than a shared sequential stream, so culling a
// hopeless receiver cannot perturb any other delivery's randomness — with
// fading disabled the culled paths are exactly the brute-force path; with
// fading enabled they may differ only when a fade exceeds the guard band
// (cull_guard_sigmas sigmas, probability ~1e-9 at the default 6).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "metrics/metrics.h"
#include "phy/frame.h"
#include "phy/partition.h"
#include "phy/propagation.h"
#include "phy/spatial_index.h"
#include "phy/types.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace cmap::sim {
class PdesEngine;
}  // namespace cmap::sim

namespace cmap::phy {

class Radio;

/// How the medium stores pair state. See the file comment for semantics.
enum class LinkStateMode {
  kDenseReference,
  kDenseCached,
  kSparse,
};

struct MediumConfig {
  // Deliveries below this mean power are dropped: they would change any
  // SINR by < ~0.5 dB but cost events. 10 dB under the default noise floor.
  double delivery_floor_dbm = -104.0;
  // Per-delivery lognormal fading (temporal channel variation); this is
  // what widens the PRR transition band into the testbed's "12% of links
  // in (0.1, 1)" middle class.
  double fading_sigma_db = 2.0;
  bool enable_propagation_delay = true;
  // ---- Link-state representation ----
  LinkStateMode link_state = LinkStateMode::kDenseCached;
  // Guard band in units of fading_sigma_db: a culled receiver would need a
  // fade this many sigmas above the mean to have cleared the floor. Also
  // the confidence (in component sigmas) handed to the propagation model's
  // range and epoch-delta bounds in kSparse mode. With fading_sigma_db ==
  // 0 fading-culling is exact.
  double cull_guard_sigmas = 6.0;
  // ---- Deprecated shims (the pre-LinkStateMode bool API) ----
  // Honored by effective_mode() so existing call sites compile and behave
  // unchanged; new code should set link_state instead.
  // enable_gain_cache == false overrides link_state with kDenseReference.
  bool enable_gain_cache = true;
  // Within kDenseCached only: skip receivers outside the reachability set
  // (off: cached full fan-out), and splice rows incrementally on a move
  // (off: every move rebuilds the whole cache — the reference oracle the
  // incremental path is golden-tested against). kSparse ignores both.
  bool enable_culling = true;
  bool incremental_invalidation = true;

  /// The representation the medium will actually run, with the deprecated
  /// bools folded in: an explicit kSparse always wins; otherwise
  /// enable_gain_cache == false downgrades to kDenseReference.
  LinkStateMode effective_mode() const {
    if (link_state == LinkStateMode::kSparse) return LinkStateMode::kSparse;
    if (!enable_gain_cache) return LinkStateMode::kDenseReference;
    return link_state;
  }

  bool operator==(const MediumConfig&) const = default;
};

class Medium {
 public:
  Medium(sim::Simulator& simulator,
         std::shared_ptr<const PropagationModel> propagation,
         MediumConfig config, sim::Rng rng);

  /// Register a radio (called by the Radio constructor). Ids must be
  /// unique per medium and small/dense (< 2^20, the same bound the net
  /// layer's packet-id packing imposes): the id index is a flat vector
  /// sized to the largest attached id. Violations abort loudly with the
  /// offending id.
  void attach(Radio* radio);

  /// Re-cache `radio`'s link gains and reachability after a position
  /// change (called by Radio::set_position). Dense-cached: incremental
  /// row/column splice or full rebuild per config().incremental_invalidation.
  /// Sparse: the spatial grid remembers the old position, so only the two
  /// candidate neighborhoods (old and new) are touched.
  void on_position_changed(Radio& radio);

  /// Reconcile cached link state with the propagation model's *current*
  /// answers. Dense-cached: the full O(n^2) rebuild — the right tool when
  /// the whole channel moved (a dynamics epoch step re-shadowing every
  /// link at once), and the reference oracle a single node's incremental
  /// invalidation is golden-tested against. Sparse: counts one channel
  /// epoch, recomputes every materialized (above-floor) link, and promotes
  /// watched below-floor links only once their accumulated epoch-delta
  /// bound says they could have crossed — so a time-varying model must
  /// report a sound epoch_delta_bound_db.
  void refresh_all();

  /// Fan `frame` out from `source` to all other attached radios.
  void transmit(Radio& source, std::shared_ptr<const Frame> frame);

  /// Mean (unfaded) received power from `from` to `to`, for link
  /// measurement and topology classification. In kSparse mode a
  /// non-materialized (below-floor) pair is answered by querying the
  /// propagation model directly — the same value the dense cache holds.
  double mean_rx_power_dbm(NodeId from, NodeId to) const;

  /// Attach (or detach, with nullptr) the run's Tracer. The medium is the
  /// natural anchor: every instrumented component already reaches it
  /// (radios attach to it, MACs own a radio, dynamics hold a reference),
  /// so each binds its own cached-mask TraceHook from here. Call before
  /// radios are attached — Radio binds in its constructor.
  void set_tracer(trace::Tracer* tracer) { trace_.bind(tracer); }
  trace::Tracer* tracer() const { return trace_.tracer; }

  /// Attach (or detach, with nullptr) the run's metrics Registry. Same
  /// anchor role as set_tracer: call before radios attach — every
  /// instrumented component binds its own cached MetricsHook from here.
  /// Unlike tracers the registry is not per-partition: its slots are
  /// commutative relaxed atomics, safe to share across PDES workers.
  void set_metrics(metrics::Registry* registry) {
    metrics_.bind(registry, metrics::Domain::kPhy);
    metrics_dyn_.bind(registry, metrics::Domain::kDynamics);
  }
  metrics::Registry* metrics() const { return metrics_.registry; }

  /// Route deliveries through a PDES engine (testbed::World installs this
  /// before any radio attaches; both pointers must outlive the medium or
  /// be cleared). `plan` maps NodeId -> partition. nullptr restores the
  /// serial path.
  void set_pdes(sim::PdesEngine* engine, const PartitionPlan* plan) {
    engine_ = engine;
    plan_ = engine != nullptr ? plan : nullptr;
  }
  /// The partition `id`'s events run in (0 when serial).
  int partition_of(NodeId id) const {
    return plan_ != nullptr ? plan_->partition_of(id) : 0;
  }

  /// Per-partition trace streams (parallel to the engine's partitions).
  /// Components of a node bind tracer_for(id): the node's partition stream
  /// under PDES, else the run tracer. Install before radios attach.
  void set_partition_tracers(std::vector<trace::Tracer*> tracers);
  trace::Tracer* tracer_for(NodeId id) const {
    if (plan_ == nullptr || part_tracers_.empty()) return trace_.tracer;
    return part_tracers_[static_cast<std::size_t>(partition_of(id))];
  }

  /// Monotone count of radio position changes; the World's PDES lookahead
  /// refresh uses it to skip recomputing the delay matrix when no node
  /// moved since the last global barrier.
  std::uint64_t position_epoch() const { return position_epoch_; }

  sim::Simulator& simulator() { return sim_; }
  const MediumConfig& config() const { return config_; }
  const PropagationModel& propagation() const { return *propagation_; }
  const std::vector<Radio*>& radios() const { return radios_; }
  Radio* radio(NodeId id) const;

  /// Number of receivers transmit() would consider for `source` — the
  /// reachability-set / sparse-row size under culling, else every other
  /// radio. Observability for tests and benchmarks.
  std::size_t fanout_candidates(NodeId source) const;

  /// kSparse observability: the grid-derived candidate radius (m) and the
  /// total below-floor links currently on watch lists.
  double candidate_radius_m() const { return candidate_radius_m_; }
  std::size_t watch_entries() const;

 private:
  struct Link {
    double gain_dbm = 0.0;
    sim::Time delay = 0;  // propagation delay, ns
  };
  // kSparse per-source entries, both kept sorted by destination index so
  // transmit() visits receivers in exactly the dense paths' order.
  struct SparseLink {
    std::uint32_t dst = 0;
    Link link;
  };
  struct WatchEntry {
    std::uint32_t dst = 0;
    double gain_dbm = 0.0;            // at the last evaluation
    std::uint64_t checked_epoch = 0;  // refresh_all count at that time
  };
  static constexpr std::uint32_t kNoIndex = 0xffffffffu;

  Link compute_link(const Radio& src, const Radio& dst) const;
  void deliver_one(Radio& target, const Link& link,
                   const std::shared_ptr<const Frame>& frame, sim::Time now);
  void rebuild_reachable(std::uint32_t src_idx);
  std::uint32_t index_of(NodeId id) const;
  double cull_floor_dbm() const;

  // ---- kSparse internals ----
  void ensure_candidate_radius(double tx_power_dbm);
  void sparse_attach(Radio* radio, std::uint32_t idx);
  void sparse_move(Radio& radio, std::uint32_t idx);
  void sparse_refresh();
  /// File the (src -> dst) link into src's active row or watch list.
  void sparse_classify(std::uint32_t src, std::uint32_t dst, const Link& link);
  /// Drop dst from src's active row or watch list (no-op when absent).
  void sparse_erase(std::uint32_t src, std::uint32_t dst);

  sim::Simulator& sim_;
  std::shared_ptr<const PropagationModel> propagation_;
  MediumConfig config_;
  LinkStateMode mode_;
  trace::TraceHook trace_;
  metrics::MetricsHook metrics_;      // Domain::kPhy counters
  metrics::MetricsHook metrics_dyn_;  // move/invalidation counters
  sim::Rng rng_;  // seed material for per-(frame, receiver) fading draws
  std::vector<Radio*> radios_;
  std::vector<std::uint32_t> index_by_id_;       // NodeId -> attach index
  // kDenseCached state.
  std::vector<std::vector<Link>> links_;         // [src idx][dst idx]
  std::vector<std::vector<std::uint32_t>> reachable_;  // sorted dst indices
  // kSparse state.
  std::unique_ptr<SpatialGrid> grid_;
  std::vector<std::vector<SparseLink>> sparse_rows_;
  std::vector<std::vector<WatchEntry>> watch_rows_;
  std::vector<std::uint32_t> scratch_;  // candidate-query reuse buffer
  double max_tx_power_dbm_ = 0.0;       // valid once any radio attached
  double candidate_radius_m_ = 0.0;
  double dyn_delta_db_ = 0.0;  // model's per-epoch bound; 0 = static
  bool track_watch_ = false;   // dyn_delta_db_ > 0: keep below-floor lists
  std::uint64_t channel_epoch_ = 0;
  // ---- PDES routing (null/empty on the serial path) ----
  sim::PdesEngine* engine_ = nullptr;
  const PartitionPlan* plan_ = nullptr;
  std::vector<trace::Tracer*> part_tracers_;
  std::vector<trace::TraceHook> part_hooks_;  // transmit()'s phy_tx records
  std::uint64_t position_epoch_ = 0;
};

}  // namespace cmap::phy
