// The shared wireless medium: fans a transmission out to every attached
// radio whose mean received power clears the delivery floor, applying
// propagation loss, per-delivery fading and propagation delay.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/frame.h"
#include "phy/propagation.h"
#include "phy/types.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace cmap::phy {

class Radio;

struct MediumConfig {
  // Deliveries below this mean power are dropped: they would change any
  // SINR by < ~0.5 dB but cost events. 10 dB under the default noise floor.
  double delivery_floor_dbm = -104.0;
  // Per-delivery lognormal fading (temporal channel variation); this is
  // what widens the PRR transition band into the testbed's "12% of links
  // in (0.1, 1)" middle class.
  double fading_sigma_db = 2.0;
  bool enable_propagation_delay = true;
};

class Medium {
 public:
  Medium(sim::Simulator& simulator,
         std::shared_ptr<const PropagationModel> propagation,
         MediumConfig config, sim::Rng rng);

  /// Register a radio (called by the Radio constructor).
  void attach(Radio* radio);

  /// Fan `frame` out from `source` to all other attached radios.
  void transmit(Radio& source, std::shared_ptr<const Frame> frame);

  /// Mean (unfaded) received power from `from` to `to`, for link
  /// measurement and topology classification.
  double mean_rx_power_dbm(NodeId from, NodeId to) const;

  std::uint64_t next_frame_id() { return ++frame_id_; }

  sim::Simulator& simulator() { return sim_; }
  const MediumConfig& config() const { return config_; }
  const PropagationModel& propagation() const { return *propagation_; }
  const std::vector<Radio*>& radios() const { return radios_; }
  Radio* radio(NodeId id) const;

 private:
  sim::Simulator& sim_;
  std::shared_ptr<const PropagationModel> propagation_;
  MediumConfig config_;
  sim::Rng rng_;
  std::vector<Radio*> radios_;
  std::uint64_t frame_id_ = 0;
};

}  // namespace cmap::phy
