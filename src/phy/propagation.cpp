#include "phy/propagation.h"

#include <algorithm>
#include <cmath>

namespace cmap::phy {
namespace {

constexpr double kSpeedOfLight = 2.99792458e8;

double friis_ref_loss_db(double frequency_hz) {
  const double wavelength = kSpeedOfLight / frequency_hz;
  return 20.0 * std::log10(4.0 * M_PI / wavelength);  // loss at 1 m
}

// SplitMix64-style avalanche for deterministic shadowing draws.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Standard normal from a 64-bit hash value (two uniforms, Box-Muller).
double hash_normal(std::uint64_t h) {
  const double u1 =
      (static_cast<double>(mix(h) >> 11) + 0.5) * 0x1.0p-53;  // (0,1)
  const double u2 = static_cast<double>(mix(h ^ 0xabcdef12345ull) >> 11) *
                    0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

FriisPropagation::FriisPropagation(double frequency_hz)
    : ref_loss_db_(friis_ref_loss_db(frequency_hz)) {}

double FriisPropagation::rx_power_dbm(double tx_power_dbm, NodeId /*from*/,
                                      NodeId /*to*/, const Position& from_pos,
                                      const Position& to_pos) const {
  const double d = std::max(1.0, distance(from_pos, to_pos));
  return tx_power_dbm - ref_loss_db_ - 20.0 * std::log10(d);
}

LogDistanceShadowing::LogDistanceShadowing(LogDistanceConfig config)
    : config_(config), ref_loss_db_(friis_ref_loss_db(config.frequency_hz)) {}

double LogDistanceShadowing::shadow_db(NodeId from, NodeId to) const {
  const NodeId lo = std::min(from, to);
  const NodeId hi = std::max(from, to);
  const std::uint64_t pair_key =
      config_.seed ^ (static_cast<std::uint64_t>(lo) << 32 | hi);
  const std::uint64_t dir_key =
      config_.seed ^ (static_cast<std::uint64_t>(from) << 32 | to) ^
      0x5bf03635u;
  return config_.shadow_sigma_db * hash_normal(pair_key) +
         config_.asym_sigma_db * hash_normal(dir_key);
}

double LogDistanceShadowing::rx_power_dbm(double tx_power_dbm, NodeId from,
                                          NodeId to, const Position& from_pos,
                                          const Position& to_pos) const {
  const double d = std::max(1.0, distance(from_pos, to_pos));
  const double path_loss =
      ref_loss_db_ + 10.0 * config_.exponent * std::log10(d);
  return tx_power_dbm - path_loss + shadow_db(from, to);
}

}  // namespace cmap::phy
