#include "phy/propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/random.h"

namespace cmap::phy {
namespace {

constexpr double kSpeedOfLight = 2.99792458e8;

double friis_ref_loss_db(double frequency_hz) {
  const double wavelength = kSpeedOfLight / frequency_hz;
  return 20.0 * std::log10(4.0 * M_PI / wavelength);  // loss at 1 m
}

}  // namespace

double max_candidate_range_m(const PropagationModel& model,
                             double tx_power_dbm, double min_rx_dbm,
                             double guard_sigmas) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // ~3x Earth's circumference: any model still clearing the floor out
  // here is effectively unbounded for our purposes.
  constexpr double kMaxRange = 1.0e8;
  const auto bound = [&](double d) {
    return model.rx_power_bound_dbm(tx_power_dbm, d, guard_sigmas);
  };
  if (bound(kMaxRange) >= min_rx_dbm) return kInf;  // also the default +inf
  if (bound(1.0) < min_rx_dbm) return 0.0;
  double lo = 1.0, hi = kMaxRange;  // bound(lo) >= floor > bound(hi)
  for (int it = 0; it < 200 && hi - lo > 1e-6 * hi; ++it) {
    const double mid = 0.5 * (lo + hi);
    (bound(mid) >= min_rx_dbm ? lo : hi) = mid;
  }
  // Conservative margin: a too-large radius only adds candidates.
  return hi * (1.0 + 1e-9) + 1e-6;
}

FriisPropagation::FriisPropagation(double frequency_hz)
    : ref_loss_db_(friis_ref_loss_db(frequency_hz)) {}

double FriisPropagation::rx_power_dbm(double tx_power_dbm, NodeId /*from*/,
                                      NodeId /*to*/, const Position& from_pos,
                                      const Position& to_pos) const {
  const double d = std::max(1.0, distance(from_pos, to_pos));
  return tx_power_dbm - ref_loss_db_ - 20.0 * std::log10(d);
}

double FriisPropagation::rx_power_bound_dbm(double tx_power_dbm,
                                            double distance_m,
                                            double /*guard_sigmas*/) const {
  const double d = std::max(1.0, distance_m);  // same clamp as rx_power_dbm
  return tx_power_dbm - ref_loss_db_ - 20.0 * std::log10(d);
}

LogDistanceShadowing::LogDistanceShadowing(LogDistanceConfig config)
    : config_(config), ref_loss_db_(friis_ref_loss_db(config.frequency_hz)) {}

double LogDistanceShadowing::shadow_db(NodeId from, NodeId to) const {
  const NodeId lo = std::min(from, to);
  const NodeId hi = std::max(from, to);
  const std::uint64_t pair_key =
      config_.seed ^ (static_cast<std::uint64_t>(lo) << 32 | hi);
  const std::uint64_t dir_key =
      config_.seed ^ (static_cast<std::uint64_t>(from) << 32 | to) ^
      0x5bf03635u;
  return config_.shadow_sigma_db * sim::hash_normal(pair_key) +
         config_.asym_sigma_db * sim::hash_normal(dir_key);
}

double LogDistanceShadowing::rx_power_dbm(double tx_power_dbm, NodeId from,
                                          NodeId to, const Position& from_pos,
                                          const Position& to_pos) const {
  const double d = std::max(1.0, distance(from_pos, to_pos));
  const double path_loss =
      ref_loss_db_ + 10.0 * config_.exponent * std::log10(d);
  return tx_power_dbm - path_loss + shadow_db(from, to);
}

double LogDistanceShadowing::rx_power_bound_dbm(double tx_power_dbm,
                                                double distance_m,
                                                double guard_sigmas) const {
  const double d = std::max(1.0, distance_m);  // same clamp as rx_power_dbm
  const double path_loss =
      ref_loss_db_ + 10.0 * config_.exponent * std::log10(d);
  return tx_power_dbm - path_loss +
         guard_sigmas * (config_.shadow_sigma_db + config_.asym_sigma_db);
}

}  // namespace cmap::phy
