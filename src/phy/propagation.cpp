#include "phy/propagation.h"

#include <algorithm>
#include <cmath>

#include "sim/random.h"

namespace cmap::phy {
namespace {

constexpr double kSpeedOfLight = 2.99792458e8;

double friis_ref_loss_db(double frequency_hz) {
  const double wavelength = kSpeedOfLight / frequency_hz;
  return 20.0 * std::log10(4.0 * M_PI / wavelength);  // loss at 1 m
}

}  // namespace

FriisPropagation::FriisPropagation(double frequency_hz)
    : ref_loss_db_(friis_ref_loss_db(frequency_hz)) {}

double FriisPropagation::rx_power_dbm(double tx_power_dbm, NodeId /*from*/,
                                      NodeId /*to*/, const Position& from_pos,
                                      const Position& to_pos) const {
  const double d = std::max(1.0, distance(from_pos, to_pos));
  return tx_power_dbm - ref_loss_db_ - 20.0 * std::log10(d);
}

LogDistanceShadowing::LogDistanceShadowing(LogDistanceConfig config)
    : config_(config), ref_loss_db_(friis_ref_loss_db(config.frequency_hz)) {}

double LogDistanceShadowing::shadow_db(NodeId from, NodeId to) const {
  const NodeId lo = std::min(from, to);
  const NodeId hi = std::max(from, to);
  const std::uint64_t pair_key =
      config_.seed ^ (static_cast<std::uint64_t>(lo) << 32 | hi);
  const std::uint64_t dir_key =
      config_.seed ^ (static_cast<std::uint64_t>(from) << 32 | to) ^
      0x5bf03635u;
  return config_.shadow_sigma_db * sim::hash_normal(pair_key) +
         config_.asym_sigma_db * sim::hash_normal(dir_key);
}

double LogDistanceShadowing::rx_power_dbm(double tx_power_dbm, NodeId from,
                                          NodeId to, const Position& from_pos,
                                          const Position& to_pos) const {
  const double d = std::max(1.0, distance(from_pos, to_pos));
  const double path_loss =
      ref_loss_db_ + 10.0 * config_.exponent * std::log10(d);
  return tx_power_dbm - path_loss + shadow_db(from, to);
}

}  // namespace cmap::phy
