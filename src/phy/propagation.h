// Propagation models: mean received power between two nodes. The testbed
// substitute is log-distance path loss plus deterministic per-pair
// lognormal shadowing; shadowing is what creates the irregular
// exposed/hidden geometry the paper exploits (a pure disk model has none).
#pragma once

#include <cstdint>

#include "phy/types.h"

namespace cmap::phy {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Mean received power in dBm at node `to` for a transmission from node
  /// `from` at `tx_power_dbm`. Node ids allow per-pair shadowing.
  virtual double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                              const Position& from_pos,
                              const Position& to_pos) const = 0;
};

/// Free-space (Friis) propagation; mostly for unit tests and controlled
/// topologies.
class FriisPropagation final : public PropagationModel {
 public:
  explicit FriisPropagation(double frequency_hz = 5.18e9);
  double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                      const Position& from_pos,
                      const Position& to_pos) const override;

 private:
  double ref_loss_db_;  // path loss at 1 m
};

struct LogDistanceConfig {
  double frequency_hz = 5.18e9;   // 802.11a channel 36 region
  double exponent = 4.0;          // indoor office with walls
  double shadow_sigma_db = 8.0;   // per unordered pair, symmetric
  double asym_sigma_db = 2.0;     // extra per ordered pair (link asymmetry)
  std::uint64_t seed = 1;         // shadowing realization

  bool operator==(const LogDistanceConfig&) const = default;
};

/// Log-distance path loss with deterministic per-pair shadowing: the same
/// (seed, i, j) always yields the same loss, so "the building" is fixed
/// across runs and MAC schemes see identical channels.
class LogDistanceShadowing final : public PropagationModel {
 public:
  explicit LogDistanceShadowing(LogDistanceConfig config = {});
  double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                      const Position& from_pos,
                      const Position& to_pos) const override;

  const LogDistanceConfig& config() const { return config_; }

 private:
  double shadow_db(NodeId from, NodeId to) const;

  LogDistanceConfig config_;
  double ref_loss_db_;
};

}  // namespace cmap::phy
