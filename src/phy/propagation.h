// Propagation models: mean received power between two nodes. The testbed
// substitute is log-distance path loss plus deterministic per-pair
// lognormal shadowing; shadowing is what creates the irregular
// exposed/hidden geometry the paper exploits (a pure disk model has none).
#pragma once

#include <cstdint>
#include <limits>

#include "phy/types.h"

namespace cmap::phy {

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Mean received power in dBm at node `to` for a transmission from node
  /// `from` at `tx_power_dbm`. Node ids allow per-pair shadowing.
  virtual double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                              const Position& from_pos,
                              const Position& to_pos) const = 0;

  // ---- Sparse link-state support ----

  /// Upper bound (dBm) on rx_power_dbm() between ANY pair of nodes
  /// separated by `distance_m`, letting each of the model's random
  /// per-pair components (shadowing, dynamic offsets) conspire up to
  /// `guard_sigmas` standard deviations above its mean. The sparse link
  /// state culls candidate pairs by distance through this bound, so it
  /// must be non-increasing in distance and clamp distance the same way
  /// rx_power_dbm() does. The default (+infinity) says "this model cannot
  /// bound itself": sparse candidate queries then degrade to all-pairs —
  /// still correct, just not sparse.
  virtual double rx_power_bound_dbm(double /*tx_power_dbm*/,
                                    double /*distance_m*/,
                                    double /*guard_sigmas*/) const {
    return std::numeric_limits<double>::infinity();
  }

  /// Upper bound (dB) on how much any single link's rx power can move
  /// across ONE channel-epoch advance, again at `guard_sigmas` confidence.
  /// Static models return 0 (their answers never change between position
  /// updates); time-varying wrappers (dynamics::DynamicShadowing) return
  /// their per-epoch AR(1) step bound. The sparse Medium uses this to
  /// schedule below-floor links for re-check only once the accumulated
  /// bound says they could have crossed the floor.
  virtual double epoch_delta_bound_db(double /*guard_sigmas*/) const {
    return 0.0;
  }
};

/// Largest distance (m) at which `model.rx_power_bound_dbm(tx_power_dbm,
/// d, guard_sigmas)` still clears `min_rx_dbm`, found by bisection over
/// the bound's monotone-in-distance contract (with a small conservative
/// margin). Returns +infinity when the model cannot bound itself or still
/// clears the floor at planetary range, and 0 when even the 1 m clamp
/// distance cannot clear it.
double max_candidate_range_m(const PropagationModel& model,
                             double tx_power_dbm, double min_rx_dbm,
                             double guard_sigmas);

/// Free-space (Friis) propagation; mostly for unit tests and controlled
/// topologies.
class FriisPropagation final : public PropagationModel {
 public:
  explicit FriisPropagation(double frequency_hz = 5.18e9);
  double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                      const Position& from_pos,
                      const Position& to_pos) const override;
  /// Friis has no random component: the bound is the deterministic power
  /// at `distance_m` (guard_sigmas is irrelevant).
  double rx_power_bound_dbm(double tx_power_dbm, double distance_m,
                            double guard_sigmas) const override;

 private:
  double ref_loss_db_;  // path loss at 1 m
};

struct LogDistanceConfig {
  double frequency_hz = 5.18e9;   // 802.11a channel 36 region
  double exponent = 4.0;          // indoor office with walls
  double shadow_sigma_db = 8.0;   // per unordered pair, symmetric
  double asym_sigma_db = 2.0;     // extra per ordered pair (link asymmetry)
  std::uint64_t seed = 1;         // shadowing realization

  bool operator==(const LogDistanceConfig&) const = default;
};

/// Log-distance path loss with deterministic per-pair shadowing: the same
/// (seed, i, j) always yields the same loss, so "the building" is fixed
/// across runs and MAC schemes see identical channels.
class LogDistanceShadowing final : public PropagationModel {
 public:
  explicit LogDistanceShadowing(LogDistanceConfig config = {});
  double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                      const Position& from_pos,
                      const Position& to_pos) const override;
  /// Deterministic path loss at `distance_m` plus `guard_sigmas` standard
  /// deviations of each shadowing component (pair-symmetric + asymmetric).
  double rx_power_bound_dbm(double tx_power_dbm, double distance_m,
                            double guard_sigmas) const override;

  const LogDistanceConfig& config() const { return config_; }

 private:
  double shadow_db(NodeId from, NodeId to) const;

  LogDistanceConfig config_;
  double ref_loss_db_;
};

}  // namespace cmap::phy
