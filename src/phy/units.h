// Power unit conversions. Powers cross module boundaries in dBm (log scale,
// human-readable); interference arithmetic happens in milliwatts (linear).
#pragma once

#include <cmath>

namespace cmap::phy {

inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }

}  // namespace cmap::phy
