// Basic identifiers and geometry shared by the PHY and everything above it.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace cmap::phy {

/// Link-layer node identifier (stands in for a MAC address).
using NodeId = std::uint32_t;

/// Destination id used for link-layer broadcast.
inline constexpr NodeId kBroadcastId = std::numeric_limits<NodeId>::max();

/// Node position in meters on the testbed floor plan.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace cmap::phy
