// Half-duplex radio state machine: IDLE / RX (locked to one frame) / TX.
//
// Reception follows real 802.11 receivers: a frame is only decodable if its
// preamble was heard while idle with sufficient SINR ("lock"); a frame
// arriving during another reception is interference, unless it is strong
// enough to capture the receiver (message-in-message, §6 of the paper
// references Whitehouse et al.). Per-segment success is evaluated with
// chunked SINR at frame end. In integrated-PHY mode the radio additionally
// salvages header/trailer segments of frames it never locked to — the PPR
// behaviour CMAP's conflict map relies on (paper §2.1, Figure 5).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "metrics/metrics.h"
#include "phy/error_model.h"
#include "phy/frame.h"
#include "phy/interference.h"
#include "phy/types.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace cmap::phy {

class Medium;

struct RadioConfig {
  double tx_power_dbm = 10.0;
  double noise_floor_dbm = -94.0;    // thermal + NF over 20 MHz
  double sensitivity_dbm = -92.0;    // min power to attempt a preamble lock
  double cs_signal_dbm = -92.0;      // preamble-based carrier sense
  double energy_detect_dbm = -82.0;  // total-energy carrier sense
  double preamble_min_sinr_db = 1.0; // SINR needed to sync to a preamble
  double capture_margin_db = 10.0;   // stronger-by margin to re-lock
  bool capture_enabled = true;
  // Gap between the idealized analytic error model and commodity hardware;
  // divides SINR before the error model.
  double implementation_loss_db = 5.0;
  // Integrated-PHY (PPR) mode: salvage kHeader/kTrailer segments of frames
  // the radio never locked onto.
  bool salvage_enabled = false;

  bool operator==(const RadioConfig&) const = default;
};

/// Callbacks a MAC implements to drive/observe its radio. All callbacks run
/// inside simulation events; implementations may schedule or transmit but
/// must tolerate reentrant CCA notifications.
class RadioListener {
 public:
  virtual ~RadioListener() = default;
  /// Locked onto `frame`; reception will finish at `end_time`.
  virtual void on_rx_start(const Frame& frame, sim::Time end_time) {
    (void)frame;
    (void)end_time;
  }
  /// Integrated mode only: the kHeader segment decoded (or not) mid-frame.
  virtual void on_header_decoded(const Frame& frame, bool ok) {
    (void)frame;
    (void)ok;
  }
  /// A locked frame finished; per-segment outcomes in `result`.
  virtual void on_rx_end(const Frame& frame, const RxResult& result) {
    (void)frame;
    (void)result;
  }
  /// Integrated mode: header/trailer salvaged from a frame never locked.
  virtual void on_salvage(const Frame& frame, const RxResult& result) {
    (void)frame;
    (void)result;
  }
  /// Carrier-sense (CCA) state changed.
  virtual void on_cca(bool busy) { (void)busy; }
  /// Own transmission completed.
  virtual void on_tx_end(const Frame& frame) { (void)frame; }
};

class Radio {
 public:
  struct Counters {
    std::uint64_t frames_sent = 0;
    std::uint64_t locks = 0;
    std::uint64_t rx_ok = 0;          // all segments decoded
    std::uint64_t rx_corrupt = 0;     // locked but some segment failed
    std::uint64_t preamble_failures = 0;
    std::uint64_t aborted_by_tx = 0;
    std::uint64_t aborted_by_capture = 0;
    std::uint64_t salvages = 0;
  };

  Radio(sim::Simulator& simulator, Medium& medium, NodeId id, Position pos,
        RadioConfig config, std::shared_ptr<const ErrorModel> error_model,
        sim::Rng rng);
  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  void set_listener(RadioListener* listener) { listener_ = listener; }

  /// Transmit `frame` at the configured power. Aborts any reception in
  /// progress (half-duplex). The radio assigns the frame id and duration.
  void transmit(Frame frame);

  bool transmitting() const { return state_ == State::kTx; }
  bool receiving() const { return state_ == State::kRx; }

  /// Carrier-sense: busy when transmitting, locked onto a frame, any single
  /// signal exceeds the preamble-CS threshold, or total energy exceeds the
  /// energy-detect threshold.
  bool carrier_busy() const;

  NodeId id() const { return id_; }
  /// The medium this radio is attached to (MACs bind their TraceHooks
  /// through it).
  Medium& medium() const { return medium_; }
  /// The simulator this radio's events run on — the partition simulator
  /// under PDES, the run simulator otherwise. The medium reads the
  /// transmit clock from here.
  sim::Simulator& simulator() const { return sim_; }
  const Position& position() const { return position_; }
  /// Move the radio; the medium re-caches this radio's link gains and
  /// reachability.
  void set_position(Position pos);
  const RadioConfig& config() const { return config_; }
  const Counters& counters() const { return counters_; }
  const InterferenceTracker& interference() const { return tracker_; }

  /// Medium-facing entry point: a signal begins arriving at this radio.
  /// Not for MAC use.
  void deliver(Signal signal);

 private:
  enum class State { kIdle, kRx, kTx };

  void on_signal_end(std::uint64_t frame_id);
  void evaluate_preamble(std::uint64_t frame_id);
  void lock(const Signal& sig);
  void finish_rx();
  void abort_rx();
  void finish_tx();
  void update_cca();
  void maybe_salvage(const Signal& sig);
  const Signal* find_signal(std::uint64_t frame_id) const;

  // Payload window [begin, end) of segment `index` of `sig`'s frame,
  // mapping payload bits proportionally onto the post-preamble airtime.
  std::pair<sim::Time, sim::Time> segment_window(const Signal& sig,
                                                 std::size_t index) const;
  bool evaluate_segment(const Signal& sig, std::size_t index,
                        double* min_sinr_db);

  sim::Simulator& sim_;
  Medium& medium_;
  NodeId id_;
  Position position_;
  RadioConfig config_;
  std::shared_ptr<const ErrorModel> error_model_;
  sim::Rng rng_;
  RadioListener* listener_ = nullptr;

  State state_ = State::kIdle;
  InterferenceTracker tracker_;

  // Current reception.
  std::uint64_t lock_frame_id_ = 0;
  double lock_power_mw_ = 0.0;
  sim::EventId rx_finish_event_;
  sim::EventId header_event_;
  std::vector<std::optional<bool>> segment_results_;
  double lock_min_sinr_db_ = 1e9;

  // Current / most recent transmission (for salvage overlap checks).
  std::shared_ptr<const Frame> tx_frame_;
  sim::Time tx_start_ = -1;
  sim::Time tx_end_ = -1;
  std::uint64_t tx_seq_ = 0;  // per-radio counter behind make_frame_id

  trace::TraceHook trace_;
  metrics::MetricsHook metrics_;
  bool last_cca_busy_ = false;
  double sinr_scale_;  // linear implementation loss
  double cs_signal_mw_;
  double energy_detect_mw_;
  double sensitivity_mw_;
  double capture_ratio_;
  double preamble_min_sinr_;

  Counters counters_;
};

}  // namespace cmap::phy
