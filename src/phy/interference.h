// Tracks the signals impinging on one radio and evaluates chunked SINR:
// a reception window is partitioned at interference change-points, each
// sub-interval contributes (1 - BER)^bits, and the product is the success
// probability of that window (the ns-3 InterferenceHelper approach).
//
// evaluate() runs as a single event-sweep over the sorted start/end edges
// of overlapping signals, maintaining a running interference sum — O(S log
// S) in the number of tracked signals instead of the O(sub-intervals x S)
// rescan of the original implementation (kept as evaluate_reference() for
// validation and benchmarking).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/error_model.h"
#include "phy/frame.h"
#include "sim/time.h"

namespace cmap::phy {

/// One signal as seen at one receiver. `frame` may be null for raw energy
/// (e.g. injected noise); such signals interfere but can never be a
/// decoding target.
struct Signal {
  std::shared_ptr<const Frame> frame;
  double power_mw = 0.0;  // received power (after fading) at this radio
  sim::Time start = 0;
  sim::Time end = 0;
};

struct ChunkOutcome {
  double success_prob = 1.0;
  double min_sinr = 1e30;  // linear; worst sub-interval SINR
};

class InterferenceTracker {
 public:
  explicit InterferenceTracker(double noise_floor_mw)
      : noise_mw_(noise_floor_mw) {}

  void add(Signal signal);

  /// Drop signals that ended before `horizon` (they can no longer overlap
  /// any evaluation window). Amortized: the horizon is recorded on every
  /// call, but the O(S) compaction only runs once the live vector has
  /// grown past a threshold that doubles with the surviving size, so a
  /// caller pruning on every delivery pays O(1) amortized. Expired signals
  /// may therefore linger in signals(); every query is time-windowed, so
  /// results are unaffected.
  void prune(sim::Time horizon);

  /// Success probability and worst SINR for decoding `bits` of frame
  /// `target_frame_id` over the window [begin, end) at `rate`, given all
  /// other tracked signals and the noise floor. `sinr_scale` divides the
  /// SINR before the error model (implementation loss).
  ChunkOutcome evaluate(std::uint64_t target_frame_id, sim::Time begin,
                        sim::Time end, double bits, WifiRate rate,
                        const ErrorModel& model, double sinr_scale) const;

  /// Linear SINR of the target over [begin, end) — worst sub-interval.
  double min_sinr(std::uint64_t target_frame_id, sim::Time begin,
                  sim::Time end) const;

  /// Sum of powers of signals active at time `t` (mW), excluding none.
  double total_power_mw(sim::Time t) const;

  /// Highest single-signal power active at time `t` (mW), or 0.
  double max_power_mw(sim::Time t) const;

  const std::vector<Signal>& signals() const { return signals_; }
  double noise_mw() const { return noise_mw_; }

 private:
  const Signal* find(std::uint64_t frame_id) const;

  std::vector<Signal> signals_;
  double noise_mw_;
  sim::Time prune_horizon_ = 0;
  std::size_t compact_at_ = 0;
  // Sweep-edge scratch, reused across evaluate() calls to avoid a per-call
  // allocation. A tracker belongs to one radio in one (single-threaded)
  // simulation, so the mutable buffer is never contended.
  struct Edge {
    sim::Time t;
    double delta;
  };
  mutable std::vector<Edge> edges_;
};

/// The original O(sub-intervals x S) implementation of evaluate(), over the
/// same tracked signal set. Retained as the validation oracle for the swept
/// evaluator (unit tests compare the two on random signal sets) and as the
/// "before" side of the bench_micro comparison.
ChunkOutcome evaluate_reference(const InterferenceTracker& tracker,
                                std::uint64_t target_frame_id, sim::Time begin,
                                sim::Time end, double bits, WifiRate rate,
                                const ErrorModel& model, double sinr_scale);

}  // namespace cmap::phy
