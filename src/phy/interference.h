// Tracks the signals impinging on one radio and evaluates chunked SINR:
// a reception window is partitioned at interference change-points, each
// sub-interval contributes (1 - BER)^bits, and the product is the success
// probability of that window (the ns-3 InterferenceHelper approach).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/error_model.h"
#include "phy/frame.h"
#include "sim/time.h"

namespace cmap::phy {

/// One signal as seen at one receiver.
struct Signal {
  std::shared_ptr<const Frame> frame;
  double power_mw = 0.0;  // received power (after fading) at this radio
  sim::Time start = 0;
  sim::Time end = 0;
};

struct ChunkOutcome {
  double success_prob = 1.0;
  double min_sinr = 1e30;  // linear; worst sub-interval SINR
};

class InterferenceTracker {
 public:
  explicit InterferenceTracker(double noise_floor_mw)
      : noise_mw_(noise_floor_mw) {}

  void add(Signal signal);

  /// Drop signals that ended before `horizon` (they can no longer overlap
  /// any evaluation window).
  void prune(sim::Time horizon);

  /// Success probability and worst SINR for decoding `bits` of frame
  /// `target_frame_id` over the window [begin, end) at `rate`, given all
  /// other tracked signals and the noise floor. `sinr_scale` divides the
  /// SINR before the error model (implementation loss).
  ChunkOutcome evaluate(std::uint64_t target_frame_id, sim::Time begin,
                        sim::Time end, double bits, WifiRate rate,
                        const ErrorModel& model, double sinr_scale) const;

  /// Linear SINR of the target over [begin, end) — worst sub-interval.
  double min_sinr(std::uint64_t target_frame_id, sim::Time begin,
                  sim::Time end) const;

  /// Sum of powers of signals active at time `t` (mW), excluding none.
  double total_power_mw(sim::Time t) const;

  /// Highest single-signal power active at time `t` (mW), or 0.
  double max_power_mw(sim::Time t) const;

  const std::vector<Signal>& signals() const { return signals_; }
  double noise_mw() const { return noise_mw_; }

 private:
  const Signal* find(std::uint64_t frame_id) const;

  std::vector<Signal> signals_;
  double noise_mw_;
};

}  // namespace cmap::phy
