// Uniform-grid spatial index over radio positions: the one source of
// candidate-neighbor queries for the sparse link-state paths (Medium's
// sparse rows and the testbed's sparse measurement pass). Grown out of the
// grid-hashed placement loop the Testbed constructor uses — same idea
// (a point's neighbors within r live in a bounded cell neighborhood), but
// over an unbounded plane with membership that changes as nodes move.
//
// Entries are dense uint32 indices (Medium attach indices or testbed node
// ids), not pointers: callers own the objects; the grid only maps index ->
// position -> cell. Queries are exact (candidate cells are distance-
// filtered) and return indices sorted ascending, so every consumer
// iterates candidates in the same deterministic order the dense paths use
// — the property the byte-identity golden tests lean on.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "phy/types.h"

namespace cmap::phy {

class SpatialGrid {
 public:
  /// `cell_m` is the grid pitch; queries scan ceil(r / cell_m) + 1 cells
  /// per axis, so pitch ~= the typical query radius keeps the scan at a
  /// 3x3 neighborhood. Any positive pitch is correct.
  explicit SpatialGrid(double cell_m);

  /// Register `idx` at `pos`. An index may be inserted once until removed.
  void insert(std::uint32_t idx, const Position& pos);

  /// Re-bucket `idx` at its new position (the grid remembers the old one,
  /// so movers need not carry it).
  void move(std::uint32_t idx, const Position& pos);

  void remove(std::uint32_t idx);

  bool contains(std::uint32_t idx) const;

  /// Last inserted/moved position of `idx` (asserts on unknown indices).
  const Position& position(std::uint32_t idx) const;

  std::size_t size() const { return count_; }
  double cell_m() const { return cell_m_; }

  /// Append every registered index whose distance to `center` is
  /// <= `radius_m` (including `center`'s own occupants at distance 0) to
  /// `out`, sorted ascending. `out` is cleared first. An infinite radius
  /// returns every registered index — the degenerate full-scan fallback
  /// for propagation models that cannot bound their range.
  void query(const Position& center, double radius_m,
             std::vector<std::uint32_t>* out) const;

 private:
  // Cell coordinates can go negative (positions are unconstrained), so the
  // key packs two int32s.
  static std::uint64_t key_of(std::int32_t cx, std::int32_t cy);
  std::int32_t coord(double v) const;

  struct Entry {
    Position pos;
    bool present = false;
  };

  double cell_m_;
  std::size_t count_ = 0;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
  std::vector<Entry> entries_;  // indexed by idx
};

}  // namespace cmap::phy
