#include "phy/error_model.h"

#include <algorithm>
#include <cmath>

#include "phy/units.h"
#include "sim/assert.h"

namespace cmap::phy {
namespace {

// Uncoded bit error rates for Gray-coded constellations on AWGN, as a
// function of Eb/N0 (linear).
double bpsk_ber(double ebn0) { return 0.5 * std::erfc(std::sqrt(ebn0)); }

double qam16_ber(double ebn0) {
  return (3.0 / 8.0) * std::erfc(std::sqrt(0.4 * ebn0));
}

double qam64_ber(double ebn0) {
  return (7.0 / 24.0) * std::erfc(std::sqrt(ebn0 / 7.0));
}

double uncoded_ber(Modulation mod, double ebn0) {
  switch (mod) {
    case Modulation::kBpsk:
    case Modulation::kQpsk:  // Gray-coded QPSK matches BPSK per-bit
      return bpsk_ber(ebn0);
    case Modulation::kQam16:
      return qam16_ber(ebn0);
    case Modulation::kQam64:
      return qam64_ber(ebn0);
  }
  return 1.0;
}

// Hard-decision union bound over the K=7 convolutional code's distance
// spectrum; coefficients are the standard information-weight spectra (as
// used by ns-3's NistErrorRateModel). D = sqrt(4 p (1 - p)).
double union_bound_rate12(double D) {
  static constexpr double c[] = {36.0,       0.0, 211.0,      0.0,
                                 1404.0,     0.0, 11633.0,    0.0,
                                 77433.0,    0.0, 502690.0,   0.0,
                                 3322763.0,  0.0, 21292910.0, 0.0,
                                 136764584.0};
  double pe = 0.0;
  double Dd = std::pow(D, 10);  // dfree = 10
  for (double coeff : c) {
    pe += coeff * Dd;
    Dd *= D;
  }
  return 0.5 * pe;
}

double union_bound_rate23(double D) {
  static constexpr double c[] = {3.0,       70.0,      285.0,    1276.0,
                                 6160.0,    27128.0,   117019.0, 498860.0,
                                 2103891.0, 8784123.0};
  double pe = 0.0;
  double Dd = std::pow(D, 6);  // dfree = 6
  for (double coeff : c) {
    pe += coeff * Dd;
    Dd *= D;
  }
  return 0.5 * pe;
}

double union_bound_rate34(double D) {
  static constexpr double c[] = {42.0,      201.0,      1492.0,
                                 10469.0,   62935.0,    379644.0,
                                 2253373.0, 13073811.0, 75152755.0,
                                 428005675.0};
  double pe = 0.0;
  double Dd = std::pow(D, 5);  // dfree = 5
  for (double coeff : c) {
    pe += coeff * Dd;
    Dd *= D;
  }
  return 0.5 * pe;
}

}  // namespace

double NistErrorModel::coded_ber(double sinr, WifiRate rate) const {
  if (sinr <= 0.0) return 0.5;
  const auto& info = rate_info(rate);
  const double ebn0 = sinr * bandwidth_hz_ / info.bits_per_second;
  const double p = std::min(0.5, uncoded_ber(info.modulation, ebn0));
  if (p <= 0.0) return 0.0;
  const double D = std::sqrt(4.0 * p * (1.0 - p));
  double pe;
  if (info.code_rate < 0.6) {
    pe = union_bound_rate12(D);
  } else if (info.code_rate < 0.7) {
    pe = union_bound_rate23(D);
  } else {
    pe = union_bound_rate34(D);
  }
  return std::clamp(pe, 0.0, 0.5);
}

double NistErrorModel::chunk_success(double sinr, double bits,
                                     WifiRate rate) const {
  CMAP_ASSERT(bits >= 0.0, "negative bit count");
  const double ber = coded_ber(sinr, rate);
  if (ber <= 0.0) return 1.0;
  if (ber >= 0.5) return std::pow(0.5, bits);
  return std::pow(1.0 - ber, bits);
}

ThresholdErrorModel::ThresholdErrorModel(double threshold_db)
    : threshold_linear_(db_to_linear(threshold_db)) {}

double ThresholdErrorModel::chunk_success(double sinr, double bits,
                                          WifiRate /*rate*/) const {
  if (bits <= 0.0) return 1.0;
  return sinr >= threshold_linear_ ? 1.0 : 0.0;
}

}  // namespace cmap::phy
