// Spatial partitioning for intra-run PDES (sim/pdes.h, docs/pdes.md):
// assigns every testbed node to one of P partitions and derives the
// conservative lookahead matrix — the minimum cross-partition propagation
// delay — that bounds how far one partition may run ahead of another.
//
// The assignment sorts nodes by (x, y, id) and cuts the order into P
// near-equal contiguous strips: deterministic for a given node set, and
// geometrically coherent enough that most traffic stays intra-partition.
// Membership is fixed for the run (each node's components are constructed
// against its partition's Simulator); mobility only changes the *delays*,
// which the World recomputes after every global move barrier.
#pragma once

#include <vector>

#include "phy/types.h"
#include "sim/time.h"

namespace cmap::phy {

struct PartitionPlan {
  int count = 1;
  std::vector<int> part_of_node;  // NodeId -> partition index

  int partition_of(NodeId id) const {
    return part_of_node[static_cast<std::size_t>(id)];
  }
};

/// Signal flight time over `meters`, floored at 1 ns, with the exact
/// truncation the medium's link delays use — the PDES lookahead must
/// lower-bound those delays, so the two computations share this one
/// function (the floor is what keeps cross-partition lookahead positive;
/// see the .cpp comment).
sim::Time propagation_delay_ns(double meters);

/// Partition `positions` (indexed by NodeId, all testbed nodes) into
/// `partitions` strips. `partitions` is clamped to [1, node count].
PartitionPlan make_partition_plan(const std::vector<Position>& positions,
                                  int partitions);

/// The row-major count x count lookahead matrix: entry [from][to] is the
/// minimum propagation delay over all (node of `from`, node of `to`)
/// pairs, or sim::kTimeForever when either side is empty. `parts` and
/// `positions` are parallel arrays describing the *live* nodes (the
/// attached radios — culled testbed nodes impose no bound). Entries are
/// always >= 1 ns (the propagation_delay_ns floor), so the engine never
/// merges partitions; a World that disables propagation delay installs an
/// all-zero matrix instead, collapsing everything into one group.
std::vector<sim::Time> min_cross_delays(const std::vector<int>& parts,
                                        const std::vector<Position>& positions,
                                        int count);

}  // namespace cmap::phy
