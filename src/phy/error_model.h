// Packet error models: map SINR to the probability that a run of bits
// decodes correctly. The default model follows the structure of the NIST
// error-rate model used by ns-3: modulation-specific uncoded BER, then a
// hard-decision union bound over the convolutional code's distance
// spectrum. An implementation-loss factor (applied by the radio) shifts
// the idealized curves toward what commodity hardware achieves.
#pragma once

#include "phy/wifi_rate.h"

namespace cmap::phy {

class ErrorModel {
 public:
  virtual ~ErrorModel() = default;

  /// Probability that `bits` consecutive coded-data bits at `rate` all
  /// decode correctly at linear SINR `sinr`. `bits` is fractional because
  /// interference chunking slices packets at arbitrary boundaries.
  virtual double chunk_success(double sinr, double bits,
                               WifiRate rate) const = 0;
};

/// NIST-style analytic model (see file comment). Produces the sharp
/// PRR-vs-SNR transitions characteristic of coded OFDM, which is what makes
/// testbed links look bimodal (mostly dead or perfect, few in between).
class NistErrorModel final : public ErrorModel {
 public:
  /// `bandwidth_hz` converts channel SINR to per-bit Eb/N0
  /// (Eb/N0 = SINR * bandwidth / bitrate).
  explicit NistErrorModel(double bandwidth_hz = 20e6)
      : bandwidth_hz_(bandwidth_hz) {}

  double chunk_success(double sinr, double bits, WifiRate rate) const override;

  /// Coded bit error rate at the given linear SINR (exposed for tests and
  /// for closed-form PRR computations in topology calibration).
  double coded_ber(double sinr, WifiRate rate) const;

 private:
  double bandwidth_hz_;
};

/// Step-function model: perfect above the per-rate SINR threshold, dead
/// below. Useful for deterministic protocol unit tests.
class ThresholdErrorModel final : public ErrorModel {
 public:
  explicit ThresholdErrorModel(double threshold_db = 3.0);
  double chunk_success(double sinr, double bits, WifiRate rate) const override;

 private:
  double threshold_linear_;
};

}  // namespace cmap::phy
