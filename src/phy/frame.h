// PHY frame (PPDU) description. A frame carries an opaque MAC payload plus
// a segment list; segments are ranges of the payload with independent CRCs
// that the receiver decodes (or salvages) separately. This realizes the
// paper's §2.1 PHY abstraction:
//   * shim mode     — the MAC sends header/trailer as separate one-segment
//                     frames around a burst of data frames;
//   * integrated    — a single frame has kHeader/kBody/kTrailer segments
//                     decoded independently (the PPR-style hardware path).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/types.h"
#include "phy/wifi_rate.h"
#include "sim/time.h"

namespace cmap::phy {

/// Base class for MAC payloads carried through the PHY. The MAC layer
/// derives its frame types from this and downcasts on receive.
struct Payload {
  virtual ~Payload() = default;
};

/// Globally unique per-transmission frame id derived from the sender
/// alone: ((tx + 1) << 40) | per-sender sequence. Sender-local derivation
/// keeps ids identical between the serial and partitioned (PDES)
/// executives — a medium-global counter would depend on how node events
/// interleave across partitions — which matters because per-delivery
/// fading substreams are keyed on the frame id. NodeId < 2^20 (the
/// medium's id cap) and < 2^40 frames per sender fit without collision;
/// the +1 keeps 0 free as the "no frame" sentinel receivers rely on.
constexpr std::uint64_t make_frame_id(NodeId tx_node, std::uint64_t seq) {
  return ((static_cast<std::uint64_t>(tx_node) + 1) << 40) | seq;
}

enum class SegmentKind : std::uint8_t { kWhole, kHeader, kBody, kTrailer };

struct Segment {
  SegmentKind kind = SegmentKind::kWhole;
  std::size_t bytes = 0;
};

struct Frame {
  std::uint64_t id = 0;    // unique per transmission
  NodeId tx_node = 0;      // transmitting node (diagnostics only)
  WifiRate rate = WifiRate::k6Mbps;
  std::vector<Segment> segments;
  std::shared_ptr<const Payload> payload;
  sim::Time duration = 0;  // total airtime incl. preamble; set on transmit

  std::size_t size_bytes() const {
    std::size_t total = 0;
    for (const auto& s : segments) total += s.bytes;
    return total;
  }
};

/// Outcome of a frame reception (locked or salvaged).
struct RxResult {
  double rssi_dbm = -200.0;
  double min_sinr_db = -200.0;  // worst per-chunk SINR over the frame
  std::vector<bool> segment_ok;  // parallel to Frame::segments

  bool all_ok() const {
    for (bool ok : segment_ok)
      if (!ok) return false;
    return !segment_ok.empty();
  }
};

}  // namespace cmap::phy
