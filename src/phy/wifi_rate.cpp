#include "phy/wifi_rate.h"

#include "sim/assert.h"

namespace cmap::phy {
namespace {

constexpr RateInfo kRates[kNumWifiRates] = {
    {WifiRate::k6Mbps, 6e6, Modulation::kBpsk, 0.5, 24},
    {WifiRate::k9Mbps, 9e6, Modulation::kBpsk, 0.75, 36},
    {WifiRate::k12Mbps, 12e6, Modulation::kQpsk, 0.5, 48},
    {WifiRate::k18Mbps, 18e6, Modulation::kQpsk, 0.75, 72},
    {WifiRate::k24Mbps, 24e6, Modulation::kQam16, 0.5, 96},
    {WifiRate::k36Mbps, 36e6, Modulation::kQam16, 0.75, 144},
    {WifiRate::k48Mbps, 48e6, Modulation::kQam64, 2.0 / 3.0, 192},
    {WifiRate::k54Mbps, 54e6, Modulation::kQam64, 0.75, 216},
};

constexpr const char* kNames[kNumWifiRates] = {
    "6Mbps", "9Mbps", "12Mbps", "18Mbps", "24Mbps", "36Mbps", "48Mbps",
    "54Mbps"};

}  // namespace

const RateInfo& rate_info(WifiRate rate) {
  const auto idx = static_cast<int>(rate);
  CMAP_ASSERT(idx >= 0 && idx < kNumWifiRates, "invalid rate");
  return kRates[idx];
}

const char* rate_name(WifiRate rate) {
  return kNames[static_cast<int>(rate)];
}

sim::Time payload_airtime(WifiRate rate, std::size_t bytes) {
  const auto& info = rate_info(rate);
  const std::int64_t bits =
      kServiceAndTailBits + 8 * static_cast<std::int64_t>(bytes);
  const std::int64_t symbols =
      (bits + info.data_bits_per_symbol - 1) / info.data_bits_per_symbol;
  return symbols * kSymbolDuration;
}

sim::Time frame_airtime(WifiRate rate, std::size_t bytes) {
  return kPlcpDuration + payload_airtime(rate, bytes);
}

}  // namespace cmap::phy
