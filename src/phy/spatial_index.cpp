#include "phy/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/assert.h"

namespace cmap::phy {

SpatialGrid::SpatialGrid(double cell_m) : cell_m_(cell_m) {
  CMAP_ASSERT(cell_m > 0.0, "spatial grid pitch must be positive");
}

std::uint64_t SpatialGrid::key_of(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

std::int32_t SpatialGrid::coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_m_));
}

void SpatialGrid::insert(std::uint32_t idx, const Position& pos) {
  if (entries_.size() <= idx) entries_.resize(idx + 1);
  CMAP_ASSERT(!entries_[idx].present, "index already in the spatial grid");
  entries_[idx] = Entry{pos, true};
  cells_[key_of(coord(pos.x), coord(pos.y))].push_back(idx);
  ++count_;
}

void SpatialGrid::move(std::uint32_t idx, const Position& pos) {
  CMAP_ASSERT(contains(idx), "move of an index not in the spatial grid");
  const Position old = entries_[idx].pos;
  const std::uint64_t old_key = key_of(coord(old.x), coord(old.y));
  const std::uint64_t new_key = key_of(coord(pos.x), coord(pos.y));
  entries_[idx].pos = pos;
  if (old_key == new_key) return;
  auto& bucket = cells_[old_key];
  bucket.erase(std::find(bucket.begin(), bucket.end(), idx));
  if (bucket.empty()) cells_.erase(old_key);
  cells_[new_key].push_back(idx);
}

void SpatialGrid::remove(std::uint32_t idx) {
  CMAP_ASSERT(contains(idx), "remove of an index not in the spatial grid");
  const Position& pos = entries_[idx].pos;
  const std::uint64_t key = key_of(coord(pos.x), coord(pos.y));
  auto& bucket = cells_[key];
  bucket.erase(std::find(bucket.begin(), bucket.end(), idx));
  if (bucket.empty()) cells_.erase(key);
  entries_[idx].present = false;
  --count_;
}

bool SpatialGrid::contains(std::uint32_t idx) const {
  return idx < entries_.size() && entries_[idx].present;
}

const Position& SpatialGrid::position(std::uint32_t idx) const {
  CMAP_ASSERT(contains(idx), "position of an index not in the spatial grid");
  return entries_[idx].pos;
}

void SpatialGrid::query(const Position& center, double radius_m,
                        std::vector<std::uint32_t>* out) const {
  out->clear();
  if (radius_m < 0.0) return;
  if (!std::isfinite(radius_m)) {
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].present) out->push_back(i);
    }
    return;  // ascending by construction
  }
  const std::int32_t cx_lo = coord(center.x - radius_m);
  const std::int32_t cx_hi = coord(center.x + radius_m);
  const std::int32_t cy_lo = coord(center.y - radius_m);
  const std::int32_t cy_hi = coord(center.y + radius_m);
  for (std::int32_t cx = cx_lo; cx <= cx_hi; ++cx) {
    for (std::int32_t cy = cy_lo; cy <= cy_hi; ++cy) {
      const auto it = cells_.find(key_of(cx, cy));
      if (it == cells_.end()) continue;
      for (const std::uint32_t idx : it->second) {
        if (distance(entries_[idx].pos, center) <= radius_m) {
          out->push_back(idx);
        }
      }
    }
  }
  std::sort(out->begin(), out->end());
}

}  // namespace cmap::phy
