// Counters every MAC implementation exports; experiment harnesses read
// these to compute throughput and loss.
#pragma once

#include <cstdint>

namespace cmap::mac {

struct MacStats {
  // Sender side.
  std::uint64_t enqueued = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t data_frames_sent = 0;      // incl. retransmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t dropped_retry_limit = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t ack_timeouts = 0;
  std::uint64_t deferrals = 0;             // CMAP: defer-table-driven waits

  // Receiver side.
  std::uint64_t delivered = 0;             // unique packets passed up
  std::uint64_t duplicates = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t corrupt_frames = 0;        // locked but failed CRC
};

}  // namespace cmap::mac
