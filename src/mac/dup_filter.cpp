#include "mac/dup_filter.h"

namespace cmap::mac {

bool DupFilter::seen_before(phy::NodeId sender, std::uint32_t seq) {
  PerSender& s = senders_[sender];
  if (s.any && seq + window_ < s.max_seq) {
    // Far behind the window: treat as duplicate (stale retransmission).
    return true;
  }
  const bool dup = !s.seen.insert(seq).second;
  if (!s.any || seq > s.max_seq) {
    s.max_seq = seq;
    s.any = true;
  }
  // Evict entries that fell out of the window. Amortized cheap: each seq
  // enters and leaves the set once.
  if (s.seen.size() > 2 * window_) {
    // cmap-lint: allow(unordered-iter) -- eviction scan; the surviving
    // set is { seq : seq + window >= max_seq } whatever order the scan
    // visits entries in, and the set is only ever queried by membership.
    for (auto it = s.seen.begin(); it != s.seen.end();) {
      if (*it + window_ < s.max_seq) {
        it = s.seen.erase(it);
      } else {
        ++it;
      }
    }
  }
  return dup;
}

}  // namespace cmap::mac
