// Wire formats shared by the 802.11 baseline. (CMAP's own frame types —
// virtual-packet headers/trailers, cumulative ACKs, interferer-list
// broadcasts — live in core/wire.h.) Sizes follow 802.11: 24-byte MAC
// header + 4-byte FCS on data, 14-byte control ACK.
#pragma once

#include <cstdint>

#include "mac/packet.h"
#include "phy/frame.h"
#include "phy/types.h"

namespace cmap::mac {

inline constexpr std::size_t kDataHeaderBytes = 28;  // MAC header + FCS
inline constexpr std::size_t kAckBytes = 14;

/// Unicast/broadcast data frame carrying one upper-layer packet.
struct DataFrame : phy::Payload {
  phy::NodeId src = 0;
  phy::NodeId dst = 0;
  std::uint32_t seq = 0;  // link-layer sequence number (per sender)
  bool retry = false;
  Packet packet;

  std::size_t wire_bytes() const { return packet.bytes + kDataHeaderBytes; }
};

/// 802.11-style immediate ACK.
struct AckFrame : phy::Payload {
  phy::NodeId src = 0;  // acking node
  phy::NodeId dst = 0;  // original sender
  std::uint32_t seq = 0;

  std::size_t wire_bytes() const { return kAckBytes; }
};

}  // namespace cmap::mac
