// Receiver-side duplicate detection: a sliding window of recently seen
// link-layer sequence numbers per sender. Retransmissions of packets whose
// ACK was lost would otherwise be double-counted as goodput.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "phy/types.h"

namespace cmap::mac {

class DupFilter {
 public:
  /// `window` is how many distinct recent sequence numbers to remember per
  /// sender; it must exceed the sender's retransmission window.
  explicit DupFilter(std::size_t window = 1024) : window_(window) {}

  /// Record (sender, seq); returns true if it was already seen recently.
  bool seen_before(phy::NodeId sender, std::uint32_t seq);

 private:
  struct PerSender {
    std::unordered_set<std::uint32_t> seen;
    std::uint32_t max_seq = 0;
    bool any = false;
  };
  std::size_t window_;
  std::unordered_map<phy::NodeId, PerSender> senders_;
};

}  // namespace cmap::mac
