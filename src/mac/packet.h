// The unit of data handed to a MAC by the layer above (think: an IP packet
// in a link-layer queue).
#pragma once

#include <cstdint>

#include "phy/types.h"
#include "sim/time.h"

namespace cmap::mac {

struct Packet {
  phy::NodeId src = 0;
  phy::NodeId dst = 0;
  std::uint64_t id = 0;        // globally unique; sinks use it to de-dup
  std::uint32_t flow = 0;      // traffic generator tag
  std::size_t bytes = 0;       // upper-layer payload size
  sim::Time created_at = 0;
};

}  // namespace cmap::mac
