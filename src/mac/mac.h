// The MAC interface every channel-access scheme implements. Experiment
// harnesses talk only to this interface, so 802.11 variants and CMAP are
// interchangeable over the same PHY.
#pragma once

#include <functional>

#include "mac/packet.h"
#include "mac/stats.h"

namespace cmap::mac {

class Mac {
 public:
  virtual ~Mac() = default;

  /// Packet delivered to the layer above (already de-duplicated status in
  /// `duplicate`; sinks normally count only non-duplicates).
  struct RxInfo {
    double rssi_dbm = 0.0;
    bool duplicate = false;
  };
  using RxHandler = std::function<void(const Packet&, const RxInfo&)>;
  using DrainHandler = std::function<void()>;

  /// Enqueue a packet for transmission. Returns false (and drops) when the
  /// transmit queue is full.
  virtual bool send(Packet packet) = 0;

  /// Install the receive upcall.
  virtual void set_rx_handler(RxHandler handler) = 0;

  /// Called whenever queue space frees up; saturated sources use this to
  /// keep the MAC backlogged.
  virtual void set_drain_handler(DrainHandler handler) = 0;

  virtual std::size_t queue_depth() const = 0;
  virtual const MacStats& stats() const = 0;
};

}  // namespace cmap::mac
