// Always-on observability: compact binary event streams with bounded
// overhead (ROADMAP "Always-on telemetry"). A Tracer serializes typed
// records — PHY frame lifecycle, MAC defer decisions, conflict-map
// mutations, dynamics events — through a TraceSink as length-prefixed
// varint-encoded records (docs/trace_format.md).
//
// Cost model: every instrumented component holds a TraceHook whose category
// mask is cached at bind time, so the disabled hot path pays exactly one
// branch (`mask & bit`) per site — no virtual call, no pointer chase. With
// tracing off entirely the mask is zero. High-rate categories can be
// decimated per category via TraceConfig::sample_every (every-Nth, chosen
// over reservoir sampling because it streams — no buffering, and the kept
// subset is deterministic).
//
// Records carry only simulated time and simulation state — never wall-clock
// time or fresh randomness — and recording draws nothing from any sim::Rng
// and schedules no events, so (a) the same run config + seed produces a
// byte-identical trace file, and (b) enabling tracing cannot change any
// simulation result (golden-tested in tests/scenario/test_trace_golden.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace cmap::trace {

enum class Category : std::uint8_t {
  kPhyTx = 0,        // frame put on the air
  kPhyRx = 1,        // locked frame finished: per-frame decode verdict
  kPhyCollision = 2, // reception lost: preamble SINR / capture / own tx
  kMacDefer = 3,     // CMAP send decision, with the blocking reason
  kDeferTable = 4,   // conflict-map entry insert / TTL refresh / expiry
  kOngoing = 5,      // ongoing-list note / update / expiry
  kMove = 6,         // a mobile node's position update
  kChannelEpoch = 7, // channel-dynamics epoch advanced (full gain refresh)
  kLog = 8,          // sim::log_line routed into the trace stream
  kCount
};

inline constexpr std::size_t kCategoryCount =
    static_cast<std::size_t>(Category::kCount);

constexpr std::uint32_t bit(Category c) {
  return 1u << static_cast<std::uint32_t>(c);
}

inline constexpr std::uint32_t kPhyCategories =
    bit(Category::kPhyTx) | bit(Category::kPhyRx) | bit(Category::kPhyCollision);
inline constexpr std::uint32_t kMacCategories =
    bit(Category::kMacDefer) | bit(Category::kDeferTable) |
    bit(Category::kOngoing);
inline constexpr std::uint32_t kDynamicsCategories =
    bit(Category::kMove) | bit(Category::kChannelEpoch);
inline constexpr std::uint32_t kAllCategories =
    (1u << kCategoryCount) - 1;

/// Short stable name for a category ("phy_tx", "mac_defer", ...), used by
/// the dump tool and the format doc.
const char* category_name(Category c);

/// Reasons carried by kMacDefer records.
enum class DeferReason : std::uint8_t {
  kNone = 0,      // decision was "send"
  kDstBusy = 1,   // destination is a party to an ongoing transmission
  kConflictMap = 2  // a defer-table pattern matched an ongoing transmission
};

/// Ops carried by kDeferTable records.
enum class DeferTableOp : std::uint8_t {
  kInsert = 0,   // new entry linked
  kRefresh = 1,  // exact duplicate re-reported: TTL refreshed in place
  kExpire = 2    // expired entry reclaimed (lazy or eager)
};

/// Ops carried by kOngoing records.
enum class OngoingOp : std::uint8_t {
  kNote = 0,    // new (src, dst) pair linked
  kUpdate = 1,  // known pair's end time / rate updated in place
  kExpire = 2   // entry past its end time reclaimed
};

/// Reasons carried by kPhyCollision records.
enum class CollisionReason : std::uint8_t {
  kPreambleSinr = 0,  // preamble did not clear the lock SINR
  kCaptured = 1,      // locked frame lost to a stronger arrival
  kLocalTx = 2        // reception aborted by this node's own transmission
};

struct TraceConfig {
  /// Output file (".cmtrace" by convention). For Sweep-level tracing this
  /// names a directory instead; see scenario::trace_run_path().
  std::string path;
  /// Enabled-category bitmask (bit(Category)). Categories outside the mask
  /// cost one branch at the instrumentation site and nothing else.
  std::uint32_t categories = kAllCategories;
  /// Per-category decimation: keep every Nth record (1 = keep all). Applies
  /// after the mask. kDeferTable must stay at 1 when the trace will feed
  /// DeferTableReplay — dropped mutations would corrupt the reconstruction.
  std::array<std::uint32_t, kCategoryCount> sample_every{1, 1, 1, 1, 1,
                                                         1, 1, 1, 1};

  bool operator==(const TraceConfig&) const = default;
};

/// Byte-stream output abstraction under the Tracer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const void* data, std::size_t size) = 0;
  virtual void flush() {}
};

/// Buffered file writer; opening failure fails loudly (CMAP_ASSERT), a
/// silently empty trace being worse than a dead run.
class FileTraceSink final : public TraceSink {
 public:
  explicit FileTraceSink(const std::string& path);
  ~FileTraceSink() override;
  void write(const void* data, std::size_t size) override;
  void flush() override;

 private:
  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> buffer_;
};

/// In-memory sink for unit tests.
class MemoryTraceSink final : public TraceSink {
 public:
  void write(const void* data, std::size_t size) override;
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

namespace wire {
/// LEB128 varint append / zigzag mapping — shared by writer, reader and
/// tests so the two sides cannot drift.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}
/// Decode one varint from [*pos, size); advances *pos. Returns false (and
/// leaves *pos at the malformed byte) on truncation or >10-byte varints.
bool get_varint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                std::uint64_t* out);
}  // namespace wire

/// Serializes records for one run. Construction writes the file header;
/// every emitter is a no-op for categories outside the config mask (but
/// call sites should pre-filter through a TraceHook so the disabled path
/// never reaches the call). While alive, the Tracer registers itself as the
/// calling thread's active tracer so sim::log_line can route into the
/// stream (one observability path); nesting saves and restores.
class Tracer {
 public:
  explicit Tracer(const TraceConfig& config,
                  std::unique_ptr<TraceSink> sink = nullptr);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::uint32_t categories() const { return config_.categories; }
  bool wants(Category c) const { return (config_.categories & bit(c)) != 0; }
  /// Records actually written so far (post-mask, post-sampling). The replay
  /// consistency test uses this as an exact stream position marker.
  std::uint64_t records_written() const { return records_; }
  void flush() { sink_->flush(); }

  /// The calling thread's innermost live Tracer, or nullptr. sim::log_line
  /// routes through this so ad-hoc debug prints land in the trace.
  static Tracer* thread_active();

  // ---- Typed emitters (field layouts in docs/trace_format.md) ----
  void phy_tx(sim::Time now, std::uint32_t node, std::uint64_t frame_id,
              std::uint32_t rate, std::uint32_t bytes, sim::Time duration);
  void phy_rx(sim::Time now, std::uint32_t node, std::uint64_t frame_id,
              std::uint32_t tx_node, bool ok, std::int32_t min_sinr_cdb);
  void phy_collision(sim::Time now, std::uint32_t node,
                     std::uint64_t frame_id, CollisionReason reason);
  void mac_defer(sim::Time now, std::uint32_t node, std::uint32_t dst,
                 bool deferred, DeferReason reason, std::uint32_t blocker_src,
                 std::uint32_t blocker_dst, sim::Time until);
  void defer_table(sim::Time now, std::uint32_t node, DeferTableOp op,
                   std::uint32_t dst, std::uint32_t src, std::uint32_t via,
                   std::uint32_t my_rate, std::uint32_t their_rate,
                   sim::Time expires);
  void ongoing(sim::Time now, std::uint32_t node, OngoingOp op,
               std::uint32_t src, std::uint32_t dst, sim::Time end_time);
  void move(sim::Time now, std::uint32_t node, double x_m, double y_m);
  void channel_epoch(sim::Time now, std::uint64_t epoch);
  void log(sim::Time now, std::uint32_t level, std::string_view component,
           std::string_view message);

  /// Re-emit an already-encoded record payload verbatim (merge_streams):
  /// only the length prefix and tick delta are re-encoded against this
  /// stream's position. Masking and sampling still apply.
  void emit_raw(Category c, sim::Time now, const std::uint8_t* body,
                std::size_t size);

 private:
  bool sample(Category c);
  void emit(Category c, sim::Time now);

  TraceConfig config_;
  std::unique_ptr<TraceSink> sink_;
  sim::Time last_tick_ = 0;
  std::uint64_t records_ = 0;
  std::array<std::uint64_t, kCategoryCount> seen_{};
  std::vector<std::uint8_t> body_;    // payload fields
  std::vector<std::uint8_t> head_;    // category + tick delta
  std::vector<std::uint8_t> prefix_;  // length varint
  Tracer* prev_thread_active_ = nullptr;
};

/// RAII: make `tracer` (may be null) the calling thread's active tracer
/// for the scope, exactly as a Tracer's own constructor does on the thread
/// that built it. The PDES engine's partition scope holds one of these
/// while a worker executes a partition window, so sim::log_line calls from
/// node code route into that partition's stream; the destructor restores
/// whatever was active before.
class ScopedActive {
 public:
  explicit ScopedActive(Tracer* tracer);
  ~ScopedActive();
  ScopedActive(const ScopedActive&) = delete;
  ScopedActive& operator=(const ScopedActive&) = delete;

 private:
  Tracer* prev_;
};

/// The per-component handle instrumentation sites check. `mask` caches the
/// tracer's category mask at bind time, so a disabled site costs exactly
/// one branch; `self` carries the owning node's id for components that do
/// not otherwise know it (DeferTable, OngoingList).
struct TraceHook {
  Tracer* tracer = nullptr;
  std::uint32_t mask = 0;
  std::uint32_t self = 0;

  void bind(Tracer* t, std::uint32_t self_id = 0) {
    tracer = t;
    mask = t != nullptr ? t->categories() : 0;
    self = self_id;
  }
  bool wants(Category c) const { return (mask & bit(c)) != 0; }
};

}  // namespace cmap::trace
