#include "trace/trace.h"

#include <cstdio>

#include "sim/assert.h"

namespace cmap::trace {
namespace {

constexpr std::size_t kFileBufferBytes = 64 * 1024;

// The calling thread's stack of live Tracers (innermost wins). thread_local
// because SweepRunner executes independent runs — each with its own Tracer
// — concurrently on worker threads.
// cmap-lint: allow(mutable-static) -- the per-thread binding IS the
// mechanism that keeps concurrent sweep runs' traces apart; each worker
// only ever sees the tracer it bound itself (see Tracer::bind_world).
thread_local Tracer* g_thread_tracer = nullptr;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  wire::put_varint(out, v);
}

void put_time(std::vector<std::uint8_t>& out, sim::Time t) {
  // Every time field written today is non-negative (absolute sim times and
  // durations); encode as plain varint, asserted rather than zigzagged.
  CMAP_ASSERT(t >= 0, "negative time in trace record");
  wire::put_varint(out, static_cast<std::uint64_t>(t));
}

}  // namespace

const char* category_name(Category c) {
  switch (c) {
    case Category::kPhyTx:
      return "phy_tx";
    case Category::kPhyRx:
      return "phy_rx";
    case Category::kPhyCollision:
      return "phy_collision";
    case Category::kMacDefer:
      return "mac_defer";
    case Category::kDeferTable:
      return "defer_table";
    case Category::kOngoing:
      return "ongoing";
    case Category::kMove:
      return "move";
    case Category::kChannelEpoch:
      return "channel_epoch";
    case Category::kLog:
      return "log";
    case Category::kCount:
      break;
  }
  return "?";
}

namespace wire {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool get_varint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                std::uint64_t* out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= size) return false;  // truncated mid-varint
    const std::uint8_t b = data[(*pos)++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;  // >10 bytes: not a valid varint
}

}  // namespace wire

FileTraceSink::FileTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")) {
  CMAP_ASSERT(file_ != nullptr, "cannot open trace file for writing");
  buffer_.reserve(kFileBufferBytes);
}

FileTraceSink::~FileTraceSink() {
  flush();
  std::fclose(file_);
}

void FileTraceSink::write(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  if (buffer_.size() + size > kFileBufferBytes) flush();
  if (size > kFileBufferBytes) {
    std::fwrite(bytes, 1, size, file_);
    return;
  }
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void FileTraceSink::flush() {
  if (!buffer_.empty()) {
    std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    buffer_.clear();
  }
  std::fflush(file_);
}

void MemoryTraceSink::write(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
}

Tracer* Tracer::thread_active() { return g_thread_tracer; }

ScopedActive::ScopedActive(Tracer* tracer) : prev_(g_thread_tracer) {
  g_thread_tracer = tracer;
}

ScopedActive::~ScopedActive() { g_thread_tracer = prev_; }

Tracer::Tracer(const TraceConfig& config, std::unique_ptr<TraceSink> sink)
    : config_(config), sink_(std::move(sink)) {
  for (std::uint32_t every : config_.sample_every) {
    CMAP_ASSERT(every >= 1, "sample_every must be >= 1");
  }
  if (!sink_) sink_ = std::make_unique<FileTraceSink>(config_.path);
  // Header: magic, version, category mask, per-category sampling — enough
  // for a reader to interpret the stream without the run config.
  body_.clear();
  const char magic[4] = {'C', 'M', 'T', 'R'};
  body_.insert(body_.end(), magic, magic + 4);
  body_.push_back(1);  // version
  wire::put_varint(body_, config_.categories);
  wire::put_varint(body_, kCategoryCount);
  for (std::uint32_t every : config_.sample_every) {
    wire::put_varint(body_, every);
  }
  sink_->write(body_.data(), body_.size());
  prev_thread_active_ = g_thread_tracer;
  g_thread_tracer = this;
}

Tracer::~Tracer() {
  g_thread_tracer = prev_thread_active_;
  sink_->flush();
}

bool Tracer::sample(Category c) {
  const std::size_t i = static_cast<std::size_t>(c);
  return seen_[i]++ % config_.sample_every[i] == 0;
}

void Tracer::emit(Category c, sim::Time now) {
  // Records are written from inside simulation events, so time is
  // monotonically non-decreasing — the tick is stored as a delta.
  CMAP_ASSERT(now >= last_tick_, "trace records must be time-ordered");
  head_.clear();
  wire::put_varint(head_, static_cast<std::uint64_t>(c));
  wire::put_varint(head_, static_cast<std::uint64_t>(now - last_tick_));
  prefix_.clear();
  wire::put_varint(prefix_, head_.size() + body_.size());
  sink_->write(prefix_.data(), prefix_.size());
  sink_->write(head_.data(), head_.size());
  sink_->write(body_.data(), body_.size());
  last_tick_ = now;
  ++records_;
}

void Tracer::phy_tx(sim::Time now, std::uint32_t node, std::uint64_t frame_id,
                    std::uint32_t rate, std::uint32_t bytes,
                    sim::Time duration) {
  if (!wants(Category::kPhyTx) || !sample(Category::kPhyTx)) return;
  body_.clear();
  put_u32(body_, node);
  wire::put_varint(body_, frame_id);
  put_u32(body_, rate);
  put_u32(body_, bytes);
  put_time(body_, duration);
  emit(Category::kPhyTx, now);
}

void Tracer::phy_rx(sim::Time now, std::uint32_t node, std::uint64_t frame_id,
                    std::uint32_t tx_node, bool ok, std::int32_t min_sinr_cdb) {
  if (!wants(Category::kPhyRx) || !sample(Category::kPhyRx)) return;
  body_.clear();
  put_u32(body_, node);
  wire::put_varint(body_, frame_id);
  put_u32(body_, tx_node);
  body_.push_back(ok ? 1 : 0);
  wire::put_varint(body_, wire::zigzag(min_sinr_cdb));
  emit(Category::kPhyRx, now);
}

void Tracer::phy_collision(sim::Time now, std::uint32_t node,
                           std::uint64_t frame_id, CollisionReason reason) {
  if (!wants(Category::kPhyCollision) || !sample(Category::kPhyCollision)) {
    return;
  }
  body_.clear();
  put_u32(body_, node);
  wire::put_varint(body_, frame_id);
  put_u32(body_, static_cast<std::uint32_t>(reason));
  emit(Category::kPhyCollision, now);
}

void Tracer::mac_defer(sim::Time now, std::uint32_t node, std::uint32_t dst,
                       bool deferred, DeferReason reason,
                       std::uint32_t blocker_src, std::uint32_t blocker_dst,
                       sim::Time until) {
  if (!wants(Category::kMacDefer) || !sample(Category::kMacDefer)) return;
  body_.clear();
  put_u32(body_, node);
  put_u32(body_, dst);
  body_.push_back(deferred ? 1 : 0);
  put_u32(body_, static_cast<std::uint32_t>(reason));
  put_u32(body_, blocker_src);
  put_u32(body_, blocker_dst);
  put_time(body_, until);
  emit(Category::kMacDefer, now);
}

void Tracer::defer_table(sim::Time now, std::uint32_t node, DeferTableOp op,
                         std::uint32_t dst, std::uint32_t src,
                         std::uint32_t via, std::uint32_t my_rate,
                         std::uint32_t their_rate, sim::Time expires) {
  if (!wants(Category::kDeferTable) || !sample(Category::kDeferTable)) return;
  body_.clear();
  put_u32(body_, node);
  put_u32(body_, static_cast<std::uint32_t>(op));
  put_u32(body_, dst);
  put_u32(body_, src);
  put_u32(body_, via);
  put_u32(body_, my_rate);
  put_u32(body_, their_rate);
  put_time(body_, expires);
  emit(Category::kDeferTable, now);
}

void Tracer::ongoing(sim::Time now, std::uint32_t node, OngoingOp op,
                     std::uint32_t src, std::uint32_t dst, sim::Time end_time) {
  if (!wants(Category::kOngoing) || !sample(Category::kOngoing)) return;
  body_.clear();
  put_u32(body_, node);
  put_u32(body_, static_cast<std::uint32_t>(op));
  put_u32(body_, src);
  put_u32(body_, dst);
  put_time(body_, end_time);
  emit(Category::kOngoing, now);
}

void Tracer::move(sim::Time now, std::uint32_t node, double x_m, double y_m) {
  if (!wants(Category::kMove) || !sample(Category::kMove)) return;
  body_.clear();
  put_u32(body_, node);
  // Millimetre resolution keeps positions integral (and the file
  // deterministic across libm variations is NOT a concern here: the
  // doubles being rounded are themselves deterministic sim state).
  wire::put_varint(body_, wire::zigzag(static_cast<std::int64_t>(x_m * 1000.0)));
  wire::put_varint(body_, wire::zigzag(static_cast<std::int64_t>(y_m * 1000.0)));
  emit(Category::kMove, now);
}

void Tracer::channel_epoch(sim::Time now, std::uint64_t epoch) {
  if (!wants(Category::kChannelEpoch) || !sample(Category::kChannelEpoch)) {
    return;
  }
  body_.clear();
  wire::put_varint(body_, epoch);
  emit(Category::kChannelEpoch, now);
}

void Tracer::emit_raw(Category c, sim::Time now, const std::uint8_t* body,
                      std::size_t size) {
  if (!wants(c) || !sample(c)) return;
  body_.assign(body, body + size);
  emit(c, now);
}

void Tracer::log(sim::Time now, std::uint32_t level,
                 std::string_view component, std::string_view message) {
  if (!wants(Category::kLog) || !sample(Category::kLog)) return;
  body_.clear();
  put_u32(body_, level);
  wire::put_varint(body_, component.size());
  body_.insert(body_.end(), component.begin(), component.end());
  wire::put_varint(body_, message.size());
  body_.insert(body_.end(), message.begin(), message.end());
  emit(Category::kLog, now);
}

}  // namespace cmap::trace
