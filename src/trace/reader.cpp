#include "trace/reader.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace cmap::trace {
namespace {

// Bounded field decoder over one record's payload bytes.
struct FieldReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!wire::get_varint(data, size, &pos, &v)) ok = false;
    return v;
  }
  std::uint32_t u32() { return static_cast<std::uint32_t>(u64()); }
  std::int64_t s64() { return wire::unzigzag(u64()); }
  sim::Time time() { return static_cast<sim::Time>(u64()); }
  bool boolean() {
    if (pos >= size) {
      ok = false;
      return false;
    }
    return data[pos++] != 0;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (!ok || pos + n > size) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data + pos),
                  static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return s;
  }
  /// All payload bytes consumed, nothing trailing.
  bool done() const { return ok && pos == size; }
};

}  // namespace

TraceReader::TraceReader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail("cannot open '" + path + "'");
    return;
  }
  char buf[64 * 1024];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes_.insert(bytes_.end(), buf, buf + n);
  }
  std::fclose(f);
  parse_header();
}

TraceReader::TraceReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {
  parse_header();
}

void TraceReader::fail(const std::string& what) {
  if (error_.empty()) error_ = what;
}

void TraceReader::parse_header() {
  if (bytes_.size() < 5 || bytes_[0] != 'C' || bytes_[1] != 'M' ||
      bytes_[2] != 'T' || bytes_[3] != 'R') {
    fail("not a cmtrace file (bad magic)");
    return;
  }
  if (bytes_[4] != 1) {
    fail("unsupported cmtrace version " + std::to_string(bytes_[4]));
    return;
  }
  pos_ = 5;
  std::uint64_t mask = 0, count = 0;
  if (!wire::get_varint(bytes_.data(), bytes_.size(), &pos_, &mask) ||
      !wire::get_varint(bytes_.data(), bytes_.size(), &pos_, &count)) {
    fail("truncated header");
    return;
  }
  if (count > 64) {
    fail("implausible category count in header");
    return;
  }
  categories_ = static_cast<std::uint32_t>(mask);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t every = 0;
    if (!wire::get_varint(bytes_.data(), bytes_.size(), &pos_, &every)) {
      fail("truncated header");
      return;
    }
    sample_every_.push_back(static_cast<std::uint32_t>(every));
  }
}

bool TraceReader::parse_body(Category c, const std::uint8_t* data,
                             std::size_t size, Record* out) {
  FieldReader f{data, size};
  switch (c) {
    case Category::kPhyTx: {
      PhyTxRecord r;
      r.node = f.u32();
      r.frame_id = f.u64();
      r.rate = f.u32();
      r.bytes = f.u32();
      r.duration = f.time();
      out->body = r;
      break;
    }
    case Category::kPhyRx: {
      PhyRxRecord r;
      r.node = f.u32();
      r.frame_id = f.u64();
      r.tx_node = f.u32();
      r.ok = f.boolean();
      r.min_sinr_cdb = static_cast<std::int32_t>(f.s64());
      out->body = r;
      break;
    }
    case Category::kPhyCollision: {
      PhyCollisionRecord r;
      r.node = f.u32();
      r.frame_id = f.u64();
      r.reason = static_cast<CollisionReason>(f.u32());
      out->body = r;
      break;
    }
    case Category::kMacDefer: {
      MacDeferRecord r;
      r.node = f.u32();
      r.dst = f.u32();
      r.deferred = f.boolean();
      r.reason = static_cast<DeferReason>(f.u32());
      r.blocker_src = f.u32();
      r.blocker_dst = f.u32();
      r.until = f.time();
      out->body = r;
      break;
    }
    case Category::kDeferTable: {
      DeferTableRecord r;
      r.node = f.u32();
      r.op = static_cast<DeferTableOp>(f.u32());
      r.dst = f.u32();
      r.src = f.u32();
      r.via = f.u32();
      r.my_rate = f.u32();
      r.their_rate = f.u32();
      r.expires = f.time();
      out->body = r;
      break;
    }
    case Category::kOngoing: {
      OngoingRecord r;
      r.node = f.u32();
      r.op = static_cast<OngoingOp>(f.u32());
      r.src = f.u32();
      r.dst = f.u32();
      r.end_time = f.time();
      out->body = r;
      break;
    }
    case Category::kMove: {
      MoveRecord r;
      r.node = f.u32();
      r.x_mm = f.s64();
      r.y_mm = f.s64();
      out->body = r;
      break;
    }
    case Category::kChannelEpoch: {
      ChannelEpochRecord r;
      r.epoch = f.u64();
      out->body = r;
      break;
    }
    case Category::kLog: {
      LogRecord r;
      r.level = f.u32();
      r.component = f.str();
      r.message = f.str();
      out->body = r;
      break;
    }
    case Category::kCount:
      return false;
  }
  return f.done();
}

bool TraceReader::next(Record* out) {
  if (!ok() || pos_ >= bytes_.size()) return false;
  const std::size_t record_start = pos_;
  std::uint64_t len = 0;
  if (!wire::get_varint(bytes_.data(), bytes_.size(), &pos_, &len)) {
    fail("truncated record length at byte " + std::to_string(record_start));
    return false;
  }
  if (pos_ + len > bytes_.size()) {
    fail("truncated record at byte " + std::to_string(record_start) +
         " (need " + std::to_string(len) + " bytes, have " +
         std::to_string(bytes_.size() - pos_) + ")");
    return false;
  }
  const std::size_t end = pos_ + static_cast<std::size_t>(len);
  std::uint64_t cat = 0, delta = 0;
  if (!wire::get_varint(bytes_.data(), end, &pos_, &cat) ||
      !wire::get_varint(bytes_.data(), end, &pos_, &delta)) {
    fail("truncated record header at byte " + std::to_string(record_start));
    return false;
  }
  if (cat >= kCategoryCount) {
    fail("unknown category " + std::to_string(cat) + " at byte " +
         std::to_string(record_start));
    return false;
  }
  out->category = static_cast<Category>(cat);
  last_tick_ += static_cast<sim::Time>(delta);
  out->tick = last_tick_;
  raw_pos_ = pos_;
  raw_size_ = end - pos_;
  if (!parse_body(out->category, bytes_.data() + pos_, end - pos_, out)) {
    fail(std::string("malformed ") + category_name(out->category) +
         " payload at byte " + std::to_string(record_start));
    return false;
  }
  pos_ = end;
  return true;
}

std::vector<Record> read_all(const std::string& path, std::string* error) {
  TraceReader reader(path);
  std::vector<Record> records;
  Record r;
  while (reader.next(&r)) records.push_back(r);
  if (error != nullptr) *error = reader.error();
  return records;
}

void DeferTableReplay::apply(const Record& r) {
  if (r.category != Category::kDeferTable) return;
  const auto& d = std::get<DeferTableRecord>(r.body);
  auto& table = tables_[d.node];
  const Key key{d.dst, d.src, d.via, d.my_rate, d.their_rate};
  switch (d.op) {
    case DeferTableOp::kInsert:
    case DeferTableOp::kRefresh:
      table[key] = d.expires;
      break;
    case DeferTableOp::kExpire:
      // Reclamation only ever drops entries whose TTL lapsed; liveness is
      // decided by `expires` alone, so nothing to do (see class comment).
      break;
  }
}

std::vector<DeferTableReplay::Entry> DeferTableReplay::live(
    std::uint32_t node, sim::Time at) const {
  std::vector<Entry> out;
  const auto it = tables_.find(node);
  if (it == tables_.end()) return out;
  for (const auto& [key, expires] : it->second) {
    if (expires <= at) continue;
    Entry e;
    e.dst = std::get<0>(key);
    e.src = std::get<1>(key);
    e.via = std::get<2>(key);
    e.my_rate = std::get<3>(key);
    e.their_rate = std::get<4>(key);
    e.expires = expires;
    out.push_back(e);
  }
  return out;  // std::map iteration == canonical key order
}

std::vector<std::uint32_t> DeferTableReplay::nodes() const {
  std::vector<std::uint32_t> out;
  out.reserve(tables_.size());
  for (const auto& [node, table] : tables_) out.push_back(node);
  return out;
}

void OngoingReplay::apply(const Record& r) {
  if (r.category != Category::kOngoing) return;
  const auto& o = std::get<OngoingRecord>(r.body);
  auto& list = lists_[o.node];
  const Key key{o.src, o.dst};
  switch (o.op) {
    case OngoingOp::kNote:
    case OngoingOp::kUpdate:
      list[key] = o.end_time;
      break;
    case OngoingOp::kExpire:
      // Reclamation only drops entries whose end time already passed;
      // liveness is decided by end_time alone (see class comment).
      break;
  }
}

std::vector<OngoingReplay::Entry> OngoingReplay::live(std::uint32_t node,
                                                      sim::Time at) const {
  std::vector<Entry> out;
  const auto it = lists_.find(node);
  if (it == lists_.end()) return out;
  for (const auto& [key, end_time] : it->second) {
    // Exclusive boundary, matching OngoingList: at == end_time is dead.
    if (end_time <= at) continue;
    out.push_back(Entry{key.first, key.second, end_time});
  }
  return out;  // std::map iteration == canonical (src, dst) order
}

std::vector<std::uint32_t> OngoingReplay::nodes() const {
  std::vector<std::uint32_t> out;
  out.reserve(lists_.size());
  for (const auto& [node, list] : lists_) out.push_back(node);
  return out;
}

namespace {

const char* defer_reason_name(DeferReason r) {
  switch (r) {
    case DeferReason::kNone: return "none";
    case DeferReason::kDstBusy: return "dst_busy";
    case DeferReason::kConflictMap: return "conflict_map";
  }
  return "?";
}

const char* table_op_name(DeferTableOp op) {
  switch (op) {
    case DeferTableOp::kInsert: return "insert";
    case DeferTableOp::kRefresh: return "refresh";
    case DeferTableOp::kExpire: return "expire";
  }
  return "?";
}

const char* ongoing_op_name(OngoingOp op) {
  switch (op) {
    case OngoingOp::kNote: return "note";
    case OngoingOp::kUpdate: return "update";
    case OngoingOp::kExpire: return "expire";
  }
  return "?";
}

const char* collision_reason_name(CollisionReason r) {
  switch (r) {
    case CollisionReason::kPreambleSinr: return "preamble_sinr";
    case CollisionReason::kCaptured: return "captured";
    case CollisionReason::kLocalTx: return "local_tx";
  }
  return "?";
}

void appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

// "*" for the broadcast wildcard id in defer-table patterns.
std::string id_or_star(std::uint32_t id) {
  if (id == 0xffffffffu) return "*";
  return std::to_string(id);
}

}  // namespace

std::string describe(const Record& r) {
  std::string out;
  appendf(&out, "%" PRId64 " %s", r.tick, category_name(r.category));
  switch (r.category) {
    case Category::kPhyTx: {
      const auto& b = std::get<PhyTxRecord>(r.body);
      appendf(&out, " node=%u frame=%" PRIu64 " rate=%u bytes=%u dur=%" PRId64,
              b.node, b.frame_id, b.rate, b.bytes, b.duration);
      break;
    }
    case Category::kPhyRx: {
      const auto& b = std::get<PhyRxRecord>(r.body);
      appendf(&out, " node=%u frame=%" PRIu64 " from=%u ok=%d min_sinr=%.2fdB",
              b.node, b.frame_id, b.tx_node, b.ok ? 1 : 0,
              b.min_sinr_cdb / 100.0);
      break;
    }
    case Category::kPhyCollision: {
      const auto& b = std::get<PhyCollisionRecord>(r.body);
      appendf(&out, " node=%u frame=%" PRIu64 " reason=%s", b.node, b.frame_id,
              collision_reason_name(b.reason));
      break;
    }
    case Category::kMacDefer: {
      const auto& b = std::get<MacDeferRecord>(r.body);
      appendf(&out, " node=%u dst=%u decision=%s", b.node, b.dst,
              b.deferred ? "defer" : "send");
      if (b.deferred) {
        appendf(&out, " reason=%s blocker=%u->%u until=%" PRId64,
                defer_reason_name(b.reason), b.blocker_src, b.blocker_dst,
                b.until);
      }
      break;
    }
    case Category::kDeferTable: {
      const auto& b = std::get<DeferTableRecord>(r.body);
      appendf(&out,
              " node=%u op=%s pattern=(%s: %s->%s) rates=%u/%u"
              " expires=%" PRId64,
              b.node, table_op_name(b.op), id_or_star(b.dst).c_str(),
              id_or_star(b.src).c_str(), id_or_star(b.via).c_str(), b.my_rate,
              b.their_rate, b.expires);
      break;
    }
    case Category::kOngoing: {
      const auto& b = std::get<OngoingRecord>(r.body);
      appendf(&out, " node=%u op=%s tx=%u->%u end=%" PRId64, b.node,
              ongoing_op_name(b.op), b.src, b.dst, b.end_time);
      break;
    }
    case Category::kMove: {
      const auto& b = std::get<MoveRecord>(r.body);
      appendf(&out, " node=%u x=%.3fm y=%.3fm", b.node, b.x_mm / 1000.0,
              b.y_mm / 1000.0);
      break;
    }
    case Category::kChannelEpoch: {
      const auto& b = std::get<ChannelEpochRecord>(r.body);
      appendf(&out, " epoch=%" PRIu64, b.epoch);
      break;
    }
    case Category::kLog: {
      const auto& b = std::get<LogRecord>(r.body);
      appendf(&out, " level=%u [%s] %s", b.level, b.component.c_str(),
              b.message.c_str());
      break;
    }
    case Category::kCount:
      break;
  }
  return out;
}

Divergence first_divergence(TraceReader& a, TraceReader& b) {
  Divergence d;
  for (std::uint64_t i = 0;; ++i) {
    Record ra, rb;
    const bool have_a = a.next(&ra);
    const bool have_b = b.next(&rb);
    d.index = i;  // on a clean non-divergence this ends as the record count
    if (!have_a && !have_b) return d;  // both ended together: no divergence
    if (have_a != have_b) {
      d.diverged = true;
      d.a_ended = !have_a;
      d.b_ended = !have_b;
      if (have_a) d.a = ra;
      if (have_b) d.b = rb;
      return d;
    }
    const bool same = ra.tick == rb.tick && ra.category == rb.category &&
                      a.raw_size() == b.raw_size() &&
                      std::equal(a.raw_body(), a.raw_body() + a.raw_size(),
                                 b.raw_body());
    if (!same) {
      d.diverged = true;
      d.a = ra;
      d.b = rb;
      return d;
    }
  }
}

}  // namespace cmap::trace
