#include "trace/reader.h"

#include <cstdio>

namespace cmap::trace {
namespace {

// Bounded field decoder over one record's payload bytes.
struct FieldReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!wire::get_varint(data, size, &pos, &v)) ok = false;
    return v;
  }
  std::uint32_t u32() { return static_cast<std::uint32_t>(u64()); }
  std::int64_t s64() { return wire::unzigzag(u64()); }
  sim::Time time() { return static_cast<sim::Time>(u64()); }
  bool boolean() {
    if (pos >= size) {
      ok = false;
      return false;
    }
    return data[pos++] != 0;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (!ok || pos + n > size) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data + pos),
                  static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return s;
  }
  /// All payload bytes consumed, nothing trailing.
  bool done() const { return ok && pos == size; }
};

}  // namespace

TraceReader::TraceReader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail("cannot open '" + path + "'");
    return;
  }
  char buf[64 * 1024];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes_.insert(bytes_.end(), buf, buf + n);
  }
  std::fclose(f);
  parse_header();
}

TraceReader::TraceReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {
  parse_header();
}

void TraceReader::fail(const std::string& what) {
  if (error_.empty()) error_ = what;
}

void TraceReader::parse_header() {
  if (bytes_.size() < 5 || bytes_[0] != 'C' || bytes_[1] != 'M' ||
      bytes_[2] != 'T' || bytes_[3] != 'R') {
    fail("not a cmtrace file (bad magic)");
    return;
  }
  if (bytes_[4] != 1) {
    fail("unsupported cmtrace version " + std::to_string(bytes_[4]));
    return;
  }
  pos_ = 5;
  std::uint64_t mask = 0, count = 0;
  if (!wire::get_varint(bytes_.data(), bytes_.size(), &pos_, &mask) ||
      !wire::get_varint(bytes_.data(), bytes_.size(), &pos_, &count)) {
    fail("truncated header");
    return;
  }
  if (count > 64) {
    fail("implausible category count in header");
    return;
  }
  categories_ = static_cast<std::uint32_t>(mask);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t every = 0;
    if (!wire::get_varint(bytes_.data(), bytes_.size(), &pos_, &every)) {
      fail("truncated header");
      return;
    }
    sample_every_.push_back(static_cast<std::uint32_t>(every));
  }
}

bool TraceReader::parse_body(Category c, const std::uint8_t* data,
                             std::size_t size, Record* out) {
  FieldReader f{data, size};
  switch (c) {
    case Category::kPhyTx: {
      PhyTxRecord r;
      r.node = f.u32();
      r.frame_id = f.u64();
      r.rate = f.u32();
      r.bytes = f.u32();
      r.duration = f.time();
      out->body = r;
      break;
    }
    case Category::kPhyRx: {
      PhyRxRecord r;
      r.node = f.u32();
      r.frame_id = f.u64();
      r.tx_node = f.u32();
      r.ok = f.boolean();
      r.min_sinr_cdb = static_cast<std::int32_t>(f.s64());
      out->body = r;
      break;
    }
    case Category::kPhyCollision: {
      PhyCollisionRecord r;
      r.node = f.u32();
      r.frame_id = f.u64();
      r.reason = static_cast<CollisionReason>(f.u32());
      out->body = r;
      break;
    }
    case Category::kMacDefer: {
      MacDeferRecord r;
      r.node = f.u32();
      r.dst = f.u32();
      r.deferred = f.boolean();
      r.reason = static_cast<DeferReason>(f.u32());
      r.blocker_src = f.u32();
      r.blocker_dst = f.u32();
      r.until = f.time();
      out->body = r;
      break;
    }
    case Category::kDeferTable: {
      DeferTableRecord r;
      r.node = f.u32();
      r.op = static_cast<DeferTableOp>(f.u32());
      r.dst = f.u32();
      r.src = f.u32();
      r.via = f.u32();
      r.my_rate = f.u32();
      r.their_rate = f.u32();
      r.expires = f.time();
      out->body = r;
      break;
    }
    case Category::kOngoing: {
      OngoingRecord r;
      r.node = f.u32();
      r.op = static_cast<OngoingOp>(f.u32());
      r.src = f.u32();
      r.dst = f.u32();
      r.end_time = f.time();
      out->body = r;
      break;
    }
    case Category::kMove: {
      MoveRecord r;
      r.node = f.u32();
      r.x_mm = f.s64();
      r.y_mm = f.s64();
      out->body = r;
      break;
    }
    case Category::kChannelEpoch: {
      ChannelEpochRecord r;
      r.epoch = f.u64();
      out->body = r;
      break;
    }
    case Category::kLog: {
      LogRecord r;
      r.level = f.u32();
      r.component = f.str();
      r.message = f.str();
      out->body = r;
      break;
    }
    case Category::kCount:
      return false;
  }
  return f.done();
}

bool TraceReader::next(Record* out) {
  if (!ok() || pos_ >= bytes_.size()) return false;
  const std::size_t record_start = pos_;
  std::uint64_t len = 0;
  if (!wire::get_varint(bytes_.data(), bytes_.size(), &pos_, &len)) {
    fail("truncated record length at byte " + std::to_string(record_start));
    return false;
  }
  if (pos_ + len > bytes_.size()) {
    fail("truncated record at byte " + std::to_string(record_start) +
         " (need " + std::to_string(len) + " bytes, have " +
         std::to_string(bytes_.size() - pos_) + ")");
    return false;
  }
  const std::size_t end = pos_ + static_cast<std::size_t>(len);
  std::uint64_t cat = 0, delta = 0;
  if (!wire::get_varint(bytes_.data(), end, &pos_, &cat) ||
      !wire::get_varint(bytes_.data(), end, &pos_, &delta)) {
    fail("truncated record header at byte " + std::to_string(record_start));
    return false;
  }
  if (cat >= kCategoryCount) {
    fail("unknown category " + std::to_string(cat) + " at byte " +
         std::to_string(record_start));
    return false;
  }
  out->category = static_cast<Category>(cat);
  last_tick_ += static_cast<sim::Time>(delta);
  out->tick = last_tick_;
  raw_pos_ = pos_;
  raw_size_ = end - pos_;
  if (!parse_body(out->category, bytes_.data() + pos_, end - pos_, out)) {
    fail(std::string("malformed ") + category_name(out->category) +
         " payload at byte " + std::to_string(record_start));
    return false;
  }
  pos_ = end;
  return true;
}

std::vector<Record> read_all(const std::string& path, std::string* error) {
  TraceReader reader(path);
  std::vector<Record> records;
  Record r;
  while (reader.next(&r)) records.push_back(r);
  if (error != nullptr) *error = reader.error();
  return records;
}

void DeferTableReplay::apply(const Record& r) {
  if (r.category != Category::kDeferTable) return;
  const auto& d = std::get<DeferTableRecord>(r.body);
  auto& table = tables_[d.node];
  const Key key{d.dst, d.src, d.via, d.my_rate, d.their_rate};
  switch (d.op) {
    case DeferTableOp::kInsert:
    case DeferTableOp::kRefresh:
      table[key] = d.expires;
      break;
    case DeferTableOp::kExpire:
      // Reclamation only ever drops entries whose TTL lapsed; liveness is
      // decided by `expires` alone, so nothing to do (see class comment).
      break;
  }
}

std::vector<DeferTableReplay::Entry> DeferTableReplay::live(
    std::uint32_t node, sim::Time at) const {
  std::vector<Entry> out;
  const auto it = tables_.find(node);
  if (it == tables_.end()) return out;
  for (const auto& [key, expires] : it->second) {
    if (expires <= at) continue;
    Entry e;
    e.dst = std::get<0>(key);
    e.src = std::get<1>(key);
    e.via = std::get<2>(key);
    e.my_rate = std::get<3>(key);
    e.their_rate = std::get<4>(key);
    e.expires = expires;
    out.push_back(e);
  }
  return out;  // std::map iteration == canonical key order
}

std::vector<std::uint32_t> DeferTableReplay::nodes() const {
  std::vector<std::uint32_t> out;
  out.reserve(tables_.size());
  for (const auto& [node, table] : tables_) out.push_back(node);
  return out;
}

}  // namespace cmap::trace
