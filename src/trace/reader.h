// Decoder for .cmtrace streams (the format Tracer writes; see
// docs/trace_format.md) plus the conflict-map replayer the trace_dump tool
// and the replay-consistency tests are built on. Malformed or truncated
// input never decodes silently: next() stops and error() explains.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

#include "trace/trace.h"

namespace cmap::trace {

struct PhyTxRecord {
  std::uint32_t node = 0;
  std::uint64_t frame_id = 0;
  std::uint32_t rate = 0;
  std::uint32_t bytes = 0;
  sim::Time duration = 0;
};

struct PhyRxRecord {
  std::uint32_t node = 0;
  std::uint64_t frame_id = 0;
  std::uint32_t tx_node = 0;
  bool ok = false;
  std::int32_t min_sinr_cdb = 0;  // centi-dB, clamped
};

struct PhyCollisionRecord {
  std::uint32_t node = 0;
  std::uint64_t frame_id = 0;
  CollisionReason reason = CollisionReason::kPreambleSinr;
};

struct MacDeferRecord {
  std::uint32_t node = 0;
  std::uint32_t dst = 0;
  bool deferred = false;
  DeferReason reason = DeferReason::kNone;
  std::uint32_t blocker_src = 0;
  std::uint32_t blocker_dst = 0;
  sim::Time until = 0;
};

struct DeferTableRecord {
  std::uint32_t node = 0;
  DeferTableOp op = DeferTableOp::kInsert;
  std::uint32_t dst = 0;
  std::uint32_t src = 0;
  std::uint32_t via = 0;
  std::uint32_t my_rate = 0;
  std::uint32_t their_rate = 0;
  sim::Time expires = 0;
};

struct OngoingRecord {
  std::uint32_t node = 0;
  OngoingOp op = OngoingOp::kNote;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  sim::Time end_time = 0;
};

struct MoveRecord {
  std::uint32_t node = 0;
  std::int64_t x_mm = 0;
  std::int64_t y_mm = 0;
};

struct ChannelEpochRecord {
  std::uint64_t epoch = 0;
};

struct LogRecord {
  std::uint32_t level = 0;
  std::string component;
  std::string message;
};

struct Record {
  Category category = Category::kPhyTx;
  sim::Time tick = 0;  // absolute (deltas resolved by the reader)
  std::variant<PhyTxRecord, PhyRxRecord, PhyCollisionRecord, MacDeferRecord,
               DeferTableRecord, OngoingRecord, MoveRecord, ChannelEpochRecord,
               LogRecord>
      body;
};

class TraceReader {
 public:
  /// Read and decode the header from a file; ok() is false (with error())
  /// if the file is missing, too short, or not a trace.
  explicit TraceReader(const std::string& path);
  /// Decode from an in-memory byte string (tests).
  explicit TraceReader(std::vector<std::uint8_t> bytes);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// Header fields.
  std::uint32_t categories() const { return categories_; }
  const std::vector<std::uint32_t>& sample_every() const {
    return sample_every_;
  }

  /// Decode the next record. Returns false at clean end-of-stream AND on a
  /// decode error — check error() to tell them apart (empty = clean EOF).
  bool next(Record* out);

  /// Payload bytes of the record most recently returned by next(), valid
  /// until the next call. merge_streams re-emits these verbatim so field
  /// round-tripping (e.g. the move record's mm quantization) cannot perturb
  /// a merged stream.
  const std::uint8_t* raw_body() const { return bytes_.data() + raw_pos_; }
  std::size_t raw_size() const { return raw_size_; }

 private:
  void fail(const std::string& what);
  void parse_header();
  bool parse_body(Category c, const std::uint8_t* data, std::size_t size,
                  Record* out);

  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::size_t raw_pos_ = 0;
  std::size_t raw_size_ = 0;
  sim::Time last_tick_ = 0;
  std::uint32_t categories_ = 0;
  std::vector<std::uint32_t> sample_every_;
  std::string error_;
};

/// Convenience: decode every record of `path`. On malformed input, returns
/// the records decoded so far and sets *error (never silently partial).
std::vector<Record> read_all(const std::string& path, std::string* error);

/// Reconstructs each node's DeferTable contents from a stream of
/// kDeferTable records. Feed records in file order via apply(); live(node,
/// at) then answers "which entries were live at time `at`" — an entry is
/// live iff the most recent insert/refresh gave it expires > at, exactly
/// DeferTable's TTL rule. Expire records need no replay action: the table
/// only ever reclaims entries whose TTL already lapsed, so reclamation can
/// never change the TTL-live set this class reports.
///
/// Requires the trace to carry kDeferTable unsampled (sample_every == 1);
/// a decimated mutation stream cannot be replayed.
class DeferTableReplay {
 public:
  struct Entry {
    std::uint32_t dst = 0;
    std::uint32_t src = 0;
    std::uint32_t via = 0;
    std::uint32_t my_rate = 0;
    std::uint32_t their_rate = 0;
    sim::Time expires = 0;
  };

  /// Apply one decoded record; records of other categories are ignored.
  void apply(const Record& r);

  /// Entries of `node`'s table live at time `at` (expires > at), sorted by
  /// (dst, src, via, my_rate, their_rate) — a canonical order so two
  /// reconstructions compare with ==.
  std::vector<Entry> live(std::uint32_t node, sim::Time at) const;

  /// Every node id that appeared in a defer-table record, sorted.
  std::vector<std::uint32_t> nodes() const;

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                         std::uint32_t, std::uint32_t>;
  std::map<std::uint32_t, std::map<Key, sim::Time>> tables_;
};

/// Reconstructs each node's OngoingList from a stream of kOngoing records,
/// the same way DeferTableReplay reconstructs defer tables. note/update
/// set the (src, dst) pair's announced end time; expire records need no
/// replay action — the list only reclaims entries whose end time already
/// passed, and liveness here is decided by end_time alone (an entry is
/// live strictly before its end time, OngoingList's exclusive boundary).
///
/// Requires the trace to carry kOngoing unsampled (sample_every == 1).
class OngoingReplay {
 public:
  struct Entry {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    sim::Time end_time = 0;
  };

  /// Apply one decoded record; records of other categories are ignored.
  void apply(const Record& r);

  /// Entries of `node`'s list live at time `at` (end_time > at), sorted by
  /// (src, dst) — a canonical order so two reconstructions compare with ==.
  std::vector<Entry> live(std::uint32_t node, sim::Time at) const;

  /// Every node id that appeared in an ongoing record, sorted.
  std::vector<std::uint32_t> nodes() const;

 private:
  using Key = std::pair<std::uint32_t, std::uint32_t>;  // (src, dst)
  std::map<std::uint32_t, std::map<Key, sim::Time>> lists_;
};

/// One-line human description of a decoded record — "<tick> <category>
/// field=value ..." — shared by trace_dump, trace_diff, and their tests.
std::string describe(const Record& r);

/// Where two streams first disagree (tools/trace_diff). Streams are
/// aligned record-by-record and compared on (tick, category, payload
/// bytes); the payload comparison is exact, so any field difference —
/// including ones describe() rounds — registers.
struct Divergence {
  bool diverged = false;    // false: streams are byte-equivalent
  /// 0-based record index of the first difference; when !diverged, the
  /// number of records compared.
  std::uint64_t index = 0;
  bool a_ended = false;     // stream A stopped (EOF or decode error) first
  bool b_ended = false;
  Record a;                 // the differing record; valid when !a_ended
  Record b;                 // valid when !b_ended
};

/// Align two readers and report the first divergence. Headers are not
/// compared (streams recorded with different category masks can still be
/// record-identical); decode errors surface through each reader's error().
Divergence first_divergence(TraceReader& a, TraceReader& b);

}  // namespace cmap::trace
