// Merge per-partition .cmtrace streams into one time-ordered stream.
//
// A PDES run writes one trace file per partition (plus the global
// sequencer's stream): each is tick-monotone on its own, but a reader
// wanting the whole run needs them interleaved. merge_streams k-way merges
// on (tick, input index) — input index as the tie-breaker makes the output
// a pure function of the input files, so merging the same run twice is
// byte-identical. Record payloads are copied verbatim (TraceReader raw
// bytes, Tracer::emit_raw), so no field ever round-trips through a decode.
#pragma once

#include <string>
#include <vector>

namespace cmap::trace {

/// Merge `inputs` (at least one) into `out_path`. The output header takes
/// the union of the input category masks and the first input's sampling
/// config (records were already sampled at write time). Returns false and
/// explains in *error (if non-null) when an input is missing or malformed.
/// Header errors are caught before the output is created; a record-level
/// decode error mid-merge aborts and may leave a partial output file.
bool merge_streams(const std::vector<std::string>& inputs,
                   const std::string& out_path, std::string* error);

}  // namespace cmap::trace
