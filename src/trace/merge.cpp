#include "trace/merge.h"

#include <memory>

#include "trace/reader.h"
#include "trace/trace.h"

namespace cmap::trace {
namespace {

// One input stream being merged: its reader plus the decoded-but-not-yet-
// emitted head record.
struct Head {
  std::unique_ptr<TraceReader> reader;
  Record record;
  bool live = false;
};

}  // namespace

bool merge_streams(const std::vector<std::string>& inputs,
                   const std::string& out_path, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (inputs.empty()) return fail("merge_streams: no input files");

  std::vector<Head> heads(inputs.size());
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    heads[i].reader = std::make_unique<TraceReader>(inputs[i]);
    TraceReader& r = *heads[i].reader;
    if (!r.ok()) return fail(inputs[i] + ": " + r.error());
    mask |= r.categories();
    heads[i].live = r.next(&heads[i].record);
    if (!heads[i].live && !r.ok()) return fail(inputs[i] + ": " + r.error());
  }

  TraceConfig config;
  config.path = out_path;
  config.categories = mask;
  // Records were sampled at write time; carry the first input's declared
  // rates through so downstream consumers (DeferTableReplay's "unsampled"
  // requirement) still see them, but never re-decimate here.
  const auto& declared = heads.front().reader->sample_every();
  for (std::size_t c = 0; c < kCategoryCount && c < declared.size(); ++c) {
    config.sample_every[c] = declared[c];
  }
  Tracer out(config);

  for (;;) {
    std::size_t best = heads.size();
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (!heads[i].live) continue;
      if (best == heads.size() ||
          heads[i].record.tick < heads[best].record.tick) {
        best = i;  // strict <: earlier input index wins tick ties
      }
    }
    if (best == heads.size()) break;
    Head& h = heads[best];
    out.emit_raw(h.record.category, h.record.tick, h.reader->raw_body(),
                 h.reader->raw_size());
    h.live = h.reader->next(&h.record);
    if (!h.live && !h.reader->ok()) {
      return fail(inputs[best] + ": " + h.reader->error());
    }
  }
  return true;
}

}  // namespace cmap::trace
