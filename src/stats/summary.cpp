#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/assert.h"

namespace cmap::stats {

void Distribution::add(double value) {
  values_.push_back(value);
  sorted_valid_ = false;
}

void Distribution::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Distribution::min() const {
  ensure_sorted();
  CMAP_ASSERT(!sorted_.empty(), "min of empty distribution");
  return sorted_.front();
}

double Distribution::max() const {
  ensure_sorted();
  CMAP_ASSERT(!sorted_.empty(), "max of empty distribution");
  return sorted_.back();
}

double Distribution::mean() const {
  CMAP_ASSERT(!values_.empty(), "mean of empty distribution");
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Distribution::stddev() const {
  const double m = mean();
  double sq = 0;
  for (double v : values_) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values_.size()));
}

double Distribution::percentile(double p) const {
  ensure_sorted();
  CMAP_ASSERT(!sorted_.empty(), "percentile of empty distribution");
  CMAP_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Distribution::cdf_at(double x) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::vector<Distribution::CdfRow> Distribution::cdf_rows() const {
  ensure_sorted();
  std::vector<CdfRow> rows;
  rows.reserve(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    rows.push_back(
        {sorted_[i],
         static_cast<double>(i + 1) / static_cast<double>(sorted_.size())});
  }
  return rows;
}

std::string describe(const Distribution& d) {
  if (d.empty()) return "(no samples)";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "median %.2f (p25 %.2f, p75 %.2f, mean %.2f, n=%zu)",
                d.median(), d.percentile(25), d.percentile(75), d.mean(),
                d.count());
  return buf;
}

}  // namespace cmap::stats
