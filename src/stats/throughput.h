// Windowed goodput accounting, matching the paper's method (§5.1): count
// unique packet bytes delivered during the measurement window (the last 60
// of 100 seconds) and divide by the window length.
#pragma once

#include "sim/time.h"

namespace cmap::stats {

class ThroughputMeter {
 public:
  ThroughputMeter() = default;
  ThroughputMeter(sim::Time window_begin, sim::Time window_end)
      : begin_(window_begin), end_(window_end) {}

  void set_window(sim::Time window_begin, sim::Time window_end) {
    begin_ = window_begin;
    end_ = window_end;
  }

  /// Record a delivered (non-duplicate) packet.
  void on_packet(std::size_t bytes, sim::Time now) {
    if (now < begin_ || now >= end_) return;
    bits_ += 8.0 * static_cast<double>(bytes);
    ++packets_;
  }

  double bits() const { return bits_; }
  std::uint64_t packets() const { return packets_; }
  double bps() const {
    const double secs = sim::to_seconds(end_ - begin_);
    return secs > 0 ? bits_ / secs : 0.0;
  }
  double mbps() const { return bps() / 1e6; }

 private:
  sim::Time begin_ = 0;
  sim::Time end_ = 0;
  double bits_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace cmap::stats
