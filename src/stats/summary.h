// Distribution summaries for experiment outputs: percentiles, means, and
// CDF rows matching the paper's figures.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cmap::stats {

class Distribution {
 public:
  void add(double value);
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// Interpolated percentile; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Fraction of samples <= x (empirical CDF evaluated at x).
  double cdf_at(double x) const;

  /// Evenly spaced (value, cumulative fraction) rows for plotting a CDF.
  struct CdfRow {
    double value;
    double fraction;
  };
  std::vector<CdfRow> cdf_rows() const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Format helper: "median 4.60 (p25 2.51, p75 7.43, mean 4.87)".
std::string describe(const Distribution& d);

}  // namespace cmap::stats
