#include "stats/report.h"

#include <cinttypes>
#include <cmath>

namespace cmap::stats {

double RunRow::metric(const std::string& name, double fallback) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return fallback;
}

std::string SweepReport::Group::label() const {
  if (variant.empty()) return scheme;
  return scheme + " " + variant;
}

std::vector<SweepReport::Group> SweepReport::groups() const {
  std::vector<Group> out;
  for (const auto& row : rows_) {
    bool known = false;
    for (const auto& g : out) {
      known = known || (g.scheme == row.scheme && g.variant == row.variant);
    }
    if (!known) out.push_back({row.scheme, row.variant});
  }
  return out;
}

Distribution SweepReport::aggregate(const std::string& scheme,
                                    const std::string& variant) const {
  Distribution d;
  for (const auto& row : rows_) {
    if (row.scheme == scheme && row.variant == variant) {
      d.add(row.aggregate_mbps);
    }
  }
  return d;
}

Distribution SweepReport::metric(const std::string& name,
                                 const std::string& scheme,
                                 const std::string& variant) const {
  Distribution d;
  for (const auto& row : rows_) {
    if (row.scheme != scheme || row.variant != variant) continue;
    for (const auto& [key, value] : row.metrics) {
      if (key == name) d.add(value);
    }
  }
  return d;
}

Distribution SweepReport::per_flow_mbps(const std::string& scheme,
                                        const std::string& variant) const {
  Distribution d;
  for (const auto& row : rows_) {
    if (row.scheme != scheme || row.variant != variant) continue;
    for (const auto& f : row.flows) d.add(f.mbps);
  }
  return d;
}

const RunRow* SweepReport::find(const std::string& scheme, int topology_index,
                                const std::string& variant,
                                int replicate) const {
  for (const auto& row : rows_) {
    if (row.scheme == scheme && row.variant == variant &&
        row.topology_index == topology_index && row.replicate == replicate) {
      return &row;
    }
  }
  return nullptr;
}

std::vector<double> SweepReport::aggregates_of(const std::string& scheme,
                                               const std::string& variant)
    const {
  std::vector<double> out;
  for (const auto& row : rows_) {
    if (row.scheme == scheme && row.variant == variant) {
      out.push_back(row.aggregate_mbps);
    }
  }
  return out;
}

void print_distribution_line(std::FILE* out, const char* name,
                             const Distribution& d) {
  if (d.empty()) {
    std::fprintf(out, "%-16s (no samples)\n", name);
    return;
  }
  std::fprintf(
      out,
      "%-16s n=%-3zu p10=%6.2f p25=%6.2f median=%6.2f p75=%6.2f p90=%6.2f "
      "mean=%6.2f\n",
      name, d.count(), d.percentile(10), d.percentile(25), d.median(),
      d.percentile(75), d.percentile(90), d.mean());
}

void SweepReport::print_table(std::FILE* out) const {
  for (const auto& g : groups()) {
    print_distribution_line(out, g.label().c_str(),
                            aggregate(g.scheme, g.variant));
  }
}

namespace {

// JSON string escaping for the label/name fields we emit (ASCII content;
// control characters and quotes only).
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Shortest round-trippable formatting keeps the output deterministic and
// re-parseable (%.17g always round-trips an IEEE double).
void append_json_number(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

metrics::MetricsSnapshot SweepReport::aggregate_metrics() const {
  std::vector<const metrics::MetricsSnapshot*> snaps;
  for (const auto& row : rows_) {
    if (row.profile) snaps.push_back(row.profile.get());
  }
  return metrics::aggregate_counters(snaps);
}

void SweepReport::print_metrics(std::FILE* out) const {
  for (const auto& g : groups()) {
    std::vector<const metrics::MetricsSnapshot*> snaps;
    for (const auto& row : rows_) {
      if (row.scheme == g.scheme && row.variant == g.variant && row.profile) {
        snaps.push_back(row.profile.get());
      }
    }
    if (snaps.empty()) continue;
    std::fprintf(out, "%s (%zu runs)\n", g.label().c_str(), snaps.size());
    metrics::aggregate_counters(snaps).print_counters(out);
  }
  const metrics::MetricsSnapshot total = aggregate_metrics();
  if (total.domains == 0) return;
  std::fprintf(out, "total\n");
  total.print_counters(out);
}

std::string SweepReport::metrics_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& g : groups()) {
    std::vector<const metrics::MetricsSnapshot*> snaps;
    for (const auto& row : rows_) {
      if (row.scheme == g.scheme && row.variant == g.variant && row.profile) {
        snaps.push_back(row.profile.get());
      }
    }
    if (snaps.empty()) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, g.label());
    out += ':';
    out += metrics::aggregate_counters(snaps).counters_json();
  }
  if (!first) out += ',';
  out += "\"total\":";
  out += aggregate_metrics().counters_json();
  out += '}';
  return out;
}

std::string SweepReport::to_json() const {
  std::string out = "{\"runs\":[";
  bool first_row = true;
  for (const auto& row : rows_) {
    if (!first_row) out += ',';
    first_row = false;
    out += "{\"scenario\":";
    append_json_string(out, row.scenario);
    out += ",\"scheme\":";
    append_json_string(out, row.scheme);
    out += ",\"variant\":";
    append_json_string(out, row.variant);
    out += ",\"topology_index\":";
    append_json_u64(out, static_cast<std::uint64_t>(row.topology_index));
    out += ",\"replicate\":";
    append_json_u64(out, static_cast<std::uint64_t>(row.replicate));
    out += ",\"topology\":";
    append_json_string(out, row.topology);
    out += ",\"seed\":";
    append_json_u64(out, row.seed);
    out += ",\"aggregate_mbps\":";
    append_json_number(out, row.aggregate_mbps);
    out += ",\"flows\":[";
    bool first_flow = true;
    for (const auto& f : row.flows) {
      if (!first_flow) out += ',';
      first_flow = false;
      out += "{\"src\":";
      append_json_u64(out, f.src);
      out += ",\"dst\":";
      append_json_u64(out, f.dst);
      out += ",\"mbps\":";
      append_json_number(out, f.mbps);
      out += ",\"unique_packets\":";
      append_json_u64(out, f.unique_packets);
      out += ",\"duplicates\":";
      append_json_u64(out, f.duplicates);
      out += ",\"vps_sent\":";
      append_json_u64(out, f.vps_sent);
      out += ",\"rx_vps_delim\":";
      append_json_u64(out, f.rx_vps_delim);
      out += ",\"rx_vps_header\":";
      append_json_u64(out, f.rx_vps_header);
      out += ",\"defer_events\":";
      append_json_u64(out, f.defer_events);
      out += ",\"retx_timeouts\":";
      append_json_u64(out, f.retx_timeouts);
      out += '}';
    }
    out += "],\"metrics\":{";
    bool first_metric = true;
    for (const auto& [key, value] : row.metrics) {
      if (!first_metric) out += ',';
      first_metric = false;
      append_json_string(out, key);
      out += ':';
      append_json_number(out, value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace cmap::stats
