// Structured results of a scenario sweep: one row per executed run, plus
// group-by accessors (scheme x variant), percentile distributions, and
// deterministic emitters (aligned table, JSON). The report is plain data —
// it does not depend on the testbed or scenario layers, so any harness can
// assemble one.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "metrics/metrics.h"
#include "stats/summary.h"

namespace cmap::stats {

/// Per-flow measurements of one run (mirrors testbed::FlowResult, but as
/// plain data so the stats layer stays at the bottom of the dependency
/// graph).
struct FlowRow {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double mbps = 0.0;
  std::uint64_t unique_packets = 0;
  std::uint64_t duplicates = 0;
  // CMAP-only observability (zero under DCF schemes).
  std::uint64_t vps_sent = 0;
  std::uint64_t rx_vps_delim = 0;
  std::uint64_t rx_vps_header = 0;
  std::uint64_t defer_events = 0;
  std::uint64_t retx_timeouts = 0;
};

/// One executed run of a sweep cell.
struct RunRow {
  std::string scenario;
  std::string scheme;   // display name of the MAC scheme
  std::string variant;  // config-variant label; "" when the sweep has none
  int scheme_index = 0;
  int variant_index = 0;
  int topology_index = 0;  // which topology draw
  int replicate = 0;       // which seed replicate
  std::string topology;    // human-readable topology label
  std::uint64_t seed = 0;  // the fully mixed per-run seed
  double aggregate_mbps = 0.0;
  std::vector<FlowRow> flows;
  /// Scenario-specific named scalars, in a stable order.
  std::vector<std::pair<std::string, double>> metrics;
  /// The run's full metrics snapshot, when the sweep enabled metrics
  /// (nullptr otherwise). Deliberately excluded from print_table() and
  /// to_json(), which stay byte-identical with metrics on or off; emit it
  /// with print_metrics() / metrics_json().
  std::shared_ptr<const metrics::MetricsSnapshot> profile;

  /// Value of a named metric, or `fallback` when absent.
  double metric(const std::string& name, double fallback = 0.0) const;
};

class SweepReport {
 public:
  void add_row(RunRow row) { rows_.push_back(std::move(row)); }
  const std::vector<RunRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// One (scheme, variant) cell of the sweep's comparison axes, in
  /// first-appearance (i.e. axis) order.
  struct Group {
    std::string scheme;
    std::string variant;
    std::string label() const;
  };
  std::vector<Group> groups() const;

  /// Distribution of aggregate goodput across a group's runs.
  Distribution aggregate(const std::string& scheme,
                         const std::string& variant = "") const;

  /// Distribution of a named run metric across a group's runs.
  Distribution metric(const std::string& name, const std::string& scheme,
                      const std::string& variant = "") const;

  /// Distribution of per-flow goodput across a group's runs.
  Distribution per_flow_mbps(const std::string& scheme,
                             const std::string& variant = "") const;

  /// The row of one sweep cell, or nullptr if it was dropped/not run.
  const RunRow* find(const std::string& scheme, int topology_index,
                     const std::string& variant = "", int replicate = 0) const;

  /// Aggregate-goodput rows of one group, ordered by (topology, replicate).
  /// Rows line up across schemes for paired comparisons only when no run
  /// of the group was dropped (use find() otherwise).
  std::vector<double> aggregates_of(const std::string& scheme,
                                    const std::string& variant = "") const;

  /// One aligned percentile line per group (the bench house style).
  void print_table(std::FILE* out = stdout) const;

  /// Deterministic JSON: identical bytes for identical rows, regardless of
  /// how many threads produced them.
  std::string to_json() const;

  /// Sum/max-merge of the counter sections across every row with a
  /// profile (empty-domain snapshot when none have one).
  metrics::MetricsSnapshot aggregate_metrics() const;

  /// The per-sweep aggregated metrics table: one aligned counter line per
  /// (scheme, variant) group, then the sweep-wide aggregate. Counter rows
  /// only — deterministic across thread and partition counts.
  void print_metrics(std::FILE* out = stdout) const;

  /// Deterministic JSON of the aggregated counter sections, keyed by group
  /// label plus a "total": {"CMAP":{...},...,"total":{...}}.
  std::string metrics_json() const;

 private:
  std::vector<RunRow> rows_;
};

/// Single-line percentile summary, e.g. for print_table-style output.
void print_distribution_line(std::FILE* out, const char* name,
                             const Distribution& d);

}  // namespace cmap::stats
