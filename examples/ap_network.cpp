// A §5.6-style wireless LAN on the simulated 50-node testbed: N access
// points in distinct regions, one saturated AP<->client flow per cell,
// compared across 802.11 and CMAP.
//
// Usage: ap_network [n_aps=4] [seconds=20] [seed=1]
#include <cstdio>
#include <cstdlib>

#include "testbed/experiment.h"
#include "testbed/topology_picker.h"

using namespace cmap;

int main(int argc, char** argv) {
  const int n_aps = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 20.0;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 1;

  testbed::Testbed tb({.seed = seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(seed);
  const auto scenario = picker.ap_scenario(n_aps, rng);
  if (!scenario) {
    std::printf("no %d-AP scenario exists in this building (seed %llu)\n",
                n_aps, static_cast<unsigned long long>(seed));
    return 1;
  }

  std::printf("WLAN with %d cells (seed %llu):\n", n_aps,
              static_cast<unsigned long long>(seed));
  std::vector<testbed::Flow> flows;
  for (const auto& cell : scenario->cells) {
    std::printf("  AP %2u at (%4.1f, %4.1f)  client %2u  %s\n", cell.ap,
                tb.position(cell.ap).x, tb.position(cell.ap).y, cell.client,
                cell.downlink ? "downlink" : "uplink");
    flows.push_back({cell.sender(), cell.receiver()});
  }

  for (auto scheme : {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
                      testbed::Scheme::kCmap}) {
    testbed::RunConfig rc;
    rc.scheme = scheme;
    rc.duration = sim::seconds(seconds);
    rc.warmup = rc.duration * 2 / 5;
    rc.seed = seed;
    const auto result = run_flows(tb, flows, rc);
    std::printf("\n%-14s aggregate %6.2f Mbit/s  per-flow:",
                scheme_name(scheme), result.aggregate_mbps);
    for (const auto& f : result.flows) std::printf(" %5.2f", f.mbps);
    std::printf("\n");
  }
  std::printf("\nPaper (§5.6): CMAP beats the status quo by 21%%..47%% on "
              "aggregate in such topologies.\n");
  return 0;
}
