// A §5.6-style wireless LAN on the simulated 50-node testbed: N access
// points in distinct regions, one saturated AP<->client flow per cell,
// swept across 802.11 and CMAP via the ap_wlan_N registry scenarios.
//
// Usage: ap_network [n_aps=4] [seconds=20] [seed=1]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/sweep.h"

using namespace cmap;

int main(int argc, char** argv) {
  const int n_aps = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 20.0;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 1;
  if (n_aps < 3 || n_aps > 6) {
    std::printf("n_aps must be in 3..6 (got %d)\n", n_aps);
    return 1;
  }

  testbed::Testbed tb({.seed = seed});
  scenario::Sweep sweep;
  sweep.scenario = "ap_wlan_" + std::to_string(n_aps);
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
                   testbed::Scheme::kCmap};
  sweep.topologies = 1;
  sweep.base_seed = seed;
  sweep.duration = sim::seconds(seconds);
  sweep.warmup = sim::seconds(seconds) * 2 / 5;

  const auto cells = scenario::SweepRunner::draw_topologies(sweep, tb);
  if (cells.empty()) {
    std::printf("no %d-AP scenario exists in this building (seed %llu)\n",
                n_aps, static_cast<unsigned long long>(seed));
    return 1;
  }
  std::printf("WLAN with %d cells (seed %llu):\n", n_aps,
              static_cast<unsigned long long>(seed));
  for (const auto& f : cells[0].flows) {
    std::printf("  %2u (%4.1f, %4.1f) -> %2u (%4.1f, %4.1f)\n", f.src,
                tb.position(f.src).x, tb.position(f.src).y, f.dst,
                tb.position(f.dst).x, tb.position(f.dst).y);
  }

  const auto report = scenario::SweepRunner().run(sweep, tb);
  for (const auto& row : report.rows()) {
    std::printf("\n%-14s aggregate %6.2f Mbit/s  per-flow:",
                row.scheme.c_str(), row.aggregate_mbps);
    for (const auto& f : row.flows) std::printf(" %5.2f", f.mbps);
    std::printf("\n");
  }
  std::printf("\nPaper (§5.6): CMAP beats the status quo by 21%%..47%% on "
              "aggregate in such topologies.\n");
  return 0;
}
