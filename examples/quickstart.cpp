// Quickstart for the declarative scenario API, end to end:
//   1. DEFINE a scenario (how to draw topologies, what to execute),
//   2. REGISTER it by name,
//   3. SWEEP it across MAC schemes on a thread pool,
//   4. READ the structured report (table + JSON).
// The builtin catalog (scenario/registry.h) covers the paper's figures;
// this defines a fresh scenario to show how little a new workload takes.
#include <cstdio>

#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "testbed/topology_picker.h"

using namespace cmap;

int main() {
  // 1. DEFINE: strong exposed-terminal pairs — the builtin fig12_exposed
  // draw, narrowed to pairs whose four links are all near-perfect, where
  // concurrency should pay off most.
  scenario::Scenario strong;
  strong.name = "strong_exposed";
  strong.description = "exposed pairs whose links all have PRR > 0.95";
  strong.topology = [](const testbed::Testbed& tb, int count, sim::Rng& rng) {
    testbed::TopologyPicker picker(tb);
    std::vector<scenario::TopologyInstance> out;
    for (const auto& p : picker.exposed_pairs(count * 3, rng)) {
      if (static_cast<int>(out.size()) >= count) break;
      if (tb.prr(p.s1, p.r1) < 0.95 || tb.prr(p.s2, p.r2) < 0.95) continue;
      scenario::TopologyInstance inst;
      inst.flows = {{p.s1, p.r1}, {p.s2, p.r2}};
      inst.label = scenario::describe_flows(inst.flows);
      out.push_back(inst);
    }
    return out;
  };
  // (No custom executor: the default saturates every flow and measures
  // windowed goodput, exactly like the paper's experiments.)

  // 2. REGISTER.
  scenario::ScenarioRegistry::global().add(strong);

  // 3. SWEEP: 8 topology draws x {802.11, CMAP}, executed in parallel.
  testbed::Testbed tb({.seed = 1});
  scenario::Sweep sweep;
  sweep.scenario = "strong_exposed";
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCmap};
  sweep.topologies = 8;
  sweep.duration = sim::seconds(10);
  sweep.warmup = sim::seconds(4);
  const auto report = scenario::SweepRunner().run(sweep, tb);

  // 4. READ the report.
  std::printf("Exposed terminals on the 50-node testbed (%zu runs):\n\n",
              report.rows().size());
  report.print_table();
  const auto cs = report.aggregate("CS,acks");
  const auto cm = report.aggregate("CMAP");
  if (!cs.empty()) {
    std::printf("\nCMAP/802.11 median aggregate gain: %.2fx  (paper: ~2x)\n",
                cm.median() / cs.median());
  }
  std::printf("\nFirst JSON bytes of the structured report:\n%.200s...\n",
              report.to_json().c_str());
  std::printf("\nCarrier sense serialized the senders; CMAP's conflict map\n"
              "found no conflict and let both transmit concurrently.\n");
  return 0;
}
