// Quickstart: build a two-pair exposed-terminal scenario by hand and watch
// CMAP double the aggregate throughput relative to 802.11 carrier sense.
//
// This walks the public API bottom-up: simulator -> medium -> radios ->
// MACs -> traffic, without the testbed harness.
#include <cstdio>
#include <memory>

#include "core/cmap_mac.h"
#include "mac80211/dcf.h"
#include "net/traffic.h"
#include "phy/medium.h"
#include "phy/radio.h"

using namespace cmap;

namespace {

// Classic exposed-terminal geometry: the two senders hear each other, but
// each receiver is far from the other sender.
//
//      B <--- A        X ---> Y
//     (5m)      (15m gap)      (5m)
constexpr phy::Position kA{5, 0}, kB{0, 0}, kX{20, 0}, kY{25, 0};

template <typename MacT, typename MacConfigT>
double run_scheme(const char* name, MacConfigT mac_config) {
  sim::Simulator simulator;
  phy::MediumConfig mcfg;
  mcfg.fading_sigma_db = 0.0;
  phy::Medium medium(simulator, std::make_shared<phy::FriisPropagation>(),
                     mcfg, sim::Rng(7));
  auto error_model = std::make_shared<phy::NistErrorModel>();

  auto make_radio = [&](phy::NodeId id, phy::Position pos) {
    return std::make_unique<phy::Radio>(simulator, medium, id, pos,
                                        phy::RadioConfig{}, error_model,
                                        sim::Rng(100 + id));
  };
  auto ra = make_radio(1, kA), rb = make_radio(2, kB);
  auto rx = make_radio(3, kX), ry = make_radio(4, kY);

  auto make_mac = [&](phy::Radio& r) {
    return std::make_unique<MacT>(simulator, r, mac_config,
                                  sim::Rng(200 + r.id()));
  };
  auto ma = make_mac(*ra), mb = make_mac(*rb);
  auto mx = make_mac(*rx), my = make_mac(*ry);

  net::PacketSink sink_b(*mb, simulator), sink_y(*my, simulator);
  const sim::Time duration = sim::seconds(5);
  sink_b.set_window(sim::seconds(1), duration);
  sink_y.set_window(sim::seconds(1), duration);

  net::SaturatedSource flow1(*ma, 1, 2);
  net::SaturatedSource flow2(*mx, 3, 4);

  simulator.run_until(duration);
  const double total = sink_b.meter().mbps() + sink_y.meter().mbps();
  std::printf("%-22s A->B %5.2f Mbit/s   X->Y %5.2f Mbit/s   total %5.2f\n",
              name, sink_b.meter().mbps(), sink_y.meter().mbps(), total);
  return total;
}

}  // namespace

int main() {
  std::printf("Exposed terminals, two concurrent flows, 6 Mbit/s PHY:\n\n");

  mac80211::DcfConfig csma;  // defaults: carrier sense + ACKs
  const double cs = run_scheme<mac80211::DcfMac>("802.11 (CS, acks)", csma);

  core::CmapConfig cmap;  // paper §4.2 defaults
  const double cm = run_scheme<core::CmapMac>("CMAP", cmap);

  std::printf("\nCMAP/802.11 aggregate gain: %.2fx  (paper: ~2x)\n", cm / cs);
  std::printf("Carrier sense serialized the senders; CMAP's conflict map\n"
              "found no conflict and let both transmit concurrently.\n");
  return 0;
}
