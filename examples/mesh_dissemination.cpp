// The §5.7 two-hop content dissemination mesh: a source broadcasts a batch
// to three forwarders, which then push it onward concurrently — the phase
// where exposed terminals among forwarders pay off. Runs the registry's
// mesh_dissemination scenario (a custom two-phase executor) on one draw.
//
// Usage: mesh_dissemination [seconds=20] [seed=1]
#include <cstdio>
#include <cstdlib>

#include "scenario/sweep.h"

using namespace cmap;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 20.0;
  const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 1;

  testbed::Testbed tb({.seed = seed});
  scenario::Sweep sweep;
  sweep.scenario = "mesh_dissemination";
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCmap};
  sweep.topologies = 1;
  sweep.base_seed = seed;
  sweep.duration = sim::seconds(seconds);

  const auto topos = scenario::SweepRunner::draw_topologies(sweep, tb);
  if (topos.empty()) {
    std::printf("no mesh scenario found (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 1;
  }
  std::printf("mesh: %s\n\n", topos[0].label.c_str());

  const auto report = scenario::SweepRunner().run(sweep, tb);
  for (const auto& row : report.rows()) {
    std::printf("%-14s", row.scheme.c_str());
    for (std::size_t i = 0; i < row.flows.size(); ++i) {
      std::printf("  B%zu: %4.2f", i + 1, row.flows[i].mbps);
    }
    std::printf("  | aggregate %5.2f Mbit/s (min of the two hops per path)\n",
                row.aggregate_mbps);
  }
  std::printf("\nPaper (§5.7): CMAP's aggregate is ~52%% higher because the "
              "forwarders are frequently exposed terminals.\n");
  return 0;
}
