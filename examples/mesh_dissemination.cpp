// The §5.7 two-hop content dissemination mesh: a source broadcasts a batch
// to three forwarders, which then push it onward concurrently — the phase
// where exposed terminals among forwarders pay off.
//
// Usage: mesh_dissemination [seconds=20] [seed=1]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "testbed/experiment.h"
#include "testbed/topology_picker.h"

using namespace cmap;

namespace {

void run_scheme(const testbed::Testbed& tb, const testbed::MeshScenario& sc,
                testbed::Scheme scheme, double seconds, std::uint64_t seed) {
  testbed::RunConfig rc;
  rc.scheme = scheme;
  rc.duration = sim::seconds(seconds);
  rc.warmup = rc.duration / 5;
  rc.seed = seed;

  // Phase 1: source broadcast.
  testbed::World w1(tb, rc);
  w1.add_node(sc.s);
  for (auto a : sc.a) w1.add_node(a);
  w1.add_saturated_flow(sc.s, phy::kBroadcastId);
  w1.set_measurement_window(rc.warmup, rc.duration);
  w1.run(rc.duration);

  // Phase 2: concurrent forwarding.
  testbed::World w2(tb, rc);
  for (std::size_t i = 0; i < sc.a.size(); ++i) {
    w2.add_saturated_flow(sc.a[i], sc.b[i]);
  }
  w2.set_measurement_window(rc.warmup, rc.duration);
  w2.run(rc.duration);

  double total = 0;
  std::printf("%-14s", scheme_name(scheme));
  for (std::size_t i = 0; i < sc.a.size(); ++i) {
    const double hop1 = w1.sink(sc.a[i]).meter().mbps();
    const double hop2 = w2.sink(sc.b[i]).meter().mbps();
    const double path = std::min(hop1, hop2);
    total += path;
    std::printf("  B%zu: min(%4.2f, %4.2f) = %4.2f", i + 1, hop1, hop2, path);
  }
  std::printf("  | aggregate %5.2f Mbit/s\n", total);
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 20.0;
  const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 1;

  testbed::Testbed tb({.seed = seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(seed ^ 0x57);
  const auto sc = picker.mesh_scenario(3, rng);
  if (!sc) {
    std::printf("no mesh scenario found (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 1;
  }
  std::printf("mesh: S=%u -> A={%u,%u,%u} -> B={%u,%u,%u}\n\n", sc->s,
              sc->a[0], sc->a[1], sc->a[2], sc->b[0], sc->b[1], sc->b[2]);
  run_scheme(tb, *sc, testbed::Scheme::kCsma, seconds, seed);
  run_scheme(tb, *sc, testbed::Scheme::kCmap, seconds, seed);
  std::printf("\nPaper (§5.7): CMAP's aggregate is ~52%% higher because the "
              "forwarders are frequently exposed terminals.\n");
  return 0;
}
