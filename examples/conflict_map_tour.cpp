// A guided tour of the conflict map converging (§3.1): two conflicting
// flows start blind, receivers accumulate loss evidence against the
// interferer, interferer lists travel, defer tables fill, and the senders
// begin interleaving. Prints the distributed state every second.
//
// This example deliberately stays BELOW the declarative scenario API
// (scenario/sweep.h) — it hand-places four radios and pokes at MAC
// internals mid-run, which is exactly the kind of bespoke instrumentation
// the low-level simulator/medium/radio escape hatch exists for.
//
// Usage: conflict_map_tour [seconds=10]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/cmap_mac.h"
#include "net/traffic.h"
#include "phy/medium.h"
#include "phy/radio.h"

using namespace cmap;

namespace {

void dump_node(const char* label, const core::CmapMac& mac, sim::Time now) {
  std::printf("  %s: defer-table %zu entries, %llu defer events, "
              "%llu ilists rx",
              label, mac.defer_table().size(),
              static_cast<unsigned long long>(mac.counters().defer_events),
              static_cast<unsigned long long>(mac.counters().ilists_received));
  for (const auto& e : mac.defer_table().entries()) {
    if (e.expires <= now) continue;
    std::printf("  [");
    if (e.dst == phy::kBroadcastId) {
      std::printf("*");
    } else {
      std::printf("%u", e.dst);
    }
    std::printf(" : %u->", e.src);
    if (e.via == phy::kBroadcastId) {
      std::printf("*");
    } else {
      std::printf("%u", e.via);
    }
    std::printf("]");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;

  // A (1) sends to B (2); X (3) sits next to B and sends to Y (4): the two
  // transmissions conflict in both directions.
  sim::Simulator simulator;
  phy::MediumConfig mcfg;
  mcfg.fading_sigma_db = 0.0;
  phy::Medium medium(simulator, std::make_shared<phy::FriisPropagation>(),
                     mcfg, sim::Rng(5));
  auto model = std::make_shared<phy::ThresholdErrorModel>(3.0);

  struct NodeDef {
    phy::NodeId id;
    phy::Position pos;
  };
  const NodeDef defs[] = {{1, {0, 0}}, {2, {20, 0}}, {3, {25, 0}}, {4, {50, 0}}};
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<core::CmapMac>> macs;
  for (const auto& d : defs) {
    radios.push_back(std::make_unique<phy::Radio>(
        simulator, medium, d.id, d.pos, phy::RadioConfig{}, model,
        sim::Rng(10 + d.id)));
    macs.push_back(std::make_unique<core::CmapMac>(
        simulator, *radios.back(), core::CmapConfig{}, sim::Rng(20 + d.id)));
  }
  net::PacketSink sink_b(*macs[1], simulator), sink_y(*macs[3], simulator);
  sink_b.set_window(0, sim::seconds(seconds));
  sink_y.set_window(0, sim::seconds(seconds));
  net::SaturatedSource f1(*macs[0], 1, 2);
  net::SaturatedSource f2(*macs[2], 3, 4);

  std::printf("topology: A(1) -> B(2) | X(3) -> Y(4); X sits beside B.\n"
              "Watch the conflict map converge:\n\n");
  for (int t = 1; t <= static_cast<int>(seconds); ++t) {
    simulator.at(sim::seconds(t), [&, t] {
      std::printf("t=%2ds  B<-A %6llu pkts   Y<-X %6llu pkts\n", t,
                  static_cast<unsigned long long>(sink_b.unique_packets()),
                  static_cast<unsigned long long>(sink_y.unique_packets()));
      dump_node("A", *macs[0], simulator.now());
      dump_node("X", *macs[2], simulator.now());
      const double lb = macs[1]->interferer_tracker().loss_rate(1, 3);
      const double ly = macs[3]->interferer_tracker().loss_rate(3, 1);
      std::printf("  B's loss(A | X active) = %.2f   "
                  "Y's loss(X | A active) = %.2f\n\n",
                  lb, ly);
    });
  }
  simulator.run_until(sim::seconds(seconds) + 1);

  std::printf("Final: %llu + %llu unique packets delivered.\n",
              static_cast<unsigned long long>(sink_b.unique_packets()),
              static_cast<unsigned long long>(sink_y.unique_packets()));
  std::printf("Rule 1 gave A the entry [2 : 3->*]; Rule 2 gave X [* : 1->2] "
              "(paper §3.1, Fig. 4).\n");
  return 0;
}
