// Hidden terminals (§5.5): two senders that cannot hear each other share a
// pair of receivers. The conflict map cannot help (no headers to overhear)
// — CMAP's loss-rate backoff is what prevents a meltdown. Runs the
// fig15_hidden registry scenario on one drawn pair and shows the backoff
// reacting (window timeouts in the flow rows).
//
// Usage: hidden_terminal [seconds=20] [seed=1]
#include <cstdio>
#include <cstdlib>

#include "scenario/sweep.h"

using namespace cmap;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 20.0;
  const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 1;

  testbed::Testbed tb({.seed = seed});
  scenario::Sweep sweep;
  sweep.scenario = "fig15_hidden";
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
                   testbed::Scheme::kCmap};
  sweep.topologies = 1;
  sweep.base_seed = seed;
  sweep.duration = sim::seconds(seconds);
  sweep.warmup = sim::seconds(seconds) * 2 / 5;

  const auto topos = scenario::SweepRunner::draw_topologies(sweep, tb);
  if (topos.empty()) {
    std::printf("no hidden-terminal configuration found (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 1;
  }
  const auto& f1 = topos[0].flows[0];
  const auto& f2 = topos[0].flows[1];
  std::printf("hidden pair: %s "
              "(senders cannot hear each other: PRR %0.2f / %0.2f)\n\n",
              topos[0].label.c_str(), tb.prr(f1.src, f2.src),
              tb.prr(f2.src, f1.src));

  const auto report = scenario::SweepRunner().run(sweep, tb);
  for (const auto& row : report.rows()) {
    std::printf("%-14s flow1 %5.2f  flow2 %5.2f  total %5.2f Mbit/s",
                row.scheme.c_str(), row.flows[0].mbps, row.flows[1].mbps,
                row.aggregate_mbps);
    if (row.flows[0].vps_sent > 0) {
      std::printf("  [%llu + %llu window timeouts]",
                  static_cast<unsigned long long>(row.flows[0].retx_timeouts),
                  static_cast<unsigned long long>(row.flows[1].retx_timeouts));
    }
    std::printf("\n");
  }
  std::printf("\nPaper (§5.5): CMAP performs comparably to 802.11 here — the "
              "loss-rate backoff absorbs what the conflict map cannot see.\n");
  return 0;
}
