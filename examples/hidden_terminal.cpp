// Hidden terminals (§5.5): two senders that cannot hear each other share a
// pair of receivers. The conflict map cannot help (no headers to overhear)
// — CMAP's loss-rate backoff is what prevents a meltdown. This example
// shows the backoff state machine reacting.
//
// Usage: hidden_terminal [seconds=20] [seed=1]
#include <cstdio>
#include <cstdlib>

#include "testbed/experiment.h"
#include "testbed/topology_picker.h"

using namespace cmap;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 20.0;
  const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 1;

  testbed::Testbed tb({.seed = seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(seed ^ 0x15);
  const auto pairs = picker.hidden_pairs(1, rng);
  if (pairs.empty()) {
    std::printf("no hidden-terminal configuration found (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 1;
  }
  const auto& p = pairs[0];
  std::printf("hidden pair: %u->%u and %u->%u "
              "(senders cannot hear each other: PRR %0.2f / %0.2f)\n\n",
              p.s1, p.r1, p.s2, p.r2, tb.prr(p.s1, p.s2), tb.prr(p.s2, p.s1));

  for (auto scheme : {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
                      testbed::Scheme::kCmap}) {
    testbed::RunConfig rc;
    rc.scheme = scheme;
    rc.duration = sim::seconds(seconds);
    rc.warmup = rc.duration * 2 / 5;
    rc.seed = seed;

    testbed::World world(tb, rc);
    world.add_saturated_flow(p.s1, p.r1);
    world.add_saturated_flow(p.s2, p.r2);
    world.run(rc.duration);
    const double t1 = world.sink(p.r1).meter().mbps();
    const double t2 = world.sink(p.r2).meter().mbps();
    std::printf("%-14s flow1 %5.2f  flow2 %5.2f  total %5.2f Mbit/s",
                scheme_name(scheme), t1, t2, t1 + t2);
    if (auto* cm = world.cmap(p.s1)) {
      std::printf("  [CW now %lld ms, %llu window timeouts]",
                  static_cast<long long>(
                      sim::to_milliseconds(cm->loss_backoff().cw())),
                  static_cast<unsigned long long>(
                      cm->counters().retx_timeouts));
    }
    std::printf("\n");
  }
  std::printf("\nPaper (§5.5): CMAP performs comparably to 802.11 here — the "
              "loss-rate backoff absorbs what the conflict map cannot see.\n");
  return 0;
}
