// Trace subsystem worked example (README "Tracing a run"):
//   1. sweep the paper's exposed-terminal scenario with tracing enabled
//      (PHY + MAC categories) so every run writes its own .cmtrace,
//   2. decode one of the streams with trace::TraceReader and summarize it,
//   3. replay the conflict-map mutations to reconstruct a node's
//      DeferTable mid-run — what `trace_dump --replay-defer-table` does.
// Usage: trace_demo [output_dir]   (default ./traces)
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "trace/reader.h"

using namespace cmap;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "traces";
  std::filesystem::create_directories(dir);

  // 1. A small fig12 sweep, tracing PHY frame lifecycle + every MAC
  // decision and conflict-map mutation. Each cell of the sweep writes
  // `<dir>/fig12_exposed_s<scheme>_v<var>_t<topo>_r<rep>.cmtrace`.
  scenario::Sweep sweep;
  sweep.scenario = "fig12_exposed";
  sweep.schemes = {testbed::Scheme::kCmap};
  sweep.topologies = 2;
  sweep.duration = sim::seconds(2);
  sweep.warmup = sim::seconds(1);
  trace::TraceConfig tc;
  tc.path = dir;
  tc.categories = trace::kPhyCategories | trace::kMacCategories;
  sweep.trace = tc;

  const testbed::Testbed tb({.seed = 1});  // the paper's 50-node floor
  const auto report = scenario::SweepRunner().run(sweep, tb);
  std::printf("ran %zu traced runs:\n", report.rows().size());
  std::vector<std::string> paths;
  for (const auto& row : report.rows()) {
    scenario::RunSpec spec;
    spec.scheme_index = row.scheme_index;
    spec.variant_index = row.variant_index;
    spec.topology_index = row.topology_index;
    spec.replicate = row.replicate;
    paths.push_back(scenario::trace_run_path(dir, row.scenario, spec));
    std::printf("  %s  (%s, %.2f Mbps)\n", paths.back().c_str(),
                row.topology.c_str(), row.aggregate_mbps);
  }
  if (paths.empty()) return 1;

  // 2. Decode the first stream and count records per category.
  const std::string& path = paths.front();
  trace::TraceReader reader(path);
  std::map<std::string, std::uint64_t> counts;
  sim::Time last_tick = 0;
  trace::DeferTableReplay replay;
  trace::Record r;
  while (reader.next(&r)) {
    ++counts[trace::category_name(r.category)];
    last_tick = r.tick;
    replay.apply(r);
  }
  if (!reader.ok()) {
    std::fprintf(stderr, "decode failed: %s\n", reader.error().c_str());
    return 1;
  }
  std::printf("\n%s:\n", path.c_str());
  for (const auto& [name, n] : counts) {
    std::printf("  %-13s %8llu records\n", name.c_str(),
                static_cast<unsigned long long>(n));
  }

  // 3. Reconstruct each sender's conflict map as of the final record —
  // the same reconstruction `trace_dump --replay-defer-table --tick T`
  // prints from the file alone.
  std::printf("\nconflict maps replayed at tick %lld:\n",
              static_cast<long long>(last_tick));
  for (std::uint32_t node : replay.nodes()) {
    const auto entries = replay.live(node, last_tick);
    std::printf("  node %u: %zu live defer entries\n", node, entries.size());
  }
  return 0;
}
