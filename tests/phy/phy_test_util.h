// Shared fixtures for radio/medium tests: a controlled world with Friis
// propagation, no fading, and a recording listener.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "phy/medium.h"
#include "phy/radio.h"

namespace cmap::phy::testing {

/// Records every listener callback in order.
class RecordingListener : public RadioListener {
 public:
  struct RxEvent {
    Frame frame;
    RxResult result;
  };

  void on_rx_start(const Frame& f, sim::Time end) override {
    rx_starts.push_back(f);
    (void)end;
  }
  void on_header_decoded(const Frame& f, bool ok) override {
    header_frames.push_back(f);
    header_ok.push_back(ok);
  }
  void on_rx_end(const Frame& f, const RxResult& r) override {
    rx_ends.push_back({f, r});
  }
  void on_salvage(const Frame& f, const RxResult& r) override {
    salvages.push_back({f, r});
  }
  void on_cca(bool busy) override { cca_changes.push_back(busy); }
  void on_tx_end(const Frame& f) override { tx_ends.push_back(f); }

  std::vector<Frame> rx_starts;
  std::vector<Frame> header_frames;
  std::vector<bool> header_ok;
  std::vector<RxEvent> rx_ends;
  std::vector<RxEvent> salvages;
  std::vector<bool> cca_changes;
  std::vector<Frame> tx_ends;
};

/// A little world: N radios on a line, configurable spacing, Friis
/// propagation, fading off, threshold or NIST error model.
class World {
 public:
  explicit World(std::shared_ptr<const ErrorModel> model,
                 MediumConfig mcfg = NoFadingConfig(),
                 std::shared_ptr<const PropagationModel> prop = nullptr)
      : model_(std::move(model)),
        medium_(sim_,
                prop ? std::move(prop) : std::make_shared<FriisPropagation>(),
                mcfg, sim::Rng(99)) {}

  static MediumConfig NoFadingConfig() {
    MediumConfig m;
    m.fading_sigma_db = 0.0;
    return m;
  }

  Radio& add_radio(NodeId id, Position pos, RadioConfig cfg = {}) {
    radios_.push_back(std::make_unique<Radio>(sim_, medium_, id, pos, cfg,
                                              model_, sim::Rng(1000 + id)));
    listeners_.push_back(std::make_unique<RecordingListener>());
    radios_.back()->set_listener(listeners_.back().get());
    return *radios_.back();
  }

  RecordingListener& listener(std::size_t i) { return *listeners_[i]; }
  Radio& radio(std::size_t i) { return *radios_[i]; }
  sim::Simulator& simulator() { return sim_; }
  Medium& medium() { return medium_; }

  /// A single-segment frame of `bytes` payload.
  static Frame whole_frame(std::size_t bytes,
                           WifiRate rate = WifiRate::k6Mbps) {
    Frame f;
    f.rate = rate;
    f.segments = {{SegmentKind::kWhole, bytes}};
    return f;
  }

  /// A header/body/trailer frame (integrated-PHY shape).
  static Frame hbt_frame(std::size_t header, std::size_t body,
                         std::size_t trailer,
                         WifiRate rate = WifiRate::k6Mbps) {
    Frame f;
    f.rate = rate;
    f.segments = {{SegmentKind::kHeader, header},
                  {SegmentKind::kBody, body},
                  {SegmentKind::kTrailer, trailer}};
    return f;
  }

 private:
  std::shared_ptr<const ErrorModel> model_;
  sim::Simulator sim_;
  Medium medium_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<RecordingListener>> listeners_;
};

}  // namespace cmap::phy::testing
