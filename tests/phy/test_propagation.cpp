#include "phy/propagation.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cmap::phy {
namespace {

TEST(Friis, DecaysTwentyDbPerDecade) {
  FriisPropagation p;
  const double at10 = p.rx_power_dbm(0.0, 0, 1, {0, 0}, {10, 0});
  const double at100 = p.rx_power_dbm(0.0, 0, 1, {0, 0}, {100, 0});
  EXPECT_NEAR(at10 - at100, 20.0, 1e-9);
}

TEST(Friis, ReferenceLossAt5GhzIsPlausible) {
  // FSPL at 1 m, 5.18 GHz is ~46.7 dB.
  FriisPropagation p;
  const double at1 = p.rx_power_dbm(0.0, 0, 1, {0, 0}, {1, 0});
  EXPECT_NEAR(at1, -46.7, 0.3);
}

TEST(Friis, ClampsBelowOneMeter) {
  FriisPropagation p;
  EXPECT_DOUBLE_EQ(p.rx_power_dbm(0.0, 0, 1, {0, 0}, {0.1, 0}),
                   p.rx_power_dbm(0.0, 0, 1, {0, 0}, {1.0, 0}));
}

TEST(Friis, TxPowerShiftsLinearly) {
  FriisPropagation p;
  const double lo = p.rx_power_dbm(0.0, 0, 1, {0, 0}, {25, 0});
  const double hi = p.rx_power_dbm(17.0, 0, 1, {0, 0}, {25, 0});
  EXPECT_NEAR(hi - lo, 17.0, 1e-9);
}

TEST(LogDistance, ExponentControlsSlope) {
  LogDistanceConfig cfg;
  cfg.exponent = 4.0;
  cfg.shadow_sigma_db = 0.0;
  cfg.asym_sigma_db = 0.0;
  LogDistanceShadowing p(cfg);
  const double at10 = p.rx_power_dbm(0.0, 0, 1, {0, 0}, {10, 0});
  const double at100 = p.rx_power_dbm(0.0, 0, 1, {0, 0}, {100, 0});
  EXPECT_NEAR(at10 - at100, 40.0, 1e-9);
}

TEST(LogDistance, ShadowingIsDeterministicPerPair) {
  LogDistanceShadowing p;
  const double a = p.rx_power_dbm(0.0, 3, 9, {0, 0}, {20, 0});
  const double b = p.rx_power_dbm(0.0, 3, 9, {0, 0}, {20, 0});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(LogDistance, SymmetricWhenAsymSigmaZero) {
  LogDistanceConfig cfg;
  cfg.asym_sigma_db = 0.0;
  LogDistanceShadowing p(cfg);
  const double ab = p.rx_power_dbm(0.0, 3, 9, {0, 0}, {20, 0});
  const double ba = p.rx_power_dbm(0.0, 9, 3, {20, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(ab, ba);
}

TEST(LogDistance, AsymmetryBoundedByDirectionalSigma) {
  LogDistanceConfig cfg;
  cfg.asym_sigma_db = 2.0;
  LogDistanceShadowing p(cfg);
  // Directional components are N(0, 2 dB); difference of two is N(0, ~2.8).
  // A 6-sigma bound across 100 pairs should never trip.
  for (NodeId i = 0; i < 10; ++i) {
    for (NodeId j = i + 1; j < 10; ++j) {
      const double ab = p.rx_power_dbm(0.0, i, j, {0, 0}, {20, 0});
      const double ba = p.rx_power_dbm(0.0, j, i, {20, 0}, {0, 0});
      EXPECT_LT(std::abs(ab - ba), 17.0);
    }
  }
}

TEST(LogDistance, DifferentSeedsDifferentBuildings) {
  LogDistanceConfig c1;
  c1.seed = 1;
  LogDistanceConfig c2;
  c2.seed = 2;
  LogDistanceShadowing p1(c1), p2(c2);
  int same = 0;
  for (NodeId i = 0; i < 20; ++i) {
    const double a = p1.rx_power_dbm(0.0, i, i + 1, {0, 0}, {20, 0});
    const double b = p2.rx_power_dbm(0.0, i, i + 1, {0, 0}, {20, 0});
    same += std::abs(a - b) < 1e-9;
  }
  EXPECT_LT(same, 3);
}

TEST(LogDistance, ShadowingHasRoughlyConfiguredSpread) {
  LogDistanceConfig cfg;
  cfg.shadow_sigma_db = 8.0;
  cfg.asym_sigma_db = 0.0;
  LogDistanceShadowing p(cfg);
  // Sample many pairs at equal distance; stddev of rx power ~ 8 dB.
  double sum = 0, sq = 0;
  int n = 0;
  for (NodeId i = 0; i < 60; ++i) {
    for (NodeId j = i + 1; j < 60; ++j) {
      const double v = p.rx_power_dbm(0.0, i, j, {0, 0}, {20, 0});
      sum += v;
      sq += v * v;
      ++n;
    }
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(sd, 8.0, 1.2);
}

}  // namespace
}  // namespace cmap::phy
