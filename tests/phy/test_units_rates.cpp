#include <gtest/gtest.h>

#include "phy/types.h"
#include "phy/units.h"
#include "phy/wifi_rate.h"

namespace cmap::phy {
namespace {

TEST(Units, DbmMwRoundTrip) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
  EXPECT_NEAR(dbm_to_mw(-94.0), 3.98e-10, 1e-11);
  for (double dbm : {-100.0, -50.0, 0.0, 20.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Units, DbLinearRoundTrip) {
  EXPECT_NEAR(db_to_linear(3.0103), 2.0, 1e-5);
  for (double db : {-20.0, -3.0, 0.0, 10.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}

TEST(Position, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(WifiRate, TableIsConsistent) {
  double prev_bps = 0.0;
  for (int i = 0; i < kNumWifiRates; ++i) {
    const auto& info = rate_info(static_cast<WifiRate>(i));
    EXPECT_GT(info.bits_per_second, prev_bps);
    prev_bps = info.bits_per_second;
    // data bits per 4us symbol must equal bps * 4us.
    EXPECT_NEAR(info.data_bits_per_symbol, info.bits_per_second * 4e-6, 1e-9);
  }
}

TEST(WifiRate, RateNamesMatch) {
  EXPECT_STREQ(rate_name(WifiRate::k6Mbps), "6Mbps");
  EXPECT_STREQ(rate_name(WifiRate::k54Mbps), "54Mbps");
}

TEST(WifiRate, FrameAirtime1400BytesAt6Mbps) {
  // 22 + 11200 bits = 11222 bits -> ceil(11222/24) = 468 symbols
  // = 1872 us payload + 20 us preamble.
  const sim::Time t = frame_airtime(WifiRate::k6Mbps, 1400);
  EXPECT_EQ(t, sim::microseconds(20 + 468 * 4));
}

TEST(WifiRate, FrameAirtimeSmallFrameAt6Mbps) {
  // 24-byte header packet: 22 + 192 = 214 bits -> 9 symbols = 36 us + 20.
  EXPECT_EQ(frame_airtime(WifiRate::k6Mbps, 24), sim::microseconds(56));
}

TEST(WifiRate, HigherRateIsShorter) {
  EXPECT_LT(frame_airtime(WifiRate::k18Mbps, 1400),
            frame_airtime(WifiRate::k12Mbps, 1400));
  EXPECT_LT(frame_airtime(WifiRate::k12Mbps, 1400),
            frame_airtime(WifiRate::k6Mbps, 1400));
}

TEST(WifiRate, PayloadAirtimeExcludesPreamble) {
  for (int i = 0; i < kNumWifiRates; ++i) {
    const auto rate = static_cast<WifiRate>(i);
    EXPECT_EQ(frame_airtime(rate, 100) - payload_airtime(rate, 100),
              kPlcpDuration);
  }
}

TEST(WifiRate, AirtimeRoundsUpToWholeSymbols) {
  // 1 byte at 54 Mbps: 30 bits -> 1 symbol.
  EXPECT_EQ(payload_airtime(WifiRate::k54Mbps, 1), kSymbolDuration);
  // 25 bytes at 54 Mbps: 222 bits -> 2 symbols (216 would not fit).
  EXPECT_EQ(payload_airtime(WifiRate::k54Mbps, 25), 2 * kSymbolDuration);
}

}  // namespace
}  // namespace cmap::phy
