// The uniform-grid spatial index must answer exactly the same neighbor
// sets a brute-force distance scan does — on random placements and on the
// adversarial ones (everything in one cell, one point per cell, points
// straddling cell boundaries), with membership tracking moves and
// removals. The sparse link-state paths build on these answers, so any
// discrepancy here becomes a silently-missing link there.
#include "phy/spatial_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/random.h"

namespace cmap::phy {
namespace {

std::vector<std::uint32_t> brute_force(const std::vector<Position>& pts,
                                       const std::vector<bool>& present,
                                       const Position& center, double radius) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (present[i] && distance(pts[i], center) <= radius) out.push_back(i);
  }
  return out;  // ascending by construction
}

void expect_grid_matches_brute(const SpatialGrid& grid,
                               const std::vector<Position>& pts,
                               const std::vector<bool>& present,
                               const std::vector<double>& radii) {
  std::vector<std::uint32_t> got;
  for (std::uint32_t c = 0; c < pts.size(); ++c) {
    if (!present[c]) continue;
    for (const double r : radii) {
      grid.query(pts[c], r, &got);
      EXPECT_EQ(got, brute_force(pts, present, pts[c], r))
          << "center " << c << " radius " << r;
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    }
  }
}

TEST(SpatialGrid, MatchesBruteForceOnRandomPlacements) {
  sim::Rng rng(7);
  std::vector<Position> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 60.0)});
  }
  const std::vector<bool> present(pts.size(), true);
  SpatialGrid grid(8.0);
  for (std::uint32_t i = 0; i < pts.size(); ++i) grid.insert(i, pts[i]);
  expect_grid_matches_brute(grid, pts, present, {0.0, 3.0, 8.0, 25.0, 500.0});
}

TEST(SpatialGrid, AllPointsInOneCell) {
  // Every point inside a single 100 m cell, including duplicates at the
  // exact same position (distance 0 must include co-located occupants).
  sim::Rng rng(11);
  std::vector<Position> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(10.0, 12.0), rng.uniform(10.0, 12.0)});
  }
  pts.push_back(pts.front());
  const std::vector<bool> present(pts.size(), true);
  SpatialGrid grid(100.0);
  for (std::uint32_t i = 0; i < pts.size(); ++i) grid.insert(i, pts[i]);
  expect_grid_matches_brute(grid, pts, present, {0.0, 0.5, 1.0, 3.0});
}

TEST(SpatialGrid, OnePointPerCellIncludingNegativeCoordinates) {
  std::vector<Position> pts;
  for (int gx = -3; gx <= 3; ++gx) {
    for (int gy = -3; gy <= 3; ++gy) {
      pts.push_back({gx * 5.0 + 2.5, gy * 5.0 + 2.5});
    }
  }
  const std::vector<bool> present(pts.size(), true);
  SpatialGrid grid(5.0);
  for (std::uint32_t i = 0; i < pts.size(); ++i) grid.insert(i, pts[i]);
  expect_grid_matches_brute(grid, pts, present, {0.0, 5.0, 7.5, 12.0, 100.0});
}

TEST(SpatialGrid, BoundaryStraddlingPointsAndExactRadii) {
  // Points exactly on cell edges/corners, queried with radii exactly equal
  // to inter-point distances: the <= contract means ties are included.
  std::vector<Position> pts = {{0.0, 0.0}, {5.0, 0.0},  {0.0, 5.0},
                               {5.0, 5.0}, {10.0, 0.0}, {-5.0, 0.0},
                               {2.5, 2.5}, {5.0, 2.5}};
  const std::vector<bool> present(pts.size(), true);
  SpatialGrid grid(5.0);
  for (std::uint32_t i = 0; i < pts.size(); ++i) grid.insert(i, pts[i]);
  expect_grid_matches_brute(grid, pts, present,
                            {0.0, 2.5, 5.0, std::sqrt(50.0), 10.0});
  // Spot-check a tie: radius exactly 5 from the origin reaches (5,0),
  // (0,5), (-5,0) and the interior (2.5,2.5), but not (5,5).
  std::vector<std::uint32_t> got;
  grid.query({0.0, 0.0}, 5.0, &got);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2, 5, 6}));
}

TEST(SpatialGrid, InfiniteRadiusReturnsEveryone) {
  SpatialGrid grid(2.0);
  std::vector<Position> pts = {{0, 0}, {1e6, -1e6}, {-42.0, 7.0}};
  for (std::uint32_t i = 0; i < pts.size(); ++i) grid.insert(i, pts[i]);
  std::vector<std::uint32_t> got;
  grid.query({3.0, 3.0}, std::numeric_limits<double>::infinity(), &got);
  EXPECT_EQ(got, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(SpatialGrid, MovesRebucketCorrectly) {
  sim::Rng rng(23);
  std::vector<Position> pts;
  for (int i = 0; i < 80; ++i) {
    pts.push_back({rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)});
  }
  std::vector<bool> present(pts.size(), true);
  SpatialGrid grid(6.0);
  for (std::uint32_t i = 0; i < pts.size(); ++i) grid.insert(i, pts[i]);
  // Move half the points (some within their cell, some far away), checking
  // equivalence after every batch.
  for (int round = 0; round < 4; ++round) {
    for (std::uint32_t i = 0; i < pts.size(); i += 2) {
      const bool local = rng.bernoulli(0.5);
      pts[i] = local ? Position{pts[i].x + rng.uniform(-0.5, 0.5),
                                pts[i].y + rng.uniform(-0.5, 0.5)}
                     : Position{rng.uniform(-20.0, 70.0),
                                rng.uniform(-20.0, 70.0)};
      grid.move(i, pts[i]);
      EXPECT_DOUBLE_EQ(grid.position(i).x, pts[i].x);
      EXPECT_DOUBLE_EQ(grid.position(i).y, pts[i].y);
    }
    expect_grid_matches_brute(grid, pts, present, {4.0, 15.0});
  }
}

TEST(SpatialGrid, RemoveDropsMembership) {
  std::vector<Position> pts = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  std::vector<bool> present(pts.size(), true);
  SpatialGrid grid(10.0);
  for (std::uint32_t i = 0; i < pts.size(); ++i) grid.insert(i, pts[i]);
  grid.remove(1);
  present[1] = false;
  EXPECT_EQ(grid.size(), 3u);
  EXPECT_FALSE(grid.contains(1));
  expect_grid_matches_brute(grid, pts, present, {10.0});
  // Re-inserting a removed index is allowed.
  grid.insert(1, {9.0, 9.0});
  pts[1] = {9.0, 9.0};
  present[1] = true;
  expect_grid_matches_brute(grid, pts, present, {2.0, 20.0});
}

}  // namespace
}  // namespace cmap::phy
