#include "phy/error_model.h"

#include <gtest/gtest.h>

#include "phy/units.h"

namespace cmap::phy {
namespace {

TEST(NistErrorModel, SuccessMonotonicInSinr) {
  NistErrorModel m;
  double prev = 0.0;
  for (double db = -10.0; db <= 20.0; db += 0.5) {
    const double s = m.chunk_success(db_to_linear(db), 11200, WifiRate::k6Mbps);
    EXPECT_GE(s, prev - 1e-12) << "at " << db << " dB";
    prev = s;
  }
}

TEST(NistErrorModel, HighSinrDecodesLowSinrFails) {
  NistErrorModel m;
  EXPECT_GT(m.chunk_success(db_to_linear(15.0), 11200, WifiRate::k6Mbps),
            0.999);
  EXPECT_LT(m.chunk_success(db_to_linear(-10.0), 11200, WifiRate::k6Mbps),
            1e-6);
}

TEST(NistErrorModel, TransitionLiesInPlausibleBand) {
  // The idealized (pre implementation-loss) PRR=0.5 crossing for a 1400 B
  // frame at 6 Mbit/s should be in the low single-digit dB range.
  NistErrorModel m;
  double crossing = -100;
  for (double db = -10.0; db <= 15.0; db += 0.01) {
    if (m.chunk_success(db_to_linear(db), 11200, WifiRate::k6Mbps) >= 0.5) {
      crossing = db;
      break;
    }
  }
  EXPECT_GT(crossing, -6.0);
  EXPECT_LT(crossing, 6.0);
}

TEST(NistErrorModel, HigherRatesNeedMoreSinr) {
  NistErrorModel m;
  auto crossing = [&](WifiRate rate) {
    for (double db = -10.0; db <= 30.0; db += 0.01) {
      if (m.chunk_success(db_to_linear(db), 11200, rate) >= 0.5) return db;
    }
    return 99.0;
  };
  const double c6 = crossing(WifiRate::k6Mbps);
  const double c12 = crossing(WifiRate::k12Mbps);
  const double c18 = crossing(WifiRate::k18Mbps);
  const double c54 = crossing(WifiRate::k54Mbps);
  EXPECT_LT(c6, c12);
  EXPECT_LT(c12, c18);
  EXPECT_LT(c18, c54);
}

TEST(NistErrorModel, ChunkingIsMultiplicative) {
  // success(a + b bits) == success(a) * success(b) at fixed SINR: the
  // interference chunking relies on this.
  NistErrorModel m;
  const double sinr = db_to_linear(1.5);
  for (auto rate : {WifiRate::k6Mbps, WifiRate::k18Mbps}) {
    const double whole = m.chunk_success(sinr, 10000, rate);
    const double split = m.chunk_success(sinr, 6000, rate) *
                         m.chunk_success(sinr, 4000, rate);
    EXPECT_NEAR(whole, split, 1e-12);
  }
}

TEST(NistErrorModel, ZeroBitsAlwaysSucceed) {
  NistErrorModel m;
  EXPECT_DOUBLE_EQ(m.chunk_success(db_to_linear(-30.0), 0, WifiRate::k6Mbps),
                   1.0);
}

TEST(NistErrorModel, LongerFramesFailMoreOften) {
  NistErrorModel m;
  const double sinr = db_to_linear(1.0);
  EXPECT_LE(m.chunk_success(sinr, 11200, WifiRate::k6Mbps),
            m.chunk_success(sinr, 192, WifiRate::k6Mbps));
}

TEST(NistErrorModel, CodedBerDecreasesWithSinr) {
  NistErrorModel m;
  EXPECT_GT(m.coded_ber(db_to_linear(-5.0), WifiRate::k6Mbps),
            m.coded_ber(db_to_linear(5.0), WifiRate::k6Mbps));
  EXPECT_EQ(m.coded_ber(0.0, WifiRate::k6Mbps), 0.5);
}

TEST(NistErrorModel, AllRatesCoveredByCodeSpectra) {
  // Every table rate must produce a sane BER (exercises 1/2, 2/3, 3/4).
  NistErrorModel m;
  for (int i = 0; i < kNumWifiRates; ++i) {
    const auto rate = static_cast<WifiRate>(i);
    const double ber = m.coded_ber(db_to_linear(25.0), rate);
    EXPECT_GE(ber, 0.0);
    EXPECT_LT(ber, 1e-3) << rate_name(rate);
  }
}

TEST(ThresholdErrorModel, StepBehaviour) {
  ThresholdErrorModel m(3.0);
  EXPECT_DOUBLE_EQ(m.chunk_success(db_to_linear(3.01), 1e6, WifiRate::k6Mbps),
                   1.0);
  EXPECT_DOUBLE_EQ(m.chunk_success(db_to_linear(2.99), 1, WifiRate::k6Mbps),
                   0.0);
}

TEST(ThresholdErrorModel, ZeroBitsSucceedEvenBelowThreshold) {
  ThresholdErrorModel m(3.0);
  EXPECT_DOUBLE_EQ(m.chunk_success(db_to_linear(-20.0), 0, WifiRate::k6Mbps),
                   1.0);
}

class ErrorModelRateSweep : public ::testing::TestWithParam<int> {};

TEST_P(ErrorModelRateSweep, SuccessMonotonicForEveryRate) {
  NistErrorModel m;
  const auto rate = static_cast<WifiRate>(GetParam());
  double prev = 0.0;
  for (double db = -10.0; db <= 35.0; db += 0.25) {
    const double s = m.chunk_success(db_to_linear(db), 8000, rate);
    EXPECT_GE(s, prev - 1e-12) << rate_name(rate) << " at " << db;
    prev = s;
  }
  EXPECT_GT(prev, 0.999) << rate_name(rate);
}

INSTANTIATE_TEST_SUITE_P(AllRates, ErrorModelRateSweep,
                         ::testing::Range(0, kNumWifiRates));

}  // namespace
}  // namespace cmap::phy
