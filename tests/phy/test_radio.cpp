#include "phy/radio.h"

#include <gtest/gtest.h>

#include <memory>

#include "phy/medium.h"
#include "phy/units.h"
#include "phy_test_util.h"
#include "sim/time.h"

namespace cmap::phy {
namespace {

using testing::RecordingListener;
using testing::World;

std::shared_ptr<const NistErrorModel> nist() {
  return std::make_shared<NistErrorModel>();
}
std::shared_ptr<const ThresholdErrorModel> threshold(double db = 3.0) {
  return std::make_shared<ThresholdErrorModel>(db);
}

TEST(Radio, CleanDeliveryDecodesAllSegments) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});  // rx ~ -70.7 dBm, SINR ~ 23 dB
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().run();

  auto& rx = w.listener(1);
  ASSERT_EQ(rx.rx_starts.size(), 1u);
  ASSERT_EQ(rx.rx_ends.size(), 1u);
  EXPECT_TRUE(rx.rx_ends[0].result.all_ok());
  EXPECT_EQ(rx.rx_ends[0].frame.tx_node, 1u);
  EXPECT_NEAR(rx.rx_ends[0].result.rssi_dbm, -70.7, 0.5);
  ASSERT_EQ(w.listener(0).tx_ends.size(), 1u);
  EXPECT_EQ(w.radio(1).counters().rx_ok, 1u);
}

TEST(Radio, FrameDurationMatchesAirtime) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  sim::Time rx_at = -1;
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().run();
  rx_at = w.simulator().now();
  // 1892 us airtime + ~167 ns propagation.
  EXPECT_NEAR(sim::to_microseconds(rx_at), 1892.0, 1.0);
}

TEST(Radio, SimultaneousEqualPowerFramesCollide) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  Radio& c = w.add_radio(3, {100, 0});
  w.add_radio(2, {50, 0});  // equidistant: SINR ~ 0 dB from each
  w.simulator().at(0, [&] {
    a.transmit(World::whole_frame(1400));
    c.transmit(World::whole_frame(1400));
  });
  w.simulator().run();
  auto& rx = w.listener(2);
  EXPECT_TRUE(rx.rx_ends.empty());  // preamble sync impossible at 0 dB
  EXPECT_GE(w.radio(2).counters().preamble_failures, 1u);
}

TEST(Radio, CaptureRelocksOntoMuchStrongerFrame) {
  World w(nist());
  Radio& weak = w.add_radio(1, {0, 0});
  Radio& strong = w.add_radio(2, {210, 0});
  w.add_radio(3, {200, 0});  // -82.7 dBm from weak, -56.7 dBm from strong
  w.simulator().at(0, [&] { weak.transmit(World::whole_frame(1400)); });
  w.simulator().at(sim::milliseconds(1),
                   [&] { strong.transmit(World::whole_frame(1400)); });
  w.simulator().run();

  auto& rx = w.listener(2);
  ASSERT_EQ(rx.rx_ends.size(), 1u);
  EXPECT_EQ(rx.rx_ends[0].frame.tx_node, 2u);
  EXPECT_TRUE(rx.rx_ends[0].result.all_ok());
  EXPECT_EQ(w.radio(2).counters().aborted_by_capture, 1u);
}

TEST(Radio, CaptureDisabledKeepsWeakLock) {
  World w(nist());
  RadioConfig cfg;
  cfg.capture_enabled = false;
  Radio& weak = w.add_radio(1, {0, 0});
  Radio& strong = w.add_radio(2, {210, 0});
  w.add_radio(3, {200, 0}, cfg);
  w.simulator().at(0, [&] { weak.transmit(World::whole_frame(1400)); });
  w.simulator().at(sim::milliseconds(1),
                   [&] { strong.transmit(World::whole_frame(1400)); });
  w.simulator().run();

  auto& rx = w.listener(2);
  ASSERT_EQ(rx.rx_ends.size(), 1u);
  EXPECT_EQ(rx.rx_ends[0].frame.tx_node, 1u);  // stayed on the weak frame
  EXPECT_FALSE(rx.rx_ends[0].result.all_ok());  // which the strong one killed
  EXPECT_EQ(w.radio(2).counters().aborted_by_capture, 0u);
}

TEST(Radio, TransmitDuringReceptionAbortsIt) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  Radio& b = w.add_radio(2, {50, 0});
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().at(sim::microseconds(500),
                   [&] { b.transmit(World::whole_frame(100)); });
  w.simulator().run();
  EXPECT_TRUE(w.listener(1).rx_ends.empty());
  EXPECT_EQ(w.radio(1).counters().aborted_by_tx, 1u);
}

TEST(Radio, CarrierBusyDuringNeighbourTransmission) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  Radio& b = w.add_radio(2, {50, 0});
  bool busy_mid = false, busy_after = true;
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().at(sim::microseconds(900), [&] { busy_mid = b.carrier_busy(); });
  w.simulator().at(sim::milliseconds(3), [&] { busy_after = b.carrier_busy(); });
  w.simulator().run();
  EXPECT_TRUE(busy_mid);
  EXPECT_FALSE(busy_after);
}

TEST(Radio, CcaCallbacksFireOnEdges) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().run();
  const auto& changes = w.listener(1).cca_changes;
  ASSERT_GE(changes.size(), 2u);
  EXPECT_TRUE(changes.front());
  EXPECT_FALSE(changes.back());
}

TEST(Radio, BelowDeliveryFloorNothingArrives) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {5000, 0});  // ~ -121 dBm, below the -104 dBm floor
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().run();
  EXPECT_TRUE(w.listener(1).rx_ends.empty());
  EXPECT_TRUE(w.radio(1).interference().signals().empty());
}

TEST(Radio, BelowSensitivityIsEnergyNotFrame) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {700, 0});  // ~ -93.6 dBm: above floor, below sensitivity
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().run();
  EXPECT_EQ(w.radio(1).counters().locks, 0u);
  EXPECT_FALSE(w.listener(1).rx_ends.size());
  EXPECT_EQ(w.radio(1).interference().signals().size(), 1u);
}

TEST(Radio, IntegratedHeaderStreamsBeforeFrameEnd) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  sim::Time header_at = -1, end_at = -1;

  class TimedListener : public RecordingListener {
   public:
    TimedListener(sim::Simulator& s, sim::Time* h, sim::Time* e)
        : sim_(s), h_(h), e_(e) {}
    void on_header_decoded(const Frame& f, bool ok) override {
      RecordingListener::on_header_decoded(f, ok);
      *h_ = sim_.now();
    }
    void on_rx_end(const Frame& f, const RxResult& r) override {
      RecordingListener::on_rx_end(f, r);
      *e_ = sim_.now();
    }
    sim::Simulator& sim_;
    sim::Time* h_;
    sim::Time* e_;
  } timed(w.simulator(), &header_at, &end_at);

  w.radio(1).set_listener(&timed);
  w.simulator().at(0, [&] { a.transmit(World::hbt_frame(24, 1400, 24)); });
  w.simulator().run();
  ASSERT_EQ(timed.header_ok.size(), 1u);
  EXPECT_TRUE(timed.header_ok[0]);
  ASSERT_EQ(timed.rx_ends.size(), 1u);
  EXPECT_TRUE(timed.rx_ends[0].result.all_ok());
  EXPECT_LT(header_at, end_at);
  // Header (24 of 1448 bytes) decodes within the first ~5% of the payload.
  EXPECT_LT(header_at, end_at / 10);
}

TEST(Radio, SalvageRecoversTrailerOfUnlockedFrame) {
  World w(nist());
  RadioConfig cfg;
  cfg.salvage_enabled = true;
  Radio& a = w.add_radio(1, {50, 0});
  Radio& x = w.add_radio(2, {60, 0});
  w.add_radio(3, {0, 0}, cfg);
  // a's frame: 0 .. 1892 us. x's frame starts at 500 us, ends ~2456 us;
  // its trailer airs after a finishes, in the clear.
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().at(sim::microseconds(500),
                   [&] { x.transmit(World::hbt_frame(24, 1400, 24)); });
  w.simulator().run();

  auto& rx = w.listener(2);
  ASSERT_EQ(rx.rx_ends.size(), 1u);        // locked frame from a
  EXPECT_FALSE(rx.rx_ends[0].result.all_ok());  // x collided with it
  ASSERT_EQ(rx.salvages.size(), 1u);
  EXPECT_EQ(rx.salvages[0].frame.tx_node, 2u);
  EXPECT_FALSE(rx.salvages[0].result.segment_ok[0]);  // header collided
  EXPECT_TRUE(rx.salvages[0].result.segment_ok[2]);   // trailer clean
  EXPECT_EQ(w.radio(2).counters().salvages, 1u);
}

TEST(Radio, NoSalvageWhenDisabled) {
  World w(nist());
  Radio& a = w.add_radio(1, {50, 0});
  Radio& x = w.add_radio(2, {60, 0});
  w.add_radio(3, {0, 0});  // default config: salvage off (shim mode)
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().at(sim::microseconds(500),
                   [&] { x.transmit(World::hbt_frame(24, 1400, 24)); });
  w.simulator().run();
  EXPECT_TRUE(w.listener(2).salvages.empty());
}

TEST(Radio, NoSalvageOfFramesTalkedOver) {
  World w(nist());
  RadioConfig cfg;
  cfg.salvage_enabled = true;
  Radio& a = w.add_radio(1, {50, 0});
  Radio& b = w.add_radio(2, {0, 0}, cfg);
  // b transmits while a's integrated frame is in the air: half-duplex, no
  // salvage even though the trailer would have been clean.
  w.simulator().at(0, [&] { a.transmit(World::hbt_frame(24, 1400, 24)); });
  w.simulator().at(sim::microseconds(100),
                   [&] { b.transmit(World::whole_frame(60)); });
  w.simulator().run();
  EXPECT_TRUE(w.listener(1).salvages.empty());
}

TEST(Radio, BackToBackFramesAllReceived) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  // 1 us turnaround between frames (a real MAC chains on on_tx_end).
  const sim::Time d = frame_airtime(WifiRate::k6Mbps, 500) + sim::microseconds(1);
  for (int i = 0; i < 3; ++i) {
    w.simulator().at(i * d, [&] { a.transmit(World::whole_frame(500)); });
  }
  w.simulator().run();
  auto& rx = w.listener(1);
  ASSERT_EQ(rx.rx_ends.size(), 3u);
  for (const auto& e : rx.rx_ends) EXPECT_TRUE(e.result.all_ok());
}

TEST(Radio, MarginalLinkWithFadingMixesOutcomes) {
  MediumConfig mcfg;
  mcfg.fading_sigma_db = 6.0;
  World w(nist(), mcfg);
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {330, 0});  // ~ -87 dBm mean: SINR ~7 dB, eff ~2 — marginal
  const sim::Time d = frame_airtime(WifiRate::k6Mbps, 1400);
  for (int i = 0; i < 200; ++i) {
    w.simulator().at(i * (d + sim::microseconds(100)),
                     [&] { a.transmit(World::whole_frame(1400)); });
  }
  w.simulator().run();
  const auto& c = w.radio(1).counters();
  // With 6 dB fading both clean decodes and failures must occur.
  EXPECT_GT(c.rx_ok, 5u);
  EXPECT_GT(c.rx_corrupt + c.preamble_failures + (200 - c.locks), 5u);
}

TEST(Radio, MeanRxPowerMatchesPropagationModel) {
  World w(nist());
  w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  FriisPropagation friis;
  EXPECT_NEAR(w.medium().mean_rx_power_dbm(1, 2),
              friis.rx_power_dbm(10.0, 1, 2, {0, 0}, {50, 0}), 1e-9);
}

TEST(Radio, ThresholdModelMakesCollisionsDeterministic) {
  World w(threshold(3.0));
  Radio& a = w.add_radio(1, {0, 0});
  Radio& c = w.add_radio(3, {150, 0});
  w.add_radio(2, {30, 0});
  // SINR of a's frame (-66.2 dBm) over interferer c (-88.3 dBm) + noise is
  // ~22 dB; after the 5 dB implementation loss still above the 3 dB
  // threshold, so the frame decodes despite the overlap.
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(1400)); });
  w.simulator().at(sim::microseconds(400),
                   [&] { c.transmit(World::whole_frame(1400)); });
  w.simulator().run();
  auto& rx = w.listener(2);
  ASSERT_EQ(rx.rx_ends.size(), 1u);
  EXPECT_EQ(rx.rx_ends[0].frame.tx_node, 1u);
  EXPECT_TRUE(rx.rx_ends[0].result.all_ok());
}

TEST(RadioDeathTest, DoubleTransmitAsserts) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.simulator().at(0, [&] {
    a.transmit(World::whole_frame(100));
    EXPECT_DEATH(a.transmit(World::whole_frame(100)), "transmitting");
  });
  w.simulator().run();
}

}  // namespace
}  // namespace cmap::phy
