#include "phy/medium.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dynamics/channel.h"
#include "phy_test_util.h"
#include "sim/time.h"

namespace cmap::phy {
namespace {

using testing::World;

std::shared_ptr<const NistErrorModel> nist() {
  return std::make_shared<NistErrorModel>();
}

TEST(Medium, PropagationDelayMatchesDistance) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {300, 0});  // 300 m -> ~1 us
  sim::Time rx_start = -1;

  class StartListener : public testing::RecordingListener {
   public:
    explicit StartListener(sim::Simulator& s, sim::Time* t) : sim_(s), t_(t) {}
    void on_rx_start(const Frame& f, sim::Time end) override {
      RecordingListener::on_rx_start(f, end);
      *t_ = sim_.now();
    }
    sim::Simulator& sim_;
    sim::Time* t_;
  } listener(w.simulator(), &rx_start);
  w.radio(1).set_listener(&listener);

  w.simulator().at(0, [&] { a.transmit(World::whole_frame(100)); });
  w.simulator().run();
  // Lock decision happens at preamble end: delay + 20 us.
  const double expected_delay_ns = 300.0 / 2.99792458e8 * 1e9;
  ASSERT_GE(rx_start, 0);
  EXPECT_NEAR(static_cast<double>(rx_start),
              expected_delay_ns + 20e3, 30.0);
}

TEST(Medium, NoFadingIsDeterministicAcrossRuns) {
  auto run_once = [] {
    World w(nist());
    Radio& a = w.add_radio(1, {0, 0});
    w.add_radio(2, {320, 0});  // marginal link
    for (int i = 0; i < 50; ++i) {
      w.simulator().at(i * sim::milliseconds(2),
                       [&] { a.transmit(World::whole_frame(1400)); });
    }
    w.simulator().run();
    return w.radio(1).counters().rx_ok;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Medium, MeanRxPowerIsDirectional) {
  World w(nist());
  w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  // Friis is symmetric; both directions match at equal tx power.
  EXPECT_DOUBLE_EQ(w.medium().mean_rx_power_dbm(1, 2),
                   w.medium().mean_rx_power_dbm(2, 1));
}

TEST(Medium, FrameIdsAreUniqueAndMonotone) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  const sim::Time gap = frame_airtime(WifiRate::k6Mbps, 100) + 1000;
  for (int i = 0; i < 3; ++i) {
    w.simulator().at(i * gap, [&] { a.transmit(World::whole_frame(100)); });
  }
  w.simulator().run();
  const auto& ends = w.listener(1).rx_ends;
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_LT(ends[0].frame.id, ends[1].frame.id);
  EXPECT_LT(ends[1].frame.id, ends[2].frame.id);
}

TEST(Medium, RadioLookupById) {
  World w(nist());
  w.add_radio(7, {0, 0});
  w.add_radio(9, {10, 0});
  EXPECT_EQ(w.medium().radio(7)->id(), 7u);
  EXPECT_EQ(w.medium().radio(9)->id(), 9u);
  EXPECT_EQ(w.medium().radio(42), nullptr);
}

TEST(Medium, GainCacheMatchesPropagationModel) {
  World w(nist());  // gain cache on by default
  Radio& a = w.add_radio(1, {0, 0});
  Radio& b = w.add_radio(2, {120, 35});
  const double direct = w.medium().propagation().rx_power_dbm(
      a.config().tx_power_dbm, 1, 2, a.position(), b.position());
  EXPECT_DOUBLE_EQ(w.medium().mean_rx_power_dbm(1, 2), direct);
}

TEST(Medium, GainCacheInvalidatedOnPositionChange) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  Radio& b = w.add_radio(2, {100, 0});
  const double before = w.medium().mean_rx_power_dbm(1, 2);
  b.set_position({10, 0});
  const double direct = w.medium().propagation().rx_power_dbm(
      a.config().tx_power_dbm, 1, 2, a.position(), b.position());
  EXPECT_DOUBLE_EQ(w.medium().mean_rx_power_dbm(1, 2), direct);
  EXPECT_GT(w.medium().mean_rx_power_dbm(1, 2), before);
}

TEST(Medium, CullingSkipsRadiosBelowTheDeliveryFloor) {
  // Fading off -> no guard band; culling is exact.
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {100, 0});      // well inside the floor
  w.add_radio(3, {500'000, 0});  // hopeless: far below the delivery floor
  EXPECT_EQ(w.medium().fanout_candidates(1), 1u);
  EXPECT_EQ(w.medium().fanout_candidates(3), 0u);
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(100)); });
  w.simulator().run();
  EXPECT_EQ(w.listener(1).rx_starts.size(), 1u);  // radio 2 locked
  EXPECT_TRUE(w.listener(2).rx_starts.empty());   // radio 3 heard nothing
  EXPECT_TRUE(w.radio(2).interference().signals().empty());
}

TEST(Medium, ReachabilityFollowsPositionChanges) {
  World w(nist());
  w.add_radio(1, {0, 0});
  Radio& b = w.add_radio(2, {500'000, 0});
  EXPECT_EQ(w.medium().fanout_candidates(1), 0u);
  b.set_position({50, 0});
  EXPECT_EQ(w.medium().fanout_candidates(1), 1u);
  b.set_position({500'000, 0});
  EXPECT_EQ(w.medium().fanout_candidates(1), 0u);
}

TEST(Medium, FastAndReferencePathsProduceIdenticalOutcomes) {
  // With per-(frame, receiver) fading substreams, the cached/culled path
  // must reproduce the brute-force path delivery for delivery.
  auto run_once = [](bool fast_path) {
    MediumConfig mcfg;  // fading ON (default sigma 2 dB)
    mcfg.enable_gain_cache = fast_path;
    mcfg.enable_culling = fast_path;
    World w(nist(), mcfg);
    Radio& a = w.add_radio(1, {0, 0});
    w.add_radio(2, {320, 0});      // marginal link, fading decides
    w.add_radio(3, {150, 40});     // solid link
    w.add_radio(4, {900'000, 0});  // culled under the fast path
    for (int i = 0; i < 80; ++i) {
      w.simulator().at(i * sim::milliseconds(2),
                       [&] { a.transmit(World::whole_frame(1400)); });
    }
    w.simulator().run();
    return std::tuple{w.radio(1).counters().locks, w.radio(1).counters().rx_ok,
                      w.radio(2).counters().locks, w.radio(2).counters().rx_ok,
                      w.listener(3).rx_starts.size()};
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

// ---- Incremental cache invalidation (MediumConfig::incremental_invalidation)

// Counts propagation queries — the observable cost of a cache refresh.
class CountingPropagation final : public PropagationModel {
 public:
  double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                      const Position& from_pos,
                      const Position& to_pos) const override {
    ++calls;
    return inner_.rx_power_dbm(tx_power_dbm, from, to, from_pos, to_pos);
  }
  mutable std::uint64_t calls = 0;

 private:
  FriisPropagation inner_;
};

// A bare medium over a counting model, radios placed on a line.
struct CountingWorld {
  explicit CountingWorld(int n, MediumConfig mcfg = World::NoFadingConfig())
      : propagation(std::make_shared<CountingPropagation>()),
        medium(sim, propagation, mcfg, sim::Rng(7)) {
    auto error = std::make_shared<NistErrorModel>();
    for (int i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<Radio>(
          sim, medium, static_cast<NodeId>(i),
          Position{40.0 * i, 10.0 * (i % 3)}, RadioConfig{}, error,
          sim::Rng(500 + i)));
    }
  }

  sim::Simulator sim;
  std::shared_ptr<CountingPropagation> propagation;
  Medium medium;
  std::vector<std::unique_ptr<Radio>> radios;
};

TEST(MediumInvalidate, IncrementalMoveRecomputesOnlyTheMoversRowsAndColumns) {
  constexpr int kNodes = 9;
  CountingWorld w(kNodes);
  w.propagation->calls = 0;
  w.radios[4]->set_position({123, 17});
  // One outbound and one inbound link per other radio — nothing else.
  EXPECT_EQ(w.propagation->calls, 2u * (kNodes - 1));
}

TEST(MediumInvalidate, FullRebuildReferenceRecomputesEveryPair) {
  constexpr int kNodes = 9;
  MediumConfig mcfg = World::NoFadingConfig();
  mcfg.incremental_invalidation = false;
  CountingWorld w(kNodes, mcfg);
  w.propagation->calls = 0;
  w.radios[4]->set_position({123, 17});
  EXPECT_EQ(w.propagation->calls,
            static_cast<std::uint64_t>(kNodes) * (kNodes - 1));
}

TEST(MediumInvalidate, InterleavedMovesMatchTheFullRebuildReference) {
  // Same move sequence against an incremental medium and a full-rebuild
  // medium: every cached gain and every reachability set must stay
  // bit-identical after each move — the invariant the sweep-level golden
  // test relies on.
  constexpr int kNodes = 12;
  MediumConfig ref_cfg = World::NoFadingConfig();
  ref_cfg.incremental_invalidation = false;
  CountingWorld fast(kNodes);
  CountingWorld ref(kNodes, ref_cfg);
  sim::Rng moves(99);
  for (int m = 0; m < 40; ++m) {
    const auto who = static_cast<std::size_t>(moves.uniform_int(0, kNodes - 1));
    const Position p{moves.uniform(0.0, 400.0), moves.uniform(0.0, 50.0)};
    fast.radios[who]->set_position(p);
    ref.radios[who]->set_position(p);
    for (int a = 0; a < kNodes; ++a) {
      ASSERT_EQ(fast.medium.fanout_candidates(static_cast<NodeId>(a)),
                ref.medium.fanout_candidates(static_cast<NodeId>(a)))
          << "after move " << m << " source " << a;
      for (int b = 0; b < kNodes; ++b) {
        if (a == b) continue;
        ASSERT_EQ(fast.medium.mean_rx_power_dbm(static_cast<NodeId>(a),
                                                static_cast<NodeId>(b)),
                  ref.medium.mean_rx_power_dbm(static_cast<NodeId>(a),
                                               static_cast<NodeId>(b)))
            << "after move " << m << " link " << a << "->" << b;
      }
    }
  }
}

TEST(MediumInvalidate, MovedMediumMatchesAFreshBuildAtFinalPositions) {
  constexpr int kNodes = 10;
  CountingWorld moved(kNodes);
  sim::Rng moves(3);
  std::vector<Position> final_pos;
  for (int i = 0; i < kNodes; ++i) final_pos.push_back(moved.radios[i]->position());
  for (int m = 0; m < 25; ++m) {
    const auto who = static_cast<std::size_t>(moves.uniform_int(0, kNodes - 1));
    const Position p{moves.uniform(0.0, 500.0), moves.uniform(0.0, 60.0)};
    moved.radios[who]->set_position(p);
    final_pos[who] = p;
  }
  CountingWorld fresh(0);
  auto error = std::make_shared<NistErrorModel>();
  for (int i = 0; i < kNodes; ++i) {
    fresh.radios.push_back(std::make_unique<Radio>(
        fresh.sim, fresh.medium, static_cast<NodeId>(i), final_pos[i],
        RadioConfig{}, error, sim::Rng(500 + i)));
  }
  for (int a = 0; a < kNodes; ++a) {
    EXPECT_EQ(moved.medium.fanout_candidates(static_cast<NodeId>(a)),
              fresh.medium.fanout_candidates(static_cast<NodeId>(a)));
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      EXPECT_EQ(moved.medium.mean_rx_power_dbm(static_cast<NodeId>(a),
                                               static_cast<NodeId>(b)),
                fresh.medium.mean_rx_power_dbm(static_cast<NodeId>(a),
                                               static_cast<NodeId>(b)));
    }
  }
}

TEST(MediumInvalidate, RefreshAllReconcilesAChangedChannel) {
  // refresh_all() exists for channel-epoch steps: the model's answers
  // change underneath the cache, and one full refresh restores coherence.
  class Shiftable final : public PropagationModel {
   public:
    double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                        const Position& from_pos,
                        const Position& to_pos) const override {
      return inner_.rx_power_dbm(tx_power_dbm, from, to, from_pos, to_pos) +
             shift_db;
    }
    double shift_db = 0.0;

   private:
    FriisPropagation inner_;
  };
  sim::Simulator sim;
  auto prop = std::make_shared<Shiftable>();
  Medium medium(sim, prop, World::NoFadingConfig(), sim::Rng(7));
  auto error = std::make_shared<NistErrorModel>();
  Radio a(sim, medium, 1, {0, 0}, RadioConfig{}, error, sim::Rng(1));
  Radio b(sim, medium, 2, {80, 0}, RadioConfig{}, error, sim::Rng(2));
  const double before = medium.mean_rx_power_dbm(1, 2);
  prop->shift_db = -7.0;
  EXPECT_DOUBLE_EQ(medium.mean_rx_power_dbm(1, 2), before);  // stale cache
  medium.refresh_all();
  EXPECT_DOUBLE_EQ(medium.mean_rx_power_dbm(1, 2), before - 7.0);
}

// ---- Sparse link state (LinkStateMode::kSparse) ----

TEST(MediumConfigMode, DeprecatedBoolsMapOntoLinkStateMode) {
  MediumConfig m;
  EXPECT_EQ(m.effective_mode(), LinkStateMode::kDenseCached);
  m.enable_gain_cache = false;
  EXPECT_EQ(m.effective_mode(), LinkStateMode::kDenseReference);
  // An explicit sparse request wins over the legacy bools.
  m.link_state = LinkStateMode::kSparse;
  EXPECT_EQ(m.effective_mode(), LinkStateMode::kSparse);
  m = MediumConfig{};
  m.link_state = LinkStateMode::kDenseReference;
  EXPECT_EQ(m.effective_mode(), LinkStateMode::kDenseReference);
}

MediumConfig SparseNoFadingConfig() {
  MediumConfig m = World::NoFadingConfig();
  m.link_state = LinkStateMode::kSparse;
  return m;
}

TEST(MediumSparse, SparseAndDenseAgreeAfterInterleavedMoves) {
  // Same build + move sequence against a sparse medium and the dense
  // cached reference: every fan-out count and every pair gain must match.
  // CountingPropagation has no range bound, so the sparse path runs its
  // degenerate all-candidates fallback — membership logic still applies.
  constexpr int kNodes = 12;
  CountingWorld sparse(kNodes, SparseNoFadingConfig());
  CountingWorld dense(kNodes);
  sim::Rng moves(17);
  for (int m = 0; m < 40; ++m) {
    const auto who = static_cast<std::size_t>(moves.uniform_int(0, kNodes - 1));
    const Position p{moves.uniform(0.0, 400.0), moves.uniform(0.0, 50.0)};
    sparse.radios[who]->set_position(p);
    dense.radios[who]->set_position(p);
    for (int a = 0; a < kNodes; ++a) {
      ASSERT_EQ(sparse.medium.fanout_candidates(static_cast<NodeId>(a)),
                dense.medium.fanout_candidates(static_cast<NodeId>(a)))
          << "after move " << m << " source " << a;
      for (int b = 0; b < kNodes; ++b) {
        if (a == b) continue;
        ASSERT_EQ(sparse.medium.mean_rx_power_dbm(static_cast<NodeId>(a),
                                                  static_cast<NodeId>(b)),
                  dense.medium.mean_rx_power_dbm(static_cast<NodeId>(a),
                                                 static_cast<NodeId>(b)))
            << "after move " << m << " link " << a << "->" << b;
      }
    }
  }
}

// Friis with a range bound AND call counting: lets tests assert the
// spatial index keeps far pairs from ever being computed.
class BoundedCountingPropagation final : public PropagationModel {
 public:
  double rx_power_dbm(double tx_power_dbm, NodeId from, NodeId to,
                      const Position& from_pos,
                      const Position& to_pos) const override {
    ++calls;
    return inner_.rx_power_dbm(tx_power_dbm, from, to, from_pos, to_pos);
  }
  double rx_power_bound_dbm(double tx_power_dbm, double distance_m,
                            double guard_sigmas) const override {
    return inner_.rx_power_bound_dbm(tx_power_dbm, distance_m, guard_sigmas);
  }
  mutable std::uint64_t calls = 0;

 private:
  FriisPropagation inner_;
};

TEST(MediumSparse, BoundedModelNeverComputesCrossClusterGains) {
  // Two 6-node clusters ~1e6 m apart: with a range-bounded model the
  // spatial index must keep every cross-cluster pair out of the candidate
  // sets, so attaching all 12 radios costs only within-cluster queries.
  sim::Simulator sim;
  auto prop = std::make_shared<BoundedCountingPropagation>();
  Medium medium(sim, prop, SparseNoFadingConfig(), sim::Rng(7));
  auto error = std::make_shared<NistErrorModel>();
  std::vector<std::unique_ptr<Radio>> radios;
  for (int i = 0; i < 12; ++i) {
    const double base_x = i < 6 ? 0.0 : 1.0e6;
    radios.push_back(std::make_unique<Radio>(
        sim, medium, static_cast<NodeId>(i),
        Position{base_x + 30.0 * (i % 6), 12.0 * (i % 3)}, RadioConfig{},
        error, sim::Rng(500 + i)));
  }
  EXPECT_TRUE(std::isfinite(medium.candidate_radius_m()));
  // 2 clusters x 6*5 directed within-cluster pairs; nothing else.
  EXPECT_EQ(prop->calls, 2u * 30u);
  for (int a = 0; a < 12; ++a) {
    EXPECT_EQ(medium.fanout_candidates(static_cast<NodeId>(a)), 5u) << a;
  }
  // Off-grid queries still answer (computed directly, not cached).
  EXPECT_LT(medium.mean_rx_power_dbm(0, 11), -150.0);
}

TEST(MediumSparse, MovedSparseMediumMatchesAFreshSparseBuild) {
  constexpr int kNodes = 10;
  sim::Simulator sim;
  auto prop = std::make_shared<BoundedCountingPropagation>();
  Medium moved(sim, prop, SparseNoFadingConfig(), sim::Rng(7));
  auto error = std::make_shared<NistErrorModel>();
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<Position> final_pos;
  for (int i = 0; i < kNodes; ++i) {
    final_pos.push_back({45.0 * i, 8.0 * (i % 4)});
    radios.push_back(std::make_unique<Radio>(sim, moved,
                                             static_cast<NodeId>(i),
                                             final_pos.back(), RadioConfig{},
                                             error, sim::Rng(500 + i)));
  }
  sim::Rng mv(3);
  for (int m = 0; m < 30; ++m) {
    const auto who = static_cast<std::size_t>(mv.uniform_int(0, kNodes - 1));
    final_pos[who] = {mv.uniform(0.0, 900.0), mv.uniform(0.0, 80.0)};
    radios[who]->set_position(final_pos[who]);
  }
  Medium fresh(sim, prop, SparseNoFadingConfig(), sim::Rng(7));
  std::vector<std::unique_ptr<Radio>> fresh_radios;
  for (int i = 0; i < kNodes; ++i) {
    fresh_radios.push_back(std::make_unique<Radio>(
        sim, fresh, static_cast<NodeId>(i), final_pos[i], RadioConfig{},
        error, sim::Rng(500 + i)));
  }
  for (int a = 0; a < kNodes; ++a) {
    EXPECT_EQ(moved.fanout_candidates(static_cast<NodeId>(a)),
              fresh.fanout_candidates(static_cast<NodeId>(a)));
    for (int b = 0; b < kNodes; ++b) {
      if (a == b) continue;
      EXPECT_EQ(moved.mean_rx_power_dbm(static_cast<NodeId>(a),
                                        static_cast<NodeId>(b)),
                fresh.mean_rx_power_dbm(static_cast<NodeId>(a),
                                        static_cast<NodeId>(b)));
    }
  }
}

TEST(MediumSparse, EpochRefreshTracksDynamicShadowingViaWatchLists) {
  // A time-varying channel: below-floor links sit on watch lists and are
  // only re-evaluated once the AR(1) epoch-delta bound says they could
  // have crossed the cull floor. Over many epochs the sparse medium must
  // stay in exact agreement with the dense cached reference, including
  // links that cross the floor in either direction.
  constexpr int kNodes = 14;
  dynamics::ChannelConfig cc;
  cc.sigma_db = 4.0;
  cc.correlation = 0.7;
  cc.seed = 42;
  auto make_world = [&](LinkStateMode mode) {
    auto base = std::make_shared<LogDistanceShadowing>();
    auto model = std::make_shared<dynamics::DynamicShadowing>(base, cc);
    MediumConfig mcfg = World::NoFadingConfig();
    mcfg.link_state = mode;
    auto w = std::make_unique<World>(nist(), mcfg, model);
    sim::Rng place(11);
    for (int i = 0; i < kNodes; ++i) {
      // Spread so plenty of pair gains straddle the delivery floor.
      w->add_radio(static_cast<NodeId>(i),
                   {place.uniform(0.0, 260.0), place.uniform(0.0, 260.0)});
    }
    return std::pair{std::move(w), std::move(model)};
  };
  auto [sparse_w, sparse_ch] = make_world(LinkStateMode::kSparse);
  auto [dense_w, dense_ch] = make_world(LinkStateMode::kDenseCached);
  bool saw_watch = false;
  for (int epoch = 0; epoch < 12; ++epoch) {
    sparse_ch->advance_epoch();
    dense_ch->advance_epoch();
    sparse_w->medium().refresh_all();
    dense_w->medium().refresh_all();
    saw_watch |= sparse_w->medium().watch_entries() > 0;
    for (int a = 0; a < kNodes; ++a) {
      ASSERT_EQ(sparse_w->medium().fanout_candidates(static_cast<NodeId>(a)),
                dense_w->medium().fanout_candidates(static_cast<NodeId>(a)))
          << "epoch " << epoch << " source " << a;
      for (int b = 0; b < kNodes; ++b) {
        if (a == b) continue;
        ASSERT_DOUBLE_EQ(
            sparse_w->medium().mean_rx_power_dbm(static_cast<NodeId>(a),
                                                 static_cast<NodeId>(b)),
            dense_w->medium().mean_rx_power_dbm(static_cast<NodeId>(a),
                                                static_cast<NodeId>(b)))
            << "epoch " << epoch << " link " << a << "->" << b;
      }
    }
  }
  // The scenario is only interesting if the watch machinery engaged.
  EXPECT_TRUE(saw_watch);
}

TEST(MediumSparse, StaticModelKeepsNoWatchLists) {
  // With a static propagation model nothing can ever cross the floor, so
  // below-floor candidates are discarded outright — the property that
  // keeps 10k-node static worlds at active-links-only memory.
  World w(nist(), SparseNoFadingConfig());
  w.add_radio(1, {0, 0});
  w.add_radio(2, {320, 0});
  w.add_radio(3, {3000, 0});
  EXPECT_EQ(w.medium().watch_entries(), 0u);
}

TEST(MediumSparse, SparseAndReferenceDeliveriesAreIdenticalWithFading) {
  // Full-stack check: the sparse fan-out must reproduce the brute-force
  // reference frame for frame (per-(frame, receiver) fading substreams
  // make culling invisible to every surviving delivery).
  auto run_once = [](LinkStateMode mode) {
    MediumConfig mcfg;  // fading ON (default sigma 2 dB)
    mcfg.link_state = mode;
    World w(nist(), mcfg);
    Radio& a = w.add_radio(1, {0, 0});
    w.add_radio(2, {320, 0});      // marginal link, fading decides
    w.add_radio(3, {150, 40});     // solid link
    w.add_radio(4, {900'000, 0});  // culled under the sparse path
    for (int i = 0; i < 80; ++i) {
      w.simulator().at(i * sim::milliseconds(2),
                       [&] { a.transmit(World::whole_frame(1400)); });
    }
    w.simulator().run();
    return std::tuple{w.radio(1).counters().locks, w.radio(1).counters().rx_ok,
                      w.radio(2).counters().locks, w.radio(2).counters().rx_ok,
                      w.listener(3).rx_starts.size()};
  };
  EXPECT_EQ(run_once(LinkStateMode::kSparse),
            run_once(LinkStateMode::kDenseReference));
}

class FadingSigmaSweep : public ::testing::TestWithParam<int> {};

TEST_P(FadingSigmaSweep, WiderFadingWidensOutcomeSpread) {
  // Property: on a marginal link, the spread between per-frame outcomes
  // grows (or at least does not vanish) as fading sigma increases.
  MediumConfig mcfg;
  mcfg.fading_sigma_db = static_cast<double>(GetParam());
  World w(nist(), mcfg);
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {330, 0});
  const int frames = 150;
  for (int i = 0; i < frames; ++i) {
    w.simulator().at(i * sim::milliseconds(2),
                     [&] { a.transmit(World::whole_frame(1400)); });
  }
  w.simulator().run();
  const auto& c = w.radio(1).counters();
  if (GetParam() == 0) {
    // Deterministic channel: all frames share one fate modulo the error
    // model's own randomness; just sanity-check accounting.
    EXPECT_EQ(c.locks, c.rx_ok + c.rx_corrupt);
  } else {
    EXPECT_GT(c.locks, 0u);
  }
  EXPECT_LE(c.rx_ok + c.rx_corrupt, static_cast<std::uint64_t>(frames));
}

INSTANTIATE_TEST_SUITE_P(Sigmas, FadingSigmaSweep, ::testing::Values(0, 3, 8));

}  // namespace
}  // namespace cmap::phy
