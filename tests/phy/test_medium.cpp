#include "phy/medium.h"

#include <gtest/gtest.h>

#include <tuple>

#include "phy_test_util.h"
#include "sim/time.h"

namespace cmap::phy {
namespace {

using testing::World;

std::shared_ptr<const NistErrorModel> nist() {
  return std::make_shared<NistErrorModel>();
}

TEST(Medium, PropagationDelayMatchesDistance) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {300, 0});  // 300 m -> ~1 us
  sim::Time rx_start = -1;

  class StartListener : public testing::RecordingListener {
   public:
    explicit StartListener(sim::Simulator& s, sim::Time* t) : sim_(s), t_(t) {}
    void on_rx_start(const Frame& f, sim::Time end) override {
      RecordingListener::on_rx_start(f, end);
      *t_ = sim_.now();
    }
    sim::Simulator& sim_;
    sim::Time* t_;
  } listener(w.simulator(), &rx_start);
  w.radio(1).set_listener(&listener);

  w.simulator().at(0, [&] { a.transmit(World::whole_frame(100)); });
  w.simulator().run();
  // Lock decision happens at preamble end: delay + 20 us.
  const double expected_delay_ns = 300.0 / 2.99792458e8 * 1e9;
  ASSERT_GE(rx_start, 0);
  EXPECT_NEAR(static_cast<double>(rx_start),
              expected_delay_ns + 20e3, 30.0);
}

TEST(Medium, NoFadingIsDeterministicAcrossRuns) {
  auto run_once = [] {
    World w(nist());
    Radio& a = w.add_radio(1, {0, 0});
    w.add_radio(2, {320, 0});  // marginal link
    for (int i = 0; i < 50; ++i) {
      w.simulator().at(i * sim::milliseconds(2),
                       [&] { a.transmit(World::whole_frame(1400)); });
    }
    w.simulator().run();
    return w.radio(1).counters().rx_ok;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Medium, MeanRxPowerIsDirectional) {
  World w(nist());
  w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  // Friis is symmetric; both directions match at equal tx power.
  EXPECT_DOUBLE_EQ(w.medium().mean_rx_power_dbm(1, 2),
                   w.medium().mean_rx_power_dbm(2, 1));
}

TEST(Medium, FrameIdsAreUniqueAndMonotone) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {50, 0});
  const sim::Time gap = frame_airtime(WifiRate::k6Mbps, 100) + 1000;
  for (int i = 0; i < 3; ++i) {
    w.simulator().at(i * gap, [&] { a.transmit(World::whole_frame(100)); });
  }
  w.simulator().run();
  const auto& ends = w.listener(1).rx_ends;
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_LT(ends[0].frame.id, ends[1].frame.id);
  EXPECT_LT(ends[1].frame.id, ends[2].frame.id);
}

TEST(Medium, RadioLookupById) {
  World w(nist());
  w.add_radio(7, {0, 0});
  w.add_radio(9, {10, 0});
  EXPECT_EQ(w.medium().radio(7)->id(), 7u);
  EXPECT_EQ(w.medium().radio(9)->id(), 9u);
  EXPECT_EQ(w.medium().radio(42), nullptr);
}

TEST(Medium, GainCacheMatchesPropagationModel) {
  World w(nist());  // gain cache on by default
  Radio& a = w.add_radio(1, {0, 0});
  Radio& b = w.add_radio(2, {120, 35});
  const double direct = w.medium().propagation().rx_power_dbm(
      a.config().tx_power_dbm, 1, 2, a.position(), b.position());
  EXPECT_DOUBLE_EQ(w.medium().mean_rx_power_dbm(1, 2), direct);
}

TEST(Medium, GainCacheInvalidatedOnPositionChange) {
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  Radio& b = w.add_radio(2, {100, 0});
  const double before = w.medium().mean_rx_power_dbm(1, 2);
  b.set_position({10, 0});
  const double direct = w.medium().propagation().rx_power_dbm(
      a.config().tx_power_dbm, 1, 2, a.position(), b.position());
  EXPECT_DOUBLE_EQ(w.medium().mean_rx_power_dbm(1, 2), direct);
  EXPECT_GT(w.medium().mean_rx_power_dbm(1, 2), before);
}

TEST(Medium, CullingSkipsRadiosBelowTheDeliveryFloor) {
  // Fading off -> no guard band; culling is exact.
  World w(nist());
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {100, 0});      // well inside the floor
  w.add_radio(3, {500'000, 0});  // hopeless: far below the delivery floor
  EXPECT_EQ(w.medium().fanout_candidates(1), 1u);
  EXPECT_EQ(w.medium().fanout_candidates(3), 0u);
  w.simulator().at(0, [&] { a.transmit(World::whole_frame(100)); });
  w.simulator().run();
  EXPECT_EQ(w.listener(1).rx_starts.size(), 1u);  // radio 2 locked
  EXPECT_TRUE(w.listener(2).rx_starts.empty());   // radio 3 heard nothing
  EXPECT_TRUE(w.radio(2).interference().signals().empty());
}

TEST(Medium, ReachabilityFollowsPositionChanges) {
  World w(nist());
  w.add_radio(1, {0, 0});
  Radio& b = w.add_radio(2, {500'000, 0});
  EXPECT_EQ(w.medium().fanout_candidates(1), 0u);
  b.set_position({50, 0});
  EXPECT_EQ(w.medium().fanout_candidates(1), 1u);
  b.set_position({500'000, 0});
  EXPECT_EQ(w.medium().fanout_candidates(1), 0u);
}

TEST(Medium, FastAndReferencePathsProduceIdenticalOutcomes) {
  // With per-(frame, receiver) fading substreams, the cached/culled path
  // must reproduce the brute-force path delivery for delivery.
  auto run_once = [](bool fast_path) {
    MediumConfig mcfg;  // fading ON (default sigma 2 dB)
    mcfg.enable_gain_cache = fast_path;
    mcfg.enable_culling = fast_path;
    World w(nist(), mcfg);
    Radio& a = w.add_radio(1, {0, 0});
    w.add_radio(2, {320, 0});      // marginal link, fading decides
    w.add_radio(3, {150, 40});     // solid link
    w.add_radio(4, {900'000, 0});  // culled under the fast path
    for (int i = 0; i < 80; ++i) {
      w.simulator().at(i * sim::milliseconds(2),
                       [&] { a.transmit(World::whole_frame(1400)); });
    }
    w.simulator().run();
    return std::tuple{w.radio(1).counters().locks, w.radio(1).counters().rx_ok,
                      w.radio(2).counters().locks, w.radio(2).counters().rx_ok,
                      w.listener(3).rx_starts.size()};
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

class FadingSigmaSweep : public ::testing::TestWithParam<int> {};

TEST_P(FadingSigmaSweep, WiderFadingWidensOutcomeSpread) {
  // Property: on a marginal link, the spread between per-frame outcomes
  // grows (or at least does not vanish) as fading sigma increases.
  MediumConfig mcfg;
  mcfg.fading_sigma_db = static_cast<double>(GetParam());
  World w(nist(), mcfg);
  Radio& a = w.add_radio(1, {0, 0});
  w.add_radio(2, {330, 0});
  const int frames = 150;
  for (int i = 0; i < frames; ++i) {
    w.simulator().at(i * sim::milliseconds(2),
                     [&] { a.transmit(World::whole_frame(1400)); });
  }
  w.simulator().run();
  const auto& c = w.radio(1).counters();
  if (GetParam() == 0) {
    // Deterministic channel: all frames share one fate modulo the error
    // model's own randomness; just sanity-check accounting.
    EXPECT_EQ(c.locks, c.rx_ok + c.rx_corrupt);
  } else {
    EXPECT_GT(c.locks, 0u);
  }
  EXPECT_LE(c.rx_ok + c.rx_corrupt, static_cast<std::uint64_t>(frames));
}

INSTANTIATE_TEST_SUITE_P(Sigmas, FadingSigmaSweep, ::testing::Values(0, 3, 8));

}  // namespace
}  // namespace cmap::phy
