#include "phy/interference.h"

#include <gtest/gtest.h>

#include <memory>

#include "phy/units.h"
#include "sim/random.h"

namespace cmap::phy {
namespace {

std::shared_ptr<const Frame> make_frame(std::uint64_t id, std::size_t bytes) {
  Frame f;
  f.id = id;
  f.segments = {{SegmentKind::kWhole, bytes}};
  return std::make_shared<const Frame>(std::move(f));
}

Signal make_signal(std::uint64_t id, double power_dbm, sim::Time start,
                   sim::Time end, std::size_t bytes = 1400) {
  Signal s;
  s.frame = make_frame(id, bytes);
  s.power_mw = dbm_to_mw(power_dbm);
  s.start = start;
  s.end = end;
  return s;
}

constexpr double kNoiseDbm = -94.0;

TEST(Interference, SinrAgainstNoiseOnly) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  t.add(make_signal(1, -80.0, 0, 1000));
  // SINR = -80 - (-94) = 14 dB.
  EXPECT_NEAR(linear_to_db(t.min_sinr(1, 0, 1000)), 14.0, 0.01);
}

TEST(Interference, ConcurrentSignalDegradesSinr) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  t.add(make_signal(1, -80.0, 0, 1000));
  t.add(make_signal(2, -80.0, 0, 1000));
  // Equal-power interferer dominates noise: SINR ~ 0 dB.
  EXPECT_NEAR(linear_to_db(t.min_sinr(1, 0, 1000)), 0.0, 0.2);
}

TEST(Interference, PartialOverlapOnlyAffectsOverlap) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  t.add(make_signal(1, -80.0, 0, 1000));
  t.add(make_signal(2, -80.0, 500, 1500));
  // Worst chunk has the interferer; clean prefix has 14 dB.
  EXPECT_NEAR(linear_to_db(t.min_sinr(1, 0, 1000)), 0.0, 0.2);
  EXPECT_NEAR(linear_to_db(t.min_sinr(1, 0, 500)), 14.0, 0.01);
}

TEST(Interference, ChunkedSuccessWithThresholdModel) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  ThresholdErrorModel model(3.0);
  t.add(make_signal(1, -80.0, 0, 1000));
  t.add(make_signal(2, -80.0, 500, 700));
  // Collided chunk is below threshold -> whole window fails.
  EXPECT_DOUBLE_EQ(
      t.evaluate(1, 0, 1000, 8000, WifiRate::k6Mbps, model, 1.0).success_prob,
      0.0);
  // Window that avoids the collision passes.
  EXPECT_DOUBLE_EQ(
      t.evaluate(1, 0, 500, 4000, WifiRate::k6Mbps, model, 1.0).success_prob,
      1.0);
  EXPECT_DOUBLE_EQ(
      t.evaluate(1, 700, 1000, 2400, WifiRate::k6Mbps, model, 1.0)
          .success_prob,
      1.0);
}

TEST(Interference, MultipleInterferersSumInLinearDomain) {
  InterferenceTracker t(dbm_to_mw(-200.0));  // negligible noise
  t.add(make_signal(1, -80.0, 0, 1000));
  t.add(make_signal(2, -83.0, 0, 1000));
  t.add(make_signal(3, -83.0, 0, 1000));
  // Two interferers at -83 dBm sum to -80 dBm -> SINR 0 dB.
  EXPECT_NEAR(linear_to_db(t.min_sinr(1, 0, 1000)), 0.0, 0.05);
}

TEST(Interference, SinrScaleActsAsImplementationLoss) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  ThresholdErrorModel model(3.0);
  t.add(make_signal(1, -90.0, 0, 1000));  // SINR 4 dB
  EXPECT_DOUBLE_EQ(
      t.evaluate(1, 0, 1000, 100, WifiRate::k6Mbps, model, 1.0).success_prob,
      1.0);
  // With 2 dB implementation loss the effective SINR drops below threshold.
  EXPECT_DOUBLE_EQ(
      t.evaluate(1, 0, 1000, 100, WifiRate::k6Mbps, model, db_to_linear(2.0))
          .success_prob,
      0.0);
}

TEST(Interference, PruneIsLazyBelowTheCompactionThreshold) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  t.add(make_signal(1, -80.0, 0, 100));
  t.add(make_signal(2, -80.0, 0, 5000));
  t.prune(1000);
  // Amortized contract: with only a handful of signals the expired one may
  // linger in signals()...
  EXPECT_EQ(t.signals().size(), 2u);
  // ...but every query is time-windowed, so it cannot affect results.
  EXPECT_NEAR(mw_to_dbm(t.total_power_mw(2000)), -80.0, 0.01);
  EXPECT_NEAR(linear_to_db(t.min_sinr(2, 1000, 5000)), 14.0, 0.01);
}

TEST(Interference, PruneCompactsOnceGrownAndDropsOnlyExpiredSignals) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  t.add(make_signal(1, -80.0, 0, 100));  // will expire
  t.add(make_signal(2, -80.0, 0, 5000));
  for (std::uint64_t i = 0; i < 18; ++i) {
    t.add(make_signal(3 + i, -80.0, 1500, 5000));
  }
  t.prune(1000);
  EXPECT_EQ(t.signals().size(), 19u);
  for (const auto& s : t.signals()) {
    EXPECT_NE(s.frame->id, 1u);
  }
}

TEST(Interference, FramelessSignalCountsAsInterference) {
  // Regression: evaluate() used to dereference s.frame->id without the
  // null guard that find() applies, crashing on raw-energy signals.
  InterferenceTracker t(dbm_to_mw(-200.0));  // negligible noise
  t.add(make_signal(1, -80.0, 0, 1000));
  Signal noise;
  noise.frame = nullptr;
  noise.power_mw = dbm_to_mw(-80.0);
  noise.start = 0;
  noise.end = 1000;
  t.add(noise);
  // Equal-power frameless interferer: SINR ~ 0 dB.
  EXPECT_NEAR(linear_to_db(t.min_sinr(1, 0, 1000)), 0.0, 0.05);
  NistErrorModel model;
  const auto swept = t.evaluate(1, 0, 1000, 8000, WifiRate::k6Mbps, model, 1.0);
  const auto brute = evaluate_reference(t, 1, 0, 1000, 8000, WifiRate::k6Mbps,
                                        model, 1.0);
  EXPECT_NEAR(swept.success_prob, brute.success_prob, 1e-12);
  EXPECT_NEAR(swept.min_sinr, brute.min_sinr, brute.min_sinr * 1e-12);
}

TEST(Interference, SweptEvaluatorMatchesBruteForceOnRandomSignalSets) {
  sim::Rng rng(123);
  NistErrorModel model;
  const sim::Time window_end = 1'000'000;
  for (int trial = 0; trial < 60; ++trial) {
    InterferenceTracker t(dbm_to_mw(kNoiseDbm));
    t.add(make_signal(1, -70.0, 0, window_end));
    const int n = 1 + trial % 40;
    for (int i = 0; i < n; ++i) {
      const sim::Time start = rng.uniform_int(-200'000, 950'000);
      const sim::Time len = rng.uniform_int(1, 500'000);
      t.add(make_signal(2 + static_cast<std::uint64_t>(i),
                        rng.uniform(-95.0, -72.0), start, start + len));
    }
    const auto swept =
        t.evaluate(1, 0, window_end, 11200, WifiRate::k6Mbps, model, 1.0);
    const auto brute = evaluate_reference(t, 1, 0, window_end, 11200,
                                          WifiRate::k6Mbps, model, 1.0);
    // The running interference sum accumulates in a different order than
    // the per-interval rescan, so allow ULP-scale slack.
    EXPECT_NEAR(swept.success_prob, brute.success_prob,
                1e-9 * (1.0 + brute.success_prob))
        << "trial " << trial;
    EXPECT_NEAR(swept.min_sinr, brute.min_sinr, 1e-9 * brute.min_sinr)
        << "trial " << trial;
  }
}

TEST(Interference, TotalAndMaxPowerTrackActiveSignals) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  t.add(make_signal(1, -80.0, 0, 1000));
  t.add(make_signal(2, -77.0, 500, 1500));
  EXPECT_NEAR(mw_to_dbm(t.total_power_mw(250)), -80.0, 0.01);
  EXPECT_NEAR(mw_to_dbm(t.max_power_mw(750)), -77.0, 0.01);
  const double both = dbm_to_mw(-80.0) + dbm_to_mw(-77.0);
  EXPECT_NEAR(t.total_power_mw(750), both, both * 1e-9);
  // A signal is inactive exactly at its end time.
  EXPECT_NEAR(mw_to_dbm(t.total_power_mw(1000)), -77.0, 0.01);
}

TEST(Interference, EvaluateIsDeterministic) {
  InterferenceTracker t(dbm_to_mw(kNoiseDbm));
  NistErrorModel model;
  t.add(make_signal(1, -88.0, 0, 1000));
  t.add(make_signal(2, -90.0, 300, 800));
  const auto a =
      t.evaluate(1, 0, 1000, 8000, WifiRate::k6Mbps, model, 1.0);
  const auto b =
      t.evaluate(1, 0, 1000, 8000, WifiRate::k6Mbps, model, 1.0);
  EXPECT_DOUBLE_EQ(a.success_prob, b.success_prob);
  EXPECT_DOUBLE_EQ(a.min_sinr, b.min_sinr);
}

TEST(Interference, SuccessProbDropsWithOverlapFraction) {
  NistErrorModel model;
  double prev = 1.0;
  for (sim::Time overlap : {0, 200, 400, 600, 800, 1000}) {
    InterferenceTracker t(dbm_to_mw(kNoiseDbm));
    t.add(make_signal(1, -88.0, 0, 1000));
    if (overlap > 0) t.add(make_signal(2, -88.0, 0, overlap));
    const double s =
        t.evaluate(1, 0, 1000, 11200, WifiRate::k6Mbps, model, 1.0)
            .success_prob;
    EXPECT_LE(s, prev + 1e-12);
    prev = s;
  }
}

}  // namespace
}  // namespace cmap::phy
