#include "stats/summary.h"

#include <gtest/gtest.h>

namespace cmap::stats {
namespace {

Distribution make(std::initializer_list<double> vals) {
  Distribution d;
  for (double v : vals) d.add(v);
  return d;
}

TEST(Distribution, BasicMoments) {
  auto d = make({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.min(), 1);
  EXPECT_DOUBLE_EQ(d.max(), 4);
  EXPECT_NEAR(d.stddev(), 1.1180, 1e-3);
}

TEST(Distribution, PercentilesInterpolate) {
  auto d = make({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(d.percentile(0), 10);
  EXPECT_DOUBLE_EQ(d.percentile(100), 50);
  EXPECT_DOUBLE_EQ(d.median(), 30);
  EXPECT_DOUBLE_EQ(d.percentile(25), 20);
  EXPECT_DOUBLE_EQ(d.percentile(12.5), 15);  // halfway between 10 and 20
}

TEST(Distribution, SingleValue) {
  auto d = make({7});
  EXPECT_DOUBLE_EQ(d.median(), 7);
  EXPECT_DOUBLE_EQ(d.percentile(1), 7);
  EXPECT_DOUBLE_EQ(d.percentile(99), 7);
}

TEST(Distribution, CdfAt) {
  auto d = make({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(d.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf_at(1), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf_at(2), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf_at(10), 1.0);
}

TEST(Distribution, CdfRowsAreMonotone) {
  auto d = make({5, 1, 3, 2, 4});
  const auto rows = d.cdf_rows();
  ASSERT_EQ(rows.size(), 5u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].value, rows[i - 1].value);
    EXPECT_GT(rows[i].fraction, rows[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(rows.back().fraction, 1.0);
}

TEST(Distribution, AddAfterQueryResorts) {
  Distribution d;
  d.add(10);
  EXPECT_DOUBLE_EQ(d.median(), 10);
  d.add(20);
  d.add(0);
  EXPECT_DOUBLE_EQ(d.median(), 10);
  EXPECT_DOUBLE_EQ(d.max(), 20);
}

TEST(Distribution, DescribeHandlesEmpty) {
  Distribution d;
  EXPECT_EQ(describe(d), "(no samples)");
  d.add(1.0);
  EXPECT_NE(describe(d).find("median"), std::string::npos);
}

TEST(DistributionDeathTest, EmptyMomentsAbort) {
  Distribution d;
  EXPECT_DEATH(d.mean(), "empty");
  EXPECT_DEATH(d.percentile(50), "empty");
}

}  // namespace
}  // namespace cmap::stats
