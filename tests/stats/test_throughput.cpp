#include "stats/throughput.h"

#include <gtest/gtest.h>

namespace cmap::stats {
namespace {

TEST(ThroughputMeter, CountsOnlyInsideWindow) {
  ThroughputMeter m(sim::seconds(40), sim::seconds(100));
  m.on_packet(1400, sim::seconds(10));   // before: ignored
  m.on_packet(1400, sim::seconds(50));   // inside
  m.on_packet(1400, sim::seconds(100));  // at end: excluded (half-open)
  EXPECT_EQ(m.packets(), 1u);
  EXPECT_DOUBLE_EQ(m.bits(), 1400 * 8.0);
}

TEST(ThroughputMeter, BpsUsesWindowLength) {
  ThroughputMeter m(0, sim::seconds(60));
  for (int i = 0; i < 1000; ++i) m.on_packet(1400, sim::seconds(30));
  EXPECT_NEAR(m.bps(), 1000 * 1400 * 8.0 / 60.0, 1e-6);
  EXPECT_NEAR(m.mbps(), m.bps() / 1e6, 1e-12);
}

TEST(ThroughputMeter, WindowBeginIsInclusive) {
  ThroughputMeter m(sim::seconds(40), sim::seconds(100));
  m.on_packet(100, sim::seconds(40));
  EXPECT_EQ(m.packets(), 1u);
}

TEST(ThroughputMeter, DegenerateWindowYieldsZero) {
  ThroughputMeter m(0, 0);
  m.on_packet(100, 0);
  EXPECT_DOUBLE_EQ(m.bps(), 0.0);
}

TEST(ThroughputMeter, SetWindowReconfigures) {
  ThroughputMeter m;
  m.set_window(sim::seconds(1), sim::seconds(2));
  m.on_packet(500, sim::seconds(1) + 5);
  EXPECT_EQ(m.packets(), 1u);
}

}  // namespace
}  // namespace cmap::stats
