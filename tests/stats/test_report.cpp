#include "stats/report.h"

#include <gtest/gtest.h>

namespace cmap::stats {
namespace {

RunRow make_row(const std::string& scheme, const std::string& variant,
                int topo, double mbps) {
  RunRow row;
  row.scenario = "test";
  row.scheme = scheme;
  row.variant = variant;
  row.topology_index = topo;
  row.topology = "t" + std::to_string(topo);
  row.seed = 100 + static_cast<std::uint64_t>(topo);
  row.aggregate_mbps = mbps;
  FlowRow f;
  f.src = 1;
  f.dst = 2;
  f.mbps = mbps / 2;
  f.vps_sent = 10;
  f.rx_vps_delim = 8;
  row.flows = {f, f};
  row.metrics = {{"alpha", mbps * 10}};
  return row;
}

TEST(SweepReport, GroupsAppearInFirstSeenOrder) {
  SweepReport rep;
  rep.add_row(make_row("CS", "", 0, 5.0));
  rep.add_row(make_row("CMAP", "", 0, 9.0));
  rep.add_row(make_row("CS", "", 1, 6.0));
  const auto groups = rep.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].scheme, "CS");
  EXPECT_EQ(groups[1].scheme, "CMAP");
  EXPECT_EQ(groups[0].label(), "CS");
}

TEST(SweepReport, AggregateAndMetricDistributionsFilterByGroup) {
  SweepReport rep;
  rep.add_row(make_row("CS", "", 0, 4.0));
  rep.add_row(make_row("CS", "", 1, 6.0));
  rep.add_row(make_row("CMAP", "", 0, 10.0));
  const auto cs = rep.aggregate("CS");
  EXPECT_EQ(cs.count(), 2u);
  EXPECT_DOUBLE_EQ(cs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rep.metric("alpha", "CMAP").mean(), 100.0);
  EXPECT_TRUE(rep.aggregate("CS", "no-such-variant").empty());
  // Two flows per row, mbps/2 each.
  EXPECT_EQ(rep.per_flow_mbps("CS").count(), 4u);
  EXPECT_DOUBLE_EQ(rep.per_flow_mbps("CMAP").mean(), 5.0);
}

TEST(SweepReport, VariantsSeparateGroups) {
  SweepReport rep;
  rep.add_row(make_row("CMAP", "win=1", 0, 5.0));
  rep.add_row(make_row("CMAP", "win=8", 0, 9.0));
  EXPECT_EQ(rep.groups().size(), 2u);
  EXPECT_DOUBLE_EQ(rep.aggregate("CMAP", "win=1").mean(), 5.0);
  EXPECT_DOUBLE_EQ(rep.aggregate("CMAP", "win=8").mean(), 9.0);
  EXPECT_EQ(rep.groups()[1].label(), "CMAP win=8");
}

TEST(SweepReport, FindLocatesCells) {
  SweepReport rep;
  rep.add_row(make_row("CS", "", 0, 4.0));
  rep.add_row(make_row("CS", "", 1, 6.0));
  const RunRow* row = rep.find("CS", 1);
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->aggregate_mbps, 6.0);
  EXPECT_EQ(rep.find("CS", 2), nullptr);
  EXPECT_EQ(rep.find("CMAP", 0), nullptr);
}

TEST(SweepReport, AggregatesOfPreservesRowOrder) {
  SweepReport rep;
  rep.add_row(make_row("CS", "", 0, 4.0));
  rep.add_row(make_row("CS", "", 1, 6.0));
  rep.add_row(make_row("CS", "", 2, 5.0));
  const auto v = rep.aggregates_of("CS");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 4.0);
  EXPECT_DOUBLE_EQ(v[1], 6.0);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
}

TEST(SweepReport, RunRowMetricLookup) {
  const RunRow row = make_row("CS", "", 0, 3.0);
  EXPECT_DOUBLE_EQ(row.metric("alpha"), 30.0);
  EXPECT_DOUBLE_EQ(row.metric("missing", -1.0), -1.0);
}

TEST(SweepReport, JsonIsWellFormedAndStable) {
  SweepReport rep;
  rep.add_row(make_row("CS", "", 0, 4.5));
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"scheme\":\"CS\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate_mbps\":4.5"), std::string::npos);
  EXPECT_NE(json.find("\"alpha\":45"), std::string::npos);
  EXPECT_NE(json.find("\"vps_sent\":10"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Identical content emits identical bytes.
  SweepReport rep2;
  rep2.add_row(make_row("CS", "", 0, 4.5));
  EXPECT_EQ(json, rep2.to_json());
}

TEST(SweepReport, JsonEscapesStrings) {
  SweepReport rep;
  RunRow row = make_row("CS", "", 0, 1.0);
  row.topology = "quote\" backslash\\ tab\t";
  rep.add_row(row);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("quote\\\" backslash\\\\ tab\\t"), std::string::npos);
}

}  // namespace
}  // namespace cmap::stats
