// trace::merge_streams unit coverage: k-way interleaving on (tick, input
// index), verbatim payload re-emission (fields survive a merge without any
// decode round-trip drift — the move record's mm quantization is the
// sensitive case), header handling (category-mask union), and the error
// paths (no inputs, missing file).
#include "trace/merge.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "trace/reader.h"
#include "trace/trace.h"

namespace cmap::trace {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(MergeStreams, InterleavesByTickWithInputIndexTieBreak) {
  const std::string a_path = temp_path("merge_a.cmtrace");
  const std::string b_path = temp_path("merge_b.cmtrace");
  const std::string out_path = temp_path("merge_out.cmtrace");
  {
    TraceConfig ca;
    ca.path = a_path;
    Tracer a(ca);
    a.channel_epoch(10, 1);
    a.channel_epoch(30, 3);  // ties with b's t=30 record; input 0 wins
  }
  {
    TraceConfig cb;
    cb.path = b_path;
    Tracer b(cb);
    b.channel_epoch(20, 2);
    b.channel_epoch(30, 4);
  }
  std::string error;
  ASSERT_TRUE(merge_streams({a_path, b_path}, out_path, &error)) << error;

  auto records = read_all(out_path, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(records.size(), 4u);
  std::vector<std::uint64_t> epochs;
  for (const auto& r : records) {
    epochs.push_back(std::get<ChannelEpochRecord>(r.body).epoch);
    EXPECT_EQ(r.category, Category::kChannelEpoch);
  }
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(records[0].tick, 10);
  EXPECT_EQ(records[3].tick, 30);

  for (const auto& p : {a_path, b_path, out_path}) std::remove(p.c_str());
}

TEST(MergeStreams, PayloadsSurviveVerbatimAndMasksUnion) {
  const std::string a_path = temp_path("merge_raw_a.cmtrace");
  const std::string b_path = temp_path("merge_raw_b.cmtrace");
  const std::string out_path = temp_path("merge_raw_out.cmtrace");
  {
    TraceConfig ca;
    ca.path = a_path;
    ca.categories = bit(Category::kMove);
    Tracer a(ca);
    // 0.0015 m -> 1 mm (truncation); a decode/re-encode of the decoded mm
    // value would be lossless, but a re-quantization of a reconstructed
    // double would not — verbatim copy sidesteps the question entirely.
    a.move(5, 7, 0.0015, -3.9994);
  }
  {
    TraceConfig cb;
    cb.path = b_path;
    cb.categories = bit(Category::kPhyTx);
    Tracer b(cb);
    b.phy_tx(6, 2, 0x123456789abcull, 4, 1400, 2000);
  }
  std::string error;
  ASSERT_TRUE(merge_streams({a_path, b_path}, out_path, &error)) << error;

  TraceReader reader(out_path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.categories(), bit(Category::kMove) | bit(Category::kPhyTx));
  Record r;
  ASSERT_TRUE(reader.next(&r));
  const auto& mv = std::get<MoveRecord>(r.body);
  EXPECT_EQ(mv.node, 7u);
  EXPECT_EQ(mv.x_mm, 1);
  EXPECT_EQ(mv.y_mm, -3999);
  ASSERT_TRUE(reader.next(&r));
  const auto& tx = std::get<PhyTxRecord>(r.body);
  EXPECT_EQ(tx.frame_id, 0x123456789abcull);
  EXPECT_EQ(tx.bytes, 1400u);
  EXPECT_FALSE(reader.next(&r));
  EXPECT_TRUE(reader.ok()) << reader.error();

  for (const auto& p : {a_path, b_path, out_path}) std::remove(p.c_str());
}

TEST(MergeStreams, ReportsMissingInputWithoutCreatingOutput) {
  const std::string out_path = temp_path("merge_err_out.cmtrace");
  std::string error;
  EXPECT_FALSE(merge_streams({temp_path("nonexistent.cmtrace")}, out_path,
                             &error));
  EXPECT_FALSE(error.empty());
  std::FILE* f = std::fopen(out_path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);  // header errors precede output creation
  if (f != nullptr) std::fclose(f);

  EXPECT_FALSE(merge_streams({}, out_path, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace cmap::trace
