// trace_diff's alignment primitive (first_divergence) and the OngoingList
// replayer, on seeded in-memory streams: identical streams report no
// divergence, a single flipped field registers at exactly its record
// index, a truncated stream reports which side ended, and OngoingReplay
// applies the note/update/expire semantics OngoingList defines (exclusive
// end-time boundary, reclamation never changes the live set). A world run
// then pins the replayer against the live lists themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cmap_mac.h"
#include "scenario/registry.h"
#include "testbed/experiment.h"
#include "testbed/testbed.h"
#include "trace/reader.h"
#include "trace/trace.h"

namespace cmap::trace {
namespace {

/// A Tracer writing into a MemoryTraceSink the test keeps a handle to.
struct MemoryTracer {
  explicit MemoryTracer(TraceConfig config) {
    auto owned = std::make_unique<MemoryTraceSink>();
    sink = owned.get();
    config.path = "<memory>";
    tracer = std::make_unique<Tracer>(config, std::move(owned));
  }
  MemoryTraceSink* sink = nullptr;
  std::unique_ptr<Tracer> tracer;
};

// A small deterministic stream: a PHY exchange plus MAC state churn.
// `flip_node` perturbs exactly one field of one record (the mac_defer
// node id), seeding a controlled divergence.
std::vector<std::uint8_t> make_stream(std::uint32_t flip_node) {
  TraceConfig config;  // all categories
  MemoryTracer mt(config);
  Tracer& t = *mt.tracer;
  t.phy_tx(1000, 7, 1, 0, 24, 56000);
  t.ongoing(1000, 6, OngoingOp::kNote, 7, 6, 57000);
  t.mac_defer(2000, flip_node, 6, true, DeferReason::kDstBusy, 7, 6, 57000);
  t.phy_rx(57000, 6, 1, 7, true, 1234);
  t.ongoing(57000, 6, OngoingOp::kExpire, 7, 6, 57000);
  return mt.sink->bytes();
}

TEST(FirstDivergence, IdenticalStreamsReportNone) {
  const auto bytes = make_stream(9);
  TraceReader a(bytes);
  TraceReader b(bytes);
  ASSERT_TRUE(a.ok() && b.ok());
  const Divergence d = first_divergence(a, b);
  EXPECT_FALSE(d.diverged);
  EXPECT_EQ(d.index, 5u);  // records compared (all of them)
  EXPECT_TRUE(a.ok() && b.ok());
}

TEST(FirstDivergence, SingleFieldFlipRegistersAtItsIndex) {
  TraceReader a(make_stream(9));
  TraceReader b(make_stream(10));
  const Divergence d = first_divergence(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 2u);  // the mac_defer record
  EXPECT_FALSE(d.a_ended);
  EXPECT_FALSE(d.b_ended);
  EXPECT_EQ(d.a.category, Category::kMacDefer);
  EXPECT_EQ(d.b.category, Category::kMacDefer);
  EXPECT_EQ(std::get<MacDeferRecord>(d.a.body).node, 9u);
  EXPECT_EQ(std::get<MacDeferRecord>(d.b.body).node, 10u);
  // The records decode into describe()-able lines for the tool output.
  EXPECT_NE(describe(d.a), describe(d.b));
  EXPECT_NE(describe(d.a).find("mac_defer"), std::string::npos);
}

TEST(FirstDivergence, TickDifferenceRegisters) {
  TraceConfig config;
  MemoryTracer ma(config), mb(config);
  ma.tracer->phy_tx(1000, 1, 1, 0, 24, 56000);
  mb.tracer->phy_tx(1000, 1, 1, 0, 24, 56000);
  ma.tracer->channel_epoch(5000, 1);
  mb.tracer->channel_epoch(6000, 1);  // same payload, different tick
  TraceReader a(ma.sink->bytes());
  TraceReader b(mb.sink->bytes());
  const Divergence d = first_divergence(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 1u);
  EXPECT_EQ(d.a.tick, 5000);
  EXPECT_EQ(d.b.tick, 6000);
}

TEST(FirstDivergence, TruncatedStreamReportsWhichSideEnded) {
  TraceConfig config;
  MemoryTracer ma(config), mb(config);
  for (int i = 0; i < 3; ++i) {
    ma.tracer->phy_tx(1000 * (i + 1), 1, static_cast<std::uint64_t>(i + 1), 0,
                      24, 56000);
    if (i < 2) {
      mb.tracer->phy_tx(1000 * (i + 1), 1, static_cast<std::uint64_t>(i + 1),
                        0, 24, 56000);
    }
  }
  TraceReader a(ma.sink->bytes());
  TraceReader b(mb.sink->bytes());
  const Divergence d = first_divergence(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 2u);
  EXPECT_FALSE(d.a_ended);
  EXPECT_TRUE(d.b_ended);
  EXPECT_EQ(d.a.tick, 3000);
}

TEST(FirstDivergence, HeadersAreNotCompared) {
  // Same records under different category masks: still no divergence.
  TraceConfig wide;  // all categories enabled
  TraceConfig narrow;
  narrow.categories = bit(Category::kPhyTx);
  MemoryTracer ma(wide), mb(narrow);
  ma.tracer->phy_tx(1000, 1, 1, 0, 24, 56000);
  mb.tracer->phy_tx(1000, 1, 1, 0, 24, 56000);
  TraceReader a(ma.sink->bytes());
  TraceReader b(mb.sink->bytes());
  const Divergence d = first_divergence(a, b);
  EXPECT_FALSE(d.diverged);
}

TEST(OngoingReplay, NoteUpdateExpireSemantics) {
  TraceConfig config;
  MemoryTracer mt(config);
  Tracer& t = *mt.tracer;
  t.ongoing(100, 4, OngoingOp::kNote, 1, 2, 500);
  t.ongoing(200, 4, OngoingOp::kUpdate, 1, 2, 900);  // extended in place
  t.ongoing(200, 4, OngoingOp::kNote, 3, 4, 600);
  t.ongoing(300, 9, OngoingOp::kNote, 5, 6, 700);
  t.ongoing(650, 4, OngoingOp::kExpire, 3, 4, 600);  // reclamation: no-op

  OngoingReplay replay;
  TraceReader reader(mt.sink->bytes());
  Record r;
  while (reader.next(&r)) replay.apply(r);
  ASSERT_TRUE(reader.ok()) << reader.error();

  EXPECT_EQ(replay.nodes(), (std::vector<std::uint32_t>{4, 9}));

  // At 400: both of node 4's entries live (update extended 1->2 to 900).
  auto live = replay.live(4, 400);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].src, 1u);
  EXPECT_EQ(live[0].dst, 2u);
  EXPECT_EQ(live[0].end_time, 900);
  EXPECT_EQ(live[1].src, 3u);
  EXPECT_EQ(live[1].end_time, 600);

  // Exclusive boundary: dead AT its end time, live one tick before.
  EXPECT_EQ(replay.live(4, 599).size(), 2u);
  EXPECT_EQ(replay.live(4, 600).size(), 1u);
  EXPECT_EQ(replay.live(4, 900).size(), 0u);

  // The expire record changed nothing the end times had not already
  // decided; unknown nodes report empty, not error.
  EXPECT_EQ(replay.live(9, 650).size(), 1u);
  EXPECT_EQ(replay.live(123, 0).size(), 0u);
}

// World-level consistency: reconstructing OngoingLists from the kOngoing
// stream must match the live lists, mid-run, on a contended CMAP workload.
// Stream position: the snapshot event captures records_written() and the
// replay applies exactly that prefix (same technique as the DeferTable
// replay test).
TEST(OngoingReplay, MatchesLiveListsOnFig12) {
  const scenario::Scenario& sc =
      scenario::ScenarioRegistry::global().at("fig12_exposed");
  const testbed::TestbedConfig tb_cfg =
      sc.testbed ? *sc.testbed : testbed::TestbedConfig{};
  const auto tb = testbed::TestbedCache::global().get(tb_cfg);
  sim::Rng topo_rng(7);
  const auto topologies = sc.topology(*tb, 1, topo_rng);
  ASSERT_FALSE(topologies.empty());
  const auto& flows = topologies.front().flows;
  ASSERT_FALSE(flows.empty());

  const std::string path = ::testing::TempDir() + "ongoing_fig12.cmtrace";
  testbed::RunConfig config = sc.defaults;
  config.scheme = testbed::Scheme::kCmap;
  config.duration = sim::seconds(2);
  config.warmup = sim::milliseconds(250);
  config.seed = 11;
  config.trace = TraceConfig{};
  config.trace->path = path;
  config.trace->categories = bit(Category::kOngoing);

  std::vector<std::uint32_t> node_ids;
  for (const auto& f : flows) {
    node_ids.push_back(f.src);
    node_ids.push_back(f.dst);
  }
  std::sort(node_ids.begin(), node_ids.end());
  node_ids.erase(std::unique(node_ids.begin(), node_ids.end()),
                 node_ids.end());

  struct Snapshot {
    sim::Time at = 0;
    std::uint64_t records = 0;
    // node -> live (src, dst, end) triples in canonical order
    std::vector<std::pair<std::uint32_t, std::vector<OngoingReplay::Entry>>>
        lists;
  };
  std::vector<Snapshot> snapshots;
  {
    testbed::World world(*tb, config);
    for (const auto& f : flows) world.add_saturated_flow(f.src, f.dst);
    ASSERT_NE(world.tracer(), nullptr);
    for (const sim::Time at :
         {sim::milliseconds(600), sim::milliseconds(1300),
          sim::milliseconds(1950)}) {
      world.simulator().at(at, [&world, &snapshots, &node_ids, at] {
        Snapshot snap;
        snap.at = at;
        snap.records = world.tracer()->records_written();
        for (const std::uint32_t id : node_ids) {
          core::CmapMac* mac = world.cmap(id);
          ASSERT_NE(mac, nullptr);
          std::vector<OngoingReplay::Entry> entries;
          for (const auto& tx : mac->ongoing_list().active(at)) {
            entries.push_back(OngoingReplay::Entry{tx.src, tx.dst,
                                                   tx.end_time});
          }
          std::sort(entries.begin(), entries.end(),
                    [](const OngoingReplay::Entry& a,
                       const OngoingReplay::Entry& b) {
                      return std::make_pair(a.src, a.dst) <
                             std::make_pair(b.src, b.dst);
                    });
          snap.lists.emplace_back(id, std::move(entries));
        }
        snapshots.push_back(std::move(snap));
      });
    }
    world.run(config.duration);
  }  // World destruction flushes the trace file.

  ASSERT_EQ(snapshots.size(), 3u);
  std::size_t live_total = 0;
  for (const auto& snap : snapshots) {
    for (const auto& [id, entries] : snap.lists) live_total += entries.size();
  }
  ASSERT_GT(live_total, 0u) << "no ongoing entries ever live; test vacuous";

  std::string error;
  const std::vector<Record> records = read_all(path, &error);
  ASSERT_TRUE(error.empty()) << error;

  for (const auto& snap : snapshots) {
    ASSERT_LE(snap.records, records.size());
    OngoingReplay replay;
    for (std::uint64_t i = 0; i < snap.records; ++i) {
      replay.apply(records[static_cast<std::size_t>(i)]);
    }
    for (const auto& [id, live_entries] : snap.lists) {
      const auto reconstructed = replay.live(id, snap.at);
      ASSERT_EQ(reconstructed.size(), live_entries.size())
          << "node " << id << " at " << snap.at;
      for (std::size_t i = 0; i < reconstructed.size(); ++i) {
        EXPECT_EQ(reconstructed[i].src, live_entries[i].src);
        EXPECT_EQ(reconstructed[i].dst, live_entries[i].dst);
        EXPECT_EQ(reconstructed[i].end_time, live_entries[i].end_time)
            << "node " << id << " at " << snap.at << " entry " << i;
      }
    }
  }

  std::remove(path.c_str());
}

}  // namespace
}  // namespace cmap::trace
