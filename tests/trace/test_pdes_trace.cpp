// Cross-partition message-ordering fuzz (the PDES byte-identity contract
// observed at event granularity, not just report granularity): seeded
// random flow sets on the 50-node floor — most of them straddling the
// spatial partition boundaries, many transmissions landing on identical
// ticks — run once on the serial oracle and once under 4-partition PDES.
// The partitioned run's streams (global + one per partition) are
// reassembled with trace::merge_streams, and the two runs' event streams
// must agree:
//   * per node: the exact sequence of records mentioning that node (every
//     node's events are totally ordered; partitioning must not reorder,
//     drop, or duplicate any of them),
//   * per tick: the multiset of all records (same-tick records of
//     different nodes may interleave differently across stream files, but
//     the set of events at every instant is invariant).
// Streams must be unsampled for this comparison: per-partition tracers
// decimate independently, so sample_every > 1 would drop different
// records from equivalent runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/random.h"
#include "testbed/experiment.h"
#include "testbed/testbed.h"
#include "trace/merge.h"
#include "trace/reader.h"

namespace cmap::testbed {
namespace {

constexpr int kPartitions = 4;

// One record, flattened to a comparable string: category, tick, and the
// decoded body fields (not raw bytes — the tick delta encoding differs
// between files, the fields must not).
std::string fingerprint(const trace::Record& r) {
  std::ostringstream out;
  out << static_cast<int>(r.category) << '@' << r.tick << ':';
  std::visit(
      [&](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, trace::PhyTxRecord>) {
          out << b.node << ',' << b.frame_id << ',' << b.rate << ','
              << b.bytes << ',' << b.duration;
        } else if constexpr (std::is_same_v<T, trace::PhyRxRecord>) {
          out << b.node << ',' << b.frame_id << ',' << b.tx_node << ','
              << b.ok << ',' << b.min_sinr_cdb;
        } else if constexpr (std::is_same_v<T, trace::PhyCollisionRecord>) {
          out << b.node << ',' << b.frame_id << ','
              << static_cast<int>(b.reason);
        } else if constexpr (std::is_same_v<T, trace::MacDeferRecord>) {
          out << b.node << ',' << b.dst << ',' << b.deferred << ','
              << static_cast<int>(b.reason) << ',' << b.blocker_src << ','
              << b.blocker_dst << ',' << b.until;
        } else if constexpr (std::is_same_v<T, trace::DeferTableRecord>) {
          out << b.node << ',' << static_cast<int>(b.op) << ',' << b.dst
              << ',' << b.src << ',' << b.via << ',' << b.my_rate << ','
              << b.their_rate << ',' << b.expires;
        } else if constexpr (std::is_same_v<T, trace::OngoingRecord>) {
          out << b.node << ',' << static_cast<int>(b.op) << ',' << b.src
              << ',' << b.dst << ',' << b.end_time;
        } else if constexpr (std::is_same_v<T, trace::MoveRecord>) {
          out << b.node << ',' << b.x_mm << ',' << b.y_mm;
        } else if constexpr (std::is_same_v<T, trace::ChannelEpochRecord>) {
          out << b.epoch;
        } else if constexpr (std::is_same_v<T, trace::LogRecord>) {
          out << b.level << ',' << b.component << ',' << b.message;
        }
      },
      r.body);
  return out.str();
}

// The node a record belongs to, when it names one (log and channel-epoch
// records are global; they participate in the per-tick check only).
std::optional<std::uint32_t> record_node(const trace::Record& r) {
  return std::visit(
      [](const auto& b) -> std::optional<std::uint32_t> {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, trace::ChannelEpochRecord> ||
                      std::is_same_v<T, trace::LogRecord>) {
          return std::nullopt;
        } else {
          return b.node;
        }
      },
      r.body);
}

std::vector<trace::Record> read_checked(const std::string& path) {
  std::string error;
  auto records = trace::read_all(path, &error);
  EXPECT_TRUE(error.empty()) << path << ": " << error;
  return records;
}

// Random cross-floor flow set: endpoints drawn over all 50 nodes, so most
// flows straddle the 4 spatial strips; saturated sources then put many
// transmissions on identical ticks.
std::vector<Flow> fuzz_flows(std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Flow> flows;
  std::set<phy::NodeId> used;
  const int count = static_cast<int>(rng.uniform_int(4, 8));
  while (static_cast<int>(flows.size()) < count) {
    const auto src = static_cast<phy::NodeId>(rng.uniform_int(0, 49));
    const auto dst = static_cast<phy::NodeId>(rng.uniform_int(0, 49));
    if (src == dst || used.count(src)) continue;  // one source role per node
    used.insert(src);
    flows.push_back({src, dst});
  }
  return flows;
}

RunConfig traced_config(std::uint64_t seed, const std::string& trace_path,
                        int partitions) {
  RunConfig config;
  config.scheme = Scheme::kCmap;
  config.duration = sim::milliseconds(120);
  config.warmup = sim::milliseconds(30);
  config.seed = seed;
  config.trace = trace::TraceConfig{};
  config.trace->path = trace_path;
  config.pdes.partitions = partitions;
  config.pdes.threads = partitions > 1 ? 2 : 1;
  return config;
}

TEST(PdesTraceFuzz, PartitionedEventOrderMatchesSerial) {
  const Testbed tb{TestbedConfig{}};
  for (std::uint64_t seed : {11u, 29u, 47u}) {
    const std::string dir = ::testing::TempDir();
    const std::string serial_path =
        dir + "pdes_fuzz_serial_" + std::to_string(seed) + ".cmtrace";
    const std::string pdes_path =
        dir + "pdes_fuzz_part_" + std::to_string(seed) + ".cmtrace";
    const std::string merged_path =
        dir + "pdes_fuzz_merged_" + std::to_string(seed) + ".cmtrace";
    const std::vector<Flow> flows = fuzz_flows(seed);

    run_flows(tb, flows, traced_config(seed, serial_path, 1));
    run_flows(tb, flows, traced_config(seed, pdes_path, kPartitions));

    std::vector<std::string> inputs = {pdes_path};
    for (int p = 0; p < kPartitions; ++p) {
      inputs.push_back(pdes_path + ".p" + std::to_string(p));
    }
    std::string error;
    ASSERT_TRUE(trace::merge_streams(inputs, merged_path, &error)) << error;

    // Non-vacuity: the partitioned run must actually have split its
    // records across per-partition streams.
    int populated = 0;
    for (int p = 0; p < kPartitions; ++p) {
      if (!read_checked(pdes_path + ".p" + std::to_string(p)).empty()) {
        ++populated;
      }
    }
    EXPECT_GE(populated, 2) << "seed " << seed;

    const auto serial = read_checked(serial_path);
    const auto merged = read_checked(merged_path);
    ASSERT_GT(serial.size(), 100u) << "vacuous fuzz: seed " << seed;
    EXPECT_EQ(serial.size(), merged.size());

    // Per-node order: each node's record sequence must match exactly.
    std::map<std::uint32_t, std::vector<std::string>> by_node_serial;
    std::map<std::uint32_t, std::vector<std::string>> by_node_merged;
    // Per-tick content: the multiset of records at each instant.
    std::map<sim::Time, std::multiset<std::string>> by_tick_serial;
    std::map<sim::Time, std::multiset<std::string>> by_tick_merged;
    for (const auto& r : serial) {
      if (const auto node = record_node(r)) {
        by_node_serial[*node].push_back(fingerprint(r));
      }
      by_tick_serial[r.tick].insert(fingerprint(r));
    }
    for (const auto& r : merged) {
      if (const auto node = record_node(r)) {
        by_node_merged[*node].push_back(fingerprint(r));
      }
      by_tick_merged[r.tick].insert(fingerprint(r));
    }
    EXPECT_EQ(by_node_serial, by_node_merged) << "seed " << seed;
    EXPECT_EQ(by_tick_serial, by_tick_merged) << "seed " << seed;

    std::remove(serial_path.c_str());
    std::remove(merged_path.c_str());
    for (const auto& p : inputs) std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace cmap::testbed
