// Replay consistency: reconstructing a node's DeferTable from its
// kDeferTable trace records must match the live table, at every sampled
// tick, on a real contended workload (the flows_50 scenario: 50 flows on
// the canonical 100-node building).
//
// Stream position: a snapshot event at tick T captures
// Tracer::records_written() — replaying exactly that record-count prefix
// reproduces the table state at the instant the snapshot ran, which
// sidesteps any ambiguity between the snapshot event and other events
// scheduled at the same tick.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cmap_mac.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "testbed/experiment.h"
#include "testbed/testbed.h"
#include "trace/reader.h"

namespace cmap::trace {
namespace {

DeferTableReplay::Entry to_replay_entry(const core::DeferEntry& e) {
  DeferTableReplay::Entry out;
  out.dst = e.dst;
  out.src = e.src;
  out.via = e.via;
  out.my_rate = static_cast<std::uint32_t>(e.my_rate);
  out.their_rate = static_cast<std::uint32_t>(e.their_rate);
  out.expires = e.expires;
  return out;
}

bool entries_equal(const DeferTableReplay::Entry& a,
                   const DeferTableReplay::Entry& b) {
  return a.dst == b.dst && a.src == b.src && a.via == b.via &&
         a.my_rate == b.my_rate && a.their_rate == b.their_rate &&
         a.expires == b.expires;
}

struct Snapshot {
  sim::Time at = 0;
  std::uint64_t records = 0;  // trace position when the snapshot ran
  std::vector<std::pair<std::uint32_t, std::vector<DeferTableReplay::Entry>>>
      tables;  // node -> canonical live entries
};

TEST(DeferTableReplayTest, MatchesLiveTablesOnFlows50) {
  const scenario::Scenario& sc =
      scenario::ScenarioRegistry::global().at("flows_50");
  ASSERT_TRUE(sc.testbed.has_value());
  const auto tb = testbed::TestbedCache::global().get(*sc.testbed);

  sim::Rng topo_rng(42);
  const auto topologies = sc.topology(*tb, 1, topo_rng);
  ASSERT_FALSE(topologies.empty());
  const auto& flows = topologies.front().flows;
  ASSERT_FALSE(flows.empty());

  const std::string path = ::testing::TempDir() + "replay_flows50.cmtrace";
  testbed::RunConfig config = sc.defaults;
  config.scheme = testbed::Scheme::kCmap;
  config.duration = sim::seconds(2);
  config.warmup = sim::milliseconds(250);
  config.seed = 3;
  // Fast re-learning loop so the table actually churns inside a 2 s run:
  // interferer lists broadcast every 150 ms (default 1 s would fire once,
  // at the very end) and entries expire after 400 ms, so the replay must
  // agree through insert, refresh, AND expiry.
  config.with_ilist_period(sim::milliseconds(150))
      .with_defer_ttl(sim::milliseconds(400));
  config.trace = TraceConfig{};
  config.trace->path = path;
  config.trace->categories = bit(Category::kDeferTable);

  std::vector<std::uint32_t> node_ids;
  for (const auto& f : flows) {
    node_ids.push_back(f.src);
    node_ids.push_back(f.dst);
  }
  std::sort(node_ids.begin(), node_ids.end());
  node_ids.erase(std::unique(node_ids.begin(), node_ids.end()),
                 node_ids.end());

  std::vector<Snapshot> snapshots;
  {
    testbed::World world(*tb, config);
    for (const auto& f : flows) world.add_saturated_flow(f.src, f.dst);
    ASSERT_NE(world.tracer(), nullptr);

    for (const sim::Time at :
         {sim::milliseconds(500), sim::milliseconds(900),
          sim::milliseconds(1400), sim::milliseconds(1999)}) {
      world.simulator().at(at, [&world, &snapshots, &node_ids, at] {
        Snapshot snap;
        snap.at = at;
        snap.records = world.tracer()->records_written();
        for (const std::uint32_t id : node_ids) {
          core::CmapMac* mac = world.cmap(id);
          ASSERT_NE(mac, nullptr);
          std::vector<DeferTableReplay::Entry> entries;
          for (const auto& e : mac->defer_table().snapshot(at)) {
            entries.push_back(to_replay_entry(e));
          }
          snap.tables.emplace_back(id, std::move(entries));
        }
        snapshots.push_back(std::move(snap));
      });
    }
    world.run(config.duration);
  }  // World destruction flushes the trace file.

  ASSERT_EQ(snapshots.size(), 4u);

  // Contention sanity: the workload must actually have populated conflict
  // maps, or the comparison proves nothing.
  std::size_t live_total = 0;
  for (const auto& snap : snapshots) {
    for (const auto& [id, entries] : snap.tables) live_total += entries.size();
  }
  ASSERT_GT(live_total, 0u) << "no defer entries ever live; test is vacuous";

  // Decode once; replay each snapshot as an exact record-count prefix.
  std::string error;
  const std::vector<Record> records = read_all(path, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_GT(records.size(), 0u);

  for (const auto& snap : snapshots) {
    ASSERT_LE(snap.records, records.size());
    DeferTableReplay replay;
    for (std::uint64_t i = 0; i < snap.records; ++i) {
      replay.apply(records[static_cast<std::size_t>(i)]);
    }
    for (const auto& [id, live_entries] : snap.tables) {
      const auto reconstructed = replay.live(id, snap.at);
      ASSERT_EQ(reconstructed.size(), live_entries.size())
          << "node " << id << " at " << snap.at;
      for (std::size_t i = 0; i < reconstructed.size(); ++i) {
        EXPECT_TRUE(entries_equal(reconstructed[i], live_entries[i]))
            << "node " << id << " at " << snap.at << " entry " << i;
      }
    }
  }

  // The full-stream replay's node set stays inside the run's node set.
  DeferTableReplay full;
  for (const auto& r : records) full.apply(r);
  for (const std::uint32_t id : full.nodes()) {
    EXPECT_TRUE(std::binary_search(node_ids.begin(), node_ids.end(), id))
        << "unexpected node " << id << " in trace";
  }

  std::remove(path.c_str());
}

}  // namespace
}  // namespace cmap::trace
