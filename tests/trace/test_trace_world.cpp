// End-to-end guarantees of tracing a live World:
//   * determinism — the same RunConfig + seed produces a byte-identical
//     .cmtrace file (records carry only simulated time and sim state),
//   * non-interference — a traced run's results equal an untraced run's
//     exactly (recording draws no randomness and schedules no events),
// both with the dynamics subsystem (mobility + channel epochs) live so
// every category has a chance to fire.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dynamics/dynamics.h"
#include "testbed/experiment.h"
#include "testbed/testbed.h"
#include "trace/reader.h"

namespace cmap::testbed {
namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

const Testbed& shared_testbed() {
  static const Testbed tb{TestbedConfig{}};
  return tb;
}

RunConfig base_config() {
  RunConfig config;
  config.scheme = Scheme::kCmap;
  config.duration = sim::seconds(1);
  config.warmup = sim::milliseconds(250);
  config.seed = 7;
  // Mobility + channel evolution so kMove and kChannelEpoch fire too.
  dynamics::DynamicsConfig dc;
  dc.mobility = dynamics::MobilityConfig{};
  dc.mobility->mobile_fraction = 0.5;
  dc.channel = dynamics::ChannelConfig{};
  dc.channel->epoch = sim::milliseconds(200);
  config.dynamics = dc;
  return config;
}

std::vector<Flow> cross_flows() {
  // A handful of crossing flows on the 50-node floor: enough contention
  // for defer decisions, ongoing entries, and collisions to appear.
  return {{0, 10}, {20, 10}, {5, 6}, {30, 31}, {40, 8}};
}

TEST(TraceWorld, SameConfigAndSeedGivesByteIdenticalTrace) {
  const std::string path_a = ::testing::TempDir() + "trace_det_a.cmtrace";
  const std::string path_b = ::testing::TempDir() + "trace_det_b.cmtrace";

  for (const std::string& path : {path_a, path_b}) {
    RunConfig config = base_config();
    config.trace = trace::TraceConfig{};
    config.trace->path = path;
    run_flows(shared_testbed(), cross_flows(), config);
  }

  const auto a = slurp(path_a);
  const auto b = slurp(path_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  // The stream is decodable end-to-end and actually carries events from
  // several subsystems (an empty or near-empty trace would make the
  // determinism check vacuous).
  trace::TraceReader reader(path_a);
  ASSERT_TRUE(reader.ok()) << reader.error();
  std::uint64_t phy = 0, mac = 0, dyn = 0;
  trace::Record r;
  while (reader.next(&r)) {
    const std::uint32_t b_ = trace::bit(r.category);
    if (b_ & trace::kPhyCategories) ++phy;
    if (b_ & trace::kMacCategories) ++mac;
    if (b_ & trace::kDynamicsCategories) ++dyn;
  }
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_GT(phy, 0u);
  EXPECT_GT(mac, 0u);
  EXPECT_GT(dyn, 0u);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(TraceWorld, DifferentSeedsGiveDifferentTraces) {
  const std::string path_a = ::testing::TempDir() + "trace_seed_a.cmtrace";
  const std::string path_b = ::testing::TempDir() + "trace_seed_b.cmtrace";
  for (const auto& [path, seed] :
       {std::pair<std::string, std::uint64_t>{path_a, 7},
        std::pair<std::string, std::uint64_t>{path_b, 8}}) {
    RunConfig config = base_config();
    config.seed = seed;
    config.trace = trace::TraceConfig{};
    config.trace->path = path;
    run_flows(shared_testbed(), cross_flows(), config);
  }
  EXPECT_NE(slurp(path_a), slurp(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(TraceWorld, TracingDoesNotChangeRunResults) {
  RunConfig untraced = base_config();
  const RunResult plain = run_flows(shared_testbed(), cross_flows(), untraced);

  const std::string path = ::testing::TempDir() + "trace_noninterf.cmtrace";
  RunConfig traced = base_config();
  traced.trace = trace::TraceConfig{};
  traced.trace->path = path;
  const RunResult with_trace =
      run_flows(shared_testbed(), cross_flows(), traced);

  EXPECT_EQ(plain.aggregate_mbps, with_trace.aggregate_mbps);
  ASSERT_EQ(plain.flows.size(), with_trace.flows.size());
  for (std::size_t i = 0; i < plain.flows.size(); ++i) {
    const FlowResult& p = plain.flows[i];
    const FlowResult& t = with_trace.flows[i];
    EXPECT_EQ(p.mbps, t.mbps) << "flow " << i;
    EXPECT_EQ(p.unique_packets, t.unique_packets) << "flow " << i;
    EXPECT_EQ(p.duplicates, t.duplicates) << "flow " << i;
    EXPECT_EQ(p.vps_sent, t.vps_sent) << "flow " << i;
    EXPECT_EQ(p.defer_events, t.defer_events) << "flow " << i;
    EXPECT_EQ(p.retx_timeouts, t.retx_timeouts) << "flow " << i;
    EXPECT_EQ(p.sender_stats.enqueued, t.sender_stats.enqueued)
        << "flow " << i;
    EXPECT_EQ(p.sender_stats.deferrals, t.sender_stats.deferrals)
        << "flow " << i;
  }
  std::remove(path.c_str());
}

TEST(TraceWorld, CategoryMaskLimitsWhatIsRecorded) {
  const std::string path = ::testing::TempDir() + "trace_masked.cmtrace";
  RunConfig config = base_config();
  config.trace = trace::TraceConfig{};
  config.trace->path = path;
  config.trace->categories = trace::bit(trace::Category::kPhyTx);
  run_flows(shared_testbed(), cross_flows(), config);

  trace::TraceReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  std::uint64_t total = 0;
  trace::Record r;
  while (reader.next(&r)) {
    EXPECT_EQ(r.category, trace::Category::kPhyTx);
    ++total;
  }
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_GT(total, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cmap::testbed
