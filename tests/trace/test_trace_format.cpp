// Wire-format unit tests for the trace subsystem: varint/zigzag edge
// cases, per-category encode/decode round trips through an in-memory
// sink, header validation, loud failure on truncated or corrupt input,
// and every-Nth sampling. The writer and reader share wire.h helpers, so
// these tests pin the format both sides implement.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "trace/reader.h"
#include "trace/trace.h"

namespace cmap::trace {
namespace {

TEST(Varint, RoundTripEdgeValues) {
  const std::uint64_t values[] = {
      0,     1,     127,        128,
      16383, 16384, 0xffffffffu, 0x100000000ull,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    wire::put_varint(buf, v);
    std::size_t pos = 0;
    std::uint64_t out = 0;
    ASSERT_TRUE(wire::get_varint(buf.data(), buf.size(), &pos, &out))
        << "value " << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, EncodedLengthBoundaries) {
  auto length_of = [](std::uint64_t v) {
    std::vector<std::uint8_t> buf;
    wire::put_varint(buf, v);
    return buf.size();
  };
  EXPECT_EQ(length_of(0), 1u);
  EXPECT_EQ(length_of(127), 1u);
  EXPECT_EQ(length_of(128), 2u);
  EXPECT_EQ(length_of(16383), 2u);
  EXPECT_EQ(length_of(16384), 3u);
  EXPECT_EQ(length_of(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(Varint, TruncatedDecodeFails) {
  std::vector<std::uint8_t> buf;
  wire::put_varint(buf, 16384);  // 3 bytes
  for (std::size_t keep = 0; keep < buf.size(); ++keep) {
    std::size_t pos = 0;
    std::uint64_t out = 0;
    EXPECT_FALSE(wire::get_varint(buf.data(), keep, &pos, &out))
        << "keep " << keep;
  }
}

TEST(Varint, OverlongDecodeFails) {
  // 11 continuation bytes: longer than any valid 64-bit varint.
  const std::vector<std::uint8_t> bad(11, 0x80);
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_FALSE(wire::get_varint(bad.data(), bad.size(), &pos, &out));
}

TEST(Zigzag, RoundTripEdgeValues) {
  const std::int64_t values[] = {0,  -1, 1,  -2, 2,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(wire::unzigzag(wire::zigzag(v)), v) << "value " << v;
  }
  // Small magnitudes map to small codes (the property zigzag exists for).
  EXPECT_EQ(wire::zigzag(0), 0u);
  EXPECT_EQ(wire::zigzag(-1), 1u);
  EXPECT_EQ(wire::zigzag(1), 2u);
}

/// A Tracer writing into a MemoryTraceSink the test keeps a handle to.
struct MemoryTracer {
  explicit MemoryTracer(TraceConfig config) {
    auto owned = std::make_unique<MemoryTraceSink>();
    sink = owned.get();
    config.path = "<memory>";
    tracer = std::make_unique<Tracer>(config, std::move(owned));
  }
  MemoryTraceSink* sink = nullptr;
  std::unique_ptr<Tracer> tracer;
};

TEST(TraceFormat, EmptyTraceIsHeaderOnlyAndDecodes) {
  TraceConfig config;
  config.categories = kPhyCategories;
  config.sample_every[static_cast<std::size_t>(Category::kPhyTx)] = 7;
  MemoryTracer mt(config);
  EXPECT_EQ(mt.tracer->records_written(), 0u);

  TraceReader reader(mt.sink->bytes());
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(reader.categories(), kPhyCategories);
  ASSERT_EQ(reader.sample_every().size(), kCategoryCount);
  EXPECT_EQ(reader.sample_every()[static_cast<std::size_t>(Category::kPhyTx)],
            7u);
  Record r;
  EXPECT_FALSE(reader.next(&r));
  EXPECT_TRUE(reader.ok()) << reader.error();  // clean EOF, not an error
}

TEST(TraceFormat, AllCategoriesRoundTrip) {
  MemoryTracer mt(TraceConfig{});
  Tracer& t = *mt.tracer;
  t.phy_tx(10, 3, 42, 2, 1428, 1928000);
  t.phy_rx(20, 4, 42, 3, true, -1234);
  t.phy_collision(30, 5, 43, CollisionReason::kCaptured);
  t.mac_defer(40, 6, 7, true, DeferReason::kConflictMap, 8, 9, 99999);
  t.defer_table(50, 6, DeferTableOp::kInsert, 0xffffffffu, 8, 9, 2, 0xff,
                123456789);
  t.ongoing(60, 6, OngoingOp::kUpdate, 8, 9, 777);
  t.move(70, 11, 12.345, -0.5);
  t.channel_epoch(80, 17);
  t.log(90, 2, "mac", "hello trace");
  EXPECT_EQ(t.records_written(), 9u);

  TraceReader reader(mt.sink->bytes());
  ASSERT_TRUE(reader.ok()) << reader.error();
  Record r;

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kPhyTx);
  EXPECT_EQ(r.tick, 10);
  {
    const auto& b = std::get<PhyTxRecord>(r.body);
    EXPECT_EQ(b.node, 3u);
    EXPECT_EQ(b.frame_id, 42u);
    EXPECT_EQ(b.rate, 2u);
    EXPECT_EQ(b.bytes, 1428u);
    EXPECT_EQ(b.duration, 1928000);
  }

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kPhyRx);
  EXPECT_EQ(r.tick, 20);
  {
    const auto& b = std::get<PhyRxRecord>(r.body);
    EXPECT_EQ(b.node, 4u);
    EXPECT_EQ(b.frame_id, 42u);
    EXPECT_EQ(b.tx_node, 3u);
    EXPECT_TRUE(b.ok);
    EXPECT_EQ(b.min_sinr_cdb, -1234);
  }

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kPhyCollision);
  EXPECT_EQ(r.tick, 30);
  {
    const auto& b = std::get<PhyCollisionRecord>(r.body);
    EXPECT_EQ(b.node, 5u);
    EXPECT_EQ(b.frame_id, 43u);
    EXPECT_EQ(b.reason, CollisionReason::kCaptured);
  }

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kMacDefer);
  EXPECT_EQ(r.tick, 40);
  {
    const auto& b = std::get<MacDeferRecord>(r.body);
    EXPECT_EQ(b.node, 6u);
    EXPECT_EQ(b.dst, 7u);
    EXPECT_TRUE(b.deferred);
    EXPECT_EQ(b.reason, DeferReason::kConflictMap);
    EXPECT_EQ(b.blocker_src, 8u);
    EXPECT_EQ(b.blocker_dst, 9u);
    EXPECT_EQ(b.until, 99999);
  }

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kDeferTable);
  EXPECT_EQ(r.tick, 50);
  {
    const auto& b = std::get<DeferTableRecord>(r.body);
    EXPECT_EQ(b.node, 6u);
    EXPECT_EQ(b.op, DeferTableOp::kInsert);
    EXPECT_EQ(b.dst, 0xffffffffu);  // the "*" wildcard survives intact
    EXPECT_EQ(b.src, 8u);
    EXPECT_EQ(b.via, 9u);
    EXPECT_EQ(b.my_rate, 2u);
    EXPECT_EQ(b.their_rate, 0xffu);
    EXPECT_EQ(b.expires, 123456789);
  }

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kOngoing);
  EXPECT_EQ(r.tick, 60);
  {
    const auto& b = std::get<OngoingRecord>(r.body);
    EXPECT_EQ(b.node, 6u);
    EXPECT_EQ(b.op, OngoingOp::kUpdate);
    EXPECT_EQ(b.src, 8u);
    EXPECT_EQ(b.dst, 9u);
    EXPECT_EQ(b.end_time, 777);
  }

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kMove);
  EXPECT_EQ(r.tick, 70);
  {
    const auto& b = std::get<MoveRecord>(r.body);
    EXPECT_EQ(b.node, 11u);
    EXPECT_EQ(b.x_mm, 12345);  // metres stored as signed millimetres
    EXPECT_EQ(b.y_mm, -500);
  }

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kChannelEpoch);
  EXPECT_EQ(r.tick, 80);
  EXPECT_EQ(std::get<ChannelEpochRecord>(r.body).epoch, 17u);

  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kLog);
  EXPECT_EQ(r.tick, 90);
  {
    const auto& b = std::get<LogRecord>(r.body);
    EXPECT_EQ(b.level, 2u);
    EXPECT_EQ(b.component, "mac");
    EXPECT_EQ(b.message, "hello trace");
  }

  EXPECT_FALSE(reader.next(&r));
  EXPECT_TRUE(reader.ok()) << reader.error();
}

TEST(TraceFormat, DisabledCategoryWritesNothing) {
  TraceConfig config;
  config.categories = bit(Category::kPhyTx);
  MemoryTracer mt(config);
  mt.tracer->phy_rx(10, 1, 2, 3, true, 0);  // masked out
  mt.tracer->phy_tx(20, 1, 2, 0, 100, 5);
  EXPECT_EQ(mt.tracer->records_written(), 1u);

  TraceReader reader(mt.sink->bytes());
  Record r;
  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kPhyTx);
  EXPECT_FALSE(reader.next(&r));
  EXPECT_TRUE(reader.ok());
}

TEST(TraceFormat, EveryNthSamplingKeepsFirstOfEachStride) {
  TraceConfig config;
  config.sample_every[static_cast<std::size_t>(Category::kPhyTx)] = 3;
  MemoryTracer mt(config);
  for (int i = 0; i < 10; ++i) {
    mt.tracer->phy_tx(i, 1, static_cast<std::uint64_t>(i), 0, 100, 5);
  }
  EXPECT_EQ(mt.tracer->records_written(), 4u);  // i = 0, 3, 6, 9

  TraceReader reader(mt.sink->bytes());
  Record r;
  std::vector<std::uint64_t> kept;
  while (reader.next(&r)) kept.push_back(std::get<PhyTxRecord>(r.body).frame_id);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(kept, (std::vector<std::uint64_t>{0, 3, 6, 9}));
}

TEST(TraceFormat, TruncatedStreamFailsLoudly) {
  MemoryTracer mt(TraceConfig{});
  mt.tracer->phy_tx(10, 3, 42, 2, 1428, 1928000);
  mt.tracer->mac_defer(40, 6, 7, false, DeferReason::kNone, 0, 0, 0);
  const std::vector<std::uint8_t>& full = mt.sink->bytes();

  // Chop mid-way through the last record: the first still decodes, then
  // the reader reports an error (never a silent clean EOF).
  std::vector<std::uint8_t> cut(full.begin(), full.end() - 3);
  TraceReader reader(std::move(cut));
  ASSERT_TRUE(reader.ok()) << reader.error();
  Record r;
  ASSERT_TRUE(reader.next(&r));
  EXPECT_EQ(r.category, Category::kPhyTx);
  EXPECT_FALSE(reader.next(&r));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find("truncated"), std::string::npos)
      << reader.error();
}

TEST(TraceFormat, BadMagicRejected) {
  MemoryTracer mt(TraceConfig{});
  std::vector<std::uint8_t> bytes = mt.sink->bytes();
  ASSERT_GE(bytes.size(), 4u);
  bytes[0] = 'X';
  TraceReader reader(std::move(bytes));
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.error().empty());
}

TEST(TraceFormat, MissingFileFailsLoudly) {
  TraceReader reader(std::string("/nonexistent/definitely_not_here.cmtrace"));
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.error().empty());
}

TEST(TraceHookTest, UnboundHookWantsNothing) {
  TraceHook hook;
  EXPECT_FALSE(hook.wants(Category::kPhyTx));
  hook.bind(nullptr, 5);
  EXPECT_FALSE(hook.wants(Category::kPhyTx));
}

TEST(TraceHookTest, BindCachesTheMask) {
  TraceConfig config;
  config.categories = bit(Category::kMacDefer);
  MemoryTracer mt(config);
  TraceHook hook;
  hook.bind(mt.tracer.get(), 9);
  EXPECT_TRUE(hook.wants(Category::kMacDefer));
  EXPECT_FALSE(hook.wants(Category::kPhyTx));
  EXPECT_EQ(hook.self, 9u);
  EXPECT_EQ(hook.tracer, mt.tracer.get());
}

TEST(TracerThreadActive, RegistersAndRestoresInnermost) {
  EXPECT_EQ(Tracer::thread_active(), nullptr);
  {
    MemoryTracer outer(TraceConfig{});
    EXPECT_EQ(Tracer::thread_active(), outer.tracer.get());
    {
      MemoryTracer inner(TraceConfig{});
      EXPECT_EQ(Tracer::thread_active(), inner.tracer.get());
    }
    EXPECT_EQ(Tracer::thread_active(), outer.tracer.get());
  }
  EXPECT_EQ(Tracer::thread_active(), nullptr);
}

}  // namespace
}  // namespace cmap::trace
