// End-to-end reproduction checks of the paper's headline claims, on the
// calibrated 50-node testbed at reduced scale (shorter runs and fewer
// configurations than the benches; the direction and rough magnitude of
// each claim must hold regardless).
#include <gtest/gtest.h>

#include "stats/summary.h"
#include "testbed/experiment.h"
#include "testbed/topology_picker.h"

namespace cmap::testbed {
namespace {

const Testbed& shared_testbed() {
  static Testbed tb{TestbedConfig{}};
  return tb;
}

RunConfig rc_for(Scheme scheme) {
  RunConfig rc;
  rc.scheme = scheme;
  rc.duration = sim::seconds(12);
  rc.warmup = sim::seconds(5);
  rc.seed = 3;
  return rc;
}

double pair_mbps(const LinkPair& p, Scheme scheme) {
  const std::vector<Flow> flows = {{p.s1, p.r1}, {p.s2, p.r2}};
  return run_flows(shared_testbed(), flows, rc_for(scheme)).aggregate_mbps;
}

TEST(PaperClaims, ExposedTerminalsGainRoughlyTwofold) {
  TopologyPicker picker(shared_testbed());
  sim::Rng rng(21);
  const auto pairs = picker.exposed_pairs(6, rng);
  ASSERT_GE(pairs.size(), 4u);
  stats::Distribution cs, cmap;
  for (const auto& p : pairs) {
    cs.add(pair_mbps(p, Scheme::kCsma));
    cmap.add(pair_mbps(p, Scheme::kCmap));
  }
  const double gain = cmap.median() / cs.median();
  EXPECT_GT(gain, 1.6);  // paper: ~2x
  EXPECT_LT(gain, 2.4);
}

TEST(PaperClaims, SmallWindowLosesPartOfTheGain) {
  // §5.2: window of one virtual packet -> ~1.5x instead of ~2x.
  TopologyPicker picker(shared_testbed());
  sim::Rng rng(22);
  const auto pairs = picker.exposed_pairs(6, rng);
  ASSERT_GE(pairs.size(), 4u);
  stats::Distribution full, win1;
  for (const auto& p : pairs) {
    full.add(pair_mbps(p, Scheme::kCmap));
    win1.add(pair_mbps(p, Scheme::kCmapWin1));
  }
  EXPECT_LT(win1.median(), full.median());
}

TEST(PaperClaims, HiddenTerminalsDoNotRegressBelowStatusQuo) {
  // §5.5: CMAP's backoff keeps it comparable to 802.11 when the conflict
  // map cannot see the interferer.
  TopologyPicker picker(shared_testbed());
  sim::Rng rng(23);
  const auto pairs = picker.hidden_pairs(6, rng);
  ASSERT_GE(pairs.size(), 3u);
  stats::Distribution cs, cmap;
  for (const auto& p : pairs) {
    cs.add(pair_mbps(p, Scheme::kCsma));
    cmap.add(pair_mbps(p, Scheme::kCmap));
  }
  EXPECT_GT(cmap.median(), 0.8 * cs.median());
}

TEST(PaperClaims, SingleLinkParityWith80211) {
  // §4.2: CMAP's pipelining is throughput-comparable to 802.11 on a clean
  // link (5.04 vs 5.07 Mbit/s in the paper).
  TopologyPicker picker(shared_testbed());
  const auto links = picker.potential_links();
  ASSERT_FALSE(links.empty());
  const std::vector<Flow> flow = {{links[0].first, links[0].second}};
  const double cs =
      run_flows(shared_testbed(), flow, rc_for(Scheme::kCsma)).aggregate_mbps;
  const double cm =
      run_flows(shared_testbed(), flow, rc_for(Scheme::kCmap)).aggregate_mbps;
  EXPECT_GT(cm / cs, 0.9);
  EXPECT_LT(cm / cs, 1.25);
}

TEST(PaperClaims, CmapNeverFallsFarBehindOnInRangePairs) {
  // §5.3: CMAP discriminates — per pair it should track the better of
  // serialize (CS) and concurrent (CS off).
  TopologyPicker picker(shared_testbed());
  sim::Rng rng(24);
  const auto pairs = picker.in_range_pairs(6, rng);
  ASSERT_GE(pairs.size(), 4u);
  int tracked = 0;
  for (const auto& p : pairs) {
    const double cs = pair_mbps(p, Scheme::kCsma);
    const double raw = pair_mbps(p, Scheme::kCsmaOffNoAcks);
    const double cm = pair_mbps(p, Scheme::kCmap);
    if (cm >= 0.75 * std::max(cs, raw)) ++tracked;
  }
  EXPECT_GE(tracked, static_cast<int>(pairs.size()) - 1);
}

TEST(PaperClaims, ApTopologyAggregateImproves) {
  // §5.6 direction check at reduced scale: CMAP above 802.11 on aggregate.
  TopologyPicker picker(shared_testbed());
  sim::Rng rng(25);
  const auto sc = picker.ap_scenario(4, rng);
  ASSERT_TRUE(sc.has_value());
  std::vector<Flow> flows;
  for (const auto& cell : sc->cells) {
    flows.push_back({cell.sender(), cell.receiver()});
  }
  const double cs =
      run_flows(shared_testbed(), flows, rc_for(Scheme::kCsma)).aggregate_mbps;
  const double cm =
      run_flows(shared_testbed(), flows, rc_for(Scheme::kCmap)).aggregate_mbps;
  EXPECT_GT(cm, cs * 0.95);  // never a regression...
  EXPECT_GT(cm, 1.0);        // ...and meaningful absolute throughput
}

}  // namespace
}  // namespace cmap::testbed
