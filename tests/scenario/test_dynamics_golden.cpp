// Golden-report exactness of incremental gain-cache maintenance under
// mobility: a mobile-scenario sweep run with
// MediumConfig::incremental_invalidation (row/column splice per move) must
// produce a report BYTE-identical to the same sweep with every move doing
// the full O(n^2) rebuild. This is what licenses the incremental path: it
// maintains exactly the state the rebuild recomputes — same gains, same
// reachability sets, in the same order — so the entire simulation unfolds
// identically. Mirrors test_fastpath_golden.cpp / test_mac_decide_golden.cpp
// (the PHY and MAC fast paths' equivalent guarantees).
#include <gtest/gtest.h>

#include <string>

#include "scenario/sweep.h"
#include "stats/report.h"
#include "testbed/testbed.h"

namespace cmap::scenario {
namespace {

testbed::Testbed make_testbed(bool incremental) {
  testbed::TestbedConfig cfg;
  cfg.medium.incremental_invalidation = incremental;
  return testbed::Testbed(cfg);
}

std::string sweep_json(const testbed::Testbed& tb, const char* scenario) {
  Sweep sweep;
  sweep.scenario = scenario;
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCmap};
  sweep.topologies = 2;
  sweep.duration = sim::seconds(2);
  sweep.warmup = sim::milliseconds(500);
  const stats::SweepReport report = SweepRunner(1).run(sweep, tb);
  EXPECT_FALSE(report.empty()) << scenario;
  return report.to_json();
}

class DynamicsGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(DynamicsGolden, MobileSweepReportIsByteIdentical) {
  const testbed::Testbed incremental = make_testbed(true);
  const testbed::Testbed rebuild = make_testbed(false);
  const std::string fast_json = sweep_json(incremental, GetParam());
  const std::string slow_json = sweep_json(rebuild, GetParam());
  EXPECT_EQ(fast_json, slow_json);
}

// mobile_floor_25 moves half the floor every 200 ms under an evolving
// channel; churn_25 teleports nodes (the abrupt-invalidate case);
// mobile_chain drifts every node (all rows hot).
INSTANTIATE_TEST_SUITE_P(MobileScenarios, DynamicsGolden,
                         ::testing::Values("mobile_floor_25", "churn_25",
                                           "mobile_chain"));

TEST(DynamicsGoldenSanity, MobileRunsDifferFromStaticRuns) {
  // The dynamics must actually change outcomes (otherwise the family tests
  // nothing): the same workload with dynamics stripped produces a
  // different report.
  const testbed::Testbed tb = make_testbed(true);
  Sweep sweep;
  sweep.scenario = "mobile_floor_25";
  sweep.schemes = {testbed::Scheme::kCmap};
  sweep.topologies = 2;
  sweep.duration = sim::seconds(2);
  sweep.warmup = sim::milliseconds(500);
  const std::string mobile = SweepRunner(1).run(sweep, tb).to_json();
  sweep.variants = {{"", [](testbed::RunConfig& c) { c.dynamics.reset(); }}};
  const std::string frozen = SweepRunner(1).run(sweep, tb).to_json();
  EXPECT_NE(mobile, frozen);
}

}  // namespace
}  // namespace cmap::scenario
