#include "scenario/sweep.h"

#include <gtest/gtest.h>

#include <set>

namespace cmap::scenario {
namespace {

const testbed::Testbed& shared_testbed() {
  static testbed::Testbed tb{testbed::TestbedConfig{}};
  return tb;
}

// A synthetic scenario whose executor does no simulation: runs are instant
// and the outcome encodes the run coordinates, which lets structural tests
// (expansion, parallel determinism, ordering) execute in microseconds.
ScenarioRegistry synthetic_registry() {
  ScenarioRegistry reg;
  Scenario s;
  s.name = "synthetic";
  s.description = "coordinate-echo scenario for runner tests";
  s.topology = [](const testbed::Testbed&, int count, sim::Rng& rng) {
    std::vector<TopologyInstance> out;
    for (int i = 0; i < count; ++i) {
      TopologyInstance inst;
      inst.flows = {{static_cast<phy::NodeId>(i), static_cast<phy::NodeId>(
                                                      i + 1)}};
      inst.label = "topo" + std::to_string(i) + "/" +
                   std::to_string(rng.uniform_int(0, 1 << 20));
      out.push_back(inst);
    }
    return out;
  };
  s.run = [](const RunContext& ctx) {
    RunOutcome out;
    out.aggregate_mbps = static_cast<double>(ctx.config.seed % 1000);
    out.metrics = {{"seed_lo", static_cast<double>(ctx.config.seed & 0xff)},
                   {"nwindow", ctx.config.cmap.nwindow
                                   ? static_cast<double>(*ctx.config.cmap.nwindow)
                                   : -1.0}};
    return out;
  };
  reg.add(s);
  return reg;
}

TEST(SweepExpansion, CountsAreTheCartesianProduct) {
  Sweep sweep;
  sweep.scenario = "synthetic";
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
                   testbed::Scheme::kCmap};
  sweep.variants = {{"a", nullptr}, {"b", nullptr}};
  sweep.replicates = 4;
  const auto specs = SweepRunner::expand(sweep, 5);
  EXPECT_EQ(specs.size(), 3u * 2u * 5u * 4u);
}

TEST(SweepExpansion, NoVariantsMeansOneImplicitVariant) {
  Sweep sweep;
  sweep.scenario = "synthetic";
  sweep.schemes = {testbed::Scheme::kCmap};
  const auto specs = SweepRunner::expand(sweep, 7);
  EXPECT_EQ(specs.size(), 7u);
  for (const auto& spec : specs) EXPECT_EQ(spec.variant_index, 0);
}

TEST(SweepExpansion, SeedsAreUniqueAcrossCellsScenariosAndBaseSeeds) {
  std::set<std::uint64_t> seeds;
  std::size_t total = 0;
  for (const char* name : {"synthetic", "other_name"}) {
    for (std::uint64_t base : {1ull, 2ull, 7919ull}) {
      Sweep sweep;
      sweep.scenario = name;
      sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCmap};
      sweep.variants = {{"a", nullptr}, {"b", nullptr}};
      sweep.replicates = 3;
      sweep.base_seed = base;
      for (const auto& spec : SweepRunner::expand(sweep, 10)) {
        seeds.insert(spec.seed);
        ++total;
      }
    }
  }
  // The old bench derivation (seed * 7919 + scheme) collided across
  // schemes and base seeds; the splitmix64 mix must not.
  EXPECT_EQ(seeds.size(), total);
}

TEST(SweepMixSeed, ChangingAnyCoordinateChangesTheSeed) {
  const std::uint64_t base = mix_seed({1, 2, 3, 4, 5, 6});
  EXPECT_NE(mix_seed({9, 2, 3, 4, 5, 6}), base);
  EXPECT_NE(mix_seed({1, 9, 3, 4, 5, 6}), base);
  EXPECT_NE(mix_seed({1, 2, 9, 4, 5, 6}), base);
  EXPECT_NE(mix_seed({1, 2, 3, 9, 5, 6}), base);
  EXPECT_NE(mix_seed({1, 2, 3, 4, 9, 6}), base);
  EXPECT_NE(mix_seed({1, 2, 3, 4, 5, 9}), base);
  EXPECT_EQ(mix_seed({1, 2, 3, 4, 5, 6}), base);  // and it is a pure function
}

TEST(SweepRunnerTest, ThreadCountIsRespected) {
  EXPECT_EQ(SweepRunner(1).threads(), 1);
  EXPECT_EQ(SweepRunner(4).threads(), 4);
  EXPECT_GE(SweepRunner(0).threads(), 1);
}

TEST(SweepRunnerTest, RowsFollowExpansionOrderRegardlessOfThreads) {
  const auto reg = synthetic_registry();
  Sweep sweep;
  sweep.scenario = "synthetic";
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCmap};
  sweep.variants = {{"w1", [](testbed::RunConfig& rc) { rc.with_nwindow(1); }},
                    {"w8", [](testbed::RunConfig& rc) { rc.with_nwindow(8); }}};
  sweep.topologies = 6;
  sweep.replicates = 2;

  const auto serial = SweepRunner(1).run(sweep, shared_testbed(), reg);
  const auto parallel = SweepRunner(8).run(sweep, shared_testbed(), reg);
  EXPECT_EQ(serial.rows().size(), 2u * 2u * 6u * 2u);
  EXPECT_EQ(serial.to_json(), parallel.to_json());

  // Variants really applied per cell.
  const auto* w1 = serial.find("CMAP", 0, "w1");
  const auto* w8 = serial.find("CMAP", 0, "w8");
  ASSERT_NE(w1, nullptr);
  ASSERT_NE(w8, nullptr);
  EXPECT_DOUBLE_EQ(w1->metric("nwindow"), 1.0);
  EXPECT_DOUBLE_EQ(w8->metric("nwindow"), 8.0);
}

TEST(SweepRunnerTest, InvalidOutcomesAreDroppedDeterministically) {
  ScenarioRegistry reg;
  Scenario s;
  s.name = "half_valid";
  s.description = "drops odd topologies";
  s.topology = [](const testbed::Testbed&, int count, sim::Rng&) {
    std::vector<TopologyInstance> out;
    for (int i = 0; i < count; ++i) {
      TopologyInstance inst;
      inst.flows = {{1, 2}};
      inst.label = std::to_string(i);
      out.push_back(inst);
    }
    return out;
  };
  s.run = [](const RunContext& ctx) {
    RunOutcome out;
    out.valid = std::stoi(ctx.topology.label) % 2 == 0;
    out.aggregate_mbps = 1.0;
    return out;
  };
  reg.add(s);

  Sweep sweep;
  sweep.scenario = "half_valid";
  sweep.schemes = {testbed::Scheme::kCmap};
  sweep.topologies = 10;
  const auto serial = SweepRunner(1).run(sweep, shared_testbed(), reg);
  const auto parallel = SweepRunner(4).run(sweep, shared_testbed(), reg);
  EXPECT_EQ(serial.rows().size(), 5u);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

// The end-to-end guarantee the parallel runner is built on: real
// simulations produce byte-identical reports at 1 thread and N threads.
TEST(SweepRunnerTest, RealSweepIsByteIdenticalAcrossThreadCounts) {
  Sweep sweep;
  sweep.scenario = "fig12_exposed";
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCmap};
  sweep.topologies = 2;
  sweep.duration = sim::seconds(2);
  sweep.warmup = sim::seconds(1);

  const auto serial = SweepRunner(1).run(sweep, shared_testbed());
  const auto parallel = SweepRunner(4).run(sweep, shared_testbed());
  ASSERT_FALSE(serial.rows().empty());
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  for (const auto& row : serial.rows()) {
    EXPECT_GT(row.aggregate_mbps, 0.0) << row.scheme << " " << row.topology;
    ASSERT_EQ(row.flows.size(), 2u);  // per-flow results survive into rows
    EXPECT_GT(row.flows[0].unique_packets, 0u);
    if (row.scheme == "CMAP") {
      EXPECT_GT(row.flows[0].vps_sent, 0u);
    }
  }
}

// The testbed_100/200/400 family prescribes its own building; the
// testbed-resolving overload must instantiate it through the global
// TestbedCache so repeated sweeps share one measurement pass.
TEST(SweepRunnerTest, ScenarioResolvedTestbedComesFromTheGlobalCache) {
  const auto& reg = ScenarioRegistry::global();
  const Scenario& scenario = reg.at("testbed_100");
  ASSERT_TRUE(scenario.testbed.has_value());
  EXPECT_EQ(scenario.testbed->num_nodes, 100);
  // fig12_exposed has no canonical building: drivers must pass one.
  EXPECT_FALSE(reg.at("fig12_exposed").testbed.has_value());

  const auto tb1 = testbed::TestbedCache::global().get(*scenario.testbed);
  const auto tb2 = testbed::TestbedCache::global().get(*scenario.testbed);
  EXPECT_EQ(tb1.get(), tb2.get());
  EXPECT_EQ(tb1->size(), 100);

  Sweep sweep;
  sweep.scenario = "testbed_100";
  sweep.schemes = {testbed::Scheme::kCsma};
  sweep.topologies = 1;
  sweep.duration = sim::seconds(1);
  sweep.warmup = sim::seconds(0);
  const auto via_cache = SweepRunner(1).run(sweep);
  const auto explicit_tb = SweepRunner(1).run(sweep, *tb1);
  ASSERT_FALSE(via_cache.rows().empty());
  EXPECT_EQ(via_cache.to_json(), explicit_tb.to_json());
}

TEST(SweepRunnerTest, DrawTopologiesMatchesWhatRunUses) {
  Sweep sweep;
  sweep.scenario = "fig12_exposed";
  sweep.schemes = {testbed::Scheme::kCsma};
  sweep.topologies = 2;
  sweep.duration = sim::seconds(2);
  sweep.warmup = sim::seconds(1);
  const auto topos = SweepRunner::draw_topologies(sweep, shared_testbed());
  const auto report = SweepRunner(2).run(sweep, shared_testbed());
  ASSERT_EQ(report.rows().size(), topos.size());
  for (std::size_t i = 0; i < topos.size(); ++i) {
    EXPECT_EQ(report.rows()[i].topology, topos[i].label);
  }
}

}  // namespace
}  // namespace cmap::scenario
