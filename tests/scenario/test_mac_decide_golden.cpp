// Golden-report exactness of the MAC decision fast path: sweeps run with
// CmapConfig::decision_mode == kFast (indexed defer table, intrusive
// ongoing ring, one-pass DeferDecider) must produce reports BYTE-identical
// to the same sweeps under kReference (the retained snapshot-and-scan
// oracle). This is what licenses the optimization: it is an indexing of
// the same decision procedure, not an approximation — any divergence in
// any defer decision would cascade into different timings, throughputs,
// and therefore different report bytes. Mirrors test_fastpath_golden.cpp
// (the PHY fast path's equivalent guarantee).
#include <gtest/gtest.h>

#include <string>

#include "core/config.h"
#include "scenario/sweep.h"
#include "stats/report.h"
#include "testbed/testbed.h"

namespace cmap::scenario {
namespace {

Sweep make_sweep(const char* scenario, core::DecisionMode mode,
                 std::vector<testbed::Scheme> schemes, int topologies,
                 sim::Time duration) {
  Sweep sweep;
  sweep.scenario = scenario;
  sweep.schemes = std::move(schemes);
  // The decision mode rides in an unlabeled variant so the two reports
  // differ in nothing but the code path under test (same seeds, same
  // variant index, same empty label).
  sweep.variants = {{"", [mode](testbed::RunConfig& c) {
                       c.with_decision_mode(mode);
                     }}};
  sweep.topologies = topologies;
  sweep.duration = duration;
  sweep.warmup = duration / 4;
  return sweep;
}

class MacDecideGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(MacDecideGolden, FigureSweepReportIsByteIdentical) {
  const testbed::Testbed tb{testbed::TestbedConfig{}};
  const std::vector<testbed::Scheme> schemes = {
      testbed::Scheme::kCmap, testbed::Scheme::kCmapIntegrated};
  const std::string fast =
      SweepRunner(1)
          .run(make_sweep(GetParam(), core::DecisionMode::kFast, schemes, 3,
                          sim::seconds(2)),
               tb)
          .to_json();
  const std::string reference =
      SweepRunner(1)
          .run(make_sweep(GetParam(), core::DecisionMode::kReference, schemes,
                          3, sim::seconds(2)),
               tb)
          .to_json();
  EXPECT_FALSE(fast.empty());
  EXPECT_EQ(fast, reference);
}

INSTANTIATE_TEST_SUITE_P(FigureBenches, MacDecideGolden,
                         ::testing::Values("fig12_exposed", "fig15_hidden"));

TEST(MacDecideGoldenFlows, HighConcurrencySweepReportIsByteIdentical) {
  // flows_50: 50 concurrent flows on the canonical 100-node building —
  // the decision path under real load (resolved via the TestbedCache, so
  // the two runs share one measurement pass). CMAP with per-destination
  // queues exercises the multi-destination decision scan as well.
  auto with_queues = [](Sweep sweep) {
    auto base = sweep.variants[0].apply;
    sweep.variants[0].apply = [base](testbed::RunConfig& c) {
      base(c);
      c.per_dest_queues = true;
    };
    return sweep;
  };
  const std::string fast =
      SweepRunner(1)
          .run(with_queues(make_sweep("flows_50", core::DecisionMode::kFast,
                                      {testbed::Scheme::kCmap}, 2,
                                      sim::seconds(1))))
          .to_json();
  const std::string reference =
      SweepRunner(1)
          .run(with_queues(make_sweep("flows_50",
                                      core::DecisionMode::kReference,
                                      {testbed::Scheme::kCmap}, 2,
                                      sim::seconds(1))))
          .to_json();
  EXPECT_FALSE(fast.empty());
  EXPECT_EQ(fast, reference);
}

}  // namespace
}  // namespace cmap::scenario
