// Golden-report exactness of the sparse link-state stores: every builtin
// scenario swept on its prescribed building must produce a report
// BYTE-identical whether the building uses the dense O(n^2) pair state
// (LinkStateMode::kDenseCached + MeasurementStore::kDense) or the sparse
// spatially-indexed one (kSparse + kSparse). This is what licenses the
// sparse representation: the spatial grid, the culled link rows, and the
// lazy measurement memo are an *indexing* of the same pair state, not an
// approximation — any divergence in any gain, PRR, topology draw, or
// delivery would cascade into different timings and therefore different
// report bytes. Mirrors test_mac_decide_golden.cpp (the MAC decision fast
// path's equivalent guarantee).
//
// metro_10k is excluded by design: it exists precisely because no dense
// reference can be materialized at 10^8 directed pairs (bench_metro gates
// its sparse peak RSS instead). Every other scenario — including the
// mobility family, whose DynamicShadowing channel exercises the sparse
// medium's watch lists and epoch refresh — runs here.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "stats/report.h"
#include "testbed/testbed.h"

namespace cmap::scenario {
namespace {

std::vector<std::string> golden_scenarios() {
  auto names = ScenarioRegistry::global().names();
  std::erase(names, "metro_10k");
  return names;
}

testbed::TestbedConfig sparse_variant(testbed::TestbedConfig cfg) {
  cfg.medium.link_state = phy::LinkStateMode::kSparse;
  cfg.measurement.store = testbed::MeasurementStore::kSparse;
  return cfg;
}

std::string run_report(const Scenario& s,
                       const testbed::TestbedConfig& cfg) {
  Sweep sweep;
  sweep.scenario = s.name;
  sweep.schemes = {testbed::Scheme::kCmap};
  sweep.topologies = 1;
  // Short sweeps keep the full-registry pass affordable; the mobility
  // family gets a longer window so the 500 ms channel epochs actually
  // advance and the sparse medium's watch-list refresh path runs.
  sweep.duration = s.defaults.dynamics.has_value() ? sim::milliseconds(1600)
                                                   : sim::milliseconds(400);
  sweep.warmup = *sweep.duration / 4;
  const auto tb = testbed::TestbedCache::global().get(cfg);
  return SweepRunner(1).run(sweep, *tb).to_json();
}

class SparseGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(SparseGolden, SweepReportIsByteIdenticalToDense) {
  const Scenario& s = ScenarioRegistry::global().at(GetParam());
  // Scenarios without a prescribed building (driver-supplied testbed) run
  // on the canonical 50-node one, same as the driver's default.
  const testbed::TestbedConfig dense_cfg =
      s.testbed ? *s.testbed : testbed::TestbedConfig{};
  const std::string dense = run_report(s, dense_cfg);
  const std::string sparse = run_report(s, sparse_variant(dense_cfg));
  EXPECT_FALSE(dense.empty());
  EXPECT_EQ(dense, sparse);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, SparseGolden, ::testing::ValuesIn(golden_scenarios()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace_if(
          name.begin(), name.end(),
          [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); },
          '_');
      return name;
    });

}  // namespace
}  // namespace cmap::scenario
