// Golden-report exactness of intra-run parallel execution: every builtin
// scenario swept under the PDES engine at 2 and 4 partitions must produce
// a SweepReport BYTE-identical to the serial single-queue oracle. This is
// the contract that licenses the partitioned executive (docs/pdes.md):
// spatial partitioning, conservative closure windows, mailbox routing, and
// the shared-seq merged-group interleave are an *execution strategy* over
// the same totally-ordered event program, not an approximation — any
// divergence in any delivery order would cascade into different MAC
// decisions and therefore different report bytes. Mirrors
// test_sparse_golden.cpp (the link-state stores' equivalent guarantee).
//
// metro_10k is excluded for runtime only (bench_pdes covers the scaling
// story); every other scenario — including the mobility family, whose
// global mobility ticks exercise the barrier + lookahead-refresh path —
// runs here. Worker threads are exercised in the 4-partition variant;
// thread count never affects results.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "stats/report.h"
#include "testbed/testbed.h"

namespace cmap::scenario {
namespace {

std::vector<std::string> golden_scenarios() {
  auto names = ScenarioRegistry::global().names();
  std::erase(names, "metro_10k");
  return names;
}

std::string run_report(const Scenario& s, int partitions, int threads) {
  Sweep sweep;
  sweep.scenario = s.name;
  sweep.schemes = {testbed::Scheme::kCmap};
  sweep.topologies = 1;
  // Short sweeps keep the full-registry pass affordable; the mobility
  // family gets a longer window so mobility ticks actually fire and the
  // engine's global-barrier + delay-refresh path runs.
  sweep.duration = s.defaults.dynamics.has_value() ? sim::milliseconds(1600)
                                                   : sim::milliseconds(400);
  sweep.warmup = *sweep.duration / 4;
  if (partitions > 1) {
    // The variant label stays empty so the report rows are labeled
    // identically to the serial run's — only the execution strategy may
    // differ between the two reports, never their shape.
    sweep.variants = {ConfigVariant{"", [partitions, threads](
                                            testbed::RunConfig& rc) {
                        rc.pdes.partitions = partitions;
                        rc.pdes.threads = threads;
                      }}};
  }
  const testbed::TestbedConfig cfg =
      s.testbed ? *s.testbed : testbed::TestbedConfig{};
  const auto tb = testbed::TestbedCache::global().get(cfg);
  return SweepRunner(1).run(sweep, *tb).to_json();
}

class PdesGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(PdesGolden, SweepReportIsByteIdenticalToSerial) {
  const Scenario& s = ScenarioRegistry::global().at(GetParam());
  const std::string serial = run_report(s, 1, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_report(s, 2, 1));
  EXPECT_EQ(serial, run_report(s, 4, 2));
}

INSTANTIATE_TEST_SUITE_P(
    Registry, PdesGolden, ::testing::ValuesIn(golden_scenarios()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace_if(
          name.begin(), name.end(),
          [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); },
          '_');
      return name;
    });

}  // namespace
}  // namespace cmap::scenario
