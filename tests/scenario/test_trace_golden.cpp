// Golden-report non-interference of the trace subsystem: a sweep run with
// full tracing enabled must produce a report BYTE-identical to the same
// sweep untraced. Any divergence would mean recording perturbed the
// simulation (drew randomness, scheduled an event, changed iteration
// order) — the invariant that makes tracing safe to leave on anywhere.
// Covers a static figure sweep and a mobile (dynamics-on) sweep so the
// kMove/kChannelEpoch instrumentation is exercised too.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "scenario/sweep.h"
#include "stats/report.h"
#include "testbed/testbed.h"
#include "trace/reader.h"

namespace cmap::scenario {
namespace {

Sweep make_sweep(const char* scenario) {
  Sweep sweep;
  sweep.scenario = scenario;
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCmap};
  sweep.topologies = 2;
  sweep.duration = sim::seconds(1);
  sweep.warmup = sim::milliseconds(250);
  return sweep;
}

class TraceGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(TraceGolden, TracedSweepReportIsByteIdentical) {
  const testbed::Testbed tb{testbed::TestbedConfig{}};

  const std::string untraced =
      SweepRunner(1).run(make_sweep(GetParam()), tb).to_json();

  const std::string dir =
      ::testing::TempDir() + "trace_golden_" + GetParam();
  std::filesystem::create_directories(dir);
  Sweep traced_sweep = make_sweep(GetParam());
  traced_sweep.trace = trace::TraceConfig{};
  traced_sweep.trace->path = dir;
  const std::string traced = SweepRunner(1).run(traced_sweep, tb).to_json();

  EXPECT_FALSE(untraced.empty());
  EXPECT_EQ(untraced, traced);

  // Every cell wrote a decodable trace with its deterministic name.
  const auto specs = SweepRunner::expand(traced_sweep, 2);
  EXPECT_FALSE(specs.empty());
  for (const auto& spec : specs) {
    const std::string path = trace_run_path(dir, GetParam(), spec);
    trace::TraceReader reader(path);
    EXPECT_TRUE(reader.ok()) << path << ": " << reader.error();
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Sweeps, TraceGolden,
                         ::testing::Values("fig12_exposed",
                                           "mobile_floor_25"));

}  // namespace
}  // namespace cmap::scenario
