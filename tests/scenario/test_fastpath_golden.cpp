// Golden-report exactness of the PHY fast path: a figure-bench sweep run
// with the gain cache + reachability culling enabled must produce a report
// that is BYTE-identical to the same sweep over the brute-force medium
// (per-receiver propagation queries, full fan-out). This is what licenses
// the optimization: it is a cache plus a cull of deliveries that were
// already below the delivery floor, not an approximation.
#include <gtest/gtest.h>

#include <string>

#include "scenario/sweep.h"
#include "stats/report.h"
#include "testbed/testbed.h"

namespace cmap::scenario {
namespace {

testbed::Testbed make_testbed(bool fast_path, double fading_sigma_db) {
  testbed::TestbedConfig cfg;
  cfg.medium.enable_gain_cache = fast_path;
  cfg.medium.enable_culling = fast_path;
  cfg.medium.fading_sigma_db = fading_sigma_db;
  // With fading enabled, identity holds unless a fade beats the guard
  // band; at the default 6 sigma that is ~1e-9 per culled delivery, which
  // over a whole sweep leaves a designed-in flake window. 8 sigma (~6e-16)
  // makes this test deterministic for all practical purposes while still
  // exercising the fading path; the fading-off case below pins the
  // unconditional guarantee.
  cfg.medium.cull_guard_sigmas = 8.0;
  return testbed::Testbed(cfg);
}

std::string sweep_json(const testbed::Testbed& tb, const char* scenario) {
  Sweep sweep;
  sweep.scenario = scenario;
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCmap};
  sweep.topologies = 3;
  sweep.duration = sim::seconds(2);
  sweep.warmup = sim::milliseconds(500);
  const stats::SweepReport report = SweepRunner(1).run(sweep, tb);
  EXPECT_FALSE(report.empty()) << scenario;
  return report.to_json();
}

class FastPathGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(FastPathGolden, FigureBenchReportIsByteIdenticalWithFading) {
  const testbed::Testbed fast = make_testbed(true, 2.0);
  const testbed::Testbed slow = make_testbed(false, 2.0);
  const std::string fast_json = sweep_json(fast, GetParam());
  const std::string slow_json = sweep_json(slow, GetParam());
  EXPECT_EQ(fast_json, slow_json);
}

TEST_P(FastPathGolden, FigureBenchReportIsByteIdenticalWithoutFading) {
  // fading_sigma_db == 0: culling is exact, identity is unconditional.
  const testbed::Testbed fast = make_testbed(true, 0.0);
  const testbed::Testbed slow = make_testbed(false, 0.0);
  const std::string fast_json = sweep_json(fast, GetParam());
  const std::string slow_json = sweep_json(slow, GetParam());
  EXPECT_EQ(fast_json, slow_json);
}

INSTANTIATE_TEST_SUITE_P(FigureBenches, FastPathGolden,
                         ::testing::Values("fig12_exposed", "fig15_hidden"));

}  // namespace
}  // namespace cmap::scenario
