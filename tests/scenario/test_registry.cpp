#include "scenario/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace cmap::scenario {
namespace {

const testbed::Testbed& shared_testbed() {
  static testbed::Testbed tb{testbed::TestbedConfig{}};
  return tb;
}

TEST(Registry, GlobalHasEveryBuiltin) {
  const auto& reg = ScenarioRegistry::global();
  for (const char* name :
       {"fig12_exposed", "fig13_inrange", "fig15_hidden", "single_link",
        "ap_wlan", "ap_wlan_3", "ap_wlan_4", "ap_wlan_5", "ap_wlan_6",
        "mesh_dissemination", "interferer_triple", "disjoint_flows_2",
        "disjoint_flows_7", "dest_queue_ablation", "chain", "mixed_floor",
        "dense_grid_10", "dense_grid_25", "dense_grid_50", "testbed_100",
        "flows_50", "metro_10k", "mobile_floor_25", "mobile_floor_50",
        "mobile_chain", "churn_25"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
}

TEST(Registry, NamesAreSortedAndMatchSize) {
  const auto& reg = ScenarioRegistry::global();
  const auto names = reg.names();
  EXPECT_EQ(names.size(), reg.size());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, FindReturnsNullForUnknown) {
  EXPECT_EQ(ScenarioRegistry::global().find("no_such_scenario"), nullptr);
}

TEST(Registry, AddRegistersAndReplacesByName) {
  ScenarioRegistry reg;
  Scenario s;
  s.name = "custom";
  s.description = "first";
  s.topology = [](const testbed::Testbed&, int, sim::Rng&) {
    return std::vector<TopologyInstance>{};
  };
  reg.add(s);
  ASSERT_NE(reg.find("custom"), nullptr);
  EXPECT_EQ(reg.at("custom").description, "first");

  s.description = "second";
  reg.add(s);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.at("custom").description, "second");
}

TEST(Registry, TopologyDrawsAreDeterministic) {
  const auto& scenario = ScenarioRegistry::global().at("fig12_exposed");
  sim::Rng rng_a(42), rng_b(42);
  const auto a = scenario.topology(shared_testbed(), 4, rng_a);
  const auto b = scenario.topology(shared_testbed(), 4, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
  }
}

TEST(Registry, PairScenariosDrawTwoFlowInstances) {
  for (const char* name : {"fig12_exposed", "fig13_inrange", "fig15_hidden"}) {
    const auto& scenario = ScenarioRegistry::global().at(name);
    sim::Rng rng(7);
    const auto draws = scenario.topology(shared_testbed(), 3, rng);
    ASSERT_FALSE(draws.empty()) << name;
    for (const auto& inst : draws) {
      EXPECT_EQ(inst.flows.size(), 2u) << name;
      EXPECT_FALSE(inst.label.empty()) << name;
    }
  }
}

TEST(Registry, NewScenariosDrawWellFormedInstances) {
  sim::Rng rng(11);
  const auto chains = ScenarioRegistry::global().at("chain").topology(
      shared_testbed(), 2, rng);
  for (const auto& inst : chains) {
    ASSERT_EQ(inst.flows.size(), 3u);
    // All six chain endpoints are distinct.
    std::set<phy::NodeId> nodes;
    for (const auto& f : inst.flows) {
      nodes.insert(f.src);
      nodes.insert(f.dst);
    }
    EXPECT_EQ(nodes.size(), 6u);
  }

  sim::Rng rng2(11);
  const auto mixed = ScenarioRegistry::global().at("mixed_floor").topology(
      shared_testbed(), 2, rng2);
  for (const auto& inst : mixed) {
    ASSERT_EQ(inst.flows.size(), 4u);
    std::set<phy::NodeId> nodes;
    for (const auto& f : inst.flows) {
      nodes.insert(f.src);
      nodes.insert(f.dst);
    }
    EXPECT_EQ(nodes.size(), 8u);  // exposed and hidden pairs are disjoint
  }
}

TEST(Registry, DenseGridScalesWithDensityAndAvoidsSelfFlows) {
  const auto& tb = shared_testbed();  // 50 nodes
  std::size_t prev_flows = 0;
  for (int pct : {10, 25, 50}) {
    const auto& scenario = ScenarioRegistry::global().at(
        "dense_grid_" + std::to_string(pct));
    sim::Rng rng(5);
    const auto draws = scenario.topology(tb, 2, rng);
    ASSERT_EQ(draws.size(), 2u);
    for (const auto& inst : draws) {
      EXPECT_EQ(inst.flows.size(),
                static_cast<std::size_t>(tb.size() * pct / 100));
      std::set<phy::NodeId> senders;
      for (const auto& f : inst.flows) {
        EXPECT_NE(f.src, f.dst);
        senders.insert(f.src);
      }
      EXPECT_EQ(senders.size(), inst.flows.size());  // senders are distinct
    }
    EXPECT_GT(draws[0].flows.size(), prev_flows);
    prev_flows = draws[0].flows.size();
  }
}

}  // namespace
}  // namespace cmap::scenario
