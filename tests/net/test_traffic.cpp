#include "net/traffic.h"

#include <gtest/gtest.h>

#include <memory>

#include "mac80211/dcf.h"
#include "phy/medium.h"
#include "phy/radio.h"

namespace cmap::net {
namespace {

// Minimal two-node world for source/sink plumbing.
struct TrafficWorld {
  TrafficWorld()
      : model(std::make_shared<phy::ThresholdErrorModel>(3.0)),
        medium(sim, std::make_shared<phy::FriisPropagation>(), no_fading(),
               sim::Rng(3)) {}

  static phy::MediumConfig no_fading() {
    phy::MediumConfig m;
    m.fading_sigma_db = 0.0;
    return m;
  }

  mac80211::DcfMac& add(phy::NodeId id, phy::Position pos) {
    radios.push_back(std::make_unique<phy::Radio>(
        sim, medium, id, pos, phy::RadioConfig{}, model, sim::Rng(40 + id)));
    macs.push_back(std::make_unique<mac80211::DcfMac>(
        sim, *radios.back(), mac80211::DcfConfig{}, sim::Rng(80 + id)));
    return *macs.back();
  }

  std::shared_ptr<const phy::ErrorModel> model;
  sim::Simulator sim;
  phy::Medium medium;
  std::vector<std::unique_ptr<phy::Radio>> radios;
  std::vector<std::unique_ptr<mac80211::DcfMac>> macs;
};

TEST(SaturatedSource, KeepsMacBacklogged) {
  TrafficWorld w;
  auto& tx = w.add(1, {0, 0});
  auto& rx = w.add(2, {50, 0});
  PacketSink sink(rx, w.sim);
  sink.set_window(0, sim::seconds(1));
  SaturatedSource src(tx, 1, 2);
  w.sim.run_until(sim::seconds(1));
  EXPECT_GT(tx.queue_depth(), 0u);       // still backlogged at the end
  EXPECT_GT(sink.unique_packets(), 400u);
  EXPECT_GT(src.offered(), sink.unique_packets());
}

TEST(BatchSource, StopsAfterBatch) {
  TrafficWorld w;
  auto& tx = w.add(1, {0, 0});
  auto& rx = w.add(2, {50, 0});
  PacketSink sink(rx, w.sim);
  sink.set_window(0, sim::seconds(5));
  BatchSource src(tx, 1, 2, /*count=*/100);
  w.sim.run_until(sim::seconds(5));
  EXPECT_EQ(src.remaining(), 0u);
  EXPECT_EQ(sink.unique_packets(), 100u);
  EXPECT_EQ(tx.queue_depth(), 0u);
}

TEST(PacketSink, SeparatesDuplicates) {
  TrafficWorld w;
  auto& rx = w.add(1, {0, 0});
  PacketSink sink(rx, w.sim);
  sink.set_window(0, sim::seconds(1));
  // Drive the rx handler directly through the MAC's interface.
  // (Duplicates are flagged by the MAC; emulate both cases.)
  mac::Packet p;
  p.bytes = 1400;
  // Not reachable via public API without a peer; instead verify the meter
  // accounting path with a real transfer in the other tests and the
  // duplicate counter via CMAP's e2e test. Here: window filtering only.
  EXPECT_EQ(sink.unique_packets(), 0u);
  EXPECT_EQ(sink.meter().packets(), 0u);
  (void)p;
}

TEST(PacketSink, ForwardsPackets) {
  TrafficWorld w;
  auto& tx = w.add(1, {0, 0});
  auto& rx = w.add(2, {50, 0});
  PacketSink sink(rx, w.sim);
  sink.set_window(0, sim::seconds(1));
  int forwarded = 0;
  sink.set_forward([&](const mac::Packet&) { ++forwarded; });
  BatchSource src(tx, 1, 2, 10);
  w.sim.run_until(sim::seconds(1));
  EXPECT_EQ(forwarded, 10);
}

TEST(SaturatedSource, DistinctPacketIds) {
  TrafficWorld w;
  auto& tx = w.add(1, {0, 0});
  auto& rx = w.add(2, {50, 0});
  std::set<std::uint64_t> ids;
  rx.set_rx_handler([&](const mac::Packet& p, const mac::Mac::RxInfo& info) {
    if (!info.duplicate) {
      EXPECT_TRUE(ids.insert(p.id).second);
    }
  });
  SaturatedSource src(tx, 1, 2);
  w.sim.run_until(sim::milliseconds(500));
  EXPECT_GT(ids.size(), 100u);
}

}  // namespace
}  // namespace cmap::net
