// Unit tests for the metrics subsystem (src/metrics/metrics.h): registry
// accumulation semantics (sum vs high-water max), hook masking (a hook
// bound to a disabled domain must never reach the registry), the fixed
// catalog order and domain filtering of counters_json, the counter-section
// merge of aggregate_counters, and the end-to-end World wiring: a metered
// run produces a populated snapshot, writes it where asked, and an
// unmetered run pays no registry at all.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "testbed/experiment.h"
#include "testbed/testbed.h"

namespace cmap::metrics {
namespace {

TEST(Registry, SumAndMaxSemantics) {
  Registry reg;
  reg.add(Counter::kPhyTransmits, 3);
  reg.add(Counter::kPhyTransmits, 4);
  EXPECT_EQ(reg.value(Counter::kPhyTransmits), 7u);

  reg.raise(Counter::kMacDeferOccupancyHw, 5);
  reg.raise(Counter::kMacDeferOccupancyHw, 2);  // lower: no effect
  reg.raise(Counter::kMacDeferOccupancyHw, 9);
  EXPECT_EQ(reg.value(Counter::kMacDeferOccupancyHw), 9u);
}

TEST(MetricsHook, DisabledDomainNeverReachesRegistry) {
  Registry reg(bit(Domain::kPhy));  // only PHY enabled
  MetricsHook phy, mac, unbound;
  phy.bind(&reg, Domain::kPhy);
  mac.bind(&reg, Domain::kMac);
  EXPECT_TRUE(phy.on());
  EXPECT_FALSE(mac.on());
  EXPECT_FALSE(unbound.on());

  phy.inc(Counter::kPhyTransmits);
  mac.inc(Counter::kMacSendDecisions);      // masked: dropped
  unbound.inc(Counter::kMacSendDecisions);  // no registry: dropped
  mac.raise(Counter::kMacDeferOccupancyHw, 42);

  EXPECT_EQ(reg.value(Counter::kPhyTransmits), 1u);
  EXPECT_EQ(reg.value(Counter::kMacSendDecisions), 0u);
  EXPECT_EQ(reg.value(Counter::kMacDeferOccupancyHw), 0u);
}

TEST(CounterCatalog, NamesKindsAndDomainsAreConsistent) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    ASSERT_NE(counter_name(c), nullptr);
    EXPECT_GT(std::string(counter_name(c)).size(), 0u);
  }
  EXPECT_EQ(counter_kind(Counter::kPhyTransmits), Kind::kSum);
  EXPECT_EQ(counter_kind(Counter::kMacDeferOccupancyHw), Kind::kMax);
  EXPECT_EQ(counter_kind(Counter::kMacOngoingActiveHw), Kind::kMax);
  EXPECT_EQ(counter_domain(Counter::kPhyGainCacheHits), Domain::kPhy);
  EXPECT_EQ(counter_domain(Counter::kMacDeferProbes), Domain::kMac);
  EXPECT_EQ(counter_domain(Counter::kDynMoves), Domain::kDynamics);
}

TEST(Snapshot, CountersJsonIsFixedOrderAndDomainFiltered) {
  MetricsSnapshot snap;
  snap.domains = kAllDomains;
  snap.counters[static_cast<std::size_t>(Counter::kPhyTransmits)] = 12;
  snap.counters[static_cast<std::size_t>(Counter::kMacSendDecisions)] = 7;
  const std::string all = snap.counters_json();
  EXPECT_NE(all.find("\"phy.transmits\":12"), std::string::npos);
  EXPECT_NE(all.find("\"mac.send_decisions\":7"), std::string::npos);
  // Catalog order: phy before mac.
  EXPECT_LT(all.find("phy.transmits"), all.find("mac.send_decisions"));

  snap.domains = bit(Domain::kMac);
  const std::string mac_only = snap.counters_json();
  EXPECT_EQ(mac_only.find("phy.transmits"), std::string::npos);
  EXPECT_NE(mac_only.find("mac.send_decisions"), std::string::npos);

  // Emission is a pure function of the snapshot: same bytes every call.
  EXPECT_EQ(snap.counters_json(), snap.counters_json());
}

TEST(Snapshot, ToJsonCarriesBothSections) {
  MetricsSnapshot snap;
  snap.domains = kAllDomains;
  snap.partitions = 4;
  snap.rounds = 17;
  snap.window_log2[20] = 3;
  PartitionExec pe;
  pe.partition = 2;
  pe.executed = 1234;
  snap.parts.push_back(pe);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"execution\":{"), std::string::npos);
  EXPECT_NE(json.find("\"partitions\":4"), std::string::npos);
  EXPECT_NE(json.find("\"rounds\":17"), std::string::npos);
  EXPECT_NE(json.find("\"executed\":1234"), std::string::npos);
}

TEST(Aggregate, SumsCountersAndKeepsMaxes) {
  MetricsSnapshot a, b;
  a.domains = b.domains = kAllDomains;
  a.counters[static_cast<std::size_t>(Counter::kPhyTransmits)] = 10;
  b.counters[static_cast<std::size_t>(Counter::kPhyTransmits)] = 5;
  a.counters[static_cast<std::size_t>(Counter::kMacDeferOccupancyHw)] = 3;
  b.counters[static_cast<std::size_t>(Counter::kMacDeferOccupancyHw)] = 8;
  const MetricsSnapshot merged = aggregate_counters({&a, &b});
  EXPECT_EQ(merged.counter(Counter::kPhyTransmits), 15u);
  EXPECT_EQ(merged.counter(Counter::kMacDeferOccupancyHw), 8u);

  const MetricsSnapshot empty = aggregate_counters({});
  EXPECT_EQ(empty.domains, 0u);
}

// ---- End-to-end World wiring ----

testbed::RunConfig metered_config(const scenario::Scenario& sc,
                                  const std::string& path) {
  testbed::RunConfig config = sc.defaults;
  config.scheme = testbed::Scheme::kCmap;
  config.duration = sim::milliseconds(400);
  config.warmup = sim::milliseconds(100);
  config.seed = 5;
  MetricsConfig mc;
  mc.path = path;
  config.metrics = mc;
  return config;
}

TEST(WorldMetrics, MeteredRunProducesPopulatedSnapshotAndFile) {
  const scenario::Scenario& sc =
      scenario::ScenarioRegistry::global().at("fig12_exposed");
  const testbed::TestbedConfig tb_cfg =
      sc.testbed ? *sc.testbed : testbed::TestbedConfig{};
  const auto tb = testbed::TestbedCache::global().get(tb_cfg);
  sim::Rng topo_rng(3);
  const auto topologies = sc.topology(*tb, 1, topo_rng);
  ASSERT_FALSE(topologies.empty());

  const std::string path = ::testing::TempDir() + "metrics_fig12.json";
  const auto result = testbed::run_flows(
      *tb, topologies.front().flows, metered_config(sc, path));

  ASSERT_NE(result.profile, nullptr);
  const MetricsSnapshot& snap = *result.profile;
  EXPECT_GT(snap.counter(Counter::kPhyTransmits), 0u);
  EXPECT_GT(snap.counter(Counter::kPhyDeliveries), 0u);
  EXPECT_GT(snap.counter(Counter::kMacSendDecisions), 0u);
  EXPECT_GT(snap.queue_depth_high_water, 0u);
  ASSERT_EQ(snap.parts.size(), 1u);  // serial run: one pseudo-partition
  EXPECT_GT(snap.parts[0].executed, 0u);

  // Defer-reason attribution can never exceed the decision count, and
  // rx outcomes can never exceed deliveries.
  EXPECT_LE(snap.counter(Counter::kMacDeferDstBusy) +
                snap.counter(Counter::kMacDeferConflictMap),
            snap.counter(Counter::kMacSendDecisions));
  EXPECT_LE(snap.counter(Counter::kPhyRxOk) +
                snap.counter(Counter::kPhyRxCorrupt),
            snap.counter(Counter::kPhyDeliveries));

  // The per-run snapshot file landed and holds the same counter section.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  EXPECT_NE(contents.find(snap.counters_json()), std::string::npos);
  std::remove(path.c_str());
}

TEST(WorldMetrics, UnmeteredRunHasNoProfile) {
  const scenario::Scenario& sc =
      scenario::ScenarioRegistry::global().at("fig12_exposed");
  const testbed::TestbedConfig tb_cfg =
      sc.testbed ? *sc.testbed : testbed::TestbedConfig{};
  const auto tb = testbed::TestbedCache::global().get(tb_cfg);
  sim::Rng topo_rng(3);
  const auto topologies = sc.topology(*tb, 1, topo_rng);
  testbed::RunConfig config = sc.defaults;
  config.scheme = testbed::Scheme::kCmap;
  config.duration = sim::milliseconds(300);
  config.seed = 5;
  const auto result =
      testbed::run_flows(*tb, topologies.front().flows, config);
  EXPECT_EQ(result.profile, nullptr);
}

TEST(SweepMetrics, RowsCarryProfilesAndReportAggregates) {
  scenario::Sweep sweep;
  sweep.scenario = "fig12_exposed";
  sweep.schemes = {testbed::Scheme::kCmap, testbed::Scheme::kCsma};
  sweep.topologies = 1;
  sweep.replicates = 2;
  sweep.duration = sim::milliseconds(300);
  sweep.warmup = sim::milliseconds(100);
  sweep.metrics = MetricsConfig{};  // in-memory only

  const scenario::Scenario& sc =
      scenario::ScenarioRegistry::global().at(sweep.scenario);
  const testbed::TestbedConfig tb_cfg =
      sc.testbed ? *sc.testbed : testbed::TestbedConfig{};
  const auto tb = testbed::TestbedCache::global().get(tb_cfg);
  const auto report = scenario::SweepRunner(1).run(sweep, *tb);
  ASSERT_FALSE(report.empty());
  for (const auto& row : report.rows()) {
    ASSERT_NE(row.profile, nullptr) << row.scheme;
  }

  const MetricsSnapshot total = report.aggregate_metrics();
  EXPECT_GT(total.counter(Counter::kPhyTransmits), 0u);

  const std::string json = report.metrics_json();
  EXPECT_NE(json.find("\"total\":{"), std::string::npos);
  EXPECT_NE(json.find("phy.transmits"), std::string::npos);

  // to_json stays byte-identical with metrics on or off: profiles are
  // deliberately excluded from the report contract.
  scenario::Sweep plain = sweep;
  plain.metrics.reset();
  EXPECT_EQ(report.to_json(),
            scenario::SweepRunner(1).run(plain, *tb).to_json());
}

}  // namespace
}  // namespace cmap::metrics
