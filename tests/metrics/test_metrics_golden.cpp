// The metrics determinism contract (docs/metrics.md): the deterministic
// counter section is a pure function of (config, seed) — byte-identical
// across SweepRunner worker-thread counts AND across PDES partition counts
// (1/2/4). Counters are commutative relaxed-atomic sums and maxes over
// events the simulation itself fully determines, so the execution strategy
// must not leak into them; anything that legitimately depends on it lives
// in the snapshot's execution section, which this test deliberately does
// not compare. Exercised on a static scenario (fig12_exposed) and a
// mobility scenario (mobile_floor_25, whose dynamics ticks drive the
// kDynamics counters and the PDES global-barrier path).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "stats/report.h"
#include "testbed/testbed.h"

namespace cmap::metrics {
namespace {

// One metered sweep; returns the per-run counter sections in row order
// plus the aggregated metrics_json (both must be invariant).
struct CounterBytes {
  std::vector<std::string> per_run;
  std::string aggregated;
};

CounterBytes run_counters(const std::string& scenario_name, int sweep_threads,
                          int partitions, int pdes_threads) {
  const scenario::Scenario& s =
      scenario::ScenarioRegistry::global().at(scenario_name);
  scenario::Sweep sweep;
  sweep.scenario = s.name;
  sweep.schemes = {testbed::Scheme::kCmap};
  sweep.topologies = 2;  // >1 cell so sweep threads genuinely interleave
  sweep.duration = s.defaults.dynamics.has_value() ? sim::milliseconds(1600)
                                                   : sim::milliseconds(400);
  sweep.warmup = *sweep.duration / 4;
  sweep.metrics = MetricsConfig{};  // in-memory only
  if (partitions > 1) {
    sweep.variants = {scenario::ConfigVariant{
        "", [partitions, pdes_threads](testbed::RunConfig& rc) {
          rc.pdes.partitions = partitions;
          rc.pdes.threads = pdes_threads;
        }}};
  }
  const testbed::TestbedConfig cfg =
      s.testbed ? *s.testbed : testbed::TestbedConfig{};
  const auto tb = testbed::TestbedCache::global().get(cfg);
  const auto report = scenario::SweepRunner(sweep_threads).run(sweep, *tb);

  CounterBytes out;
  for (const auto& row : report.rows()) {
    EXPECT_NE(row.profile, nullptr);
    if (row.profile) out.per_run.push_back(row.profile->counters_json());
  }
  out.aggregated = report.metrics_json();
  return out;
}

class MetricsGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(MetricsGolden, CounterSectionIsByteIdenticalAcrossThreadCounts) {
  const CounterBytes one = run_counters(GetParam(), 1, 1, 1);
  ASSERT_FALSE(one.per_run.empty());
  for (const auto& json : one.per_run) {
    EXPECT_FALSE(json.empty());
    EXPECT_NE(json.find("phy.transmits"), std::string::npos);
  }
  const CounterBytes four = run_counters(GetParam(), 4, 1, 1);
  EXPECT_EQ(one.per_run, four.per_run);
  EXPECT_EQ(one.aggregated, four.aggregated);
}

TEST_P(MetricsGolden, CounterSectionIsByteIdenticalAcrossPartitionCounts) {
  const CounterBytes serial = run_counters(GetParam(), 1, 1, 1);
  ASSERT_FALSE(serial.per_run.empty());
  const CounterBytes p2 = run_counters(GetParam(), 1, 2, 1);
  const CounterBytes p4 = run_counters(GetParam(), 1, 4, 2);
  EXPECT_EQ(serial.per_run, p2.per_run);
  EXPECT_EQ(serial.per_run, p4.per_run);
  EXPECT_EQ(serial.aggregated, p2.aggregated);
  EXPECT_EQ(serial.aggregated, p4.aggregated);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, MetricsGolden,
                         ::testing::Values("fig12_exposed", "mobile_floor_25"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace cmap::metrics
