#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmap::sim {
namespace {

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator s;
  std::vector<Time> seen;
  s.at(10, [&] { seen.push_back(s.now()); });
  s.in(25, [&] { seen.push_back(s.now()); });  // in() from t=0
  s.run();
  EXPECT_EQ(seen, (std::vector<Time>{10, 25}));
}

TEST(Simulator, InSchedulesRelativeToCurrentEvent) {
  Simulator s;
  Time fired = -1;
  s.at(100, [&] { s.in(50, [&] { fired = s.now(); }); });
  s.run();
  EXPECT_EQ(fired, 150);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator s;
  int count = 0;
  s.at(10, [&] { ++count; });
  s.at(20, [&] { ++count; });
  s.at(21, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
}

TEST(Simulator, RunUntilLeavesFutureEventsRunnable) {
  Simulator s;
  int count = 0;
  s.at(30, [&] { ++count; });
  s.run_until(10);
  EXPECT_EQ(count, 0);
  s.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int count = 0;
  s.at(1, [&] {
    ++count;
    s.stop();
  });
  s.at(2, [&] { ++count; });
  s.run();
  EXPECT_EQ(count, 1);
  s.run();  // resumes after stop
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsExecutedCounts) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, CancelledEventDoesNotAdvanceClockPastIt) {
  Simulator s;
  EventId id = s.at(1000, [] {});
  id.cancel();
  s.at(10, [] {});
  s.run();
  EXPECT_EQ(s.now(), 10);
}

}  // namespace
}  // namespace cmap::sim
