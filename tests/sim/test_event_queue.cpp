#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmap::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (q.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeEventsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (q.run_one()) {
  }
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(id.pending());
  id.cancel();
  EXPECT_FALSE(id.pending());
  while (q.run_one()) {
  }
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterRun) {
  EventQueue q;
  EventId id = q.schedule(1, [] {});
  while (q.run_one()) {
  }
  EXPECT_FALSE(id.pending());
  id.cancel();  // no-op, must not crash
  EventId empty;
  empty.cancel();  // default-constructed id, must not crash
  EXPECT_FALSE(empty.pending());
}

TEST(EventQueue, PendingFlipsAfterExecution) {
  EventQueue q;
  EventId id = q.schedule(1, [] {});
  EXPECT_TRUE(id.pending());
  q.run_one();
  EXPECT_FALSE(id.pending());
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<Time> times;
  q.schedule(10, [&] {
    times.push_back(q.current_time());
    q.schedule(20, [&] { times.push_back(q.current_time()); });
  });
  while (q.run_one()) {
  }
  EXPECT_EQ(times, (std::vector<Time>{10, 20}));
}

TEST(EventQueue, NextTimeReflectsEarliestPending) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeForever);
  EventId a = q.schedule(50, [] {});
  q.schedule(70, [] {});
  EXPECT_EQ(q.next_time(), 50);
  a.cancel();
  EXPECT_EQ(q.next_time(), 70);
}

TEST(EventQueue, EmptySkipsCancelledEvents) {
  EventQueue q;
  EventId a = q.schedule(5, [] {});
  a.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ExecutedCounterCountsOnlyRunEvents) {
  EventQueue q;
  EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  a.cancel();
  while (q.run_one()) {
  }
  EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueDeathTest, SchedulingIntoThePastAborts) {
  EventQueue q;
  q.schedule(100, [&q] {
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
  });
  while (q.run_one()) {
  }
}

}  // namespace
}  // namespace cmap::sim
