#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmap::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (q.run_one()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeEventsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (q.run_one()) {
  }
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(id.pending());
  id.cancel();
  EXPECT_FALSE(id.pending());
  while (q.run_one()) {
  }
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterRun) {
  EventQueue q;
  EventId id = q.schedule(1, [] {});
  while (q.run_one()) {
  }
  EXPECT_FALSE(id.pending());
  id.cancel();  // no-op, must not crash
  EventId empty;
  empty.cancel();  // default-constructed id, must not crash
  EXPECT_FALSE(empty.pending());
}

TEST(EventQueue, PendingFlipsAfterExecution) {
  EventQueue q;
  EventId id = q.schedule(1, [] {});
  EXPECT_TRUE(id.pending());
  q.run_one();
  EXPECT_FALSE(id.pending());
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<Time> times;
  q.schedule(10, [&] {
    times.push_back(q.current_time());
    q.schedule(20, [&] { times.push_back(q.current_time()); });
  });
  while (q.run_one()) {
  }
  EXPECT_EQ(times, (std::vector<Time>{10, 20}));
}

TEST(EventQueue, NextTimeReflectsEarliestPending) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeForever);
  EventId a = q.schedule(50, [] {});
  q.schedule(70, [] {});
  EXPECT_EQ(q.next_time(), 50);
  a.cancel();
  EXPECT_EQ(q.next_time(), 70);
}

TEST(EventQueue, EmptySkipsCancelledEvents) {
  EventQueue q;
  EventId a = q.schedule(5, [] {});
  a.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ExecutedCounterCountsOnlyRunEvents) {
  EventQueue q;
  EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  a.cancel();
  while (q.run_one()) {
  }
  EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueDeathTest, SchedulingIntoThePastAborts) {
  EventQueue q;
  q.schedule(100, [&q] {
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
  });
  while (q.run_one()) {
  }
}

// A callable that counts how many times it is copied: dispatch must move
// the entry out of the heap, not deep-copy the std::function per event.
struct CopyCounter {
  int* copies;
  explicit CopyCounter(int* c) : copies(c) {}
  CopyCounter(const CopyCounter& o) : copies(o.copies) { ++*copies; }
  CopyCounter(CopyCounter&&) = default;
  CopyCounter& operator=(const CopyCounter&) = delete;
  CopyCounter& operator=(CopyCounter&&) = delete;
  void operator()() const {}
};

TEST(EventQueue, DispatchMovesTheCallableInsteadOfCopying) {
  EventQueue q;
  int copies = 0;
  q.schedule(1, CopyCounter(&copies));
  const int after_schedule = copies;  // wrapping into std::function may copy
  while (q.run_one()) {
  }
  EXPECT_EQ(copies, after_schedule);
}

TEST(EventQueue, CompactionBoundsCancelledEntries) {
  // Defer-TTL churn shape: schedule far-future events and cancel them
  // before they reach the head. Without compaction the heap retains every
  // cancelled entry; with it, live + dead stays within a constant factor
  // of the live count.
  EventQueue q;
  std::vector<EventId> pending;
  for (int i = 0; i < 100000; ++i) {
    pending.push_back(q.schedule(1000000 + i, [] {}));
    if (pending.size() > 16) {
      pending.front().cancel();
      pending.erase(pending.begin());
    }
  }
  // 16 live entries; the watermark doubling rule admits at most
  // max(2 * live-after-last-scan, 64) total before the next scan fires.
  EXPECT_LE(q.heap_size(), 64u);
}

TEST(EventQueue, AdvanceToNeverMovesBackwards) {
  EventQueue q;
  q.schedule(100, [] {});
  while (q.run_one()) {
  }
  EXPECT_EQ(q.current_time(), 100);
  q.advance_to(50);  // stale horizon: clock must hold
  EXPECT_EQ(q.current_time(), 100);
  q.advance_to(200);
  EXPECT_EQ(q.current_time(), 200);
}

TEST(EventQueueDeathTest, SchedulePastAdvancedClockAborts) {
  EventQueue q;
  q.advance_to(500);
  EXPECT_DEATH(q.schedule(499, [] {}), "past");
}

TEST(EventQueue, RankClassesOrderSameTickEvents) {
  EventQueue q;
  std::vector<int> order;
  // Insertion order deliberately scrambled: local first, then deliveries
  // (in descending key), then a global event, all at t=10.
  q.schedule(10, [&] { order.push_back(4); });  // cls 2 FIFO #1
  q.schedule_ranked(10, delivery_rank(7, 2), [&] { order.push_back(7); });
  q.schedule_ranked(10, delivery_rank(7, 1), [&] { order.push_back(6); });
  q.schedule_ranked(10, delivery_rank(3, 9), [&] { order.push_back(5); });
  q.schedule_ranked(10, kGlobalRank, [&] { order.push_back(1); });
  q.schedule(10, [&] { order.push_back(8); });  // inserted after deliveries,
                                                // still runs before them
  q.schedule_ranked(10, kGlobalRank, [&] { order.push_back(2); });
  q.schedule(10, [&] { order.push_back(9); });
  while (q.run_one()) {
  }
  // global (FIFO) < local (FIFO) < delivery (by frame, then receiver).
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 8, 9, 5, 6, 7}));
}

TEST(EventQueue, SharedSeqSourceInterleavesTwoQueuesLikeOne) {
  // Two queues drawing from one counter, popped by smallest next_key():
  // same-(time, rank) events must come out in global insertion order, as
  // one serial queue would pop them.
  std::atomic<std::uint64_t> seq{0};
  EventQueue a, b;
  a.set_seq_source(&seq);
  b.set_seq_source(&seq);
  std::vector<int> order;
  a.schedule(5, [&] { order.push_back(1); });
  b.schedule(5, [&] { order.push_back(2); });
  a.schedule(5, [&] { order.push_back(3); });
  b.schedule(5, [&] { order.push_back(4); });
  while (!a.empty() || !b.empty()) {
    EventQueue& next = b.next_key() < a.next_key() ? b : a;
    next.run_one();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace cmap::sim
