// The shared-index parallel loop must execute every index exactly once for
// any worker count, propagate the first exception, and degrade to an
// inline loop for <= 1 effective worker.
#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cmap::sim {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    parallel_for(threads, hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads " << threads << " index " << i;
    }
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  bool called = false;
  parallel_for(4, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleWorkerRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  parallel_for(1, seen.size(),
               [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, WorkerCountCappedAtItemCount) {
  // 64 workers over 2 items must not deadlock or double-run items.
  std::vector<std::atomic<int>> hits(2);
  for (auto& h : hits) h.store(0);
  parallel_for(64, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  for (int threads : {1, 4}) {
    EXPECT_THROW(
        parallel_for(threads, 100,
                     [&](std::size_t i) {
                       if (i == 13) throw std::runtime_error("boom");
                     }),
        std::runtime_error)
        << "threads " << threads;
  }
}

}  // namespace
}  // namespace cmap::sim
