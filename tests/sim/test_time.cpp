#include "sim/time.h"

#include <gtest/gtest.h>

namespace cmap::sim {
namespace {

TEST(Time, UnitHelpersProduceNanoseconds) {
  EXPECT_EQ(microseconds(1), 1'000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(microseconds(2.5), 2'500);
}

TEST(Time, RoundTripConversions) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7)), 7.0);
}

TEST(Time, TransmissionTimeMatchesBitMath) {
  // 1 bit at 1 bit/s is one second.
  EXPECT_EQ(transmission_time(1, 1.0), kNsPerSec);
  // 11200 bits at 6 Mbit/s is 1866.67 us.
  const Time t = transmission_time(11200, 6e6);
  EXPECT_NEAR(to_microseconds(t), 1866.67, 0.01);
}

TEST(Time, TransmissionTimeRoundsUpToLastBit) {
  // 1 bit at 3 bit/s: 333333333.33 ns must round up, not truncate.
  EXPECT_EQ(transmission_time(1, 3.0), 333333334);
  EXPECT_GE(transmission_time(7, 3.0) * 3, 7 * kNsPerSec / 1);
}

TEST(Time, ForeverIsLargerThanAnyPracticalTime) {
  EXPECT_GT(kTimeForever, seconds(1e9));
}

}  // namespace
}  // namespace cmap::sim
