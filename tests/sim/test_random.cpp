#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace cmap::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, SubstreamsAreIndependentOfParentDraws) {
  Rng a(7);
  Rng sub_before = a.substream(1, 2);
  for (int i = 0; i < 50; ++i) a.next_u64();
  Rng sub_after = a.substream(1, 2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sub_before.next_u64(), sub_after.next_u64());
  }
}

TEST(Rng, SubstreamsWithDifferentTagsDiffer) {
  Rng a(7);
  Rng s1 = a.substream(1, 0);
  Rng s2 = a.substream(2, 0);
  Rng s3 = a.substream(1, 1);
  EXPECT_NE(s1.next_u64(), s2.next_u64());
  Rng s1b = a.substream(1, 0);
  s1b.next_u64();
  EXPECT_NE(s1b.next_u64(), s3.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng r(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(29);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(31);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, UniformIntIsUnbiasedAcrossBuckets) {
  Rng r(37);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_int(0, 9)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

}  // namespace
}  // namespace cmap::sim
