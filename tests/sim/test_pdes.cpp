#include "sim/pdes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace cmap::sim {
namespace {

// A two-partition engine with symmetric lookahead d between them.
std::vector<Time> two_part_delays(Time d) { return {0, d, d, 0}; }

TEST(PdesEngine, PositiveLookaheadKeepsPartitionsInSeparateGroups) {
  Simulator global;
  PdesEngine engine(global, 2, 1);
  engine.set_min_delays(two_part_delays(100));
  EXPECT_EQ(engine.groups(), 2);
  EXPECT_NE(engine.group_of(0), engine.group_of(1));
}

TEST(PdesEngine, ZeroLookaheadMergesIntoOneGroup) {
  Simulator global;
  PdesEngine engine(global, 3, 1);
  engine.set_min_delays(std::vector<Time>(9, 0));
  EXPECT_EQ(engine.groups(), 1);
  EXPECT_EQ(engine.group_of(0), engine.group_of(2));
}

TEST(PdesEngine, RunsPartitionEventsInTimeOrderAcrossPartitions) {
  Simulator global;
  PdesEngine engine(global, 2, 1);
  engine.set_min_delays(two_part_delays(10));
  std::vector<int> order;
  engine.partition_sim(0).at(30, [&] { order.push_back(3); });
  engine.partition_sim(1).at(10, [&] { order.push_back(1); });
  engine.partition_sim(0).at(20, [&] { order.push_back(2); });
  engine.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.partition_sim(0).now(), 100);
  EXPECT_EQ(engine.partition_sim(1).now(), 100);
  EXPECT_EQ(global.now(), 100);
}

TEST(PdesEngine, CrossGroupDeliveryArrivesThroughTheMailbox) {
  Simulator global;
  PdesEngine engine(global, 2, 1);
  engine.set_min_delays(two_part_delays(5));
  std::vector<std::pair<int, Time>> log;
  // Partition 0 transmits at t=10; the delivery lands on partition 1 at
  // t=15 (the lookahead), posted cross-group through the mailbox.
  engine.partition_sim(0).at(10, [&] {
    log.emplace_back(0, engine.partition_sim(0).now());
    engine.schedule_delivery(0, 1, 15, /*frame_id=*/1, /*receiver=*/9, [&] {
      log.emplace_back(1, engine.partition_sim(1).now());
    });
  });
  engine.run_until(100);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], std::make_pair(0, Time{10}));
  EXPECT_EQ(log[1], std::make_pair(1, Time{15}));
  EXPECT_GE(engine.messages(), 1u);
}

TEST(PdesEngine, ReflectedDeliveryChainsStaySound) {
  // Ping-pong between the partitions at exactly the lookahead spacing: the
  // regression shape for the closure windows — partition 1 starts empty,
  // so only the shortest-path closure (0 -> 1 -> 0 reflection) stops
  // partition 0 from running past the echoes of its own output.
  Simulator global;
  PdesEngine engine(global, 2, 1);
  engine.set_min_delays(two_part_delays(7));
  std::vector<Time> arrivals;
  std::function<void(int, int)> ping = [&](int from, int to) {
    const Time at = engine.partition_sim(from).now() + 7;
    engine.schedule_delivery(from, to, at,
                            /*frame_id=*/arrivals.size() + 1, /*receiver=*/0,
                            [&, from, to] {
                              arrivals.push_back(
                                  engine.partition_sim(to).now());
                              if (arrivals.size() < 8) ping(to, from);
                            });
  };
  // Partition 0 also keeps dense local traffic pending, tempting the
  // window to run far ahead of the unstarted ping-pong.
  for (Time t = 1; t <= 100; ++t) {
    engine.partition_sim(0).at(t, [] {});
  }
  engine.partition_sim(0).at(1, [&] { ping(0, 1); });
  engine.run_until(1000);
  ASSERT_EQ(arrivals.size(), 8u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], static_cast<Time>(1 + 7 * (i + 1)));
  }
}

TEST(PdesEngine, GlobalEventsRunAloneAndTriggerTopologyRefresh) {
  Simulator global;
  PdesEngine engine(global, 2, 1);
  engine.set_min_delays(two_part_delays(50));
  int refreshes = 0;
  engine.set_topology_refresh([&] { ++refreshes; });
  std::vector<int> order;
  global.at_ranked(20, kGlobalRank, [&] { order.push_back(0); });
  engine.partition_sim(0).at(10, [&] { order.push_back(1); });
  engine.partition_sim(1).at(30, [&] { order.push_back(2); });
  engine.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(refreshes, 1);
}

TEST(PdesEngine, MergedGroupInterleavesSameTickFifoAcrossQueues) {
  // Zero lookahead (propagation disabled): one merged group. Same-tick
  // default-rank events across different partition queues must run in
  // global insertion order — the shared seq counter's contract.
  Simulator global;
  PdesEngine engine(global, 2, 1);
  engine.set_min_delays(std::vector<Time>(4, 0));
  std::vector<int> order;
  engine.partition_sim(0).at(5, [&] { order.push_back(1); });
  engine.partition_sim(1).at(5, [&] { order.push_back(2); });
  engine.partition_sim(0).at(5, [&] { order.push_back(3); });
  engine.partition_sim(1).at(5, [&] { order.push_back(4); });
  engine.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(PdesEngine, MultiThreadedRunMatchesSingleThreaded) {
  // Same event program on 1 and 2 worker threads; the arrival sequence
  // must be identical (threads only change who executes a window).
  const auto run_program = [](int threads) {
    Simulator global;
    PdesEngine engine(global, 4, threads);
    std::vector<Time> d(16, 20);
    for (int p = 0; p < 4; ++p) d[static_cast<std::size_t>(p) * 4 +
                                  static_cast<std::size_t>(p)] = 0;
    engine.set_min_delays(d);
    std::vector<std::pair<int, Time>> log;
    std::mutex log_mutex;
    for (int p = 0; p < 4; ++p) {
      for (Time t = 10; t <= 200; t += 10 + p) {
        engine.partition_sim(p).at(t, [&, p] {
          const std::lock_guard<std::mutex> lock(log_mutex);
          log.emplace_back(p, engine.partition_sim(p).now());
        });
      }
    }
    engine.run_until(300);
    std::sort(log.begin(), log.end(),
              [](const auto& x, const auto& y) {
                return std::tie(x.second, x.first) < std::tie(y.second, y.first);
              });
    return log;
  };
  EXPECT_EQ(run_program(1), run_program(2));
}

}  // namespace
}  // namespace cmap::sim
