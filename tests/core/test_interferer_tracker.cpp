#include "core/interferer_tracker.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace cmap::core {
namespace {

constexpr phy::NodeId kSender = 1;
constexpr phy::NodeId kInterferer = 2;
constexpr phy::NodeId kOther = 3;
const std::vector<phy::WifiRate> kRate6 = {phy::WifiRate::k6Mbps};

InterfererTracker make_tracker() {
  return InterfererTracker(/*l_interf=*/0.5, /*min_samples=*/16,
                           /*halflife=*/sim::seconds(2));
}

void feed(InterfererTracker& t, int lost, int ok, sim::Time at = 1) {
  for (int i = 0; i < lost; ++i) {
    t.observe(kSender, phy::WifiRate::k6Mbps, {kInterferer}, kRate6, false,
              at);
  }
  for (int i = 0; i < ok; ++i) {
    t.observe(kSender, phy::WifiRate::k6Mbps, {kInterferer}, kRate6, true,
              at);
  }
}

TEST(InterfererTracker, HighConditionalLossCreatesEntry) {
  auto t = make_tracker();
  feed(t, /*lost=*/20, /*ok=*/4);
  const auto list = t.snapshot(1);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].source, kSender);
  EXPECT_EQ(list[0].interferer, kInterferer);
}

TEST(InterfererTracker, MildInterferenceDoesNotCreateEntry) {
  // Loss below l_interf = 0.5: concurrent transmission is net-beneficial
  // (§3.1: "linterf must be 0.5"), so no interferer entry.
  auto t = make_tracker();
  feed(t, /*lost=*/8, /*ok=*/16);
  EXPECT_TRUE(t.snapshot(1).empty());
}

TEST(InterfererTracker, InsufficientEvidenceCreatesNoEntry) {
  auto t = make_tracker();
  feed(t, /*lost=*/8, /*ok=*/0);  // 100% loss but only 8 samples (< 16)
  EXPECT_TRUE(t.snapshot(1).empty());
}

TEST(InterfererTracker, BaselineLossDoesNotBlameBystanders) {
  auto t = make_tracker();
  for (int i = 0; i < 40; ++i) {
    t.observe(kSender, phy::WifiRate::k6Mbps, {}, {}, false, 1);
  }
  EXPECT_TRUE(t.snapshot(1).empty());
  EXPECT_DOUBLE_EQ(t.baseline_loss_rate(kSender), 1.0);
}

TEST(InterfererTracker, LossRateQueries) {
  auto t = make_tracker();
  feed(t, 15, 5);
  EXPECT_NEAR(t.loss_rate(kSender, kInterferer), 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(t.loss_rate(kSender, kOther), -1.0);
  EXPECT_DOUBLE_EQ(t.baseline_loss_rate(kSender), -1.0);
}

TEST(InterfererTracker, MultipleConcurrentTransmittersAllCharged) {
  auto t = make_tracker();
  const std::vector<phy::NodeId> both = {kInterferer, kOther};
  const std::vector<phy::WifiRate> rates = {phy::WifiRate::k6Mbps,
                                            phy::WifiRate::k6Mbps};
  for (int i = 0; i < 20; ++i) {
    t.observe(kSender, phy::WifiRate::k6Mbps, both, rates, false, 1);
  }
  const auto list = t.snapshot(1);
  EXPECT_EQ(list.size(), 2u);
}

TEST(InterfererTracker, EvidenceDecaysAndEntryAgesOut) {
  auto t = make_tracker();
  feed(t, 20, 4, sim::seconds(1));
  EXPECT_EQ(t.snapshot(sim::seconds(1)).size(), 1u);
  // After many halflives the expected-count drops below min_samples.
  EXPECT_TRUE(t.snapshot(sim::seconds(30)).empty());
}

TEST(InterfererTracker, RecoveryFlipsEntryOff) {
  auto t = make_tracker();
  feed(t, 20, 4, sim::seconds(1));
  ASSERT_EQ(t.snapshot(sim::seconds(1)).size(), 1u);
  // Conditions improve: successes now dominate (channel changed).
  for (int i = 0; i < 60; ++i) {
    t.observe(kSender, phy::WifiRate::k6Mbps, {kInterferer}, kRate6, true,
              sim::seconds(4));
  }
  EXPECT_TRUE(t.snapshot(sim::seconds(4)).empty());
}

TEST(InterfererTracker, SnapshotCarriesRateAnnotations) {
  auto t = make_tracker();
  const std::vector<phy::WifiRate> r18 = {phy::WifiRate::k18Mbps};
  for (int i = 0; i < 20; ++i) {
    t.observe(kSender, phy::WifiRate::k12Mbps, {kInterferer}, r18, false, 1);
  }
  const auto list = t.snapshot(1);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].source_rate, phy::WifiRate::k12Mbps);
  EXPECT_EQ(list[0].interferer_rate, phy::WifiRate::k18Mbps);
}

TEST(InterfererTracker, ExactlyAtThresholdIsNotInterference) {
  auto t = make_tracker();
  feed(t, 16, 16);  // exactly 0.5
  EXPECT_TRUE(t.snapshot(1).empty());
}

}  // namespace
}  // namespace cmap::core
