#include "core/ongoing_list.h"

#include <gtest/gtest.h>

namespace cmap::core {
namespace {

VpDescriptor desc(phy::NodeId src, phy::NodeId dst) {
  VpDescriptor d;
  d.src = src;
  d.dst = dst;
  return d;
}

TEST(OngoingList, HeaderOpensEntryUntilAnnouncedEnd) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  EXPECT_TRUE(l.node_busy(1, sim::milliseconds(30)));
  EXPECT_TRUE(l.node_busy(2, sim::milliseconds(30)));
  EXPECT_FALSE(l.node_busy(3, sim::milliseconds(30)));
  EXPECT_FALSE(l.node_busy(1, sim::milliseconds(60)));  // end is exclusive
}

TEST(OngoingList, TrailerClosesEntry) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  // Trailer arrives early (VP shorter than announced): closes at now.
  l.note(desc(1, 2), sim::milliseconds(40));
  EXPECT_FALSE(l.node_busy(1, sim::milliseconds(50)));
}

TEST(OngoingList, ActiveListsOnlyLiveEntries) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(10));
  l.note(desc(3, 4), sim::milliseconds(100));
  const auto at50 = l.active(sim::milliseconds(50));
  ASSERT_EQ(at50.size(), 1u);
  EXPECT_EQ(at50[0].src, 3u);
  EXPECT_EQ(at50[0].dst, 4u);
}

TEST(OngoingList, SamePairUpdatesInPlace) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  l.note(desc(1, 2), sim::milliseconds(120));
  EXPECT_EQ(l.size(), 1u);
  EXPECT_TRUE(l.node_busy(1, sim::milliseconds(90)));
}

TEST(OngoingList, EndOfReportsRemainingEntry) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  EXPECT_EQ(l.end_of(1, 2, sim::milliseconds(30)), sim::milliseconds(60));
  EXPECT_EQ(l.end_of(1, 2, sim::milliseconds(61)), 0);
  EXPECT_EQ(l.end_of(2, 1, sim::milliseconds(30)), 0);
}

TEST(OngoingList, ExpireDropsDeadEntries) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(10));
  l.note(desc(3, 4), sim::milliseconds(100));
  l.expire(sim::milliseconds(50));
  EXPECT_EQ(l.size(), 1u);
}

TEST(OngoingList, DifferentPairsCoexist) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  l.note(desc(1, 3), sim::milliseconds(80));  // same src, different dst
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.active(sim::milliseconds(70)).size(), 1u);
}

TEST(OngoingList, RateIsTracked) {
  OngoingList l;
  VpDescriptor d = desc(1, 2);
  d.data_rate = phy::WifiRate::k18Mbps;
  l.note(d, sim::milliseconds(60));
  EXPECT_EQ(l.active(0).at(0).data_rate, phy::WifiRate::k18Mbps);
}

}  // namespace
}  // namespace cmap::core
