#include "core/ongoing_list.h"

#include <gtest/gtest.h>

namespace cmap::core {
namespace {

VpDescriptor desc(phy::NodeId src, phy::NodeId dst) {
  VpDescriptor d;
  d.src = src;
  d.dst = dst;
  return d;
}

TEST(OngoingList, HeaderOpensEntryUntilAnnouncedEnd) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  EXPECT_TRUE(l.node_busy(1, sim::milliseconds(30)));
  EXPECT_TRUE(l.node_busy(2, sim::milliseconds(30)));
  EXPECT_FALSE(l.node_busy(3, sim::milliseconds(30)));
  EXPECT_FALSE(l.node_busy(1, sim::milliseconds(60)));  // end is exclusive
}

TEST(OngoingList, TrailerClosesEntry) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  // Trailer arrives early (VP shorter than announced): closes at now.
  l.note(desc(1, 2), sim::milliseconds(40));
  EXPECT_FALSE(l.node_busy(1, sim::milliseconds(50)));
}

TEST(OngoingList, ActiveListsOnlyLiveEntries) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(10));
  l.note(desc(3, 4), sim::milliseconds(100));
  const auto at50 = l.active(sim::milliseconds(50));
  ASSERT_EQ(at50.size(), 1u);
  EXPECT_EQ(at50[0].src, 3u);
  EXPECT_EQ(at50[0].dst, 4u);
}

TEST(OngoingList, SamePairUpdatesInPlace) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  l.note(desc(1, 2), sim::milliseconds(120));
  EXPECT_EQ(l.size(), 1u);
  EXPECT_TRUE(l.node_busy(1, sim::milliseconds(90)));
}

TEST(OngoingList, EndOfReportsRemainingEntry) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  EXPECT_EQ(l.end_of(1, 2, sim::milliseconds(30)), sim::milliseconds(60));
  EXPECT_EQ(l.end_of(1, 2, sim::milliseconds(61)), 0);
  EXPECT_EQ(l.end_of(2, 1, sim::milliseconds(30)), 0);
}

TEST(OngoingList, ExpireDropsDeadEntries) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(10));
  l.note(desc(3, 4), sim::milliseconds(100));
  l.expire(sim::milliseconds(50));
  EXPECT_EQ(l.size(), 1u);
}

TEST(OngoingList, DifferentPairsCoexist) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  l.note(desc(1, 3), sim::milliseconds(80));  // same src, different dst
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.active(sim::milliseconds(70)).size(), 1u);
}

TEST(OngoingList, RateIsTracked) {
  OngoingList l;
  VpDescriptor d = desc(1, 2);
  d.data_rate = phy::WifiRate::k18Mbps;
  l.note(d, sim::milliseconds(60));
  EXPECT_EQ(l.active(0).at(0).data_rate, phy::WifiRate::k18Mbps);
}

// ---- end-time boundary: an entry is live strictly BEFORE its end ----

TEST(OngoingListBoundary, NodeBusyIsExclusiveAtEndTime) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  EXPECT_TRUE(l.node_busy(1, sim::milliseconds(60) - 1));
  EXPECT_FALSE(l.node_busy(1, sim::milliseconds(60)));
  EXPECT_FALSE(l.node_busy(2, sim::milliseconds(60)));
}

TEST(OngoingListBoundary, EndOfIsExclusiveAtEndTime) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  EXPECT_EQ(l.end_of(1, 2, sim::milliseconds(60) - 1), sim::milliseconds(60));
  EXPECT_EQ(l.end_of(1, 2, sim::milliseconds(60)), 0);
}

TEST(OngoingListBoundary, ActiveAndForEachActiveAgreeAtEndTime) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  EXPECT_EQ(l.active(sim::milliseconds(60) - 1).size(), 1u);
  EXPECT_EQ(l.active(sim::milliseconds(60)).size(), 0u);
  int visited = 0;
  l.for_each_active(sim::milliseconds(60), [&](const OngoingTx&) {
    ++visited;
  });
  EXPECT_EQ(visited, 0);
}

// ---- lazy expiry: reads reclaim dead entries without expire() ----

TEST(OngoingListLazy, NodeBusyReclaimsExpiredEntries) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(10));
  l.note(desc(3, 4), sim::milliseconds(100));
  EXPECT_EQ(l.size(), 2u);
  // A read about an unrelated node still sweeps dead entries off the ring.
  EXPECT_FALSE(l.node_busy(9, sim::milliseconds(50)));
  EXPECT_EQ(l.size(), 1u);
}

TEST(OngoingListLazy, EndOfReclaimsExpiredEntries) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(10));
  l.note(desc(3, 4), sim::milliseconds(100));
  EXPECT_EQ(l.end_of(3, 4, sim::milliseconds(50)), sim::milliseconds(100));
  EXPECT_EQ(l.size(), 1u);
}

TEST(OngoingListLazy, ForEachActiveReclaimsAndSlotsAreRecycled) {
  OngoingList l;
  for (phy::NodeId i = 0; i < 8; ++i) {
    l.note(desc(i, 100 + i), sim::milliseconds(10 + i));
  }
  l.for_each_active(sim::milliseconds(13), [](const OngoingTx&) {});
  EXPECT_EQ(l.size(), 4u);  // ends at 10..13 reclaimed
  // New pairs land in recycled slots; the live set stays coherent.
  for (phy::NodeId i = 50; i < 54; ++i) {
    l.note(desc(i, 200 + i), sim::milliseconds(100));
  }
  EXPECT_EQ(l.size(), 8u);
  EXPECT_EQ(l.active(sim::milliseconds(13)).size(), 8u);
  EXPECT_TRUE(l.node_busy(52, sim::milliseconds(50)));
}

TEST(OngoingListLazy, TrailerClosedEntryIsReclaimedOnNextRead) {
  OngoingList l;
  l.note(desc(1, 2), sim::milliseconds(60));
  l.note(desc(1, 2), sim::milliseconds(40));  // trailer closes at now=40ms
  EXPECT_EQ(l.size(), 1u);
  EXPECT_FALSE(l.node_busy(1, sim::milliseconds(40)));
  EXPECT_EQ(l.size(), 0u);
}

// ---- for_each_active vs the retained allocating snapshot ----

TEST(OngoingListOracle, ForEachActiveMatchesActiveSnapshot) {
  OngoingList l;
  // Mixed bag: live, expired, closed, updated-in-place.
  l.note(desc(1, 2), sim::milliseconds(10));
  l.note(desc(3, 4), sim::milliseconds(100));
  l.note(desc(5, 6), sim::milliseconds(70));
  l.note(desc(3, 4), sim::milliseconds(80));  // update in place
  l.note(desc(7, 8), sim::milliseconds(30));
  const sim::Time now = sim::milliseconds(50);
  const auto reference = l.active(now);
  std::vector<OngoingTx> fast;
  l.for_each_active(now, [&](const OngoingTx& tx) { fast.push_back(tx); });
  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].src, reference[i].src);
    EXPECT_EQ(fast[i].dst, reference[i].dst);
    EXPECT_EQ(fast[i].end_time, reference[i].end_time);
    EXPECT_EQ(fast[i].data_rate, reference[i].data_rate);
  }
  // The walk reclaimed the dead entries; the live set is unchanged.
  EXPECT_EQ(l.size(), fast.size());
  EXPECT_EQ(l.active(now).size(), reference.size());
}

}  // namespace
}  // namespace cmap::core
