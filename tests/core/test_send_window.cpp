#include "core/send_window.h"

#include <gtest/gtest.h>

namespace cmap::core {
namespace {

CmapAckFrame ack_for(std::uint32_t vp_seq, std::uint16_t npackets,
                     std::uint64_t bitmap) {
  CmapAckFrame a;
  CmapAckFrame::VpAck vp;
  vp.vp_seq = vp_seq;
  vp.npackets = npackets;
  vp.bitmap = bitmap;
  a.vps.push_back(vp);
  return a;
}

TEST(SendWindow, AdmitsUntilLimit) {
  SendWindow w(4);
  EXPECT_TRUE(w.can_admit());
  w.on_vp_sent(1, {10, 11, 12});
  EXPECT_TRUE(w.can_admit());
  w.on_vp_sent(2, {13});
  EXPECT_TRUE(w.window_full());
  EXPECT_EQ(w.outstanding(), 4u);
}

TEST(SendWindow, AckedBitmapMapsToSeqs) {
  SendWindow w(256);
  w.on_vp_sent(1, {10, 11, 12, 13});
  const auto acked = w.on_ack(ack_for(1, 4, 0b1011));
  EXPECT_EQ(acked, (std::vector<std::uint32_t>{10, 11, 13}));
  EXPECT_TRUE(w.is_outstanding(12));
  EXPECT_FALSE(w.is_outstanding(11));
}

TEST(SendWindow, DuplicateAckIsIdempotent) {
  SendWindow w(256);
  w.on_vp_sent(1, {10, 11});
  EXPECT_EQ(w.on_ack(ack_for(1, 2, 0b11)).size(), 2u);
  EXPECT_EQ(w.on_ack(ack_for(1, 2, 0b11)).size(), 0u);
}

TEST(SendWindow, CumulativeAckCoversMultipleVps) {
  SendWindow w(256);
  w.on_vp_sent(1, {10, 11});
  w.on_vp_sent(2, {12, 13});
  CmapAckFrame a;
  a.vps.push_back({1, 2, 0b01});
  a.vps.push_back({2, 2, 0b10});
  const auto acked = w.on_ack(a);
  EXPECT_EQ(acked, (std::vector<std::uint32_t>{10, 13}));
  EXPECT_EQ(w.outstanding(), 2u);
}

TEST(SendWindow, UnknownVpInAckIsIgnored) {
  SendWindow w(256);
  w.on_vp_sent(1, {10});
  EXPECT_TRUE(w.on_ack(ack_for(99, 8, ~0ull)).empty());
  EXPECT_TRUE(w.is_outstanding(10));
}

TEST(SendWindow, RetransmissionInNewVpAckableThroughEither) {
  SendWindow w(256);
  w.on_vp_sent(1, {10, 11});
  // 11 lost; retransmitted later inside VP 5 at index 0.
  w.on_vp_sent(5, {11});
  const auto acked = w.on_ack(ack_for(5, 1, 0b1));
  EXPECT_EQ(acked, (std::vector<std::uint32_t>{11}));
  EXPECT_FALSE(w.is_outstanding(11));
  // A late ACK for the original VP no longer re-acks it.
  EXPECT_TRUE(w.on_ack(ack_for(1, 2, 0b10)).empty());
}

TEST(SendWindow, UnackedInSequenceSorted) {
  SendWindow w(256);
  w.on_vp_sent(1, {30, 10, 20});
  EXPECT_EQ(w.unacked_in_sequence(),
            (std::vector<std::uint32_t>{10, 20, 30}));
}

TEST(SendWindow, DropFreesSlot) {
  SendWindow w(2);
  w.on_vp_sent(1, {10, 11});
  EXPECT_TRUE(w.window_full());
  w.drop(10);
  EXPECT_TRUE(w.can_admit());
  EXPECT_EQ(w.unacked_in_sequence(), (std::vector<std::uint32_t>{11}));
}

TEST(SendWindow, ResendingSameSeqDoesNotDoubleCount) {
  SendWindow w(4);
  w.on_vp_sent(1, {10, 11});
  w.on_vp_sent(2, {10, 11});  // retransmission
  EXPECT_EQ(w.outstanding(), 2u);
}

}  // namespace
}  // namespace cmap::core
