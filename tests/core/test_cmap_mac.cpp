// End-to-end CmapMac behaviour over a deterministic PHY (threshold error
// model, no fading): virtual-packet pipelining, windowed ACKs, conflict
// inference and deferral, broadcast, integrated mode.
#include "core/cmap_mac.h"

#include <gtest/gtest.h>

#include "core_test_util.h"
#include "sim/time.h"

namespace cmap::core {
namespace {

using testing::CmapWorld;

TEST(CmapMac, SingleLinkSaturatedThroughput) {
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {50, 0});
  w.saturate(a, 1, 2);
  const sim::Time dur = sim::seconds(2);
  w.simulator().run_until(dur);
  const double mbps = w.throughput_mbps(1, dur);
  // 32 x 1400 B per ~60.9 ms virtual-packet cycle ~= 5.9 Mbit/s.
  EXPECT_GT(mbps, 5.5);
  EXPECT_LT(mbps, 6.1);
  EXPECT_EQ(a.counters().retx_timeouts, 0u);
  EXPECT_GT(a.counters().vp_acks_received, 20u);
  EXPECT_EQ(w.mac(1).stats().duplicates, 0u);
}

TEST(CmapMac, AckCarriesZeroLossOnCleanLink) {
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {50, 0});
  w.saturate(a, 1, 2);
  w.simulator().run_until(sim::seconds(1));
  EXPECT_EQ(a.loss_backoff().cw(), 0);  // never backed off
}

TEST(CmapMac, ExposedTerminalsTransmitConcurrently) {
  // Two flows whose receivers decode fine despite the other sender: the
  // senders hear each other but must NOT defer (no conflict map entries).
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {5, 0});
  CmapMac& x = w.add_node(3, {20, 0});
  w.add_node(4, {25, 0});
  w.saturate(a, 1, 2);
  w.saturate(x, 3, 4);
  const sim::Time dur = sim::seconds(3);
  w.simulator().run_until(dur);
  const double t1 = w.throughput_mbps(1, dur);
  const double t2 = w.throughput_mbps(3, dur);
  EXPECT_GT(t1, 5.0);
  EXPECT_GT(t2, 5.0);
  EXPECT_GT(t1 + t2, 10.0);  // ~2x a single link: spatial reuse worked
  EXPECT_EQ(a.counters().defer_events, 0u);
  EXPECT_EQ(x.counters().defer_events, 0u);
  EXPECT_EQ(a.defer_table().size(), 0u);
}

TEST(CmapMac, ConflictingFlowsLearnToDefer) {
  // X sits next to B: X's transmissions obliterate A->B, and A's
  // transmissions reach Y strongly enough to kill X->Y. Receivers must
  // infer the interferers, broadcast lists, and the senders must start
  // deferring to each other (the conflict-avoidance half of Fig. 13).
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {20, 0});   // B
  CmapMac& x = w.add_node(3, {25, 0});
  w.add_node(4, {50, 0});   // Y
  w.saturate(a, 1, 2);
  w.saturate(x, 3, 4);
  w.simulator().run_until(sim::seconds(12));

  EXPECT_GT(a.counters().defer_events + x.counters().defer_events, 10u);
  EXPECT_GT(a.defer_table().size() + x.defer_table().size(), 0u);
  // Receivers hold the evidence.
  const double lb = w.mac(1).interferer_tracker().loss_rate(1, 3);
  const double ly = w.mac(3).interferer_tracker().loss_rate(3, 1);
  EXPECT_TRUE(lb > 0.5 || ly > 0.5);
  // Interferer lists actually traveled to the senders.
  EXPECT_GT(a.counters().ilists_received + x.counters().ilists_received, 0u);
}

TEST(CmapMac, ConflictingFlowsStillMakeProgress) {
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {20, 0});
  CmapMac& x = w.add_node(3, {25, 0});
  w.add_node(4, {50, 0});
  w.saturate(a, 1, 2);
  w.saturate(x, 3, 4);
  w.simulator().run_until(sim::seconds(12));
  // After convergence the two flows interleave: aggregate should be a
  // healthy fraction of one link's rate (not collapsed to ~0).
  const double agg = w.throughput_mbps(1, sim::seconds(12)) +
                     w.throughput_mbps(3, sim::seconds(12));
  EXPECT_GT(agg, 2.0);
}

TEST(CmapMac, WindowFullTriggersTimeoutAndRetransmission) {
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {2000, 0});  // in energy range only: nothing ever decodes
  w.saturate(a, 1, 2);
  w.simulator().run_until(sim::seconds(20));
  EXPECT_GT(a.counters().retx_timeouts, 5u);
  EXPECT_GT(a.stats().retransmissions, 100u);
  EXPECT_GT(a.counters().dropped_retx_limit, 0u);
  EXPECT_TRUE(w.received(1).empty());
}

TEST(CmapMac, SurvivesTotalAckLoss) {
  // B decodes everything but is effectively mute (tiny tx power): the
  // windowed protocol keeps data flowing via window-timeout
  // retransmissions instead of deadlocking.
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  phy::RadioConfig mute;
  mute.tx_power_dbm = -30.0;
  w.add_node(2, {50, 0}, {}, mute);
  w.saturate(a, 1, 2);
  w.simulator().run_until(sim::seconds(20));
  EXPECT_GT(w.received(1).size(), 500u);
  EXPECT_GT(a.stats().ack_timeouts, 0u);
  EXPECT_GT(a.counters().retx_timeouts, 0u);
  EXPECT_GT(w.mac(1).stats().duplicates, 0u);  // retx of received packets
}

TEST(CmapMac, BroadcastReachesAllNeighboursWithoutAcks) {
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {10, 0});
  w.add_node(3, {15, 0});
  w.saturate(a, 1, phy::kBroadcastId);
  w.simulator().run_until(sim::seconds(2));
  EXPECT_GT(w.received(1).size(), 500u);
  EXPECT_GT(w.received(2).size(), 500u);
  EXPECT_EQ(w.mac(1).counters().vp_acks_sent, 0u);
  EXPECT_EQ(w.mac(2).counters().vp_acks_sent, 0u);
  EXPECT_EQ(a.counters().retx_timeouts, 0u);
  // The window never blocks broadcasts.
  EXPECT_GT(a.counters().vps_sent, 16u);
}

TEST(CmapMac, HeadersPopulateNeighboursOngoingLists) {
  CmapWorld w;
  CmapMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {50, 0});
  CmapMac& observer = w.add_node(3, {30, 10});
  w.saturate(a, 1, 2);
  int busy_samples = 0;
  const int total_samples = 40;
  for (int i = 1; i <= total_samples; ++i) {
    w.simulator().at(sim::milliseconds(50 * i), [&] {
      if (observer.ongoing_list().node_busy(1, w.simulator().now())) {
        ++busy_samples;
      }
    });
  }
  w.simulator().run_until(sim::seconds(2 + 1));
  // A transmits ~99% of the time; the observer should see it busy in the
  // overwhelming majority of samples.
  EXPECT_GT(busy_samples, total_samples * 3 / 5);
  EXPECT_GT(observer.counters().headers_heard, 20u);
  EXPECT_GT(observer.counters().trailers_heard, 20u);
}

TEST(CmapMac, Window1StallsFasterThanWindow8) {
  // Against an unreachable receiver, a window of one VP admits only 32
  // distinct packets before stalling (everything after that is window
  // timeout retransmission); a window of eight admits 256.
  auto unique_sent = [](int nwindow) {
    CmapWorld w;
    CmapConfig cfg;
    cfg.nwindow_vps = nwindow;
    CmapMac& a = w.add_node(1, {0, 0}, cfg);
    w.add_node(2, {2000, 0});  // unreachable
    w.saturate(a, 1, 2);
    w.simulator().run_until(sim::milliseconds(300));
    return a.stats().data_frames_sent - a.stats().retransmissions;
  };
  EXPECT_EQ(unique_sent(1), 32u);
  EXPECT_GT(unique_sent(8), 120u);
}

TEST(CmapMac, IntegratedModeDeliversAndStreamsHeaders) {
  CmapWorld w;
  const CmapConfig cfg = CmapConfig::integrated_defaults();
  CmapMac& a = w.add_node(1, {0, 0}, cfg);
  w.add_node(2, {50, 0}, cfg);
  CmapMac& observer = w.add_node(3, {25, 10}, cfg);
  w.saturate(a, 1, 2);
  const sim::Time dur = sim::seconds(2);
  w.simulator().run_until(dur);
  const double mbps = w.throughput_mbps(1, dur);
  EXPECT_GT(mbps, 4.0);
  EXPECT_LT(mbps, 6.0);
  EXPECT_GT(observer.counters().headers_heard, 100u);
  EXPECT_EQ(a.counters().retx_timeouts, 0u);
}

TEST(CmapMac, IntegratedSalvageFeedsConflictState) {
  // Same conflict geometry as ConflictingFlowsLearnToDefer but in
  // integrated mode, where delimiters must be salvaged from collisions.
  CmapWorld w;
  const CmapConfig cfg = CmapConfig::integrated_defaults();
  CmapMac& a = w.add_node(1, {0, 0}, cfg);
  w.add_node(2, {20, 0}, cfg);
  CmapMac& x = w.add_node(3, {25, 0}, cfg);
  w.add_node(4, {50, 0}, cfg);
  w.saturate(a, 1, 2);
  w.saturate(x, 3, 4);
  w.simulator().run_until(sim::seconds(12));
  EXPECT_GT(a.counters().defer_events + x.counters().defer_events, 10u);
}

TEST(CmapMac, PerDestinationQueuesAvoidHeadOfLineBlocking) {
  CmapWorld w;
  CmapConfig cfg;
  cfg.per_dest_queues = true;
  CmapMac& a = w.add_node(1, {0, 0}, cfg);
  w.add_node(2, {20, 0});            // B: conflicted by X
  CmapMac& x = w.add_node(3, {25, 0});
  w.add_node(4, {50, 0});            // Y
  w.add_node(5, {0, 5});             // C: clean alternative destination
  // A alternates packets to B and C.
  std::uint64_t id = 1'000'000;
  auto fill = [&] {
    while (a.queue_depth() < 128) {
      mac::Packet p;
      p.src = 1;
      p.dst = (id % 2 == 0) ? 2 : 5;
      p.id = ++id;
      p.bytes = 1400;
      if (!a.send(p)) break;
    }
  };
  a.set_drain_handler(fill);
  fill();
  w.saturate(x, 3, 4);
  w.simulator().run_until(sim::seconds(12));
  EXPECT_GT(w.received(1).size(), 100u);  // B still served
  EXPECT_GT(w.received(4).size(), 100u);  // C not starved during deferrals
}

TEST(CmapMac, QueueLimitRejectsExcess) {
  CmapWorld w;
  CmapConfig cfg;
  cfg.queue_limit = 10;
  CmapMac& a = w.add_node(1, {0, 0}, cfg);
  w.add_node(2, {50, 0});
  int accepted = 0;
  w.simulator().at(0, [&] {
    for (int i = 0; i < 400; ++i) {
      if (a.send(w.make_packet(1, 2))) ++accepted;
    }
  });
  w.simulator().run_until(sim::milliseconds(1));
  // One VP's worth may drain into the window immediately; the rest bounce.
  EXPECT_LE(accepted, 10 + 32);
  EXPECT_GT(a.stats().dropped_queue_full, 300u);
}

}  // namespace
}  // namespace cmap::core
