// Wire-format sizes (paper Fig. 3) and CmapConfig arithmetic (§3.3/§4.2).
#include <gtest/gtest.h>

#include "core/config.h"
#include "core/wire.h"

namespace cmap::core {
namespace {

TEST(Wire, DelimiterIs24BytesPerFig3) {
  VpDelimFrame f;
  EXPECT_EQ(f.wire_bytes(), 24u);  // src 6 + dst 6 + time 4 + seq 4 + CRC 4
}

TEST(Wire, DataFrameCarriesMacOverhead) {
  CmapDataFrame f;
  f.packet.bytes = 1400;
  EXPECT_EQ(f.wire_bytes(), 1428u);
}

TEST(Wire, AckGrowsWithWindowEntries) {
  CmapAckFrame a;
  const std::size_t base = a.wire_bytes();
  a.vps.resize(8);
  EXPECT_EQ(a.wire_bytes(), base + 8 * 10);
  // A full-window ACK still fits in one short control frame at 6 Mbit/s.
  EXPECT_LT(a.wire_bytes(), 200u);
}

TEST(Wire, InterfererListGrowsWithEntries) {
  InterfererListFrame il;
  const std::size_t base = il.wire_bytes();
  il.entries.resize(5);
  EXPECT_EQ(il.wire_bytes(), base + 50);
}

TEST(Config, WindowPacketsIsNvpktTimesNwindow) {
  CmapConfig c;
  EXPECT_EQ(c.window_packets(), 256u);  // 32 * 8 (§4.2)
  c.nvpkt = 16;
  c.nwindow_vps = 4;
  EXPECT_EQ(c.window_packets(), 64u);
}

TEST(Config, TauMaxIsOneWindowsAirtime) {
  // §3.3: tau_max = Nwindow (bits) / link speed; with the §4.2 window of
  // 256 x 1400 B at 6 Mbit/s that is ~478 ms.
  CmapConfig c;
  EXPECT_NEAR(sim::to_seconds(c.tau_max()), 256 * 1400 * 8 / 6e6, 1e-6);
  EXPECT_EQ(c.tau_min(), c.tau_max() / 2);
}

TEST(Config, TauScalesWithRate) {
  CmapConfig c;
  const sim::Time at6 = c.tau_max();
  c.data_rate = phy::WifiRate::k12Mbps;
  EXPECT_NEAR(static_cast<double>(c.tau_max()),
              static_cast<double>(at6) / 2.0, 2.0);
}

TEST(Config, IntegratedDefaultsAreSelfConsistent) {
  const CmapConfig c = CmapConfig::integrated_defaults();
  EXPECT_EQ(c.mode, PhyMode::kIntegrated);
  EXPECT_EQ(c.nvpkt, 1);
  // The cumulative ACK (nwindow entries) must fit inside the ACK wait at
  // the base control rate, or the sender talks over its own ACKs.
  CmapAckFrame a;
  a.vps.resize(static_cast<std::size_t>(c.nwindow_vps));
  const sim::Time ack_air =
      phy::frame_airtime(c.control_rate, a.wire_bytes());
  EXPECT_LT(ack_air + sim::microseconds(16), c.t_ackwait);
}

TEST(Config, ShimAckAlsoFitsItsWait) {
  const CmapConfig c;
  CmapAckFrame a;
  a.vps.resize(static_cast<std::size_t>(c.nwindow_vps));
  const sim::Time ack_air =
      phy::frame_airtime(c.control_rate, a.wire_bytes());
  EXPECT_LT(ack_air + sim::microseconds(16), c.t_ackwait);
}

TEST(Wire, RateAnnotationsDefaultToAny) {
  InterfererEntry e;
  EXPECT_EQ(e.source_rate, kAnyRate);
  EXPECT_EQ(e.interferer_rate, kAnyRate);
}

}  // namespace
}  // namespace cmap::core
