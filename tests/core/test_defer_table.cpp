#include "core/defer_table.h"

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/time.h"

namespace cmap::core {
namespace {

constexpr phy::NodeId kMe = 1;
constexpr phy::NodeId kReporter = 2;   // v in the paper's Fig. 4
constexpr phy::NodeId kInterferer = 3; // x
constexpr phy::NodeId kOther = 4;      // y / z

InterfererEntry entry(phy::NodeId source, phy::NodeId interferer) {
  InterfererEntry e;
  e.source = source;
  e.interferer = interferer;
  return e;
}

TEST(DeferTable, Rule1AddsDeferToReporterWhileInterfererActive) {
  // u receives v's list containing (u, x): add (v : x -> *).
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  ASSERT_EQ(t.size(), 1u);
  // Defer pattern 2: sending to v while x transmits to anyone.
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther, 1));
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, 17, 1));
}

TEST(DeferTable, Rule1DoesNotDeferToOtherDestinations) {
  // "u need not defer while transmitting to all destinations, e.g. z."
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  EXPECT_FALSE(t.should_defer(kOther, kInterferer, 17, 1));
}

TEST(DeferTable, Rule2AddsGlobalDeferWhileVictimTransmissionActive) {
  // x receives v's list containing (u, x): add (* : u -> v).
  DeferTable t(sim::seconds(10));
  const phy::NodeId u = 5;
  t.apply_interferer_list(kMe, kReporter, {entry(u, kMe)}, 0);
  ASSERT_EQ(t.size(), 1u);
  // Defer pattern 1: x must defer to u -> v regardless of x's destination.
  EXPECT_TRUE(t.should_defer(kOther, u, kReporter, 1));
  EXPECT_TRUE(t.should_defer(42, u, kReporter, 1));
}

TEST(DeferTable, Rule2OnlyMatchesTheVictimPair) {
  // "x can transmit freely when u is transmitting to a node other than v."
  DeferTable t(sim::seconds(10));
  const phy::NodeId u = 5;
  t.apply_interferer_list(kMe, kReporter, {entry(u, kMe)}, 0);
  EXPECT_FALSE(t.should_defer(kOther, u, kOther, 1));
  EXPECT_FALSE(t.should_defer(kOther, u, 42, 1));
}

TEST(DeferTable, UninvolvedEntriesAddNothing) {
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(7, 8)}, 0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(DeferTable, BothRulesCanFireFromOneList) {
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(
      kMe, kReporter, {entry(kMe, kInterferer), entry(kOther, kMe)}, 0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, 9, 1));      // rule 1
  EXPECT_TRUE(t.should_defer(17, kOther, kReporter, 1));          // rule 2
}

TEST(DeferTable, EntriesExpireAfterTtl) {
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther,
                             sim::seconds(9)));
  EXPECT_FALSE(t.should_defer(kReporter, kInterferer, kOther,
                              sim::seconds(10)));
  t.expire(sim::seconds(11));
  EXPECT_EQ(t.size(), 0u);
}

TEST(DeferTable, ReapplyRefreshesExpiryWithoutDuplicates) {
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)},
                          sim::seconds(8));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther,
                             sim::seconds(15)));
}

TEST(DeferTable, SelfAsBothSourceAndInterfererIgnoredGracefully) {
  DeferTable t(sim::seconds(10));
  // Degenerate entry (me, me) would mean we interfere with ourselves.
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kMe)}, 0);
  // Both rules add their entries; neither should match sending to the
  // reporter while someone ELSE transmits.
  EXPECT_FALSE(t.should_defer(kReporter, kOther, 9, 1));
}

TEST(DeferTableRates, AnnotatedEntriesMatchOnlyObservedRates) {
  DeferTable t(sim::seconds(10), /*annotate_rates=*/true);
  InterfererEntry e = entry(kMe, kInterferer);
  e.source_rate = phy::WifiRate::k6Mbps;      // my rate when it was observed
  e.interferer_rate = phy::WifiRate::k12Mbps; // their rate
  t.apply_interferer_list(kMe, kReporter, {e}, 0);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther, 1,
                             phy::WifiRate::k6Mbps, phy::WifiRate::k12Mbps));
  // A different rate combination is a different conflict-map cell (§3.5).
  EXPECT_FALSE(t.should_defer(kReporter, kInterferer, kOther, 1,
                              phy::WifiRate::k18Mbps, phy::WifiRate::k12Mbps));
  EXPECT_FALSE(t.should_defer(kReporter, kInterferer, kOther, 1,
                              phy::WifiRate::k6Mbps, phy::WifiRate::k18Mbps));
}

TEST(DeferTableRates, UnannotatedTableIgnoresRates) {
  DeferTable t(sim::seconds(10), /*annotate_rates=*/false);
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther, 1,
                             phy::WifiRate::k18Mbps, phy::WifiRate::k54Mbps));
}

// ---- upsert duplicate-key refresh semantics ----

TEST(DeferTableUpsert, RepeatedReportsRefreshTtlWithoutGrowth) {
  DeferTable t(sim::seconds(10));
  // The same conflict re-reported 50 times across 50 seconds: one entry,
  // TTL rolling forward each time. (Queries stay strictly inside the TTL
  // so every round exercises the in-place refresh, not reclaim+insert.)
  sim::Time now = 0;
  for (int round = 0; round < 50; ++round) {
    now = sim::seconds(round);
    t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, now);
    ASSERT_EQ(t.size(), 1u) << "round " << round;
    // Live right up to (but excluding) the refreshed expiry.
    EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther,
                               now + sim::seconds(10) - 1));
  }
  // The final refresh ages out at exactly now + TTL.
  EXPECT_FALSE(t.should_defer(kReporter, kInterferer, kOther,
                              now + sim::seconds(10)));
  EXPECT_EQ(t.entries().size(), 0u);  // ...and that probe reclaimed it
}

TEST(DeferTableUpsert, RefreshAppliesToLapsedEntriesToo) {
  // A conflict re-reported after its entry lapsed (but before anything
  // reclaimed it) must refresh in place, not duplicate.
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)},
                          sim::seconds(30));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther,
                             sim::seconds(35)));
}

TEST(DeferTableUpsert, DistinctRateAnnotationsAreDistinctEntries) {
  DeferTable t(sim::seconds(10), /*annotate_rates=*/true);
  InterfererEntry a = entry(kMe, kInterferer);
  a.source_rate = phy::WifiRate::k6Mbps;
  a.interferer_rate = phy::WifiRate::k12Mbps;
  InterfererEntry b = a;
  b.source_rate = phy::WifiRate::k18Mbps;  // different conflict-map cell
  t.apply_interferer_list(kMe, kReporter, {a, b}, 0);
  EXPECT_EQ(t.size(), 2u);
  // Re-reporting both refreshes; the table stays at two entries.
  t.apply_interferer_list(kMe, kReporter, {a, b}, sim::seconds(5));
  EXPECT_EQ(t.size(), 2u);
}

TEST(DeferTableUpsert, SizeBoundedByDistinctConflictsUnderChurn) {
  // Invariant: however often lists are (re)applied, the table never holds
  // more than the number of distinct (dst, src, via, rates) conflicts.
  DeferTable t(sim::seconds(5));
  sim::Rng rng(0xb0b);
  constexpr int kReporters = 3;
  constexpr int kInterferers = 4;
  // Distinct rule-1 entries possible: kReporters * kInterferers. Each list
  // also fires rule 2 when the interferer is kMe — excluded by id choice.
  const std::size_t bound = kReporters * kInterferers;
  for (int op = 0; op < 500; ++op) {
    const auto reporter =
        static_cast<phy::NodeId>(100 + rng.uniform_int(0, kReporters - 1));
    const auto interferer =
        static_cast<phy::NodeId>(200 + rng.uniform_int(0, kInterferers - 1));
    const sim::Time now = sim::milliseconds(op * 37);
    t.apply_interferer_list(kMe, reporter, {entry(kMe, interferer)}, now);
    ASSERT_LE(t.size(), bound) << "op " << op;
  }
}

// ---- fast path vs retained reference scan ----

TEST(DeferTableOracle, FastAndReferenceAgreeOnAllPatternCombinations) {
  DeferTable t(sim::seconds(10));
  const phy::NodeId u = 5;
  t.apply_interferer_list(
      kMe, kReporter, {entry(kMe, kInterferer), entry(u, kMe)}, 0);
  const phy::NodeId ids[] = {kMe, kReporter, kInterferer, kOther, u, 42,
                             phy::kBroadcastId};
  // Time ascends in the OUTER loop: the fast path reclaims expired entries
  // as it probes, so a query in the past after one in the future would
  // silently drop coverage (both paths would agree on an emptied table).
  for (sim::Time now : {sim::Time{1}, sim::seconds(10) - 1, sim::seconds(10),
                        sim::seconds(11)}) {
    for (phy::NodeId my_dst : ids) {
      for (phy::NodeId p : ids) {
        for (phy::NodeId q : ids) {
          EXPECT_EQ(t.should_defer_reference(my_dst, p, q, now),
                    t.should_defer(my_dst, p, q, now))
              << my_dst << " " << p << " " << q << " @" << now;
        }
      }
    }
  }
}

}  // namespace
}  // namespace cmap::core
