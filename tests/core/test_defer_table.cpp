#include "core/defer_table.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace cmap::core {
namespace {

constexpr phy::NodeId kMe = 1;
constexpr phy::NodeId kReporter = 2;   // v in the paper's Fig. 4
constexpr phy::NodeId kInterferer = 3; // x
constexpr phy::NodeId kOther = 4;      // y / z

InterfererEntry entry(phy::NodeId source, phy::NodeId interferer) {
  InterfererEntry e;
  e.source = source;
  e.interferer = interferer;
  return e;
}

TEST(DeferTable, Rule1AddsDeferToReporterWhileInterfererActive) {
  // u receives v's list containing (u, x): add (v : x -> *).
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  ASSERT_EQ(t.size(), 1u);
  // Defer pattern 2: sending to v while x transmits to anyone.
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther, 1));
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, 17, 1));
}

TEST(DeferTable, Rule1DoesNotDeferToOtherDestinations) {
  // "u need not defer while transmitting to all destinations, e.g. z."
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  EXPECT_FALSE(t.should_defer(kOther, kInterferer, 17, 1));
}

TEST(DeferTable, Rule2AddsGlobalDeferWhileVictimTransmissionActive) {
  // x receives v's list containing (u, x): add (* : u -> v).
  DeferTable t(sim::seconds(10));
  const phy::NodeId u = 5;
  t.apply_interferer_list(kMe, kReporter, {entry(u, kMe)}, 0);
  ASSERT_EQ(t.size(), 1u);
  // Defer pattern 1: x must defer to u -> v regardless of x's destination.
  EXPECT_TRUE(t.should_defer(kOther, u, kReporter, 1));
  EXPECT_TRUE(t.should_defer(42, u, kReporter, 1));
}

TEST(DeferTable, Rule2OnlyMatchesTheVictimPair) {
  // "x can transmit freely when u is transmitting to a node other than v."
  DeferTable t(sim::seconds(10));
  const phy::NodeId u = 5;
  t.apply_interferer_list(kMe, kReporter, {entry(u, kMe)}, 0);
  EXPECT_FALSE(t.should_defer(kOther, u, kOther, 1));
  EXPECT_FALSE(t.should_defer(kOther, u, 42, 1));
}

TEST(DeferTable, UninvolvedEntriesAddNothing) {
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(7, 8)}, 0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(DeferTable, BothRulesCanFireFromOneList) {
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(
      kMe, kReporter, {entry(kMe, kInterferer), entry(kOther, kMe)}, 0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, 9, 1));      // rule 1
  EXPECT_TRUE(t.should_defer(17, kOther, kReporter, 1));          // rule 2
}

TEST(DeferTable, EntriesExpireAfterTtl) {
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther,
                             sim::seconds(9)));
  EXPECT_FALSE(t.should_defer(kReporter, kInterferer, kOther,
                              sim::seconds(10)));
  t.expire(sim::seconds(11));
  EXPECT_EQ(t.size(), 0u);
}

TEST(DeferTable, ReapplyRefreshesExpiryWithoutDuplicates) {
  DeferTable t(sim::seconds(10));
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)},
                          sim::seconds(8));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther,
                             sim::seconds(15)));
}

TEST(DeferTable, SelfAsBothSourceAndInterfererIgnoredGracefully) {
  DeferTable t(sim::seconds(10));
  // Degenerate entry (me, me) would mean we interfere with ourselves.
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kMe)}, 0);
  // Both rules add their entries; neither should match sending to the
  // reporter while someone ELSE transmits.
  EXPECT_FALSE(t.should_defer(kReporter, kOther, 9, 1));
}

TEST(DeferTableRates, AnnotatedEntriesMatchOnlyObservedRates) {
  DeferTable t(sim::seconds(10), /*annotate_rates=*/true);
  InterfererEntry e = entry(kMe, kInterferer);
  e.source_rate = phy::WifiRate::k6Mbps;      // my rate when it was observed
  e.interferer_rate = phy::WifiRate::k12Mbps; // their rate
  t.apply_interferer_list(kMe, kReporter, {e}, 0);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther, 1,
                             phy::WifiRate::k6Mbps, phy::WifiRate::k12Mbps));
  // A different rate combination is a different conflict-map cell (§3.5).
  EXPECT_FALSE(t.should_defer(kReporter, kInterferer, kOther, 1,
                              phy::WifiRate::k18Mbps, phy::WifiRate::k12Mbps));
  EXPECT_FALSE(t.should_defer(kReporter, kInterferer, kOther, 1,
                              phy::WifiRate::k6Mbps, phy::WifiRate::k18Mbps));
}

TEST(DeferTableRates, UnannotatedTableIgnoresRates) {
  DeferTable t(sim::seconds(10), /*annotate_rates=*/false);
  t.apply_interferer_list(kMe, kReporter, {entry(kMe, kInterferer)}, 0);
  EXPECT_TRUE(t.should_defer(kReporter, kInterferer, kOther, 1,
                             phy::WifiRate::k18Mbps, phy::WifiRate::k54Mbps));
}

}  // namespace
}  // namespace cmap::core
