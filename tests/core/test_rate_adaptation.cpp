#include "core/rate_adaptation.h"

#include <gtest/gtest.h>

namespace cmap::core {
namespace {

constexpr phy::NodeId kDst = 2;
constexpr phy::NodeId kP = 3, kQ = 4;

OngoingTx ongoing_until(sim::Time end,
                        phy::WifiRate rate = phy::WifiRate::k6Mbps) {
  return OngoingTx{kP, kQ, end, rate};
}

ConflictAwareRateChooser chooser() {
  return ConflictAwareRateChooser(
      {phy::WifiRate::k6Mbps, phy::WifiRate::k18Mbps, phy::WifiRate::k54Mbps});
}

// Defer table that forbids concurrency at exactly the rates listed.
DeferTable table_forbidding(std::initializer_list<phy::WifiRate> my_rates) {
  DeferTable t(sim::seconds(100), /*annotate_rates=*/true);
  for (phy::WifiRate r : my_rates) {
    InterfererEntry e;
    e.source = 1;  // me
    e.interferer = kP;
    e.source_rate = r;
    e.interferer_rate = phy::WifiRate::k6Mbps;
    t.apply_interferer_list(1, kDst, {e}, 0);
  }
  return t;
}

TEST(RateChooser, IdleChannelPicksFastestRate) {
  const auto c = chooser().choose_idle(1400);
  EXPECT_EQ(c.rate, phy::WifiRate::k54Mbps);
  EXPECT_FALSE(c.defer);
  EXPECT_GT(c.expected_bps, 20e6);
}

TEST(RateChooser, NoConflictMeansConcurrentAtFastRate) {
  DeferTable empty(sim::seconds(100), true);
  const auto c =
      chooser().choose(empty, kDst, ongoing_until(sim::seconds(1)), 0, 1400);
  EXPECT_EQ(c.rate, phy::WifiRate::k54Mbps);
  EXPECT_FALSE(c.defer);
}

TEST(RateChooser, LongWaitFavoursTolerantLowRateConcurrency) {
  // Fast rates conflict with the ongoing transmission; 6 Mbit/s tolerates
  // it. With a long residual wait, concurrent-at-6 beats defer-then-54.
  auto t = table_forbidding({phy::WifiRate::k18Mbps, phy::WifiRate::k54Mbps});
  const auto c = chooser().choose(t, kDst,
                                  ongoing_until(sim::milliseconds(50)), 0,
                                  1400);
  EXPECT_EQ(c.rate, phy::WifiRate::k6Mbps);
  EXPECT_FALSE(c.defer);
}

TEST(RateChooser, ShortWaitFavoursDeferThenFast) {
  // Same conflicts, but the ongoing transmission ends in 100 us: waiting
  // then bursting at 54 Mbit/s beats crawling at 6 concurrently.
  auto t = table_forbidding({phy::WifiRate::k18Mbps, phy::WifiRate::k54Mbps});
  const auto c = chooser().choose(t, kDst,
                                  ongoing_until(sim::microseconds(100)), 0,
                                  1400);
  EXPECT_EQ(c.rate, phy::WifiRate::k54Mbps);
  EXPECT_TRUE(c.defer);
}

TEST(RateChooser, AllRatesConflictingMeansDefer) {
  auto t = table_forbidding({phy::WifiRate::k6Mbps, phy::WifiRate::k18Mbps,
                             phy::WifiRate::k54Mbps});
  const auto c = chooser().choose(t, kDst,
                                  ongoing_until(sim::milliseconds(10)), 0,
                                  1400);
  EXPECT_TRUE(c.defer);
  EXPECT_EQ(c.rate, phy::WifiRate::k54Mbps);  // fastest after the wait
}

TEST(RateChooser, ExpiredOngoingCostsNothing) {
  auto t = table_forbidding({phy::WifiRate::k54Mbps});
  // "Ongoing" already ended: the defer option's wait is zero, so the
  // fastest rate wins even though concurrency at 54 is forbidden.
  const auto c = chooser().choose(t, kDst, ongoing_until(sim::seconds(1)),
                                  sim::seconds(2), 1400);
  EXPECT_EQ(c.rate, phy::WifiRate::k54Mbps);
  EXPECT_TRUE(c.defer);
}

TEST(RateChooser, CrossoverIsMonotoneInWait) {
  // As the residual wait grows, the decision flips from defer-fast to
  // concurrent-slow exactly once.
  auto t = table_forbidding({phy::WifiRate::k18Mbps, phy::WifiRate::k54Mbps});
  bool seen_concurrent = false;
  for (sim::Time wait = sim::microseconds(10); wait <= sim::milliseconds(100);
       wait *= 2) {
    const auto c = chooser().choose(t, kDst, ongoing_until(wait), 0, 1400);
    if (seen_concurrent) {
      EXPECT_FALSE(c.defer) << "flipped back at wait " << wait;
    }
    seen_concurrent = seen_concurrent || !c.defer;
  }
  EXPECT_TRUE(seen_concurrent);
}

TEST(RateChooser, ExpectedBpsMatchesAirtimeArithmetic) {
  DeferTable empty(sim::seconds(100), true);
  const auto c =
      chooser().choose(empty, kDst, ongoing_until(sim::seconds(1)), 0, 1400);
  const double bits = 8.0 * 1400;
  const double air =
      sim::to_seconds(phy::frame_airtime(phy::WifiRate::k54Mbps, 1400));
  EXPECT_NEAR(c.expected_bps, bits / air, 1.0);
}

}  // namespace
}  // namespace cmap::core
