// Property tests for the MAC decision fast path: seeded random streams of
// conflict-map operations (interferer-list application, ongoing-list
// notes, eager expiry, decision queries) asserting after every step that
// the indexed/intrusive fast paths answer byte-identically to the retained
// reference scans — including §3.5 rate-annotated tables and queries
// landing exactly on TTL / end-time boundaries. Time never rewinds (the
// simulator's invariant), which is what licenses lazy reclamation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/cmap_mac.h"
#include "core/defer_table.h"
#include "core/ongoing_list.h"
#include "sim/random.h"
#include "sim/time.h"

namespace cmap::core {
namespace {

constexpr phy::NodeId kSelf = 0;
constexpr int kNodes = 7;  // small universe => dense collisions

phy::NodeId random_node(sim::Rng& rng, bool allow_broadcast = false) {
  if (allow_broadcast && rng.bernoulli(0.1)) return phy::kBroadcastId;
  return static_cast<phy::NodeId>(rng.uniform_int(0, kNodes - 1));
}

phy::WifiRate random_rate(sim::Rng& rng, bool allow_any) {
  static constexpr phy::WifiRate kRates[] = {
      phy::WifiRate::k6Mbps, phy::WifiRate::k12Mbps, phy::WifiRate::k18Mbps};
  if (allow_any && rng.bernoulli(0.25)) return kAnyRate;
  return kRates[rng.uniform_int(0, 2)];
}

class FuzzHarness {
 public:
  FuzzHarness(std::uint64_t seed, bool annotate)
      : rng_(seed),
        annotate_(annotate),
        table_(kTtl, annotate),
        decider_(ongoing_, table_, kSelf, annotate) {}

  void run(int steps) {
    for (int step = 0; step < steps; ++step) {
      const double dice = rng_.uniform();
      if (dice < 0.30) {
        apply_random_list();
      } else if (dice < 0.55) {
        note_random();
      } else if (dice < 0.65) {
        jump_to_boundary();
      } else if (dice < 0.70) {
        table_.expire(now_);
        ongoing_.expire(now_);
      } else {
        advance();
      }
      check_everything(step);
    }
  }

 private:
  static constexpr sim::Time kTtl = sim::seconds(2);

  void advance() { now_ += rng_.uniform_int(0, sim::milliseconds(300)); }

  void apply_random_list() {
    const phy::NodeId reporter = random_node(rng_);
    std::vector<InterfererEntry> entries;
    const int n = static_cast<int>(rng_.uniform_int(1, 3));
    for (int i = 0; i < n; ++i) {
      InterfererEntry e;
      // Bias toward involving kSelf so both update rules fire often.
      e.source = rng_.bernoulli(0.4) ? kSelf : random_node(rng_);
      e.interferer = rng_.bernoulli(0.4) ? kSelf : random_node(rng_);
      e.source_rate = random_rate(rng_, /*allow_any=*/true);
      e.interferer_rate = random_rate(rng_, /*allow_any=*/true);
      entries.push_back(e);
    }
    table_.apply_interferer_list(kSelf, reporter, entries, now_);
    boundaries_.push_back(now_ + kTtl);
  }

  void note_random() {
    VpDescriptor d;
    d.src = random_node(rng_);
    d.dst = random_node(rng_, /*allow_broadcast=*/true);
    d.data_rate = random_rate(rng_, /*allow_any=*/false);
    // Occasionally a trailer closing the entry at the current time.
    const sim::Time end =
        rng_.bernoulli(0.15)
            ? now_
            : now_ + rng_.uniform_int(1, sim::milliseconds(500));
    ongoing_.note(d, end);
    boundaries_.push_back(end);
  }

  /// Land `now` exactly on a recorded TTL or end-time boundary — the
  /// `expires <= now` / `end_time <= now` edges the fast paths must agree
  /// on to the nanosecond.
  void jump_to_boundary() {
    std::vector<sim::Time> future;
    for (sim::Time b : boundaries_) {
      if (b >= now_) future.push_back(b);
    }
    if (future.empty()) {
      advance();
      return;
    }
    now_ = future[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(future.size()) - 1))];
  }

  void check_everything(int step) {
    // Whole-decision equivalence, several destinations per step.
    for (int i = 0; i < 4; ++i) {
      const phy::NodeId dst = random_node(rng_, /*allow_broadcast=*/true);
      const phy::WifiRate my_rate =
          annotate_ ? random_rate(rng_, /*allow_any=*/true) : kAnyRate;
      const DeferDecision ref = decider_.decide_reference(dst, my_rate, now_);
      const DeferDecision fast = decider_.decide(dst, my_rate, now_);
      ASSERT_EQ(fast.defer, ref.defer)
          << "step " << step << " dst " << dst << " now " << now_;
      if (ref.defer) {
        ASSERT_EQ(fast.until, ref.until)
            << "step " << step << " dst " << dst << " now " << now_;
      }
    }
    // Raw table queries, including pairs that are not ongoing.
    for (int i = 0; i < 4; ++i) {
      const phy::NodeId my_dst = random_node(rng_, true);
      const phy::NodeId p = random_node(rng_);
      const phy::NodeId q = random_node(rng_, true);
      const phy::WifiRate mr = random_rate(rng_, true);
      const phy::WifiRate tr = random_rate(rng_, true);
      ASSERT_EQ(table_.should_defer_reference(my_dst, p, q, now_, mr, tr),
                table_.should_defer(my_dst, p, q, now_, mr, tr))
          << "step " << step << " (" << my_dst << "," << p << "," << q
          << ") now " << now_;
    }
    // Ongoing-list reads vs the allocating snapshot.
    const auto snapshot = ongoing_.active(now_);
    for (phy::NodeId n = 0; n < kNodes; ++n) {
      const bool expect =
          std::any_of(snapshot.begin(), snapshot.end(),
                      [n](const OngoingTx& tx) {
                        return tx.src == n || tx.dst == n;
                      });
      ASSERT_EQ(ongoing_.node_busy(n, now_), expect)
          << "step " << step << " node " << n << " now " << now_;
    }
    {
      const phy::NodeId src = random_node(rng_);
      const phy::NodeId dst = random_node(rng_, true);
      sim::Time expect = 0;
      for (const auto& tx : snapshot) {
        if (tx.src == src && tx.dst == dst) {
          expect = tx.end_time;
          break;
        }
      }
      ASSERT_EQ(ongoing_.end_of(src, dst, now_), expect)
          << "step " << step << " now " << now_;
    }
    // Accounting stays coherent under lazy reclamation.
    ASSERT_EQ(table_.size(), table_.entries().size());
    ASSERT_GE(ongoing_.size(), snapshot.size());
  }

  sim::Rng rng_;
  bool annotate_;
  sim::Time now_ = 0;
  DeferTable table_;
  OngoingList ongoing_;
  DeferDecider decider_;
  std::vector<sim::Time> boundaries_;
};

TEST(DeferDeciderFuzz, FastMatchesReferenceUnannotated) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    FuzzHarness h(seed, /*annotate=*/false);
    h.run(600);
  }
}

TEST(DeferDeciderFuzz, FastMatchesReferenceRateAnnotated) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    FuzzHarness h(seed, /*annotate=*/true);
    h.run(600);
  }
}

// Focused deterministic cases the fuzz relies on statistically.

TEST(DeferDecider, IdleChannelNeverDefers) {
  DeferTable t(sim::seconds(10));
  OngoingList l;
  const DeferDecider d(l, t, kSelf, false);
  EXPECT_FALSE(d.decide(3, kAnyRate, 0).defer);
  EXPECT_FALSE(d.decide_reference(3, kAnyRate, 0).defer);
}

TEST(DeferDecider, OwnTransmissionIsIgnored) {
  DeferTable t(sim::seconds(10));
  OngoingList l;
  VpDescriptor mine;
  mine.src = kSelf;
  mine.dst = 3;
  l.note(mine, sim::seconds(1));
  const DeferDecider d(l, t, kSelf, false);
  // Destination 5 is not a party to our own transmission: clear to send.
  EXPECT_FALSE(d.decide(5, kAnyRate, 0).defer);
}

TEST(DeferDecider, BusyDestinationDefersUntilEarliestConflictEnds) {
  DeferTable t(sim::seconds(10));
  OngoingList l;
  VpDescriptor a;  // 4 -> 3 until 5 ms
  a.src = 4;
  a.dst = 3;
  l.note(a, sim::milliseconds(5));
  VpDescriptor b;  // 3 -> 6 until 2 ms: destination 3 is busy twice over
  b.src = 3;
  b.dst = 6;
  l.note(b, sim::milliseconds(2));
  const DeferDecider d(l, t, kSelf, false);
  const DeferDecision decision = d.decide(3, kAnyRate, 0);
  EXPECT_TRUE(decision.defer);
  EXPECT_EQ(decision.until, sim::milliseconds(2));
  const DeferDecision ref = d.decide_reference(3, kAnyRate, 0);
  EXPECT_TRUE(ref.defer);
  EXPECT_EQ(ref.until, sim::milliseconds(2));
}

TEST(DeferDecider, ConflictMapEntryDefersForUninvolvedDestination) {
  DeferTable t(sim::seconds(10));
  OngoingList l;
  // Rule 2 at kSelf: reporter 2's list says (1, kSelf) conflict — entry
  // (* : 1 -> 2).
  InterfererEntry e;
  e.source = 1;
  e.interferer = kSelf;
  t.apply_interferer_list(kSelf, 2, {e}, 0);
  VpDescriptor d12;  // the victim transmission 1 -> 2 is on the air
  d12.src = 1;
  d12.dst = 2;
  l.note(d12, sim::milliseconds(8));
  const DeferDecider d(l, t, kSelf, false);
  // Destination 5 is idle, but the map forbids transmitting at all.
  const DeferDecision decision = d.decide(5, kAnyRate, sim::milliseconds(1));
  EXPECT_TRUE(decision.defer);
  EXPECT_EQ(decision.until, sim::milliseconds(8));
  EXPECT_EQ(d.decide_reference(5, kAnyRate, sim::milliseconds(1)).defer,
            true);
}

}  // namespace
}  // namespace cmap::core
