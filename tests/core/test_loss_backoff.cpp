#include "core/loss_backoff.h"

#include <gtest/gtest.h>

namespace cmap::core {
namespace {

LossBackoff make() {
  return LossBackoff(sim::milliseconds(5), sim::milliseconds(320), 0.5);
}

TEST(LossBackoff, StartsAtZero) {
  auto b = make();
  EXPECT_EQ(b.cw(), 0);
  sim::Rng rng(1);
  EXPECT_EQ(b.draw(rng), 0);
}

TEST(LossBackoff, HealthyAckKeepsZero) {
  auto b = make();
  b.on_ack_loss_rate(0.1);
  EXPECT_EQ(b.cw(), 0);
}

TEST(LossBackoff, LossAboveThresholdStartsWindow) {
  auto b = make();
  b.on_ack_loss_rate(0.8);
  EXPECT_EQ(b.cw(), sim::milliseconds(5));
}

TEST(LossBackoff, ConsecutiveLossDoubles) {
  auto b = make();
  b.on_ack_loss_rate(0.8);
  b.on_ack_loss_rate(0.9);
  EXPECT_EQ(b.cw(), sim::milliseconds(10));
  b.on_ack_loss_rate(0.9);
  EXPECT_EQ(b.cw(), sim::milliseconds(20));
}

TEST(LossBackoff, CapsAtMax) {
  auto b = make();
  for (int i = 0; i < 20; ++i) b.on_ack_loss_rate(1.0);
  EXPECT_EQ(b.cw(), sim::milliseconds(320));
}

TEST(LossBackoff, HealthyAckResetsAfterGrowth) {
  auto b = make();
  for (int i = 0; i < 5; ++i) b.on_ack_loss_rate(1.0);
  b.on_ack_loss_rate(0.2);
  EXPECT_EQ(b.cw(), 0);
}

TEST(LossBackoff, ThresholdIsExclusive) {
  auto b = make();
  b.on_ack_loss_rate(0.5);  // exactly l_backoff: not "above"
  EXPECT_EQ(b.cw(), 0);
}

TEST(LossBackoff, DrawIsWithinWindow) {
  auto b = make();
  b.on_ack_loss_rate(1.0);
  b.on_ack_loss_rate(1.0);
  sim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const sim::Time d = b.draw(rng);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, b.cw());
  }
}

TEST(LossBackoff, DrawCoversTheWindow) {
  auto b = make();
  b.on_ack_loss_rate(1.0);  // CW = 5 ms
  sim::Rng rng(9);
  sim::Time lo = sim::kTimeForever, hi = 0;
  for (int i = 0; i < 2000; ++i) {
    const sim::Time d = b.draw(rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, sim::milliseconds(1));
  EXPECT_GT(hi, sim::milliseconds(4));
}

}  // namespace
}  // namespace cmap::core
