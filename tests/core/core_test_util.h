// Harness for CMAP end-to-end tests: CmapMac nodes over a controlled
// Friis/no-fading medium with a threshold error model, so collisions and
// captures are deterministic.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/cmap_mac.h"
#include "phy/medium.h"
#include "phy/radio.h"

namespace cmap::core::testing {

class CmapWorld {
 public:
  explicit CmapWorld(double threshold_db = 3.0)
      : model_(std::make_shared<phy::ThresholdErrorModel>(threshold_db)),
        medium_(sim_, std::make_shared<phy::FriisPropagation>(), no_fading(),
                sim::Rng(11)) {}

  static phy::MediumConfig no_fading() {
    phy::MediumConfig m;
    m.fading_sigma_db = 0.0;
    return m;
  }

  CmapMac& add_node(phy::NodeId id, phy::Position pos, CmapConfig cfg = {},
                    phy::RadioConfig rcfg = {}) {
    if (cfg.mode == PhyMode::kIntegrated) rcfg.salvage_enabled = true;
    radios_.push_back(std::make_unique<phy::Radio>(
        sim_, medium_, id, pos, rcfg, model_, sim::Rng(300 + id)));
    macs_.push_back(std::make_unique<CmapMac>(sim_, *radios_.back(), cfg,
                                              sim::Rng(700 + id)));
    received_.emplace_back();
    auto& bucket = received_.back();
    macs_.back()->set_rx_handler(
        [&bucket](const mac::Packet& p, const mac::Mac::RxInfo& info) {
          if (!info.duplicate) bucket.push_back(p);
        });
    return *macs_.back();
  }

  void saturate(CmapMac& m, phy::NodeId src, phy::NodeId dst,
                std::size_t bytes = 1400) {
    auto fill = [this, &m, src, dst, bytes] {
      while (m.queue_depth() < 128) {
        mac::Packet p;
        p.src = src;
        p.dst = dst;
        p.id = ++next_packet_id_;
        p.bytes = bytes;
        if (!m.send(p)) break;
      }
    };
    m.set_drain_handler(fill);
    fill();
  }

  mac::Packet make_packet(phy::NodeId src, phy::NodeId dst,
                          std::size_t bytes = 1400) {
    mac::Packet p;
    p.src = src;
    p.dst = dst;
    p.id = ++next_packet_id_;
    p.bytes = bytes;
    return p;
  }

  sim::Simulator& simulator() { return sim_; }
  phy::Radio& radio(std::size_t i) { return *radios_[i]; }
  CmapMac& mac(std::size_t i) { return *macs_[i]; }
  const std::vector<mac::Packet>& received(std::size_t i) const {
    return received_[i];
  }
  double throughput_mbps(std::size_t i, sim::Time window) const {
    double bits = 0;
    for (const auto& p : received_[i]) bits += 8.0 * p.bytes;
    return bits / sim::to_seconds(window) / 1e6;
  }

 private:
  std::shared_ptr<const phy::ErrorModel> model_;
  sim::Simulator sim_;
  phy::Medium medium_;
  std::vector<std::unique_ptr<phy::Radio>> radios_;
  std::vector<std::unique_ptr<CmapMac>> macs_;
  std::deque<std::vector<mac::Packet>> received_;
  std::uint64_t next_packet_id_ = 0;
};

}  // namespace cmap::core::testing
