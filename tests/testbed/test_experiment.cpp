#include "testbed/experiment.h"

#include <gtest/gtest.h>

#include "testbed/topology_picker.h"

namespace cmap::testbed {
namespace {

const Testbed& shared_testbed() {
  static Testbed tb{TestbedConfig{}};
  return tb;
}

RunConfig quick(Scheme scheme) {
  RunConfig rc;
  rc.scheme = scheme;
  rc.duration = sim::seconds(3);
  rc.warmup = sim::seconds(1);
  return rc;
}

Flow first_potential_flow() {
  TopologyPicker picker(shared_testbed());
  const auto links = picker.potential_links();
  return Flow{links.front().first, links.front().second};
}

TEST(Experiment, SchemeNamesAreDistinct) {
  EXPECT_STRNE(scheme_name(Scheme::kCsma), scheme_name(Scheme::kCmap));
  EXPECT_STRNE(scheme_name(Scheme::kCsmaOffAcks),
               scheme_name(Scheme::kCsmaOffNoAcks));
  EXPECT_TRUE(scheme_is_cmap(Scheme::kCmapWin1));
  EXPECT_FALSE(scheme_is_cmap(Scheme::kCsma));
}

class SingleFlowAllSchemes : public ::testing::TestWithParam<int> {};

TEST_P(SingleFlowAllSchemes, DeliversOnCleanLink) {
  const auto scheme = static_cast<Scheme>(GetParam());
  const auto result =
      run_flows(shared_testbed(), {first_potential_flow()}, quick(scheme));
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_GT(result.flows[0].mbps, 3.0) << scheme_name(scheme);
  EXPECT_LT(result.flows[0].mbps, 6.5) << scheme_name(scheme);
  EXPECT_GT(result.flows[0].unique_packets, 400u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SingleFlowAllSchemes,
                         ::testing::Range(0, 6));

TEST(Experiment, CmapCountersArePopulated) {
  const auto result = run_flows(shared_testbed(), {first_potential_flow()},
                                quick(Scheme::kCmap));
  EXPECT_GT(result.flows[0].vps_sent, 10u);
  EXPECT_GT(result.flows[0].rx_vps_delim, 10u);
  EXPECT_GE(result.flows[0].rx_vps_delim, result.flows[0].rx_vps_header);
}

TEST(Experiment, DcfCountersStayZeroForCmapFields) {
  const auto result = run_flows(shared_testbed(), {first_potential_flow()},
                                quick(Scheme::kCsma));
  EXPECT_EQ(result.flows[0].vps_sent, 0u);
  EXPECT_EQ(result.flows[0].rx_vps_delim, 0u);
}

TEST(Experiment, AggregateIsSumOfFlows) {
  TopologyPicker picker(shared_testbed());
  sim::Rng rng(9);
  const auto pairs = picker.in_range_pairs(1, rng);
  ASSERT_FALSE(pairs.empty());
  const std::vector<Flow> flows = {{pairs[0].s1, pairs[0].r1},
                                   {pairs[0].s2, pairs[0].r2}};
  const auto result = run_flows(shared_testbed(), flows, quick(Scheme::kCmap));
  EXPECT_NEAR(result.aggregate_mbps,
              result.flows[0].mbps + result.flows[1].mbps, 1e-9);
}

TEST(Experiment, MeasurementWindowExcludesWarmup) {
  // A run measured over its warmup-free window reports steady state; with
  // warmup == duration nothing is counted.
  RunConfig rc = quick(Scheme::kCmap);
  rc.warmup = rc.duration;
  const auto result = run_flows(shared_testbed(), {first_potential_flow()}, rc);
  EXPECT_DOUBLE_EQ(result.flows[0].mbps, 0.0);
}

TEST(Experiment, FluentBuilderConfiguresEveryGroupedKnob) {
  const RunConfig rc = RunConfig{}
                           .with_scheme(Scheme::kCsmaOffAcks)
                           .with_duration(sim::seconds(3))
                           .with_warmup(sim::seconds(1))
                           .with_seed(17)
                           .with_packet_bytes(500)
                           .with_per_dest_queues(true)
                           .with_decision_mode(core::DecisionMode::kReference)
                           .with_nvpkt(4)
                           .with_nwindow(2)
                           .with_defer_ttl(sim::seconds(6))
                           .with_ilist_period(sim::milliseconds(250));
  EXPECT_EQ(rc.scheme, Scheme::kCsmaOffAcks);
  EXPECT_EQ(rc.duration, sim::seconds(3));
  EXPECT_EQ(rc.warmup, sim::seconds(1));
  EXPECT_EQ(rc.seed, 17u);
  EXPECT_EQ(rc.packet_bytes, 500u);
  EXPECT_TRUE(rc.per_dest_queues);
  EXPECT_EQ(rc.cmap.decision_mode, core::DecisionMode::kReference);
  EXPECT_EQ(rc.cmap.nvpkt, 4);
  EXPECT_EQ(rc.cmap.nwindow, 2);
  EXPECT_EQ(rc.cmap.defer_ttl, sim::seconds(6));
  EXPECT_EQ(rc.cmap.ilist_period, sim::milliseconds(250));
  // Overrides reach the MAC through the grouped struct.
  World world(shared_testbed(),
              RunConfig{}.with_nvpkt(3).with_defer_ttl(sim::seconds(9)));
  const Flow f = first_potential_flow();
  world.add_node(f.src);
  ASSERT_NE(world.cmap(f.src), nullptr);
  EXPECT_EQ(world.cmap(f.src)->config().nvpkt, 3);
  EXPECT_EQ(world.cmap(f.src)->config().defer_entry_ttl, sim::seconds(9));
}

TEST(Experiment, WorldExposesComponentsForBespokeScenarios) {
  World world(shared_testbed(), quick(Scheme::kCmap));
  const Flow f = first_potential_flow();
  world.add_node(f.src);
  world.add_node(f.dst);
  EXPECT_NE(world.cmap(f.src), nullptr);
  EXPECT_EQ(world.dcf(f.src), nullptr);
  world.add_saturated_flow(f.src, f.dst);
  world.run(sim::seconds(1));
  EXPECT_GT(world.sink(f.dst).unique_packets(), 100u);
}

}  // namespace
}  // namespace cmap::testbed
