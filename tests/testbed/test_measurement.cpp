// The LinkMeasurement subsystem: the tabulated fast path must agree with
// the retained per-pair Monte-Carlo reference within tight tolerances, the
// pair substream derivation must be collision-free, results must not
// depend on the measurement thread count, and the TestbedCache must hand
// back the identical instance on a hit.
#include "testbed/measurement.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "testbed/testbed.h"

namespace cmap::testbed {
namespace {

TestbedConfig config_with_mode(MeasurementMode mode, int num_nodes = 50) {
  TestbedConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.measurement.mode = mode;
  return cfg;
}

// ---- Fading substream derivation (regression: key collisions) ----

TEST(PairStreamId, PreviouslyCollidingPairsGetDistinctStreams) {
  // The old `from * 1000 + to` packing mapped these pairs to one key as
  // soon as a testbed passed 1000 nodes.
  EXPECT_EQ(0u * 1000 + 1005, 1u * 1000 + 5);  // the documented collision
  EXPECT_NE(pair_stream_id(0, 1005), pair_stream_id(1, 5));
  EXPECT_NE(pair_stream_id(2, 2030), pair_stream_id(0, 4030));
  // The streams themselves must differ, not just the ids.
  sim::Rng root(1);
  sim::Rng a = root.substream(0xfade, pair_stream_id(0, 1005));
  sim::Rng b = root.substream(0xfade, pair_stream_id(1, 5));
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(PairStreamId, NoCollisionsAcrossLargePairSpace) {
  // Every directed pair over 1400 node ids (spanning the old 1000-node
  // wrap-around) must map to a unique key.
  std::unordered_set<std::uint64_t> seen;
  const phy::NodeId n = 1400;
  seen.reserve(static_cast<std::size_t>(n) * 4);
  for (phy::NodeId i = 0; i < n; ++i) {
    // Dense near the wrap plus a strided sweep keeps this O(n) per node.
    for (phy::NodeId j : {i + 1, i + 999, i + 1000, i + 1001, i + 1005}) {
      EXPECT_TRUE(seen.insert(pair_stream_id(i, j)).second)
          << "collision at (" << i << ", " << j << ")";
    }
  }
  // Direction matters.
  EXPECT_NE(pair_stream_id(3, 7), pair_stream_id(7, 3));
}

// ---- Fast (tabulated) vs reference (Monte-Carlo) agreement ----

TEST(Measurement, FastMatchesReferenceWithinTolerance) {
  const Testbed fast(config_with_mode(MeasurementMode::kFast));
  // The reference estimator's worst-case stratification error is
  // 1/samples; at the default 100 draws that is exactly the 0.01 pin, so
  // a mid-transition link can sit at 0.00999 with zero headroom. Testing
  // against 400 draws bounds the reference error at 0.0025, leaving the
  // pin real margin while exercising the same per-pair sampling path.
  TestbedConfig ref_cfg = config_with_mode(MeasurementMode::kReference);
  ref_cfg.prr_fading_samples = 400;
  const Testbed ref(ref_cfg);
  const int n = fast.size();

  double max_delta = 0.0;
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(n); ++i) {
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(n); ++j) {
      if (i == j) continue;
      // Signal strengths are mode-independent (same propagation draw).
      EXPECT_DOUBLE_EQ(fast.signal_dbm(i, j), ref.signal_dbm(i, j));
      max_delta = std::max(max_delta,
                           std::abs(fast.prr(i, j) - ref.prr(i, j)));
    }
  }
  EXPECT_LE(max_delta, 0.01) << "tabulated PRR drifted from the reference";

  // Calibration statistics within 1%.
  const auto lc_fast = fast.link_classes();
  const auto lc_ref = ref.link_classes();
  EXPECT_EQ(lc_fast.connected_pairs, lc_ref.connected_pairs);
  EXPECT_NEAR(lc_fast.frac_dead, lc_ref.frac_dead, 0.01);
  EXPECT_NEAR(lc_fast.frac_mid, lc_ref.frac_mid, 0.01);
  EXPECT_NEAR(lc_fast.frac_perfect, lc_ref.frac_perfect, 0.01);
  EXPECT_NEAR(fast.mean_degree(), ref.mean_degree(),
              0.01 * ref.mean_degree());
}

TEST(Measurement, EstimatorsAgreeAcrossTheWholeTransitionBand) {
  // Sweep mean power through the PRR transition: the two pure 1-D
  // estimators must track each other everywhere, not just at testbed
  // links.
  LinkMeasurementSpec spec;
  spec.radio = TestbedConfig::default_radio();
  spec.fading_samples = 400;  // bound the reference error at 1/400
  LinkMeasurement m(spec, std::make_shared<phy::LogDistanceShadowing>(),
                    std::make_shared<phy::NistErrorModel>());
  sim::Rng root(7);
  for (double dbm = -110.0; dbm <= -60.0; dbm += 0.25) {
    const double fast = m.fast_prr(dbm);
    const double ref = m.reference_prr(
        dbm, root.substream(0xfade, pair_stream_id(1, 2)));
    EXPECT_NEAR(fast, ref, 0.01) << "at " << dbm << " dBm";
    EXPECT_GE(fast, 0.0);
    EXPECT_LE(fast, 1.0);
  }
  // Extremes saturate exactly.
  EXPECT_DOUBLE_EQ(m.fast_prr(-300.0), 0.0);
  EXPECT_NEAR(m.fast_prr(-40.0), 1.0, 1e-9);
}

TEST(Measurement, FastPrrIsMonotoneInMeanPower) {
  LinkMeasurementSpec spec;
  spec.radio = TestbedConfig::default_radio();
  LinkMeasurement m(spec, std::make_shared<phy::LogDistanceShadowing>(),
                    std::make_shared<phy::NistErrorModel>());
  double prev = -1.0;
  for (double dbm = -120.0; dbm <= -50.0; dbm += 0.1) {
    const double p = m.fast_prr(dbm);
    EXPECT_GE(p, prev - 1e-12) << "at " << dbm << " dBm";
    prev = p;
  }
}

// ---- Thread-count invariance ----

TEST(Measurement, ResultsIdenticalForAnyThreadCount) {
  for (MeasurementMode mode :
       {MeasurementMode::kFast, MeasurementMode::kReference}) {
    TestbedConfig serial = config_with_mode(mode, 24);
    TestbedConfig sharded = serial;
    sharded.measurement.threads = 4;
    const Testbed a(serial), b(sharded);
    for (phy::NodeId i = 0; i < 24; ++i) {
      for (phy::NodeId j = 0; j < 24; ++j) {
        if (i == j) continue;
        EXPECT_DOUBLE_EQ(a.prr(i, j), b.prr(i, j));
        EXPECT_DOUBLE_EQ(a.signal_dbm(i, j), b.signal_dbm(i, j));
      }
    }
    EXPECT_DOUBLE_EQ(a.signal_percentile(10), b.signal_percentile(10));
    EXPECT_DOUBLE_EQ(a.signal_percentile(90), b.signal_percentile(90));
  }
}

// ---- TestbedCache ----

TEST(TestbedCache, HitsReturnTheIdenticalInstance) {
  TestbedCache cache;
  TestbedConfig cfg;
  cfg.num_nodes = 12;
  const auto a = cache.get(cfg);
  const auto b = cache.get(cfg);
  EXPECT_EQ(a.get(), b.get());  // same object, not a rebuild
  EXPECT_EQ(cache.size(), 1u);

  // Any config difference is a distinct entry...
  TestbedConfig other = cfg;
  other.seed = 99;
  const auto c = cache.get(other);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
  TestbedConfig ref_mode = cfg;
  ref_mode.measurement.mode = MeasurementMode::kReference;
  EXPECT_NE(cache.get(ref_mode).get(), a.get());
  EXPECT_EQ(cache.size(), 3u);

  // ...and a re-request of the first config still hits.
  EXPECT_EQ(cache.get(cfg).get(), a.get());
  EXPECT_EQ(cache.size(), 3u);

  // The measurement thread knob is result-invariant, so it must hit the
  // same entry rather than rebuild the building.
  TestbedConfig threaded = cfg;
  threaded.measurement.threads = 4;
  EXPECT_EQ(cache.get(threaded).get(), a.get());
  EXPECT_EQ(cache.size(), 3u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NE(cache.get(cfg).get(), a.get());  // fresh build after clear
}

TEST(TestbedCache, GlobalCacheIsSharedAndDeterministic) {
  TestbedConfig cfg;
  cfg.num_nodes = 10;
  cfg.seed = 424242;  // private seed to avoid clashing with other tests
  const auto a = TestbedCache::global().get(cfg);
  const auto b = TestbedCache::global().get(cfg);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->size(), 10);
}

}  // namespace
}  // namespace cmap::testbed
