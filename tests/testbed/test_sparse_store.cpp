// The sparse pair-state store (MeasurementStore::kSparse) must be an
// invisible representation change: every query a dense-store testbed can
// answer — per-pair PRR/signal, percentiles, predicates, link statistics,
// the potential-link list — comes back identical from the sparse store,
// including lazily-answered pairs outside the stored CSR.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "testbed/testbed.h"

namespace cmap::testbed {
namespace {

TestbedConfig sparse_config(TestbedConfig cfg = {}) {
  cfg.measurement.store = MeasurementStore::kSparse;
  return cfg;
}

class SparseStoreEquality : public ::testing::Test {
 protected:
  // One building, both representations, shared across the suite's tests.
  static const Testbed& dense() {
    static Testbed tb{TestbedConfig{}};
    return tb;
  }
  static const Testbed& sparse_tb() {
    static Testbed tb{sparse_config()};
    return tb;
  }
};

TEST_F(SparseStoreEquality, EveryDirectedPairAgreesExactly) {
  const int n = dense().size();
  ASSERT_EQ(sparse_tb().size(), n);
  for (phy::NodeId a = 0; a < static_cast<phy::NodeId>(n); ++a) {
    for (phy::NodeId b = 0; b < static_cast<phy::NodeId>(n); ++b) {
      if (a == b) continue;
      ASSERT_EQ(sparse_tb().prr(a, b), dense().prr(a, b))
          << "prr " << a << "->" << b;
      ASSERT_EQ(sparse_tb().signal_dbm(a, b), dense().signal_dbm(a, b))
          << "signal " << a << "->" << b;
    }
  }
}

TEST_F(SparseStoreEquality, PercentilesAndPredicatesAgree) {
  for (const double p : {0.0, 10.0, 37.5, 50.0, 90.0, 100.0}) {
    EXPECT_EQ(sparse_tb().signal_percentile(p), dense().signal_percentile(p));
  }
  const int n = dense().size();
  for (phy::NodeId a = 0; a < static_cast<phy::NodeId>(n); ++a) {
    for (phy::NodeId b = 0; b < static_cast<phy::NodeId>(n); ++b) {
      if (a == b) continue;
      ASSERT_EQ(sparse_tb().in_range(a, b), dense().in_range(a, b));
      ASSERT_EQ(sparse_tb().potential_link(a, b), dense().potential_link(a, b));
      ASSERT_EQ(sparse_tb().strong_signal(a, b), dense().strong_signal(a, b));
    }
  }
}

TEST_F(SparseStoreEquality, AggregateStatisticsAgree) {
  const auto d = dense().link_classes();
  const auto s = sparse_tb().link_classes();
  EXPECT_EQ(s.connected_pairs, d.connected_pairs);
  EXPECT_EQ(s.frac_dead, d.frac_dead);
  EXPECT_EQ(s.frac_mid, d.frac_mid);
  EXPECT_EQ(s.frac_perfect, d.frac_perfect);
  EXPECT_EQ(sparse_tb().mean_degree(), dense().mean_degree());
  EXPECT_EQ(sparse_tb().potential_links(), dense().potential_links());
}

TEST_F(SparseStoreEquality, NeighborViewsMatchTheMatrices) {
  const int n = dense().size();
  const double floor = dense().config().medium.delivery_floor_dbm;
  for (const Testbed* tb : {&dense(), &sparse_tb()}) {
    for (phy::NodeId a = 0; a < static_cast<phy::NodeId>(n); ++a) {
      std::vector<phy::NodeId> conn, pot;
      for (phy::NodeId b = 0; b < static_cast<phy::NodeId>(n); ++b) {
        if (a == b) continue;
        if (tb->signal_dbm(a, b) >= floor) conn.push_back(b);
        if (tb->potential_link(a, b)) pot.push_back(b);
      }
      const auto conn_view = tb->connected_neighbors(a);
      const auto pot_view = tb->potential_neighbors(a);
      ASSERT_TRUE(std::equal(conn.begin(), conn.end(), conn_view.begin(),
                             conn_view.end()));
      ASSERT_TRUE(std::equal(pot.begin(), pot.end(), pot_view.begin(),
                             pot_view.end()));
    }
  }
}

TEST_F(SparseStoreEquality, SparseStoreHoldsOnlyConnectedPairs) {
  EXPECT_TRUE(sparse_tb().sparse());
  EXPECT_FALSE(dense().sparse());
  const int n = dense().size();
  EXPECT_EQ(static_cast<int>(sparse_tb().stored_links()),
            dense().link_classes().connected_pairs);
  EXPECT_LT(sparse_tb().stored_links(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1));
}

TEST(SparseStore, ReferenceModeAlsoAgrees) {
  // The lazy path must reproduce the per-pair Monte-Carlo substreams too.
  TestbedConfig cfg;
  cfg.num_nodes = 24;
  cfg.seed = 5;
  cfg.measurement.mode = MeasurementMode::kReference;
  Testbed d(cfg);
  Testbed s(sparse_config(cfg));
  for (phy::NodeId a = 0; a < 24; ++a) {
    for (phy::NodeId b = 0; b < 24; ++b) {
      if (a == b) continue;
      ASSERT_EQ(s.prr(a, b), d.prr(a, b)) << a << "->" << b;
      ASSERT_EQ(s.signal_dbm(a, b), d.signal_dbm(a, b)) << a << "->" << b;
    }
  }
  EXPECT_EQ(s.potential_links(), d.potential_links());
}

TEST(SparseStore, ThreadedMeasurementIsIdentical) {
  TestbedConfig base = sparse_config();
  base.num_nodes = 30;
  base.seed = 3;
  Testbed one(base);
  TestbedConfig threaded = base;
  threaded.measurement.threads = 4;
  Testbed four(threaded);
  EXPECT_EQ(one.stored_links(), four.stored_links());
  for (phy::NodeId a = 0; a < 30; ++a) {
    for (phy::NodeId b = 0; b < 30; ++b) {
      if (a == b) continue;
      ASSERT_EQ(one.prr(a, b), four.prr(a, b));
      ASSERT_EQ(one.signal_dbm(a, b), four.signal_dbm(a, b));
    }
  }
}

}  // namespace
}  // namespace cmap::testbed
