// Validates the testbed substitute against the paper's §5.1 measurements:
// link-class fractions, mean degree, and the consistency of the Fig. 11
// predicates.
#include "testbed/testbed.h"

#include <gtest/gtest.h>

namespace cmap::testbed {
namespace {

const Testbed& shared_testbed() {
  static Testbed tb{TestbedConfig{}};
  return tb;
}

TEST(Testbed, PositionsWithinFloorAndSeparated) {
  const auto& tb = shared_testbed();
  for (int i = 0; i < tb.size(); ++i) {
    const auto& p = tb.position(i);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, tb.config().width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, tb.config().height_m);
    for (int j = i + 1; j < tb.size(); ++j) {
      EXPECT_GT(phy::distance(p, tb.position(j)), 1.99);
    }
  }
}

TEST(Testbed, DeterministicForSameSeed) {
  TestbedConfig cfg;
  cfg.num_nodes = 12;
  Testbed a(cfg), b(cfg);
  for (phy::NodeId i = 0; i < 12; ++i) {
    for (phy::NodeId j = 0; j < 12; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(a.prr(i, j), b.prr(i, j));
      EXPECT_DOUBLE_EQ(a.signal_dbm(i, j), b.signal_dbm(i, j));
    }
  }
}

TEST(Testbed, DifferentSeedsDifferentBuildings) {
  TestbedConfig c1, c2;
  c1.num_nodes = c2.num_nodes = 12;
  c2.seed = 99;
  Testbed a(c1), b(c2);
  int identical = 0;
  for (phy::NodeId i = 0; i < 12; ++i) {
    for (phy::NodeId j = 0; j < 12; ++j) {
      if (i != j && a.signal_dbm(i, j) == b.signal_dbm(i, j)) ++identical;
    }
  }
  EXPECT_LT(identical, 5);
}

TEST(Testbed, CachedPotentialLinksMatchThePredicate) {
  // The precomputed list is exactly the predicate's truth set, in (from,
  // to) lexicographic order.
  const auto& tb = shared_testbed();
  const auto& links = tb.potential_links();
  std::size_t expected = 0;
  auto it = links.begin();
  for (phy::NodeId a = 0; a < static_cast<phy::NodeId>(tb.size()); ++a) {
    for (phy::NodeId b = 0; b < static_cast<phy::NodeId>(tb.size()); ++b) {
      if (a == b) continue;
      if (!tb.potential_link(a, b)) continue;
      ++expected;
      ASSERT_NE(it, links.end());
      EXPECT_EQ(it->first, a);
      EXPECT_EQ(it->second, b);
      ++it;
    }
  }
  EXPECT_EQ(links.size(), expected);
  EXPECT_EQ(it, links.end());
}

TEST(TestbedDeathTest, OverDenseFloorFailsFastWithAClearError) {
  // 2 m min separation on a 5 x 5 m floor caps feasible placements far
  // below 100 nodes; the bounded rejection loop must abort with a
  // diagnostic instead of spinning forever.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TestbedConfig cfg;
  cfg.num_nodes = 100;
  cfg.width_m = 5.0;
  cfg.height_m = 5.0;
  EXPECT_DEATH(Testbed{cfg}, "too dense");
}

TEST(Testbed, LinkClassesMatchPaperStatistics) {
  // §5.1: ~68% PRR<0.1, ~12% in (0.1,1), ~20% PRR=1 of connected pairs.
  // Loose bands — the claim is qualitative shape, not exact fractions.
  const auto lc = shared_testbed().link_classes();
  EXPECT_GT(lc.connected_pairs, 800);
  EXPECT_GT(lc.frac_dead, 0.45);
  EXPECT_LT(lc.frac_dead, 0.85);
  EXPECT_GT(lc.frac_mid, 0.03);
  EXPECT_LT(lc.frac_mid, 0.30);
  EXPECT_GT(lc.frac_perfect, 0.10);
  EXPECT_LT(lc.frac_perfect, 0.40);
}

TEST(Testbed, MeanDegreeNearPaperValue) {
  // Paper: mean degree 15.2 over PRR>0.1 neighbours.
  const double deg = shared_testbed().mean_degree();
  EXPECT_GT(deg, 8.0);
  EXPECT_LT(deg, 25.0);
}

TEST(Testbed, PrrIsWithinUnitInterval) {
  const auto& tb = shared_testbed();
  for (phy::NodeId i = 0; i < 10; ++i) {
    for (phy::NodeId j = 0; j < 10; ++j) {
      if (i == j) continue;
      EXPECT_GE(tb.prr(i, j), 0.0);
      EXPECT_LE(tb.prr(i, j), 1.0);
    }
  }
}

TEST(Testbed, SignalPercentilesAreMonotone) {
  const auto& tb = shared_testbed();
  EXPECT_LE(tb.signal_percentile(10), tb.signal_percentile(50));
  EXPECT_LE(tb.signal_percentile(50), tb.signal_percentile(90));
}

TEST(Testbed, PotentialLinkImpliesInRange) {
  const auto& tb = shared_testbed();
  int potential = 0;
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(tb.size()); ++i) {
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(tb.size()); ++j) {
      if (i == j) continue;
      if (tb.potential_link(i, j)) {
        ++potential;
        EXPECT_TRUE(tb.in_range(i, j));
      }
    }
  }
  // The testbed must offer a usable pool of routable links.
  EXPECT_GT(potential, 50);
}

TEST(Testbed, StrongerSignalMeansHigherPrrOnAverage) {
  const auto& tb = shared_testbed();
  double strong_sum = 0, weak_sum = 0;
  int strong_n = 0, weak_n = 0;
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(tb.size()); ++i) {
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(tb.size()); ++j) {
      if (i == j) continue;
      const double s = tb.signal_dbm(i, j);
      if (s > -80) {
        strong_sum += tb.prr(i, j);
        ++strong_n;
      } else if (s > -104 && s < -90) {
        weak_sum += tb.prr(i, j);
        ++weak_n;
      }
    }
  }
  ASSERT_GT(strong_n, 10);
  ASSERT_GT(weak_n, 10);
  EXPECT_GT(strong_sum / strong_n, weak_sum / weak_n + 0.3);
}

TEST(Testbed, PredicatesMatchRecomputedPercentiles) {
  // The link predicates now use p10/p90 cached at measurement time; they
  // must be indistinguishable from recomputing signal_percentile(10/90)
  // on every call (the old, per-call behaviour).
  const auto& tb = shared_testbed();
  const double p10 = tb.signal_percentile(10.0);
  const double p90 = tb.signal_percentile(90.0);
  for (phy::NodeId a = 0; a < static_cast<phy::NodeId>(tb.size()); ++a) {
    for (phy::NodeId b = 0; b < static_cast<phy::NodeId>(tb.size()); ++b) {
      if (a == b) continue;
      const bool in_range = tb.prr(a, b) > 0.2 && tb.prr(b, a) > 0.2 &&
                            tb.signal_dbm(a, b) >= p10 &&
                            tb.signal_dbm(b, a) >= p10;
      const bool potential = tb.prr(a, b) > 0.9 && tb.prr(b, a) > 0.9 &&
                             tb.signal_dbm(a, b) >= p10 &&
                             tb.signal_dbm(b, a) >= p10;
      ASSERT_EQ(tb.in_range(a, b), in_range) << a << "," << b;
      ASSERT_EQ(tb.potential_link(a, b), potential) << a << "," << b;
      ASSERT_EQ(tb.strong_signal(a, b), tb.signal_dbm(a, b) >= p90)
          << a << "," << b;
    }
  }
}

class TestbedSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(TestbedSeedSweep, EveryBuildingOffersExperimentMaterial) {
  TestbedConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  Testbed tb(cfg);
  const auto lc = tb.link_classes();
  EXPECT_GT(lc.connected_pairs, 500) << "seed " << GetParam();
  EXPECT_GT(lc.frac_perfect, 0.05) << "seed " << GetParam();
  EXPECT_GT(tb.mean_degree(), 5.0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TestbedSeedSweep, ::testing::Range(1, 6));

}  // namespace
}  // namespace cmap::testbed
