// Each picker must return configurations satisfying its Fig. 11 / §5
// constraints — verified against the testbed's own predicates.
#include "testbed/topology_picker.h"

#include <gtest/gtest.h>

#include <set>

namespace cmap::testbed {
namespace {

const Testbed& shared_testbed() {
  static Testbed tb{TestbedConfig{}};
  return tb;
}

TEST(Picker, ExposedPairsSatisfyAllConstraints) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(1);
  const auto pairs = picker.exposed_pairs(20, rng);
  ASSERT_GT(pairs.size(), 3u);  // the building offers such configurations
  for (const auto& p : pairs) {
    EXPECT_TRUE(tb.in_range(p.s1, p.s2));
    EXPECT_TRUE(tb.potential_link(p.s1, p.r1));
    EXPECT_TRUE(tb.potential_link(p.s2, p.r2));
    EXPECT_TRUE(tb.strong_signal(p.s1, p.r1));
    EXPECT_TRUE(tb.strong_signal(p.s2, p.r2));
    // All cross pairs weak.
    EXPECT_FALSE(tb.strong_signal(p.s1, p.r2));
    EXPECT_FALSE(tb.strong_signal(p.s2, p.r1));
    EXPECT_FALSE(tb.strong_signal(p.s1, p.s2));
    EXPECT_FALSE(tb.strong_signal(p.r1, p.r2));
  }
}

TEST(Picker, InRangePairsSatisfyConstraints) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(2);
  const auto pairs = picker.in_range_pairs(20, rng);
  ASSERT_GT(pairs.size(), 10u);
  for (const auto& p : pairs) {
    EXPECT_TRUE(tb.in_range(p.s1, p.s2));
    EXPECT_TRUE(tb.potential_link(p.s1, p.r1));
    EXPECT_TRUE(tb.potential_link(p.s2, p.r2));
  }
}

TEST(Picker, HiddenPairsHaveDeafSendersAndSharedReceivers) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(3);
  const auto pairs = picker.hidden_pairs(20, rng);
  ASSERT_GT(pairs.size(), 0u);
  for (const auto& p : pairs) {
    EXPECT_FALSE(tb.in_range(p.s1, p.s2));
    EXPECT_TRUE(tb.potential_link(p.s1, p.r1));
    EXPECT_TRUE(tb.potential_link(p.s2, p.r2));
    EXPECT_TRUE(tb.potential_link(p.s1, p.r2));
    EXPECT_TRUE(tb.potential_link(p.s2, p.r1));
  }
}

TEST(Picker, PairsAreDistinctNodes) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(4);
  for (const auto& p : picker.in_range_pairs(30, rng)) {
    std::set<phy::NodeId> ids = {p.s1, p.r1, p.s2, p.r2};
    EXPECT_EQ(ids.size(), 4u);
  }
}

TEST(Picker, ApScenarioRespectsRegionAndRangeRules) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(5);
  for (int n = 3; n <= 6; ++n) {
    const auto sc = picker.ap_scenario(n, rng);
    if (!sc) continue;  // some buildings can't host 6 mutually-deaf APs
    EXPECT_EQ(static_cast<int>(sc->cells.size()), n);
    for (std::size_t i = 0; i < sc->cells.size(); ++i) {
      EXPECT_TRUE(tb.potential_link(sc->cells[i].ap, sc->cells[i].client));
      for (std::size_t j = i + 1; j < sc->cells.size(); ++j) {
        EXPECT_FALSE(tb.in_range(sc->cells[i].ap, sc->cells[j].ap));
      }
    }
  }
}

TEST(Picker, ApScenarioExistsForThreeAps) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(6);
  EXPECT_TRUE(picker.ap_scenario(3, rng).has_value());
}

TEST(Picker, MeshScenarioLinksArePotential) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(7);
  const auto sc = picker.mesh_scenario(3, rng);
  ASSERT_TRUE(sc.has_value());
  ASSERT_EQ(sc->a.size(), 3u);
  ASSERT_EQ(sc->b.size(), 3u);
  std::set<phy::NodeId> ids = {sc->s};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(tb.potential_link(sc->s, sc->a[i]));
    EXPECT_TRUE(tb.potential_link(sc->a[i], sc->b[i]));
    ids.insert(sc->a[i]);
    ids.insert(sc->b[i]);
  }
  EXPECT_EQ(ids.size(), 7u);  // all participants distinct
}

TEST(Picker, InterfererTriplesAreValid) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(8);
  const auto triples = picker.interferer_triples(50, rng);
  ASSERT_EQ(triples.size(), 50u);
  for (const auto& t : triples) {
    EXPECT_TRUE(tb.potential_link(t.s, t.r));
    EXPECT_NE(t.i, t.s);
    EXPECT_NE(t.i, t.r);
  }
}

TEST(Picker, SamplingIsDeterministicPerSeed) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng r1(42), r2(42), r3(43);
  const auto a = picker.in_range_pairs(10, r1);
  const auto b = picker.in_range_pairs(10, r2);
  const auto c = picker.in_range_pairs(10, r3);
  ASSERT_EQ(a.size(), b.size());
  bool same_ab = true, same_ac = a.size() == c.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    same_ab = same_ab && a[i].s1 == b[i].s1 && a[i].r1 == b[i].r1 &&
              a[i].s2 == b[i].s2 && a[i].r2 == b[i].r2;
    if (same_ac && i < c.size()) {
      same_ac = a[i].s1 == c[i].s1 && a[i].r1 == c[i].r1;
    }
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac && a.size() > 3);
}

TEST(Picker, InterfererTriplesTerminateOnDegenerateTestbed) {
  // Two nodes on a tiny floor: they form a potential link, but every
  // interferer candidate equals the sender or the receiver. The rejection
  // loop used to spin forever here; it must now give up and return what
  // it found (nothing).
  TestbedConfig cfg;
  cfg.num_nodes = 2;
  cfg.width_m = 5.0;
  cfg.height_m = 4.0;
  // Deterministic symmetric channel: with only two connected signals the
  // p10 gate interpolates above the weaker one unless both directions are
  // exactly equal.
  cfg.prop.shadow_sigma_db = 0.0;
  cfg.prop.asym_sigma_db = 0.0;
  Testbed tb(cfg);
  TopologyPicker picker(tb);
  sim::Rng rng(9);
  ASSERT_FALSE(picker.potential_links().empty())
      << "degenerate fixture needs a link for the loop to spin on";
  EXPECT_TRUE(picker.interferer_triples(5, rng).empty());
}

TEST(Picker, NonPositiveCountsYieldEmptySelections) {
  // A negative count used to be cast to size_t and silently select the
  // WHOLE candidate pool.
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  sim::Rng rng(10);
  EXPECT_TRUE(picker.in_range_pairs(-1, rng).empty());
  EXPECT_TRUE(picker.exposed_pairs(-100, rng).empty());
  EXPECT_TRUE(picker.hidden_pairs(0, rng).empty());
  EXPECT_TRUE(picker.interferer_triples(-3, rng).empty());
}

TEST(Picker, PotentialLinksListMatchesPredicate) {
  const auto& tb = shared_testbed();
  TopologyPicker picker(tb);
  for (const auto& [a, b] : picker.potential_links()) {
    EXPECT_TRUE(tb.potential_link(a, b));
  }
}

}  // namespace
}  // namespace cmap::testbed
