#include "dynamics/mobility.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "phy/error_model.h"
#include "phy/medium.h"
#include "phy/propagation.h"
#include "phy/radio.h"
#include "sim/simulator.h"

namespace cmap::dynamics {
namespace {

constexpr double kWidth = 70.0;
constexpr double kHeight = 40.0;

// A bare phy world: N radios scattered on the floor, no MACs, no traffic —
// mobility only needs positions and the medium's cache maintenance.
struct MiniWorld {
  explicit MiniWorld(int n, phy::MediumConfig mcfg = {})
      : propagation(std::make_shared<phy::FriisPropagation>()),
        medium(sim, propagation, mcfg, sim::Rng(11)) {
    auto error = std::make_shared<phy::NistErrorModel>();
    sim::Rng place(42);
    for (int i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(
          sim, medium, static_cast<phy::NodeId>(i),
          phy::Position{place.uniform(0.0, kWidth),
                        place.uniform(0.0, kHeight)},
          phy::RadioConfig{}, error, sim::Rng(100 + i)));
    }
  }

  sim::Simulator sim;
  std::shared_ptr<const phy::PropagationModel> propagation;
  phy::Medium medium;
  std::vector<std::unique_ptr<phy::Radio>> radios;
};

MobilityConfig mobility_config(MobilityPattern pattern,
                               double fraction = 1.0) {
  MobilityConfig m;
  m.pattern = pattern;
  m.mobile_fraction = fraction;
  m.width_m = kWidth;
  m.height_m = kHeight;
  m.tick = sim::milliseconds(100);
  m.seed = 5;
  return m;
}

std::vector<phy::Position> positions(const MiniWorld& w) {
  std::vector<phy::Position> out;
  for (const auto& r : w.radios) out.push_back(r->position());
  return out;
}

void expect_in_bounds(const MiniWorld& w) {
  for (const auto& r : w.radios) {
    EXPECT_GE(r->position().x, 0.0);
    EXPECT_LE(r->position().x, kWidth);
    EXPECT_GE(r->position().y, 0.0);
    EXPECT_LE(r->position().y, kHeight);
  }
}

class MobilityPatterns : public ::testing::TestWithParam<MobilityPattern> {};

TEST_P(MobilityPatterns, MovesNodesAndStaysInBounds) {
  MiniWorld w(10);
  const auto before = positions(w);
  MobilityModel model(w.sim, w.medium, mobility_config(GetParam()),
                      sim::Rng(3));
  model.start();
  w.sim.run_until(sim::seconds(20));
  EXPECT_GT(model.moves(), 0u);
  expect_in_bounds(w);
  bool any_moved = false;
  for (std::size_t i = 0; i < w.radios.size(); ++i) {
    const double d = phy::distance(before[i], w.radios[i]->position());
    any_moved = any_moved || d > 0.5;
  }
  EXPECT_TRUE(any_moved);
}

TEST_P(MobilityPatterns, TrajectoriesAreDeterministic) {
  auto run_once = [&] {
    MiniWorld w(8);
    MobilityModel model(w.sim, w.medium, mobility_config(GetParam()),
                        sim::Rng(3));
    model.start();
    w.sim.run_until(sim::seconds(10));
    return positions(w);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST_P(MobilityPatterns, GainCacheTracksTheMotion) {
  // After an arbitrary amount of motion the cached mean gains must equal
  // fresh propagation-model queries at the final positions — the cache
  // maintenance contract mobility leans on.
  MiniWorld w(12);
  MobilityModel model(w.sim, w.medium, mobility_config(GetParam()),
                      sim::Rng(3));
  model.start();
  w.sim.run_until(sim::seconds(15));
  for (const auto& from : w.radios) {
    for (const auto& to : w.radios) {
      if (from->id() == to->id()) continue;
      const double direct = w.propagation->rx_power_dbm(
          from->config().tx_power_dbm, from->id(), to->id(), from->position(),
          to->position());
      EXPECT_DOUBLE_EQ(w.medium.mean_rx_power_dbm(from->id(), to->id()),
                       direct);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, MobilityPatterns,
                         ::testing::Values(MobilityPattern::kWaypoint,
                                           MobilityPattern::kDrift,
                                           MobilityPattern::kChurn));

TEST(Mobility, MobileFractionLeavesTheRestStationary) {
  MiniWorld w(10);
  const auto before = positions(w);
  MobilityModel model(w.sim, w.medium,
                      mobility_config(MobilityPattern::kWaypoint, 0.5),
                      sim::Rng(3));
  model.start();
  w.sim.run_until(sim::seconds(20));
  EXPECT_EQ(model.mobile_nodes().size(), 5u);
  int stationary = 0;
  for (std::size_t i = 0; i < w.radios.size(); ++i) {
    const phy::NodeId id = w.radios[i]->id();
    const bool mobile =
        std::find(model.mobile_nodes().begin(), model.mobile_nodes().end(),
                  id) != model.mobile_nodes().end();
    const double d = phy::distance(before[i], w.radios[i]->position());
    if (!mobile) {
      EXPECT_DOUBLE_EQ(d, 0.0) << "stationary node " << id << " moved";
      ++stationary;
    }
  }
  EXPECT_EQ(stationary, 5);
}

TEST(Mobility, ChurnDwellsBetweenTeleports) {
  // Teleports are rare events (mean dwell 4 s, 100 ms ticks): far fewer
  // moves than ticks, and each move is a long jump on average.
  MiniWorld w(6);
  MobilityConfig cfg = mobility_config(MobilityPattern::kChurn);
  MobilityModel model(w.sim, w.medium, cfg, sim::Rng(3));
  model.start();
  w.sim.run_until(sim::seconds(20));
  const std::uint64_t ticks = 20u * 10u * 6u;  // 20 s, 10 Hz, 6 nodes
  EXPECT_GT(model.moves(), 0u);
  EXPECT_LT(model.moves(), ticks / 5);
}

TEST(Mobility, NoGainCacheMediumIsSupported) {
  // The reference (cache-off) medium must tolerate motion: positions move,
  // queries answer from the propagation model directly.
  phy::MediumConfig mcfg;
  mcfg.enable_gain_cache = false;
  MiniWorld w(6, mcfg);
  MobilityModel model(w.sim, w.medium,
                      mobility_config(MobilityPattern::kDrift), sim::Rng(3));
  model.start();
  w.sim.run_until(sim::seconds(5));
  EXPECT_GT(model.moves(), 0u);
  expect_in_bounds(w);
}

}  // namespace
}  // namespace cmap::dynamics
