// End-to-end wiring of the dynamics subsystem through testbed::World: a
// RunConfig carrying a DynamicsConfig must yield a live world whose nodes
// move and whose channel epochs advance while traffic flows.
#include "dynamics/dynamics.h"

#include <gtest/gtest.h>

#include "testbed/experiment.h"
#include "testbed/topology_picker.h"
#include "testbed/testbed.h"

namespace cmap::dynamics {
namespace {

const testbed::Testbed& shared_testbed() {
  static testbed::Testbed tb{testbed::TestbedConfig{}};
  return tb;
}

DynamicsConfig full_dynamics() {
  DynamicsConfig dc;
  MobilityConfig m;
  m.pattern = MobilityPattern::kWaypoint;
  m.mobile_fraction = 1.0;
  m.tick = sim::milliseconds(100);
  dc.mobility = m;
  ChannelConfig ch;
  ch.sigma_db = 2.0;
  ch.epoch = sim::milliseconds(250);
  dc.channel = ch;
  return dc;
}

TEST(WorldDynamics, StaticRunHasNoDynamics) {
  testbed::RunConfig config;
  config.duration = sim::seconds(1);
  testbed::World world(shared_testbed(), config);
  EXPECT_EQ(world.dynamics(), nullptr);
}

TEST(WorldDynamics, NodesMoveAndEpochsAdvanceDuringARun) {
  testbed::RunConfig config;
  config.duration = sim::seconds(3);
  config.warmup = sim::seconds(1);
  config.dynamics = full_dynamics();
  testbed::World world(shared_testbed(), config);
  world.add_saturated_flow(0, 1);
  world.add_saturated_flow(2, 3);
  const phy::Position start = world.radio(0).position();
  world.run(config.duration);

  ASSERT_NE(world.dynamics(), nullptr);
  ASSERT_NE(world.dynamics()->mobility(), nullptr);
  ASSERT_NE(world.dynamics()->channel(), nullptr);
  EXPECT_GT(world.dynamics()->mobility()->moves(), 0u);
  // 3 s of 250 ms epochs -> 12 steps (the chain stops with the clock).
  EXPECT_GE(world.dynamics()->channel()->epoch(), 10);
  EXPECT_GT(phy::distance(start, world.radio(0).position()), 0.0);
}

TEST(WorldDynamics, MobilityBoundsDefaultToTheTestbedFloor) {
  testbed::RunConfig config;
  config.duration = sim::seconds(5);
  config.dynamics = full_dynamics();
  testbed::World world(shared_testbed(), config);
  // config() reports the resolved bounds, not the 0x0 "fill me in" input.
  EXPECT_EQ(world.config().dynamics->mobility->width_m,
            shared_testbed().config().width_m);
  EXPECT_EQ(world.config().dynamics->mobility->height_m,
            shared_testbed().config().height_m);
  world.add_saturated_flow(0, 1);
  world.run(config.duration);
  for (phy::NodeId id : {0u, 1u}) {
    const phy::Position& p = world.radio(id).position();
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, shared_testbed().config().width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, shared_testbed().config().height_m);
  }
}

TEST(WorldDynamics, ReplicatesSeeDifferentChannelRealizations) {
  auto offset_after = [](std::uint64_t seed) {
    testbed::RunConfig config;
    config.duration = sim::seconds(1);
    config.seed = seed;
    config.dynamics = full_dynamics();
    testbed::World world(shared_testbed(), config);
    world.add_saturated_flow(0, 1);
    world.run(config.duration);
    return world.dynamics()->channel()->offset_db(0, 1);
  };
  EXPECT_NE(offset_after(1), offset_after(2));
}

TEST(WorldDynamics, RelearningOverridesReachTheMac) {
  testbed::RunConfig config;
  config.scheme = testbed::Scheme::kCmap;
  config.duration = sim::seconds(1);
  config.with_defer_ttl(sim::seconds(5))
      .with_ilist_period(sim::milliseconds(500));
  testbed::World world(shared_testbed(), config);
  world.add_saturated_flow(0, 1);
  ASSERT_NE(world.cmap(0), nullptr);
  EXPECT_EQ(world.cmap(0)->config().defer_entry_ttl, sim::seconds(5));
  EXPECT_EQ(world.cmap(0)->config().ilist_period, sim::milliseconds(500));
}

TEST(WorldDynamics, MobileRunExercisesRelearningEndToEnd) {
  // CMAP over a hidden-terminal pair (collisions by construction) on a
  // slowly moving floor with a short TTL and fast ilist cadence: the
  // conflict map must actually be (re)taught during the run — interferer
  // lists broadcast while nodes move.
  testbed::TopologyPicker picker(shared_testbed());
  sim::Rng draw(1);
  const auto pairs = picker.hidden_pairs(1, draw);
  ASSERT_FALSE(pairs.empty());
  const auto& p = pairs[0];

  testbed::RunConfig config;
  config.scheme = testbed::Scheme::kCmap;
  config.duration = sim::seconds(10);
  config.warmup = sim::seconds(2);
  config.with_defer_ttl(sim::seconds(4))
      .with_ilist_period(sim::milliseconds(500));
  DynamicsConfig dc = full_dynamics();
  // Gentle drift: the geometry evolves without dissolving the conflict
  // before the receivers have accumulated the evidence to report it.
  dc.mobility->speed_min_mps = 0.2;
  dc.mobility->speed_max_mps = 0.6;
  config.dynamics = dc;
  testbed::World world(shared_testbed(), config);
  world.add_saturated_flow(p.s1, p.r1);
  world.add_saturated_flow(p.s2, p.r2);
  world.run(config.duration);

  std::uint64_t ilists_sent = 0;
  for (phy::NodeId id : {p.s1, p.r1, p.s2, p.r2}) {
    ilists_sent += world.cmap(id)->counters().ilists_sent;
  }
  EXPECT_GT(ilists_sent, 0u);
  EXPECT_GT(world.dynamics()->mobility()->moves(), 0u);
}

}  // namespace
}  // namespace cmap::dynamics
