#include "dynamics/channel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "phy/propagation.h"

namespace cmap::dynamics {
namespace {

std::shared_ptr<const phy::PropagationModel> base_model() {
  return std::make_shared<phy::FriisPropagation>();
}

ChannelConfig config(double sigma = 3.0, double rho = 0.9,
                     std::uint64_t seed = 7) {
  ChannelConfig c;
  c.sigma_db = sigma;
  c.correlation = rho;
  c.seed = seed;
  return c;
}

TEST(DynamicShadowing, EpochZeroAddsTheStationaryOffset) {
  DynamicShadowing dyn(base_model(), config());
  const phy::Position a{0, 0}, b{50, 0};
  const double base = base_model()->rx_power_dbm(10.0, 1, 2, a, b);
  EXPECT_DOUBLE_EQ(dyn.rx_power_dbm(10.0, 1, 2, a, b),
                   base + dyn.offset_db(1, 2));
}

TEST(DynamicShadowing, OffsetIsSymmetricPerUnorderedPair) {
  DynamicShadowing dyn(base_model(), config());
  dyn.advance_epoch();
  EXPECT_DOUBLE_EQ(dyn.offset_db(3, 9), dyn.offset_db(9, 3));
}

TEST(DynamicShadowing, OffsetsAreQueryOrderInvariant) {
  // Two instances with the same config, one queried at every epoch and one
  // only at the end, must agree exactly — the property that keeps the
  // incremental and full-rebuild cache paths byte-identical.
  DynamicShadowing eager(base_model(), config());
  DynamicShadowing lazy(base_model(), config());
  for (int e = 0; e < 17; ++e) {
    eager.advance_epoch();
    lazy.advance_epoch();
    (void)eager.offset_db(1, 2);  // advance the memo every epoch
  }
  EXPECT_DOUBLE_EQ(eager.offset_db(1, 2), lazy.offset_db(1, 2));
  // A pair first seen late also matches a pair tracked from the start.
  DynamicShadowing tracked(base_model(), config());
  for (int e = 0; e < 17; ++e) {
    tracked.advance_epoch();
    (void)tracked.offset_db(5, 6);
  }
  EXPECT_DOUBLE_EQ(lazy.offset_db(5, 6), tracked.offset_db(5, 6));
}

TEST(DynamicShadowing, AdjacentEpochsAreCorrelated) {
  // With rho = 0.95 the expected per-epoch step is sigma * sqrt(2(1-rho))
  // ~= 0.32 sigma; across many links the mean |step| must come out well
  // under the stationary spread — i.e. the process evolves, slowly.
  DynamicShadowing dyn(base_model(), config(3.0, 0.95));
  double total_step = 0.0;
  const int links = 200;
  std::vector<double> prev(links);
  for (int i = 0; i < links; ++i) {
    prev[i] = dyn.offset_db(0, static_cast<phy::NodeId>(i + 1));
  }
  dyn.advance_epoch();
  for (int i = 0; i < links; ++i) {
    const double now = dyn.offset_db(0, static_cast<phy::NodeId>(i + 1));
    EXPECT_NE(now, prev[i]);  // it moved...
    total_step += std::abs(now - prev[i]);
  }
  EXPECT_LT(total_step / links, 3.0 * 0.45);  // ...but not far
}

TEST(DynamicShadowing, StationarySpreadMatchesSigma) {
  // Sample many independent links at a late epoch; the sample std-dev must
  // sit near the configured sigma (AR(1) with stationary initialization).
  DynamicShadowing dyn(base_model(), config(3.0, 0.9));
  for (int e = 0; e < 25; ++e) dyn.advance_epoch();
  const int links = 500;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < links; ++i) {
    const double o = dyn.offset_db(1000, static_cast<phy::NodeId>(i));
    sum += o;
    sq += o * o;
  }
  const double mean = sum / links;
  const double stddev = std::sqrt(sq / links - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.5);
  EXPECT_NEAR(stddev, 3.0, 0.5);
}

TEST(DynamicShadowing, ZeroSigmaIsTheBaseModel) {
  DynamicShadowing dyn(base_model(), config(0.0));
  dyn.advance_epoch();
  const phy::Position a{0, 0}, b{120, 40};
  EXPECT_DOUBLE_EQ(dyn.rx_power_dbm(10.0, 1, 2, a, b),
                   base_model()->rx_power_dbm(10.0, 1, 2, a, b));
}

TEST(DynamicShadowing, DifferentSeedsDifferentRealizations) {
  DynamicShadowing a(base_model(), config(3.0, 0.9, 1));
  DynamicShadowing b(base_model(), config(3.0, 0.9, 2));
  EXPECT_NE(a.offset_db(1, 2), b.offset_db(1, 2));
}

}  // namespace
}  // namespace cmap::dynamics
