// Harness for MAC-level tests: radios + MACs over a Friis medium with no
// fading, plus saturation helpers and delivery counting.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mac80211/dcf.h"
#include "phy/medium.h"
#include "phy/radio.h"

namespace cmap::mac80211::testing {

class MacWorld {
 public:
  explicit MacWorld(double error_threshold_db = 3.0)
      : model_(std::make_shared<phy::ThresholdErrorModel>(error_threshold_db)),
        medium_(sim_, std::make_shared<phy::FriisPropagation>(), no_fading(),
                sim::Rng(7)) {}

  static phy::MediumConfig no_fading() {
    phy::MediumConfig m;
    m.fading_sigma_db = 0.0;
    return m;
  }

  DcfMac& add_node(phy::NodeId id, phy::Position pos, DcfConfig cfg = {},
                   phy::RadioConfig rcfg = {}) {
    radios_.push_back(std::make_unique<phy::Radio>(
        sim_, medium_, id, pos, rcfg, model_, sim::Rng(500 + id)));
    macs_.push_back(std::make_unique<DcfMac>(sim_, *radios_.back(), cfg,
                                             sim::Rng(900 + id)));
    received_.emplace_back();
    auto& bucket = received_.back();
    macs_.back()->set_rx_handler(
        [&bucket](const mac::Packet& p, const mac::Mac::RxInfo& info) {
          if (!info.duplicate) bucket.push_back(p);
        });
    return *macs_.back();
  }

  /// Keep `m` backlogged with 1400-byte packets to `dst`.
  void saturate(DcfMac& m, phy::NodeId src, phy::NodeId dst,
                std::size_t bytes = 1400) {
    auto fill = [this, &m, src, dst, bytes] {
      while (m.queue_depth() < 8) {
        mac::Packet p;
        p.src = src;
        p.dst = dst;
        p.id = ++next_packet_id_;
        p.bytes = bytes;
        p.created_at = sim_.now();
        if (!m.send(p)) break;
      }
    };
    m.set_drain_handler(fill);
    fill();
  }

  mac::Packet make_packet(phy::NodeId src, phy::NodeId dst,
                          std::size_t bytes = 1400) {
    mac::Packet p;
    p.src = src;
    p.dst = dst;
    p.id = ++next_packet_id_;
    p.bytes = bytes;
    p.created_at = sim_.now();
    return p;
  }

  sim::Simulator& simulator() { return sim_; }
  phy::Radio& radio(std::size_t i) { return *radios_[i]; }
  DcfMac& mac(std::size_t i) { return *macs_[i]; }
  const std::vector<mac::Packet>& received(std::size_t i) const {
    return received_[i];
  }

  /// Goodput of unique packets delivered at node index `i` over `window`.
  double throughput_bps(std::size_t i, sim::Time window) const {
    double bits = 0;
    for (const auto& p : received_[i]) bits += 8.0 * p.bytes;
    return bits / sim::to_seconds(window);
  }

 private:
  std::shared_ptr<const phy::ErrorModel> model_;
  sim::Simulator sim_;
  phy::Medium medium_;
  std::vector<std::unique_ptr<phy::Radio>> radios_;
  std::vector<std::unique_ptr<DcfMac>> macs_;
  // deque: rx-handler lambdas hold references into elements; growth must
  // not invalidate them.
  std::deque<std::vector<mac::Packet>> received_;
  std::uint64_t next_packet_id_ = 0;
};

}  // namespace cmap::mac80211::testing
