#include "mac/dup_filter.h"

#include <gtest/gtest.h>

namespace cmap::mac {
namespace {

TEST(DupFilter, FirstSightingIsNotDuplicate) {
  DupFilter f;
  EXPECT_FALSE(f.seen_before(1, 10));
  EXPECT_FALSE(f.seen_before(1, 11));
}

TEST(DupFilter, RepeatIsDuplicate) {
  DupFilter f;
  EXPECT_FALSE(f.seen_before(1, 10));
  EXPECT_TRUE(f.seen_before(1, 10));
  EXPECT_TRUE(f.seen_before(1, 10));
}

TEST(DupFilter, SendersAreIndependent) {
  DupFilter f;
  EXPECT_FALSE(f.seen_before(1, 10));
  EXPECT_FALSE(f.seen_before(2, 10));
  EXPECT_TRUE(f.seen_before(1, 10));
}

TEST(DupFilter, OutOfOrderWithinWindowIsHandled) {
  DupFilter f(64);
  EXPECT_FALSE(f.seen_before(1, 5));
  EXPECT_FALSE(f.seen_before(1, 3));
  EXPECT_TRUE(f.seen_before(1, 5));
  EXPECT_TRUE(f.seen_before(1, 3));
  EXPECT_FALSE(f.seen_before(1, 4));
}

TEST(DupFilter, AncientSequenceCountsAsDuplicate) {
  DupFilter f(16);
  EXPECT_FALSE(f.seen_before(1, 1000));
  // 1 is far below the window behind 1000: stale retransmission.
  EXPECT_TRUE(f.seen_before(1, 1));
}

TEST(DupFilter, WindowEvictionDoesNotDropRecent) {
  DupFilter f(32);
  for (std::uint32_t s = 0; s < 200; ++s) {
    EXPECT_FALSE(f.seen_before(1, s)) << s;
  }
  // Recent seqs still recognized after heavy churn.
  EXPECT_TRUE(f.seen_before(1, 199));
  EXPECT_TRUE(f.seen_before(1, 180));
}

}  // namespace
}  // namespace cmap::mac
