#include "mac80211/dcf.h"

#include <gtest/gtest.h>

#include "mac_test_util.h"
#include "sim/time.h"

namespace cmap::mac80211 {
namespace {

using testing::MacWorld;

TEST(Dcf, SinglePacketDeliveredAndAcked) {
  MacWorld w;
  DcfMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {50, 0});
  w.simulator().at(0, [&] { a.send(w.make_packet(1, 2)); });
  w.simulator().run();
  ASSERT_EQ(w.received(1).size(), 1u);
  EXPECT_EQ(a.stats().acks_received, 1u);
  EXPECT_EQ(a.stats().ack_timeouts, 0u);
  EXPECT_EQ(a.queue_depth(), 0u);
  EXPECT_EQ(w.mac(1).stats().acks_sent, 1u);
}

TEST(Dcf, SaturatedLinkApproachesNominalThroughput) {
  MacWorld w;
  DcfMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {50, 0});
  w.saturate(a, 1, 2);
  const sim::Time dur = sim::seconds(2);
  w.simulator().run_until(dur);
  const double mbps = w.throughput_bps(1, dur) / 1e6;
  // 1400 B data + ACK + DIFS + avg backoff at 6 Mbit/s ≈ 5.3 Mbit/s.
  EXPECT_GT(mbps, 4.6);
  EXPECT_LT(mbps, 5.8);
}

TEST(Dcf, CarrierSenseSerializesNeighbours) {
  MacWorld w;
  DcfMac& a = w.add_node(1, {0, 0});
  DcfMac& b = w.add_node(2, {10, 0});
  w.add_node(3, {5, 0});  // receiver between two in-range senders
  w.saturate(a, 1, 3);
  w.saturate(b, 2, 3);
  const sim::Time dur = sim::seconds(2);
  w.simulator().run_until(dur);
  const double mbps = w.throughput_bps(2, dur) / 1e6;
  // Two serialized senders share one link's worth of airtime.
  EXPECT_GT(mbps, 4.0);
  EXPECT_LT(mbps, 5.8);
  // Collisions happen only when both pick the same backoff slot; Bianchi's
  // model puts that near tau = 2/(CW+1) ~ 12% for two saturated stations.
  const auto& sa = a.stats();
  const auto& sb = b.stats();
  const double retry_frac =
      static_cast<double>(sa.retransmissions + sb.retransmissions) /
      static_cast<double>(sa.data_frames_sent + sb.data_frames_sent);
  EXPECT_GT(retry_frac, 0.01);
  EXPECT_LT(retry_frac, 0.25);
}

TEST(Dcf, UnreachableDestinationHitsRetryLimit) {
  MacWorld w;
  DcfConfig cfg;
  DcfMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {900, 0});  // below sensitivity: nothing decodes
  w.simulator().at(0, [&] { a.send(w.make_packet(1, 2)); });
  w.simulator().run();
  const auto& s = a.stats();
  EXPECT_EQ(s.dropped_retry_limit, 1u);
  EXPECT_EQ(s.data_frames_sent, 1u + cfg.retry_limit);
  EXPECT_EQ(s.retransmissions, static_cast<std::uint64_t>(cfg.retry_limit));
  EXPECT_EQ(s.ack_timeouts, 1u + cfg.retry_limit);
  EXPECT_TRUE(w.received(1).empty());
}

TEST(Dcf, ContentionWindowGrowsOnTimeoutAndResetsAfterPacketFate) {
  MacWorld w;
  DcfMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {900, 0});  // unreachable
  int cw_peak = 0;
  for (int i = 1; i <= 100; ++i) {
    w.simulator().at(sim::milliseconds(i),
                     [&] { cw_peak = std::max(cw_peak, a.current_cw()); });
  }
  w.simulator().at(0, [&] { a.send(w.make_packet(1, 2)); });
  w.simulator().run();
  EXPECT_GT(cw_peak, 15);          // grew during retries
  EXPECT_EQ(a.current_cw(), 15);   // reset once the packet was dropped
}

TEST(Dcf, CwIsCappedAtMax) {
  MacWorld w;
  DcfConfig cfg;
  cfg.retry_limit = 12;
  DcfMac& a = w.add_node(1, {0, 0}, cfg);
  w.add_node(2, {900, 0});
  w.simulator().at(0, [&] { a.send(w.make_packet(1, 2)); });
  int cw_peak = 0;
  for (int i = 1; i < 400; ++i) {
    w.simulator().at(sim::milliseconds(i),
                     [&] { cw_peak = std::max(cw_peak, a.current_cw()); });
  }
  w.simulator().run();
  EXPECT_EQ(cw_peak, 1023);
}

TEST(Dcf, BroadcastIsUnacknowledgedFireAndForget) {
  MacWorld w;
  DcfMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {50, 0});
  w.add_node(3, {60, 0});
  w.simulator().at(0, [&] {
    a.send(w.make_packet(1, phy::kBroadcastId));
  });
  w.simulator().run();
  EXPECT_EQ(w.received(1).size(), 1u);
  EXPECT_EQ(w.received(2).size(), 1u);
  EXPECT_EQ(a.stats().ack_timeouts, 0u);
  EXPECT_EQ(a.stats().acks_received, 0u);
  EXPECT_EQ(w.mac(1).stats().acks_sent, 0u);
}

TEST(Dcf, NoAckModeSkipsRetries) {
  MacWorld w;
  DcfConfig cfg;
  cfg.acks = false;
  DcfMac& a = w.add_node(1, {0, 0}, cfg);
  w.add_node(2, {50, 0}, cfg);
  w.simulator().at(0, [&] { a.send(w.make_packet(1, 2)); });
  w.simulator().run();
  EXPECT_EQ(w.received(1).size(), 1u);
  EXPECT_EQ(a.stats().ack_timeouts, 0u);
  EXPECT_EQ(w.mac(1).stats().acks_sent, 0u);
  EXPECT_EQ(a.stats().data_frames_sent, 1u);
}

TEST(Dcf, QueueLimitDropsExcess) {
  MacWorld w;
  DcfConfig cfg;
  cfg.queue_limit = 4;
  DcfMac& a = w.add_node(1, {0, 0}, cfg);
  w.add_node(2, {50, 0});
  w.simulator().at(0, [&] {
    for (int i = 0; i < 9; ++i) a.send(w.make_packet(1, 2));
  });
  w.simulator().run();
  EXPECT_EQ(a.stats().dropped_queue_full, 5u);
  EXPECT_EQ(a.stats().enqueued, 4u);
  EXPECT_EQ(w.received(1).size(), 4u);
}

TEST(Dcf, CsOffTransmitsOverOngoingTraffic) {
  // With carrier sense off, the second sender does not wait for the first:
  // both saturate and their frames collide at a receiver between them.
  MacWorld w;
  DcfConfig off;
  off.carrier_sense = false;
  off.acks = false;
  DcfMac& a = w.add_node(1, {0, 0}, off);
  DcfMac& b = w.add_node(2, {10, 0}, off);
  w.add_node(3, {5, 0}, off);
  w.saturate(a, 1, 3);
  w.saturate(b, 2, 3);
  const sim::Time dur = sim::seconds(1);
  w.simulator().run_until(dur);
  // Equidistant equal-power senders: nearly everything collides.
  const double mbps = w.throughput_bps(2, dur) / 1e6;
  EXPECT_LT(mbps, 1.0);
  // But both senders kept transmitting at full rate (no deferral).
  EXPECT_GT(a.stats().data_frames_sent, 400u);
  EXPECT_GT(b.stats().data_frames_sent, 400u);
}

TEST(Dcf, CsOnAvoidsThoseCollisions) {
  MacWorld w;
  DcfConfig on;  // defaults: CS + acks
  DcfMac& a = w.add_node(1, {0, 0}, on);
  DcfMac& b = w.add_node(2, {10, 0}, on);
  w.add_node(3, {5, 0}, on);
  w.saturate(a, 1, 3);
  w.saturate(b, 2, 3);
  const sim::Time dur = sim::seconds(1);
  w.simulator().run_until(dur);
  const double mbps = w.throughput_bps(2, dur) / 1e6;
  EXPECT_GT(mbps, 4.0);
}

TEST(Dcf, DrainHandlerKeepsQueueBacklogged) {
  MacWorld w;
  DcfMac& a = w.add_node(1, {0, 0});
  w.add_node(2, {50, 0});
  w.saturate(a, 1, 2);
  w.simulator().run_until(sim::milliseconds(200));
  EXPECT_GT(a.queue_depth(), 0u);
  EXPECT_GT(w.received(1).size(), 50u);
}

TEST(Dcf, AckTimeoutCoversSifsPlusAckAirtime) {
  DcfConfig cfg;
  EXPECT_GT(cfg.ack_timeout(),
            cfg.sifs + phy::frame_airtime(cfg.control_rate, mac::kAckBytes));
  EXPECT_LT(cfg.ack_timeout(), sim::milliseconds(1));
}

TEST(Dcf, HiddenSendersCollideAtSharedReceiver) {
  // Classic hidden-terminal: senders that cannot hear each other, both in
  // range of the receiver. Under free-space propagation sense range is 2x
  // decode range, so collinear hidden pairs cannot exist with default
  // radios; deafen the *senders* (raised sensitivity/CS thresholds, the
  // equivalent of a wall between them) to construct the situation.
  MacWorld w;
  phy::RadioConfig deaf;
  deaf.sensitivity_dbm = -80.0;
  deaf.cs_signal_dbm = -80.0;
  deaf.energy_detect_dbm = -70.0;
  DcfMac& a = w.add_node(1, {0, 0}, {}, deaf);
  DcfMac& b = w.add_node(2, {300, 0}, {}, deaf);  // -86 dBm at a: unheard
  w.add_node(3, {150, 0});  // -80.2 dBm from each: decodes in isolation
  w.saturate(a, 1, 3);
  w.saturate(b, 2, 3);
  const sim::Time dur = sim::seconds(1);
  w.simulator().run_until(dur);
  const double mbps = w.throughput_bps(2, dur) / 1e6;
  EXPECT_LT(mbps, 4.0);  // far below a clean 5.3 Mbit/s link
  // Both senders burned airtime regardless (no carrier deference).
  EXPECT_GT(a.stats().data_frames_sent, 100u);
  EXPECT_GT(b.stats().data_frames_sent, 100u);
}

}  // namespace
}  // namespace cmap::mac80211
