// Micro-benchmarks of the hot paths: event queue churn, SINR chunking,
// error-model evaluation, defer-table lookups, and full testbed
// construction (the measurement pass dominates experiment startup).
#include <benchmark/benchmark.h>

#include "core/defer_table.h"
#include "phy/error_model.h"
#include "phy/interference.h"
#include "phy/units.h"
#include "scenario/sweep.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"

namespace {

using namespace cmap;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.at(i, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) ids.push_back(s.at(i, [] {}));
    for (std::size_t i = 0; i < ids.size(); i += 2) ids[i].cancel();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_NistErrorModel(benchmark::State& state) {
  phy::NistErrorModel m;
  double sinr = phy::db_to_linear(3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.chunk_success(sinr, 11200, phy::WifiRate::k6Mbps));
    sinr *= 1.0000001;
  }
}
BENCHMARK(BM_NistErrorModel);

void BM_InterferenceEvaluate(benchmark::State& state) {
  const int n_interferers = static_cast<int>(state.range(0));
  phy::InterferenceTracker t(phy::dbm_to_mw(-94.0));
  phy::NistErrorModel model;
  auto mk = [](std::uint64_t id, std::size_t bytes) {
    phy::Frame f;
    f.id = id;
    f.segments = {{phy::SegmentKind::kWhole, bytes}};
    return std::make_shared<const phy::Frame>(std::move(f));
  };
  phy::Signal target;
  target.frame = mk(1, 1400);
  target.power_mw = phy::dbm_to_mw(-70.0);
  target.start = 0;
  target.end = 1'892'000;
  t.add(target);
  for (int i = 0; i < n_interferers; ++i) {
    phy::Signal s;
    s.frame = mk(2 + i, 1400);
    s.power_mw = phy::dbm_to_mw(-85.0);
    s.start = 100'000 * (i + 1);
    s.end = s.start + 900'000;
    t.add(s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.evaluate(1, 0, 1'892'000, 11200,
                                        phy::WifiRate::k6Mbps, model, 1.0));
  }
}
BENCHMARK(BM_InterferenceEvaluate)->Arg(1)->Arg(4)->Arg(16);

void BM_DeferTableLookup(benchmark::State& state) {
  const int n_entries = static_cast<int>(state.range(0));
  core::DeferTable t(sim::seconds(1000));
  for (int i = 0; i < n_entries; ++i) {
    core::InterfererEntry e;
    e.source = 1;  // rule 1 applies at node 1
    e.interferer = 100 + i;
    t.apply_interferer_list(1, 2, {e}, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.should_defer(2, 100, 7, 1));
    benchmark::DoNotOptimize(t.should_defer(9, 100 + n_entries - 1, 7, 1));
  }
}
BENCHMARK(BM_DeferTableLookup)->Arg(4)->Arg(32)->Arg(256);

void BM_SeedMix(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::mix_seed({1, 0xfeed, 3, 0, i++, 0}));
  }
}
BENCHMARK(BM_SeedMix);

void BM_SweepExpand(benchmark::State& state) {
  scenario::Sweep sweep;
  sweep.scenario = "fig12_exposed";
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
                   testbed::Scheme::kCmap, testbed::Scheme::kCmapWin1};
  sweep.replicates = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scenario::SweepRunner::expand(sweep, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_SweepExpand)->Arg(50)->Arg(500);

void BM_TestbedConstruction(benchmark::State& state) {
  for (auto _ : state) {
    testbed::TestbedConfig cfg;
    cfg.num_nodes = static_cast<int>(state.range(0));
    testbed::Testbed tb(cfg);
    benchmark::DoNotOptimize(tb.mean_degree());
  }
}
BENCHMARK(BM_TestbedConstruction)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
