// Micro-benchmarks of the hot paths: event queue churn, SINR chunking
// (swept vs brute-force reference), transmit fan-out (cached/culled vs
// brute-force reference), error-model evaluation, defer-table lookups, and
// full testbed construction (the measurement pass dominates experiment
// startup).
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/defer_table.h"
#include "phy/error_model.h"
#include "phy/interference.h"
#include "phy/medium.h"
#include "phy/radio.h"
#include "phy/units.h"
#include "phy/wifi_rate.h"
#include "scenario/sweep.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"

namespace {

using namespace cmap;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int i = 0; i < 1000; ++i) {
      s.at(i, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) ids.push_back(s.at(i, [] {}));
    for (std::size_t i = 0; i < ids.size(); i += 2) ids[i].cancel();
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_NistErrorModel(benchmark::State& state) {
  phy::NistErrorModel m;
  double sinr = phy::db_to_linear(3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.chunk_success(sinr, 11200, phy::WifiRate::k6Mbps));
    sinr *= 1.0000001;
  }
}
BENCHMARK(BM_NistErrorModel);

// Tracker with one full-window target plus n interferers whose starts are
// spread across the window, so every one of them overlaps it (the dense-
// network shape the swept evaluator is built for).
phy::InterferenceTracker make_loaded_tracker(int n_interferers) {
  phy::InterferenceTracker t(phy::dbm_to_mw(-94.0));
  auto mk = [](std::uint64_t id, std::size_t bytes) {
    phy::Frame f;
    f.id = id;
    f.segments = {{phy::SegmentKind::kWhole, bytes}};
    return std::make_shared<const phy::Frame>(std::move(f));
  };
  constexpr sim::Time kWindow = 1'892'000;
  phy::Signal target;
  target.frame = mk(1, 1400);
  target.power_mw = phy::dbm_to_mw(-70.0);
  target.start = 0;
  target.end = kWindow;
  t.add(target);
  for (int i = 0; i < n_interferers; ++i) {
    phy::Signal s;
    s.frame = mk(2 + static_cast<std::uint64_t>(i), 1400);
    s.power_mw = phy::dbm_to_mw(-85.0);
    s.start = kWindow * i / (n_interferers + 1);
    s.end = s.start + 900'000;
    t.add(s);
  }
  return t;
}

// The threshold model is O(1) per chunk, so these two benchmarks isolate
// the interval partitioning + interference summation that the sweep
// rewrite changed; per-chunk error-model cost is measured separately by
// BM_NistErrorModel.
void BM_InterferenceEvaluate(benchmark::State& state) {
  phy::InterferenceTracker t =
      make_loaded_tracker(static_cast<int>(state.range(0)));
  phy::ThresholdErrorModel model(3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.evaluate(1, 0, 1'892'000, 11200,
                                        phy::WifiRate::k6Mbps, model, 1.0));
  }
}
BENCHMARK(BM_InterferenceEvaluate)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The pre-optimization O(sub-intervals x S) rescan, for before/after
// comparison against BM_InterferenceEvaluate at the same load.
void BM_InterferenceEvaluateReference(benchmark::State& state) {
  phy::InterferenceTracker t =
      make_loaded_tracker(static_cast<int>(state.range(0)));
  phy::ThresholdErrorModel model(3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(phy::evaluate_reference(
        t, 1, 0, 1'892'000, 11200, phy::WifiRate::k6Mbps, model, 1.0));
  }
}
BENCHMARK(BM_InterferenceEvaluateReference)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

// N radios on a grid under log-distance-with-shadowing propagation; one
// center node transmits. Fast = gain cache + reachability culling; brute =
// per-receiver propagation recomputation and full fan-out (the
// pre-optimization path). Deliveries are drained outside the timed region,
// so the measurement isolates Medium::transmit itself.
struct FanoutWorld {
  sim::Simulator sim;
  phy::Medium medium;
  std::vector<std::unique_ptr<phy::Radio>> radios;

  static phy::MediumConfig medium_config(bool fast) {
    phy::MediumConfig m;
    m.enable_gain_cache = fast;
    m.enable_culling = fast;
    return m;
  }

  FanoutWorld(int n, bool fast)
      : medium(sim, std::make_shared<phy::LogDistanceShadowing>(),
               medium_config(fast), sim::Rng(7)) {
    const auto model = std::make_shared<phy::NistErrorModel>();
    const int side =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
    constexpr double kSpacing = 30.0;  // meters; keeps reachability sparse
    radios.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const phy::Position pos{(i % side) * kSpacing, (i / side) * kSpacing};
      radios.push_back(std::make_unique<phy::Radio>(
          sim, medium, static_cast<phy::NodeId>(i), pos, phy::RadioConfig{},
          model, sim::Rng(1000 + static_cast<std::uint64_t>(i))));
    }
  }
};

void run_transmit_fanout(benchmark::State& state, bool fast) {
  const int n = static_cast<int>(state.range(0));
  FanoutWorld w(n, fast);
  phy::Radio& src = *w.radios[static_cast<std::size_t>(n) / 2];
  int batch = 0;
  std::uint64_t fid_seq = 0;
  for (auto _ : state) {
    phy::Frame f;
    f.id = phy::make_frame_id(src.id(), ++fid_seq);
    f.tx_node = src.id();
    f.segments = {{phy::SegmentKind::kWhole, 1400}};
    f.duration = phy::frame_airtime(phy::WifiRate::k6Mbps, 1400);
    w.medium.transmit(src, std::make_shared<const phy::Frame>(std::move(f)));
    if (++batch == 256) {
      state.PauseTiming();
      w.sim.run();  // drain deliveries untimed
      batch = 0;
      state.ResumeTiming();
    }
  }
  state.counters["reach"] =
      static_cast<double>(w.medium.fanout_candidates(src.id()));
}

void BM_TransmitFanoutFast(benchmark::State& state) {
  run_transmit_fanout(state, true);
}
void BM_TransmitFanoutBrute(benchmark::State& state) {
  run_transmit_fanout(state, false);
}
BENCHMARK(BM_TransmitFanoutFast)->Arg(50)->Arg(200)->Arg(400);
BENCHMARK(BM_TransmitFanoutBrute)->Arg(50)->Arg(200)->Arg(400);

void BM_DeferTableLookup(benchmark::State& state) {
  const int n_entries = static_cast<int>(state.range(0));
  core::DeferTable t(sim::seconds(1000));
  for (int i = 0; i < n_entries; ++i) {
    core::InterfererEntry e;
    e.source = 1;  // rule 1 applies at node 1
    e.interferer = 100 + i;
    t.apply_interferer_list(1, 2, {e}, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.should_defer(2, 100, 7, 1));
    benchmark::DoNotOptimize(t.should_defer(9, 100 + n_entries - 1, 7, 1));
  }
}
BENCHMARK(BM_DeferTableLookup)->Arg(4)->Arg(32)->Arg(256);

void BM_SeedMix(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario::mix_seed({1, 0xfeed, 3, 0, i++, 0}));
  }
}
BENCHMARK(BM_SeedMix);

void BM_SweepExpand(benchmark::State& state) {
  scenario::Sweep sweep;
  sweep.scenario = "fig12_exposed";
  sweep.schemes = {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
                   testbed::Scheme::kCmap, testbed::Scheme::kCmapWin1};
  sweep.replicates = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scenario::SweepRunner::expand(sweep, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_SweepExpand)->Arg(50)->Arg(500);

void BM_TestbedConstruction(benchmark::State& state) {
  for (auto _ : state) {
    testbed::TestbedConfig cfg;
    cfg.num_nodes = static_cast<int>(state.range(0));
    testbed::Testbed tb(cfg);
    benchmark::DoNotOptimize(tb.mean_degree());
  }
}
BENCHMARK(BM_TestbedConstruction)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
