// Ablation (§2.1): the two realizations of the PHY abstraction. The shim
// (prototype: separate header/trailer packets, Nvpkt=32 bursts, 5 ms
// waits) pays batching latency; the integrated/PPR mode (in-frame
// header/trailer segments, salvageable, per-packet decisions) reacts
// faster and wastes less airtime, at the cost of requiring PHY support.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Ablation: shim vs integrated (PPR) PHY realization",
               "both exploit exposed terminals; integrated reacts per "
               "packet",
               s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0xab2);

  struct Group {
    const char* name;
    std::vector<testbed::LinkPair> pairs;
  };
  Group groups[] = {
      {"exposed", picker.exposed_pairs(std::min(s.configs, 12), rng)},
      {"in-range", picker.in_range_pairs(std::min(s.configs, 12), rng)},
      {"hidden", picker.hidden_pairs(std::min(s.configs, 12), rng)},
  };
  for (const auto& g : groups) {
    stats::Distribution shim, integrated, cs;
    for (const auto& p : g.pairs) {
      cs.add(pair_aggregate_mbps(tb, p, s, testbed::Scheme::kCsma));
      shim.add(pair_aggregate_mbps(tb, p, s, testbed::Scheme::kCmap));
      integrated.add(
          pair_aggregate_mbps(tb, p, s, testbed::Scheme::kCmapIntegrated));
    }
    std::printf("\n-- %s pairs (%zu) --\n", g.name, g.pairs.size());
    print_cdf("CS,acks", cs);
    print_cdf("CMAP shim", shim);
    print_cdf("CMAP integrated", integrated);
  }
  return 0;
}
