// Ablation (§2.1): the two realizations of the PHY abstraction. The shim
// (prototype: separate header/trailer packets, Nvpkt=32 bursts, 5 ms
// waits) pays batching latency; the integrated/PPR mode (in-frame
// header/trailer segments, salvageable, per-packet decisions) reacts
// faster and wastes less airtime, at the cost of requiring PHY support.
#include <algorithm>

#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Ablation: shim vs integrated (PPR) PHY realization",
               "both exploit exposed terminals; integrated reacts per "
               "packet",
               s);

  testbed::Testbed tb({.seed = s.seed});
  const auto runner = make_runner(s);

  struct Group {
    const char* name;
    const char* scenario;
  };
  const Group groups[] = {{"exposed", "fig12_exposed"},
                          {"in-range", "fig13_inrange"},
                          {"hidden", "fig15_hidden"}};
  for (const auto& g : groups) {
    auto sweep = make_sweep(s, g.scenario,
                            {testbed::Scheme::kCsma, testbed::Scheme::kCmap,
                             testbed::Scheme::kCmapIntegrated});
    sweep.topologies = std::min(s.configs, 12);
    const auto report = runner.run(sweep, tb);
    std::printf("\n-- %s pairs (%zu) --\n", g.name,
                report.rows().size() / sweep.schemes.size());
    print_cdf("CS,acks", report.aggregate("CS,acks"));
    print_cdf("CMAP shim", report.aggregate("CMAP"));
    print_cdf("CMAP integrated", report.aggregate("CMAP,integrated"));
  }
  return 0;
}
