// Metro-scale memory bench: the 10,000-node metro_10k scenario over the
// sparse link-state stores, gated in CI on PEAK RSS — the dense O(n^2)
// pair state would need ~1.6 GB for the measurement matrices alone, so a
// regression that silently re-densifies any layer shows up as a gate
// failure, not a slow creep. Also times testbed_400 under both stores so
// the sparse path's build/sweep cost stays visible next to the dense one.
//
// Measurement order matters: ru_maxrss is process-monotone, so the gated
// metro (sparse) numbers are taken BEFORE the dense-store comparisons.
//
// Timing rows use process CPU time normalized by the shared calibration
// workload — see cpu_ms_now()/calibration_ms() in bench_main.h.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  Scale s = load_scale();
  if (std::getenv("CMAP_BENCH_SECONDS") == nullptr && !s.full) {
    s.duration = sim::seconds(2);  // ~100 concurrent flows: event-dense
    s.warmup = sim::milliseconds(500);
  }
  if (std::getenv("CMAP_BENCH_CONFIGS") == nullptr && !s.full) {
    s.configs = 1;
  }
  print_header("Metro 10k: sparse link-state memory",
               "no paper claim — the 10k-node scale the dense pair state "
               "cannot hold",
               s);
  const auto& registry = scenario::ScenarioRegistry::global();

  // ---- metro_10k over the sparse stores: the gated measurement ----
  const auto& metro = registry.at("metro_10k");
  double t0 = cpu_ms_now();
  testbed::Testbed metro_tb(*metro.testbed);
  const double metro_build_ms = cpu_ms_now() - t0;
  std::printf(
      "metro_10k testbed: %d nodes, %zu stored links (%.2f MB CSR), "
      "measurement pass %.0f CPU-ms\n",
      metro_tb.size(), metro_tb.stored_links(),
      static_cast<double>(metro_tb.stored_links()) * 20.0 / 1e6,
      metro_build_ms);

  auto metro_sweep = make_sweep(s, "metro_10k", {testbed::Scheme::kCmap});
  t0 = cpu_ms_now();
  auto report = make_runner(s).run(metro_sweep, metro_tb);
  const double metro_sweep_ms = cpu_ms_now() - t0;
  // Peak RSS now covers registry + sparse build + sparse sweep and nothing
  // dense: this is the number the CI gate holds fixed.
  const double metro_rss_mb = peak_rss_mb();
  std::printf("metro_10k sweep: %zu runs in %.0f CPU-ms, peak RSS %.0f MB\n",
              report.rows().size(), metro_sweep_ms, metro_rss_mb);
  report.print_table();

  // ---- testbed_400 under both stores: cost comparison ----
  const auto& t400 = registry.at("testbed_400");
  testbed::TestbedConfig dense_cfg = *t400.testbed;
  dense_cfg.seed = s.seed;
  t0 = cpu_ms_now();
  testbed::Testbed tb_dense(dense_cfg);
  const double t400_dense_build_ms = cpu_ms_now() - t0;
  auto sweep400 = make_sweep(s, "testbed_400", {testbed::Scheme::kCmap});
  t0 = cpu_ms_now();
  auto report_dense = make_runner(s).run(sweep400, tb_dense);
  const double t400_dense_sweep_ms = cpu_ms_now() - t0;

  testbed::TestbedConfig sparse_cfg = dense_cfg;
  sparse_cfg.measurement.store = testbed::MeasurementStore::kSparse;
  sparse_cfg.medium.link_state = phy::LinkStateMode::kSparse;
  t0 = cpu_ms_now();
  testbed::Testbed tb_sparse(sparse_cfg);
  const double t400_sparse_build_ms = cpu_ms_now() - t0;
  t0 = cpu_ms_now();
  auto report_sparse = make_runner(s).run(sweep400, tb_sparse);
  const double t400_sparse_sweep_ms = cpu_ms_now() - t0;
  std::printf(
      "testbed_400 build CPU-ms: dense %.0f, sparse %.0f "
      "(%zu stored links)\n",
      t400_dense_build_ms, t400_sparse_build_ms, tb_sparse.stored_links());
  std::printf(
      "testbed_400 sweep CPU-ms: dense %.0f (%.3f Mb/s), sparse %.0f "
      "(%.3f Mb/s)\n",
      t400_dense_sweep_ms, report_dense.rows().front().aggregate_mbps,
      t400_sparse_sweep_ms, report_sparse.rows().front().aggregate_mbps);

  const double calib = calibration_ms();
  stats::RunRow timing;
  timing.scenario = "metro_bench";
  timing.scheme = "timing";
  timing.topology = "cpu-time";
  timing.metrics = {
      {"nodes", static_cast<double>(metro_tb.size())},
      {"configs", static_cast<double>(s.configs)},
      {"run_seconds", sim::to_seconds(s.duration)},
      {"threads", static_cast<double>(make_runner(s).threads())},
      {"metro_sparse_peak_rss_mb", metro_rss_mb},
      {"metro_stored_links", static_cast<double>(metro_tb.stored_links())},
      {"metro_testbed_build_cpu_ms", metro_build_ms},
      {"metro_sweep_cpu_ms", metro_sweep_ms},
      {"t400_dense_build_cpu_ms", t400_dense_build_ms},
      {"t400_sparse_build_cpu_ms", t400_sparse_build_ms},
      {"t400_dense_sweep_cpu_ms", t400_dense_sweep_ms},
      {"t400_sparse_sweep_cpu_ms", t400_sparse_sweep_ms},
      {"calibration_ms", calib}};
  report.add_row(std::move(timing));
  std::printf("calibration: %.0f CPU-ms (normalizes the regression gate)\n",
              calib);

  maybe_write_json(report);
  return 0;
}
