// Figure 17 (§5.6): access-point topologies. N APs (one per region,
// mutually out of range) each with a client; one saturated flow per cell
// in a random direction. Mean aggregate throughput vs N for 802.11 CS on,
// CS off, and CMAP. Paper: CMAP gains between +21% (N=3) and +47% (N=4)
// over the status quo.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  const int runs_per_n =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 10 : 5));
  print_header("Figure 17: AP topologies, aggregate throughput",
               "CMAP +21% (N=3) ... +47% (N=4) over CS", s);
  std::printf("runs per N: %d\n\n", runs_per_n);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);

  const testbed::Scheme schemes[] = {testbed::Scheme::kCsma,
                                     testbed::Scheme::kCsmaOffAcks,
                                     testbed::Scheme::kCmap};
  std::printf("%-4s %-12s %-12s %-12s %s\n", "N", "CS on", "CS off", "CMAP",
              "CMAP gain vs CS");
  for (int n_aps = 3; n_aps <= 6; ++n_aps) {
    stats::Distribution agg[3];
    sim::Rng rng(s.seed * 1000 + n_aps);
    for (int run = 0; run < runs_per_n; ++run) {
      const auto sc = picker.ap_scenario(n_aps, rng);
      if (!sc) continue;
      std::vector<testbed::Flow> flows;
      for (const auto& cell : sc->cells) {
        flows.push_back({cell.sender(), cell.receiver()});
      }
      for (int i = 0; i < 3; ++i) {
        testbed::RunConfig rc = make_run_config(s, schemes[i]);
        rc.seed += static_cast<std::uint64_t>(run) * 101;
        agg[i].add(testbed::run_flows(tb, flows, rc).aggregate_mbps);
      }
    }
    if (agg[0].empty()) {
      std::printf("%-4d (no scenario found)\n", n_aps);
      continue;
    }
    std::printf("%-4d %5.2f ± %-5.2f %5.2f ± %-5.2f %5.2f ± %-5.2f %+5.1f%%\n",
                n_aps, agg[0].mean(), agg[0].stddev(), agg[1].mean(),
                agg[1].stddev(), agg[2].mean(), agg[2].stddev(),
                100.0 * (agg[2].mean() / agg[0].mean() - 1.0));
  }
  return 0;
}
