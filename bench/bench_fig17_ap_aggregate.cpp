// Figure 17 (§5.6): access-point topologies. N APs (one per region,
// mutually out of range) each with a client; one saturated flow per cell
// in a random direction. Mean aggregate throughput vs N for 802.11 CS on,
// CS off, and CMAP. Paper: CMAP gains between +21% (N=3) and +47% (N=4)
// over the status quo.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  const int runs_per_n =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 10 : 5));
  print_header("Figure 17: AP topologies, aggregate throughput",
               "CMAP +21% (N=3) ... +47% (N=4) over CS", s);
  std::printf("runs per N: %d\n\n", runs_per_n);

  testbed::Testbed tb({.seed = s.seed});
  const auto runner = make_runner(s);

  std::printf("%-4s %-12s %-12s %-12s %s\n", "N", "CS on", "CS off", "CMAP",
              "CMAP gain vs CS");
  for (int n_aps = 3; n_aps <= 6; ++n_aps) {
    auto sweep = make_sweep(s, "ap_wlan_" + std::to_string(n_aps),
                            {testbed::Scheme::kCsma,
                             testbed::Scheme::kCsmaOffAcks,
                             testbed::Scheme::kCmap});
    sweep.topologies = runs_per_n;
    const auto report = runner.run(sweep, tb);
    const auto cs = report.aggregate("CS,acks");
    const auto cs_off = report.aggregate("CSoff,acks");
    const auto cm = report.aggregate("CMAP");
    if (cs.empty()) {
      std::printf("%-4d (no scenario found)\n", n_aps);
      continue;
    }
    std::printf("%-4d %5.2f ± %-5.2f %5.2f ± %-5.2f %5.2f ± %-5.2f %+5.1f%%\n",
                n_aps, cs.mean(), cs.stddev(), cs_off.mean(), cs_off.stddev(),
                cm.mean(), cm.stddev(),
                100.0 * (cm.mean() / cs.mean() - 1.0));
  }
  return 0;
}
