// Figure 19 (§5.6): per-receiver probability of catching a virtual
// packet's header or trailer, as a function of the number of concurrent
// senders. Paper: the median stays roughly flat, while the 10th
// percentile drops sharply — a small fraction of receivers cannot run the
// conflict-map machinery under heavy concurrency.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  const int runs_per_k =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 10 : 5));
  print_header("Figure 19: header|trailer reception vs concurrent senders",
               "median flat; 10th percentile drops with concurrency", s);

  testbed::Testbed tb({.seed = s.seed});
  const auto runner = make_runner(s);

  std::printf("%-3s %-6s %-6s %-6s %-6s %-6s\n", "k", "mean", "p10", "p25",
              "median", "p75");
  for (int k = 2; k <= 7; ++k) {
    auto sweep = make_sweep(s, "disjoint_flows_" + std::to_string(k),
                            {testbed::Scheme::kCmap});
    sweep.topologies = runs_per_k;
    const auto report = runner.run(sweep, tb);
    stats::Distribution d;
    for (const auto& row : report.rows()) {
      for (const auto& f : row.flows) {
        if (f.vps_sent == 0) continue;
        d.add(static_cast<double>(f.rx_vps_delim) /
              static_cast<double>(f.vps_sent));
      }
    }
    if (d.empty()) {
      std::printf("%-3d (no samples)\n", k);
      continue;
    }
    std::printf("%-3d %-6.3f %-6.3f %-6.3f %-6.3f %-6.3f\n", k, d.mean(),
                d.percentile(10), d.percentile(25), d.median(),
                d.percentile(75));
  }
  return 0;
}
