// Figure 19 (§5.6): per-receiver probability of catching a virtual
// packet's header or trailer, as a function of the number of concurrent
// senders. Paper: the median stays roughly flat, while the 10th
// percentile drops sharply — a small fraction of receivers cannot run the
// conflict-map machinery under heavy concurrency.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  const int runs_per_k =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 10 : 5));
  print_header("Figure 19: header|trailer reception vs concurrent senders",
               "median flat; 10th percentile drops with concurrency", s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  const auto links = picker.potential_links();

  std::printf("%-3s %-6s %-6s %-6s %-6s %-6s\n", "k", "mean", "p10", "p25",
              "median", "p75");
  for (int k = 2; k <= 7; ++k) {
    stats::Distribution d;
    sim::Rng rng(s.seed * 31 + k);
    for (int run = 0; run < runs_per_k; ++run) {
      // k concurrent flows over disjoint node sets.
      std::vector<testbed::Flow> flows;
      std::vector<phy::NodeId> used;
      int guard = 0;
      while (static_cast<int>(flows.size()) < k && guard++ < 4000) {
        const auto& [a, b] = links[rng.uniform_int(
            0, static_cast<std::int64_t>(links.size()) - 1)];
        bool clash = false;
        for (phy::NodeId u : used) clash = clash || u == a || u == b;
        if (clash) continue;
        flows.push_back({a, b});
        used.push_back(a);
        used.push_back(b);
      }
      if (static_cast<int>(flows.size()) < k) continue;
      testbed::RunConfig rc = make_run_config(s, testbed::Scheme::kCmap);
      rc.seed += static_cast<std::uint64_t>(run) * 37;
      const auto result = testbed::run_flows(tb, flows, rc);
      for (const auto& f : result.flows) {
        if (f.vps_sent == 0) continue;
        d.add(static_cast<double>(f.rx_vps_delim) /
              static_cast<double>(f.vps_sent));
      }
    }
    if (d.empty()) {
      std::printf("%-3d (no samples)\n", k);
      continue;
    }
    std::printf("%-3d %-6.3f %-6.3f %-6.3f %-6.3f %-6.3f\n", k, d.mean(),
                d.percentile(10), d.percentile(25), d.median(),
                d.percentile(75));
  }
  return 0;
}
