// Ablation (§3.2 optimization): per-destination queues. While the head
// destination is deferred, a sender with traffic to another destination
// may serve it instead. The paper sketches this and "believes it will
// further improve throughput" — measured here via the dest_queue_ablation
// scenario (a conflicting in-range pair plus a clean alternative
// destination) with the per-dest knob as the variant axis.
#include <algorithm>

#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Ablation: per-destination queues (§3.2 optimization)",
               "expected to further improve throughput (future work)",
               s);

  testbed::Testbed tb({.seed = s.seed});
  auto sweep = make_sweep(s, "dest_queue_ablation", {testbed::Scheme::kCmap});
  sweep.topologies = std::min(s.configs, 12);
  sweep.variants = {
      {"per-dest OFF",
       [](testbed::RunConfig& rc) { rc.per_dest_queues = false; }},
      {"per-dest ON",
       [](testbed::RunConfig& rc) { rc.per_dest_queues = true; }}};
  const auto report = make_runner(s).run(sweep, tb);
  maybe_write_json(report);

  std::printf("configurations with an alternative destination: %zu\n",
              report.rows().size() / sweep.variants.size());
  const auto off = report.aggregate("CMAP", "per-dest OFF");
  const auto on = report.aggregate("CMAP", "per-dest ON");
  print_cdf("per-dest OFF", off);
  print_cdf("per-dest ON", on);
  if (!off.empty()) {
    std::printf("\nmedian change: %+.1f%%\n",
                100.0 * (on.median() / off.median() - 1.0));
  }
  return 0;
}
