// Ablation (§3.2 optimization): per-destination queues. While the head
// destination is deferred, a sender with traffic to another destination
// may serve it instead. The paper sketches this and "believes it will
// further improve throughput" — measured here.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Ablation: per-destination queues (§3.2 optimization)",
               "paper: expected to further improve throughput (future "
               "work)",
               s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0xab3);
  // Conflicting two-sender configurations: in-range pairs where raw
  // concurrency hurts are most likely to trigger deferrals; give sender 1
  // a second destination that is NOT in conflict (picked near itself).
  const auto pairs = picker.in_range_pairs(std::min(s.configs, 12), rng);
  const auto links = picker.potential_links();

  stats::Distribution off, on;
  int used = 0;
  for (const auto& p : pairs) {
    // Alternative destination for s1: a potential link to someone who is
    // not in range of the competing sender s2.
    phy::NodeId alt = phy::kBroadcastId;
    for (const auto& [a, b] : links) {
      if (a != p.s1) continue;
      if (b == p.r1 || b == p.r2 || b == p.s2) continue;
      if (tb.in_range(p.s2, b)) continue;
      alt = b;
      break;
    }
    if (alt == phy::kBroadcastId) continue;
    ++used;
    for (bool pdq : {false, true}) {
      testbed::RunConfig rc = make_run_config(s, testbed::Scheme::kCmap);
      rc.per_dest_queues = pdq;
      testbed::World world(tb, rc);
      world.add_node(p.s1);
      world.add_node(p.r1);
      world.add_node(alt);
      world.add_saturated_flow(p.s2, p.r2);
      // s1 alternates between the conflicted and the clean destination.
      world.add_node(p.s2);
      auto& m = world.mac(p.s1);
      static std::uint64_t id = 1;
      const phy::NodeId s1 = p.s1, r1 = p.r1;
      auto fill = [&m, s1, r1, alt, bytes = rc.packet_bytes]() {
        while (m.queue_depth() < 64) {
          mac::Packet pkt;
          pkt.src = s1;
          pkt.dst = (id % 2 == 0) ? r1 : alt;
          pkt.id = ++id;
          pkt.bytes = bytes;
          if (!m.send(pkt)) break;
        }
      };
      m.set_drain_handler(fill);
      fill();
      world.run(rc.duration);
      const double total = world.sink(p.r1).meter().mbps() +
                           world.sink(alt).meter().mbps();
      (pdq ? on : off).add(total);
    }
  }
  std::printf("configurations with an alternative destination: %d\n", used);
  print_cdf("per-dest OFF", off);
  print_cdf("per-dest ON", on);
  if (!off.empty()) {
    std::printf("\nmedian change: %+.1f%%\n",
                100.0 * (on.median() / off.median() - 1.0));
  }
  return 0;
}
