// Figure 15 (§5.5): hidden terminals — senders out of range, receivers
// decode both. Carrier sense cannot help and the conflict map cannot see
// the interferer; CMAP's loss-rate backoff must keep it no worse than the
// 802.11 status quo, and nobody beats a single pair's throughput.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Figure 15: hidden terminals",
               "CMAP ~ CS ~ CS-off: no degradation, little mass above the "
               "single-pair rate",
               s);

  testbed::Testbed tb({.seed = s.seed});
  const auto sweep = make_sweep(s, "fig15_hidden",
                                {testbed::Scheme::kCsma,
                                 testbed::Scheme::kCsmaOffAcks,
                                 testbed::Scheme::kCmap});
  const auto report = make_runner(s).run(sweep, tb);
  std::printf("hidden-terminal configurations found: %zu\n",
              report.rows().size() / sweep.schemes.size());

  report.print_table();
  maybe_write_json(report);

  const auto cs = report.aggregate("CS,acks");
  const auto cmap_d = report.aggregate("CMAP");
  if (!cs.empty()) {
    std::printf("\nCMAP / CS,acks median ratio: %.2f (paper ~1.0)\n",
                cmap_d.median() / cs.median());
    std::printf("CMAP mass above 6 Mbit/s: %.0f%% (paper: very little)\n",
                100.0 * (1.0 - cmap_d.cdf_at(6.0)));
  }
  return 0;
}
