// Figure 15 (§5.5): hidden terminals — senders out of range, receivers
// decode both. Carrier sense cannot help and the conflict map cannot see
// the interferer; CMAP's loss-rate backoff must keep it no worse than the
// 802.11 status quo, and nobody beats a single pair's throughput.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Figure 15: hidden terminals",
               "CMAP ~ CS ~ CS-off: no degradation, little mass above the "
               "single-pair rate",
               s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0x15);
  const auto pairs = picker.hidden_pairs(s.configs, rng);
  std::printf("hidden-terminal configurations found: %zu\n", pairs.size());

  const testbed::Scheme schemes[] = {testbed::Scheme::kCsma,
                                     testbed::Scheme::kCsmaOffAcks,
                                     testbed::Scheme::kCmap};
  stats::Distribution dist[3];
  for (const auto& p : pairs) {
    for (int i = 0; i < 3; ++i) {
      dist[i].add(pair_aggregate_mbps(tb, p, s, schemes[i]));
    }
  }
  for (int i = 0; i < 3; ++i) {
    print_cdf(scheme_name(schemes[i]), dist[i]);
  }
  if (!dist[0].empty()) {
    std::printf("\nCMAP / CS,acks median ratio: %.2f (paper ~1.0)\n",
                dist[2].median() / dist[0].median());
    std::printf("CMAP mass above 6 Mbit/s: %.0f%% (paper: very little)\n",
                100.0 * (1.0 - dist[2].cdf_at(6.0)));
  }
  return 0;
}
