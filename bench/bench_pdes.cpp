// Intra-run PDES bench: the byte-identity gate and the scaling story for
// the partitioned executive (sim/pdes.h, docs/pdes.md).
//
// Three probes, all in one process:
//   1. pdes_reports_match — a sweep over the bench scenario run on the
//      serial oracle and again at 2 and 4 partitions (2 worker threads);
//      1.0 iff all three SweepReport JSONs are byte-identical. This is the
//      contract the executive ships under and is CI-gated as a fixed
//      minimum of 1.0.
//   2. pdes_speedup — wall-clock serial / wall-clock 4-partition for the
//      same single run. Informational only: the CI container is
//      effectively single-core, so the honest expectation there is ~1x or
//      below (windows + barriers are pure overhead without parallelism).
//   3. dispatch_speedup — the EventQueue dispatch micro-row (the
//      move-on-pop fix): a replica of the event heap with the real queue's
//      key width dispatches N events twice — once with the pre-fix
//      copy-out-of-the-heap dispatch, once with the current
//      pop_heap-then-move dispatch. Same heap, same payload, the only
//      variable is the copy. Informational; it documents that dispatch got
//      cheaper, machine-independently (both sides timed in-process).
//
// The 4-partition run also reports stall attribution from the metrics
// subsystem: per-partition executed events, mailbox traffic, busy time and
// barrier wait (src/metrics/metrics.h) — INFO rows, since they measure the
// machine, not the simulation.
//
// Knobs: CMAP_BENCH_SCENARIO (default flows_50), CMAP_BENCH_SECONDS /
// CMAP_BENCH_SEED as usual, CMAP_BENCH_EVENTS (default 300000) for the
// dispatch micro-row. Runtimes stay deliberately under the regression
// gate's 1000 ms floor so the _ms rows ride as info, not as flaky gates.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_main.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "sim/event_queue.h"
#include "stats/report.h"
#include "testbed/testbed.h"

using namespace cmap;
using namespace cmap::bench;

namespace {

double wall_ms_now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One sweep over the scenario, serial (partitions <= 1) or partitioned,
// with metrics collected in memory (the per-partition stall-attribution
// rows come from the run's MetricsSnapshot). *wall_ms gets the sweep's
// wall-clock time. Note the byte-identity probe compares to_json(), which
// deliberately excludes the profile — metrics stay out of the gate.
stats::SweepReport run_sweep(const scenario::Scenario& s, const Scale& scale,
                             int partitions, int threads, double* wall_ms) {
  scenario::Sweep sweep;
  sweep.scenario = s.name;
  sweep.schemes = {testbed::Scheme::kCmap};
  sweep.topologies = 1;
  sweep.base_seed = scale.seed;
  sweep.duration = scale.duration;
  sweep.warmup = scale.warmup;
  sweep.metrics = metrics::MetricsConfig{};  // empty path: in-memory only
  if (partitions > 1) {
    sweep.variants = {scenario::ConfigVariant{
        "", [partitions, threads](testbed::RunConfig& rc) {
          rc.pdes.partitions = partitions;
          rc.pdes.threads = threads;
        }}};
  }
  const testbed::TestbedConfig cfg =
      s.testbed ? *s.testbed : testbed::TestbedConfig{};
  const auto tb = testbed::TestbedCache::global().get(cfg);
  const double t0 = wall_ms_now();
  stats::SweepReport report = scenario::SweepRunner(1).run(sweep, *tb);
  *wall_ms = wall_ms_now() - t0;
  return report;
}

// ---- Dispatch micro-row ----
// The payload every dispatched callable carries: a shared_ptr (control
// block) plus enough captured bytes to spill std::function's small-buffer
// optimization — the shape of a real delivery closure, and exactly what
// the pre-fix dispatch deep-copied (heap allocation + refcount bump) on
// every single event.
struct Payload {
  std::shared_ptr<int> token;
  std::uint64_t a, b, c, d;
  std::uint64_t* sink;
  void operator()() const { *sink += a ^ *token; }
};

// Replica of the event heap at the real queue's key width (time, rank
// class, two rank operands, sequence) so heap sift costs match production.
struct Entry {
  sim::Time at;
  std::uint8_t cls;
  std::uint64_t a, b;
  std::uint64_t seq;
  std::function<void()> fn;
  bool operator<(const Entry& o) const {  // max-heap order: later first
    return std::tie(o.at, o.cls, o.a, o.b, o.seq) <
           std::tie(at, cls, a, b, seq);
  }
};

// Dispatches `events` through the replica heap. copy_style replays the
// pre-fix run_one (`Event e = heap.front(); pop_heap; pop_back;`); the
// alternative is the current one (`pop_heap; Event e = move(heap.back());
// pop_back;`). Same heap, same payloads — the only variable is the copy.
double time_dispatch(long events, bool copy_style, std::uint64_t* sink) {
  std::vector<Entry> heap;
  heap.reserve(static_cast<std::size_t>(events));
  auto token = std::make_shared<int>(7);
  for (long i = 0; i < events; ++i) {
    heap.push_back(Entry{i, 2, 0, 0, static_cast<std::uint64_t>(i),
                         Payload{token, static_cast<std::uint64_t>(i), 2, 3,
                                 4, sink}});
    std::push_heap(heap.begin(), heap.end());
  }
  const double t0 = cpu_ms_now();
  while (!heap.empty()) {
    if (copy_style) {
      Entry e = heap.front();  // the copy the fix removed
      std::pop_heap(heap.begin(), heap.end());
      heap.pop_back();
      e.fn();
    } else {
      std::pop_heap(heap.begin(), heap.end());
      Entry e = std::move(heap.back());
      heap.pop_back();
      e.fn();
    }
  }
  return cpu_ms_now() - t0;
}

}  // namespace

int main() {
  Scale s = load_scale();
  if (std::getenv("CMAP_BENCH_SECONDS") == nullptr && !s.full) {
    // Default well under the regression gate's 1000 ms info floor.
    s.duration = sim::milliseconds(800);
    s.warmup = sim::milliseconds(200);
  }
  const char* scen_env = std::getenv("CMAP_BENCH_SCENARIO");
  const std::string scenario_name = scen_env != nullptr ? scen_env : "flows_50";
  const long events = env_long("CMAP_BENCH_EVENTS", 300000);
  const scenario::Scenario& scen =
      scenario::ScenarioRegistry::global().at(scenario_name);

  print_header("Intra-run PDES: partitioned executive vs the serial oracle",
               "no paper claim — execution strategy; reports must be "
               "byte-identical at any partition count",
               s);
  std::printf("scenario: %s (CMAP_BENCH_SCENARIO)\n", scenario_name.c_str());

  double serial_ms = 0.0, p2_ms = 0.0, p4_ms = 0.0;
  const stats::SweepReport serial_report =
      run_sweep(scen, s, 1, 1, &serial_ms);
  const stats::SweepReport p2_report = run_sweep(scen, s, 2, 2, &p2_ms);
  const stats::SweepReport p4_report = run_sweep(scen, s, 4, 2, &p4_ms);
  const std::string serial = serial_report.to_json();
  const std::string p2 = p2_report.to_json();
  const std::string p4 = p4_report.to_json();
  const bool match = serial == p2 && serial == p4;
  const double speedup = serial_ms / std::max(p4_ms, 1e-3);

  std::printf("serial oracle:         %8.1f wall-ms\n", serial_ms);
  std::printf("2 partitions:          %8.1f wall-ms\n", p2_ms);
  std::printf("4 partitions:          %8.1f wall-ms\n", p4_ms);
  std::printf("speedup (4p):          %8.2fx (wall; info-only on 1 core)\n",
              speedup);
  std::printf("reports identical:     %s\n", match ? "yes" : "NO — BUG");

  // Stall attribution for the 4-partition run: who executed what, and who
  // spent the parallel phase waiting. busy/barrier-wait need wall-clock and
  // so ride as INFO only (new keys inside the existing pdes_bench row are
  // ignored by the regression gate's baseline-driven iteration).
  std::vector<std::pair<std::string, double>> partition_info;
  if (!p4_report.rows().empty() && p4_report.rows().front().profile) {
    const metrics::MetricsSnapshot& snap = *p4_report.rows().front().profile;
    std::printf("4p stall attribution:  %" PRIu64 " rounds, %" PRIu64
                " global barriers, %" PRIu64 " merged windows\n",
                snap.rounds, snap.global_barriers, snap.merged_windows);
    for (const metrics::PartitionExec& pe : snap.parts) {
      const double util =
          snap.parallel_wall_ms > 0.0 ? pe.busy_ms / snap.parallel_wall_ms
                                      : 0.0;
      std::printf("  partition %d: %10" PRIu64 " events, %8" PRIu64
                  " mailbox msgs, busy %8.1f ms, barrier-wait %8.1f ms "
                  "(%.0f%% util)\n",
                  pe.partition, pe.executed, pe.mailbox_posted, pe.busy_ms,
                  pe.barrier_wait_ms, util * 100.0);
      const std::string prefix = "pdes_p" + std::to_string(pe.partition);
      partition_info.emplace_back(prefix + "_executed",
                                  static_cast<double>(pe.executed));
      partition_info.emplace_back(prefix + "_busy_ms", pe.busy_ms);
      partition_info.emplace_back(prefix + "_barrier_wait_ms",
                                  pe.barrier_wait_ms);
    }
  }

  std::uint64_t sink = 0;
  time_dispatch(events, false, &sink);  // warm the allocator once
  const double copy_ms = time_dispatch(events, true, &sink);
  const double move_ms = time_dispatch(events, false, &sink);
  const double dispatch_speedup =
      copy_ms / std::max(move_ms, 1000.0 / CLOCKS_PER_SEC);
  std::printf("dispatch: %ld events, copy-style %8.1f CPU-ms, "
              "move-on-pop %8.1f CPU-ms -> %.2fx  [sink %llu]\n",
              events, copy_ms, move_ms, dispatch_speedup,
              static_cast<unsigned long long>(sink));

  stats::SweepReport report;
  stats::RunRow timing;
  timing.scenario = "pdes_bench";
  timing.scheme = "timing";
  timing.topology = "cpu-time";
  // pdes_reports_match is the fixed ==1.0 gate; the wall/cpu timings and
  // both speedups ride as info (the CI container has one core, and the
  // runtimes sit under the gate's 1000 ms floor by construction).
  timing.metrics = {{"events", static_cast<double>(events)},
                    {"pdes_serial_wall_ms", serial_ms},
                    {"pdes_p4_wall_ms", p4_ms},
                    {"pdes_speedup", speedup},
                    {"pdes_reports_match", match ? 1.0 : 0.0},
                    {"dispatch_copy_cpu_ms", copy_ms},
                    {"dispatch_move_cpu_ms", move_ms},
                    {"dispatch_speedup", dispatch_speedup},
                    {"calibration_ms", calibration_ms()}};
  for (auto& kv : partition_info) timing.metrics.push_back(std::move(kv));
  report.add_row(std::move(timing));

  maybe_write_json(report);
  return match ? 0 : 1;
}
