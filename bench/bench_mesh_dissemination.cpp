// §5.7 (result quoted in text): two-hop content dissemination meshes
// (Fig. 11(d)). Phase 1: S broadcasts a batch to its forwarders A1..A3.
// Phase 2: each Ai forwards to its Bi concurrently — where exposed
// terminals among the Ai are common. Per-sink throughput is the min of
// the two hops; paper: CMAP beats 802.11-with-CS by ~52% on aggregate.
#include <algorithm>

#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

namespace {

double mesh_aggregate(const testbed::Testbed& tb,
                      const testbed::MeshScenario& sc, const Scale& s,
                      testbed::Scheme scheme, std::uint64_t salt) {
  // Phase 1: S broadcasts a batch sized to the phase duration.
  testbed::RunConfig rc = make_run_config(s, scheme);
  rc.seed += salt;
  const sim::Time phase = s.duration / 2;
  const sim::Time measure_from = phase / 5;

  testbed::World w1(tb, rc);
  w1.add_node(sc.s);
  for (std::size_t i = 0; i < sc.a.size(); ++i) w1.add_node(sc.a[i]);
  w1.add_saturated_flow(sc.s, phy::kBroadcastId);
  w1.set_measurement_window(measure_from, phase);
  w1.run(phase);

  // Phase 2: the A's forward to the B's, concurrently.
  testbed::World w2(tb, rc);
  for (std::size_t i = 0; i < sc.a.size(); ++i) {
    w2.add_saturated_flow(sc.a[i], sc.b[i]);
  }
  w2.set_measurement_window(measure_from, phase);
  w2.run(phase);

  double total = 0;
  for (std::size_t i = 0; i < sc.a.size(); ++i) {
    const double hop1 = w1.sink(sc.a[i]).meter().mbps();
    const double hop2 = w2.sink(sc.b[i]).meter().mbps();
    total += std::min(hop1, hop2);
  }
  return total;
}

}  // namespace

int main() {
  const Scale s = load_scale();
  const int topologies =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 10 : 5));
  print_header("§5.7 mesh dissemination",
               "CMAP aggregate ~ +52% over 802.11 CS", s);
  std::printf("topologies: %d\n", topologies);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0x57);

  stats::Distribution cs, cm;
  for (int i = 0; i < topologies; ++i) {
    const auto sc = picker.mesh_scenario(3, rng);
    if (!sc) continue;
    cs.add(mesh_aggregate(tb, *sc, s, testbed::Scheme::kCsma, i * 11));
    cm.add(mesh_aggregate(tb, *sc, s, testbed::Scheme::kCmap, i * 11));
  }
  print_cdf("CS,acks", cs);
  print_cdf("CMAP", cm);
  if (!cs.empty()) {
    std::printf("\nmean aggregate gain: %+.1f%% (paper ~+52%%)\n",
                100.0 * (cm.mean() / cs.mean() - 1.0));
  }
  return 0;
}
