// §5.7 (result quoted in text): two-hop content dissemination meshes
// (Fig. 11(d)). Phase 1: S broadcasts a batch to its forwarders A1..A3.
// Phase 2: each Ai forwards to its Bi concurrently — where exposed
// terminals among the Ai are common. Per-sink throughput is the min of
// the two hops; paper: CMAP beats 802.11-with-CS by ~52% on aggregate.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  const int topologies =
      static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.full ? 10 : 5));
  print_header("§5.7 mesh dissemination",
               "CMAP aggregate ~ +52% over 802.11 CS", s);
  std::printf("topologies: %d\n", topologies);

  testbed::Testbed tb({.seed = s.seed});
  auto sweep = make_sweep(s, "mesh_dissemination",
                          {testbed::Scheme::kCsma, testbed::Scheme::kCmap});
  sweep.topologies = topologies;
  const auto report = make_runner(s).run(sweep, tb);

  report.print_table();
  maybe_write_json(report);

  const auto cs = report.aggregate("CS,acks");
  const auto cm = report.aggregate("CMAP");
  if (!cs.empty()) {
    std::printf("\nmean aggregate gain: %+.1f%% (paper ~+52%%)\n",
                100.0 * (cm.mean() / cs.mean() - 1.0));
  }
  return 0;
}
