// §4.2 calibration: on a single clean link, CMAP's virtual-packet pipeline
// must be throughput-comparable to 802.11 with ACKs (paper: 5.04 vs 5.07
// Mbit/s at the 6 Mbit/s rate), enabling a fair comparison elsewhere.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("§4.2 single-link calibration",
               "CMAP 5.04 Mbit/s vs 802.11 5.07 Mbit/s at 6 Mbit/s",
               s);

  testbed::Testbed tb({.seed = s.seed});
  const auto sweep = make_sweep(
      s, "single_link", {testbed::Scheme::kCsma, testbed::Scheme::kCmap});
  const auto report = make_runner(s).run(sweep, tb);
  if (report.empty()) {
    std::printf("no potential links in this building\n");
    return 1;
  }
  report.print_table();
  maybe_write_json(report);

  const auto csma = report.aggregate("CS,acks");
  const auto cmap_d = report.aggregate("CMAP");
  std::printf("ratio CMAP/802.11 (median): %.3f  (paper: 5.04/5.07 = 0.994)\n",
              cmap_d.median() / csma.median());
  return 0;
}
