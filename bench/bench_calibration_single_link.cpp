// §4.2 calibration: on a single clean link, CMAP's virtual-packet pipeline
// must be throughput-comparable to 802.11 with ACKs (paper: 5.04 vs 5.07
// Mbit/s at the 6 Mbit/s rate), enabling a fair comparison elsewhere.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("§4.2 single-link calibration",
               "CMAP 5.04 Mbit/s vs 802.11 5.07 Mbit/s at 6 Mbit/s",
               s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed);
  const auto links = picker.potential_links();
  if (links.empty()) {
    std::printf("no potential links in this building\n");
    return 1;
  }

  stats::Distribution csma, cmap_d;
  const int n = std::min<int>(s.configs, static_cast<int>(links.size()));
  for (int i = 0; i < n; ++i) {
    const auto& [src, dst] =
        links[rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1)];
    const std::vector<testbed::Flow> flow = {{src, dst}};
    csma.add(testbed::run_flows(tb, flow,
                                make_run_config(s, testbed::Scheme::kCsma))
                 .aggregate_mbps);
    cmap_d.add(testbed::run_flows(tb, flow,
                                  make_run_config(s, testbed::Scheme::kCmap))
                   .aggregate_mbps);
  }
  print_cdf("802.11 CS,acks", csma);
  print_cdf("CMAP", cmap_d);
  std::printf("ratio CMAP/802.11 (median): %.3f  (paper: 5.04/5.07 = 0.994)\n",
              cmap_d.median() / csma.median());
  return 0;
}
