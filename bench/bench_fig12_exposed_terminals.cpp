// Figure 12: distribution of aggregate two-flow throughput over exposed
// terminal configurations (Fig. 11(a) constraints). The paper's claims:
//   * 802.11 with carrier sense stays near the single-link rate (~5);
//   * CMAP achieves ~2x by letting both flows run concurrently;
//   * CMAP with a window of 1 VP reaches only ~1.5x (ACK losses);
//   * with CS and ACKs off, ~15% of pairs are not actually exposed.
#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header(
      "Figure 12: exposed terminals",
      "CMAP ~2x over CS; CMAP(win=1) ~1.5x; 15% of pairs not exposed", s);

  testbed::Testbed tb({.seed = s.seed});
  const auto sweep = make_sweep(
      s, "fig12_exposed",
      {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffNoAcks,
       testbed::Scheme::kCmap, testbed::Scheme::kCmapWin1});
  const auto report = make_runner(s).run(sweep, tb);
  std::printf("exposed-terminal configurations found: %zu\n",
              report.rows().size() / sweep.schemes.size());

  report.print_table();
  maybe_write_json(report);

  const auto cs = report.aggregate("CS,acks");
  const auto cmap_d = report.aggregate("CMAP");
  const auto win1 = report.aggregate("CMAP,win=1");
  if (!cs.empty()) {
    std::printf("\nmedian gain CMAP / CS,acks:        %.2fx  (paper ~2x)\n",
                cmap_d.median() / cs.median());
    std::printf("median gain CMAP(win=1) / CS,acks: %.2fx  (paper ~1.5x)\n",
                win1.median() / cs.median());
    // "Not exposed" fraction: pairs where raw concurrency (CS off, no
    // acks) fails to deliver meaningfully more than serialized 802.11.
    const auto raw = report.aggregates_of("CSoff,noacks");
    const auto serialized = report.aggregates_of("CS,acks");
    int not_exposed = 0;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] < 1.3 * serialized[i]) ++not_exposed;
    }
    std::printf("fraction not actually exposed:     %.0f%%  (paper ~15%%)\n",
                100.0 * not_exposed / static_cast<double>(raw.size()));
  }
  return 0;
}
