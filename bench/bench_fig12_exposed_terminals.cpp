// Figure 12: distribution of aggregate two-flow throughput over exposed
// terminal configurations (Fig. 11(a) constraints). The paper's claims:
//   * 802.11 with carrier sense stays near the single-link rate (~5);
//   * CMAP achieves ~2x by letting both flows run concurrently;
//   * CMAP with a window of 1 VP reaches only ~1.5x (ACK losses);
//   * with CS and ACKs off, ~15% of pairs are not actually exposed.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header(
      "Figure 12: exposed terminals",
      "CMAP ~2x over CS; CMAP(win=1) ~1.5x; 15% of pairs not exposed", s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0x12);
  const auto pairs = picker.exposed_pairs(s.configs, rng);
  std::printf("exposed-terminal configurations found: %zu\n", pairs.size());

  const testbed::Scheme schemes[] = {
      testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffNoAcks,
      testbed::Scheme::kCmap, testbed::Scheme::kCmapWin1};
  stats::Distribution dist[4];
  for (const auto& p : pairs) {
    for (int i = 0; i < 4; ++i) {
      dist[i].add(pair_aggregate_mbps(tb, p, s, schemes[i]));
    }
  }
  for (int i = 0; i < 4; ++i) {
    print_cdf(scheme_name(schemes[i]), dist[i]);
  }
  if (!dist[0].empty()) {
    std::printf("\nmedian gain CMAP / CS,acks:        %.2fx  (paper ~2x)\n",
                dist[2].median() / dist[0].median());
    std::printf("median gain CMAP(win=1) / CS,acks: %.2fx  (paper ~1.5x)\n",
                dist[3].median() / dist[0].median());
    // "Not exposed" fraction: pairs where raw concurrency (CS off, no
    // acks) fails to deliver meaningfully more than serialized 802.11.
    int not_exposed = 0;
    const auto& raw = dist[1].values();
    const auto& cs = dist[0].values();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] < 1.3 * cs[i]) ++not_exposed;
    }
    std::printf("fraction not actually exposed:     %.0f%%  (paper ~15%%)\n",
                100.0 * not_exposed / static_cast<double>(raw.size()));
  }
  return 0;
}
