// Shared driver plumbing for the figure-reproduction benches, built on the
// declarative scenario API: environment-driven scaling, sweep construction,
// and report printing. Per-run orchestration (topology draws, seeding,
// parallelism) lives in scenario::SweepRunner, not here.
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "stats/report.h"
#include "stats/summary.h"
#include "testbed/testbed.h"

namespace cmap::bench {

struct Scale {
  sim::Time duration = sim::seconds(20);
  sim::Time warmup = sim::seconds(8);
  int configs = 16;
  std::uint64_t seed = 1;
  bool full = false;
  int threads = 0;  // 0 = CMAP_BENCH_THREADS or hardware concurrency
};

inline long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

/// Reads CMAP_BENCH_* knobs; CMAP_BENCH_FULL=1 selects paper scale
/// (100-second runs measured over the last 60, 50 configurations).
/// CMAP_BENCH_THREADS caps the sweep runner's worker pool.
inline Scale load_scale() {
  Scale s;
  s.full = env_long("CMAP_BENCH_FULL", 0) != 0;
  if (s.full) {
    s.duration = sim::seconds(100);
    s.warmup = sim::seconds(40);
    s.configs = 50;
  }
  const long secs = env_long("CMAP_BENCH_SECONDS", 0);
  if (secs > 0) {
    s.duration = sim::seconds(static_cast<double>(secs));
    s.warmup = s.duration * 2 / 5;
  }
  s.configs = static_cast<int>(env_long("CMAP_BENCH_CONFIGS", s.configs));
  s.seed = static_cast<std::uint64_t>(env_long("CMAP_BENCH_SEED", 1));
  s.threads = static_cast<int>(env_long("CMAP_BENCH_THREADS", 0));
  return s;
}

/// A sweep over `scenario` at this scale: one topology draw per config,
/// scale-driven duration/warmup/seed.
inline scenario::Sweep make_sweep(const Scale& s, std::string scenario_name,
                                  std::vector<testbed::Scheme> schemes) {
  scenario::Sweep sweep;
  sweep.scenario = std::move(scenario_name);
  sweep.schemes = std::move(schemes);
  sweep.topologies = s.configs;
  sweep.base_seed = s.seed;
  sweep.duration = s.duration;
  sweep.warmup = s.warmup;
  return sweep;
}

inline scenario::SweepRunner make_runner(const Scale& s) {
  return scenario::SweepRunner(s.threads);
}

inline void print_header(const char* figure, const char* paper_claim,
                         const Scale& s) {
  std::printf("== %s ==\n", figure);
  std::printf("paper: %s\n", paper_claim);
  std::printf(
      "scale: %.0f s runs (measure last %.0f s), %d configs, seed %llu, "
      "%d threads%s\n",
      sim::to_seconds(s.duration), sim::to_seconds(s.duration - s.warmup),
      s.configs, static_cast<unsigned long long>(s.seed),
      scenario::SweepRunner(s.threads).threads(), s.full ? " [FULL]" : "");
}

inline void print_cdf(const char* name, const stats::Distribution& d) {
  stats::print_distribution_line(stdout, name, d);
}

/// Process CPU time in milliseconds. The CI-gated probes time with this,
/// not wall clock: they run single-threaded (CI pins CMAP_BENCH_THREADS=1),
/// so CPU time is the same quantity minus the scheduler noise of shared
/// runners that would otherwise flake a 25% gate.
inline double cpu_ms_now() {
  return static_cast<double>(std::clock()) * 1000.0 / CLOCKS_PER_SEC;
}

/// Peak resident set size (MB) of this process so far. ru_maxrss is
/// process-monotone (it never decreases, whatever is freed), so a bench
/// gating on memory must take its gated measurement BEFORE running
/// anything hungrier. Linux reports KB; macOS reports bytes.
inline double peak_rss_mb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
#ifdef __APPLE__
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
}

/// A fixed CPU-bound workload whose runtime calibrates the machine: the
/// regression gate compares runtime *normalized by this*, so a slower or
/// faster CI runner does not masquerade as a code regression. ONE shared
/// implementation — every *_ms row in the committed baseline is normalized
/// by it, so per-bench copies would skew cross-row comparisons the moment
/// one copy drifted. Deliberately self-contained FP arithmetic (exp/log/
/// sqrt, the simulator's instruction mix) that calls NO project code — if
/// it exercised the code under test, a real optimization or regression
/// there would skew the normalizer and the gate would misread it. Best
/// (min) of several ~100 ms samples, so a scheduler deschedule during one
/// sample cannot skew the result.
inline double calibration_ms() {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const double t0 = cpu_ms_now();
    double sink = 0.0;
    double x = 1.000001;
    for (int i = 0; i < 10'000'000; ++i) {
      sink += std::sqrt(std::exp(std::log(x) * 0.5));
      x += 1e-9;
    }
    // Fold the sink into the timing via a volatile store so the loop
    // cannot be optimized away.
    volatile double guard = sink;
    (void)guard;
    best = std::min(best, cpu_ms_now() - t0);
  }
  return best;
}

/// Emit the report as JSON to the path in CMAP_BENCH_JSON, when set.
inline void maybe_write_json(const stats::SweepReport& report) {
  const char* path = std::getenv("CMAP_BENCH_JSON");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const std::string json = report.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("[report written to %s]\n", path);
}

}  // namespace cmap::bench
