// Figure 13: two senders within range of each other, otherwise
// unconstrained (Fig. 11(b)). CMAP must discriminate: defer on the ~15%
// of pairs where concurrency is deleterious (tracking CS-on) and transmit
// concurrently on pairs where it helps (tracking CS-off), while CS-off
// with ACKs suffers from stop-and-wait ACK loss.
#include "bench_util.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Figure 13: senders in range",
               "CMAP tracks CS where conflicting, tracks CS-off (~2x) "
               "where concurrent-friendly",
               s);

  testbed::Testbed tb({.seed = s.seed});
  testbed::TopologyPicker picker(tb);
  sim::Rng rng(s.seed ^ 0x13);
  const auto pairs = picker.in_range_pairs(s.configs, rng);
  std::printf("in-range configurations found: %zu\n", pairs.size());

  const testbed::Scheme schemes[] = {
      testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
      testbed::Scheme::kCsmaOffNoAcks, testbed::Scheme::kCmap};
  stats::Distribution dist[4];
  std::vector<std::array<double, 4>> rows;
  for (const auto& p : pairs) {
    std::array<double, 4> row{};
    for (int i = 0; i < 4; ++i) {
      row[i] = pair_aggregate_mbps(tb, p, s, schemes[i]);
      dist[i].add(row[i]);
    }
    rows.push_back(row);
  }
  for (int i = 0; i < 4; ++i) {
    print_cdf(scheme_name(schemes[i]), dist[i]);
  }
  if (!rows.empty()) {
    int deleterious = 0, cmap_ok = 0;
    for (const auto& r : rows) {
      if (r[2] < 0.9 * r[0]) ++deleterious;  // raw concurrency hurt
      if (r[3] >= 0.8 * std::max(r[0], r[2])) ++cmap_ok;
    }
    std::printf(
        "\npairs where concurrency is deleterious: %.0f%% (paper ~15%%)\n",
        100.0 * deleterious / rows.size());
    std::printf(
        "pairs where CMAP tracks the better of CS/CS-off: %.0f%%\n",
        100.0 * cmap_ok / rows.size());
  }
  return 0;
}
