// Figure 13: two senders within range of each other, otherwise
// unconstrained (Fig. 11(b)). CMAP must discriminate: defer on the ~15%
// of pairs where concurrency is deleterious (tracking CS-on) and transmit
// concurrently on pairs where it helps (tracking CS-off), while CS-off
// with ACKs suffers from stop-and-wait ACK loss.
#include <algorithm>

#include "bench_main.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  print_header("Figure 13: senders in range",
               "CMAP tracks CS where conflicting, tracks CS-off (~2x) "
               "where concurrent-friendly",
               s);

  testbed::Testbed tb({.seed = s.seed});
  const auto sweep = make_sweep(
      s, "fig13_inrange",
      {testbed::Scheme::kCsma, testbed::Scheme::kCsmaOffAcks,
       testbed::Scheme::kCsmaOffNoAcks, testbed::Scheme::kCmap});
  const auto report = make_runner(s).run(sweep, tb);
  std::printf("in-range configurations found: %zu\n",
              report.rows().size() / sweep.schemes.size());

  report.print_table();
  maybe_write_json(report);

  const auto cs = report.aggregates_of("CS,acks");
  const auto raw = report.aggregates_of("CSoff,noacks");
  const auto cmap_d = report.aggregates_of("CMAP");
  if (!cs.empty()) {
    int deleterious = 0, cmap_ok = 0;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (raw[i] < 0.9 * cs[i]) ++deleterious;  // raw concurrency hurt
      if (cmap_d[i] >= 0.8 * std::max(cs[i], raw[i])) ++cmap_ok;
    }
    std::printf(
        "\npairs where concurrency is deleterious: %.0f%% (paper ~15%%)\n",
        100.0 * deleterious / static_cast<double>(cs.size()));
    std::printf("pairs where CMAP tracks the better of CS/CS-off: %.0f%%\n",
                100.0 * cmap_ok / static_cast<double>(cs.size()));
  }
  return 0;
}
