// Metrics-overhead bench: the cost of the metrics subsystem on the
// dense-grid CMAP workload, in three modes —
//   unmetered: no Registry attached (RunConfig::metrics unset, the
//       default) — the hook masks are zero without even a registry;
//   disabled:  a Registry attached with an empty domain mask — every
//       instrumentation site reduces to one branch on a cached mask, the
//       configuration the "zero-overhead-when-off" claim rests on;
//   enabled:   all domains counting, per-run snapshot JSONs written.
// The three modes run interleaved for several reps on an identical seeded
// sweep; min-of-reps CPU time per mode discards scheduler deschedules.
//
// Doubles as a CI regression probe: the timing row rides in CMAP_BENCH_JSON
// and tools/check_bench_regression.py enforces metrics_overhead_off (the
// disabled/unmetered CPU-time ratio, measured within this one process, so
// machine-independent) as a fixed maximum of 1.02 — instrumenting a hot
// path with anything costlier than the mask branch is the regression this
// bench exists to catch. The enabled-mode overhead is reported as a
// diagnostic, not gated: relaxed-atomic increments cost what they cost,
// and counting is opt-in.
//
// Extra knob: CMAP_BENCH_NODES (default 120) sizes the testbed.
#include <algorithm>
#include <filesystem>
#include <string>

#include "bench_main.h"
#include "metrics/metrics.h"

using namespace cmap;
using namespace cmap::bench;

namespace {

enum class Mode { kUnmetered, kDisabled, kEnabled };

double run_once(const Scale& s, const testbed::Testbed& tb, Mode mode,
                const std::string& metrics_dir) {
  auto sweep = make_sweep(s, "dense_grid_25", {testbed::Scheme::kCmap});
  if (mode != Mode::kUnmetered) {
    metrics::MetricsConfig mc;
    mc.path = mode == Mode::kEnabled ? metrics_dir : "";
    mc.domains = mode == Mode::kDisabled ? 0u : metrics::kAllDomains;
    sweep.metrics = mc;
  }
  const double t0 = cpu_ms_now();
  auto report = make_runner(s).run(sweep, tb);
  const double elapsed = cpu_ms_now() - t0;
  // Consume the report so the sweep cannot be elided.
  volatile double guard = report.rows().empty()
                              ? 0.0
                              : report.rows().front().aggregate_mbps;
  (void)guard;
  return elapsed;
}

}  // namespace

int main() {
  Scale s = load_scale();
  if (std::getenv("CMAP_BENCH_SECONDS") == nullptr && !s.full) {
    s.duration = sim::seconds(2);  // three modes x reps: keep each run short
    s.warmup = sim::seconds(1);
  }
  if (std::getenv("CMAP_BENCH_CONFIGS") == nullptr && !s.full) {
    s.configs = 2;
  }
  const int nodes = static_cast<int>(env_long("CMAP_BENCH_NODES", 120));
  constexpr int kReps = 3;
  print_header("Metrics subsystem: counting overhead on the dense grid",
               "no paper claim — zero-overhead-when-off guarantee of the "
               "metrics subsystem",
               s);
  std::printf("nodes: %d (CMAP_BENCH_NODES), reps: %d (interleaved, min)\n",
              nodes, kReps);

  testbed::TestbedConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = s.seed;
  const testbed::Testbed tb(cfg);

  const std::string metrics_dir =
      (std::filesystem::temp_directory_path() / "cmap_metrics_bench").string();
  std::filesystem::create_directories(metrics_dir);

  // Interleave the modes so slow drift (thermal, a noisy neighbor arriving
  // mid-bench) hits all three alike instead of biasing whichever ran last.
  double unmetered_ms = 1e300, disabled_ms = 1e300, enabled_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    unmetered_ms =
        std::min(unmetered_ms, run_once(s, tb, Mode::kUnmetered, metrics_dir));
    disabled_ms =
        std::min(disabled_ms, run_once(s, tb, Mode::kDisabled, metrics_dir));
    enabled_ms =
        std::min(enabled_ms, run_once(s, tb, Mode::kEnabled, metrics_dir));
  }

  // Bytes written by one enabled-mode sweep (the files the last rep left).
  std::uint64_t snapshot_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(metrics_dir)) {
    if (entry.path().extension() == ".json") {
      snapshot_bytes += entry.file_size();
    }
  }

  // Floor the denominator at one clock quantum so a sub-resolution run
  // reads as very fast, not as a division by zero.
  const double floor_ms = 1000.0 / CLOCKS_PER_SEC;
  const double overhead_off =
      disabled_ms / std::max(unmetered_ms, floor_ms);
  const double overhead_on = enabled_ms / std::max(unmetered_ms, floor_ms);

  std::printf("unmetered:             %8.1f CPU-ms (min of %d)\n",
              unmetered_ms, kReps);
  std::printf("registry attached, off:%8.1f CPU-ms  -> x%.3f\n", disabled_ms,
              overhead_off);
  std::printf("all domains counted:   %8.1f CPU-ms  -> x%.3f, %llu bytes\n",
              enabled_ms, overhead_on,
              static_cast<unsigned long long>(snapshot_bytes));

  stats::SweepReport report;
  stats::RunRow timing;
  timing.scenario = "metrics_bench";
  timing.scheme = "timing";
  timing.topology = "cpu-time";
  // Knob values ride along so the regression gate can reject a comparison
  // whose workload drifted from the baseline's; metrics_overhead_off is
  // gated as a fixed maximum, everything else is informational (the raw
  // timings only exist as the ratio's terms, and enabled-mode cost scales
  // with the enabled-domain mask).
  timing.metrics = {{"nodes", static_cast<double>(nodes)},
                    {"configs", static_cast<double>(s.configs)},
                    {"run_seconds", sim::to_seconds(s.duration)},
                    {"threads", static_cast<double>(make_runner(s).threads())},
                    {"metrics_unmetered_cpu_ms", unmetered_ms},
                    {"metrics_disabled_cpu_ms", disabled_ms},
                    {"metrics_enabled_cpu_ms", enabled_ms},
                    {"metrics_overhead_off", overhead_off},
                    {"metrics_overhead_on", overhead_on},
                    {"metrics_snapshot_bytes",
                     static_cast<double>(snapshot_bytes)},
                    {"calibration_ms", calibration_ms()}};
  report.add_row(std::move(timing));

  maybe_write_json(report);
  std::filesystem::remove_all(metrics_dir);
  return 0;
}
