// Testbed measurement-pass bench: times the O(n^2) directed-pair PRR
// measurement in both modes — the tabulated fast path (the default) and
// the retained per-pair Monte-Carlo reference — on one large building,
// reports the speedup and the fast-vs-reference PRR drift, and exercises
// the TestbedCache hit path. Doubles as a CI regression probe: the timing
// row rides in the CMAP_BENCH_JSON report and
// tools/check_bench_regression.py enforces the fast-path speedup
// (machine-independent, both modes timed in this process) plus the
// calibration-normalized wall-clock gates.
//
// Knobs: CMAP_BENCH_NODES (default 200) sizes the testbed;
// CMAP_BENCH_MEASURE_THREADS (default 1) shards the per-pair loop — the
// gated run keeps 1 so the speedup is the algorithmic factor, not
// parallelism.
#include "bench_main.h"
#include "testbed/measurement.h"

using namespace cmap;
using namespace cmap::bench;

int main() {
  const Scale s = load_scale();
  const int nodes = static_cast<int>(env_long("CMAP_BENCH_NODES", 200));
  const int threads =
      static_cast<int>(env_long("CMAP_BENCH_MEASURE_THREADS", 1));
  print_header("Testbed measurement pass: fast (tabulated) vs reference",
               "no paper claim — startup scaling for large buildings", s);
  std::printf("nodes: %d (CMAP_BENCH_NODES), measure threads: %d\n", nodes,
              threads);

  testbed::TestbedConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = s.seed;
  cfg.measurement.threads = threads;

  cfg.measurement.mode = testbed::MeasurementMode::kFast;
  double t0 = cpu_ms_now();
  testbed::Testbed fast(cfg);
  const double fast_ms = cpu_ms_now() - t0;

  cfg.measurement.mode = testbed::MeasurementMode::kReference;
  t0 = cpu_ms_now();
  testbed::Testbed ref(cfg);
  const double ref_ms = cpu_ms_now() - t0;
  // Floor the denominator at one clock quantum: a fast pass that finishes
  // within clock()'s resolution (tiny CMAP_BENCH_NODES on a quick machine)
  // must read as very fast, not as speedup 0 — and the metric must stay
  // finite for the JSON report.
  const double speedup = ref_ms / std::max(fast_ms, 1000.0 / CLOCKS_PER_SEC);

  double max_delta = 0.0;
  for (phy::NodeId i = 0; i < static_cast<phy::NodeId>(nodes); ++i) {
    for (phy::NodeId j = 0; j < static_cast<phy::NodeId>(nodes); ++j) {
      if (i != j) {
        max_delta =
            std::max(max_delta, std::abs(fast.prr(i, j) - ref.prr(i, j)));
      }
    }
  }

  // Cache: a second build of the same config must be a pointer lookup.
  cfg.measurement.mode = testbed::MeasurementMode::kFast;
  testbed::TestbedCache cache;
  const auto first = cache.get(cfg);
  t0 = cpu_ms_now();
  const auto second = cache.get(cfg);
  const double cache_hit_ms = cpu_ms_now() - t0;
  const bool cache_hit = first.get() == second.get();

  std::printf("fast (tabulated):      %8.1f CPU-ms\n", fast_ms);
  std::printf("reference (MC x %3d):  %8.1f CPU-ms\n",
              std::max(1, fast.config().prr_fading_samples), ref_ms);
  std::printf("speedup:               %8.1fx\n", speedup);
  std::printf("max |dPRR| fast-ref:   %8.4f\n", max_delta);
  std::printf("cache hit:             %8.2f CPU-ms (%s)\n", cache_hit_ms,
              cache_hit ? "identical instance" : "MISS — BUG");
  std::printf("mean degree:           %8.1f (fast) vs %.1f (reference)\n",
              fast.mean_degree(), ref.mean_degree());

  stats::SweepReport report;
  stats::RunRow timing;
  timing.scenario = "testbed_measure_bench";
  timing.scheme = "timing";
  timing.topology = "cpu-time";
  // Knob values ride along so the regression gate can reject a comparison
  // whose workload drifted from the baseline's; *_ms rows are normalized
  // by calibration_ms; measure_speedup is gated as a raw minimum.
  timing.metrics = {{"nodes", static_cast<double>(nodes)},
                    {"measure_threads", static_cast<double>(threads)},
                    {"measure_fast_cpu_ms", fast_ms},
                    {"measure_reference_cpu_ms", ref_ms},
                    {"measure_speedup", speedup},
                    {"max_abs_delta_prr", max_delta},
                    {"cache_hit", cache_hit ? 1.0 : 0.0},
                    {"calibration_ms", calibration_ms()}};
  report.add_row(std::move(timing));

  maybe_write_json(report);
  return 0;
}
